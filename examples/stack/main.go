// Stack example: a Treiber stack is in the class SCU, so the paper's
// analysis predicts its behaviour. This example runs the stack two
// ways:
//
//  1. simulated on the discrete-time machine under the uniform
//     stochastic scheduler, with linearizability shadow-checking and
//     per-process latency distribution (the view practitioners know
//     from latency histograms of lock-free stacks);
//  2. natively on goroutines and sync/atomic, measuring the
//     completion rate — bare, with exponential-jitter backoff, and
//     with an elimination array, to show the contention-management
//     options leave the completion rate intact while bounding retry
//     work under contention.
//
// Run with: go run ./examples/stack
package main

import (
	"fmt"
	"os"

	"pwf/internal/backoff"
	"pwf/internal/machine"
	"pwf/internal/native"
	"pwf/internal/obs"
	"pwf/internal/progress"
	"pwf/internal/rng"
	"pwf/internal/sched"
	"pwf/internal/scu"
	"pwf/internal/shmem"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "stack:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		n        = 8
		poolSize = 64
		steps    = 1_000_000
	)

	// --- Simulated Treiber stack ---------------------------------
	st, err := scu.NewStack(n, poolSize, 0)
	if err != nil {
		return err
	}
	mem, err := shmem.New(scu.StackLayout(n, poolSize))
	if err != nil {
		return err
	}
	procs, err := st.Processes()
	if err != nil {
		return err
	}
	u, err := sched.NewUniform(n, rng.New(7))
	if err != nil {
		return err
	}
	sim, err := machine.New(mem, procs, u)
	if err != nil {
		return err
	}
	var collector progress.Collector
	sim.SetCompletionHook(collector.Observe)
	if err := sim.Run(steps); err != nil {
		return err
	}
	if st.Err() != nil {
		return st.Err()
	}

	fmt.Printf("simulated Treiber stack: %d processes, %d steps\n", n, steps)
	fmt.Printf("  pushes=%d pops=%d empty-pops=%d depth=%d\n",
		st.Pushes(), st.Pops(), st.EmptyPops(), st.Depth())
	fmt.Printf("  linearization violations: %d (shadow-checked at every CAS)\n", st.Violations())
	if w, err := sim.SystemLatency(); err == nil {
		fmt.Printf("  system latency:  %.2f steps/op\n", w)
	}
	if wi, err := sim.MeanIndividualLatency(); err == nil {
		fmt.Printf("  individual latency: %.2f steps/op (n x system = wait-free-like fairness)\n", wi)
	}

	// Latency distribution: the practitioner's view of "practically
	// wait-free" — the tail of per-process completion gaps is short.
	trace, err := collector.Trace(n, sim.Steps())
	if err != nil {
		return err
	}
	fmt.Println("  per-process completion-gap quantiles (system steps):")
	for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
		g, err := trace.GapQuantile(q)
		if err != nil {
			return err
		}
		fmt.Printf("    p%-4g %8.0f\n", q*100, g)
	}

	// --- Native Treiber stack ------------------------------------
	// Three contention-management configurations of the same stack.
	// The strategies only engage on the retry path, so on a lightly
	// loaded host all three report the same rate; under real
	// contention the paced variants hold their rate while the bare
	// loop's CAS failures climb (see BENCH.md).
	fmt.Printf("\nnative Treiber stack (goroutines + sync/atomic), %d workers:\n", n)
	configs := []struct {
		name string
		opts []native.Option
	}{
		{"bare CAS", nil},
		{"exp-jitter backoff", []native.Option{
			native.WithBackoff(backoff.NewExp(16, 1<<12, 7)),
		}},
		{"elimination (4 slots)", []native.Option{
			native.WithElimination(4), native.WithSeed(7),
		}},
	}
	for _, cfg := range configs {
		var st obs.OpStats
		res, err := native.MeasureStackRate(n, 50_000,
			native.WithOpStats(&st),
			native.WithStructOptions(cfg.opts...))
		if err != nil {
			return err
		}
		fmt.Printf("  %-22s %d ops in %v, rate %.4f ops/step, casfails/op %.4f, elim hits %d\n",
			cfg.name, res.Ops, res.Elapsed.Round(1000), res.Rate(),
			float64(st.CASFailures.Load())/float64(res.Ops),
			st.Eliminations.Load())
	}
	return nil
}
