// Scheduling example: the empirical justification of the stochastic
// scheduler model (Appendix A), run on this machine.
//
// Worker goroutines draw tickets from a shared atomic counter; the
// ticket order IS the schedule. The example reports
//
//   - Figure 3: each worker's long-run share of the steps (≈ 1/n on a
//     fair system), and
//   - Figure 4: the distribution of who runs immediately after a step
//     by worker 0 (locally biased towards the same worker — real
//     schedulers are sticky — but the long-run shares still even out,
//     which is all the model needs).
//
// Run with: go run ./examples/scheduling
package main

import (
	"fmt"
	"os"
	"runtime"

	"pwf"
	"pwf/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scheduling:", err)
		os.Exit(1)
	}
}

func run() error {
	workers := runtime.GOMAXPROCS(0) * 2
	if workers < 4 {
		workers = 4
	}
	const ops = 200_000

	s, err := pwf.RecordSchedule(workers, ops)
	if err != nil {
		return err
	}
	fmt.Printf("recorded %d steps by %d workers on GOMAXPROCS=%d\n\n",
		s.Len(), workers, runtime.GOMAXPROCS(0))

	fmt.Println("Figure 3 — long-run step shares:")
	ideal := 1 / float64(workers)
	shares := s.StepShares()
	var worst float64
	for w, share := range shares {
		bar := int(share * 200)
		fmt.Printf("  w%-2d %7.4f  %s\n", w, share, repeat('#', bar))
		if d := abs(share - ideal); d > worst {
			worst = d
		}
	}
	fmt.Printf("  ideal 1/n = %.4f, worst deviation %.4f\n\n", ideal, worst)

	fmt.Println("Figure 4 — P(next = w_j | current = w_0):")
	dist, err := s.NextStepDistribution(0)
	if err != nil {
		return err
	}
	for j, p := range dist {
		fmt.Printf("  next=w%-2d %7.4f  %s\n", j, p, repeat('#', int(p*100)))
	}

	// Uniformity test on the long-run counts: the paper's claim is
	// that over long horizons the scheduler looks fair.
	counts := s.StepCounts()
	chi2, dof, err := stats.ChiSquareUniform(counts)
	if err != nil {
		return err
	}
	fmt.Printf("\nchi-square of long-run counts: %.1f (dof %d, p=0.001 critical %.1f)\n",
		chi2, dof, stats.ChiSquareCritical999(dof))
	fmt.Println("note: real schedulers are locally sticky (Figure 4 self-bias) and rarely pass")
	fmt.Println("a strict uniformity test; the model's claim is about long-run *shares*, which")
	fmt.Println("the Figure 3 deviations above quantify.")
	return nil
}

func repeat(c byte, n int) string {
	if n < 0 {
		n = 0
	}
	if n > 120 {
		n = 120
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
