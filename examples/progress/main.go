// Progress example: the Theorem 3 dichotomy, live.
//
// Three systems run side by side:
//
//  1. a *bounded* lock-free algorithm (SCU(0,1)) under the uniform
//     stochastic scheduler — Theorem 3 says it is wait-free with
//     probability 1, and indeed every process completes;
//  2. the same algorithm under an adversary that never schedules its
//     victim — θ = 0, and the victim starves, which is exactly what
//     the stochastic threshold rules out;
//  3. the *unbounded* lock-free Algorithm 1 under the uniform
//     stochastic scheduler — Lemma 2 says bounded progress is
//     necessary: despite the fair scheduler, one process monopolises
//     the object and the rest starve.
//
// Run with: go run ./examples/progress
package main

import (
	"fmt"
	"os"

	"pwf/internal/machine"
	"pwf/internal/rng"
	"pwf/internal/sched"
	"pwf/internal/scu"
	"pwf/internal/shmem"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "progress:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		n     = 8
		steps = 1_000_000
	)

	fmt.Printf("%-44s %8s %9s %8s\n", "system", "ops", "fairness", "starved")

	// 1. Bounded lock-free + stochastic scheduler.
	uniform, err := sched.NewUniform(n, rng.New(1))
	if err != nil {
		return err
	}
	if err := runCase("SCU(0,1), uniform stochastic (theta=1/n)",
		boundedProcs(n), scu.SCULayout(1), uniform, steps); err != nil {
		return err
	}

	// 2. Bounded lock-free + adversary.
	adversary, err := sched.NewAdversarial(n, sched.SingleOut(0))
	if err != nil {
		return err
	}
	if err := runCase("SCU(0,1), adversary singling out p0 (theta=0)",
		boundedProcs(n), scu.SCULayout(1), adversary, steps); err != nil {
		return err
	}

	// 3. Unbounded lock-free + stochastic scheduler.
	uniform2, err := sched.NewUniform(n, rng.New(2))
	if err != nil {
		return err
	}
	unbounded, err := scu.NewUnboundedGroup(n, 0, 0)
	if err != nil {
		return err
	}
	if err := runCase("Algorithm 1 (unbounded), uniform stochastic",
		unbounded, scu.UnboundedLayout, uniform2, steps); err != nil {
		return err
	}

	fmt.Println()
	fmt.Println("takeaway: wait-free behaviour needs BOTH a stochastic scheduler (theta > 0)")
	fmt.Println("AND a bounded minimal-progress algorithm — drop either and starvation returns.")
	return nil
}

func boundedProcs(n int) []machine.Process {
	procs, err := scu.NewSCUGroup(n, 0, 1, 0)
	if err != nil {
		// Static parameters; construction cannot fail at runtime.
		panic(err)
	}
	return procs
}

func runCase(name string, procs []machine.Process, memSize int, s sched.Scheduler, steps uint64) error {
	mem, err := shmem.New(memSize)
	if err != nil {
		return err
	}
	sim, err := machine.New(mem, procs, s)
	if err != nil {
		return err
	}
	if err := sim.Run(steps); err != nil {
		return err
	}
	fmt.Printf("%-44s %8d %9.4f %8d\n",
		name, sim.TotalCompletions(), sim.FairnessIndex(), len(sim.StarvedProcesses()))
	return nil
}
