// Quickstart: is a lock-free counter practically wait-free?
//
// This example measures the fetch-and-increment counter of Section 7
// with n processes under the uniform stochastic scheduler, compares
// the simulation against the exact Markov-chain value, and checks the
// paper's two headline predictions:
//
//   - the system completes an operation every Θ(√n) steps, not the
//     worst-case Θ(n) (Theorem 5 / Lemma 12);
//   - every process completes equally often: the individual latency
//     is n times the system latency (Theorem 4).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"math"
	"os"

	"pwf"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		steps = 2_000_000
		seed  = 1
	)
	fmt.Println("lock-free fetch-and-increment under the uniform stochastic scheduler")
	fmt.Printf("%4s %12s %12s %12s %12s %10s\n",
		"n", "W simulated", "W exact", "2*sqrt(n)", "W_i/(n*W)", "fairness")
	for _, n := range []int{2, 4, 8, 16, 32} {
		lat, err := pwf.Run(pwf.NewRunConfig(pwf.FetchIncWorkload(), n),
			pwf.WithSteps(steps), pwf.WithSeed(seed))
		if err != nil {
			return err
		}
		exact, err := pwf.ExactFetchIncLatency(n)
		if err != nil {
			return err
		}
		fmt.Printf("%4d %12.3f %12.3f %12.3f %12.4f %10.4f\n",
			n, lat.System, exact,
			2*math.Sqrt(float64(n)),
			lat.Individual/(float64(n)*lat.System),
			lat.Fairness)
	}
	fmt.Println()
	fmt.Println("reading the table:")
	fmt.Println(" * W simulated tracks W exact: the uniform-scheduler model is self-consistent")
	fmt.Println(" * W stays below 2*sqrt(n): completions happen every Θ(√n) steps, far better")
	fmt.Println("   than the worst-case Θ(n) an adversary could force (Lemma 12)")
	fmt.Println(" * W_i/(n*W) ≈ 1 and fairness ≈ 1: every process advances at the same rate —")
	fmt.Println("   the lock-free counter behaves as if it were wait-free (Theorem 4)")
	return nil
}
