// Universal example: the price of wait-freedom, live.
//
// Herlihy's universal construction turns any sequential object into a
// concurrent one. The lock-free variant (class SCU) commits with one
// CAS and retries on conflict; the wait-free variant announces every
// operation and helps others, paying Θ(n) per operation for a bounded
// worst case. The paper's thesis is that under real schedulers the
// lock-free variant already behaves wait-free — so this example races
// the two on the same fetch-and-add object and prints both the
// average latency and the worst single operation.
//
// Run with: go run ./examples/universal
package main

import (
	"fmt"
	"os"

	"pwf/internal/machine"
	"pwf/internal/rng"
	"pwf/internal/sched"
	"pwf/internal/scu"
	"pwf/internal/shmem"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "universal:", err)
		os.Exit(1)
	}
}

func run() error {
	const steps = 1_000_000
	inc := func(pid int, seq int64) int64 { return 1 }

	fmt.Println("fetch-and-add through two universal constructions, uniform stochastic scheduler")
	fmt.Printf("%4s %16s %16s %10s %22s\n",
		"n", "lock-free W", "wait-free W", "WF/LF", "WF worst op (own steps)")

	for _, n := range []int{2, 4, 8, 16} {
		// Lock-free (SCU) universal object.
		lf, err := scu.NewLFUniversal(scu.CounterObject{}, n, 0)
		if err != nil {
			return err
		}
		lfW, _, err := race(lf0(lf, n, inc))(steps)
		if err != nil {
			return err
		}
		if lf.Violations() != 0 {
			return fmt.Errorf("lock-free linearizability violations: %d", lf.Violations())
		}

		// Wait-free universal object.
		const poolSize = 8
		wf, err := scu.NewWFUniversal(scu.CounterObject{}, n, poolSize, 0)
		if err != nil {
			return err
		}
		wfW, worst, err := race(wf0(wf, n, poolSize, inc))(steps)
		if err != nil {
			return err
		}
		if wf.Violations() != 0 {
			return fmt.Errorf("wait-free linearizability violations: %d", wf.Violations())
		}

		fmt.Printf("%4d %16.2f %16.2f %9.1fx %22d\n", n, lfW, wfW, wfW/lfW, worst)
	}
	fmt.Println()
	fmt.Println("both constructions are linearizable (shadow-checked at every commit); the")
	fmt.Println("wait-free one is several times slower on average — the overhead the paper")
	fmt.Println("argues you can skip, because the stochastic scheduler already delivers")
	fmt.Println("wait-free behaviour to the lock-free version.")
	return nil
}

// builder assembles a simulation and exposes the worst own-step
// metric where available.
type builder func() (*machine.Sim, func() uint64, error)

func lf0(u *scu.LFUniversal, n int, ops func(int, int64) int64) builder {
	return func() (*machine.Sim, func() uint64, error) {
		mem, err := shmem.New(scu.LFUniversalLayout)
		if err != nil {
			return nil, nil, err
		}
		procs, err := u.Processes(ops)
		if err != nil {
			return nil, nil, err
		}
		s, err := sched.NewUniform(n, rng.New(uint64(n)))
		if err != nil {
			return nil, nil, err
		}
		sim, err := machine.New(mem, procs, s)
		if err != nil {
			return nil, nil, err
		}
		return sim, func() uint64 { return 0 }, nil
	}
}

func wf0(u *scu.WFUniversal, n, poolSize int, ops func(int, int64) int64) builder {
	return func() (*machine.Sim, func() uint64, error) {
		mem, err := shmem.New(scu.WFUniversalLayout(n, poolSize))
		if err != nil {
			return nil, nil, err
		}
		u.Init(mem)
		procs, err := u.Processes(ops)
		if err != nil {
			return nil, nil, err
		}
		s, err := sched.NewUniform(n, rng.New(uint64(n)+77))
		if err != nil {
			return nil, nil, err
		}
		sim, err := machine.New(mem, procs, s)
		if err != nil {
			return nil, nil, err
		}
		worst := func() uint64 {
			var m uint64
			for pid := 0; pid < n; pid++ {
				p, ok := sim.ProcessAt(pid)
				if !ok {
					continue
				}
				if wp, ok := p.(*scu.WFUniversalProc); ok && wp.MaxOwnSteps() > m {
					m = wp.MaxOwnSteps()
				}
			}
			return m
		}
		return sim, worst, nil
	}
}

// race runs a built simulation and reports (system latency, worst op).
func race(build builder) func(steps uint64) (float64, uint64, error) {
	return func(steps uint64) (float64, uint64, error) {
		sim, worst, err := build()
		if err != nil {
			return 0, 0, err
		}
		if err := sim.Run(steps / 10); err != nil {
			return 0, 0, err
		}
		sim.ResetMetrics()
		if err := sim.Run(steps); err != nil {
			return 0, 0, err
		}
		w, err := sim.SystemLatency()
		if err != nil {
			return 0, 0, err
		}
		return w, worst(), nil
	}
}
