package pwf_test

import (
	"fmt"
	"math"

	"pwf"
)

// The headline claim: under the uniform stochastic scheduler the
// lock-free counter's system latency stays below the Lemma 12 bound
// 2√n, and every process completes at the same rate (Theorem 4).
//
// This is also the migration from the removed Simulate* wrappers:
// where code previously called
//
//	pwf.SimulateFetchInc(n, steps, seed)        // removed
//	pwf.SimulateSCU(n, q, s, steps, seed)       // removed
//
// it now builds the same measurement from a declarative workload —
// which additionally exposes the scheduler model and warmup window:
//
//	pwf.Run(pwf.NewRunConfig(pwf.FetchIncWorkload(), n),
//	        pwf.WithSteps(steps), pwf.WithSeed(seed))
//	pwf.Run(pwf.NewRunConfig(pwf.SCUWorkload(q, s), n),
//	        pwf.WithSteps(steps), pwf.WithSeed(seed))
func ExampleRun() {
	lat, err := pwf.Run(pwf.NewRunConfig(pwf.FetchIncWorkload(), 8),
		pwf.WithSteps(500000), pwf.WithSeed(1))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	exact, err := pwf.ExactFetchIncLatency(8)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("W below 2*sqrt(n):", lat.System < 2*math.Sqrt(8))
	fmt.Println("simulation within 5% of the exact chain:",
		math.Abs(lat.System-exact)/exact < 0.05)
	fmt.Println("individual latency is n times system latency:",
		math.Abs(lat.Individual/(8*lat.System)-1) < 0.05)
	fmt.Println("fair:", lat.Fairness > 0.99)
	// Output:
	// W below 2*sqrt(n): true
	// simulation within 5% of the exact chain: true
	// individual latency is n times system latency: true
	// fair: true
}

// Verifying the paper's key analytical tool: the individual Markov
// chain of the scan-validate pattern lifts onto the small system
// chain (Lemma 5), so per-process latencies follow from the
// system-level analysis.
func ExampleVerifySCULifting() {
	report, err := pwf.VerifySCULifting(4)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("flow equations hold:", report.MaxFlowError < 1e-9)
	fmt.Println("Lemma 1 marginals hold:", report.MaxMarginalError < 1e-9)
	// Output:
	// flow equations hold: true
	// Lemma 1 marginals hold: true
}

// Composing the pieces by hand: Algorithm 1 (the unbounded lock-free
// algorithm of Lemma 2) starves all but one process even under a fair
// random scheduler, while bounded SCU does not.
func ExampleNewSim() {
	run := func(procs []pwf.Process, memSize int, seed uint64) (starved int) {
		s, err := pwf.NewUniformScheduler(len(procs), seed)
		if err != nil {
			return -1
		}
		sim, err := pwf.NewSim(memSize, procs, s)
		if err != nil {
			return -1
		}
		if err := sim.Run(300000); err != nil {
			return -1
		}
		return len(sim.StarvedProcesses())
	}

	bounded, err := pwf.NewSCUProcesses(8, 0, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	unbounded, err := pwf.NewUnboundedProcesses(8, 0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("bounded SCU starved:", run(bounded, pwf.SCUMemSize(1), 1))
	fmt.Println("Algorithm 1 starved:", run(unbounded, pwf.UnboundedMemSize, 2))
	// Output:
	// bounded SCU starved: 0
	// Algorithm 1 starved: 7
}
