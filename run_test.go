package pwf_test

import (
	"math"
	"testing"

	"pwf"
)

func TestRunWarmupFractionValidated(t *testing.T) {
	cfg := pwf.NewRunConfig(pwf.SCUWorkload(0, 1), 4, pwf.WithSteps(1000))
	for _, f := range []float64{-0.1, 1, 1.5, math.NaN()} {
		if _, err := pwf.Run(cfg, pwf.WithWarmupFraction(f)); err == nil {
			t.Errorf("warmup fraction %v accepted", f)
		}
	}
	for _, f := range []float64{0, 0.1, 0.99} {
		if _, err := pwf.Run(cfg, pwf.WithWarmupFraction(f)); err != nil {
			t.Errorf("warmup fraction %v rejected: %v", f, err)
		}
	}
}

func TestRunWarmupChangesMeasurementWindow(t *testing.T) {
	// Different warmup fractions shift the measurement window along
	// the same schedule stream, so the measured completions differ.
	cfg := pwf.NewRunConfig(pwf.SCUWorkload(0, 1), 4, pwf.WithSteps(20000))
	a, err := pwf.Run(cfg, pwf.WithWarmupFraction(0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := pwf.Run(cfg, pwf.WithWarmupFraction(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("warmup fraction had no effect on the measurement")
	}
}

func TestRunWithSchedulerOption(t *testing.T) {
	cfg := pwf.NewRunConfig(pwf.SCUWorkload(0, 1), 8, pwf.WithSteps(50000))
	uniform, err := pwf.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sticky, err := pwf.Run(cfg, pwf.WithScheduler(pwf.StickySpec(0.9)))
	if err != nil {
		t.Fatal(err)
	}
	if uniform == sticky {
		t.Error("scheduler option had no effect")
	}
	if _, err := pwf.Run(cfg, pwf.WithScheduler(pwf.RoundRobinSpec())); err != nil {
		t.Errorf("round-robin run failed: %v", err)
	}
	if _, err := pwf.Run(cfg, pwf.WithScheduler(pwf.LotterySpec(nil))); err != nil {
		t.Errorf("lottery run failed: %v", err)
	}
	if _, err := pwf.Run(cfg, pwf.WithScheduler(pwf.StickySpec(1.5))); err == nil {
		t.Error("invalid stickiness accepted")
	}
}

func TestRunSweepPublic(t *testing.T) {
	jobs := []pwf.SweepJob{
		{Workload: pwf.SCUWorkload(0, 1), N: 4, Steps: 20000,
			WarmupFraction: pwf.DefaultWarmupFraction, Exact: true},
		{Workload: pwf.FetchIncWorkload(), N: 4, Steps: 20000, Exact: true},
		{Workload: pwf.UnboundedWorkload(0), N: 2, Steps: 20000},
		{Workload: pwf.QueueWorkload(), N: 4, Steps: 20000},
	}
	results, err := pwf.RunSweep(pwf.SweepConfig{Jobs: jobs, Seed: 123})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("%d results for %d jobs", len(results), len(jobs))
	}
	// The exact values must agree with the memoized public accessors.
	wSCU, err := pwf.ExactSCUSystemLatency(4)
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].ExactOK || results[0].Exact != wSCU {
		t.Errorf("sweep exact %v (ok=%v), accessor %v",
			results[0].Exact, results[0].ExactOK, wSCU)
	}
	wFI, err := pwf.ExactFetchIncLatency(4)
	if err != nil {
		t.Fatal(err)
	}
	if !results[1].ExactOK || results[1].Exact != wFI {
		t.Errorf("sweep exact %v (ok=%v), accessor %v",
			results[1].Exact, results[1].ExactOK, wFI)
	}

	// Re-running the sweep with the same master seed reproduces it.
	again, err := pwf.RunSweep(pwf.SweepConfig{Jobs: jobs, Seed: 123, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if results[i].Latencies != again[i].Latencies {
			t.Errorf("job %d not reproducible across worker counts", i)
		}
	}
}
