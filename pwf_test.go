package pwf

import (
	"math"
	"testing"
)

func TestRunSCUQuick(t *testing.T) {
	lat, err := Run(NewRunConfig(SCUWorkload(0, 1), 4),
		WithSteps(100000), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactSCUSystemLatency(4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lat.System-exact)/exact > 0.05 {
		t.Fatalf("simulated W %v vs exact %v", lat.System, exact)
	}
	if ratio := lat.Individual / (4 * lat.System); math.Abs(ratio-1) > 0.05 {
		t.Fatalf("W_i/(n·W) = %v, want ~1", ratio)
	}
	if lat.Fairness < 0.95 {
		t.Fatalf("fairness %v", lat.Fairness)
	}
	if lat.Completions == 0 {
		t.Fatal("no completions")
	}
}

func TestRunFetchIncMatchesExact(t *testing.T) {
	lat, err := Run(NewRunConfig(FetchIncWorkload(), 8),
		WithSteps(200000), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactFetchIncLatency(8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lat.System-exact)/exact > 0.05 {
		t.Fatalf("simulated W %v vs exact %v", lat.System, exact)
	}
	if exact > 2*math.Sqrt(8) {
		t.Fatalf("exact W %v violates Lemma 12 bound", exact)
	}
}

func TestVerifySCULiftingPublic(t *testing.T) {
	report, err := VerifySCULifting(3)
	if err != nil {
		t.Fatal(err)
	}
	if report.MaxFlowError > 1e-9 || report.MaxMarginalError > 1e-9 {
		t.Fatalf("lifting errors: %v, %v", report.MaxFlowError, report.MaxMarginalError)
	}
}

func TestNewSimCustomComposition(t *testing.T) {
	// Compose the public pieces by hand: unbounded algorithm under a
	// sticky scheduler.
	procs, err := NewUnboundedProcesses(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStickyScheduler(4, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(UnboundedMemSize, procs, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(50000); err != nil {
		t.Fatal(err)
	}
	if sim.TotalCompletions() == 0 {
		t.Fatal("no completions")
	}
}

func TestRoundRobinSchedulerPublic(t *testing.T) {
	procs, err := NewSCUProcesses(3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := NewRoundRobinScheduler(3)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(SCUMemSize(1), procs, rr)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(6000); err != nil {
		t.Fatal(err)
	}
	if len(sim.StarvedProcesses()) == 0 {
		// Deterministic round-robin on SCU(0,1) lets the same process
		// win every round (see E8); with 3 processes, two starve.
		t.Log("round-robin did not starve anyone (schedule-dependent)")
	}
}

func TestReplayAndPhasedPublic(t *testing.T) {
	rec, err := RecordSchedule(2, 2000)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := NewReplayScheduler(2, rec.Order(), true)
	if err != nil {
		t.Fatal(err)
	}
	procs, err := NewSCUProcesses(2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(SCUMemSize(1), procs, replay)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(3000); err != nil {
		t.Fatal(err)
	}
	if sim.TotalCompletions() == 0 {
		t.Fatal("no completions under replayed schedule")
	}

	phased, err := NewPhasedScheduler(2, []SchedulerPhase{
		{Weights: []float64{3, 1}, Steps: 50},
		{Weights: []float64{1, 3}, Steps: 50},
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	procs2, err := NewSCUProcesses(2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	sim2, err := NewSim(SCUMemSize(1), procs2, phased)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim2.Run(20000); err != nil {
		t.Fatal(err)
	}
	if len(sim2.StarvedProcesses()) != 0 {
		t.Fatal("phased stochastic scheduler starved a process")
	}
}

func TestUniversalObjectsPublic(t *testing.T) {
	inc := func(pid int, seq int64) int64 { return 1 }

	lf, err := NewLockFreeObject(CounterSpec(), 3)
	if err != nil {
		t.Fatal(err)
	}
	procs, err := lf.Processes(inc)
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUniformScheduler(3, 9)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(LockFreeObjectMemSize, procs, u)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(20000); err != nil {
		t.Fatal(err)
	}
	if lf.Violations() != 0 {
		t.Fatalf("violations: %d", lf.Violations())
	}

	wf, err := NewWaitFreeObject(CounterSpec(), 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := NewMemory(WaitFreeObjectMemSize(3, 8))
	if err != nil {
		t.Fatal(err)
	}
	wf.Init(mem)
	wfProcs, err := wf.Processes(inc)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := NewUniformScheduler(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	wfSim, err := NewSimOn(mem, wfProcs, u2)
	if err != nil {
		t.Fatal(err)
	}
	if err := wfSim.Run(30000); err != nil {
		t.Fatal(err)
	}
	if wf.Violations() != 0 {
		t.Fatalf("wait-free violations: %d", wf.Violations())
	}
}

func TestRecordScheduleAndRatePublic(t *testing.T) {
	s, err := RecordSchedule(2, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() == 0 {
		t.Fatal("empty schedule")
	}
	res, err := MeasureCounterRate(2, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rate() <= 0 || res.Rate() > 0.5 {
		t.Fatalf("rate %v out of (0, 0.5]", res.Rate())
	}
}
