package pwf

import (
	"fmt"
	"io"

	"pwf/internal/checkpoint"
	"pwf/internal/obs"
	"pwf/internal/sweep"
)

// Workload is a declarative description of a simulated algorithm —
// the unit of the unified Run API and of sweep grids. Construct one
// with the *Workload helpers or as a literal.
type Workload = sweep.Workload

// WorkloadKind names an algorithm family.
type WorkloadKind = sweep.WorkloadKind

// SchedulerSpec is a declarative, reusable description of a scheduler
// (unlike the New*Scheduler constructors, which return a stateful
// instance bound to one n and seed).
type SchedulerSpec = sweep.SchedulerSpec

// SCUWorkload describes Algorithm 2 with parameters (q, s).
func SCUWorkload(q, s int) Workload {
	return Workload{Kind: sweep.SCU, Q: q, S: s}
}

// FetchIncWorkload describes the augmented-CAS fetch-and-increment
// counter (Algorithm 5).
func FetchIncWorkload() Workload { return Workload{Kind: sweep.FetchInc} }

// ParallelWorkload describes q-step parallel code (Algorithm 4).
func ParallelWorkload(q int) Workload {
	return Workload{Kind: sweep.Parallel, Q: q}
}

// UnboundedWorkload describes Algorithm 1; waitFactor 0 selects the
// paper's n².
func UnboundedWorkload(waitFactor int64) Workload {
	return Workload{Kind: sweep.Unbounded, WaitFactor: waitFactor}
}

// StackWorkload describes the simulated Treiber stack.
func StackWorkload() Workload { return Workload{Kind: sweep.Stack} }

// QueueWorkload describes the simulated Michael–Scott queue.
func QueueWorkload() Workload { return Workload{Kind: sweep.Queue} }

// RCUWorkload describes the read-mostly RCU-style workload (~3/4
// readers, CAS-published snapshots).
func RCUWorkload() Workload { return Workload{Kind: sweep.RCU} }

// LFUniversalWorkload describes the lock-free universal construction
// applied to a counter object.
func LFUniversalWorkload() Workload { return Workload{Kind: sweep.LFUniversal} }

// UniformSpec describes the paper's uniform stochastic scheduler.
func UniformSpec() SchedulerSpec { return SchedulerSpec{Kind: sweep.SchedUniform} }

// StickySpec describes the Markov-modulated scheduler with stickiness
// rho in [0, 1).
func StickySpec(rho float64) SchedulerSpec {
	return SchedulerSpec{Kind: sweep.SchedSticky, Rho: rho}
}

// RoundRobinSpec describes the deterministic fair baseline.
func RoundRobinSpec() SchedulerSpec {
	return SchedulerSpec{Kind: sweep.SchedRoundRobin}
}

// LotterySpec describes ticket-based lottery scheduling; nil tickets
// give every process one ticket.
func LotterySpec(tickets []int) SchedulerSpec {
	return SchedulerSpec{Kind: sweep.SchedLottery, Tickets: tickets}
}

// ParseScheduler parses the CLI scheduler syntax — uniform,
// roundrobin, lottery, sticky:<rho>, adversary:<victim> — into a
// SchedulerSpec.
func ParseScheduler(name string) (SchedulerSpec, error) {
	return sweep.ParseScheduler(name)
}

// RunConfig is the input of Run: a workload, a process count, and
// measurement settings. NewRunConfig fills in the defaults; the With*
// functional options override them.
type RunConfig struct {
	// Workload is the simulated algorithm.
	Workload Workload
	// N is the number of processes.
	N int
	// Steps is the measurement window in system steps.
	Steps uint64
	// WarmupFraction is the warmup before the measurement window as a
	// fraction of Steps; it must lie in [0, 1).
	WarmupFraction float64
	// Seed drives all simulation randomness.
	Seed uint64
	// Scheduler selects the scheduler model.
	Scheduler SchedulerSpec
	// Recorder, when non-nil, receives the run's step-level telemetry
	// events (package obs semantics; see WithRecorder/WithTrace).
	Recorder Recorder
	// Cache memoizes exact-chain constructions; nil selects the
	// process-wide default cache.
	Cache *ChainCache
}

// Default measurement settings of NewRunConfig.
const (
	DefaultSteps = 1_000_000
	// DefaultWarmupFraction is the conventional 10% warmup the
	// deprecated Simulate* functions always used.
	DefaultWarmupFraction = sweep.DefaultWarmupFraction
	DefaultSeed           = 1
)

// Option configures Run, RunSweep, or both. Every With* constructor
// states its scope; most options apply to both entry points and are
// defined once, not mirrored. Applying an option outside its scope is
// an error (Run and RunSweep report it), so misuse fails loudly
// instead of being dropped. Use AppliesToRun/AppliesToSweep to check
// a scope programmatically, and ScopeNote for the documented reason a
// single-scoped option does not lift.
type Option struct {
	name  string
	run   func(*RunConfig)
	sweep func(*SweepConfig)
	// scopeNote documents why a single-scoped option does not apply
	// to the other entry point.
	scopeNote string
}

// RunOption is kept as a name for Options passed to Run.
type RunOption = Option

// SweepOption is kept as a name for Options passed to RunSweep.
type SweepOption = Option

// Name returns the option's constructor name, e.g. "WithSeed".
func (o Option) Name() string { return o.name }

// AppliesToRun reports whether the option configures Run.
func (o Option) AppliesToRun() bool { return o.run != nil }

// AppliesToSweep reports whether the option configures RunSweep.
func (o Option) AppliesToSweep() bool { return o.sweep != nil }

// ScopeNote returns the documented reason a single-scoped option does
// not lift to the other entry point (empty for dual-scoped options).
func (o Option) ScopeNote() string { return o.scopeNote }

// WithScheduler selects the scheduler model (default: uniform).
// Run-only: each sweep job carries its own SchedulerSpec.
func WithScheduler(s SchedulerSpec) Option {
	return Option{
		name:      "WithScheduler",
		run:       func(c *RunConfig) { c.Scheduler = s },
		scopeNote: "each sweep job carries its own SchedulerSpec",
	}
}

// WithSteps sets the measurement window (default: DefaultSteps).
// Run-only: Steps is a per-job field of SweepJob.
func WithSteps(steps uint64) Option {
	return Option{
		name:      "WithSteps",
		run:       func(c *RunConfig) { c.Steps = steps },
		scopeNote: "Steps is a per-job field of SweepJob",
	}
}

// WithWarmupFraction sets the warmup as a fraction of the measurement
// window (default: DefaultWarmupFraction for Run). On a sweep it
// overrides every job's WarmupFraction. Values outside [0, 1) are
// rejected.
func WithWarmupFraction(f float64) Option {
	return Option{
		name:  "WithWarmupFraction",
		run:   func(c *RunConfig) { c.WarmupFraction = f },
		sweep: func(c *SweepConfig) { c.Warmup = &f },
	}
}

// WithSeed sets the rng seed (default: DefaultSeed). On a sweep it is
// the master seed job streams derive from.
func WithSeed(seed uint64) Option {
	return Option{
		name:  "WithSeed",
		run:   func(c *RunConfig) { c.Seed = seed },
		sweep: func(c *SweepConfig) { c.Seed = seed },
	}
}

// WithRecorder attaches a step-level telemetry recorder: the run
// emits scheduling, CAS, retry, operation-boundary, and crash events
// to it (default: none; the disabled hooks cost one branch per step).
// On a sweep the recorder additionally receives job lifecycle events;
// jobs run concurrently, so it must be safe for concurrent use and
// events from different jobs interleave nondeterministically. Combine
// sinks with MultiRecorder.
func WithRecorder(r Recorder) Option {
	return Option{
		name:  "WithRecorder",
		run:   func(c *RunConfig) { c.Recorder = r },
		sweep: func(c *SweepConfig) { c.Recorder = r },
	}
}

// WithTrace records the run's (or the whole sweep's) events as NDJSON
// to w, one event per line (a convenience over
// WithRecorder(NewTraceRecorder(w)); the trace is flushed when
// Run/RunSweep returns). It replaces any previously set recorder — to
// trace and aggregate metrics at once, compose explicitly with
// MultiRecorder. In a sweep, use the job_start/job_end Job index to
// attribute interleaved step events.
func WithTrace(w io.Writer) Option {
	rec := func() *TraceRecorder { return obs.NewTraceRecorder(w) }
	return Option{
		name:  "WithTrace",
		run:   func(c *RunConfig) { c.Recorder = rec() },
		sweep: func(c *SweepConfig) { c.Recorder = rec() },
	}
}

// invalidRecorder is the Recorder WithTraceFormat installs when its
// arguments are invalid. Option constructors cannot return errors, so
// the error rides the config and Run/RunSweep fail fast on it before
// touching the simulator.
type invalidRecorder struct{ err error }

func (invalidRecorder) Record(Event) {}

// checkRecorder surfaces an option-construction error carried by the
// configured recorder.
func checkRecorder(r Recorder) error {
	if bad, ok := r.(invalidRecorder); ok {
		return bad.err
	}
	return nil
}

// WithTraceFormat records the run's (or the whole sweep's) events to w
// in the selected trace format — TraceFormatNDJSON for the v1
// line-oriented format or TraceFormatBinary for the compact v2 framing
// — with optional per-frame compression (binary only; see
// NewTraceWriter). It is WithTrace with the format made explicit:
//
//	pwf.WithTraceFormat(f, pwf.TraceFormatBinary, pwf.TraceCompressGzip)
//
// Like WithTrace it replaces any previously set recorder and flushes
// when Run/RunSweep returns. Invalid format/compression combinations
// are reported by Run/RunSweep, not silently ignored.
func WithTraceFormat(w io.Writer, format TraceFormat, comp TraceCompression) Option {
	rec := func() Recorder {
		tw, err := obs.NewTraceWriter(w, format, comp)
		if err != nil {
			return invalidRecorder{err}
		}
		return tw
	}
	return Option{
		name:  "WithTraceFormat",
		run:   func(c *RunConfig) { c.Recorder = rec() },
		sweep: func(c *SweepConfig) { c.Recorder = rec() },
	}
}

// WithChainCache selects the memoization cache for exact-chain
// analyses (default: the process-wide cache shared by all runs).
func WithChainCache(cache *ChainCache) Option {
	return Option{
		name:  "WithChainCache",
		run:   func(c *RunConfig) { c.Cache = cache },
		sweep: func(c *SweepConfig) { c.Cache = cache },
	}
}

// WithWorkers bounds the sweep's worker pool (default: GOMAXPROCS).
// Results are identical for any worker count. Sweep-only: Run
// executes exactly one job, so there is no pool to size.
func WithWorkers(workers int) Option {
	return Option{
		name:      "WithWorkers",
		sweep:     func(c *SweepConfig) { c.Workers = workers },
		scopeNote: "Run executes exactly one job, so there is no pool to size",
	}
}

// WithProgress calls fn after each sweep job completes with the
// number of completed jobs and the total; calls are serialized but
// arrive in completion order. Sweep-only: a single run has no
// job-level progress to report.
func WithProgress(fn func(done, total int)) Option {
	return Option{
		name:      "WithProgress",
		sweep:     func(c *SweepConfig) { c.Progress = fn },
		scopeNote: "a single run has no job-level progress to report",
	}
}

// WithFamilyBatching reorders sweep job execution so compatible jobs
// — same workload family and parameters, scheduler kind, exactness —
// run adjacently and share ChainCache entries and hot code paths.
// Results and seeds are byte-identical with batching on or off.
// Sweep-only: a single job has nothing to batch with.
func WithFamilyBatching() Option {
	return Option{
		name:      "WithFamilyBatching",
		sweep:     func(c *SweepConfig) { c.BatchFamilies = true },
		scopeNote: "a single job has nothing to batch with",
	}
}

// WithReplicaBatching runs up to width same-shape sweep points
// together in one struct-of-arrays simulator: one scheduler draw
// table and one workload state block step every replica per loop
// iteration, amortizing dispatch overhead and cache misses across the
// batch. Widths 0 and 1 select the scalar path. Every point still
// draws from its own (seed, index) stream and results are
// byte-identical to the scalar path; shapes without a batched form
// (data-structure workloads, per-job hooks or recorders) fall back to
// scalar execution transparently. Pair with SweepJob.Replicas to
// expand one shape into a seed group. Sweep-only: a single job has
// nothing to batch with.
func WithReplicaBatching(width int) Option {
	return Option{
		name:      "WithReplicaBatching",
		sweep:     func(c *SweepConfig) { c.ReplicaBatch = width },
		scopeNote: "a single job has nothing to batch with",
	}
}

// ErrSweepCanceled marks a sweep stopped by SweepConfig.Context
// before every point completed. RunSweep returns it wrapping the
// context's own error alongside the partial results; match with
// errors.Is to distinguish cancellation (partial results, non-nil
// error) from job failure (nil results, non-nil error).
var ErrSweepCanceled = sweep.ErrCanceled

// Checkpoint is the resume state a sweep consults before dispatch and
// records completed points through; see SweepConfig.Checkpoint and
// WithCheckpoint. CheckpointLog is the crash-safe file-backed
// implementation.
type Checkpoint = sweep.Checkpoint

// CheckpointLog is a file-backed Checkpoint: an append-only,
// fsync-batched log of completed points in the canonical wire
// encoding, bound to one grid and master seed by a SHA-256 header. A
// SIGKILL at any byte leaves a loadable prefix; reopening restores
// every completed point and a resumed sweep's canonical results are
// byte-identical to an uninterrupted run. Close it after RunSweep
// returns.
type CheckpointLog = checkpoint.Log

// ErrCheckpointMismatch marks an existing checkpoint file that was
// written for a different grid or master seed than the sweep being
// resumed; OpenCheckpoint refuses it rather than mixing results
// across grids. Match with errors.Is.
var ErrCheckpointMismatch = checkpoint.ErrGridMismatch

// OpenCheckpoint creates (or, when the file exists, loads and
// validates) the checkpoint for cfg's grid at path. The grid identity
// — expanded points plus master seed — must match an existing file
// exactly (ErrCheckpointMismatch otherwise). Pass the result through
// WithCheckpoint:
//
//	cp, err := pwf.OpenCheckpoint("grid.ckpt", cfg)
//	...
//	results, err := pwf.RunSweep(cfg, pwf.WithCheckpoint(cp))
//	cp.Close()
func OpenCheckpoint(path string, cfg SweepConfig) (*CheckpointLog, error) {
	return checkpoint.Open(path, cfg, checkpoint.Options{})
}

// WithCheckpoint makes the sweep resumable through cp: points the
// checkpoint already holds are restored instead of executed (replayed
// through OnResult in input order first), and every newly completed
// point is committed before its callbacks fire. Because point i
// always draws from stream (seed, i), a resumed sweep's canonical
// results are byte-identical to an uninterrupted run. Sweep-only: Run
// executes exactly one job, so there is no partial grid to resume.
func WithCheckpoint(cp Checkpoint) Option {
	return Option{
		name:      "WithCheckpoint",
		sweep:     func(c *SweepConfig) { c.Checkpoint = cp },
		scopeNote: "Run executes exactly one job, so there is no partial grid to resume",
	}
}

// NewRunConfig returns the configuration for measuring workload w with
// n processes under the defaults: uniform scheduler, DefaultSteps
// steps, DefaultWarmupFraction warmup, DefaultSeed seed. Only the
// Run-scoped part of each option applies here; sweep-only options are
// ignored (Run itself reports them as errors).
func NewRunConfig(w Workload, n int, opts ...Option) RunConfig {
	cfg := RunConfig{
		Workload:       w,
		N:              n,
		Steps:          DefaultSteps,
		WarmupFraction: DefaultWarmupFraction,
		Seed:           DefaultSeed,
		Scheduler:      UniformSpec(),
	}
	for _, opt := range opts {
		if opt.run != nil {
			opt.run(&cfg)
		}
	}
	return cfg
}

// Run measures one workload under one scheduler — the unified entry
// point replacing the Simulate* constellation. Options applied here
// override cfg:
//
//	lat, err := pwf.Run(pwf.NewRunConfig(pwf.SCUWorkload(0, 1), 16),
//	        pwf.WithSteps(2_000_000), pwf.WithSeed(7))
//
// It validates cfg (in particular WarmupFraction must lie in [0, 1))
// and runs warmup + measurement, returning the latency and fairness
// metrics.
func Run(cfg RunConfig, opts ...Option) (Latencies, error) {
	for _, opt := range opts {
		if opt.run == nil {
			return Latencies{}, fmt.Errorf("pwf: option %s does not apply to Run: %s",
				opt.name, opt.scopeNote)
		}
		opt.run(&cfg)
	}
	if err := checkRecorder(cfg.Recorder); err != nil {
		return Latencies{}, fmt.Errorf("pwf: run: %w", err)
	}
	res, err := sweep.RunJob(sweep.Job{
		Workload:       cfg.Workload,
		N:              cfg.N,
		Sched:          cfg.Scheduler,
		Steps:          cfg.Steps,
		WarmupFraction: cfg.WarmupFraction,
		Recorder:       cfg.Recorder,
	}, cfg.Seed, cfg.Cache)
	if tw, ok := cfg.Recorder.(interface{ Flush() error }); ok {
		if ferr := tw.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}
	if err != nil {
		return Latencies{}, fmt.Errorf("pwf: run: %w", err)
	}
	return res.Latencies, nil
}

// SweepJob is one point of a sweep grid.
type SweepJob = sweep.Job

// SweepResult is the structured outcome of one sweep job.
type SweepResult = sweep.Result

// SweepConfig describes a sweep: a job grid, a master seed, and
// optional worker-pool bound, chain cache, warmup override, family
// batching, progress and per-result callbacks, cancellation context,
// checkpoint, and recorder. Most fields are settable through the same
// With* options Run takes.
type SweepConfig = sweep.Config

// RunSweep executes a grid of independent jobs on a worker pool sized
// to GOMAXPROCS (or SweepConfig.Workers) and returns one result per
// job, in input order. Results are byte-identical for a given master
// seed regardless of worker count: job i draws its randomness from a
// SplitMix-derived stream (master, i). Exact-chain analyses requested
// via SweepJob.Exact are memoized in a cache shared across the sweep
// (and, by default, the process).
//
//	jobs := []pwf.SweepJob{
//	        {Workload: pwf.SCUWorkload(0, 1), N: 16, Steps: 1_000_000, Exact: true},
//	        {Workload: pwf.FetchIncWorkload(), N: 16, Steps: 1_000_000},
//	}
//	results, err := pwf.RunSweep(pwf.SweepConfig{Jobs: jobs, Seed: 1})
func RunSweep(cfg SweepConfig, opts ...Option) ([]SweepResult, error) {
	for _, opt := range opts {
		if opt.sweep == nil {
			return nil, fmt.Errorf("pwf: option %s does not apply to RunSweep: %s",
				opt.name, opt.scopeNote)
		}
		opt.sweep(&cfg)
	}
	if err := checkRecorder(cfg.Recorder); err != nil {
		return nil, fmt.Errorf("pwf: sweep: %w", err)
	}
	res, err := sweep.Run(cfg)
	if tw, ok := cfg.Recorder.(interface{ Flush() error }); ok {
		if ferr := tw.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}
	return res, err
}
