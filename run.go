package pwf

import (
	"fmt"
	"io"

	"pwf/internal/obs"
	"pwf/internal/sweep"
)

// Workload is a declarative description of a simulated algorithm —
// the unit of the unified Run API and of sweep grids. Construct one
// with the *Workload helpers or as a literal.
type Workload = sweep.Workload

// WorkloadKind names an algorithm family.
type WorkloadKind = sweep.WorkloadKind

// SchedulerSpec is a declarative, reusable description of a scheduler
// (unlike the New*Scheduler constructors, which return a stateful
// instance bound to one n and seed).
type SchedulerSpec = sweep.SchedulerSpec

// SCUWorkload describes Algorithm 2 with parameters (q, s).
func SCUWorkload(q, s int) Workload {
	return Workload{Kind: sweep.SCU, Q: q, S: s}
}

// FetchIncWorkload describes the augmented-CAS fetch-and-increment
// counter (Algorithm 5).
func FetchIncWorkload() Workload { return Workload{Kind: sweep.FetchInc} }

// ParallelWorkload describes q-step parallel code (Algorithm 4).
func ParallelWorkload(q int) Workload {
	return Workload{Kind: sweep.Parallel, Q: q}
}

// UnboundedWorkload describes Algorithm 1; waitFactor 0 selects the
// paper's n².
func UnboundedWorkload(waitFactor int64) Workload {
	return Workload{Kind: sweep.Unbounded, WaitFactor: waitFactor}
}

// StackWorkload describes the simulated Treiber stack.
func StackWorkload() Workload { return Workload{Kind: sweep.Stack} }

// QueueWorkload describes the simulated Michael–Scott queue.
func QueueWorkload() Workload { return Workload{Kind: sweep.Queue} }

// UniformSpec describes the paper's uniform stochastic scheduler.
func UniformSpec() SchedulerSpec { return SchedulerSpec{Kind: sweep.SchedUniform} }

// StickySpec describes the Markov-modulated scheduler with stickiness
// rho in [0, 1).
func StickySpec(rho float64) SchedulerSpec {
	return SchedulerSpec{Kind: sweep.SchedSticky, Rho: rho}
}

// RoundRobinSpec describes the deterministic fair baseline.
func RoundRobinSpec() SchedulerSpec {
	return SchedulerSpec{Kind: sweep.SchedRoundRobin}
}

// LotterySpec describes ticket-based lottery scheduling; nil tickets
// give every process one ticket.
func LotterySpec(tickets []int) SchedulerSpec {
	return SchedulerSpec{Kind: sweep.SchedLottery, Tickets: tickets}
}

// ParseScheduler parses the CLI scheduler syntax — uniform,
// roundrobin, lottery, sticky:<rho>, adversary:<victim> — into a
// SchedulerSpec.
func ParseScheduler(name string) (SchedulerSpec, error) {
	return sweep.ParseScheduler(name)
}

// RunConfig is the input of Run: a workload, a process count, and
// measurement settings. NewRunConfig fills in the defaults; the With*
// functional options override them.
type RunConfig struct {
	// Workload is the simulated algorithm.
	Workload Workload
	// N is the number of processes.
	N int
	// Steps is the measurement window in system steps.
	Steps uint64
	// WarmupFraction is the warmup before the measurement window as a
	// fraction of Steps; it must lie in [0, 1).
	WarmupFraction float64
	// Seed drives all simulation randomness.
	Seed uint64
	// Scheduler selects the scheduler model.
	Scheduler SchedulerSpec
	// Recorder, when non-nil, receives the run's step-level telemetry
	// events (package obs semantics; see WithRecorder/WithTrace).
	Recorder Recorder
}

// Default measurement settings of NewRunConfig.
const (
	DefaultSteps = 1_000_000
	// DefaultWarmupFraction is the conventional 10% warmup the
	// deprecated Simulate* functions always used.
	DefaultWarmupFraction = sweep.DefaultWarmupFraction
	DefaultSeed           = 1
)

// RunOption overrides one RunConfig setting.
type RunOption func(*RunConfig)

// WithScheduler selects the scheduler model (default: uniform).
func WithScheduler(s SchedulerSpec) RunOption {
	return func(c *RunConfig) { c.Scheduler = s }
}

// WithSteps sets the measurement window (default: DefaultSteps).
func WithSteps(steps uint64) RunOption {
	return func(c *RunConfig) { c.Steps = steps }
}

// WithWarmupFraction sets the warmup as a fraction of the measurement
// window (default: DefaultWarmupFraction). Run rejects values outside
// [0, 1).
func WithWarmupFraction(f float64) RunOption {
	return func(c *RunConfig) { c.WarmupFraction = f }
}

// WithSeed sets the rng seed (default: DefaultSeed).
func WithSeed(seed uint64) RunOption {
	return func(c *RunConfig) { c.Seed = seed }
}

// WithRecorder attaches a step-level telemetry recorder: the run
// emits scheduling, CAS, retry, operation-boundary, and crash events
// to it (default: none; the disabled hooks cost one branch per step).
// Combine sinks with MultiRecorder.
func WithRecorder(r Recorder) RunOption {
	return func(c *RunConfig) { c.Recorder = r }
}

// WithTrace records the run's events as NDJSON to w, one event per
// line (a convenience over WithRecorder(NewTraceRecorder(w)); the
// trace is flushed when Run returns). It replaces any previously set
// recorder — to trace and aggregate metrics at once, compose
// explicitly with MultiRecorder.
func WithTrace(w io.Writer) RunOption {
	return func(c *RunConfig) { c.Recorder = obs.NewTraceRecorder(w) }
}

// NewRunConfig returns the configuration for measuring workload w with
// n processes under the defaults: uniform scheduler, DefaultSteps
// steps, DefaultWarmupFraction warmup, DefaultSeed seed.
func NewRunConfig(w Workload, n int, opts ...RunOption) RunConfig {
	cfg := RunConfig{
		Workload:       w,
		N:              n,
		Steps:          DefaultSteps,
		WarmupFraction: DefaultWarmupFraction,
		Seed:           DefaultSeed,
		Scheduler:      UniformSpec(),
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// Run measures one workload under one scheduler — the unified entry
// point replacing the Simulate* constellation. Options applied here
// override cfg:
//
//	lat, err := pwf.Run(pwf.NewRunConfig(pwf.SCUWorkload(0, 1), 16),
//	        pwf.WithSteps(2_000_000), pwf.WithSeed(7))
//
// It validates cfg (in particular WarmupFraction must lie in [0, 1))
// and runs warmup + measurement, returning the latency and fairness
// metrics.
func Run(cfg RunConfig, opts ...RunOption) (Latencies, error) {
	for _, opt := range opts {
		opt(&cfg)
	}
	res, err := sweep.RunJob(sweep.Job{
		Workload:       cfg.Workload,
		N:              cfg.N,
		Sched:          cfg.Scheduler,
		Steps:          cfg.Steps,
		WarmupFraction: cfg.WarmupFraction,
		Recorder:       cfg.Recorder,
	}, cfg.Seed, nil)
	if tr, ok := cfg.Recorder.(*TraceRecorder); ok {
		if ferr := tr.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}
	if err != nil {
		return Latencies{}, fmt.Errorf("pwf: run: %w", err)
	}
	return res.Latencies, nil
}

// SweepJob is one point of a sweep grid.
type SweepJob = sweep.Job

// SweepResult is the structured outcome of one sweep job.
type SweepResult = sweep.Result

// SweepConfig describes a sweep: a job grid, a master seed, and an
// optional worker-pool bound, chain cache, and progress callback.
type SweepConfig = sweep.Config

// SweepOption overrides one SweepConfig setting in RunSweep.
type SweepOption func(*SweepConfig)

// WithSweepRecorder attaches a recorder to every job of the sweep
// (job-lifecycle events plus each job's step-level events). Jobs run
// concurrently, so the recorder must be safe for concurrent use and
// events from different jobs interleave nondeterministically.
func WithSweepRecorder(r Recorder) SweepOption {
	return func(c *SweepConfig) { c.Recorder = r }
}

// WithSweepTrace records the sweep's events as NDJSON to w (the
// TraceRecorder serializes concurrent writers; the trace is flushed
// when RunSweep returns). Use the job_start/job_end Job index to
// attribute interleaved step events.
func WithSweepTrace(w io.Writer) SweepOption {
	return func(c *SweepConfig) { c.Recorder = obs.NewTraceRecorder(w) }
}

// RunSweep executes a grid of independent jobs on a worker pool sized
// to GOMAXPROCS (or SweepConfig.Workers) and returns one result per
// job, in input order. Results are byte-identical for a given master
// seed regardless of worker count: job i draws its randomness from a
// SplitMix-derived stream (master, i). Exact-chain analyses requested
// via SweepJob.Exact are memoized in a cache shared across the sweep
// (and, by default, the process).
//
//	jobs := []pwf.SweepJob{
//	        {Workload: pwf.SCUWorkload(0, 1), N: 16, Steps: 1_000_000, Exact: true},
//	        {Workload: pwf.FetchIncWorkload(), N: 16, Steps: 1_000_000},
//	}
//	results, err := pwf.RunSweep(pwf.SweepConfig{Jobs: jobs, Seed: 1})
func RunSweep(cfg SweepConfig, opts ...SweepOption) ([]SweepResult, error) {
	for _, opt := range opts {
		opt(&cfg)
	}
	res, err := sweep.Run(cfg)
	if tr, ok := cfg.Recorder.(*TraceRecorder); ok {
		if ferr := tr.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}
	return res, err
}
