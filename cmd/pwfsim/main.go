// Command pwfsim runs discrete-time simulations of a lock-free
// algorithm under a chosen scheduler and reports latencies, the
// completion rate, and fairness. With a comma-separated -n list it
// becomes a sweep: all points run in parallel on the pwf sweep engine
// with deterministic per-job seeding, so results do not depend on the
// worker count.
//
// Usage:
//
//	pwfsim -algo scu -n 16 -q 0 -s 1 -steps 1000000 -sched uniform
//	pwfsim -algo fetchinc -n 1,2,4,8,16 -exact -json
//	pwfsim -algo scu -n 4 -steps 100000 -trace run.ndjson -metrics
//	pwfsim -algo scu -n 4 -trace run.pwft -trace-format bin -trace-compress gzip
//
// Algorithms: scu (Algorithm 2), parallel (Algorithm 4),
// fetchinc (Algorithm 5), unbounded (Algorithm 1), stack, queue,
// rcu, list, hashset, lfuniversal, wfuniversal.
// Schedulers: uniform, roundrobin, sticky:<rho>,
// lottery[:t1,t2,...], weighted[:w1,w2,...],
// phased:<w,...>@<steps>/<w,...>@<steps>..., adversary:<victim>.
//
// With -json, each job emits one canonical internal/api result line
// (schema v1, no wall-clock fields): byte-identical to what pwfserve
// streams for the same grid and seed, and parseable by api.ReadResults.
//
// Observability flags: -trace writes every step-level event
// (scheduling decision, CAS outcome, retry, operation boundary,
// crash, job lifecycle) to a file; -trace-format selects NDJSON
// (format v1, the default) or the compact binary framing (format v2,
// "bin"), and -trace-compress adds per-frame gzip to binary traces;
// -metrics aggregates the same events into wait-free counters and
// histograms and prints a JSON snapshot — including the chain-cache
// hit/miss gauges — to stderr; -debug-addr serves /metrics,
// /debug/vars, /debug/pprof, and a live /debug/trace/tail (NDJSON
// with cursor resume) over HTTP; -cpuprofile/-memprofile write pprof
// profiles.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"pwf"
	"pwf/internal/api"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pwfsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("pwfsim", flag.ContinueOnError)
	var (
		algo      = fs.String("algo", "scu", "algorithm: scu, parallel, fetchinc, unbounded, stack, queue, rcu, list, hashset, lfuniversal, wfuniversal")
		ns        = fs.String("n", "8", "number of processes; a comma-separated list sweeps all of them")
		q         = fs.Int("q", 0, "preamble length (scu/parallel)")
		s         = fs.Int("s", 1, "scan length (scu)")
		steps     = fs.Uint64("steps", 1000000, "system steps to simulate")
		warmup    = fs.Uint64("warmup", 0, "warmup steps discarded before measuring (default steps/10)")
		schedName = fs.String("sched", "uniform", "scheduler: uniform, roundrobin, sticky:<rho>, lottery[:tickets], weighted[:weights], phased:<w,..>@<steps>/.., adversary:<victim>")
		seed      = fs.Uint64("seed", 1, "master rng seed (per-job seeds are derived deterministically)")
		crash     = fs.Int("crash", 0, "number of processes to crash before starting")
		exact     = fs.Bool("exact", false, "also compute the exact-chain system latency where tractable")
		asJSON    = fs.Bool("json", false, "emit one canonical api result line (NDJSON, schema v1) per job instead of the text report")
		workers   = fs.Int("workers", 0, "sweep worker pool size (default GOMAXPROCS)")
		traceFile = fs.String("trace", "", "write step-level telemetry events to this file")
		traceForm = fs.String("trace-format", "ndjson", "trace file format: ndjson (v1) or bin (compact binary v2)")
		traceComp = fs.String("trace-compress", "none", "binary trace compression: none or gzip")
		metrics   = fs.Bool("metrics", false, "print a JSON metrics snapshot to stderr after the run")
		debugAddr = fs.String("debug-addr", "", "serve /metrics, /debug/vars, /debug/pprof and /debug/trace/tail on this address")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = fs.String("memprofile", "", "write a heap profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	counts, err := parseNs(*ns)
	if err != nil {
		return err
	}
	if *steps < 1 {
		return fmt.Errorf("-steps must be at least 1, got %d", *steps)
	}
	if *q < 0 {
		return fmt.Errorf("-q must be non-negative, got %d", *q)
	}
	if *s < 1 {
		return fmt.Errorf("-s must be at least 1, got %d", *s)
	}
	if *crash < 0 {
		return fmt.Errorf("-crash must be non-negative, got %d", *crash)
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be non-negative (0 = GOMAXPROCS), got %d", *workers)
	}
	spec, err := pwf.ParseScheduler(*schedName)
	if err != nil {
		return err
	}
	warmupFraction := pwf.DefaultWarmupFraction
	if *warmup > 0 {
		if *warmup >= *steps {
			return fmt.Errorf("-warmup %d must be below -steps %d", *warmup, *steps)
		}
		warmupFraction = float64(*warmup) / float64(*steps)
	}

	format, err := pwf.ParseTraceFormat(*traceForm)
	if err != nil {
		return err
	}
	comp, err := pwf.ParseTraceCompression(*traceComp)
	if err != nil {
		return err
	}

	// Assemble the telemetry pipeline: a trace file in either format,
	// a live tail ring behind the debug server, an aggregating metrics
	// recorder — all fanned out through MultiRecorder.
	var recorders []pwf.Recorder
	var trace pwf.TraceWriter
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		trace, err = pwf.NewTraceWriter(f, format, comp)
		if err != nil {
			return err
		}
		recorders = append(recorders, trace)
	}
	if *debugAddr != "" {
		tail := pwf.NewTraceTailer(0, nil)
		defer tail.Close()
		recorders = append(recorders, tail)
		bound, stop, err := pwf.ServeDebug(*debugAddr, nil, pwf.WithTraceTail(tail))
		if err != nil {
			return err
		}
		defer stop()
		fmt.Fprintf(errOut, "debug server listening on %s\n", bound)
	}
	if *metrics {
		recorders = append(recorders, pwf.NewMetricsRecorder(nil))
	}

	jobs := make([]pwf.SweepJob, len(counts))
	for i, n := range counts {
		jobs[i] = pwf.SweepJob{
			Workload:       pwf.Workload{Kind: pwf.WorkloadKind(*algo), Q: *q, S: *s},
			N:              n,
			Sched:          spec,
			Steps:          *steps,
			WarmupFraction: warmupFraction,
			Crash:          *crash,
			Exact:          *exact,
		}
	}
	var results []pwf.SweepResult
	err = withProfiles(*cpuProf, *memProf, func() error {
		var err error
		results, err = pwf.RunSweep(pwf.SweepConfig{
			Jobs:    jobs,
			Seed:    *seed,
			Workers: *workers,
		}, pwf.WithRecorder(pwf.MultiRecorder(recorders...)))
		return err
	})
	if trace != nil {
		if ferr := trace.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}
	if err != nil {
		return err
	}
	if *metrics {
		if err := pwf.DefaultRegistry().WriteJSON(errOut); err != nil {
			return err
		}
	}

	if *asJSON {
		// Canonical api lines, not a bare struct dump: the same bytes
		// pwfserve streams for this grid and seed, so CLI output and
		// server output diff clean against each other.
		for _, res := range results {
			if err := api.WriteResultLine(out, api.ResultFromSweep(res)); err != nil {
				return err
			}
		}
		return nil
	}
	for i, res := range results {
		if i > 0 {
			fmt.Fprintln(out)
		}
		report(out, res)
	}
	return nil
}

// withProfiles brackets f with optional CPU and heap profiling.
func withProfiles(cpu, mem string, f func() error) error {
	if cpu != "" {
		cf, err := os.Create(cpu)
		if err != nil {
			return err
		}
		defer cf.Close()
		if err := pprof.StartCPUProfile(cf); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if err := f(); err != nil {
		return err
	}
	if mem != "" {
		mf, err := os.Create(mem)
		if err != nil {
			return err
		}
		defer mf.Close()
		runtime.GC()
		return pprof.WriteHeapProfile(mf)
	}
	return nil
}

// parseNs parses the -n flag: one process count or a comma-separated
// sweep list. Every count must be a positive integer — a zero or
// negative process count can only be a typo, so it fails fast here
// rather than deep inside the sweep engine.
func parseNs(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	counts := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("parse -n %q: %w", s, err)
		}
		if n < 1 {
			return nil, fmt.Errorf("parse -n %q: process count %d must be at least 1", s, n)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

func report(out io.Writer, res pwf.SweepResult) {
	job, lat := res.Job, res.Latencies
	fmt.Fprintf(out, "algorithm=%s n=%d sched=%s steps=%d completions=%d\n",
		job.Workload.Kind, job.N, job.Sched, job.Steps, lat.Completions)
	fmt.Fprintf(out, "system latency (steps/op):      %.4f\n", lat.System)
	if res.ExactOK {
		fmt.Fprintf(out, "exact chain latency:            %.4f\n", res.Exact)
	}
	fmt.Fprintf(out, "mean individual latency:        %.4f\n", lat.Individual)
	if lat.System > 0 {
		fmt.Fprintf(out, "W_i / (n*W):                    %.4f\n",
			lat.Individual/(float64(job.N)*lat.System))
	}
	fmt.Fprintf(out, "completion rate (ops/step):     %.6f\n", lat.CompletionRate)
	fmt.Fprintf(out, "fairness index (Jain):          %.4f\n", lat.Fairness)
	if len(res.Starved) > 0 {
		fmt.Fprintf(out, "starved processes:              %v\n", res.Starved)
	}
}
