// Command pwfsim runs discrete-time simulations of a lock-free
// algorithm under a chosen scheduler and reports latencies, the
// completion rate, and fairness. With a comma-separated -n list it
// becomes a sweep: all points run in parallel on the pwf sweep engine
// with deterministic per-job seeding, so results do not depend on the
// worker count.
//
// Usage:
//
//	pwfsim -algo scu -n 16 -q 0 -s 1 -steps 1000000 -sched uniform
//	pwfsim -algo fetchinc -n 1,2,4,8,16 -exact -json
//
// Algorithms: scu (Algorithm 2), parallel (Algorithm 4),
// fetchinc (Algorithm 5), unbounded (Algorithm 1), stack, queue,
// rcu, list, hashset, lfuniversal, wfuniversal.
// Schedulers: uniform, roundrobin, sticky:<rho>, lottery,
// adversary:<victim>.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"pwf"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pwfsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pwfsim", flag.ContinueOnError)
	var (
		algo      = fs.String("algo", "scu", "algorithm: scu, parallel, fetchinc, unbounded, stack, queue, rcu, list, hashset, lfuniversal, wfuniversal")
		ns        = fs.String("n", "8", "number of processes; a comma-separated list sweeps all of them")
		q         = fs.Int("q", 0, "preamble length (scu/parallel)")
		s         = fs.Int("s", 1, "scan length (scu)")
		steps     = fs.Uint64("steps", 1000000, "system steps to simulate")
		warmup    = fs.Uint64("warmup", 0, "warmup steps discarded before measuring (default steps/10)")
		schedName = fs.String("sched", "uniform", "scheduler: uniform, roundrobin, sticky:<rho>, lottery, adversary:<victim>")
		seed      = fs.Uint64("seed", 1, "master rng seed (per-job seeds are derived deterministically)")
		crash     = fs.Int("crash", 0, "number of processes to crash before starting")
		exact     = fs.Bool("exact", false, "also compute the exact-chain system latency where tractable")
		asJSON    = fs.Bool("json", false, "emit one JSON object per job instead of the text report")
		workers   = fs.Int("workers", 0, "sweep worker pool size (default GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	counts, err := parseNs(*ns)
	if err != nil {
		return err
	}
	spec, err := pwf.ParseScheduler(*schedName)
	if err != nil {
		return err
	}
	warmupFraction := pwf.DefaultWarmupFraction
	if *warmup > 0 {
		if *steps == 0 || *warmup >= *steps {
			return fmt.Errorf("warmup %d must be below steps %d", *warmup, *steps)
		}
		warmupFraction = float64(*warmup) / float64(*steps)
	}

	jobs := make([]pwf.SweepJob, len(counts))
	for i, n := range counts {
		jobs[i] = pwf.SweepJob{
			Workload:       pwf.Workload{Kind: pwf.WorkloadKind(*algo), Q: *q, S: *s},
			N:              n,
			Sched:          spec,
			Steps:          *steps,
			WarmupFraction: warmupFraction,
			Crash:          *crash,
			Exact:          *exact,
		}
	}
	results, err := pwf.RunSweep(pwf.SweepConfig{
		Jobs:    jobs,
		Seed:    *seed,
		Workers: *workers,
	})
	if err != nil {
		return err
	}

	if *asJSON {
		enc := json.NewEncoder(out)
		for _, res := range results {
			if err := enc.Encode(res); err != nil {
				return err
			}
		}
		return nil
	}
	for i, res := range results {
		if i > 0 {
			fmt.Fprintln(out)
		}
		report(out, res)
	}
	return nil
}

// parseNs parses the -n flag: one process count or a comma-separated
// sweep list.
func parseNs(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	counts := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("parse -n %q: %w", s, err)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

func report(out io.Writer, res pwf.SweepResult) {
	job, lat := res.Job, res.Latencies
	fmt.Fprintf(out, "algorithm=%s n=%d sched=%s steps=%d completions=%d\n",
		job.Workload.Kind, job.N, job.Sched, job.Steps, lat.Completions)
	fmt.Fprintf(out, "system latency (steps/op):      %.4f\n", lat.System)
	if res.ExactOK {
		fmt.Fprintf(out, "exact chain latency:            %.4f\n", res.Exact)
	}
	fmt.Fprintf(out, "mean individual latency:        %.4f\n", lat.Individual)
	if lat.System > 0 {
		fmt.Fprintf(out, "W_i / (n*W):                    %.4f\n",
			lat.Individual/(float64(job.N)*lat.System))
	}
	fmt.Fprintf(out, "completion rate (ops/step):     %.6f\n", lat.CompletionRate)
	fmt.Fprintf(out, "fairness index (Jain):          %.4f\n", lat.Fairness)
	if len(res.Starved) > 0 {
		fmt.Fprintf(out, "starved processes:              %v\n", res.Starved)
	}
}
