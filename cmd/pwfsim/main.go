// Command pwfsim runs one discrete-time simulation of a lock-free
// algorithm under a chosen scheduler and reports latencies, the
// completion rate, and fairness.
//
// Usage:
//
//	pwfsim -algo scu -n 16 -q 0 -s 1 -steps 1000000 -sched uniform
//
// Algorithms: scu (Algorithm 2), parallel (Algorithm 4),
// fetchinc (Algorithm 5), unbounded (Algorithm 1), stack, queue.
// Schedulers: uniform, roundrobin, sticky:<rho>, lottery.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"pwf/internal/machine"
	"pwf/internal/rng"
	"pwf/internal/sched"
	"pwf/internal/scu"
	"pwf/internal/shmem"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pwfsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pwfsim", flag.ContinueOnError)
	var (
		algo      = fs.String("algo", "scu", "algorithm: scu, parallel, fetchinc, unbounded, stack, queue, rcu, list, hashset, lfuniversal, wfuniversal")
		n         = fs.Int("n", 8, "number of processes")
		q         = fs.Int("q", 0, "preamble length (scu/parallel)")
		s         = fs.Int("s", 1, "scan length (scu)")
		steps     = fs.Uint64("steps", 1000000, "system steps to simulate")
		warmup    = fs.Uint64("warmup", 0, "warmup steps discarded before measuring (default steps/10)")
		schedName = fs.String("sched", "uniform", "scheduler: uniform, roundrobin, sticky:<rho>, lottery")
		seed      = fs.Uint64("seed", 1, "rng seed")
		crash     = fs.Int("crash", 0, "number of processes to crash before starting")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *warmup == 0 {
		*warmup = *steps / 10
	}

	scheduler, err := buildScheduler(*schedName, *n, *seed)
	if err != nil {
		return err
	}
	if *crash > 0 {
		crasher, ok := scheduler.(sched.Crasher)
		if !ok {
			return fmt.Errorf("scheduler %q does not support crashes", *schedName)
		}
		for pid := *n - *crash; pid < *n; pid++ {
			if err := crasher.Crash(pid); err != nil {
				return fmt.Errorf("crash process %d: %w", pid, err)
			}
		}
	}

	mem, procs, err := buildAlgorithm(*algo, *n, *q, *s)
	if err != nil {
		return err
	}
	sim, err := machine.New(mem, procs, scheduler)
	if err != nil {
		return err
	}
	if err := sim.Run(*warmup); err != nil {
		return err
	}
	sim.ResetMetrics()
	if err := sim.Run(*steps); err != nil {
		return err
	}
	return report(out, sim, *algo, *n)
}

func buildScheduler(name string, n int, seed uint64) (sched.Scheduler, error) {
	switch {
	case name == "uniform":
		return sched.NewUniform(n, rng.New(seed))
	case name == "roundrobin":
		return sched.NewRoundRobin(n)
	case name == "lottery":
		tickets := make([]int, n)
		for i := range tickets {
			tickets[i] = 1
		}
		return sched.NewLottery(tickets, rng.New(seed))
	case strings.HasPrefix(name, "sticky:"):
		rho, err := strconv.ParseFloat(strings.TrimPrefix(name, "sticky:"), 64)
		if err != nil {
			return nil, fmt.Errorf("parse sticky rho: %w", err)
		}
		return sched.NewSticky(n, rho, rng.New(seed))
	default:
		return nil, fmt.Errorf("unknown scheduler %q", name)
	}
}

func buildAlgorithm(algo string, n, q, s int) (*shmem.Memory, []machine.Process, error) {
	switch algo {
	case "scu":
		mem, err := shmem.New(scu.SCULayout(s))
		if err != nil {
			return nil, nil, err
		}
		procs, err := scu.NewSCUGroup(n, q, s, 0)
		return mem, procs, err
	case "parallel":
		if q < 1 {
			return nil, nil, errors.New("parallel code needs -q >= 1")
		}
		mem, err := shmem.New(1)
		if err != nil {
			return nil, nil, err
		}
		procs, err := scu.NewParallelGroup(n, q, 0)
		return mem, procs, err
	case "fetchinc":
		mem, err := shmem.New(scu.FetchIncLayout)
		if err != nil {
			return nil, nil, err
		}
		procs, err := scu.NewFetchIncGroup(n, 0)
		return mem, procs, err
	case "unbounded":
		mem, err := shmem.New(scu.UnboundedLayout)
		if err != nil {
			return nil, nil, err
		}
		procs, err := scu.NewUnboundedGroup(n, 0, 0)
		return mem, procs, err
	case "stack":
		const poolSize = 64
		st, err := scu.NewStack(n, poolSize, 0)
		if err != nil {
			return nil, nil, err
		}
		mem, err := shmem.New(scu.StackLayout(n, poolSize))
		if err != nil {
			return nil, nil, err
		}
		procs, err := st.Processes()
		return mem, procs, err
	case "queue":
		const poolSize = 64
		qu, err := scu.NewQueue(n, poolSize, 0)
		if err != nil {
			return nil, nil, err
		}
		mem, err := shmem.New(scu.QueueLayout(n, poolSize))
		if err != nil {
			return nil, nil, err
		}
		qu.Init(mem)
		procs, err := qu.Processes()
		return mem, procs, err
	case "rcu":
		const poolSize = 64
		readers := n - 1 - (n-1)/4 // read-mostly: ~3/4 readers
		r, err := scu.NewRCU(n, readers, poolSize, 0)
		if err != nil {
			return nil, nil, err
		}
		mem, err := shmem.New(scu.RCULayout(n-readers, poolSize))
		if err != nil {
			return nil, nil, err
		}
		procs, err := r.Processes()
		return mem, procs, err
	case "list":
		const (
			poolSize = 64
			keyspace = 32
		)
		l, err := scu.NewList(n, poolSize, 0)
		if err != nil {
			return nil, nil, err
		}
		mem, err := shmem.New(scu.ListLayout(n, poolSize))
		if err != nil {
			return nil, nil, err
		}
		l.Init(mem)
		procs, err := l.Processes(keyspace)
		return mem, procs, err
	case "hashset":
		const (
			buckets  = 8
			poolSize = 32
			keyspace = 64
		)
		h, err := scu.NewHashSet(n, buckets, poolSize, 0)
		if err != nil {
			return nil, nil, err
		}
		mem, err := shmem.New(scu.HashSetLayout(n, buckets, poolSize))
		if err != nil {
			return nil, nil, err
		}
		h.Init(mem)
		procs, err := h.Processes(keyspace)
		return mem, procs, err
	case "lfuniversal":
		u, err := scu.NewLFUniversal(scu.CounterObject{}, n, 0)
		if err != nil {
			return nil, nil, err
		}
		mem, err := shmem.New(scu.LFUniversalLayout)
		if err != nil {
			return nil, nil, err
		}
		procs, err := u.Processes(func(pid int, seq int64) int64 { return 1 })
		return mem, procs, err
	case "wfuniversal":
		const poolSize = 8
		u, err := scu.NewWFUniversal(scu.CounterObject{}, n, poolSize, 0)
		if err != nil {
			return nil, nil, err
		}
		mem, err := shmem.New(scu.WFUniversalLayout(n, poolSize))
		if err != nil {
			return nil, nil, err
		}
		u.Init(mem)
		procs, err := u.Processes(func(pid int, seq int64) int64 { return 1 })
		return mem, procs, err
	default:
		return nil, nil, fmt.Errorf("unknown algorithm %q", algo)
	}
}

func report(out io.Writer, sim *machine.Sim, algo string, n int) error {
	fmt.Fprintf(out, "algorithm=%s n=%d steps=%d completions=%d\n",
		algo, n, sim.Steps(), sim.TotalCompletions())
	if w, err := sim.SystemLatency(); err == nil {
		fmt.Fprintf(out, "system latency (steps/op):      %.4f\n", w)
	}
	if wi, err := sim.MeanIndividualLatency(); err == nil {
		fmt.Fprintf(out, "mean individual latency:        %.4f\n", wi)
		if w, err := sim.SystemLatency(); err == nil && w > 0 {
			fmt.Fprintf(out, "W_i / (n*W):                    %.4f\n", wi/(float64(n)*w))
		}
	}
	fmt.Fprintf(out, "completion rate (ops/step):     %.6f\n", sim.CompletionRate())
	fmt.Fprintf(out, "fairness index (Jain):          %.4f\n", sim.FairnessIndex())
	if starved := sim.StarvedProcesses(); len(starved) > 0 {
		fmt.Fprintf(out, "starved processes:              %v\n", starved)
	}
	return nil
}
