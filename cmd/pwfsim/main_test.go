package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunAllAlgorithms(t *testing.T) {
	for _, algo := range []string{
		"scu", "parallel", "fetchinc", "unbounded", "stack", "queue",
		"rcu", "list", "hashset", "lfuniversal", "wfuniversal",
	} {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			args := []string{"-algo", algo, "-n", "4", "-steps", "20000"}
			if algo == "parallel" {
				args = append(args, "-q", "3")
			}
			if err := run(args, &buf); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			if !strings.Contains(out, "completion rate") {
				t.Errorf("missing report:\n%s", out)
			}
		})
	}
}

func TestRunAllSchedulers(t *testing.T) {
	for _, s := range []string{"uniform", "roundrobin", "sticky:0.5", "lottery"} {
		s := s
		t.Run(s, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			if err := run([]string{"-sched", s, "-n", "4", "-steps", "20000"}, &buf); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunWithCrashes(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "8", "-crash", "4", "-steps", "20000"}, &buf); err != nil {
		t.Fatal(err)
	}
}

func TestRunSweepMultipleN(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-algo", "fetchinc", "-n", "2,4,8", "-steps", "20000"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"n=2", "n=4", "n=8"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep output missing %q:\n%s", want, out)
		}
	}
}

func TestRunJSONEmitsOneObjectPerJob(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-algo", "scu", "-n", "2,4", "-steps", "20000", "-exact", "-json",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d JSON lines, want 2:\n%s", len(lines), buf.String())
	}
	for i, line := range lines {
		var obj struct {
			Index int `json:"index"`
			Job   struct {
				N     int    `json:"n"`
				Steps uint64 `json:"steps"`
			} `json:"job"`
			Latencies struct {
				System      float64 `json:"system"`
				Completions uint64  `json:"completions"`
			} `json:"latencies"`
			Exact   float64 `json:"exact"`
			ExactOK bool    `json:"exact_ok"`
		}
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d: %v\n%s", i, err, line)
		}
		if obj.Index != i {
			t.Errorf("line %d has index %d", i, obj.Index)
		}
		if obj.Job.Steps != 20000 || obj.Latencies.Completions == 0 ||
			obj.Latencies.System <= 0 {
			t.Errorf("line %d has implausible fields: %+v", i, obj)
		}
		if !obj.ExactOK || obj.Exact <= 0 {
			t.Errorf("line %d missing exact latency: %+v", i, obj)
		}
	}
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	out := func(workers string) string {
		var buf bytes.Buffer
		err := run([]string{
			"-algo", "scu", "-n", "2,4,8", "-steps", "20000",
			"-seed", "7", "-workers", workers,
		}, &buf)
		if err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if serial, parallel := out("1"), out("8"); serial != parallel {
		t.Errorf("output differs between -workers 1 and 8:\n%s\n---\n%s",
			serial, parallel)
	}
}

func TestRunWarmupFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "4", "-steps", "20000", "-warmup", "5000"}, &buf); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "4", "-steps", "20000", "-warmup", "20000"}, &buf); err == nil {
		t.Error("warmup >= steps accepted")
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	tests := [][]string{
		{"-algo", "nope"},
		{"-sched", "nope"},
		{"-sched", "sticky:abc"},
		{"-sched", "sticky:1.5"},
		{"-algo", "parallel", "-q", "0"},
		{"-sched", "roundrobin", "-crash", "9", "-n", "8"},
		{"-bogusflag"},
	}
	for _, args := range tests {
		var buf bytes.Buffer
		if err := run(append(args, "-steps", "100"), &buf); err == nil {
			t.Errorf("args %v: nil error", args)
		}
	}
}
