package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pwf/internal/obs"
)

func TestRunAllAlgorithms(t *testing.T) {
	for _, algo := range []string{
		"scu", "parallel", "fetchinc", "unbounded", "stack", "queue",
		"rcu", "list", "hashset", "lfuniversal", "wfuniversal",
	} {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			args := []string{"-algo", algo, "-n", "4", "-steps", "20000"}
			if algo == "parallel" {
				args = append(args, "-q", "3")
			}
			if err := run(args, &buf, &buf); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			if !strings.Contains(out, "completion rate") {
				t.Errorf("missing report:\n%s", out)
			}
		})
	}
}

func TestRunAllSchedulers(t *testing.T) {
	for _, s := range []string{"uniform", "roundrobin", "sticky:0.5", "lottery"} {
		s := s
		t.Run(s, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			if err := run([]string{"-sched", s, "-n", "4", "-steps", "20000"}, &buf, &buf); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunWithCrashes(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "8", "-crash", "4", "-steps", "20000"}, &buf, &buf); err != nil {
		t.Fatal(err)
	}
}

func TestRunSweepMultipleN(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-algo", "fetchinc", "-n", "2,4,8", "-steps", "20000"}, &buf, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"n=2", "n=4", "n=8"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep output missing %q:\n%s", want, out)
		}
	}
}

func TestRunJSONEmitsOneObjectPerJob(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-algo", "scu", "-n", "2,4", "-steps", "20000", "-exact", "-json",
	}, &buf, &buf)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d JSON lines, want 2:\n%s", len(lines), buf.String())
	}
	for i, line := range lines {
		// Canonical api lines: versioned, and free of wall-clock fields
		// so the same grid and seed always reproduce the same bytes.
		if !strings.HasPrefix(line, `{"v":1,`) {
			t.Errorf("line %d is not a v1 envelope: %s", i, line)
		}
		if strings.Contains(line, "elapsed") {
			t.Errorf("line %d leaks wall-clock fields: %s", i, line)
		}
		var obj struct {
			Index int `json:"index"`
			Job   struct {
				N     int    `json:"n"`
				Steps uint64 `json:"steps"`
			} `json:"job"`
			Latencies struct {
				System      float64 `json:"system"`
				Completions uint64  `json:"completions"`
			} `json:"latencies"`
			Exact   float64 `json:"exact"`
			ExactOK bool    `json:"exact_ok"`
		}
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d: %v\n%s", i, err, line)
		}
		if obj.Index != i {
			t.Errorf("line %d has index %d", i, obj.Index)
		}
		if obj.Job.Steps != 20000 || obj.Latencies.Completions == 0 ||
			obj.Latencies.System <= 0 {
			t.Errorf("line %d has implausible fields: %+v", i, obj)
		}
		if !obj.ExactOK || obj.Exact <= 0 {
			t.Errorf("line %d missing exact latency: %+v", i, obj)
		}
	}
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	out := func(workers string) string {
		var buf bytes.Buffer
		err := run([]string{
			"-algo", "scu", "-n", "2,4,8", "-steps", "20000",
			"-seed", "7", "-workers", workers,
		}, &buf, &buf)
		if err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if serial, parallel := out("1"), out("8"); serial != parallel {
		t.Errorf("output differs between -workers 1 and 8:\n%s\n---\n%s",
			serial, parallel)
	}
}

func TestRunWarmupFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "4", "-steps", "20000", "-warmup", "5000"}, &buf, &buf); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "4", "-steps", "20000", "-warmup", "20000"}, &buf, &buf); err == nil {
		t.Error("warmup >= steps accepted")
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantMsg string
	}{
		{"bad algo", []string{"-algo", "nope"}, ""},
		{"bad sched", []string{"-sched", "nope"}, ""},
		{"bad sticky rho", []string{"-sched", "sticky:abc"}, ""},
		{"sticky rho out of range", []string{"-sched", "sticky:1.5"}, ""},
		{"parallel without preamble", []string{"-algo", "parallel", "-q", "0"}, ""},
		{"crash more than n", []string{"-sched", "roundrobin", "-crash", "9", "-n", "8"}, ""},
		{"unknown flag", []string{"-bogusflag"}, ""},
		{"zero n", []string{"-n", "0"}, "must be at least 1"},
		{"negative n", []string{"-n", "-4"}, "must be at least 1"},
		{"bad n in sweep list", []string{"-n", "2,0,8"}, "must be at least 1"},
		{"unparseable n", []string{"-n", "2,x"}, "parse -n"},
		{"negative q", []string{"-q", "-1"}, "-q must be non-negative"},
		{"zero s", []string{"-algo", "scu", "-s", "0"}, "-s must be at least 1"},
		{"negative crash", []string{"-crash", "-1"}, "-crash must be non-negative"},
		{"negative workers", []string{"-workers", "-2"}, "-workers must be non-negative"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			err := run(append(tc.args, "-steps", "100"), &buf, &buf)
			if err == nil {
				t.Fatalf("args %v: nil error", tc.args)
			}
			if tc.wantMsg != "" && !strings.Contains(err.Error(), tc.wantMsg) {
				t.Errorf("args %v: error %q does not mention %q", tc.args, err, tc.wantMsg)
			}
		})
	}
}

func TestRunRejectsZeroSteps(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-n", "2", "-steps", "0"}, &buf, &buf)
	if err == nil {
		t.Fatal("zero -steps accepted")
	}
	if !strings.Contains(err.Error(), "-steps must be at least 1") {
		t.Errorf("error %q does not name -steps", err)
	}
}

func TestRunTraceEmitsValidNDJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.ndjson")
	var buf bytes.Buffer
	args := []string{"-algo", "scu", "-n", "2", "-steps", "5000", "-trace", path}
	if err := run(args, &buf, &buf); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	var scheds, completes, jobStarts, jobEnds int
	for _, e := range events {
		switch e.Kind {
		case obs.KindSched:
			scheds++
		case obs.KindComplete:
			completes++
		case obs.KindJobStart:
			jobStarts++
		case obs.KindJobEnd:
			jobEnds++
		}
	}
	// The recorder observes the whole run: 5000 measured steps plus
	// the default 10% warmup.
	if scheds != 5500 {
		t.Errorf("got %d sched events, want 5500", scheds)
	}
	if completes == 0 {
		t.Error("no complete events recorded")
	}
	if jobStarts != 1 || jobEnds != 1 {
		t.Errorf("job lifecycle events: %d starts, %d ends, want 1 each",
			jobStarts, jobEnds)
	}
}

// TestRunTraceFormats runs the same seed once per format/compression
// combination and requires all traces to decode to the identical event
// stream — the flag changes the file size, never the history.
func TestRunTraceFormats(t *testing.T) {
	dir := t.TempDir()
	type variant struct {
		name         string
		format, comp string
	}
	variants := []variant{
		{"ndjson", "ndjson", "none"},
		{"bin", "bin", "none"},
		{"bin-gzip", "bin", "gzip"},
	}
	var first []obs.Event
	sizes := map[string]int64{}
	for _, v := range variants {
		path := filepath.Join(dir, "trace-"+v.name)
		var buf bytes.Buffer
		args := []string{"-algo", "scu", "-n", "2", "-steps", "5000", "-seed", "7",
			"-trace", path, "-trace-format", v.format, "-trace-compress", v.comp}
		if err := run(args, &buf, &buf); err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		sizes[v.name] = st.Size()
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		events, err := obs.ReadTrace(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: decode: %v", v.name, err)
		}
		// job_end carries wall-clock time, the one nondeterministic
		// field across otherwise identical runs.
		for i := range events {
			if events[i].Kind == obs.KindJobEnd {
				events[i].ElapsedNS = 0
			}
		}
		if first == nil {
			first = events
			continue
		}
		if len(events) != len(first) {
			t.Fatalf("%s: %d events, ndjson run had %d", v.name, len(events), len(first))
		}
		for i := range events {
			if events[i] != first[i] {
				t.Fatalf("%s: event %d: %+v, ndjson run had %+v", v.name, i, events[i], first[i])
			}
		}
	}
	if sizes["bin"] >= sizes["ndjson"] {
		t.Errorf("binary trace (%d B) not smaller than NDJSON (%d B)", sizes["bin"], sizes["ndjson"])
	}
	if sizes["bin-gzip"] >= sizes["bin"] {
		t.Errorf("gzip trace (%d B) not smaller than uncompressed binary (%d B)",
			sizes["bin-gzip"], sizes["bin"])
	}
}

func TestRunRejectsBadTraceFlags(t *testing.T) {
	var buf bytes.Buffer
	base := []string{"-algo", "scu", "-n", "2", "-steps", "100"}
	if err := run(append(base, "-trace-format", "xml"), &buf, &buf); err == nil {
		t.Error("unknown -trace-format accepted")
	}
	if err := run(append(base, "-trace-compress", "zstd"), &buf, &buf); err == nil {
		t.Error("unknown -trace-compress accepted")
	}
	path := filepath.Join(t.TempDir(), "t")
	if err := run(append(base, "-trace", path, "-trace-format", "ndjson", "-trace-compress", "gzip"),
		&buf, &buf); err == nil {
		t.Error("compressed NDJSON accepted")
	}
}

func TestRunDebugAddrTailsTrace(t *testing.T) {
	// The debug server tails the live trace; by the time run returns
	// the tailer is closed, so we cannot hit the endpoint here — that
	// path is covered by the obs package's HTTP tests. This test pins
	// the wiring: -debug-addr alone (no -trace) must not fail, and the
	// trace_tail metrics must register on the default registry.
	var out, errOut bytes.Buffer
	args := []string{"-algo", "scu", "-n", "2", "-steps", "2000",
		"-debug-addr", "127.0.0.1:0", "-metrics"}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut.String(), "trace_tail_evicted") {
		t.Errorf("metrics snapshot missing trace_tail_evicted:\n%s", errOut.String())
	}
}

func TestRunMetricsSnapshot(t *testing.T) {
	var out, errOut bytes.Buffer
	args := []string{"-algo", "scu", "-n", "2", "-steps", "5000",
		"-exact", "-metrics"}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	snap := errOut.String()
	for _, want := range []string{
		"chain_cache_hits", "chain_cache_misses",
		"sim_sched_steps", "sim_cas_attempts_per_op",
	} {
		if !strings.Contains(snap, want) {
			t.Errorf("metrics snapshot missing %q:\n%s", want, snap)
		}
	}
	var parsed struct {
		Counters   map[string]uint64          `json:"counters"`
		Gauges     map[string]uint64          `json:"gauges"`
		Histograms map[string]json.RawMessage `json:"histograms"`
	}
	if err := json.Unmarshal(errOut.Bytes(), &parsed); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if parsed.Counters["sim_sched_steps"] == 0 {
		t.Error("sim_sched_steps counter is zero")
	}
}

func TestRunDebugAddrServesMetrics(t *testing.T) {
	var out, errOut bytes.Buffer
	args := []string{"-algo", "scu", "-n", "2", "-steps", "2000",
		"-debug-addr", "127.0.0.1:0"}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut.String(), "debug server listening on") {
		t.Errorf("missing bound-address line:\n%s", errOut.String())
	}
}

func TestRunProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	var buf bytes.Buffer
	args := []string{"-algo", "scu", "-n", "2", "-steps", "5000",
		"-cpuprofile", cpu, "-memprofile", mem}
	if err := run(args, &buf, &buf); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}
