package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunAllAlgorithms(t *testing.T) {
	for _, algo := range []string{
		"scu", "parallel", "fetchinc", "unbounded", "stack", "queue",
		"rcu", "list", "hashset", "lfuniversal", "wfuniversal",
	} {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			args := []string{"-algo", algo, "-n", "4", "-steps", "20000"}
			if algo == "parallel" {
				args = append(args, "-q", "3")
			}
			if err := run(args, &buf); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			if !strings.Contains(out, "completion rate") {
				t.Errorf("missing report:\n%s", out)
			}
		})
	}
}

func TestRunAllSchedulers(t *testing.T) {
	for _, s := range []string{"uniform", "roundrobin", "sticky:0.5", "lottery"} {
		s := s
		t.Run(s, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			if err := run([]string{"-sched", s, "-n", "4", "-steps", "20000"}, &buf); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunWithCrashes(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "8", "-crash", "4", "-steps", "20000"}, &buf); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	tests := [][]string{
		{"-algo", "nope"},
		{"-sched", "nope"},
		{"-sched", "sticky:abc"},
		{"-sched", "sticky:1.5"},
		{"-algo", "parallel", "-q", "0"},
		{"-sched", "roundrobin", "-crash", "9", "-n", "8"},
		{"-bogusflag"},
	}
	for _, args := range tests {
		var buf bytes.Buffer
		if err := run(append(args, "-steps", "100"), &buf); err == nil {
			t.Errorf("args %v: nil error", args)
		}
	}
}
