package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"pwf"
	"pwf/internal/api"
)

// The end-to-end acceptance criterion, over a real listener: a grid
// submitted to the daemon streams back result lines byte-identical to
// the canonical encoding of a local pwf.RunSweep of the same grid and
// master seed.
func TestIntegrationStreamMatchesLocalRunSweep(t *testing.T) {
	inst, err := start([]string{"-addr", "127.0.0.1:0"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	base := "http://" + inst.Addr

	grid := api.Grid{V: api.Version, Seed: 11, Jobs: []api.Job{
		{Workload: api.Workload{Kind: "fetchinc"}, N: 4, Steps: 20000, WarmupFraction: 0.1, Exact: true},
		{Workload: api.Workload{Kind: "scu", S: 1}, N: 3, Steps: 20000, Exact: true},
		{Workload: api.Workload{Kind: "fetchinc"}, N: 2, Steps: 20000,
			Sched: api.SchedulerSpec{Kind: "sticky", Rho: 0.25}},
	}}
	body, err := api.MarshalGrid(grid)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(base+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ack struct {
		ID         string `json:"id"`
		ResultsURL string `json:"results_url"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	stream, err := http.Get(base + ack.ResultsURL)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(stream.Body)
	stream.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Ground truth through the public API: same jobs, same master
	// seed, local worker pool.
	jobs := make([]pwf.SweepJob, len(grid.Jobs))
	for i, j := range grid.Jobs {
		jobs[i] = j.Sweep()
	}
	results, err := pwf.RunSweep(pwf.SweepConfig{Jobs: jobs, Seed: grid.Seed})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	for _, r := range results {
		if err := api.WriteResultLine(&want, api.ResultFromSweep(r)); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("served stream differs from local RunSweep:\n got: %s\nwant: %s", got, want.Bytes())
	}

	// The daemon's observability surface answers.
	hz, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Errorf("/healthz status %d", hz.StatusCode)
	}
	mr, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(mr.Body)
	mr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(metrics) {
		t.Error("/metrics is not valid JSON")
	}
	if !strings.Contains(string(metrics), "server_jobs_completed") {
		t.Error("/metrics lacks server_jobs_completed")
	}
}

func TestStartRejectsBadFlags(t *testing.T) {
	if _, err := start([]string{"-workers", "-1"}, io.Discard); err == nil {
		t.Error("negative -workers accepted")
	}
	if _, err := start([]string{"-addr", "256.0.0.1:bogus"}, io.Discard); err == nil {
		t.Error("unlistenable -addr accepted")
	}
}
