// Command pwfserve runs the sweep engine as an HTTP/JSON service:
// clients submit job grids over the versioned internal/api wire
// schema and stream back canonical NDJSON results that are
// byte-identical to running the same grid locally with the same
// master seed.
//
// Usage:
//
//	pwfserve -addr 127.0.0.1:8080
//
// Submit a grid, stream its results, inspect the server:
//
//	curl -s -d '{"v":1,"seed":1,"jobs":[{"workload":{"kind":"fetchinc"},
//	  "n":8,"steps":100000,"warmup_fraction":0.1,"exact":true}]}' \
//	  http://127.0.0.1:8080/v1/sweeps
//	curl -sN http://127.0.0.1:8080/v1/sweeps/s1/results
//	curl -s  http://127.0.0.1:8080/metrics
//
// Endpoints: POST /v1/sweeps, GET /v1/sweeps/{id},
// GET /v1/sweeps/{id}/results (resumable via ?cursor= or
// Last-Event-ID), /metrics, /healthz, /debug/vars, /debug/pprof/.
//
// Admission is bounded: grids beyond -max-grid jobs and bodies beyond
// -max-body bytes get 413; submissions that would push the queue past
// -max-queue jobs get 429 with a Retry-After header. All errors carry
// a structured JSON body with a stable code. Finished sweeps age out
// of retention; querying an evicted id yields 410 Gone (code "gone").
//
// With -checkpoint-dir, accepted sweeps survive restarts: grids and
// completed points persist there (format internal/checkpoint), a
// restarted daemon re-enqueues them, already-completed points replay
// from the checkpoint instead of recomputing, and result-stream
// cursors issued before the restart remain valid.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pwf/internal/obs"
	"pwf/internal/server"
	"pwf/internal/sweep"
)

func main() {
	inst, err := start(os.Args[1:], os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pwfserve:", err)
		os.Exit(1)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "pwfserve: shutting down")
	inst.Close()
}

// instance is a started daemon: its bound address and a blocking
// shutdown. Separating start from main keeps the daemon testable —
// the integration test drives a real listener through this.
type instance struct {
	Addr string

	httpSrv *http.Server
	srv     *server.Server
}

// Close stops the listener, then the executor (canceling the running
// sweep at its next job boundary).
func (in *instance) Close() {
	_ = in.httpSrv.Close()
	in.srv.Close()
}

func start(args []string, errOut io.Writer) (*instance, error) {
	fs := flag.NewFlagSet("pwfserve", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		addr       = fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		maxGrid    = fs.Int("max-grid", 4096, "maximum jobs per submitted grid")
		maxQueue   = fs.Int("max-queue", 16384, "maximum queued-but-unfinished jobs before 429")
		maxBody    = fs.Int64("max-body", 8<<20, "maximum request body bytes")
		workers    = fs.Int("workers", 0, "sweep worker pool size (default GOMAXPROCS)")
		retryAfter = fs.Duration("retry-after", time.Second, "backoff advertised on 429 responses")
		ckptDir    = fs.String("checkpoint-dir", "", "persist sweeps here (grids + completed-point checkpoints) so they survive restarts")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if *workers < 0 {
		return nil, fmt.Errorf("-workers must be non-negative (0 = GOMAXPROCS), got %d", *workers)
	}
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			return nil, fmt.Errorf("-checkpoint-dir: %w", err)
		}
	}

	srv := server.New(server.Config{
		MaxGridJobs:   *maxGrid,
		MaxQueuedJobs: *maxQueue,
		MaxBodyBytes:  *maxBody,
		Workers:       *workers,
		RetryAfter:    *retryAfter,
		CheckpointDir: *ckptDir,
		Registry:      obs.Default,
		Cache:         sweep.DefaultCache,
		Log: func(format string, args ...any) {
			fmt.Fprintf(errOut, "pwfserve: "+format+"\n", args...)
		},
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		srv.Close()
		return nil, err
	}
	// No write timeout: result streams legitimately stay open for the
	// life of a long sweep.
	httpSrv := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = httpSrv.Serve(ln) }()
	fmt.Fprintf(errOut, "pwfserve listening on %s\n", ln.Addr())
	return &instance{Addr: ln.Addr().String(), httpSrv: httpSrv, srv: srv}, nil
}
