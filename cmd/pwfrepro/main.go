// Command pwfrepro runs the full experiment suite reproducing every
// figure and analytical claim of "Are Lock-Free Concurrent Algorithms
// Practically Wait-Free?" and prints one table per experiment.
//
// Usage:
//
//	pwfrepro [-quick] [-seed N] [-only E3[,E7,...]] [-workers K]
//
// Simulation grids run on the pwf sweep engine; -workers bounds its
// worker pool without changing any result.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"pwf/internal/exp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pwfrepro:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pwfrepro", flag.ContinueOnError)
	var (
		quick   = fs.Bool("quick", false, "run reduced experiment sizes")
		seed    = fs.Uint64("seed", 1, "seed for all simulation randomness")
		only    = fs.String("only", "", "comma-separated experiment ids to run (e.g. E3,E7)")
		workers = fs.Int("workers", 0, "sweep worker pool size (default GOMAXPROCS); results are identical for any value")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	want := make(map[string]bool)
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	cfg := exp.Config{Seed: *seed, Quick: *quick, Workers: *workers}
	ran := 0
	for _, r := range exp.All() {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		began := time.Now()
		table, err := r.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s (%s): %w", r.ID, r.Name, err)
		}
		if err := table.Render(out); err != nil {
			return err
		}
		fmt.Fprintf(out, "(%s took %v)\n\n", r.ID, time.Since(began).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiments matched -only=%q", *only)
	}
	return nil
}
