package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunOnlySubset(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-only", "E10"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "E10") {
		t.Errorf("output missing E10:\n%s", out)
	}
	if strings.Contains(out, "E3 —") {
		t.Error("output contains unselected experiment")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-only", "E99"}, &buf); err == nil {
		t.Fatal("unknown experiment id: nil error")
	}
}

func TestRunBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-nope"}, &buf); err == nil {
		t.Fatal("bad flag: nil error")
	}
}

func TestRunSeedAffectsNothingStructural(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-quick", "-only", "E6", "-seed", "1"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-quick", "-only", "E6", "-seed", "2"}, &b); err != nil {
		t.Fatal(err)
	}
	// Both runs must produce a complete E6 table (values may differ).
	for _, out := range []string{a.String(), b.String()} {
		if !strings.Contains(out, "Lemma 11") {
			t.Errorf("missing table title:\n%s", out)
		}
	}
}
