package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunEmitsValidReport(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-n", "16", "-draws", "200", "-steps", "500", "-reps", "1"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if rep.Host.GoVersion == "" || rep.Generated == "" {
		t.Errorf("missing host/timestamp metadata: %+v", rep.Host)
	}
	// 5 schedulers x 2 impls at one n.
	if len(rep.Draw) != 10 {
		t.Errorf("got %d draw rows, want 10", len(rep.Draw))
	}
	for _, d := range rep.Draw {
		if d.NsOp <= 0 {
			t.Errorf("%s/%s: non-positive ns/draw %v", d.Sched, d.Impl, d.NsOp)
		}
		if d.Impl == "naive" && d.SpeedupVsNaive != 1 {
			t.Errorf("%s/naive: speedup %v, want 1", d.Sched, d.SpeedupVsNaive)
		}
		if d.Impl != "naive" && d.SpeedupVsNaive <= 0 {
			t.Errorf("%s/%s: missing speedup", d.Sched, d.Impl)
		}
	}
	// 2 scheduler kinds at one n.
	if len(rep.Sweep) != 2 {
		t.Errorf("got %d sweep rows, want 2", len(rep.Sweep))
	}
	for _, s := range rep.Sweep {
		if s.StepsPerSec <= 0 || s.NsPerStep <= 0 {
			t.Errorf("%s n=%d: non-positive throughput %+v", s.Sched, s.N, s)
		}
	}
}

func TestRunWritesOutFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	err := run([]string{"-n", "16", "-draws", "100", "-steps", "200", "-reps", "1", "-out", path}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON in -out file: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-n", "0"},
		{"-n", "abc"},
		{"-n", "16", "-draws", "0"},
		{"-n", "16", "-steps", "0"},
		{"-n", "16", "-reps", "0"},
		{"-n", "16", "-scheds", ""},
		{"-n", "16", "-scheds", "bogus"},
		{"-n", "16", "-scheds", "sticky:1.5"},
	} {
		if err := run(args, os.Stdout); err == nil {
			t.Errorf("args %v: nil error", args)
		}
	}
}

// -scheds speaks the shared scheduler grammar, including specs whose
// arguments themselves contain commas, and sweep rows echo the
// canonical rendering.
func TestRunSchedsFlagUsesSharedGrammar(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-n", "16", "-draws", "100", "-steps", "500", "-reps", "1",
		"-scheds", "sticky:0.5, lottery:" + strings.Repeat("1,", 15) + "2",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(rep.Sweep) != 2 {
		t.Fatalf("got %d sweep rows, want 2", len(rep.Sweep))
	}
	if rep.Sweep[0].Sched != "sticky:0.5" {
		t.Errorf("sweep row 0 sched %q, want sticky:0.5", rep.Sweep[0].Sched)
	}
	if want := "lottery:" + strings.Repeat("1,", 15) + "2"; rep.Sweep[1].Sched != want {
		t.Errorf("sweep row 1 sched %q, want %q", rep.Sweep[1].Sched, want)
	}
}
