package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunEmitsValidReport(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-n", "16", "-draws", "200", "-steps", "500", "-reps", "1", "-width", "2",
		"-tracen", "16", "-tracesteps", "500"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if rep.Host == nil || rep.Host.GoVersion == "" || rep.Generated == "" {
		t.Errorf("missing host/timestamp metadata: %+v", rep.Host)
	}
	// 5 schedulers x 2 impls at one n.
	if len(rep.Draw) != 10 {
		t.Errorf("got %d draw rows, want 10", len(rep.Draw))
	}
	for _, d := range rep.Draw {
		if d.NsOp <= 0 {
			t.Errorf("%s/%s: non-positive ns/draw %v", d.Sched, d.Impl, d.NsOp)
		}
		if d.Impl == "naive" && d.SpeedupVsNaive != 1 {
			t.Errorf("%s/naive: speedup %v, want 1", d.Sched, d.SpeedupVsNaive)
		}
		if d.Impl != "naive" && d.SpeedupVsNaive <= 0 {
			t.Errorf("%s/%s: missing speedup", d.Sched, d.Impl)
		}
	}
	// 6 workloads x 2 scheduler kinds at one n.
	if len(rep.Sweep) != 12 {
		t.Errorf("got %d sweep rows, want 12", len(rep.Sweep))
	}
	perWorkload := map[string]int{}
	for _, s := range rep.Sweep {
		perWorkload[s.Workload]++
	}
	for _, bw := range benchWorkloadCatalog {
		if perWorkload[bw.name] != 2 {
			t.Errorf("workload %s: %d sweep rows, want 2", bw.name, perWorkload[bw.name])
		}
	}
	for _, s := range rep.Sweep {
		if s.ScalarStepsPerSec <= 0 || s.ScalarNsPerStep <= 0 {
			t.Errorf("%s n=%d: non-positive scalar throughput %+v", s.Sched, s.N, s)
		}
		if s.BatchStepsPerSec <= 0 || s.BatchNsPerStep <= 0 {
			t.Errorf("%s n=%d: non-positive batch throughput %+v", s.Sched, s.N, s)
		}
		if s.BatchWidth != 2 {
			t.Errorf("%s n=%d: batch width %d, want 2", s.Sched, s.N, s.BatchWidth)
		}
		if s.BatchSpeedup <= 0 {
			t.Errorf("%s n=%d: missing batch speedup", s.Sched, s.N)
		}
	}
	// ndjson, bin, bin-gzip over the same run.
	if len(rep.Trace) != 3 {
		t.Fatalf("got %d trace rows, want 3", len(rep.Trace))
	}
	for _, tr := range rep.Trace {
		if tr.Events <= 0 || tr.Bytes <= 0 || tr.BytesPerEvent <= 0 {
			t.Errorf("trace %s: non-positive size figures %+v", tr.Format, tr)
		}
		if tr.EncodeNsPerEvent <= 0 || tr.DecodeNsPerEvent <= 0 || tr.TracedNsPerStep <= 0 {
			t.Errorf("trace %s: non-positive timing figures %+v", tr.Format, tr)
		}
	}
	if rep.Trace[0].Format != "ndjson" || rep.Trace[0].CompressionVsNDJSON != 1 {
		t.Errorf("trace row 0 is not the ndjson reference: %+v", rep.Trace[0])
	}
	for _, tr := range rep.Trace[1:] {
		if tr.CompressionVsNDJSON <= 3 {
			t.Errorf("trace %s: compression %.2fx vs NDJSON, want well above 1",
				tr.Format, tr.CompressionVsNDJSON)
		}
	}
}

func TestRunWritesOutDir(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-n", "16", "-draws", "100", "-steps", "200", "-reps", "1", "-width", "2",
		"-tracen", "16", "-tracesteps", "200", "-outdir", dir}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	for name, check := range map[string]func(Report) bool{
		"BENCH_sched.json": func(r Report) bool { return len(r.Draw) > 0 && len(r.Sweep) == 0 && len(r.Trace) == 0 },
		"BENCH_sweep.json": func(r Report) bool { return len(r.Sweep) > 0 && len(r.Draw) == 0 && len(r.Trace) == 0 },
		"BENCH_trace.json": func(r Report) bool { return len(r.Trace) == 3 && len(r.Draw) == 0 && len(r.Sweep) == 0 },
	} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		var rep Report
		if err := json.Unmarshal(data, &rep); err != nil {
			t.Fatalf("invalid JSON in %s: %v", name, err)
		}
		if !check(rep) {
			t.Errorf("%s holds the wrong sections: %+v", name, rep)
		}
		// Checked-in files must diff cleanly across machines.
		if rep.Host != nil || rep.Generated != "" {
			t.Errorf("%s keeps host/timestamp metadata", name)
		}
	}
}

func TestRunCheckGate(t *testing.T) {
	dir := t.TempDir()
	fast := filepath.Join(dir, "fast.json")
	args := func(extra ...string) []string {
		return append([]string{"-n", "16", "-draws", "100", "-steps", "200",
			"-reps", "1", "-width", "2", "-tracen", "16", "-tracesteps", "200",
			"-outdir", dir}, extra...)
	}
	// Seed baselines from a real run, then compare against them: the
	// same grid within a generous tolerance must pass, including with
	// both baselines on one comma-separated -check.
	if err := run(append(args(), "-outdir", dir), os.Stdout); err != nil {
		t.Fatal(err)
	}
	baseline := filepath.Join(dir, "BENCH_sweep.json")
	traceBaseline := filepath.Join(dir, "BENCH_trace.json")
	if err := run(args("-check", baseline+","+traceBaseline, "-tolerance", "1000"), os.Stdout); err != nil {
		t.Errorf("generous tolerance failed the gate: %v", err)
	}
	// An impossibly fast baseline must trip it.
	var rep Report
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	for i := range rep.Sweep {
		rep.Sweep[i].ScalarNsPerStep = 1e-6
		rep.Sweep[i].BatchNsPerStep = 1e-6
	}
	enc, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fast, enc, 0o644); err != nil {
		t.Fatal(err)
	}
	err = run(args("-check", fast), os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Errorf("impossible baseline passed the gate: %v", err)
	}
	// Same for the trace section: an impossibly cheap encoder and an
	// impossibly good compression ratio must both trip the gate.
	fastTrace := filepath.Join(dir, "fast-trace.json")
	data, err = os.ReadFile(traceBaseline)
	if err != nil {
		t.Fatal(err)
	}
	var traceRep Report
	if err := json.Unmarshal(data, &traceRep); err != nil {
		t.Fatal(err)
	}
	for i := range traceRep.Trace {
		traceRep.Trace[i].EncodeNsPerEvent = 1e-6
		traceRep.Trace[i].CompressionVsNDJSON = 1e6
	}
	enc, err = json.Marshal(traceRep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fastTrace, enc, 0o644); err != nil {
		t.Fatal(err)
	}
	err = run(args("-check", fastTrace), os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "trace") {
		t.Errorf("impossible trace baseline passed the gate: %v", err)
	}
	// A missing baseline is an error, not a silent pass — even when it
	// is the second of two comma-separated files.
	if err := run(args("-check", filepath.Join(dir, "missing.json")), os.Stdout); err == nil {
		t.Error("missing baseline passed the gate")
	}
	if err := run(args("-check", baseline+","+filepath.Join(dir, "missing.json"), "-tolerance", "1000"), os.Stdout); err == nil {
		t.Error("missing second baseline passed the gate")
	}
	// Baseline rows for a different grid are ignored.
	other := filepath.Join(dir, "other.json")
	otherRep := Report{Sweep: []SweepResult{{Sched: "uniform", Workload: "scu", N: 9999, Steps: 200, ScalarNsPerStep: 1e-6}}}
	enc, err = json.Marshal(otherRep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(other, enc, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(args("-check", other), os.Stdout); err != nil {
		t.Errorf("unmatched baseline rows tripped the gate: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-n", "0"},
		{"-n", "abc"},
		{"-n", "16", "-draws", "0"},
		{"-n", "16", "-steps", "0"},
		{"-n", "16", "-reps", "0"},
		{"-n", "16", "-width", "0"},
		{"-n", "16", "-tolerance", "-0.5"},
		{"-n", "16", "-tracen", "1"},
		{"-n", "16", "-tracesteps", "0"},
		{"-n", "16", "-scheds", ""},
		{"-n", "16", "-scheds", "bogus"},
		{"-n", "16", "-scheds", "sticky:1.5"},
		{"-n", "16", "-workloads", ""},
		{"-n", "16", "-workloads", "bogus"},
		{"-n", "16", "-workloads", "scu,list"},
	} {
		if err := run(args, os.Stdout); err == nil {
			t.Errorf("args %v: nil error", args)
		}
	}
}

// -workloads filters the sweep grid, keeps catalogue row order
// regardless of flag order, and the pointer-based kinds stay capped at
// n <= 1024 while scu covers the full -n list.
func TestRunWorkloadsFlagFiltersAndCaps(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-n", "16,2048", "-draws", "100", "-steps", "20000", "-reps", "1", "-width", "2",
		"-tracen", "16", "-tracesteps", "200",
		"-scheds", "uniform", "-workloads", "stack,scu",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	var got []string
	for _, s := range rep.Sweep {
		got = append(got, fmt.Sprintf("%s/%d", s.Workload, s.N))
	}
	want := []string{"scu/16", "stack/16", "scu/2048"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("sweep rows %v, want %v", got, want)
	}
}

// -scheds speaks the shared scheduler grammar, including specs whose
// arguments themselves contain commas, and sweep rows echo the
// canonical rendering.
func TestRunSchedsFlagUsesSharedGrammar(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-n", "16", "-draws", "100", "-steps", "500", "-reps", "1", "-width", "2",
		"-tracen", "16", "-tracesteps", "200", "-workloads", "scu",
		"-scheds", "sticky:0.5, lottery:" + strings.Repeat("1,", 15) + "2",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(rep.Sweep) != 2 {
		t.Fatalf("got %d sweep rows, want 2", len(rep.Sweep))
	}
	if rep.Sweep[0].Sched != "sticky:0.5" {
		t.Errorf("sweep row 0 sched %q, want sticky:0.5", rep.Sweep[0].Sched)
	}
	if want := "lottery:" + strings.Repeat("1,", 15) + "2"; rep.Sweep[1].Sched != want {
		t.Errorf("sweep row 1 sched %q, want %q", rep.Sweep[1].Sched, want)
	}
}
