// Command pwfbench measures the cost of scheduler sampling and of
// end-to-end simulation, and emits the results as machine-readable
// JSON (BENCH_sched.json at the repository root) so successive PRs
// can diff steps/sec instead of re-reading prose. It times two things:
//
//   - the per-draw cost of every stochastic scheduler, fast path
//     (alias table / Fenwick tree / dense active set) against the
//     naive O(n) reference samplers, over the paper-scale process
//     counts; and
//   - the end-to-end simulated steps per second of a sweep job at the
//     same process counts, which is what the ROADMAP's "as fast as
//     the hardware allows" goal is scored on.
//
// Usage:
//
//	pwfbench                     # print JSON to stdout
//	pwfbench -out BENCH_sched.json
//	pwfbench -n 16,256,1024,4096 -draws 200000 -steps 100000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"pwf/internal/rng"
	"pwf/internal/sched"
	"pwf/internal/sweep"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pwfbench:", err)
		os.Exit(1)
	}
}

// Report is the top-level BENCH_sched.json schema.
type Report struct {
	// Generated is the RFC 3339 measurement time.
	Generated string `json:"generated"`
	// Host describes the measuring machine; wall-clock numbers are
	// only comparable within one host.
	Host Host `json:"host"`
	// Draw holds per-draw scheduler sampling costs.
	Draw []DrawResult `json:"draw"`
	// Sweep holds end-to-end simulation throughput.
	Sweep []SweepResult `json:"sweep"`
}

// Host identifies the benchmark environment.
type Host struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// DrawResult is one (scheduler, implementation, n) sampling cost.
type DrawResult struct {
	Sched string `json:"sched"`
	// Impl is the sampling structure: alias, fenwick, dense, or naive.
	Impl string  `json:"impl"`
	N    int     `json:"n"`
	NsOp float64 `json:"ns_per_draw"`
	// SpeedupVsNaive is NsOp(naive)/NsOp for fast rows, 1 for naive
	// rows.
	SpeedupVsNaive float64 `json:"speedup_vs_naive,omitempty"`
}

// SweepResult is one end-to-end simulation throughput point.
type SweepResult struct {
	Sched       string  `json:"sched"`
	Workload    string  `json:"workload"`
	N           int     `json:"n"`
	Steps       uint64  `json:"steps"`
	NsPerStep   float64 `json:"ns_per_step"`
	StepsPerSec float64 `json:"steps_per_sec"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pwfbench", flag.ContinueOnError)
	var (
		outPath = fs.String("out", "", "write JSON here instead of stdout")
		nList   = fs.String("n", "16,256,1024,4096", "comma-separated process counts")
		draws   = fs.Int("draws", 200000, "draws per (scheduler, impl, n) timing")
		steps   = fs.Uint64("steps", 100000, "steps per end-to-end sweep job")
		reps    = fs.Int("reps", 3, "repetitions per timing; the minimum is kept")
		scheds  = fs.String("scheds", "uniform,lottery", "comma-separated scheduler specs for end-to-end sweeps, in the shared grammar (e.g. uniform, sticky:0.9, weighted, phased:1,3@500/1,1@500)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ns, err := parseNList(*nList)
	if err != nil {
		return err
	}
	if *draws < 1 || *steps < 1 || *reps < 1 {
		return fmt.Errorf("-draws, -steps and -reps must be >= 1")
	}
	specs, err := parseScheds(*scheds)
	if err != nil {
		return err
	}

	rep := Report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Host: Host{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
	}
	for _, n := range ns {
		res, err := measureDraws(n, *draws, *reps)
		if err != nil {
			return err
		}
		rep.Draw = append(rep.Draw, res...)
	}
	for _, n := range ns {
		res, err := measureSweeps(n, *steps, *reps, specs)
		if err != nil {
			return err
		}
		rep.Sweep = append(rep.Sweep, res...)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *outPath != "" {
		return os.WriteFile(*outPath, enc, 0o644)
	}
	_, err = out.Write(enc)
	return err
}

// parseScheds parses the -scheds list with the same grammar pwfsim's
// -sched flag and the serve API's SchedulerSpec strings use.
func parseScheds(s string) ([]sweep.SchedulerSpec, error) {
	var out []sweep.SchedulerSpec
	for _, f := range strings.Split(s, ";") {
		for _, name := range splitTopLevel(f) {
			spec, err := sweep.ParseScheduler(strings.TrimSpace(name))
			if err != nil {
				return nil, fmt.Errorf("parse -scheds: %w", err)
			}
			out = append(out, spec)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -scheds list")
	}
	return out, nil
}

// splitTopLevel splits a comma-separated scheduler list without
// breaking commas inside a spec's own arguments (lottery:1,2,4): a
// comma starts a new spec only when what follows looks like a
// scheduler name, i.e. begins with a letter.
func splitTopLevel(s string) []string {
	var parts []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] != ',' {
			continue
		}
		rest := strings.TrimSpace(s[i+1:])
		if rest == "" || (rest[0] >= 'a' && rest[0] <= 'z') || (rest[0] >= 'A' && rest[0] <= 'Z') {
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	parts = append(parts, s[start:])
	return parts
}

func parseNList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 8 {
			return nil, fmt.Errorf("bad -n entry %q (need integers >= 8)", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -n list")
	}
	return out, nil
}

// samplerSpec names one (scheduler, impl) timing configuration. The
// build function crashes n/8 processes first so the measured path is
// the crash-mode one — the case the constant-time structures exist
// for — and returns the draw closure.
type samplerSpec struct {
	sched string
	impl  string
	build func(n int) (func() (int, error), error)
}

func samplers() []samplerSpec {
	crashSome := func(c sched.Crasher, n int) error {
		for pid := 0; pid < n/8; pid++ {
			if err := c.Crash(pid); err != nil {
				return err
			}
		}
		return nil
	}
	weights := func(n int) []float64 {
		ws := make([]float64, n)
		for i := range ws {
			ws[i] = float64(i%17 + 1)
		}
		return ws
	}
	tickets := func(n int) []int {
		ts := make([]int, n)
		for i := range ts {
			ts[i] = i%9 + 1
		}
		return ts
	}
	return []samplerSpec{
		{"uniform", "dense", func(n int) (func() (int, error), error) {
			u, err := sched.NewUniform(n, rng.New(1))
			if err != nil {
				return nil, err
			}
			return u.Next, crashSome(u, n)
		}},
		{"uniform", "naive", func(n int) (func() (int, error), error) {
			u, err := sched.NewUniform(n, rng.New(1))
			if err != nil {
				return nil, err
			}
			return u.NextNaive, crashSome(u, n)
		}},
		{"weighted", "alias", func(n int) (func() (int, error), error) {
			w, err := sched.NewWeighted(weights(n), rng.New(2))
			if err != nil {
				return nil, err
			}
			return w.Next, crashSome(w, n)
		}},
		{"weighted", "naive", func(n int) (func() (int, error), error) {
			w, err := sched.NewWeighted(weights(n), rng.New(2))
			if err != nil {
				return nil, err
			}
			return w.NextNaive, crashSome(w, n)
		}},
		{"lottery", "fenwick", func(n int) (func() (int, error), error) {
			l, err := sched.NewLottery(tickets(n), rng.New(3))
			if err != nil {
				return nil, err
			}
			return l.Next, crashSome(l, n)
		}},
		{"lottery", "naive", func(n int) (func() (int, error), error) {
			l, err := sched.NewLottery(tickets(n), rng.New(3))
			if err != nil {
				return nil, err
			}
			return l.NextNaive, crashSome(l, n)
		}},
		{"sticky", "dense", func(n int) (func() (int, error), error) {
			s, err := sched.NewSticky(n, 0.8, rng.New(4))
			if err != nil {
				return nil, err
			}
			return s.Next, crashSome(s, n)
		}},
		{"sticky", "naive", func(n int) (func() (int, error), error) {
			s, err := sched.NewSticky(n, 0.8, rng.New(4))
			if err != nil {
				return nil, err
			}
			return s.NextNaive, crashSome(s, n)
		}},
		{"phased", "alias", func(n int) (func() (int, error), error) {
			p, err := sched.NewPhased(n, phases(weights(n)), rng.New(5))
			if err != nil {
				return nil, err
			}
			return p.Next, crashSome(p, n)
		}},
		{"phased", "naive", func(n int) (func() (int, error), error) {
			p, err := sched.NewPhased(n, phases(weights(n)), rng.New(5))
			if err != nil {
				return nil, err
			}
			return p.NextNaive, crashSome(p, n)
		}},
	}
}

func phases(ws []float64) []sched.Phase {
	return []sched.Phase{
		{Weights: ws, Steps: 64},
		{Weights: ws, Steps: 32},
	}
}

// sink keeps the timed loops from being dead-code-eliminated.
var sink int

func measureDraws(n, draws, reps int) ([]DrawResult, error) {
	var out []DrawResult
	naiveNs := map[string]float64{}
	for _, spec := range samplers() {
		next, err := spec.build(n)
		if err != nil {
			return nil, fmt.Errorf("build %s/%s n=%d: %w", spec.sched, spec.impl, n, err)
		}
		best := 0.0
		for r := 0; r < reps; r++ {
			start := time.Now()
			for i := 0; i < draws; i++ {
				pid, err := next()
				if err != nil {
					return nil, fmt.Errorf("draw %s/%s n=%d: %w", spec.sched, spec.impl, n, err)
				}
				sink += pid
			}
			ns := float64(time.Since(start).Nanoseconds()) / float64(draws)
			if r == 0 || ns < best {
				best = ns
			}
		}
		res := DrawResult{Sched: spec.sched, Impl: spec.impl, N: n, NsOp: best}
		if spec.impl == "naive" {
			naiveNs[spec.sched] = best
			res.SpeedupVsNaive = 1
		}
		out = append(out, res)
	}
	// The naive row of each scheduler is measured after its fast row,
	// so fill speedups in a second pass.
	for i := range out {
		if out[i].Impl != "naive" {
			if nn, ok := naiveNs[out[i].Sched]; ok && out[i].NsOp > 0 {
				out[i].SpeedupVsNaive = nn / out[i].NsOp
			}
		}
	}
	return out, nil
}

func measureSweeps(n int, steps uint64, reps int, specs []sweep.SchedulerSpec) ([]SweepResult, error) {
	var out []SweepResult
	for _, spec := range specs {
		job := sweep.Job{
			Workload: sweep.Workload{Kind: sweep.SCU, S: 1},
			N:        n,
			Sched:    spec,
			Steps:    steps,
			Crash:    1,
		}
		best := time.Duration(0)
		for r := 0; r < reps; r++ {
			start := time.Now()
			if _, err := sweep.RunJob(job, 1, nil); err != nil {
				return nil, fmt.Errorf("sweep %s n=%d: %w", spec.Kind, n, err)
			}
			if d := time.Since(start); r == 0 || d < best {
				best = d
			}
		}
		sec := best.Seconds()
		out = append(out, SweepResult{
			Sched:       spec.String(),
			Workload:    string(sweep.SCU),
			N:           n,
			Steps:       steps,
			NsPerStep:   float64(best.Nanoseconds()) / float64(steps),
			StepsPerSec: float64(steps) / sec,
		})
	}
	return out, nil
}
