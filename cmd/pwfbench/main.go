// Command pwfbench measures the cost of scheduler sampling and of
// end-to-end simulation, and emits the results as machine-readable
// per-subsystem JSON files (BENCH_sched.json and BENCH_sweep.json at
// the repository root) so successive PRs can diff steps/sec instead
// of re-reading prose. It times two things:
//
//   - the per-draw cost of every stochastic scheduler, fast path
//     (alias table / Fenwick tree / dense active set) against the
//     naive O(n) reference samplers, over the paper-scale process
//     counts (BENCH_sched.json); and
//   - the end-to-end simulated steps per second of a sweep job at the
//     same process counts, on the scalar path and through the
//     replica-batched core, which is what the ROADMAP's "as fast as
//     the hardware allows" goal is scored on (BENCH_sweep.json). The
//     -workloads flag selects which batchable kinds are measured; the
//     pointer-based kinds (stack, queue, rcu, unbounded, lfuniversal)
//     are capped at n <= 1024 to keep the grid affordable; and
//   - the trace pipeline: per-event encode/decode cost, bytes per
//     event, and end-to-end traced throughput of one uniform run
//     (-tracen processes, -tracesteps steps) in every trace format —
//     NDJSON, binary, binary+gzip (BENCH_trace.json). The
//     encode_overhead_vs_ndjson_traced_pct column reports each
//     format's added tracing cost (traced minus untraced wall time)
//     as a percentage of the NDJSON-traced run it replaces; the
//     binary rows are expected to stay under 10%.
//
// Files written with -outdir omit the host and timestamp metadata so
// the checked-in copies diff cleanly PR over PR; the stdout report
// keeps them. -check compares the freshly measured rows against one
// or more checked-in baselines (comma-separated) and exits non-zero
// when any sweep ns-per-step figure, trace encode cost, or trace
// compression ratio regressed beyond -tolerance, which is how CI
// catches sweep-core and trace-pipeline slowdowns.
//
// Usage:
//
//	pwfbench                                # print combined JSON to stdout
//	pwfbench -outdir .                      # write BENCH_sched.json + BENCH_sweep.json + BENCH_trace.json
//	pwfbench -outdir . -check BENCH_sweep.json,BENCH_trace.json -tolerance 0.25
//	pwfbench -n 16,256,1024,4096 -draws 200000 -steps 100000
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"pwf/internal/obs"
	"pwf/internal/rng"
	"pwf/internal/sched"
	"pwf/internal/sweep"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pwfbench:", err)
		os.Exit(1)
	}
}

// Report is the combined stdout schema; the per-subsystem files each
// carry one of the two sections. Generated and Host are omitted from
// files written with -outdir so checked-in copies diff cleanly.
type Report struct {
	// Generated is the RFC 3339 measurement time.
	Generated string `json:"generated,omitempty"`
	// Host describes the measuring machine; wall-clock numbers are
	// only comparable within one host.
	Host *Host `json:"host,omitempty"`
	// Draw holds per-draw scheduler sampling costs (BENCH_sched.json).
	Draw []DrawResult `json:"draw,omitempty"`
	// Sweep holds end-to-end simulation throughput (BENCH_sweep.json).
	Sweep []SweepResult `json:"sweep,omitempty"`
	// Trace holds trace-pipeline encode/decode throughput and size per
	// format (BENCH_trace.json).
	Trace []TraceResult `json:"trace,omitempty"`
}

// Host identifies the benchmark environment.
type Host struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// DrawResult is one (scheduler, implementation, n) sampling cost.
type DrawResult struct {
	Sched string `json:"sched"`
	// Impl is the sampling structure: alias, fenwick, dense, or naive.
	Impl string  `json:"impl"`
	N    int     `json:"n"`
	NsOp float64 `json:"ns_per_draw"`
	// SpeedupVsNaive is NsOp(naive)/NsOp for fast rows, 1 for naive
	// rows.
	SpeedupVsNaive float64 `json:"speedup_vs_naive,omitempty"`
}

// SweepResult is one end-to-end simulation throughput point: the
// scalar per-job path and the replica-batched core on the same job
// shape.
type SweepResult struct {
	Sched    string `json:"sched"`
	Workload string `json:"workload"`
	N        int    `json:"n"`
	Steps    uint64 `json:"steps"`
	// Scalar path: one replica per RunJob call.
	ScalarNsPerStep   float64 `json:"scalar_ns_per_step"`
	ScalarStepsPerSec float64 `json:"scalar_steps_per_sec"`
	// Batched path: BatchWidth same-shape replicas per loop iteration.
	BatchWidth       int     `json:"batch_width"`
	BatchNsPerStep   float64 `json:"batch_ns_per_step"`
	BatchStepsPerSec float64 `json:"batch_steps_per_sec"`
	// BatchSpeedup is ScalarNsPerStep / BatchNsPerStep.
	BatchSpeedup float64 `json:"batch_speedup"`
}

// TraceResult is one trace-format measurement over the identical
// event stream of a uniform run: encode and decode cost per event,
// output size, and the end-to-end cost of running the simulation with
// the writer attached.
type TraceResult struct {
	// Format is ndjson, bin, or bin-gzip.
	Format string `json:"format"`
	N      int    `json:"n"`
	Steps  uint64 `json:"steps"`
	// Events is the number of events the run emitted.
	Events int `json:"events"`
	// Bytes is the encoded trace size.
	Bytes         int     `json:"bytes"`
	BytesPerEvent float64 `json:"bytes_per_event"`
	// CompressionVsNDJSON is ndjson bytes / this format's bytes (1 for
	// the ndjson row).
	CompressionVsNDJSON float64 `json:"compression_vs_ndjson"`
	EncodeNsPerEvent    float64 `json:"encode_ns_per_event"`
	DecodeNsPerEvent    float64 `json:"decode_ns_per_event"`
	// TracedNsPerStep is the end-to-end simulation cost with this
	// format's writer attached.
	TracedNsPerStep float64 `json:"traced_ns_per_step"`
	// EncodeOverheadVsNDJSONTracedPct is (traced − untraced) wall time
	// as a percentage of the NDJSON-traced run: what switching this
	// format's tracing on costs, relative to the v1 pipeline it
	// replaces. (Relative to the *untraced* run any per-event call
	// dominates — a ~20 ns/step simulator loop leaves no room — so the
	// honest yardstick for a faster format is the format it displaces.)
	EncodeOverheadVsNDJSONTracedPct float64 `json:"encode_overhead_vs_ndjson_traced_pct"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pwfbench", flag.ContinueOnError)
	var (
		outDir     = fs.String("outdir", "", "write BENCH_sched.json and BENCH_sweep.json into this directory (host metadata stripped) instead of printing to stdout")
		nList      = fs.String("n", "16,256,1024,4096", "comma-separated process counts")
		draws      = fs.Int("draws", 200000, "draws per (scheduler, impl, n) timing")
		steps      = fs.Uint64("steps", 100000, "steps per end-to-end sweep job")
		reps       = fs.Int("reps", 3, "repetitions per timing; the minimum is kept")
		width      = fs.Int("width", 16, "replica-batch width for the batched sweep timings")
		scheds     = fs.String("scheds", "uniform,lottery", "comma-separated scheduler specs for end-to-end sweeps, in the shared grammar (e.g. uniform, sticky:0.9, weighted, phased:1,3@500/1,1@500)")
		workloads  = fs.String("workloads", "scu,stack,queue,rcu,unbounded,lfuniversal", "comma-separated workloads for end-to-end sweeps (subset of scu, stack, queue, rcu, unbounded, lfuniversal)")
		traceN     = fs.Int("tracen", 1024, "process count for the trace-format timings")
		traceSteps = fs.Uint64("tracesteps", 1000000, "steps for the trace-format timings")
		checkPath  = fs.String("check", "", "comma-separated baseline files (BENCH_sweep.json and/or BENCH_trace.json) to compare measured rows against; fail on regression")
		tolerance  = fs.Float64("tolerance", 0.25, "relative slowdown tolerated by -check (0.25 = 25%)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ns, err := parseNList(*nList)
	if err != nil {
		return err
	}
	if *draws < 1 || *steps < 1 || *reps < 1 || *width < 1 {
		return fmt.Errorf("-draws, -steps, -reps and -width must be >= 1")
	}
	if *traceN < 2 || *traceSteps < 1 {
		return fmt.Errorf("-tracen must be >= 2 and -tracesteps >= 1")
	}
	if *tolerance < 0 {
		return fmt.Errorf("-tolerance must be >= 0")
	}
	specs, err := parseScheds(*scheds)
	if err != nil {
		return err
	}
	wls, err := parseWorkloads(*workloads)
	if err != nil {
		return err
	}

	rep := Report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Host: &Host{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
	}
	for _, n := range ns {
		res, err := measureDraws(n, *draws, *reps)
		if err != nil {
			return err
		}
		rep.Draw = append(rep.Draw, res...)
	}
	for _, n := range ns {
		res, err := measureSweeps(n, *steps, *reps, *width, specs, wls)
		if err != nil {
			return err
		}
		rep.Sweep = append(rep.Sweep, res...)
	}
	rep.Trace, err = measureTrace(*traceN, *traceSteps, *reps)
	if err != nil {
		return err
	}

	// Compare against the baselines before -outdir overwrites them, but
	// still write the fresh files either way so the new numbers are
	// available as an artifact even on a failing check.
	var checkErr error
	if *checkPath != "" {
		for _, p := range strings.Split(*checkPath, ",") {
			checkErr = errors.Join(checkErr, checkRegression(strings.TrimSpace(p), rep, *tolerance))
		}
	}
	if *outDir != "" {
		if err := writeReports(*outDir, rep); err != nil {
			return err
		}
		return checkErr
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if _, err := out.Write(enc); err != nil {
		return err
	}
	return checkErr
}

// writeReports writes the per-subsystem files with host metadata
// stripped, so regenerating on another machine only diffs the
// numbers.
func writeReports(dir string, rep Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	files := []struct {
		name string
		rep  Report
	}{
		{"BENCH_sched.json", Report{Draw: rep.Draw}},
		{"BENCH_sweep.json", Report{Sweep: rep.Sweep}},
		{"BENCH_trace.json", Report{Trace: rep.Trace}},
	}
	for _, f := range files {
		enc, err := json.MarshalIndent(f.rep, "", "  ")
		if err != nil {
			return err
		}
		enc = append(enc, '\n')
		if err := os.WriteFile(filepath.Join(dir, f.name), enc, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// checkRegression fails when a measured row is more than tolerance
// worse than the matching row of the baseline file: sweep rows on
// ns/step (scalar or batched), trace rows on encode ns/event and on a
// shrinking compression ratio. Sweep rows are matched on (sched,
// workload, n, steps) and trace rows on (format, n, steps); rows
// without a baseline counterpart pass, so grid changes do not trip
// the gate. One baseline file may carry either or both sections.
func checkRegression(path string, cur Report, tolerance float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("-check baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("-check baseline %s: %w", path, err)
	}
	key := func(r SweepResult) string {
		return fmt.Sprintf("%s|%s|%d|%d", r.Sched, r.Workload, r.N, r.Steps)
	}
	byKey := map[string]SweepResult{}
	for _, r := range base.Sweep {
		byKey[key(r)] = r
	}
	var regressions []string
	for _, r := range cur.Sweep {
		b, ok := byKey[key(r)]
		if !ok {
			continue
		}
		if b.ScalarNsPerStep > 0 && r.ScalarNsPerStep > b.ScalarNsPerStep*(1+tolerance) {
			regressions = append(regressions, fmt.Sprintf(
				"%s %s n=%d scalar: %.2f ns/step vs baseline %.2f",
				r.Sched, r.Workload, r.N, r.ScalarNsPerStep, b.ScalarNsPerStep))
		}
		if b.BatchNsPerStep > 0 && r.BatchNsPerStep > b.BatchNsPerStep*(1+tolerance) {
			regressions = append(regressions, fmt.Sprintf(
				"%s %s n=%d batch: %.2f ns/step vs baseline %.2f",
				r.Sched, r.Workload, r.N, r.BatchNsPerStep, b.BatchNsPerStep))
		}
	}
	traceKey := func(r TraceResult) string {
		return fmt.Sprintf("%s|%d|%d", r.Format, r.N, r.Steps)
	}
	traceByKey := map[string]TraceResult{}
	for _, r := range base.Trace {
		traceByKey[traceKey(r)] = r
	}
	for _, r := range cur.Trace {
		b, ok := traceByKey[traceKey(r)]
		if !ok {
			continue
		}
		if b.EncodeNsPerEvent > 0 && r.EncodeNsPerEvent > b.EncodeNsPerEvent*(1+tolerance) {
			regressions = append(regressions, fmt.Sprintf(
				"trace %s encode: %.2f ns/event vs baseline %.2f",
				r.Format, r.EncodeNsPerEvent, b.EncodeNsPerEvent))
		}
		if b.CompressionVsNDJSON > 0 && r.CompressionVsNDJSON < b.CompressionVsNDJSON/(1+tolerance) {
			regressions = append(regressions, fmt.Sprintf(
				"trace %s compression: %.2fx vs NDJSON, baseline %.2fx",
				r.Format, r.CompressionVsNDJSON, b.CompressionVsNDJSON))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("benchmarks regressed beyond %.0f%% vs %s:\n  %s",
			tolerance*100, path, strings.Join(regressions, "\n  "))
	}
	return nil
}

// parseScheds parses the -scheds list with the same grammar pwfsim's
// -sched flag and the serve API's SchedulerSpec strings use.
func parseScheds(s string) ([]sweep.SchedulerSpec, error) {
	var out []sweep.SchedulerSpec
	for _, f := range strings.Split(s, ";") {
		for _, name := range splitTopLevel(f) {
			spec, err := sweep.ParseScheduler(strings.TrimSpace(name))
			if err != nil {
				return nil, fmt.Errorf("parse -scheds: %w", err)
			}
			out = append(out, spec)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -scheds list")
	}
	return out, nil
}

// splitTopLevel splits a comma-separated scheduler list without
// breaking commas inside a spec's own arguments (lottery:1,2,4): a
// comma starts a new spec only when what follows looks like a
// scheduler name, i.e. begins with a letter.
func splitTopLevel(s string) []string {
	var parts []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] != ',' {
			continue
		}
		rest := strings.TrimSpace(s[i+1:])
		if rest == "" || (rest[0] >= 'a' && rest[0] <= 'z') || (rest[0] >= 'A' && rest[0] <= 'Z') {
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	parts = append(parts, s[start:])
	return parts
}

func parseNList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 8 {
			return nil, fmt.Errorf("bad -n entry %q (need integers >= 8)", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -n list")
	}
	return out, nil
}

// samplerSpec names one (scheduler, impl) timing configuration. The
// build function crashes n/8 processes first so the measured path is
// the crash-mode one — the case the constant-time structures exist
// for — and returns the draw closure.
type samplerSpec struct {
	sched string
	impl  string
	build func(n int) (func() (int, error), error)
}

func samplers() []samplerSpec {
	crashSome := func(c sched.Crasher, n int) error {
		for pid := 0; pid < n/8; pid++ {
			if err := c.Crash(pid); err != nil {
				return err
			}
		}
		return nil
	}
	weights := func(n int) []float64 {
		ws := make([]float64, n)
		for i := range ws {
			ws[i] = float64(i%17 + 1)
		}
		return ws
	}
	tickets := func(n int) []int {
		ts := make([]int, n)
		for i := range ts {
			ts[i] = i%9 + 1
		}
		return ts
	}
	return []samplerSpec{
		{"uniform", "dense", func(n int) (func() (int, error), error) {
			u, err := sched.NewUniform(n, rng.New(1))
			if err != nil {
				return nil, err
			}
			return u.Next, crashSome(u, n)
		}},
		{"uniform", "naive", func(n int) (func() (int, error), error) {
			u, err := sched.NewUniform(n, rng.New(1))
			if err != nil {
				return nil, err
			}
			return u.NextNaive, crashSome(u, n)
		}},
		{"weighted", "alias", func(n int) (func() (int, error), error) {
			w, err := sched.NewWeighted(weights(n), rng.New(2))
			if err != nil {
				return nil, err
			}
			return w.Next, crashSome(w, n)
		}},
		{"weighted", "naive", func(n int) (func() (int, error), error) {
			w, err := sched.NewWeighted(weights(n), rng.New(2))
			if err != nil {
				return nil, err
			}
			return w.NextNaive, crashSome(w, n)
		}},
		{"lottery", "fenwick", func(n int) (func() (int, error), error) {
			l, err := sched.NewLottery(tickets(n), rng.New(3))
			if err != nil {
				return nil, err
			}
			return l.Next, crashSome(l, n)
		}},
		{"lottery", "naive", func(n int) (func() (int, error), error) {
			l, err := sched.NewLottery(tickets(n), rng.New(3))
			if err != nil {
				return nil, err
			}
			return l.NextNaive, crashSome(l, n)
		}},
		{"sticky", "dense", func(n int) (func() (int, error), error) {
			s, err := sched.NewSticky(n, 0.8, rng.New(4))
			if err != nil {
				return nil, err
			}
			return s.Next, crashSome(s, n)
		}},
		{"sticky", "naive", func(n int) (func() (int, error), error) {
			s, err := sched.NewSticky(n, 0.8, rng.New(4))
			if err != nil {
				return nil, err
			}
			return s.NextNaive, crashSome(s, n)
		}},
		{"phased", "alias", func(n int) (func() (int, error), error) {
			p, err := sched.NewPhased(n, phases(weights(n)), rng.New(5))
			if err != nil {
				return nil, err
			}
			return p.Next, crashSome(p, n)
		}},
		{"phased", "naive", func(n int) (func() (int, error), error) {
			p, err := sched.NewPhased(n, phases(weights(n)), rng.New(5))
			if err != nil {
				return nil, err
			}
			return p.NextNaive, crashSome(p, n)
		}},
	}
}

func phases(ws []float64) []sched.Phase {
	return []sched.Phase{
		{Weights: ws, Steps: 64},
		{Weights: ws, Steps: 32},
	}
}

// sink keeps the timed loops from being dead-code-eliminated.
var sink int

func measureDraws(n, draws, reps int) ([]DrawResult, error) {
	var out []DrawResult
	naiveNs := map[string]float64{}
	for _, spec := range samplers() {
		next, err := spec.build(n)
		if err != nil {
			return nil, fmt.Errorf("build %s/%s n=%d: %w", spec.sched, spec.impl, n, err)
		}
		best := 0.0
		for r := 0; r < reps; r++ {
			start := time.Now()
			for i := 0; i < draws; i++ {
				pid, err := next()
				if err != nil {
					return nil, fmt.Errorf("draw %s/%s n=%d: %w", spec.sched, spec.impl, n, err)
				}
				sink += pid
			}
			ns := float64(time.Since(start).Nanoseconds()) / float64(draws)
			if r == 0 || ns < best {
				best = ns
			}
		}
		res := DrawResult{Sched: spec.sched, Impl: spec.impl, N: n, NsOp: best}
		if spec.impl == "naive" {
			naiveNs[spec.sched] = best
			res.SpeedupVsNaive = 1
		}
		out = append(out, res)
	}
	// The naive row of each scheduler is measured after its fast row,
	// so fill speedups in a second pass.
	for i := range out {
		if out[i].Impl != "naive" {
			if nn, ok := naiveNs[out[i].Sched]; ok && out[i].NsOp > 0 {
				out[i].SpeedupVsNaive = nn / out[i].NsOp
			}
		}
	}
	return out, nil
}

// benchWorkload is one -workloads entry: the name used in rows and in
// the flag, the canonical parameterization, and the largest n it is
// measured at (0 = unlimited). The pointer-based kinds are capped at
// 1024 because their scalar reference runs are the slow side of the
// comparison and the 4096 column would dominate the whole benchmark's
// wall time without changing the verdict.
type benchWorkload struct {
	name string
	w    sweep.Workload
	maxN int
}

// benchWorkloadCatalog lists every batchable kind the sweep benchmark
// knows, in row order.
var benchWorkloadCatalog = []benchWorkload{
	{"scu", sweep.Workload{Kind: sweep.SCU, S: 1}, 0},
	{"stack", sweep.Workload{Kind: sweep.Stack}, 1024},
	{"queue", sweep.Workload{Kind: sweep.Queue}, 1024},
	{"rcu", sweep.Workload{Kind: sweep.RCU}, 1024},
	{"unbounded", sweep.Workload{Kind: sweep.Unbounded}, 1024},
	{"lfuniversal", sweep.Workload{Kind: sweep.LFUniversal}, 1024},
}

// parseWorkloads resolves the -workloads list against the catalogue,
// keeping catalogue order so the emitted rows are stable regardless of
// how the flag orders its entries.
func parseWorkloads(s string) ([]benchWorkload, error) {
	want := map[string]bool{}
	for _, f := range strings.Split(s, ",") {
		name := strings.TrimSpace(f)
		if name == "" {
			continue
		}
		found := false
		for _, bw := range benchWorkloadCatalog {
			if bw.name == name {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown -workloads entry %q (have: scu, stack, queue, rcu, unbounded, lfuniversal)", name)
		}
		want[name] = true
	}
	var out []benchWorkload
	for _, bw := range benchWorkloadCatalog {
		if want[bw.name] {
			out = append(out, bw)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -workloads list")
	}
	return out, nil
}

func measureSweeps(n int, steps uint64, reps, width int, specs []sweep.SchedulerSpec, wls []benchWorkload) ([]SweepResult, error) {
	var out []SweepResult
	for _, bw := range wls {
		if bw.maxN > 0 && n > bw.maxN {
			continue
		}
		for _, spec := range specs {
			job := sweep.Job{
				Workload: bw.w,
				N:        n,
				Sched:    spec,
				Steps:    steps,
				Crash:    1,
			}
			scalar := time.Duration(0)
			for r := 0; r < reps; r++ {
				start := time.Now()
				if _, err := sweep.RunJob(job, 1, nil); err != nil {
					return nil, fmt.Errorf("sweep %s/%s n=%d: %w", bw.name, spec.Kind, n, err)
				}
				if d := time.Since(start); r == 0 || d < scalar {
					scalar = d
				}
			}
			batchJob := job
			batchJob.Replicas = width
			cfg := sweep.Config{
				Jobs:         []sweep.Job{batchJob},
				Seed:         1,
				Workers:      1,
				ReplicaBatch: width,
			}
			batch := time.Duration(0)
			for r := 0; r < reps; r++ {
				start := time.Now()
				if _, err := sweep.Run(cfg); err != nil {
					return nil, fmt.Errorf("batched sweep %s/%s n=%d: %w", bw.name, spec.Kind, n, err)
				}
				if d := time.Since(start); r == 0 || d < batch {
					batch = d
				}
			}
			scalarNs := float64(scalar.Nanoseconds()) / float64(steps)
			batchNs := float64(batch.Nanoseconds()) / (float64(steps) * float64(width))
			out = append(out, SweepResult{
				Sched:             spec.String(),
				Workload:          bw.name,
				N:                 n,
				Steps:             steps,
				ScalarNsPerStep:   scalarNs,
				ScalarStepsPerSec: float64(steps) / scalar.Seconds(),
				BatchWidth:        width,
				BatchNsPerStep:    batchNs,
				BatchStepsPerSec:  float64(steps) * float64(width) / batch.Seconds(),
				BatchSpeedup:      scalarNs / batchNs,
			})
		}
	}
	return out, nil
}

// traceVariants is the fixed format grid of the trace benchmark. The
// NDJSON row must come first: later rows report size and overhead
// relative to it.
var traceVariants = []struct {
	name   string
	format obs.TraceFormat
	comp   obs.Compression
}{
	{"ndjson", obs.TraceNDJSON, obs.CompressNone},
	{"bin", obs.TraceBinary, obs.CompressNone},
	{"bin-gzip", obs.TraceBinary, obs.CompressGzip},
}

// eventSink captures a run's event stream in memory so the encoders
// can be timed over the identical events, isolated from the
// simulator's own cost.
type eventSink struct{ events []obs.Event }

func (s *eventSink) Record(e obs.Event) { s.events = append(s.events, e) }

// measureTrace times the trace pipeline on one uniform SCU run: the
// per-event encode and decode cost of each format over the same
// captured event stream, the encoded sizes, and the end-to-end cost
// of the traced run against an untraced baseline.
func measureTrace(n int, steps uint64, reps int) ([]TraceResult, error) {
	job := sweep.Job{
		Workload: sweep.Workload{Kind: sweep.SCU, S: 1},
		N:        n,
		Sched:    sweep.SchedulerSpec{Kind: sweep.SchedUniform},
		Steps:    steps,
	}
	untraced := time.Duration(0)
	for r := 0; r < reps; r++ {
		start := time.Now()
		if _, err := sweep.RunJob(job, 1, nil); err != nil {
			return nil, fmt.Errorf("trace baseline n=%d: %w", n, err)
		}
		if d := time.Since(start); r == 0 || d < untraced {
			untraced = d
		}
	}
	sink := &eventSink{}
	capJob := job
	capJob.Recorder = sink
	if _, err := sweep.RunJob(capJob, 1, nil); err != nil {
		return nil, fmt.Errorf("trace capture n=%d: %w", n, err)
	}
	events := sink.events
	if len(events) == 0 {
		return nil, fmt.Errorf("trace capture n=%d: run emitted no events", n)
	}

	var out []TraceResult
	var ndjsonBytes int
	var ndjsonTraced time.Duration
	for _, v := range traceVariants {
		var raw []byte
		encode := time.Duration(0)
		for r := 0; r < reps; r++ {
			var buf bytes.Buffer
			w, err := obs.NewTraceWriter(&buf, v.format, v.comp)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			for i := range events {
				w.Record(events[i])
			}
			if err := w.Flush(); err != nil {
				return nil, fmt.Errorf("trace %s: encode: %w", v.name, err)
			}
			if d := time.Since(start); r == 0 || d < encode {
				encode = d
			}
			raw = buf.Bytes()
		}
		decode := time.Duration(0)
		for r := 0; r < reps; r++ {
			start := time.Now()
			back, err := obs.ReadTrace(bytes.NewReader(raw))
			if err != nil {
				return nil, fmt.Errorf("trace %s: decode: %w", v.name, err)
			}
			if len(back) != len(events) {
				return nil, fmt.Errorf("trace %s: decoded %d of %d events", v.name, len(back), len(events))
			}
			if d := time.Since(start); r == 0 || d < decode {
				decode = d
			}
		}
		traced := time.Duration(0)
		for r := 0; r < reps; r++ {
			w, err := obs.NewTraceWriter(io.Discard, v.format, v.comp)
			if err != nil {
				return nil, err
			}
			tracedJob := job
			tracedJob.Recorder = w
			start := time.Now()
			if _, err := sweep.RunJob(tracedJob, 1, nil); err != nil {
				return nil, fmt.Errorf("trace %s: traced run: %w", v.name, err)
			}
			if err := w.Flush(); err != nil {
				return nil, fmt.Errorf("trace %s: traced run: %w", v.name, err)
			}
			if d := time.Since(start); r == 0 || d < traced {
				traced = d
			}
		}
		if v.name == "ndjson" {
			ndjsonBytes = len(raw)
			ndjsonTraced = traced
		}
		overhead := float64(traced-untraced) / float64(ndjsonTraced) * 100
		if overhead < 0 {
			overhead = 0 // timing noise: tracing cannot be cheaper than not tracing
		}
		out = append(out, TraceResult{
			Format:                          v.name,
			N:                               n,
			Steps:                           steps,
			Events:                          len(events),
			Bytes:                           len(raw),
			BytesPerEvent:                   float64(len(raw)) / float64(len(events)),
			CompressionVsNDJSON:             float64(ndjsonBytes) / float64(len(raw)),
			EncodeNsPerEvent:                float64(encode.Nanoseconds()) / float64(len(events)),
			DecodeNsPerEvent:                float64(decode.Nanoseconds()) / float64(len(events)),
			TracedNsPerStep:                 float64(traced.Nanoseconds()) / float64(steps),
			EncodeOverheadVsNDJSONTracedPct: overhead,
		})
	}
	return out, nil
}
