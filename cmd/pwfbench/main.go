// Command pwfbench measures the cost of scheduler sampling and of
// end-to-end simulation, and emits the results as machine-readable
// per-subsystem JSON files (BENCH_sched.json and BENCH_sweep.json at
// the repository root) so successive PRs can diff steps/sec instead
// of re-reading prose. It times two things:
//
//   - the per-draw cost of every stochastic scheduler, fast path
//     (alias table / Fenwick tree / dense active set) against the
//     naive O(n) reference samplers, over the paper-scale process
//     counts (BENCH_sched.json); and
//   - the end-to-end simulated steps per second of a sweep job at the
//     same process counts, on the scalar path and through the
//     replica-batched core, which is what the ROADMAP's "as fast as
//     the hardware allows" goal is scored on (BENCH_sweep.json).
//
// Files written with -outdir omit the host and timestamp metadata so
// the checked-in copies diff cleanly PR over PR; the stdout report
// keeps them. -check compares the freshly measured sweep rows
// against a checked-in baseline and exits non-zero when any
// ns-per-step figure regressed beyond -tolerance, which is how CI
// catches sweep-core slowdowns.
//
// Usage:
//
//	pwfbench                                # print combined JSON to stdout
//	pwfbench -outdir .                      # write BENCH_sched.json + BENCH_sweep.json
//	pwfbench -outdir . -check BENCH_sweep.json -tolerance 0.25
//	pwfbench -n 16,256,1024,4096 -draws 200000 -steps 100000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"pwf/internal/rng"
	"pwf/internal/sched"
	"pwf/internal/sweep"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pwfbench:", err)
		os.Exit(1)
	}
}

// Report is the combined stdout schema; the per-subsystem files each
// carry one of the two sections. Generated and Host are omitted from
// files written with -outdir so checked-in copies diff cleanly.
type Report struct {
	// Generated is the RFC 3339 measurement time.
	Generated string `json:"generated,omitempty"`
	// Host describes the measuring machine; wall-clock numbers are
	// only comparable within one host.
	Host *Host `json:"host,omitempty"`
	// Draw holds per-draw scheduler sampling costs (BENCH_sched.json).
	Draw []DrawResult `json:"draw,omitempty"`
	// Sweep holds end-to-end simulation throughput (BENCH_sweep.json).
	Sweep []SweepResult `json:"sweep,omitempty"`
}

// Host identifies the benchmark environment.
type Host struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// DrawResult is one (scheduler, implementation, n) sampling cost.
type DrawResult struct {
	Sched string `json:"sched"`
	// Impl is the sampling structure: alias, fenwick, dense, or naive.
	Impl string  `json:"impl"`
	N    int     `json:"n"`
	NsOp float64 `json:"ns_per_draw"`
	// SpeedupVsNaive is NsOp(naive)/NsOp for fast rows, 1 for naive
	// rows.
	SpeedupVsNaive float64 `json:"speedup_vs_naive,omitempty"`
}

// SweepResult is one end-to-end simulation throughput point: the
// scalar per-job path and the replica-batched core on the same job
// shape.
type SweepResult struct {
	Sched    string `json:"sched"`
	Workload string `json:"workload"`
	N        int    `json:"n"`
	Steps    uint64 `json:"steps"`
	// Scalar path: one replica per RunJob call.
	ScalarNsPerStep   float64 `json:"scalar_ns_per_step"`
	ScalarStepsPerSec float64 `json:"scalar_steps_per_sec"`
	// Batched path: BatchWidth same-shape replicas per loop iteration.
	BatchWidth       int     `json:"batch_width"`
	BatchNsPerStep   float64 `json:"batch_ns_per_step"`
	BatchStepsPerSec float64 `json:"batch_steps_per_sec"`
	// BatchSpeedup is ScalarNsPerStep / BatchNsPerStep.
	BatchSpeedup float64 `json:"batch_speedup"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pwfbench", flag.ContinueOnError)
	var (
		outDir    = fs.String("outdir", "", "write BENCH_sched.json and BENCH_sweep.json into this directory (host metadata stripped) instead of printing to stdout")
		nList     = fs.String("n", "16,256,1024,4096", "comma-separated process counts")
		draws     = fs.Int("draws", 200000, "draws per (scheduler, impl, n) timing")
		steps     = fs.Uint64("steps", 100000, "steps per end-to-end sweep job")
		reps      = fs.Int("reps", 3, "repetitions per timing; the minimum is kept")
		width     = fs.Int("width", 16, "replica-batch width for the batched sweep timings")
		scheds    = fs.String("scheds", "uniform,lottery", "comma-separated scheduler specs for end-to-end sweeps, in the shared grammar (e.g. uniform, sticky:0.9, weighted, phased:1,3@500/1,1@500)")
		checkPath = fs.String("check", "", "compare measured sweep rows against this baseline BENCH_sweep.json and fail on regression")
		tolerance = fs.Float64("tolerance", 0.25, "relative ns-per-step slowdown tolerated by -check (0.25 = 25%)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ns, err := parseNList(*nList)
	if err != nil {
		return err
	}
	if *draws < 1 || *steps < 1 || *reps < 1 || *width < 1 {
		return fmt.Errorf("-draws, -steps, -reps and -width must be >= 1")
	}
	if *tolerance < 0 {
		return fmt.Errorf("-tolerance must be >= 0")
	}
	specs, err := parseScheds(*scheds)
	if err != nil {
		return err
	}

	rep := Report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Host: &Host{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
	}
	for _, n := range ns {
		res, err := measureDraws(n, *draws, *reps)
		if err != nil {
			return err
		}
		rep.Draw = append(rep.Draw, res...)
	}
	for _, n := range ns {
		res, err := measureSweeps(n, *steps, *reps, *width, specs)
		if err != nil {
			return err
		}
		rep.Sweep = append(rep.Sweep, res...)
	}

	// Compare against the baseline before -outdir overwrites it, but
	// still write the fresh files either way so the new numbers are
	// available as an artifact even on a failing check.
	var checkErr error
	if *checkPath != "" {
		checkErr = checkRegression(*checkPath, rep.Sweep, *tolerance)
	}
	if *outDir != "" {
		if err := writeReports(*outDir, rep); err != nil {
			return err
		}
		return checkErr
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if _, err := out.Write(enc); err != nil {
		return err
	}
	return checkErr
}

// writeReports writes the per-subsystem files with host metadata
// stripped, so regenerating on another machine only diffs the
// numbers.
func writeReports(dir string, rep Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	files := []struct {
		name string
		rep  Report
	}{
		{"BENCH_sched.json", Report{Draw: rep.Draw}},
		{"BENCH_sweep.json", Report{Sweep: rep.Sweep}},
	}
	for _, f := range files {
		enc, err := json.MarshalIndent(f.rep, "", "  ")
		if err != nil {
			return err
		}
		enc = append(enc, '\n')
		if err := os.WriteFile(filepath.Join(dir, f.name), enc, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// checkRegression fails when a measured sweep row is more than
// tolerance slower (in ns/step, scalar or batched) than the matching
// row of the baseline file. Rows are matched on (sched, workload, n,
// steps); rows without a baseline counterpart pass, so grid changes
// do not trip the gate.
func checkRegression(path string, cur []SweepResult, tolerance float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("-check baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("-check baseline %s: %w", path, err)
	}
	key := func(r SweepResult) string {
		return fmt.Sprintf("%s|%s|%d|%d", r.Sched, r.Workload, r.N, r.Steps)
	}
	byKey := map[string]SweepResult{}
	for _, r := range base.Sweep {
		byKey[key(r)] = r
	}
	var regressions []string
	for _, r := range cur {
		b, ok := byKey[key(r)]
		if !ok {
			continue
		}
		if b.ScalarNsPerStep > 0 && r.ScalarNsPerStep > b.ScalarNsPerStep*(1+tolerance) {
			regressions = append(regressions, fmt.Sprintf(
				"%s n=%d scalar: %.2f ns/step vs baseline %.2f",
				r.Sched, r.N, r.ScalarNsPerStep, b.ScalarNsPerStep))
		}
		if b.BatchNsPerStep > 0 && r.BatchNsPerStep > b.BatchNsPerStep*(1+tolerance) {
			regressions = append(regressions, fmt.Sprintf(
				"%s n=%d batch: %.2f ns/step vs baseline %.2f",
				r.Sched, r.N, r.BatchNsPerStep, b.BatchNsPerStep))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("sweep throughput regressed beyond %.0f%%:\n  %s",
			tolerance*100, strings.Join(regressions, "\n  "))
	}
	return nil
}

// parseScheds parses the -scheds list with the same grammar pwfsim's
// -sched flag and the serve API's SchedulerSpec strings use.
func parseScheds(s string) ([]sweep.SchedulerSpec, error) {
	var out []sweep.SchedulerSpec
	for _, f := range strings.Split(s, ";") {
		for _, name := range splitTopLevel(f) {
			spec, err := sweep.ParseScheduler(strings.TrimSpace(name))
			if err != nil {
				return nil, fmt.Errorf("parse -scheds: %w", err)
			}
			out = append(out, spec)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -scheds list")
	}
	return out, nil
}

// splitTopLevel splits a comma-separated scheduler list without
// breaking commas inside a spec's own arguments (lottery:1,2,4): a
// comma starts a new spec only when what follows looks like a
// scheduler name, i.e. begins with a letter.
func splitTopLevel(s string) []string {
	var parts []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] != ',' {
			continue
		}
		rest := strings.TrimSpace(s[i+1:])
		if rest == "" || (rest[0] >= 'a' && rest[0] <= 'z') || (rest[0] >= 'A' && rest[0] <= 'Z') {
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	parts = append(parts, s[start:])
	return parts
}

func parseNList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 8 {
			return nil, fmt.Errorf("bad -n entry %q (need integers >= 8)", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -n list")
	}
	return out, nil
}

// samplerSpec names one (scheduler, impl) timing configuration. The
// build function crashes n/8 processes first so the measured path is
// the crash-mode one — the case the constant-time structures exist
// for — and returns the draw closure.
type samplerSpec struct {
	sched string
	impl  string
	build func(n int) (func() (int, error), error)
}

func samplers() []samplerSpec {
	crashSome := func(c sched.Crasher, n int) error {
		for pid := 0; pid < n/8; pid++ {
			if err := c.Crash(pid); err != nil {
				return err
			}
		}
		return nil
	}
	weights := func(n int) []float64 {
		ws := make([]float64, n)
		for i := range ws {
			ws[i] = float64(i%17 + 1)
		}
		return ws
	}
	tickets := func(n int) []int {
		ts := make([]int, n)
		for i := range ts {
			ts[i] = i%9 + 1
		}
		return ts
	}
	return []samplerSpec{
		{"uniform", "dense", func(n int) (func() (int, error), error) {
			u, err := sched.NewUniform(n, rng.New(1))
			if err != nil {
				return nil, err
			}
			return u.Next, crashSome(u, n)
		}},
		{"uniform", "naive", func(n int) (func() (int, error), error) {
			u, err := sched.NewUniform(n, rng.New(1))
			if err != nil {
				return nil, err
			}
			return u.NextNaive, crashSome(u, n)
		}},
		{"weighted", "alias", func(n int) (func() (int, error), error) {
			w, err := sched.NewWeighted(weights(n), rng.New(2))
			if err != nil {
				return nil, err
			}
			return w.Next, crashSome(w, n)
		}},
		{"weighted", "naive", func(n int) (func() (int, error), error) {
			w, err := sched.NewWeighted(weights(n), rng.New(2))
			if err != nil {
				return nil, err
			}
			return w.NextNaive, crashSome(w, n)
		}},
		{"lottery", "fenwick", func(n int) (func() (int, error), error) {
			l, err := sched.NewLottery(tickets(n), rng.New(3))
			if err != nil {
				return nil, err
			}
			return l.Next, crashSome(l, n)
		}},
		{"lottery", "naive", func(n int) (func() (int, error), error) {
			l, err := sched.NewLottery(tickets(n), rng.New(3))
			if err != nil {
				return nil, err
			}
			return l.NextNaive, crashSome(l, n)
		}},
		{"sticky", "dense", func(n int) (func() (int, error), error) {
			s, err := sched.NewSticky(n, 0.8, rng.New(4))
			if err != nil {
				return nil, err
			}
			return s.Next, crashSome(s, n)
		}},
		{"sticky", "naive", func(n int) (func() (int, error), error) {
			s, err := sched.NewSticky(n, 0.8, rng.New(4))
			if err != nil {
				return nil, err
			}
			return s.NextNaive, crashSome(s, n)
		}},
		{"phased", "alias", func(n int) (func() (int, error), error) {
			p, err := sched.NewPhased(n, phases(weights(n)), rng.New(5))
			if err != nil {
				return nil, err
			}
			return p.Next, crashSome(p, n)
		}},
		{"phased", "naive", func(n int) (func() (int, error), error) {
			p, err := sched.NewPhased(n, phases(weights(n)), rng.New(5))
			if err != nil {
				return nil, err
			}
			return p.NextNaive, crashSome(p, n)
		}},
	}
}

func phases(ws []float64) []sched.Phase {
	return []sched.Phase{
		{Weights: ws, Steps: 64},
		{Weights: ws, Steps: 32},
	}
}

// sink keeps the timed loops from being dead-code-eliminated.
var sink int

func measureDraws(n, draws, reps int) ([]DrawResult, error) {
	var out []DrawResult
	naiveNs := map[string]float64{}
	for _, spec := range samplers() {
		next, err := spec.build(n)
		if err != nil {
			return nil, fmt.Errorf("build %s/%s n=%d: %w", spec.sched, spec.impl, n, err)
		}
		best := 0.0
		for r := 0; r < reps; r++ {
			start := time.Now()
			for i := 0; i < draws; i++ {
				pid, err := next()
				if err != nil {
					return nil, fmt.Errorf("draw %s/%s n=%d: %w", spec.sched, spec.impl, n, err)
				}
				sink += pid
			}
			ns := float64(time.Since(start).Nanoseconds()) / float64(draws)
			if r == 0 || ns < best {
				best = ns
			}
		}
		res := DrawResult{Sched: spec.sched, Impl: spec.impl, N: n, NsOp: best}
		if spec.impl == "naive" {
			naiveNs[spec.sched] = best
			res.SpeedupVsNaive = 1
		}
		out = append(out, res)
	}
	// The naive row of each scheduler is measured after its fast row,
	// so fill speedups in a second pass.
	for i := range out {
		if out[i].Impl != "naive" {
			if nn, ok := naiveNs[out[i].Sched]; ok && out[i].NsOp > 0 {
				out[i].SpeedupVsNaive = nn / out[i].NsOp
			}
		}
	}
	return out, nil
}

func measureSweeps(n int, steps uint64, reps, width int, specs []sweep.SchedulerSpec) ([]SweepResult, error) {
	var out []SweepResult
	for _, spec := range specs {
		job := sweep.Job{
			Workload: sweep.Workload{Kind: sweep.SCU, S: 1},
			N:        n,
			Sched:    spec,
			Steps:    steps,
			Crash:    1,
		}
		scalar := time.Duration(0)
		for r := 0; r < reps; r++ {
			start := time.Now()
			if _, err := sweep.RunJob(job, 1, nil); err != nil {
				return nil, fmt.Errorf("sweep %s n=%d: %w", spec.Kind, n, err)
			}
			if d := time.Since(start); r == 0 || d < scalar {
				scalar = d
			}
		}
		batchJob := job
		batchJob.Replicas = width
		cfg := sweep.Config{
			Jobs:         []sweep.Job{batchJob},
			Seed:         1,
			Workers:      1,
			ReplicaBatch: width,
		}
		batch := time.Duration(0)
		for r := 0; r < reps; r++ {
			start := time.Now()
			if _, err := sweep.Run(cfg); err != nil {
				return nil, fmt.Errorf("batched sweep %s n=%d: %w", spec.Kind, n, err)
			}
			if d := time.Since(start); r == 0 || d < batch {
				batch = d
			}
		}
		scalarNs := float64(scalar.Nanoseconds()) / float64(steps)
		batchNs := float64(batch.Nanoseconds()) / (float64(steps) * float64(width))
		out = append(out, SweepResult{
			Sched:             spec.String(),
			Workload:          string(sweep.SCU),
			N:                 n,
			Steps:             steps,
			ScalarNsPerStep:   scalarNs,
			ScalarStepsPerSec: float64(steps) / scalar.Seconds(),
			BatchWidth:        width,
			BatchNsPerStep:    batchNs,
			BatchStepsPerSec:  float64(steps) * float64(width) / batch.Seconds(),
			BatchSpeedup:      scalarNs / batchNs,
		})
	}
	return out, nil
}
