package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSCUChain(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-chain", "scu", "-n", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"system latency", "lifting verified", "W_0"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunFetchIncChain(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-chain", "fetchinc", "-n", "4"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Ramanujan", "Lemma 12", "lifting verified"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunParallelChain(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-chain", "parallel", "-n", "3", "-q", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Lemma 11") {
		t.Errorf("missing Lemma 11 line:\n%s", buf.String())
	}
}

func TestRunSystemOnly(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-chain", "scu", "-n", "20", "-individual=false"}, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "lifting verified") {
		t.Error("lifting ran despite -individual=false")
	}
}

func TestRunIndividualTooLargeDegradesGracefully(t *testing.T) {
	// n beyond the individual-chain cap must still print the system
	// analysis and say why the lifting was skipped.
	var buf bytes.Buffer
	if err := run([]string{"-chain", "scu", "-n", "12"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "individual chain skipped") {
		t.Errorf("missing skip notice:\n%s", buf.String())
	}
}

func TestRunDOT(t *testing.T) {
	for _, chain := range []string{"scu", "fetchinc", "parallel"} {
		var buf bytes.Buffer
		if err := run([]string{"-chain", chain, "-n", "2", "-dot"}, &buf); err != nil {
			t.Fatalf("%s: %v", chain, err)
		}
		out := buf.String()
		if !strings.Contains(out, "digraph") || !strings.Contains(out, "->") {
			t.Errorf("%s: not a DOT graph:\n%s", chain, out)
		}
	}
	var buf bytes.Buffer
	if err := run([]string{"-chain", "nope", "-dot"}, &buf); err == nil {
		t.Error("bad chain with -dot: nil error")
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	for _, args := range [][]string{
		{"-chain", "nope"},
		{"-chain", "scu", "-n", "0"},
		{"-badflag"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v: nil error", args)
		}
	}
}
