package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pwf/internal/obs"
)

func TestRunSCUChain(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-chain", "scu", "-n", "3"}, &buf, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"system latency", "lifting verified", "W_0"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunFetchIncChain(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-chain", "fetchinc", "-n", "4"}, &buf, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Ramanujan", "Lemma 12", "lifting verified"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunParallelChain(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-chain", "parallel", "-n", "3", "-q", "2"}, &buf, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Lemma 11") {
		t.Errorf("missing Lemma 11 line:\n%s", buf.String())
	}
}

func TestRunSystemOnly(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-chain", "scu", "-n", "20", "-individual=false"}, &buf, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "lifting verified") {
		t.Error("lifting ran despite -individual=false")
	}
}

func TestRunIndividualTooLargeDegradesGracefully(t *testing.T) {
	// n beyond the individual-chain cap must still print the system
	// analysis and say why the lifting was skipped.
	var buf bytes.Buffer
	if err := run([]string{"-chain", "scu", "-n", "12"}, &buf, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "individual chain skipped") {
		t.Errorf("missing skip notice:\n%s", buf.String())
	}
}

func TestRunDOT(t *testing.T) {
	for _, chain := range []string{"scu", "fetchinc", "parallel"} {
		var buf bytes.Buffer
		if err := run([]string{"-chain", chain, "-n", "2", "-dot"}, &buf, &buf); err != nil {
			t.Fatalf("%s: %v", chain, err)
		}
		out := buf.String()
		if !strings.Contains(out, "digraph") || !strings.Contains(out, "->") {
			t.Errorf("%s: not a DOT graph:\n%s", chain, out)
		}
	}
	var buf bytes.Buffer
	if err := run([]string{"-chain", "nope", "-dot"}, &buf, &buf); err == nil {
		t.Error("bad chain with -dot: nil error")
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	for _, args := range [][]string{
		{"-chain", "nope"},
		{"-chain", "scu", "-n", "0"},
		{"-badflag"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf, &buf); err == nil {
			t.Errorf("args %v: nil error", args)
		}
	}
}

// TestRunTraceRecordsLifecycle checks the -trace flag in both formats:
// the analysis brackets into job_start/job_end events carrying the
// chain label and a positive wall time.
func TestRunTraceRecordsLifecycle(t *testing.T) {
	for _, format := range []string{"ndjson", "bin"} {
		path := filepath.Join(t.TempDir(), "chains-trace")
		var out bytes.Buffer
		args := []string{"-chain", "scu", "-n", "3", "-trace", path, "-trace-format", format}
		if err := run(args, &out, &out); err != nil {
			t.Fatal(err)
		}
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		events, err := obs.ReadTrace(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: decode: %v", format, err)
		}
		if len(events) != 2 {
			t.Fatalf("%s: got %d events, want job_start + job_end", format, len(events))
		}
		if events[0].Kind != obs.KindJobStart || events[0].Label != "scu n=3" {
			t.Errorf("%s: first event %+v, want job_start with label", format, events[0])
		}
		if events[1].Kind != obs.KindJobEnd || events[1].ElapsedNS <= 0 {
			t.Errorf("%s: second event %+v, want job_end with elapsed time", format, events[1])
		}
	}
}

func TestRunMetricsReportsCacheHits(t *testing.T) {
	// The same chain twice: the second invocation must be a cache hit,
	// and -metrics must expose the hit/miss gauges.
	var out bytes.Buffer
	if err := run([]string{"-chain", "scu", "-n", "3"}, &out, &out); err != nil {
		t.Fatal(err)
	}
	var errOut bytes.Buffer
	out.Reset()
	if err := run([]string{"-chain", "scu", "-n", "3", "-metrics"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Gauges map[string]uint64 `json:"gauges"`
	}
	if err := json.Unmarshal(errOut.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, errOut.String())
	}
	if snap.Gauges["chain_cache_hits"] == 0 {
		t.Errorf("no cache hits after repeated analysis: %v", snap.Gauges)
	}
	if snap.Gauges["chain_cache_misses"] == 0 {
		t.Errorf("no cache misses recorded: %v", snap.Gauges)
	}
}
