// Command pwfchains performs the exact Markov-chain analysis of
// Sections 6 and 7 for a chosen algorithm and process count: it
// prints the chain sizes, the stationary success rate, the system and
// individual latencies, and verifies the lifting between the
// individual and system chains. Analyses come from the sweep engine's
// process-wide cache, so repeated invocations inside one process (and
// any concurrent sweeps) share the construction work.
//
// Usage:
//
//	pwfchains -chain scu -n 4
//	pwfchains -chain fetchinc -n 8
//	pwfchains -chain parallel -n 3 -q 3
//
// Observability flags: -trace records the analysis as job lifecycle
// events (job_start/job_end with the chain family and wall time);
// -trace-format selects NDJSON (v1, default) or the compact binary
// framing (v2, "bin") and -trace-compress adds per-frame gzip to
// binary traces; -metrics prints a JSON metrics snapshot — the
// chain-cache hit/miss gauges — to stderr. The trace speaks the same
// wire schema as pwfsim's, so one tool reads both.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"pwf/internal/chains"
	"pwf/internal/markov"
	"pwf/internal/obs"
	"pwf/internal/sweep"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pwfchains:", err)
		os.Exit(1)
	}
}

func run(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("pwfchains", flag.ContinueOnError)
	var (
		chain     = fs.String("chain", "scu", "chain family: scu, fetchinc, parallel")
		n         = fs.Int("n", 4, "number of processes")
		q         = fs.Int("q", 3, "steps per operation (parallel only)")
		full      = fs.Bool("individual", true, "also build the individual chain and verify the lifting")
		dot       = fs.Bool("dot", false, "emit the system chain as Graphviz DOT (Figure 1) instead of the analysis")
		metrics   = fs.Bool("metrics", false, "print a JSON metrics snapshot (chain-cache hits/misses) to stderr")
		traceFile = fs.String("trace", "", "record the analysis as job lifecycle trace events in this file")
		traceForm = fs.String("trace-format", "ndjson", "trace file format: ndjson (v1) or bin (compact binary v2)")
		traceComp = fs.String("trace-compress", "none", "binary trace compression: none or gzip")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	format, err := obs.ParseTraceFormat(*traceForm)
	if err != nil {
		return err
	}
	comp, err := obs.ParseCompression(*traceComp)
	if err != nil {
		return err
	}
	var trace obs.TraceWriter
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if trace, err = obs.NewTraceWriter(f, format, comp); err != nil {
			return err
		}
	}

	label := fmt.Sprintf("%s n=%d", *chain, *n)
	if *chain == "parallel" {
		label = fmt.Sprintf("%s n=%d q=%d", *chain, *n, *q)
	}
	if trace != nil {
		trace.Record(obs.Event{Kind: obs.KindJobStart, Job: 0, Label: label})
	}
	start := time.Now()
	err = func() error {
		if *dot {
			return emitDOT(out, *chain, *n, *q)
		}
		switch *chain {
		case "scu":
			return analyzeSCU(out, *n, *full)
		case "fetchinc":
			return analyzeFetchInc(out, *n, *full)
		case "parallel":
			return analyzeParallel(out, *n, *q, *full)
		default:
			return fmt.Errorf("unknown chain family %q", *chain)
		}
	}()
	if trace != nil {
		trace.Record(obs.Event{Kind: obs.KindJobEnd, Job: 0, Label: label,
			ElapsedNS: time.Since(start).Nanoseconds()})
		if ferr := trace.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}
	if err != nil {
		return err
	}
	if *metrics {
		return obs.Default.WriteJSON(errOut)
	}
	return nil
}

func analyzeSCU(out io.Writer, n int, full bool) error {
	sys, err := sweep.DefaultCache.SCUSystem(n)
	if err != nil {
		return err
	}
	w, err := sys.SystemLatency()
	if err != nil {
		return err
	}
	mu, err := sys.SuccessRate()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "SCU(0,1) system chain, n=%d: %d states\n", n, sys.Chain.N())
	fmt.Fprintf(out, "stationary success rate mu = %.6f\n", mu)
	fmt.Fprintf(out, "system latency W = %.4f  (sqrt(n) = %.4f, W/sqrt(n) = %.4f)\n",
		w, math.Sqrt(float64(n)), w/math.Sqrt(float64(n)))
	fmt.Fprintf(out, "implied individual latency n*W = %.4f\n", float64(n)*w)

	if !full {
		return nil
	}
	ind, lift, err := sweep.DefaultCache.SCUIndividual(n)
	if err != nil {
		fmt.Fprintf(out, "individual chain skipped: %v\n", err)
		return nil
	}
	return verify(out, "SCU(0,1)", n, ind, sys, lift, w)
}

func analyzeFetchInc(out io.Writer, n int, full bool) error {
	glob, err := sweep.DefaultCache.FetchIncGlobal(n)
	if err != nil {
		return err
	}
	w, err := glob.SystemLatency()
	if err != nil {
		return err
	}
	z, err := chains.FetchIncHittingZ(n)
	if err != nil {
		return err
	}
	qn, err := chains.RamanujanQ(n)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "fetch-and-inc global chain, n=%d: %d states\n", n, glob.Chain.N())
	fmt.Fprintf(out, "system latency W = %.4f  (Lemma 12 bound 2*sqrt(n) = %.4f)\n",
		w, 2*math.Sqrt(float64(n)))
	fmt.Fprintf(out, "Z(n-1) = %.4f = Ramanujan Q(n) = %.4f, asymptote sqrt(pi*n/2) = %.4f\n",
		z[n-1], qn, chains.RamanujanQAsymptote(n))

	if !full {
		return nil
	}
	ind, lift, err := sweep.DefaultCache.FetchIncIndividual(n)
	if err != nil {
		fmt.Fprintf(out, "individual chain skipped: %v\n", err)
		return nil
	}
	return verify(out, "fetch-and-inc", n, ind, glob, lift, w)
}

func analyzeParallel(out io.Writer, n, q int, full bool) error {
	sys, err := sweep.DefaultCache.ParallelSystem(n, q)
	if err != nil {
		return err
	}
	w, err := sys.SystemLatency()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "parallel code system chain, n=%d q=%d: %d states\n", n, q, sys.Chain.N())
	fmt.Fprintf(out, "system latency W = %.4f  (Lemma 11: exactly q = %d)\n", w, q)

	if !full {
		return nil
	}
	ind, lift, err := sweep.DefaultCache.ParallelIndividual(n, q)
	if err != nil {
		fmt.Fprintf(out, "individual chain skipped: %v\n", err)
		return nil
	}
	return verify(out, "parallel", n, ind, sys, lift, w)
}

// emitDOT writes the requested system chain as a Graphviz digraph —
// the regenerable form of the paper's Figure 1.
func emitDOT(out io.Writer, chain string, n, q int) error {
	switch chain {
	case "scu":
		sys, states, err := chains.SCUSystem(n)
		if err != nil {
			return err
		}
		labels := make([]string, len(states))
		for i, st := range states {
			labels[i] = st.String()
		}
		return sys.Chain.WriteDOT(out, fmt.Sprintf("scu-system-n%d", n), labels)
	case "fetchinc":
		glob, err := chains.FetchIncGlobal(n)
		if err != nil {
			return err
		}
		labels := make([]string, glob.Chain.N())
		for i := range labels {
			labels[i] = fmt.Sprintf("v%d", i+1)
		}
		return glob.Chain.WriteDOT(out, fmt.Sprintf("fetchinc-global-n%d", n), labels)
	case "parallel":
		sys, states, err := chains.ParallelSystem(n, q)
		if err != nil {
			return err
		}
		labels := make([]string, len(states))
		for i, st := range states {
			labels[i] = fmt.Sprintf("%v", st)
		}
		return sys.Chain.WriteDOT(out, fmt.Sprintf("parallel-system-n%d-q%d", n, q), labels)
	default:
		return fmt.Errorf("unknown chain family %q", chain)
	}
}

func verify(out io.Writer, name string, n int, ind, sys *chains.Analysis, lift []int, w float64) error {
	report, err := markov.VerifyLifting(ind.Chain, sys.Chain, lift)
	if err != nil {
		return fmt.Errorf("lifting: %w", err)
	}
	fmt.Fprintf(out, "%s individual chain: %d states\n", name, ind.Chain.N())
	fmt.Fprintf(out, "lifting verified: max flow error %.3g, max marginal error %.3g\n",
		report.MaxFlowError, report.MaxMarginalError)
	for pid := 0; pid < n; pid++ {
		wi, err := ind.IndividualLatency(pid)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  W_%d = %.4f  (n*W = %.4f, ratio %.6f)\n",
			pid, wi, float64(n)*w, wi/(float64(n)*w))
	}
	return nil
}
