package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"pwf/internal/api"
)

func TestBuildJobsExpandsAllAxes(t *testing.T) {
	jobs, err := buildJobs("scu,fetchinc", "uniform,sticky:0.5", "2,4", 1000, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 2 * 2 * 3; len(jobs) != want {
		t.Fatalf("got %d jobs, want %d", len(jobs), want)
	}
	// Labels are unique and carry every axis.
	seen := map[string]bool{}
	for _, j := range jobs {
		if seen[j.Label] {
			t.Errorf("duplicate label %q", j.Label)
		}
		seen[j.Label] = true
		if j.Steps != 1000 || j.WarmupFraction != 0.1 {
			t.Errorf("job %q: steps %d warmup %v", j.Label, j.Steps, j.WarmupFraction)
		}
	}
	if !seen["scu/sticky:0.5/n4/r2"] {
		t.Error("expected label scu/sticky:0.5/n4/r2 missing")
	}
}

func TestBuildJobsRejectsBadAxes(t *testing.T) {
	cases := [][3]string{
		{"nosuch", "uniform", "2"},
		{"scu", "sticky", "2"}, // sticky needs a rho
		{"scu", "uniform", "zero"},
		{"scu", "uniform", "0"},
	}
	for _, c := range cases {
		if _, err := buildJobs(c[0], c[1], c[2], 1000, 0.1, 1); err == nil {
			t.Errorf("buildJobs(%q, %q, %q) accepted bad input", c[0], c[1], c[2])
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	cases := [][]string{
		{"-seeds", "0"},
		{"-workers", "-1"},
		{"-resume"}, // without -checkpoint
		{"-algos", "nosuch"},
	}
	for _, args := range cases {
		if err := run(args, &out, &errOut); err == nil {
			t.Errorf("run(%v) accepted bad flags", args)
		}
	}
}

func TestRunEmitsCanonicalResultsInInputOrder(t *testing.T) {
	var out, errOut bytes.Buffer
	args := []string{"-algos", "fetchinc", "-scheds", "uniform", "-n", "2,3",
		"-seeds", "2", "-steps", "20000", "-progress=false"}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	results, err := api.ReadResults(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	for i, r := range results {
		if r.Index != i {
			t.Errorf("result %d has index %d; output must be input order", i, r.Index)
		}
	}
}

// An existing checkpoint is refused without -resume, and a resumed
// checkpoint whose grid hash mismatches the requested grid is
// rejected loudly instead of mixing results.
func TestRunCheckpointResumePolicy(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "grid.ckpt")
	base := []string{"-algos", "fetchinc", "-scheds", "uniform", "-n", "2",
		"-seeds", "2", "-steps", "10000", "-progress=false", "-checkpoint", ckpt}

	var out, errOut bytes.Buffer
	if err := run(base, &out, &errOut); err != nil {
		t.Fatal(err)
	}

	// Same grid again, no -resume: refused.
	err := run(base, &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "-resume") {
		t.Errorf("rerun without -resume: got %v, want an error naming -resume", err)
	}

	// Same grid with -resume: fine, everything restored.
	out.Reset()
	if err := run(append(base, "-resume"), &out, &errOut); err != nil {
		t.Fatal(err)
	}

	// Different grid (other master seed) with -resume: loud mismatch.
	err = run(append(base, "-resume", "-seed", "99"), &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "grid mismatch") {
		t.Errorf("mismatched resume: got %v, want a grid-mismatch error", err)
	}
}

// Resuming a completed checkpoint recomputes nothing and reproduces
// the original bytes.
func TestRunResumeReproducesBytes(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-algos", "fetchinc,scu", "-scheds", "uniform", "-n", "2,3",
		"-seeds", "2", "-steps", "20000", "-progress=false"}

	var plain, errOut bytes.Buffer
	if err := run(args, &plain, &errOut); err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(dir, "grid.ckpt")
	var first bytes.Buffer
	if err := run(append(args, "-checkpoint", ckpt), &first, &errOut); err != nil {
		t.Fatal(err)
	}
	var resumed bytes.Buffer
	if err := run(append(args, "-checkpoint", ckpt, "-resume"), &resumed, &errOut); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), first.Bytes()) {
		t.Error("checkpointed run differs from plain run")
	}
	if !bytes.Equal(plain.Bytes(), resumed.Bytes()) {
		t.Error("fully restored run differs from plain run")
	}
	if !strings.Contains(errOut.String(), "resuming") {
		t.Error("resume did not announce the restored count")
	}
}
