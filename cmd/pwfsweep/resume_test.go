package main

import (
	"bytes"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// gridArgs is the harness grid: small enough to finish in seconds,
// scalar-executed (-replica-batch 1) so points commit one at a time
// and the kill window between commits is wide.
func gridArgs(extra ...string) []string {
	args := []string{
		"-algos", "fetchinc,scu", "-scheds", "uniform", "-n", "2,3",
		"-seeds", "8", "-steps", "400000",
		"-replica-batch", "1", "-flush-every", "-1", "-progress=false",
	}
	return append(args, extra...)
}

const gridPoints = 2 * 2 * 8

// countRecords reports how many completed points the checkpoint holds:
// newline-terminated lines past the header. A torn tail does not count.
func countRecords(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	n := bytes.Count(data, []byte("\n"))
	if n == 0 {
		return 0
	}
	return n - 1 // header line
}

// TestKillAndResumeIsByteIdentical SIGKILLs pwfsweep mid-run at
// randomized points, resumes it from the checkpoint until it
// completes, and asserts the final output is byte-identical to an
// uninterrupted run of the same grid.
func TestKillAndResumeIsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and repeatedly kills a subprocess")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not in PATH")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "pwfsweep")
	build := exec.Command(goBin, "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	refOut := filepath.Join(dir, "ref.ndjson")
	ref := exec.Command(bin, gridArgs("-out", refOut)...)
	if out, err := ref.CombinedOutput(); err != nil {
		t.Fatalf("reference run: %v\n%s", err, out)
	}

	seed := time.Now().UnixNano()
	rng := rand.New(rand.NewSource(seed))
	t.Logf("kill-schedule rng seed %d", seed)

	ckpt := filepath.Join(dir, "grid.ckpt")
	killedOut := filepath.Join(dir, "killed.ndjson")
	kills := 0
	const maxAttempts = 12
	for attempt := 0; ; attempt++ {
		if attempt == maxAttempts {
			t.Fatalf("no clean completion after %d attempts (%d kills)", maxAttempts, kills)
		}
		args := gridArgs("-out", killedOut, "-checkpoint", ckpt)
		if attempt > 0 {
			args = append(args, "-resume")
		}
		cmd := exec.Command(bin, args...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		exited := make(chan error, 1)
		go func() { exited <- cmd.Wait() }()

		// Kill once the checkpoint grows past a randomized threshold
		// beyond what previous attempts already banked; the last two
		// attempts run to completion so the test always terminates.
		already := countRecords(ckpt)
		target := already + 1 + rng.Intn(gridPoints-already)
		killed := false
		if attempt < maxAttempts-2 && target < gridPoints {
			deadline := time.After(2 * time.Minute)
		poll:
			for {
				select {
				case err := <-exited:
					if err != nil {
						t.Fatalf("attempt %d exited early: %v\n%s", attempt, err, stderr.String())
					}
					break poll // finished before the kill threshold
				case <-deadline:
					t.Fatalf("attempt %d: checkpoint stuck at %d records waiting for %d",
						attempt, countRecords(ckpt), target)
				default:
					if countRecords(ckpt) >= target {
						if err := cmd.Process.Kill(); err != nil {
							t.Fatal(err)
						}
						<-exited
						killed = true
						kills++
						break poll
					}
					time.Sleep(2 * time.Millisecond)
				}
			}
		} else if err := <-exited; err != nil {
			t.Fatalf("final attempt: %v\n%s", err, stderr.String())
		}
		if killed {
			continue
		}

		// Clean exit: the resumed output must match the reference.
		refBytes, err := os.ReadFile(refOut)
		if err != nil {
			t.Fatal(err)
		}
		gotBytes, err := os.ReadFile(killedOut)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(refBytes, gotBytes) {
			t.Fatalf("resumed output differs from uninterrupted run after %d kills", kills)
		}
		if kills == 0 {
			t.Fatal("harness never killed the subprocess; grid too small for the kill window")
		}
		if n := countRecords(ckpt); n != gridPoints {
			t.Errorf("checkpoint holds %d records, want %d", n, gridPoints)
		}
		t.Logf("byte-identical after %d SIGKILLs across %d attempts", kills, attempt+1)
		return
	}
}

// TestKilledCheckpointRejectsOtherGrid: a checkpoint left behind by a
// killed run refuses to resume under a different grid, end to end
// through the binary.
func TestKilledCheckpointRejectsOtherGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a subprocess")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not in PATH")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "pwfsweep")
	if out, err := exec.Command(goBin, "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	ckpt := filepath.Join(dir, "grid.ckpt")
	first := exec.Command(bin, gridArgs("-checkpoint", ckpt, "-out", filepath.Join(dir, "a.ndjson"))...)
	if err := first.Start(); err != nil {
		t.Fatal(err)
	}
	for countRecords(ckpt) < 1 {
		time.Sleep(2 * time.Millisecond)
	}
	first.Process.Kill()
	first.Wait()

	other := exec.Command(bin, gridArgs("-checkpoint", ckpt, "-resume", "-seed", "99")...)
	var stderr bytes.Buffer
	other.Stderr = &stderr
	err = other.Run()
	if err == nil {
		t.Fatal("binary resumed a checkpoint from a different grid")
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Errorf("want exit code 1, got %v", err)
	}
	if !bytes.Contains(stderr.Bytes(), []byte("grid mismatch")) {
		t.Errorf("stderr does not name the grid mismatch:\n%s", stderr.String())
	}
}
