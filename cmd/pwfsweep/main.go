// Command pwfsweep runs the full paper grid — every workload ×
// scheduler × process count, times a seed-replica count — as one
// resumable, checkpointed run on the deterministic sweep engine. It is
// the single command behind the reproduction's million-job
// experiments: a multi-hour run killed at 99% resumes from its
// checkpoint and produces output byte-identical to an uninterrupted
// run, because every point draws its randomness from (master seed,
// point index) alone and the checkpoint binds the grid's hash.
//
// Usage:
//
//	pwfsweep -checkpoint grid.ckpt -out results.ndjson
//	pwfsweep -checkpoint grid.ckpt -resume -out results.ndjson   # after a crash
//	pwfsweep -algos scu,fetchinc -scheds uniform -n 4,8 -seeds 10 -steps 100000
//
// The default grid is the paper reproduction's: algorithms
// scu,fetchinc,parallel,unbounded,stack,queue under schedulers
// uniform, sticky:0.5, lottery at n in {2,4,8,16,32,64}, 100 seed
// replicas each — 10800 points of one million steps. Flags scale any
// axis up or down; -seeds 1000 on a wider -n list is the million-job
// shape.
//
// Checkpointing: -checkpoint appends every completed point to an
// fsync-batched log headed by the grid's SHA-256 and master seed
// (format: internal/checkpoint). An existing checkpoint is only
// touched with -resume, and only if its header matches the requested
// grid exactly — a mismatched checkpoint is rejected loudly rather
// than mixing results across grids. SIGINT checkpoints and exits
// cleanly; SIGKILL at any byte leaves a loadable prefix. Progress
// (-progress, default on when stderr is being watched) reports
// done/total, rate, and an ETA computed from this session's rate,
// counting restored points as already done.
//
// Output: one canonical api result line per point (schema v1, no
// wall-clock fields), in input order, written to -out ("-" = stdout)
// once the run completes. The bytes are identical to what pwfserve
// streams and pwfsim -json emits for the same grid and seed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pwf"
	"pwf/internal/api"
	"pwf/internal/checkpoint"
)

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "pwfsweep:", err)
	if errors.Is(err, pwf.ErrSweepCanceled) {
		// Interrupted but checkpointed: distinct exit status so
		// wrappers can loop on resume.
		os.Exit(3)
	}
	os.Exit(1)
}

// defaultAlgos maps the -algos names onto their canonical paper
// parameterizations.
var workloadByName = map[string]pwf.Workload{
	"scu":         pwf.SCUWorkload(0, 1),
	"fetchinc":    pwf.FetchIncWorkload(),
	"parallel":    pwf.ParallelWorkload(1),
	"unbounded":   pwf.UnboundedWorkload(0),
	"stack":       pwf.StackWorkload(),
	"queue":       pwf.QueueWorkload(),
	"rcu":         pwf.RCUWorkload(),
	"lfuniversal": pwf.LFUniversalWorkload(),
}

func run(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("pwfsweep", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		algos      = fs.String("algos", "scu,fetchinc,parallel,unbounded,stack,queue", "comma-separated workloads: scu, fetchinc, parallel, unbounded, stack, queue, rcu, lfuniversal")
		scheds     = fs.String("scheds", "uniform,sticky:0.5,lottery", "comma-separated schedulers (pwfsim -sched grammar)")
		ns         = fs.String("n", "2,4,8,16,32,64", "comma-separated process counts")
		steps      = fs.Uint64("steps", 1_000_000, "measurement window per point, in system steps")
		warmup     = fs.Float64("warmup", 0.1, "warmup fraction of the measurement window, in [0, 1)")
		seeds      = fs.Int("seeds", 100, "seed replicas per grid point")
		seed       = fs.Uint64("seed", 1, "master rng seed (point i draws from stream (seed, i))")
		workers    = fs.Int("workers", 0, "worker pool size (default GOMAXPROCS)")
		width      = fs.Int("replica-batch", 16, "replica-batch width (1 = scalar execution)")
		ckptPath   = fs.String("checkpoint", "", "append completed points to this crash-safe checkpoint file")
		resume     = fs.Bool("resume", false, "continue an existing -checkpoint (its header must match this grid)")
		flushEvery = fs.Int("flush-every", checkpoint.DefaultFlushEvery, "fsync the checkpoint every this many points (-1 = every point)")
		outPath    = fs.String("out", "-", "write canonical NDJSON results here when the run completes (- = stdout)")
		progress   = fs.Bool("progress", true, "report done/total, rate, and ETA to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *seeds < 1 {
		return fmt.Errorf("-seeds must be >= 1, got %d", *seeds)
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be non-negative (0 = GOMAXPROCS), got %d", *workers)
	}
	if *resume && *ckptPath == "" {
		return errors.New("-resume needs -checkpoint")
	}

	jobs, err := buildJobs(*algos, *scheds, *ns, *steps, *warmup, *seeds)
	if err != nil {
		return err
	}
	cfg := pwf.SweepConfig{
		Jobs:          jobs,
		Seed:          *seed,
		Workers:       *workers,
		BatchFamilies: true,
		ReplicaBatch:  *width,
	}
	if *width > 1 {
		// Surface silent scalar fallbacks (once per distinct reason) so
		// a user who asked for replica batching learns when it did
		// nothing for part of the grid.
		cfg.OnBatchFallback = func(reason string) {
			fmt.Fprintf(errOut, "pwfsweep: replica batching fell back to scalar: %s\n", reason)
		}
	}
	total := len(jobs)

	restored := 0
	var cp *checkpoint.Log
	if *ckptPath != "" {
		if _, statErr := os.Stat(*ckptPath); statErr == nil && !*resume {
			return fmt.Errorf("checkpoint %s exists; pass -resume to continue it or remove it first", *ckptPath)
		}
		cp, err = checkpoint.Open(*ckptPath, cfg, checkpoint.Options{FlushEvery: *flushEvery})
		if err != nil {
			return err
		}
		defer cp.Close()
		cfg.Checkpoint = cp
		restored = cp.Restored()
		if restored > 0 {
			fmt.Fprintf(errOut, "pwfsweep: resuming %s: %d of %d points already complete\n",
				*ckptPath, restored, total)
		}
	}

	// SIGINT/SIGTERM cancel at the next dispatch boundary; completed
	// points are already in the checkpoint, so the run resumes where
	// it left off.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg.Context = ctx

	if *progress {
		cfg.Progress = newProgressPrinter(errOut, restored).update
	}

	began := time.Now()
	results, err := pwf.RunSweep(cfg)
	if err != nil {
		if errors.Is(err, pwf.ErrSweepCanceled) && cp != nil {
			if serr := cp.Sync(); serr != nil {
				return serr
			}
			return fmt.Errorf("%w (checkpoint %s holds the completed points; rerun with -resume)",
				err, *ckptPath)
		}
		return err
	}

	w := out
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	for _, r := range results {
		if err := api.WriteResultLine(w, api.ResultFromSweep(r)); err != nil {
			return err
		}
	}
	fmt.Fprintf(errOut, "pwfsweep: %d points done in %s (%d restored from checkpoint)\n",
		total, time.Since(began).Round(time.Millisecond), restored)
	return nil
}

// buildJobs expands the grid axes into one job per (algo, sched, n,
// seed replica), labeled for presentation. Seed replicas are explicit
// jobs, not Job.Replicas, so each carries its replica index in its
// label; the replica-batched core coalesces them anyway because they
// share a shape.
func buildJobs(algos, scheds, ns string, steps uint64, warmup float64, seeds int) ([]pwf.SweepJob, error) {
	var workloads []pwf.Workload
	var algoNames []string
	for _, name := range strings.Split(algos, ",") {
		name = strings.TrimSpace(name)
		w, ok := workloadByName[name]
		if !ok {
			return nil, fmt.Errorf("unknown algorithm %q (have: scu, fetchinc, parallel, unbounded, stack, queue, rcu, lfuniversal)", name)
		}
		workloads = append(workloads, w)
		algoNames = append(algoNames, name)
	}
	var specs []pwf.SchedulerSpec
	var schedNames []string
	for _, name := range strings.Split(scheds, ",") {
		name = strings.TrimSpace(name)
		spec, err := pwf.ParseScheduler(name)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
		schedNames = append(schedNames, name)
	}
	var counts []int
	for _, s := range strings.Split(ns, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad process count %q in -n", s)
		}
		counts = append(counts, n)
	}

	var jobs []pwf.SweepJob
	for ai, w := range workloads {
		for si, spec := range specs {
			for _, n := range counts {
				for k := 0; k < seeds; k++ {
					jobs = append(jobs, pwf.SweepJob{
						Workload:       w,
						N:              n,
						Sched:          spec,
						Steps:          steps,
						WarmupFraction: warmup,
						Label: fmt.Sprintf("%s/%s/n%d/r%d",
							algoNames[ai], schedNames[si], n, k),
					})
				}
			}
		}
	}
	return jobs, nil
}

// progressPrinter renders throttled progress lines with a rate and
// ETA computed from this session's completions only — restored points
// count as done but not toward the rate, so a resumed run's ETA is
// honest from its first line.
type progressPrinter struct {
	w        io.Writer
	started  time.Time
	restored int
	last     time.Time
}

func newProgressPrinter(w io.Writer, restored int) *progressPrinter {
	now := time.Now()
	return &progressPrinter{w: w, started: now, restored: restored}
}

func (p *progressPrinter) update(done, total int) {
	now := time.Now()
	if done < total && now.Sub(p.last) < 2*time.Second {
		return
	}
	p.last = now
	line := fmt.Sprintf("pwfsweep: %d/%d (%.1f%%)", done, total, 100*float64(done)/float64(total))
	if fresh := done - p.restored; fresh > 0 && done < total {
		rate := float64(fresh) / time.Since(p.started).Seconds()
		if rate > 0 {
			eta := time.Duration(float64(total-done)/rate) * time.Second
			line += fmt.Sprintf(", %.1f points/s, ETA %s", rate, eta.Round(time.Second))
		}
	}
	fmt.Fprintln(p.w, line)
}
