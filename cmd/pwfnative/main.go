// Command pwfnative runs the real-hardware experiments of the paper's
// appendix on this machine: schedule recording via atomic ticketing
// (Figures 3 and 4) and the completion-rate sweep (Figure 5).
//
// Usage:
//
//	pwfnative -mode schedule -workers 8 -ops 200000
//	pwfnative -mode rate -maxworkers 32 -ops 100000 [-algo counter|stack|queue]
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"

	"pwf/internal/native"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pwfnative:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pwfnative", flag.ContinueOnError)
	var (
		mode       = fs.String("mode", "schedule", "experiment: schedule, rate")
		workers    = fs.Int("workers", runtime.GOMAXPROCS(0), "workers for -mode schedule")
		maxWorkers = fs.Int("maxworkers", 2*runtime.GOMAXPROCS(0), "largest worker count for -mode rate")
		ops        = fs.Int("ops", 200000, "operations per worker")
		algo       = fs.String("algo", "counter", "workload for -mode rate: counter, add, stack, queue")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *mode {
	case "schedule":
		return runSchedule(out, *workers, *ops)
	case "rate":
		return runRate(out, *maxWorkers, *ops, *algo)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

func runSchedule(out io.Writer, workers, ops int) error {
	s, err := native.RecordSchedule(workers, ops)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "recorded %d steps by %d workers (GOMAXPROCS=%d)\n\n",
		s.Len(), workers, runtime.GOMAXPROCS(0))

	fmt.Fprintln(out, "Figure 3: per-worker step shares (ideal = 1/n)")
	ideal := 1 / float64(workers)
	for w, share := range s.StepShares() {
		fmt.Fprintf(out, "  worker %2d: %.4f  (ideal %.4f, deviation %+.4f)\n",
			w, share, ideal, share-ideal)
	}

	fmt.Fprintln(out, "\nFigure 4: P(next step by w_j | current step by w_0)")
	dist, err := s.NextStepDistribution(0)
	if err != nil {
		return err
	}
	for j, p := range dist {
		fmt.Fprintf(out, "  next = %2d: %.4f\n", j, p)
	}
	return nil
}

func runRate(out io.Writer, maxWorkers, ops int, algo string) error {
	measure, err := rateFunc(algo)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Figure 5: completion rate of %s vs worker count\n", algo)
	fmt.Fprintf(out, "%8s %12s %14s %14s %12s\n",
		"workers", "rate", "c/sqrt(n)", "worst c'/n", "elapsed")

	var c, cWorst float64
	for n := 1; n <= maxWorkers; n *= 2 {
		res, err := measure(n, ops)
		if err != nil {
			return err
		}
		if n == 1 {
			c = res.Rate()
			cWorst = res.Rate()
		}
		fmt.Fprintf(out, "%8d %12.6f %14.6f %14.6f %12v\n",
			n, res.Rate(), c/math.Sqrt(float64(n)), cWorst/float64(n),
			res.Elapsed.Round(1000))
	}
	return nil
}

func rateFunc(algo string) (func(workers, ops int) (native.RateResult, error), error) {
	switch algo {
	case "counter":
		return native.MeasureCASCounterRate, nil
	case "add":
		return native.MeasureAddCounterRate, nil
	case "stack":
		return native.MeasureStackRate, nil
	case "queue":
		return native.MeasureQueueRate, nil
	default:
		return nil, fmt.Errorf("unknown workload %q", algo)
	}
}
