// Command pwfnative runs the real-hardware experiments of the paper's
// appendix on this machine: schedule recording via atomic ticketing
// (Figures 3 and 4) and the completion-rate sweep (Figure 5).
//
// Usage:
//
//	pwfnative -mode schedule -workers 8 -ops 200000 [-trace out.ndjson]
//	pwfnative -mode rate -maxworkers 32 -ops 100000 [-algo counter|add|sharded|stack|queue] [-metrics]
//
// Contention-management flags (rate mode): -backoff paces retry loops
// (none, spin[:iters], exp[:base[:cap]], adaptive[:base[:cap]]);
// -elim gives the stack an elimination array of that many slots;
// -shards sets the sharded counter's shard count (0 = one per CPU).
//
// Observability flags: -trace writes the recovered hardware
// interleaving as sched events (schedule mode only); -trace-format
// selects NDJSON (v1, default) or the compact binary framing (v2,
// "bin") and -trace-compress adds per-frame gzip to binary traces;
// -metrics prints a JSON metrics snapshot to stderr, including the
// wait-free retry/step histograms and elimination-hit counters the
// rate workloads record; -debug-addr serves /metrics, /debug/vars and
// /debug/pprof over HTTP for the duration of the run;
// -cpuprofile/-memprofile write pprof profiles.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"runtime/pprof"

	"pwf/internal/backoff"
	"pwf/internal/native"
	"pwf/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pwfnative:", err)
		os.Exit(1)
	}
}

func run(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("pwfnative", flag.ContinueOnError)
	var (
		mode       = fs.String("mode", "schedule", "experiment: schedule, rate")
		workers    = fs.Int("workers", runtime.GOMAXPROCS(0), "workers for -mode schedule")
		maxWorkers = fs.Int("maxworkers", 2*runtime.GOMAXPROCS(0), "largest worker count for -mode rate")
		ops        = fs.Int("ops", 200000, "operations per worker")
		algo       = fs.String("algo", "counter", "workload for -mode rate: counter, add, sharded, stack, queue")
		backoffArg = fs.String("backoff", "none", "retry pacing: none, spin[:iters], exp[:base[:cap]], adaptive[:base[:cap]]")
		elimSlots  = fs.Int("elim", 0, "elimination-array slots for the stack workload (0 = disabled)")
		shards     = fs.Int("shards", 0, "shard count for -algo sharded (0 = one per CPU)")
		seed       = fs.Uint64("seed", 1, "seed for backoff jitter and elimination slot picks")
		traceFile  = fs.String("trace", "", "write the recovered schedule as trace events (schedule mode)")
		traceForm  = fs.String("trace-format", "ndjson", "trace file format: ndjson (v1) or bin (compact binary v2)")
		traceComp  = fs.String("trace-compress", "none", "binary trace compression: none or gzip")
		metrics    = fs.Bool("metrics", false, "print a JSON metrics snapshot to stderr after the run")
		debugAddr  = fs.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *traceFile != "" && *mode != "schedule" {
		return fmt.Errorf("-trace applies only to -mode schedule")
	}
	format, err := obs.ParseTraceFormat(*traceForm)
	if err != nil {
		return err
	}
	comp, err := obs.ParseCompression(*traceComp)
	if err != nil {
		return err
	}
	if *workers < 1 {
		return fmt.Errorf("-workers must be at least 1, got %d", *workers)
	}
	if *maxWorkers < 1 {
		return fmt.Errorf("-maxworkers must be at least 1, got %d", *maxWorkers)
	}
	if *ops < 1 {
		return fmt.Errorf("-ops must be at least 1, got %d", *ops)
	}
	if *elimSlots < 0 {
		return fmt.Errorf("-elim must be non-negative, got %d", *elimSlots)
	}
	if *shards < 0 {
		return fmt.Errorf("-shards must be non-negative, got %d", *shards)
	}
	structOpts, err := structOptions(*backoffArg, *elimSlots, *shards, *seed)
	if err != nil {
		return err
	}

	if *debugAddr != "" {
		bound, stop, err := obs.ServeDebug(*debugAddr, obs.Default)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Fprintf(errOut, "debug server listening on %s\n", bound)
	}

	err = withProfiles(*cpuProfile, *memProfile, func() error {
		switch *mode {
		case "schedule":
			return runSchedule(out, *workers, *ops, *traceFile, format, comp)
		case "rate":
			return runRate(out, *maxWorkers, *ops, *algo, *metrics, structOpts)
		default:
			return fmt.Errorf("unknown mode %q", *mode)
		}
	})
	if err != nil {
		return err
	}
	if *metrics {
		return obs.Default.WriteJSON(errOut)
	}
	return nil
}

// withProfiles brackets f with optional CPU and heap profiling.
func withProfiles(cpu, mem string, f func() error) error {
	if cpu != "" {
		cf, err := os.Create(cpu)
		if err != nil {
			return err
		}
		defer cf.Close()
		if err := pprof.StartCPUProfile(cf); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if err := f(); err != nil {
		return err
	}
	if mem != "" {
		mf, err := os.Create(mem)
		if err != nil {
			return err
		}
		defer mf.Close()
		runtime.GC()
		return pprof.WriteHeapProfile(mf)
	}
	return nil
}

func runSchedule(out io.Writer, workers, ops int, traceFile string, format obs.TraceFormat, comp obs.Compression) error {
	s, err := native.RecordSchedule(workers, ops)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "recorded %d steps by %d workers (GOMAXPROCS=%d)\n\n",
		s.Len(), workers, runtime.GOMAXPROCS(0))

	if traceFile != "" {
		if err := writeScheduleTrace(traceFile, s, format, comp); err != nil {
			return err
		}
	}

	fmt.Fprintln(out, "Figure 3: per-worker step shares (ideal = 1/n)")
	ideal := 1 / float64(workers)
	for w, share := range s.StepShares() {
		fmt.Fprintf(out, "  worker %2d: %.4f  (ideal %.4f, deviation %+.4f)\n",
			w, share, ideal, share-ideal)
	}

	fmt.Fprintln(out, "\nFigure 4: P(next step by w_j | current step by w_0)")
	dist, err := s.NextStepDistribution(0)
	if err != nil {
		return err
	}
	for j, p := range dist {
		fmt.Fprintf(out, "  next = %2d: %.4f\n", j, p)
	}
	return nil
}

// writeScheduleTrace dumps the recovered hardware interleaving as
// sched events (1-based steps, matching the simulator's numbering) in
// the selected trace format so it can be replayed through the
// simulator's trace-driven scheduler. Binary hardware schedules are a
// natural fit for delta coding: consecutive steps differ by one, so
// each event costs about two bytes before compression.
func writeScheduleTrace(path string, s *native.Schedule, format obs.TraceFormat, comp obs.Compression) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	tr, err := obs.NewTraceWriter(f, format, comp)
	if err != nil {
		f.Close()
		return err
	}
	for i, w := range s.Order() {
		tr.Record(obs.Event{Kind: obs.KindSched, Step: uint64(i) + 1, PID: int(w)})
	}
	if err := tr.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// structOptions translates the contention-management flags into
// structure construction options. Options a given workload does not
// support are ignored by the structure, so a single option list serves
// every -algo.
func structOptions(backoffSpec string, elimSlots, shards int, seed uint64) ([]native.Option, error) {
	var opts []native.Option
	strat, err := backoff.Parse(backoffSpec, seed)
	if err != nil {
		return nil, err
	}
	if strat != nil {
		opts = append(opts, native.WithBackoff(strat))
	}
	if elimSlots > 0 {
		opts = append(opts, native.WithElimination(elimSlots))
	}
	if shards > 0 {
		opts = append(opts, native.WithShards(shards))
	}
	if len(opts) > 0 {
		opts = append(opts, native.WithSeed(seed))
	}
	return opts, nil
}

func runRate(out io.Writer, maxWorkers, ops int, algo string, metrics bool, structOpts []native.Option) error {
	var stats *obs.OpStats
	var opts []native.RateOption
	if metrics {
		stats = &obs.OpStats{}
		stats.Register(obs.Default, "native_"+algo)
		opts = append(opts, native.WithOpStats(stats))
	}
	if len(structOpts) > 0 {
		opts = append(opts, native.WithStructOptions(structOpts...))
	}
	measure, err := rateFunc(algo, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Figure 5: completion rate of %s vs worker count\n", algo)
	fmt.Fprintf(out, "%8s %12s %14s %14s %12s\n",
		"workers", "rate", "c/sqrt(n)", "worst c'/n", "elapsed")

	var c, cWorst float64
	for n := 1; n <= maxWorkers; n *= 2 {
		res, err := measure(n, ops)
		if err != nil {
			return err
		}
		if n == 1 {
			c = res.Rate()
			cWorst = res.Rate()
		}
		fmt.Fprintf(out, "%8d %12.6f %14.6f %14.6f %12v\n",
			n, res.Rate(), c/math.Sqrt(float64(n)), cWorst/float64(n),
			res.Elapsed.Round(1000))
	}
	return nil
}

func rateFunc(algo string, opts []native.RateOption) (func(workers, ops int) (native.RateResult, error), error) {
	var measure func(workers, ops int, opts ...native.RateOption) (native.RateResult, error)
	switch algo {
	case "counter":
		measure = native.MeasureCASCounterRate
	case "add":
		measure = native.MeasureAddCounterRate
	case "sharded":
		measure = native.MeasureShardedCounterRate
	case "stack":
		measure = native.MeasureStackRate
	case "queue":
		measure = native.MeasureQueueRate
	default:
		return nil, fmt.Errorf("unknown workload %q", algo)
	}
	return func(workers, ops int) (native.RateResult, error) {
		return measure(workers, ops, opts...)
	}, nil
}
