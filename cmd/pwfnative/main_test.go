package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pwf/internal/obs"
)

func TestRunSchedule(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-mode", "schedule", "-workers", "2", "-ops", "2000"}, &buf, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 3", "Figure 4", "worker  0"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunScheduleTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sched.ndjson")
	var buf bytes.Buffer
	args := []string{"-mode", "schedule", "-workers", "2", "-ops", "1000", "-trace", path}
	if err := run(args, &buf, &buf); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2*1000 {
		t.Fatalf("got %d events, want %d", len(events), 2*1000)
	}
	for i, e := range events {
		if e.Kind != obs.KindSched {
			t.Fatalf("event %d: kind %v, want sched", i, e.Kind)
		}
		if e.Step != uint64(i)+1 {
			t.Fatalf("event %d: step %d, want %d", i, e.Step, i+1)
		}
		if e.PID < 0 || e.PID > 1 {
			t.Fatalf("event %d: pid %d out of range", i, e.PID)
		}
	}
}

func TestRunRateAllWorkloads(t *testing.T) {
	for _, algo := range []string{"counter", "add", "stack", "queue"} {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			var buf bytes.Buffer
			args := []string{"-mode", "rate", "-maxworkers", "2", "-ops", "2000", "-algo", algo}
			if err := run(args, &buf, &buf); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), "Figure 5") {
				t.Errorf("missing header:\n%s", buf.String())
			}
		})
	}
}

func TestRunRateMetrics(t *testing.T) {
	var out, errOut bytes.Buffer
	args := []string{"-mode", "rate", "-maxworkers", "2", "-ops", "2000",
		"-algo", "counter", "-metrics"}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	snap := errOut.String()
	for _, want := range []string{"native_counter_ops", "native_counter_retries"} {
		if !strings.Contains(snap, want) {
			t.Errorf("metrics snapshot missing %q:\n%s", want, snap)
		}
	}
}

func TestRunProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	var buf bytes.Buffer
	args := []string{"-mode", "rate", "-maxworkers", "1", "-ops", "2000",
		"-cpuprofile", cpu, "-memprofile", mem}
	if err := run(args, &buf, &buf); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	for _, args := range [][]string{
		{"-mode", "nope"},
		{"-mode", "rate", "-algo", "nope"},
		{"-mode", "schedule", "-workers", "0"},
		{"-mode", "rate", "-trace", "x.ndjson"},
		{"-badflag"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf, &buf); err == nil {
			t.Errorf("args %v: nil error", args)
		}
	}
}
