package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSchedule(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-mode", "schedule", "-workers", "2", "-ops", "2000"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 3", "Figure 4", "worker  0"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunRateAllWorkloads(t *testing.T) {
	for _, algo := range []string{"counter", "add", "stack", "queue"} {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			var buf bytes.Buffer
			args := []string{"-mode", "rate", "-maxworkers", "2", "-ops", "2000", "-algo", algo}
			if err := run(args, &buf); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), "Figure 5") {
				t.Errorf("missing header:\n%s", buf.String())
			}
		})
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	for _, args := range [][]string{
		{"-mode", "nope"},
		{"-mode", "rate", "-algo", "nope"},
		{"-mode", "schedule", "-workers", "0"},
		{"-badflag"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v: nil error", args)
		}
	}
}
