package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pwf/internal/obs"
)

func TestRunSchedule(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-mode", "schedule", "-workers", "2", "-ops", "2000"}, &buf, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 3", "Figure 4", "worker  0"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunScheduleTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sched.ndjson")
	var buf bytes.Buffer
	args := []string{"-mode", "schedule", "-workers", "2", "-ops", "1000", "-trace", path}
	if err := run(args, &buf, &buf); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2*1000 {
		t.Fatalf("got %d events, want %d", len(events), 2*1000)
	}
	for i, e := range events {
		if e.Kind != obs.KindSched {
			t.Fatalf("event %d: kind %v, want sched", i, e.Kind)
		}
		if e.Step != uint64(i)+1 {
			t.Fatalf("event %d: step %d, want %d", i, e.Step, i+1)
		}
		if e.PID < 0 || e.PID > 1 {
			t.Fatalf("event %d: pid %d out of range", i, e.PID)
		}
	}
}

// TestRunScheduleTraceBinary records the hardware schedule in trace
// format v2 and checks it decodes to the same shape as the NDJSON
// path: all sched events with consecutive 1-based steps.
func TestRunScheduleTraceBinary(t *testing.T) {
	for _, comp := range []string{"none", "gzip"} {
		path := filepath.Join(t.TempDir(), "sched.pwft")
		var buf bytes.Buffer
		args := []string{"-mode", "schedule", "-workers", "2", "-ops", "1000",
			"-trace", path, "-trace-format", "bin", "-trace-compress", comp}
		if err := run(args, &buf, &buf); err != nil {
			t.Fatal(err)
		}
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		events, err := obs.ReadTrace(f)
		f.Close()
		if err != nil {
			t.Fatalf("compress=%s: decode: %v", comp, err)
		}
		if len(events) != 2*1000 {
			t.Fatalf("compress=%s: got %d events, want %d", comp, len(events), 2*1000)
		}
		for i, e := range events {
			if e.Kind != obs.KindSched || e.Step != uint64(i)+1 {
				t.Fatalf("compress=%s: event %d: %+v", comp, i, e)
			}
		}
	}
}

func TestRunRejectsBadTraceFormat(t *testing.T) {
	var buf bytes.Buffer
	args := []string{"-mode", "schedule", "-workers", "1", "-ops", "10",
		"-trace", filepath.Join(t.TempDir(), "x"), "-trace-format", "xml"}
	if err := run(args, &buf, &buf); err == nil {
		t.Error("unknown -trace-format accepted")
	}
}

func TestRunRateAllWorkloads(t *testing.T) {
	for _, algo := range []string{"counter", "add", "sharded", "stack", "queue"} {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			var buf bytes.Buffer
			args := []string{"-mode", "rate", "-maxworkers", "2", "-ops", "2000", "-algo", algo}
			if err := run(args, &buf, &buf); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), "Figure 5") {
				t.Errorf("missing header:\n%s", buf.String())
			}
		})
	}
}

func TestRunRateContentionFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"backoff-exp", []string{"-algo", "counter", "-backoff", "exp:16:4096"}},
		{"backoff-adaptive", []string{"-algo", "counter", "-backoff", "adaptive"}},
		{"backoff-spin", []string{"-algo", "queue", "-backoff", "spin:32"}},
		{"elim-stack", []string{"-algo", "stack", "-elim", "4", "-backoff", "exp"}},
		{"sharded", []string{"-algo", "sharded", "-shards", "4"}},
		{"seeded", []string{"-algo", "stack", "-elim", "2", "-seed", "42"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			args := append([]string{"-mode", "rate", "-maxworkers", "2", "-ops", "2000"}, tc.args...)
			if err := run(args, &buf, &buf); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), "Figure 5") {
				t.Errorf("missing header:\n%s", buf.String())
			}
		})
	}
}

func TestRunRateMetrics(t *testing.T) {
	var out, errOut bytes.Buffer
	args := []string{"-mode", "rate", "-maxworkers", "2", "-ops", "2000",
		"-algo", "counter", "-metrics"}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	snap := errOut.String()
	for _, want := range []string{"native_counter_ops", "native_counter_retries"} {
		if !strings.Contains(snap, want) {
			t.Errorf("metrics snapshot missing %q:\n%s", want, snap)
		}
	}
}

func TestRunProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	var buf bytes.Buffer
	args := []string{"-mode", "rate", "-maxworkers", "1", "-ops", "2000",
		"-cpuprofile", cpu, "-memprofile", mem}
	if err := run(args, &buf, &buf); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantMsg string
	}{
		{"bad mode", []string{"-mode", "nope"}, `unknown mode "nope"`},
		{"bad algo", []string{"-mode", "rate", "-algo", "nope"}, `unknown workload "nope"`},
		{"zero workers", []string{"-mode", "schedule", "-workers", "0"}, "-workers must be at least 1"},
		{"negative workers", []string{"-mode", "schedule", "-workers", "-3"}, "-workers must be at least 1"},
		{"zero maxworkers", []string{"-mode", "rate", "-maxworkers", "0"}, "-maxworkers must be at least 1"},
		{"negative maxworkers", []string{"-mode", "rate", "-maxworkers", "-1"}, "-maxworkers must be at least 1"},
		{"zero ops", []string{"-mode", "rate", "-ops", "0"}, "-ops must be at least 1"},
		{"negative ops", []string{"-mode", "schedule", "-ops", "-5"}, "-ops must be at least 1"},
		{"negative elim", []string{"-mode", "rate", "-elim", "-1"}, "-elim must be non-negative"},
		{"negative shards", []string{"-mode", "rate", "-shards", "-2"}, "-shards must be non-negative"},
		{"bad backoff strategy", []string{"-mode", "rate", "-backoff", "bogus"}, "bogus"},
		{"bad backoff param", []string{"-mode", "rate", "-backoff", "exp:x"}, "exp"},
		{"trace in rate mode", []string{"-mode", "rate", "-trace", "x.ndjson"}, "-trace applies only"},
		{"unknown flag", []string{"-badflag"}, ""},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			err := run(tc.args, &buf, &buf)
			if err == nil {
				t.Fatalf("args %v: nil error", tc.args)
			}
			if tc.wantMsg != "" && !strings.Contains(err.Error(), tc.wantMsg) {
				t.Errorf("args %v: error %q does not mention %q", tc.args, err, tc.wantMsg)
			}
		})
	}
}
