package pwf_test

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"pwf"
)

// optionScopes is the documented scope of every With* option: whether
// it applies to Run, to RunSweep, or to both. The companion AST scan
// below asserts this table covers every option constructor in the
// package, so adding an option without deciding (and documenting) its
// sweep counterpart fails this test.
var optionScopes = []struct {
	opt        pwf.Option
	run, sweep bool
}{
	{pwf.WithScheduler(pwf.UniformSpec()), true, false},
	{pwf.WithSteps(1000), true, false},
	{pwf.WithWarmupFraction(0.1), true, true},
	{pwf.WithSeed(7), true, true},
	{pwf.WithRecorder(nil), true, true},
	{pwf.WithTrace(&bytes.Buffer{}), true, true},
	{pwf.WithTraceFormat(&bytes.Buffer{}, pwf.TraceFormatBinary, pwf.TraceCompressGzip), true, true},
	{pwf.WithChainCache(nil), true, true},
	{pwf.WithWorkers(2), false, true},
	{pwf.WithProgress(nil), false, true},
	{pwf.WithFamilyBatching(), false, true},
	{pwf.WithReplicaBatching(8), false, true},
	{pwf.WithCheckpoint(nil), false, true},
}

// Every Run option must have a sweep counterpart or a documented
// reason not to (and vice versa), and misapplying a single-scoped
// option must fail loudly.
func TestOptionScopesDeclared(t *testing.T) {
	for _, tc := range optionScopes {
		name := tc.opt.Name()
		if name == "" {
			t.Error("option with empty name in scope table")
			continue
		}
		if got := tc.opt.AppliesToRun(); got != tc.run {
			t.Errorf("%s: AppliesToRun = %v, want %v", name, got, tc.run)
		}
		if got := tc.opt.AppliesToSweep(); got != tc.sweep {
			t.Errorf("%s: AppliesToSweep = %v, want %v", name, got, tc.sweep)
		}
		if tc.run != tc.sweep && tc.opt.ScopeNote() == "" {
			t.Errorf("%s applies to only one entry point but documents no reason", name)
		}
		if tc.run && tc.sweep && tc.opt.ScopeNote() != "" {
			t.Errorf("%s applies to both entry points yet carries scope note %q",
				name, tc.opt.ScopeNote())
		}
	}
}

// The scope table covers every exported With* constructor returning
// Option — discovered by parsing the package source, so new options
// cannot dodge the scope decision.
func TestOptionScopeTableIsComplete(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	declared := map[string]bool{}
	for _, pkg := range pkgs {
		if pkg.Name != "pwf" {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Recv != nil || !fn.Name.IsExported() {
					continue
				}
				if len(fn.Name.Name) < 5 || fn.Name.Name[:4] != "With" {
					continue
				}
				res := fn.Type.Results
				if res == nil || len(res.List) != 1 {
					continue
				}
				if id, ok := res.List[0].Type.(*ast.Ident); ok && id.Name == "Option" {
					declared[fn.Name.Name] = true
				}
			}
		}
	}
	if len(declared) == 0 {
		t.Fatal("AST scan found no option constructors")
	}
	inTable := map[string]bool{}
	for _, tc := range optionScopes {
		inTable[tc.opt.Name()] = true
	}
	for name := range declared {
		if !inTable[name] {
			t.Errorf("option %s has no entry in the scope table — decide whether it lifts to sweeps and add it", name)
		}
	}
	for name := range inTable {
		if !declared[name] {
			t.Errorf("scope table names %s, which the AST scan did not find (renamed or removed?)", name)
		}
	}
}

// Misapplied options error instead of being silently dropped.
func TestOptionsOutOfScopeError(t *testing.T) {
	cfg := pwf.NewRunConfig(pwf.SCUWorkload(0, 1), 4, pwf.WithSteps(1000))
	if _, err := pwf.Run(cfg, pwf.WithWorkers(2)); err == nil {
		t.Error("Run accepted the sweep-only WithWorkers")
	}
	jobs := []pwf.SweepJob{{Workload: pwf.SCUWorkload(0, 1), N: 2, Steps: 1000}}
	if _, err := pwf.RunSweep(pwf.SweepConfig{Jobs: jobs, Seed: 1},
		pwf.WithSteps(5000)); err == nil {
		t.Error("RunSweep accepted the run-only WithSteps")
	}
}

// The lifted options actually take effect on sweeps.
func TestLiftedSweepOptions(t *testing.T) {
	jobs := []pwf.SweepJob{
		{Workload: pwf.SCUWorkload(0, 1), N: 3, Steps: 20000},
		{Workload: pwf.FetchIncWorkload(), N: 3, Steps: 20000},
	}
	progress := 0
	base, err := pwf.RunSweep(pwf.SweepConfig{Jobs: jobs},
		pwf.WithSeed(42), pwf.WithWorkers(1), pwf.WithFamilyBatching(),
		pwf.WithProgress(func(done, total int) { progress = done }))
	if err != nil {
		t.Fatal(err)
	}
	if progress != len(jobs) {
		t.Errorf("progress callback reached %d of %d", progress, len(jobs))
	}
	warmed, err := pwf.RunSweep(pwf.SweepConfig{Jobs: jobs},
		pwf.WithSeed(42), pwf.WithWarmupFraction(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if base[0].Latencies == warmed[0].Latencies {
		t.Error("lifted warmup option had no effect on the sweep")
	}
}
