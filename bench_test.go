package pwf

// One benchmark per experiment (table/figure) of the paper, plus
// benchmarks for the ablations DESIGN.md calls out. Each experiment
// bench runs the reduced (Quick) configuration per iteration; run
// cmd/pwfrepro for the full-size tables.

import (
	"testing"

	"pwf/internal/chains"
	"pwf/internal/exp"
	"pwf/internal/machine"
	"pwf/internal/rng"
	"pwf/internal/sched"
	"pwf/internal/scu"
	"pwf/internal/shmem"
)

func benchExperiment(b *testing.B, run func(exp.Config) (*exp.Table, error)) {
	b.Helper()
	cfg := exp.Config{Seed: 1, Quick: true}
	for i := 0; i < b.N; i++ {
		if _, err := run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1Fig3StepShare(b *testing.B)        { benchExperiment(b, exp.Fig3StepShares) }
func BenchmarkE2Fig4NextStep(b *testing.B)         { benchExperiment(b, exp.Fig4NextStep) }
func BenchmarkE3Fig5CompletionRate(b *testing.B)   { benchExperiment(b, exp.Fig5CompletionRate) }
func BenchmarkE4SystemLatencySqrtN(b *testing.B)   { benchExperiment(b, exp.SystemLatencySweep) }
func BenchmarkE5IndividualLatency(b *testing.B)    { benchExperiment(b, exp.IndividualLatencyFairness) }
func BenchmarkE6ParallelCode(b *testing.B)         { benchExperiment(b, exp.ParallelCode) }
func BenchmarkE7FetchIncReturnTime(b *testing.B)   { benchExperiment(b, exp.FetchIncAnalysis) }
func BenchmarkE8MinToMaxProgress(b *testing.B)     { benchExperiment(b, exp.MinToMaxProgress) }
func BenchmarkE9UnboundedStarvation(b *testing.B)  { benchExperiment(b, exp.UnboundedStarvation) }
func BenchmarkE10LiftingVerification(b *testing.B) { benchExperiment(b, exp.LiftingVerification) }
func BenchmarkE11PhaseLength(b *testing.B)         { benchExperiment(b, exp.BallsBinsPhases) }
func BenchmarkE12CrashLatency(b *testing.B)        { benchExperiment(b, exp.CrashLatency) }
func BenchmarkE13SchedulerAblation(b *testing.B)   { benchExperiment(b, exp.SchedulerAblation) }
func BenchmarkE14ReplaySchedule(b *testing.B)      { benchExperiment(b, exp.ReplaySchedule) }
func BenchmarkE15WaitFreePrice(b *testing.B)       { benchExperiment(b, exp.WaitFreePrice) }
func BenchmarkE16OpLatencyDistribution(b *testing.B) {
	benchExperiment(b, exp.OpLatencyDistribution)
}
func BenchmarkE17HashSetScaling(b *testing.B) { benchExperiment(b, exp.HashSetScaling) }

// --- Ablation: stationary-distribution solver -----------------------

func BenchmarkStationaryDirectSolve(b *testing.B) {
	sys, _, err := chains.SCUSystem(32)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := sys.Chain.StationarySolve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStationaryPowerIteration(b *testing.B) {
	// The fetch-inc chain is ergodic, so power iteration converges.
	glob, err := chains.FetchIncGlobal(64)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := glob.Chain.StationaryPower(1e-10, 1000000); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Simulation throughput ------------------------------------------

func benchSimSteps(b *testing.B, n, q, s int) {
	b.Helper()
	mem, err := shmem.New(scu.SCULayout(s))
	if err != nil {
		b.Fatal(err)
	}
	procs, err := scu.NewSCUGroup(n, q, s, 0)
	if err != nil {
		b.Fatal(err)
	}
	u, err := sched.NewUniform(n, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	sim, err := machine.New(mem, procs, u)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimSCU01N8(b *testing.B)  { benchSimSteps(b, 8, 0, 1) }
func BenchmarkSimSCU01N64(b *testing.B) { benchSimSteps(b, 64, 0, 1) }
func BenchmarkSimSCU43N8(b *testing.B)  { benchSimSteps(b, 8, 4, 3) }

// --- Public API round trips -----------------------------------------

func BenchmarkRunFetchInc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(NewRunConfig(FetchIncWorkload(), 8),
			WithSteps(50000), WithSeed(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactSCULatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ExactSCUSystemLatency(32); err != nil {
			b.Fatal(err)
		}
	}
}
