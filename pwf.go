// Package pwf is the public API of the reproduction of Alistarh,
// Censor-Hillel and Shavit, "Are Lock-Free Concurrent Algorithms
// Practically Wait-Free?" (STOC 2014).
//
// The package exposes three layers:
//
//   - Simulation: build a discrete-time shared-memory system — an
//     algorithm from the class SCU(q, s), a fetch-and-increment
//     counter, the unbounded Algorithm 1, a Treiber stack or a
//     Michael–Scott queue — under a stochastic scheduler, and measure
//     the paper's latency and fairness metrics. Run measures a single
//     declarative workload; RunSweep executes a whole parameter grid
//     in parallel with deterministic per-job seeding (see run.go).
//     NewSim remains the low-level composable path.
//
//   - Exact analysis: the paper's Markov chains built exactly for
//     small n, with stationary distributions, latencies, and lifting
//     verification (Exact*, VerifyLifting*), memoized in a shared
//     cache so repeated requests are free.
//
//   - Native measurement: real goroutine/atomic counterparts with the
//     atomic-ticket schedule recorder of Appendix A and the
//     completion-rate harness of Appendix B (RecordSchedule,
//     Measure*).
//
// The deeper substrates (custom schedulers, raw chains, the balls-
// into-bins game) live in the internal packages and are re-exported
// here as aliases where they are part of the supported API.
package pwf

import (
	"pwf/internal/chains"
	"pwf/internal/machine"
	"pwf/internal/markov"
	"pwf/internal/native"
	"pwf/internal/rng"
	"pwf/internal/sched"
	"pwf/internal/scu"
	"pwf/internal/shmem"
	"pwf/internal/sweep"
)

// Re-exported core types. These aliases are the supported surface of
// the underlying packages; their methods are documented there.
type (
	// Sim is a discrete-time simulation of n processes under a
	// scheduler.
	Sim = machine.Sim
	// Process is one simulated algorithm instance; every Step is one
	// shared-memory operation.
	Process = machine.Process
	// Memory is the simulated array of atomic registers.
	Memory = shmem.Memory
	// Scheduler picks the process to step at each time unit
	// (Definition 1).
	Scheduler = sched.Scheduler
	// Chain is a finite Markov chain.
	Chain = markov.Chain
	// ChainAnalysis bundles a chain with its success structure and
	// latency accessors.
	ChainAnalysis = chains.Analysis
	// LiftingReport carries the numerical residuals of a lifting
	// verification.
	LiftingReport = markov.LiftingReport
	// NativeSchedule is a recovered real-scheduler interleaving.
	NativeSchedule = native.Schedule
	// RateResult is a native completion-rate measurement.
	RateResult = native.RateResult
)

// NewUniformScheduler returns the paper's uniform stochastic
// scheduler over n processes, seeded deterministically.
func NewUniformScheduler(n int, seed uint64) (*sched.Uniform, error) {
	return sched.NewUniform(n, rng.New(seed))
}

// NewStickyScheduler returns a Markov-modulated scheduler that
// reschedules the previous process with probability rho (still
// stochastic for rho < 1).
func NewStickyScheduler(n int, rho float64, seed uint64) (*sched.Sticky, error) {
	return sched.NewSticky(n, rho, rng.New(seed))
}

// NewRoundRobinScheduler returns the deterministic fair baseline.
func NewRoundRobinScheduler(n int) (*sched.RoundRobin, error) {
	return sched.NewRoundRobin(n)
}

// NewMemory allocates a simulated shared memory with the given number
// of registers. Needed explicitly for objects that require
// initialisation before the first step (Queue, WFUniversal).
func NewMemory(size int) (*Memory, error) { return shmem.New(size) }

// NewSim wires processes, a scheduler and a fresh memory of the given
// size into a simulation.
func NewSim(memSize int, procs []Process, s Scheduler) (*Sim, error) {
	mem, err := shmem.New(memSize)
	if err != nil {
		return nil, err
	}
	return machine.New(mem, procs, s)
}

// NewSimOn wires processes and a scheduler onto an existing memory —
// use with NewMemory when the object needs an Init call first.
func NewSimOn(mem *Memory, procs []Process, s Scheduler) (*Sim, error) {
	return machine.New(mem, procs, s)
}

// CounterSpec returns the fetch-and-add sequential specification.
func CounterSpec() SequentialObject { return scu.CounterObject{} }

// MaxRegisterSpec returns the max-register sequential specification.
func MaxRegisterSpec() SequentialObject { return scu.MaxObject{} }

// NewSCUProcesses builds n processes executing Algorithm 2 with
// parameters (q, s) on a fresh object at register 0; the memory must
// have at least SCUMemSize(s) registers.
func NewSCUProcesses(n, q, s int) ([]Process, error) {
	return scu.NewSCUGroup(n, q, s, 0)
}

// SCUMemSize returns the number of registers an SCU(q, s) object
// needs.
func SCUMemSize(s int) int { return scu.SCULayout(s) }

// NewFetchIncProcesses builds n processes executing the augmented-CAS
// fetch-and-increment counter (Algorithm 5) at register 0; the memory
// needs FetchIncMemSize registers.
func NewFetchIncProcesses(n int) ([]Process, error) {
	return scu.NewFetchIncGroup(n, 0)
}

// FetchIncMemSize is the register footprint of the counter.
const FetchIncMemSize = scu.FetchIncLayout

// NewUnboundedProcesses builds n processes executing Algorithm 1, the
// unbounded lock-free algorithm of Lemma 2. waitFactor 0 selects the
// paper's n². The memory needs UnboundedMemSize registers.
func NewUnboundedProcesses(n int, waitFactor int64) ([]Process, error) {
	return scu.NewUnboundedGroup(n, 0, waitFactor)
}

// UnboundedMemSize is the register footprint of Algorithm 1.
const UnboundedMemSize = scu.UnboundedLayout

// Latencies aggregates the measurements of one simulation run: the
// system latency W, the mean individual latency W_i, the completion
// rate, Jain's fairness index, and the completion count.
type Latencies = sweep.Latencies

// ExactSCUSystemLatency returns the exact system latency W of
// SCU(0, 1) with n processes, from the stationary distribution of the
// Section 6.1.1 system chain. Theorem 5 bounds it by O(√n). The chain
// is memoized process-wide: repeated calls for the same n are free.
func ExactSCUSystemLatency(n int) (float64, error) {
	sys, err := sweep.DefaultCache.SCUSystem(n)
	if err != nil {
		return 0, err
	}
	return sys.SystemLatency()
}

// ExactFetchIncLatency returns the exact system latency W of the
// fetch-and-increment counter with n processes (Lemma 12: W ≤ 2√n).
// The chain is memoized process-wide.
func ExactFetchIncLatency(n int) (float64, error) {
	glob, err := sweep.DefaultCache.FetchIncGlobal(n)
	if err != nil {
		return 0, err
	}
	return glob.SystemLatency()
}

// VerifySCULifting builds the individual and system chains of
// SCU(0, 1) for n processes (n ≤ 8) and verifies that the former
// lifts onto the latter (Lemma 5), returning the numerical report.
// Both chains come from the process-wide memoization cache.
func VerifySCULifting(n int) (*LiftingReport, error) {
	ind, lift, err := sweep.DefaultCache.SCUIndividual(n)
	if err != nil {
		return nil, err
	}
	sys, err := sweep.DefaultCache.SCUSystem(n)
	if err != nil {
		return nil, err
	}
	return markov.VerifyLifting(ind.Chain, sys.Chain, lift)
}

// NewReplayScheduler drives a simulation with a pre-recorded schedule
// trace — typically NativeSchedule.Order() — closing the loop between
// the model and the real machine. loop controls wrap-around.
func NewReplayScheduler(n int, trace []int32, loop bool) (*sched.Replay, error) {
	return sched.NewReplay(n, trace, loop)
}

// NewPhasedScheduler builds a time-varying stochastic scheduler that
// cycles through weighted phases (Definition 1 with Π depending on τ).
func NewPhasedScheduler(n int, phases []sched.Phase, seed uint64) (*sched.Phased, error) {
	return sched.NewPhased(n, phases, rng.New(seed))
}

// SchedulerPhase is one segment of a phased schedule.
type SchedulerPhase = sched.Phase

// SequentialObject is a deterministic sequential specification that
// the universal constructions make concurrent.
type SequentialObject = scu.Object

// NewLockFreeObject wraps obj in the lock-free (SCU) universal
// construction for n processes; the returned object occupies
// LockFreeObjectMemSize registers at register 0.
func NewLockFreeObject(obj SequentialObject, n int) (*scu.LFUniversal, error) {
	return scu.NewLFUniversal(obj, n, 0)
}

// LockFreeObjectMemSize is the register footprint of the lock-free
// universal construction.
const LockFreeObjectMemSize = scu.LFUniversalLayout

// NewWaitFreeObject wraps obj in the wait-free (announce + helping)
// universal construction for n processes with poolSize node slots per
// process. Call Init on the memory before simulating; the footprint
// is WaitFreeObjectMemSize(n, poolSize).
func NewWaitFreeObject(obj SequentialObject, n, poolSize int) (*scu.WFUniversal, error) {
	return scu.NewWFUniversal(obj, n, poolSize, 0)
}

// WaitFreeObjectMemSize is the register footprint of the wait-free
// universal construction.
func WaitFreeObjectMemSize(n, poolSize int) int {
	return scu.WFUniversalLayout(n, poolSize)
}

// RecordSchedule records a real-scheduler interleaving of the given
// number of worker goroutines using atomic ticketing (Appendix A.2).
func RecordSchedule(workers, opsPerWorker int) (*NativeSchedule, error) {
	return native.RecordSchedule(workers, opsPerWorker)
}

// MeasureCounterRate measures the native CAS-loop counter's
// completion rate (Figure 5) with the given workers.
func MeasureCounterRate(workers, opsPerWorker int) (RateResult, error) {
	return native.MeasureCASCounterRate(workers, opsPerWorker)
}
