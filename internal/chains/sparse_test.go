package chains

import (
	"errors"
	"math"
	"testing"
)

func TestSparseValidation(t *testing.T) {
	if _, err := SCUSystemLatencyLarge(0, 1e-10, 1000); !errors.Is(err, ErrBadN) {
		t.Errorf("n=0: %v", err)
	}
	if _, err := SCUSystemLatencyLarge(4, 0, 1000); err == nil {
		t.Error("tol=0: nil error")
	}
	if _, err := SCUSystemLatencyLarge(4, 1e-10, 0); err == nil {
		t.Error("maxIter=0: nil error")
	}
	if _, err := SCUSystemLatencyLarge(4, 1e-30, 3); !errors.Is(err, ErrNoSparseConvergence) {
		t.Errorf("tiny budget: %v", err)
	}
}

func TestSparseMatchesDenseSolve(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		dense, _, err := SCUSystem(n)
		if err != nil {
			t.Fatal(err)
		}
		wDense, err := dense.SystemLatency()
		if err != nil {
			t.Fatal(err)
		}
		wSparse, err := SCUSystemLatencyLarge(n, 1e-12, 5000000)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(wSparse-wDense) / wDense; rel > 1e-6 {
			t.Fatalf("n=%d: sparse %v vs dense %v (rel %v)", n, wSparse, wDense, rel)
		}
	}
}

func TestSparseLargeNSqrtScaling(t *testing.T) {
	// The point of the sparse solver: exact W far beyond the dense
	// cap, confirming the √n scaling with exact values.
	w128, err := SCUSystemLatencyLarge(128, 1e-10, 5000000)
	if err != nil {
		t.Fatal(err)
	}
	w512, err := SCUSystemLatencyLarge(512, 1e-10, 5000000)
	if err != nil {
		t.Fatal(err)
	}
	slope := math.Log(w512/w128) / math.Log(4)
	if math.Abs(slope-0.5) > 0.05 {
		t.Fatalf("exact log-log slope over n=128..512 is %v, want ~0.5 (W: %v, %v)",
			slope, w128, w512)
	}
	for _, tc := range []struct {
		n int
		w float64
	}{{128, w128}, {512, w512}} {
		ratio := tc.w / math.Sqrt(float64(tc.n))
		if ratio < 1 || ratio > 3 {
			t.Fatalf("n=%d: W/√n = %v outside [1, 3]", tc.n, ratio)
		}
	}
}
