package chains

import (
	"math"
	"testing"
	"testing/quick"
)

// Property-based tests across the chain constructors.

func TestQuickSCUSystemWellFormed(t *testing.T) {
	// For any small n: the chain is irreducible, the stationary
	// distribution sums to 1, and the success rate lies in (0, 1].
	f := func(nRaw uint8) bool {
		n := int(nRaw%12) + 1
		a, _, err := SCUSystem(n)
		if err != nil {
			return false
		}
		if !a.Chain.Irreducible() {
			return false
		}
		pi, err := a.Stationary()
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range pi {
			if v < 0 {
				return false
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		mu, err := a.SuccessRate()
		return err == nil && mu > 0 && mu <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFetchIncWBelow2SqrtN(t *testing.T) {
	// Lemma 12 as a property over arbitrary n in range.
	f := func(nRaw uint8) bool {
		n := int(nRaw%60) + 1
		a, err := FetchIncGlobal(n)
		if err != nil {
			return false
		}
		w, err := a.SystemLatency()
		if err != nil {
			return false
		}
		return w <= 2*math.Sqrt(float64(n))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRamanujanQBracketsAsymptote(t *testing.T) {
	// Q(n) sits within [asymptote - 1, asymptote] for all n >= 1:
	// Q(n) = sqrt(pi n / 2) - 1/3 + O(1/sqrt(n)).
	f := func(nRaw uint16) bool {
		n := int(nRaw%2000) + 1
		q, err := RamanujanQ(n)
		if err != nil {
			return false
		}
		asym := RamanujanQAsymptote(n)
		return q <= asym && q >= asym-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHittingZMonotone(t *testing.T) {
	// Z is increasing in i and bounded by Q(n).
	f := func(nRaw uint8) bool {
		n := int(nRaw%200) + 2
		z, err := FetchIncHittingZ(n)
		if err != nil {
			return false
		}
		for i := 1; i < n; i++ {
			if z[i] < z[i-1] {
				return false
			}
		}
		q, err := RamanujanQ(n)
		if err != nil {
			return false
		}
		return math.Abs(z[n-1]-q) < 1e-9*q+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickParallelLatencyIsQ(t *testing.T) {
	// Lemma 11 as a property over random small (n, q).
	f := func(nRaw, qRaw uint8) bool {
		n := int(nRaw%4) + 1
		q := int(qRaw%4) + 1
		sys, _, err := ParallelSystem(n, q)
		if err != nil {
			return false
		}
		w, err := sys.SystemLatency()
		if err != nil {
			return false
		}
		return math.Abs(w-float64(q)) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSCUQSSoloExact(t *testing.T) {
	// Solo latency is exactly q + s + 1 for any (q, s) in range.
	f := func(qRaw, sRaw uint8) bool {
		q := int(qRaw % 6)
		s := int(sRaw%4) + 1
		a, err := SCUSystemQS(1, q, s)
		if err != nil {
			return false
		}
		w, err := a.SystemLatency()
		if err != nil {
			return false
		}
		return math.Abs(w-float64(q+s+1)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
