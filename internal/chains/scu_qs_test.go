package chains

import (
	"errors"
	"math"
	"testing"

	"pwf/internal/machine"
	"pwf/internal/rng"
	"pwf/internal/sched"
	"pwf/internal/scu"
	"pwf/internal/shmem"
)

func TestSCUSystemQSValidation(t *testing.T) {
	if _, err := SCUSystemQS(0, 0, 1); !errors.Is(err, ErrBadN) {
		t.Errorf("n=0: %v", err)
	}
	if _, err := SCUSystemQS(2, -1, 1); !errors.Is(err, ErrBadParams) {
		t.Errorf("q=-1: %v", err)
	}
	if _, err := SCUSystemQS(2, 0, 0); !errors.Is(err, ErrBadParams) {
		t.Errorf("s=0: %v", err)
	}
	if _, err := SCUSystemQS(100, 10, 5); !errors.Is(err, ErrBadN) {
		t.Errorf("huge state space: %v", err)
	}
}

func TestSCUSystemQSReducesToGeneral(t *testing.T) {
	for _, tc := range []struct{ n, s int }{{3, 1}, {4, 1}, {3, 2}, {2, 3}} {
		qs, err := SCUSystemQS(tc.n, 0, tc.s)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := SCUSystemGeneral(tc.n, tc.s)
		if err != nil {
			t.Fatal(err)
		}
		wQS, err := qs.SystemLatency()
		if err != nil {
			t.Fatal(err)
		}
		wGen, err := gen.SystemLatency()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(wQS-wGen) > 1e-9 {
			t.Fatalf("n=%d s=%d: QS %v != general %v", tc.n, tc.s, wQS, wGen)
		}
	}
}

func TestSCUSystemQSSolo(t *testing.T) {
	// Solo process: every operation takes exactly q + s + 1 steps.
	for _, tc := range []struct{ q, s int }{{0, 1}, {2, 1}, {3, 2}, {1, 3}} {
		a, err := SCUSystemQS(1, tc.q, tc.s)
		if err != nil {
			t.Fatal(err)
		}
		w, err := a.SystemLatency()
		if err != nil {
			t.Fatal(err)
		}
		want := float64(tc.q + tc.s + 1)
		if math.Abs(w-want) > 1e-9 {
			t.Fatalf("q=%d s=%d: solo W = %v, want %v", tc.q, tc.s, w, want)
		}
	}
}

func TestSCUSystemQSMatchesSimulation(t *testing.T) {
	for _, tc := range []struct{ n, q, s int }{{4, 2, 1}, {6, 4, 1}, {4, 1, 2}} {
		exact, err := SCUSystemQS(tc.n, tc.q, tc.s)
		if err != nil {
			t.Fatal(err)
		}
		w, err := exact.SystemLatency()
		if err != nil {
			t.Fatal(err)
		}

		mem, err := shmem.New(scu.SCULayout(tc.s))
		if err != nil {
			t.Fatal(err)
		}
		procs, err := scu.NewSCUGroup(tc.n, tc.q, tc.s, 0)
		if err != nil {
			t.Fatal(err)
		}
		u, err := sched.NewUniform(tc.n, rng.New(uint64(1000+tc.n*37+tc.q*7+tc.s)))
		if err != nil {
			t.Fatal(err)
		}
		sim, err := machine.New(mem, procs, u)
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(50000); err != nil {
			t.Fatal(err)
		}
		sim.ResetMetrics()
		if err := sim.Run(1000000); err != nil {
			t.Fatal(err)
		}
		got, err := sim.SystemLatency()
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(got-w) / w; rel > 0.02 {
			t.Fatalf("n=%d q=%d s=%d: sim %v vs exact %v (rel %v)", tc.n, tc.q, tc.s, got, w, rel)
		}
	}
}

func TestSCUSystemQSPreambleAddsQ(t *testing.T) {
	// Theorem 4 composition: the preamble contributes ~q steps of
	// fully parallel work: W(q, s) should be close to q + W(0, s)
	// for moderate n (exactly q in the limit; allow slack because the
	// preamble also relieves contention on the loop).
	const n = 6
	base, err := SCUSystemQS(n, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	w0, err := base.SystemLatency()
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []int{1, 2, 4} {
		a, err := SCUSystemQS(n, q, 1)
		if err != nil {
			t.Fatal(err)
		}
		w, err := a.SystemLatency()
		if err != nil {
			t.Fatal(err)
		}
		if w < w0 {
			t.Fatalf("q=%d: W %v below the q=0 latency %v", q, w, w0)
		}
		if w > w0+float64(q)+1 {
			t.Fatalf("q=%d: W %v exceeds W0 + q + 1 = %v", q, w, w0+float64(q)+1)
		}
	}
}

func TestSCUSystemQSMonotoneInQ(t *testing.T) {
	const n = 4
	prev := 0.0
	for q := 0; q <= 5; q++ {
		a, err := SCUSystemQS(n, q, 1)
		if err != nil {
			t.Fatal(err)
		}
		w, err := a.SystemLatency()
		if err != nil {
			t.Fatal(err)
		}
		if w < prev {
			t.Fatalf("q=%d: W %v decreased from %v", q, w, prev)
		}
		prev = w
	}
}
