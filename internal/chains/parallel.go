package chains

import (
	"fmt"
	"strconv"

	"pwf/internal/markov"
)

// maxParallelStates caps the chain sizes for the parallel-code chains
// of Section 6.2 (M_I has q^n states; M_S has C(n+q-1, q-1)).
const maxParallelStates = 20000

// ParallelIndividual builds the individual chain M_I of Section 6.2:
// states are counter vectors (C_1, ..., C_n) with C_i in {0, ..., q-1};
// a step picks a process uniformly and advances its counter mod q. A
// process completes when its counter wraps to 0. It returns the
// Analysis (with per-process success structure) and the lifting map
// onto ParallelSystem(n, q).
func ParallelIndividual(n, q int) (*Analysis, []int, error) {
	if n < 1 || q < 1 {
		return nil, nil, fmt.Errorf("%w: n=%d q=%d", ErrBadParams, n, q)
	}
	m := 1
	for i := 0; i < n; i++ {
		m *= q
		if m > maxParallelStates {
			return nil, nil, fmt.Errorf("%w: q^n exceeds %d states", ErrBadN, maxParallelStates)
		}
	}

	_, sysStates, err := ParallelSystem(n, q)
	if err != nil {
		return nil, nil, err
	}
	sysIndex := make(map[string]int, len(sysStates))
	for i, st := range sysStates {
		sysIndex[compKey(st)] = i
	}

	p := make([][]float64, m)
	success := make([]float64, m)
	procSuccess := make([][]float64, m)
	lift := make([]int, m)
	fn := float64(n)
	digits := make([]int, n)
	for code := 0; code < m; code++ {
		p[code] = make([]float64, m)
		procSuccess[code] = make([]float64, n)

		c := code
		counts := make([]int, q)
		for i := 0; i < n; i++ {
			digits[i] = c % q
			c /= q
			counts[digits[i]]++
		}
		idx, ok := sysIndex[compKey(counts)]
		if !ok {
			return nil, nil, fmt.Errorf("chains: parallel state maps to missing composition %v", counts)
		}
		lift[code] = idx

		pow := 1
		for pid := 0; pid < n; pid++ {
			d := digits[pid]
			nd := (d + 1) % q
			next := code + (nd-d)*pow
			p[code][next] += 1 / fn
			if nd == 0 {
				// Counter wrapped: the operation completed.
				success[code] += 1 / fn
				procSuccess[code][pid] = 1 / fn
			}
			pow *= q
		}
	}

	chain, err := markov.New(p)
	if err != nil {
		return nil, nil, fmt.Errorf("parallel individual chain: %w", err)
	}
	return &Analysis{Chain: chain, Success: success, ProcSuccess: procSuccess}, lift, nil
}

// ParallelSystem builds the system chain M_S of Section 6.2: states
// are occupancy vectors (v_0, ..., v_{q-1}) with Σ v_j = n, where v_j
// counts the processes whose step counter is j. It returns the
// Analysis and the state list.
func ParallelSystem(n, q int) (*Analysis, [][]int, error) {
	if n < 1 || q < 1 {
		return nil, nil, fmt.Errorf("%w: n=%d q=%d", ErrBadParams, n, q)
	}
	states := compositions(n, q)
	if len(states) > maxParallelStates {
		return nil, nil, fmt.Errorf("%w: %d compositions exceed %d", ErrBadN, len(states), maxParallelStates)
	}
	index := make(map[string]int, len(states))
	for i, st := range states {
		index[compKey(st)] = i
	}

	m := len(states)
	p := make([][]float64, m)
	success := make([]float64, m)
	fn := float64(n)
	for i, st := range states {
		p[i] = make([]float64, m)
		for j := 0; j < q; j++ {
			if st[j] == 0 {
				continue
			}
			next := make([]int, q)
			copy(next, st)
			next[j]--
			next[(j+1)%q]++
			k, ok := index[compKey(next)]
			if !ok {
				return nil, nil, fmt.Errorf("chains: missing composition %v", next)
			}
			prob := float64(st[j]) / fn
			p[i][k] += prob
			if (j+1)%q == 0 {
				success[i] += prob
			}
		}
	}

	chain, err := markov.New(p)
	if err != nil {
		return nil, nil, fmt.Errorf("parallel system chain: %w", err)
	}
	return &Analysis{Chain: chain, Success: success}, states, nil
}

// compositions enumerates all length-q non-negative integer vectors
// summing to n, in lexicographic order.
func compositions(n, q int) [][]int {
	var out [][]int
	cur := make([]int, q)
	var rec func(pos, left int)
	rec = func(pos, left int) {
		if pos == q-1 {
			cur[pos] = left
			st := make([]int, q)
			copy(st, cur)
			out = append(out, st)
			return
		}
		for v := 0; v <= left; v++ {
			cur[pos] = v
			rec(pos+1, left-v)
		}
	}
	rec(0, n)
	return out
}

// compKey renders an occupancy vector as a map key.
func compKey(v []int) string {
	b := make([]byte, 0, len(v)*4)
	for _, x := range v {
		b = strconv.AppendInt(b, int64(x), 10)
		b = append(b, ',')
	}
	return string(b)
}
