// Package chains builds the paper's specific Markov chains exactly,
// for small process counts:
//
//   - the SCU(0,1) scan-validate chains of Section 6.1.1: the
//     individual chain over the 3^n − 1 extended-local-state vectors
//     and the system chain over states (a, b);
//   - the parallel-code chains M_I and M_S of Section 6.2;
//   - the fetch-and-increment chains of Section 7.1: the individual
//     chain over the 2^n − 1 non-empty "who holds the current value"
//     subsets and the global chain over v_1 .. v_n.
//
// Each constructor also returns the lifting map onto its system/global
// chain, so markov.VerifyLifting can check the paper's Lemmas 5, 10
// and 13 numerically, and a per-state success probability from which
// exact system and individual latencies follow.
//
// A note on ergodicity: the SCU and parallel chains as defined in the
// paper change the number of pending CAS/steps by exactly one per
// transition, so they are periodic with period 2 (and q,
// respectively) — irreducible but not aperiodic. All quantities the
// paper derives (stationary distribution, return times, latencies via
// Theorem 1, liftings) only require irreducibility, so this does not
// affect any result; it does mean StationarySolve must be used rather
// than plain power iteration. The fetch-and-increment chains have a
// self-loop at the winning state and are genuinely ergodic.
package chains

import (
	"errors"
	"fmt"

	"pwf/internal/markov"
)

// Package errors.
var (
	ErrBadN      = errors.New("chains: process count out of supported range")
	ErrBadParams = errors.New("chains: invalid parameters")
)

// Analysis bundles a chain with the success structure needed to read
// latencies off its stationary distribution.
type Analysis struct {
	// Chain is the transition structure.
	Chain *markov.Chain
	// Success[i] is the probability that a transition taken from
	// state i completes some operation.
	Success []float64
	// ProcSuccess[i][p], when non-nil, is the probability that a
	// transition from state i completes an operation *by process p*
	// (only individual chains carry this).
	ProcSuccess [][]float64

	stationary []float64
}

// Stationary returns (and caches) the chain's stationary distribution
// computed by direct linear solve.
func (a *Analysis) Stationary() ([]float64, error) {
	if a.stationary == nil {
		pi, err := a.Chain.StationarySolve()
		if err != nil {
			return nil, err
		}
		a.stationary = pi
	}
	out := make([]float64, len(a.stationary))
	copy(out, a.stationary)
	return out, nil
}

// SuccessRate returns μ, the stationary probability that a system step
// completes some operation. The system latency is W = 1/μ.
func (a *Analysis) SuccessRate() (float64, error) {
	pi, err := a.Stationary()
	if err != nil {
		return 0, err
	}
	if len(a.Success) != len(pi) {
		return 0, fmt.Errorf("chains: success vector has %d entries for %d states",
			len(a.Success), len(pi))
	}
	var mu float64
	for i, p := range pi {
		mu += p * a.Success[i]
	}
	return mu, nil
}

// SystemLatency returns W = 1/μ, the expected number of system steps
// between two completions in stationarity.
func (a *Analysis) SystemLatency() (float64, error) {
	mu, err := a.SuccessRate()
	if err != nil {
		return 0, err
	}
	if mu <= 0 {
		return 0, errors.New("chains: zero stationary success rate")
	}
	return 1 / mu, nil
}

// IndividualLatency returns W_p = 1/η_p for process p, where η_p is
// the stationary probability that a step is a completion by p. It
// requires ProcSuccess (individual chains only).
func (a *Analysis) IndividualLatency(p int) (float64, error) {
	if a.ProcSuccess == nil {
		return 0, errors.New("chains: no per-process success structure")
	}
	pi, err := a.Stationary()
	if err != nil {
		return 0, err
	}
	var eta float64
	for i, prob := range pi {
		row := a.ProcSuccess[i]
		if p < 0 || p >= len(row) {
			return 0, fmt.Errorf("chains: process %d out of range", p)
		}
		eta += prob * row[p]
	}
	if eta <= 0 {
		return 0, fmt.Errorf("chains: process %d has zero stationary success rate", p)
	}
	return 1 / eta, nil
}
