package chains

import (
	"fmt"

	"pwf/internal/markov"
)

// SCUSystemQS builds the system chain for the full class SCU(q, s):
// a preamble of q independent steps followed by the s-step
// scan-and-validate loop. It generalizes SCUSystemGeneral (which is
// the q = 0 case) and closes the loop on Theorem 4's O(q + s√n)
// bound: the exact latency of any member of the class, for small n.
//
// Extended local classes, in order:
//
//	Pre_1 .. Pre_q   preamble steps (unaffected by other processes)
//	Scan_1           first scan read (reads the decision register R)
//	ScanF_i, i=2..s  scan read i with a fresh snapshot
//	ScanS_i, i=2..s  scan read i with a stale snapshot
//	CASCur           about to CAS with the current value
//	CASOld           about to CAS with a stale value
//
// A winner restarts at Pre_1 (the next operation's preamble); a
// failed CAS restarts at Scan_1 only, matching Algorithm 2 (the
// preamble is not re-run on validation failure).
func SCUSystemQS(n, q, s int) (*Analysis, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadN, n)
	}
	if q < 0 || s < 1 {
		return nil, fmt.Errorf("%w: q=%d s=%d", ErrBadParams, q, s)
	}
	classes := q + 2*s + 1
	if est := estimateCompositions(n, classes); est > maxParallelStates {
		return nil, fmt.Errorf("%w: ~%d states exceed %d", ErrBadN, est, maxParallelStates)
	}

	// Class indices.
	pre := func(i int) int { return i - 1 }             // i in 1..q
	scan1 := q                                          //
	scanF := func(i int) int { return q + 1 + (i - 2) } // i in 2..s
	scanS := func(i int) int { return q + s + (i - 2) } // i in 2..s
	casCur := q + 2*s - 1                               //
	casOld := q + 2*s                                   //
	restart := scan1                                    // target after a win
	if q > 0 {
		restart = pre(1)
	}

	initial := make([]int, classes)
	initial[restart] = n

	index := map[string]int{compKey(initial): 0}
	states := [][]int{initial}
	type edge struct {
		from, to int
		prob     float64
		success  bool
	}
	var edges []edge
	fn := float64(n)

	intern := func(v []int) int {
		key := compKey(v)
		if idx, ok := index[key]; ok {
			return idx
		}
		idx := len(states)
		index[key] = idx
		cp := make([]int, classes)
		copy(cp, v)
		states = append(states, cp)
		return idx
	}

	for cur := 0; cur < len(states); cur++ {
		st := states[cur]
		for c := 0; c < classes; c++ {
			if st[c] == 0 {
				continue
			}
			next := make([]int, classes)
			copy(next, st)
			next[c]--
			success := false
			switch {
			case q > 0 && c <= pre(q):
				// Preamble step i -> i+1, or into the scan.
				if c == pre(q) {
					next[scan1]++
				} else {
					next[c+1]++
				}
			case c == scan1:
				if s == 1 {
					next[casCur]++
				} else {
					next[scanF(2)]++
				}
			case s > 1 && c >= scanF(2) && c <= scanF(s):
				i := c - q - 1 + 2
				if i == s {
					next[casCur]++
				} else {
					next[scanF(i+1)]++
				}
			case s > 1 && c >= scanS(2) && c <= scanS(s):
				i := c - q - s + 2
				if i == s {
					next[casOld]++
				} else {
					next[scanS(i+1)]++
				}
			case c == casCur:
				success = true
				next[restart]++
				for i := 2; i <= s; i++ {
					next[scanS(i)] += next[scanF(i)]
					next[scanF(i)] = 0
				}
				next[casOld] += next[casCur]
				next[casCur] = 0
			case c == casOld:
				next[scan1]++
			default:
				return nil, fmt.Errorf("chains: unmapped class %d (q=%d s=%d)", c, q, s)
			}
			edges = append(edges, edge{
				from:    cur,
				to:      intern(next),
				prob:    float64(st[c]) / fn,
				success: success,
			})
		}
	}

	m := len(states)
	p := make([][]float64, m)
	for i := range p {
		p[i] = make([]float64, m)
	}
	success := make([]float64, m)
	for _, e := range edges {
		p[e.from][e.to] += e.prob
		if e.success {
			success[e.from] += e.prob
		}
	}
	chain, err := markov.New(p)
	if err != nil {
		return nil, fmt.Errorf("scu(q,s) system chain: %w", err)
	}
	return &Analysis{Chain: chain, Success: success}, nil
}
