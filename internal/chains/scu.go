package chains

import (
	"fmt"

	"pwf/internal/markov"
)

// Extended local states of a process in the scan-validate loop
// (Section 6.1.1): about to read, about to CAS with a stale value, or
// about to CAS with the current value.
const (
	stateRead   = 0
	stateOldCAS = 1
	stateCCAS   = 2
)

// SCUSystemState is a state (a, b) of the system chain: a processes
// about to read, b processes about to CAS with a stale value, and
// n − a − b about to CAS with the current value.
type SCUSystemState struct {
	A int
	B int
}

// String implements fmt.Stringer.
func (s SCUSystemState) String() string { return fmt.Sprintf("(%d,%d)", s.A, s.B) }

// maxSCUSystemN caps the system-chain size (states grow as ~n²/2; the
// direct solve is cubic in states).
const maxSCUSystemN = 128

// SCUSystem builds the system chain of Section 6.1.1 for n processes
// executing SCU(0, 1). The returned states slice gives the (a, b)
// tuple of each chain state; the Analysis marks the success
// transitions (a step by a process holding the current value).
func SCUSystem(n int) (*Analysis, []SCUSystemState, error) {
	if n < 1 || n > maxSCUSystemN {
		return nil, nil, fmt.Errorf("%w: n=%d (1..%d)", ErrBadN, n, maxSCUSystemN)
	}
	// Enumerate states (a, b) with a + b <= n, excluding (0, n): the
	// state where every process CASes with a stale value cannot occur.
	var states []SCUSystemState
	index := make(map[SCUSystemState]int)
	for a := 0; a <= n; a++ {
		for b := 0; a+b <= n; b++ {
			if a == 0 && b == n {
				continue
			}
			st := SCUSystemState{A: a, B: b}
			index[st] = len(states)
			states = append(states, st)
		}
	}

	m := len(states)
	p := make([][]float64, m)
	success := make([]float64, m)
	fn := float64(n)
	for i, st := range states {
		p[i] = make([]float64, m)
		a, b := st.A, st.B
		c := n - a - b
		// A Read process steps: it has read the current value and is
		// now about to CAS with it.
		if a > 0 {
			j, ok := index[SCUSystemState{A: a - 1, B: b}]
			if !ok {
				return nil, nil, fmt.Errorf("chains: missing state (%d,%d)", a-1, b)
			}
			p[i][j] += float64(a) / fn
		}
		// A stale-CAS process steps: its CAS fails and it goes back to
		// reading.
		if b > 0 {
			j, ok := index[SCUSystemState{A: a + 1, B: b - 1}]
			if !ok {
				return nil, nil, fmt.Errorf("chains: missing state (%d,%d)", a+1, b-1)
			}
			p[i][j] += float64(b) / fn
		}
		// A current-CAS process steps: its CAS succeeds (a completion),
		// it returns to reading, and every other current-CAS process
		// becomes stale.
		if c > 0 {
			j, ok := index[SCUSystemState{A: a + 1, B: n - a - 1}]
			if !ok {
				return nil, nil, fmt.Errorf("chains: missing state (%d,%d)", a+1, n-a-1)
			}
			p[i][j] += float64(c) / fn
			success[i] = float64(c) / fn
		}
	}

	chain, err := markov.New(p)
	if err != nil {
		return nil, nil, fmt.Errorf("scu system chain: %w", err)
	}
	return &Analysis{Chain: chain, Success: success}, states, nil
}

// maxSCUIndividualN caps the individual chain at 3^8 − 1 = 6560
// states.
const maxSCUIndividualN = 8

// SCUIndividual builds the individual chain of Section 6.1.1 for n
// processes executing SCU(0, 1): one state per vector of extended
// local states in {Read, OldCAS, CCAS}^n, excluding the impossible
// all-OldCAS vector — 3^n − 1 states. It returns the Analysis (with
// per-process success structure) and the lifting map onto the system
// chain returned by SCUSystem(n): lift[x] is the system-state index
// of individual state x.
func SCUIndividual(n int) (*Analysis, []int, error) {
	if n < 1 || n > maxSCUIndividualN {
		return nil, nil, fmt.Errorf("%w: n=%d (1..%d)", ErrBadN, n, maxSCUIndividualN)
	}
	pow3 := 1
	for i := 0; i < n; i++ {
		pow3 *= 3
	}
	// The all-OldCAS vector has every base-3 digit equal to 1.
	excluded := 0
	for i := 0; i < n; i++ {
		excluded = excluded*3 + 1
	}
	// Compact indexing: skip the excluded code.
	codeToIdx := func(code int) int {
		if code < excluded {
			return code
		}
		return code - 1
	}

	m := pow3 - 1
	p := make([][]float64, m)
	success := make([]float64, m)
	procSuccess := make([][]float64, m)

	_, sysStates, err := SCUSystem(n)
	if err != nil {
		return nil, nil, err
	}
	sysIndex := make(map[SCUSystemState]int, len(sysStates))
	for i, st := range sysStates {
		sysIndex[st] = i
	}
	lift := make([]int, m)

	digits := make([]int, n)
	fn := float64(n)
	for code := 0; code < pow3; code++ {
		if code == excluded {
			continue
		}
		idx := codeToIdx(code)
		p[idx] = make([]float64, m)
		procSuccess[idx] = make([]float64, n)

		// Decode digits (process 0 is the least significant digit).
		c := code
		a, b := 0, 0
		for i := 0; i < n; i++ {
			digits[i] = c % 3
			c /= 3
			switch digits[i] {
			case stateRead:
				a++
			case stateOldCAS:
				b++
			}
		}
		sysIdx, ok := sysIndex[SCUSystemState{A: a, B: b}]
		if !ok {
			return nil, nil, fmt.Errorf("chains: individual state maps to missing (%d,%d)", a, b)
		}
		lift[idx] = sysIdx

		for pid := 0; pid < n; pid++ {
			next := code
			pow := 1
			for i := 0; i < pid; i++ {
				pow *= 3
			}
			switch digits[pid] {
			case stateRead:
				// Read → CCAS.
				next += (stateCCAS - stateRead) * pow
			case stateOldCAS:
				// Failed CAS → Read.
				next += (stateRead - stateOldCAS) * pow
			case stateCCAS:
				// Successful CAS: pid → Read; every other CCAS → OldCAS.
				next = 0
				mult := 1
				for i := 0; i < n; i++ {
					d := digits[i]
					switch {
					case i == pid:
						d = stateRead
					case d == stateCCAS:
						d = stateOldCAS
					}
					next += d * mult
					mult *= 3
				}
				success[idx] += 1 / fn
				procSuccess[idx][pid] = 1 / fn
			}
			if next == excluded {
				return nil, nil, fmt.Errorf("chains: transition reached all-OldCAS from code %d", code)
			}
			p[idx][codeToIdx(next)] += 1 / fn
		}
	}

	chain, err := markov.New(p)
	if err != nil {
		return nil, nil, fmt.Errorf("scu individual chain: %w", err)
	}
	return &Analysis{Chain: chain, Success: success, ProcSuccess: procSuccess}, lift, nil
}
