package chains

import (
	"fmt"

	"pwf/internal/markov"
)

// SCUSystemGeneral builds the system chain for SCU(0, s) with s scan
// steps (Corollary 1), generalizing SCUSystem beyond s = 1. The
// extended local state of a process must record not just its position
// in the scan but whether the snapshot it took of the decision
// register is already stale:
//
//	Scan_1          about to take the first scan read (reads R)
//	ScanF_i, i=2..s about to take scan read i, snapshot still fresh
//	ScanS_i, i=2..s about to take scan read i, snapshot already stale
//	CASCur          about to CAS with the current value of R
//	CASOld          about to CAS with a stale value
//
// A successful CAS by one process flips every fresh scanner to stale
// and every other CASCur to CASOld; a process still at Scan_1 is
// unaffected (it has not read R yet). The system chain tracks the
// occupancy vector over these 2s + 1 classes.
//
// For s = 1 the class set degenerates to {Scan_1, CASCur, CASOld} and
// the chain coincides with SCUSystem (tests verify this).
func SCUSystemGeneral(n, s int) (*Analysis, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadN, n)
	}
	if s < 1 {
		return nil, fmt.Errorf("%w: s=%d", ErrBadParams, s)
	}
	classes := 2*s + 1
	if est := estimateCompositions(n, classes); est > maxParallelStates {
		return nil, fmt.Errorf("%w: ~%d states exceed %d", ErrBadN, est, maxParallelStates)
	}

	// Class indices.
	const scan1 = 0
	scanF := func(i int) int { return 1 + (i - 2) }           // i in 2..s
	scanS := func(i int) int { return 1 + (s - 1) + (i - 2) } // i in 2..s
	casCur := 2*s - 1
	casOld := 2 * s

	// Enumerate states reachable from the initial all-Scan_1 state by
	// BFS; the full composition space contains unreachable states
	// (e.g. all-CASOld) that would break irreducibility.
	initial := make([]int, classes)
	initial[scan1] = n

	index := map[string]int{compKey(initial): 0}
	states := [][]int{initial}
	type edge struct {
		from, to int
		prob     float64
		success  bool
	}
	var edges []edge
	fn := float64(n)

	intern := func(v []int) int {
		key := compKey(v)
		if idx, ok := index[key]; ok {
			return idx
		}
		idx := len(states)
		index[key] = idx
		cp := make([]int, classes)
		copy(cp, v)
		states = append(states, cp)
		return idx
	}

	for cur := 0; cur < len(states); cur++ {
		st := states[cur]
		// A scheduled process belongs to class c with prob st[c]/n.
		for c := 0; c < classes; c++ {
			if st[c] == 0 {
				continue
			}
			next := make([]int, classes)
			copy(next, st)
			next[c]--
			success := false
			switch {
			case c == scan1:
				if s == 1 {
					next[casCur]++
				} else {
					next[scanF(2)]++
				}
			case c >= scanF(2) && s > 1 && c <= scanF(s):
				i := c - 1 + 2 // recover scan position
				if i == s {
					next[casCur]++
				} else {
					next[scanF(i+1)]++
				}
			case s > 1 && c >= scanS(2) && c <= scanS(s):
				i := c - (1 + (s - 1)) + 2
				if i == s {
					next[casOld]++
				} else {
					next[scanS(i+1)]++
				}
			case c == casCur:
				// Successful CAS: winner restarts at Scan_1; every
				// fresh scanner past its first read goes stale; every
				// other CASCur goes stale.
				success = true
				next[scan1]++
				for i := 2; i <= s; i++ {
					next[scanS(i)] += next[scanF(i)]
					next[scanF(i)] = 0
				}
				next[casOld] += next[casCur]
				next[casCur] = 0
			case c == casOld:
				// Failed CAS: restart the scan.
				next[scan1]++
			default:
				return nil, fmt.Errorf("chains: unmapped class %d (s=%d)", c, s)
			}
			edges = append(edges, edge{
				from:    cur,
				to:      intern(next),
				prob:    float64(st[c]) / fn,
				success: success,
			})
		}
	}

	m := len(states)
	p := make([][]float64, m)
	for i := range p {
		p[i] = make([]float64, m)
	}
	success := make([]float64, m)
	for _, e := range edges {
		p[e.from][e.to] += e.prob
		if e.success {
			success[e.from] += e.prob
		}
	}
	chain, err := markov.New(p)
	if err != nil {
		return nil, fmt.Errorf("scu general system chain: %w", err)
	}
	return &Analysis{Chain: chain, Success: success}, nil
}

// estimateCompositions returns C(n+k-1, k-1) saturating at a large
// bound, used only for the size guard.
func estimateCompositions(n, k int) int {
	// Compute the binomial with overflow saturation.
	const maxEst = 1 << 30
	result := 1
	for i := 1; i < k; i++ {
		result = result * (n + i) / i
		if result > maxEst {
			return maxEst
		}
	}
	return result
}
