package chains

import (
	"errors"
	"math"
	"testing"

	"pwf/internal/markov"
)

func TestFetchIncGlobalValidation(t *testing.T) {
	if _, err := FetchIncGlobal(0); !errors.Is(err, ErrBadN) {
		t.Errorf("n=0: %v", err)
	}
}

func TestFetchIncGlobalErgodic(t *testing.T) {
	// The winning state v_1 has a self-loop, so the global chain is
	// genuinely ergodic (Lemma 13).
	for n := 1; n <= 10; n++ {
		a, err := FetchIncGlobal(n)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Chain.Ergodic() {
			t.Fatalf("n=%d: global chain not ergodic", n)
		}
	}
}

func TestFetchIncGlobalSmallCases(t *testing.T) {
	// n=1: single state with a self-loop, every step wins: W = 1.
	a, err := FetchIncGlobal(1)
	if err != nil {
		t.Fatal(err)
	}
	w, err := a.SystemLatency()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-1) > 1e-12 {
		t.Fatalf("n=1: W = %v, want 1", w)
	}

	// n=2 by hand: states v1, v2 with
	// P(v1→v1) = 1/2, P(v1→v2) = 1/2, P(v2→v1) = 1.
	// π = [2/3, 1/3]; μ = (2/3)(1/2) + (1/3)(1) = 2/3; W = 3/2.
	a2, err := FetchIncGlobal(2)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := a2.SystemLatency()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w2-1.5) > 1e-10 {
		t.Fatalf("n=2: W = %v, want 1.5", w2)
	}
}

func TestFetchIncReturnTimeLemma12(t *testing.T) {
	// Lemma 12: the expected return time W of the winning state v_1
	// is at most 2√n. Also cross-check the return time computed from
	// hitting times against 1/π (Theorem 1).
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		a, err := FetchIncGlobal(n)
		if err != nil {
			t.Fatal(err)
		}
		ret, err := a.Chain.ReturnTime(0)
		if err != nil {
			t.Fatal(err)
		}
		if ret > 2*math.Sqrt(float64(n)) {
			t.Fatalf("n=%d: return time %v exceeds 2√n = %v", n, ret, 2*math.Sqrt(float64(n)))
		}
		pi, err := a.Stationary()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ret*pi[0]-1) > 1e-9 {
			t.Fatalf("n=%d: return time %v inconsistent with π[v1] = %v", n, ret, pi[0])
		}
	}
}

func TestFetchIncReturnTimeEqualsSystemLatency(t *testing.T) {
	// Every completion enters v_1, and every step from v_1 that wins
	// re-enters v_1: the system latency equals the expected return
	// time of v_1... verify the tight relationship W = E[T_{v1 v1}]
	// numerically (both count expected steps between successes).
	for _, n := range []int{2, 3, 5, 8} {
		a, err := FetchIncGlobal(n)
		if err != nil {
			t.Fatal(err)
		}
		w, err := a.SystemLatency()
		if err != nil {
			t.Fatal(err)
		}
		ret, err := a.Chain.ReturnTime(0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(w-ret) > 1e-9 {
			t.Fatalf("n=%d: W = %v but return time of v1 = %v", n, w, ret)
		}
	}
}

func TestFetchIncHittingZRecurrence(t *testing.T) {
	z, err := FetchIncHittingZ(4)
	if err != nil {
		t.Fatal(err)
	}
	if z[0] != 1 {
		t.Fatalf("Z(0) = %v, want 1", z[0])
	}
	for i := 1; i < len(z); i++ {
		want := float64(i)/4*z[i-1] + 1
		if math.Abs(z[i]-want) > 1e-12 {
			t.Fatalf("Z(%d) = %v, want %v", i, z[i], want)
		}
	}
	if _, err := FetchIncHittingZ(0); !errors.Is(err, ErrBadN) {
		t.Errorf("n=0: %v", err)
	}
}

func TestFetchIncZMatchesChainHittingTimes(t *testing.T) {
	// Z(i) is the hitting time of v_1 from the state with n - i
	// current processes, i.e. from chain state v_{n-i} (index n-i-1);
	// and Z(0) counts the step from v_n. Cross-check against the
	// chain's linear-solve hitting times: h[v_k] + ... careful: Z
	// counts the step taken, so Z(i) = 1·P(win) + (1 + Z(i-1))·P(lose)
	// which equals 1 + expected remaining; the chain hitting time
	// h[v_k → v_1] equals Z(n-k) exactly.
	const n = 6
	a, err := FetchIncGlobal(n)
	if err != nil {
		t.Fatal(err)
	}
	h, err := a.Chain.HittingTimes(0)
	if err != nil {
		t.Fatal(err)
	}
	z, err := FetchIncHittingZ(n)
	if err != nil {
		t.Fatal(err)
	}
	for k := 2; k <= n; k++ {
		// From v_k (index k-1), i = n - k stale processes "extra".
		if math.Abs(h[k-1]-z[n-k]) > 1e-9 {
			t.Fatalf("h[v_%d] = %v, Z(%d) = %v", k, h[k-1], n-k, z[n-k])
		}
	}
}

func TestFetchIncZAgainstRamanujanQ(t *testing.T) {
	// Z(n-1) = Q(n) exactly, and Q(n) → √(πn/2).
	for _, n := range []int{2, 5, 10, 50, 200, 1000} {
		z, err := FetchIncHittingZ(n)
		if err != nil {
			t.Fatal(err)
		}
		q, err := RamanujanQ(n)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(z[n-1]-q) > 1e-9*q {
			t.Fatalf("n=%d: Z(n-1) = %v, Q(n) = %v", n, z[n-1], q)
		}
		asym := RamanujanQAsymptote(n)
		if rel := math.Abs(q-asym) / asym; n >= 200 && rel > 0.05 {
			t.Fatalf("n=%d: Q = %v vs asymptote %v (rel %v)", n, q, asym, rel)
		}
	}
	if _, err := RamanujanQ(0); !errors.Is(err, ErrBadN) {
		t.Errorf("Q(0): %v", err)
	}
}

func TestFetchIncIndividualValidation(t *testing.T) {
	if _, _, err := FetchIncIndividual(0); !errors.Is(err, ErrBadN) {
		t.Errorf("n=0: %v", err)
	}
	if _, _, err := FetchIncIndividual(maxFetchIncIndividualN + 1); !errors.Is(err, ErrBadN) {
		t.Errorf("n too big: %v", err)
	}
}

func TestFetchIncIndividualStateCount(t *testing.T) {
	for n := 1; n <= 8; n++ {
		a, _, err := FetchIncIndividual(n)
		if err != nil {
			t.Fatal(err)
		}
		if a.Chain.N() != (1<<n)-1 {
			t.Fatalf("n=%d: %d states, want 2^n-1", n, a.Chain.N())
		}
		if !a.Chain.Ergodic() {
			t.Fatalf("n=%d: individual chain not ergodic", n)
		}
	}
}

func TestFetchIncLiftingLemma13(t *testing.T) {
	// Lemma 13: f(S) = v_{|S|} is a lifting from the individual chain
	// to the global chain.
	for n := 2; n <= 8; n++ {
		ind, lift, err := FetchIncIndividual(n)
		if err != nil {
			t.Fatal(err)
		}
		glob, err := FetchIncGlobal(n)
		if err != nil {
			t.Fatal(err)
		}
		report, err := markov.VerifyLifting(ind.Chain, glob.Chain, lift)
		if err != nil {
			t.Fatal(err)
		}
		if report.MaxFlowError > 1e-9 || report.MaxMarginalError > 1e-9 {
			t.Fatalf("n=%d: lifting errors flow=%v marginal=%v",
				n, report.MaxFlowError, report.MaxMarginalError)
		}
	}
}

func TestFetchIncIndividualFairnessLemma14(t *testing.T) {
	// Lemma 14: each winning state s_{p_i} has stationary mass
	// π(v_1)/n, and W_i = n·W.
	const n = 5
	ind, lift, err := FetchIncIndividual(n)
	if err != nil {
		t.Fatal(err)
	}
	glob, err := FetchIncGlobal(n)
	if err != nil {
		t.Fatal(err)
	}
	piInd, err := ind.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	piGlob, err := glob.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	// Singleton states: masks with one bit set.
	for pid := 0; pid < n; pid++ {
		mask := 1 << pid
		idx := mask - 1
		if lift[idx] != 0 {
			t.Fatalf("singleton {%d} lifts to %d, want v_1", pid, lift[idx])
		}
		want := piGlob[0] / float64(n)
		if math.Abs(piInd[idx]-want) > 1e-10 {
			t.Fatalf("π(s_{p%d}) = %v, want π(v1)/n = %v", pid, piInd[idx], want)
		}
	}
	w, err := glob.SystemLatency()
	if err != nil {
		t.Fatal(err)
	}
	for pid := 0; pid < n; pid++ {
		wi, err := ind.IndividualLatency(pid)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(wi-float64(n)*w) > 1e-7 {
			t.Fatalf("pid %d: W_i = %v, want n·W = %v", pid, wi, float64(n)*w)
		}
	}
}

func TestFetchIncCorollary3Scaling(t *testing.T) {
	// Corollary 3: W_i = O(n√n); equivalently W = O(√n). Check the
	// ratio W/√n is bounded across n.
	for _, n := range []int{4, 16, 64, 128} {
		a, err := FetchIncGlobal(n)
		if err != nil {
			t.Fatal(err)
		}
		w, err := a.SystemLatency()
		if err != nil {
			t.Fatal(err)
		}
		ratio := w / math.Sqrt(float64(n))
		if ratio > 2 || ratio < 0.5 {
			t.Fatalf("n=%d: W/√n = %v out of [0.5, 2]", n, ratio)
		}
	}
}
