package chains

import (
	"fmt"
	"math"

	"pwf/internal/markov"
)

// maxFetchIncIndividualN caps the fetch-and-increment individual chain
// at 2^12 − 1 = 4095 states.
const maxFetchIncIndividualN = 12

// FetchIncGlobal builds the global chain M_G of Section 7.1 for the
// augmented-CAS fetch-and-increment counter: state v_i (index i−1)
// means i processes hold the current value of the register. From v_i
// the chain moves to the winning state v_1 with probability i/n (a
// current process is scheduled and its CAS succeeds) and to v_{i+1}
// with probability 1 − i/n (a stale process is scheduled, fails its
// CAS, and learns the current value).
func FetchIncGlobal(n int) (*Analysis, error) {
	if n < 1 || n > maxSCUSystemN {
		return nil, fmt.Errorf("%w: n=%d (1..%d)", ErrBadN, n, maxSCUSystemN)
	}
	p := make([][]float64, n)
	success := make([]float64, n)
	fn := float64(n)
	for i := 1; i <= n; i++ {
		row := make([]float64, n)
		win := float64(i) / fn
		row[0] += win
		if i < n {
			row[i] += 1 - win
		}
		p[i-1] = row
		success[i-1] = win
	}
	chain, err := markov.New(p)
	if err != nil {
		return nil, fmt.Errorf("fetch-inc global chain: %w", err)
	}
	return &Analysis{Chain: chain, Success: success}, nil
}

// FetchIncIndividual builds the individual chain M_I of Section 7.1:
// one state per non-empty subset S of processes holding the current
// value (2^n − 1 states). A step by p ∈ S wins and yields {p}; a step
// by p ∉ S yields S ∪ {p}. It returns the Analysis (with per-process
// success structure) and the lifting map onto FetchIncGlobal(n):
// subset S maps to state v_{|S|}.
func FetchIncIndividual(n int) (*Analysis, []int, error) {
	if n < 1 || n > maxFetchIncIndividualN {
		return nil, nil, fmt.Errorf("%w: n=%d (1..%d)", ErrBadN, n, maxFetchIncIndividualN)
	}
	m := (1 << n) - 1 // subsets 1 .. 2^n − 1; index = mask − 1
	p := make([][]float64, m)
	success := make([]float64, m)
	procSuccess := make([][]float64, m)
	lift := make([]int, m)
	fn := float64(n)
	for mask := 1; mask <= m; mask++ {
		idx := mask - 1
		p[idx] = make([]float64, m)
		procSuccess[idx] = make([]float64, n)
		lift[idx] = popcount(mask) - 1
		for pid := 0; pid < n; pid++ {
			bit := 1 << pid
			var next int
			if mask&bit != 0 {
				// p holds the current value: it wins, everyone else
				// becomes stale.
				next = bit
				success[idx] += 1 / fn
				procSuccess[idx][pid] = 1 / fn
			} else {
				// p is stale: its CAS fails and it learns the value.
				next = mask | bit
			}
			p[idx][next-1] += 1 / fn
		}
	}
	chain, err := markov.New(p)
	if err != nil {
		return nil, nil, fmt.Errorf("fetch-inc individual chain: %w", err)
	}
	return &Analysis{Chain: chain, Success: success, ProcSuccess: procSuccess}, lift, nil
}

// FetchIncHittingZ computes the hitting-time sequence of Lemma 12:
// Z(i) is the expected number of steps for the global chain to reach
// the winning state v_1 from the state where n − i processes hold the
// current value, satisfying Z(0) = 1 and Z(i) = (i/n)·Z(i−1) + 1. The
// returned slice has n entries, Z(0) .. Z(n−1). Lemma 12 shows
// Z(n−1) ≤ 2√n.
func FetchIncHittingZ(n int) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadN, n)
	}
	z := make([]float64, n)
	z[0] = 1
	for i := 1; i < n; i++ {
		z[i] = float64(i)/float64(n)*z[i-1] + 1
	}
	return z, nil
}

// RamanujanQ computes Ramanujan's Q-function
// Q(n) = Σ_{k=1}^{n} n!/((n−k)!·n^k). Unfolding the Lemma 12
// recurrence shows Z(n−1) = Q(n) exactly (the remark after Lemma 12);
// its asymptotics are √(πn/2)·(1 + o(1)).
func RamanujanQ(n int) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("%w: n=%d", ErrBadN, n)
	}
	term := 1.0
	sum := 0.0
	for k := 1; k <= n; k++ {
		term *= float64(n-k+1) / float64(n)
		sum += term
	}
	return sum, nil
}

// RamanujanQAsymptote returns the leading-order asymptotic √(πn/2).
func RamanujanQAsymptote(n int) float64 {
	return math.Sqrt(math.Pi * float64(n) / 2)
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}
