package chains

import (
	"errors"
	"math"
	"testing"

	"pwf/internal/machine"
	"pwf/internal/rng"
	"pwf/internal/sched"
	"pwf/internal/scu"
	"pwf/internal/shmem"
)

func TestSCUSystemGeneralValidation(t *testing.T) {
	if _, err := SCUSystemGeneral(0, 1); !errors.Is(err, ErrBadN) {
		t.Errorf("n=0: %v", err)
	}
	if _, err := SCUSystemGeneral(2, 0); !errors.Is(err, ErrBadParams) {
		t.Errorf("s=0: %v", err)
	}
	if _, err := SCUSystemGeneral(200, 8); !errors.Is(err, ErrBadN) {
		t.Errorf("huge state space: %v", err)
	}
}

func TestSCUSystemGeneralMatchesSpecialCaseS1(t *testing.T) {
	// For s = 1 the general construction must agree with SCUSystem.
	for n := 1; n <= 10; n++ {
		gen, err := SCUSystemGeneral(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		spec, _, err := SCUSystem(n)
		if err != nil {
			t.Fatal(err)
		}
		wGen, err := gen.SystemLatency()
		if err != nil {
			t.Fatal(err)
		}
		wSpec, err := spec.SystemLatency()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(wGen-wSpec) > 1e-9 {
			t.Fatalf("n=%d: general W %v != special W %v", n, wGen, wSpec)
		}
	}
}

func TestSCUSystemGeneralReachableStatesOnly(t *testing.T) {
	// The BFS construction keeps the chain irreducible.
	for _, tc := range []struct{ n, s int }{{2, 2}, {3, 2}, {2, 3}, {4, 2}} {
		gen, err := SCUSystemGeneral(tc.n, tc.s)
		if err != nil {
			t.Fatal(err)
		}
		if !gen.Chain.Irreducible() {
			t.Fatalf("n=%d s=%d: chain not irreducible", tc.n, tc.s)
		}
	}
}

func TestSCUSystemGeneralSolo(t *testing.T) {
	// n=1: the solo process takes s scan reads plus one CAS per op.
	for s := 1; s <= 5; s++ {
		gen, err := SCUSystemGeneral(1, s)
		if err != nil {
			t.Fatal(err)
		}
		w, err := gen.SystemLatency()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(w-float64(s+1)) > 1e-9 {
			t.Fatalf("s=%d: solo W = %v, want %d", s, w, s+1)
		}
	}
}

func TestSCUSystemGeneralMatchesSimulation(t *testing.T) {
	// The exact chain must predict the simulated SCU(0, s) latency.
	for _, tc := range []struct{ n, s int }{{4, 2}, {8, 2}, {4, 3}} {
		gen, err := SCUSystemGeneral(tc.n, tc.s)
		if err != nil {
			t.Fatal(err)
		}
		w, err := gen.SystemLatency()
		if err != nil {
			t.Fatal(err)
		}

		mem, err := shmem.New(scu.SCULayout(tc.s))
		if err != nil {
			t.Fatal(err)
		}
		procs, err := scu.NewSCUGroup(tc.n, 0, tc.s, 0)
		if err != nil {
			t.Fatal(err)
		}
		u, err := sched.NewUniform(tc.n, rng.New(uint64(tc.n*100+tc.s)))
		if err != nil {
			t.Fatal(err)
		}
		sim, err := machine.New(mem, procs, u)
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(50000); err != nil {
			t.Fatal(err)
		}
		sim.ResetMetrics()
		if err := sim.Run(1000000); err != nil {
			t.Fatal(err)
		}
		got, err := sim.SystemLatency()
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(got-w) / w; rel > 0.02 {
			t.Fatalf("n=%d s=%d: sim W %v vs exact %v (rel %v)", tc.n, tc.s, got, w, rel)
		}
	}
}

func TestSCUSystemGeneralScalesWithS(t *testing.T) {
	// Corollary 1: W = O(s·√n); at fixed n, W grows at most linearly
	// in s and at least proportionally to s/2. n and s are kept small
	// because the state space (compositions of n into 2s+1 classes)
	// and the cubic solve grow quickly.
	const n = 6
	var prev float64
	for s := 1; s <= 3; s++ {
		gen, err := SCUSystemGeneral(n, s)
		if err != nil {
			t.Fatal(err)
		}
		w, err := gen.SystemLatency()
		if err != nil {
			t.Fatal(err)
		}
		if s > 1 {
			growth := w / prev
			if growth < 1.05 || growth > 2.5 {
				t.Fatalf("s=%d: W grew by factor %v from s-1", s, growth)
			}
		}
		prev = w
	}
}

func TestEstimateCompositions(t *testing.T) {
	if got := estimateCompositions(2, 2); got != 3 {
		t.Fatalf("C(3,1) = %d, want 3", got)
	}
	if got := estimateCompositions(4, 3); got != 15 {
		t.Fatalf("C(6,2) = %d, want 15", got)
	}
	if got := estimateCompositions(1000, 20); got != 1<<30 {
		t.Fatalf("saturation = %d", got)
	}
}
