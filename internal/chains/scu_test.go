package chains

import (
	"errors"
	"math"
	"testing"

	"pwf/internal/markov"
)

func TestSCUSystemValidation(t *testing.T) {
	if _, _, err := SCUSystem(0); !errors.Is(err, ErrBadN) {
		t.Errorf("n=0: %v", err)
	}
	if _, _, err := SCUSystem(maxSCUSystemN + 1); !errors.Is(err, ErrBadN) {
		t.Errorf("n too large: %v", err)
	}
}

func TestSCUSystemStateCount(t *testing.T) {
	// States (a, b) with a + b <= n, minus (0, n):
	// (n+1)(n+2)/2 - 1 states.
	for n := 1; n <= 10; n++ {
		_, states, err := SCUSystem(n)
		if err != nil {
			t.Fatal(err)
		}
		want := (n+1)*(n+2)/2 - 1
		if len(states) != want {
			t.Fatalf("n=%d: %d states, want %d", n, len(states), want)
		}
		for _, st := range states {
			if st.A == 0 && st.B == n {
				t.Fatalf("n=%d: excluded state (0,%d) present", n, n)
			}
		}
	}
}

func TestSCUSystemIrreducibleAndPeriodTwo(t *testing.T) {
	// The scan-validate chain alternates read-like and CAS-like
	// pending counts, so it is irreducible with period 2 (see the
	// package comment); stationary analysis is still valid.
	for n := 2; n <= 8; n++ {
		a, _, err := SCUSystem(n)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Chain.Irreducible() {
			t.Fatalf("n=%d: system chain not irreducible", n)
		}
		period, err := a.Chain.Period()
		if err != nil {
			t.Fatal(err)
		}
		if period != 2 {
			t.Fatalf("n=%d: period %d, want 2", n, period)
		}
	}
}

func TestSCUSystemSingleProcess(t *testing.T) {
	// n=1: states (0,0) and (1,0); the process alternates read and
	// successful CAS, so W = 2.
	a, _, err := SCUSystem(1)
	if err != nil {
		t.Fatal(err)
	}
	w, err := a.SystemLatency()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-2) > 1e-9 {
		t.Fatalf("W = %v, want 2", w)
	}
}

func TestSCUSystemLatencyGrowsAsSqrtN(t *testing.T) {
	// Theorem 5: W = O(√n). Fit W against n^p and check p ≈ 0.5.
	var (
		ns []float64
		ws []float64
	)
	for n := 4; n <= 64; n *= 2 {
		a, _, err := SCUSystem(n)
		if err != nil {
			t.Fatal(err)
		}
		w, err := a.SystemLatency()
		if err != nil {
			t.Fatal(err)
		}
		ns = append(ns, float64(n))
		ws = append(ws, w)
	}
	// Log-log slope between successive points should approach 1/2.
	last := len(ns) - 1
	slope := math.Log(ws[last]/ws[last-1]) / math.Log(ns[last]/ns[last-1])
	if math.Abs(slope-0.5) > 0.12 {
		t.Fatalf("tail log-log slope = %v, want ~0.5 (W values %v)", slope, ws)
	}
	// And the ratio W/√n should be bounded by a small constant.
	for i, w := range ws {
		ratio := w / math.Sqrt(ns[i])
		if ratio > 4 || ratio < 0.5 {
			t.Fatalf("n=%v: W/√n = %v out of [0.5, 4]", ns[i], ratio)
		}
	}
}

func TestSCUIndividualValidation(t *testing.T) {
	if _, _, err := SCUIndividual(0); !errors.Is(err, ErrBadN) {
		t.Errorf("n=0: %v", err)
	}
	if _, _, err := SCUIndividual(maxSCUIndividualN + 1); !errors.Is(err, ErrBadN) {
		t.Errorf("n too large: %v", err)
	}
}

func TestSCUIndividualStateCount(t *testing.T) {
	for n := 1; n <= 6; n++ {
		a, _, err := SCUIndividual(n)
		if err != nil {
			t.Fatal(err)
		}
		want := 1
		for i := 0; i < n; i++ {
			want *= 3
		}
		want--
		if a.Chain.N() != want {
			t.Fatalf("n=%d: %d states, want 3^n-1 = %d", n, a.Chain.N(), want)
		}
	}
}

func TestSCUIndividualIrreducible(t *testing.T) {
	for n := 2; n <= 5; n++ {
		a, _, err := SCUIndividual(n)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Chain.Irreducible() {
			t.Fatalf("n=%d: individual chain not irreducible", n)
		}
	}
}

func TestSCULiftingLemma5(t *testing.T) {
	// Lemma 5: the system chain is a lifting of the individual chain.
	for n := 2; n <= 5; n++ {
		ind, lift, err := SCUIndividual(n)
		if err != nil {
			t.Fatal(err)
		}
		sys, _, err := SCUSystem(n)
		if err != nil {
			t.Fatal(err)
		}
		report, err := markov.VerifyLifting(ind.Chain, sys.Chain, lift)
		if err != nil {
			t.Fatal(err)
		}
		if report.MaxFlowError > 1e-9 {
			t.Fatalf("n=%d: lifting flow error %v", n, report.MaxFlowError)
		}
		if report.MaxMarginalError > 1e-9 {
			t.Fatalf("n=%d: Lemma 1 marginal error %v", n, report.MaxMarginalError)
		}
	}
}

func TestSCUIndividualLatencyIsNTimesSystemLemma7(t *testing.T) {
	// Lemma 7: W_i = n · W for every process i.
	for n := 2; n <= 5; n++ {
		ind, _, err := SCUIndividual(n)
		if err != nil {
			t.Fatal(err)
		}
		sys, _, err := SCUSystem(n)
		if err != nil {
			t.Fatal(err)
		}
		w, err := sys.SystemLatency()
		if err != nil {
			t.Fatal(err)
		}
		wInd, err := ind.SystemLatency()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(w-wInd) > 1e-9 {
			t.Fatalf("n=%d: system latency differs between chains: %v vs %v", n, w, wInd)
		}
		for pid := 0; pid < n; pid++ {
			wi, err := ind.IndividualLatency(pid)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(wi-float64(n)*w) > 1e-6 {
				t.Fatalf("n=%d pid=%d: W_i = %v, want n·W = %v", n, pid, wi, float64(n)*w)
			}
		}
	}
}

func TestSCUIndividualSymmetryLemma6(t *testing.T) {
	// Lemma 6: states with the same (a, b) signature have equal
	// stationary probability.
	const n = 3
	ind, lift, err := SCUIndividual(n)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := ind.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	byClass := make(map[int][]float64)
	for x, cls := range lift {
		byClass[cls] = append(byClass[cls], pi[x])
	}
	for cls, vals := range byClass {
		for _, v := range vals {
			if math.Abs(v-vals[0]) > 1e-10 {
				t.Fatalf("class %d: asymmetric stationary masses %v", cls, vals)
			}
		}
	}
}

func TestSCUSystemSuccessRateMatchesTotalFlow(t *testing.T) {
	// μ computed from Success must equal the stationary inflow into
	// completions; sanity-check against a manual stationary pass.
	a, states, err := SCUSystem(4)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := a.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	var mu float64
	for i, st := range states {
		c := 4 - st.A - st.B
		mu += pi[i] * float64(c) / 4
	}
	got, err := a.SuccessRate()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-mu) > 1e-12 {
		t.Fatalf("SuccessRate = %v, manual = %v", got, mu)
	}
}
