package chains

import (
	"errors"
	"math"
	"testing"

	"pwf/internal/markov"
)

func TestParallelValidation(t *testing.T) {
	if _, _, err := ParallelSystem(0, 3); !errors.Is(err, ErrBadParams) {
		t.Errorf("n=0: %v", err)
	}
	if _, _, err := ParallelSystem(3, 0); !errors.Is(err, ErrBadParams) {
		t.Errorf("q=0: %v", err)
	}
	if _, _, err := ParallelIndividual(0, 3); !errors.Is(err, ErrBadParams) {
		t.Errorf("individual n=0: %v", err)
	}
	if _, _, err := ParallelIndividual(20, 10); !errors.Is(err, ErrBadN) {
		t.Errorf("too many states: %v", err)
	}
}

func TestParallelSystemStateCount(t *testing.T) {
	// Compositions of n into q parts: C(n+q-1, q-1).
	tests := []struct {
		n, q, want int
	}{
		{1, 1, 1},
		{3, 2, 4},
		{4, 3, 15},
		{5, 4, 56},
	}
	for _, tt := range tests {
		_, states, err := ParallelSystem(tt.n, tt.q)
		if err != nil {
			t.Fatal(err)
		}
		if len(states) != tt.want {
			t.Fatalf("n=%d q=%d: %d states, want %d", tt.n, tt.q, len(states), tt.want)
		}
	}
}

func TestParallelIndividualUniformStationary(t *testing.T) {
	// Section 6.2: M_I is doubly stochastic (in/out degree n with
	// uniform 1/n transitions), so its stationary distribution is
	// uniform.
	const (
		n = 3
		q = 3
	)
	ind, _, err := ParallelIndividual(n, q)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := ind.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / float64(len(pi))
	for i, v := range pi {
		if math.Abs(v-want) > 1e-10 {
			t.Fatalf("π[%d] = %v, want uniform %v", i, v, want)
		}
	}
}

func TestParallelLatenciesLemma11(t *testing.T) {
	// Lemma 11: W = q and W_i = n·q, exactly.
	for _, tt := range []struct{ n, q int }{
		{2, 2}, {3, 3}, {4, 2}, {2, 5}, {5, 2},
	} {
		ind, _, err := ParallelIndividual(tt.n, tt.q)
		if err != nil {
			t.Fatal(err)
		}
		sys, _, err := ParallelSystem(tt.n, tt.q)
		if err != nil {
			t.Fatal(err)
		}
		w, err := sys.SystemLatency()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(w-float64(tt.q)) > 1e-9 {
			t.Fatalf("n=%d q=%d: W = %v, want q", tt.n, tt.q, w)
		}
		for pid := 0; pid < tt.n; pid++ {
			wi, err := ind.IndividualLatency(pid)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(wi-float64(tt.n*tt.q)) > 1e-8 {
				t.Fatalf("n=%d q=%d pid=%d: W_i = %v, want n·q = %d",
					tt.n, tt.q, pid, wi, tt.n*tt.q)
			}
		}
	}
}

func TestParallelLiftingLemma10(t *testing.T) {
	// Lemma 10: f mapping counter vectors to occupancy vectors is a
	// lifting between M_I and M_S.
	for _, tt := range []struct{ n, q int }{
		{2, 2}, {3, 2}, {2, 3}, {3, 3},
	} {
		ind, lift, err := ParallelIndividual(tt.n, tt.q)
		if err != nil {
			t.Fatal(err)
		}
		sys, _, err := ParallelSystem(tt.n, tt.q)
		if err != nil {
			t.Fatal(err)
		}
		report, err := markov.VerifyLifting(ind.Chain, sys.Chain, lift)
		if err != nil {
			t.Fatal(err)
		}
		if report.MaxFlowError > 1e-9 || report.MaxMarginalError > 1e-9 {
			t.Fatalf("n=%d q=%d: lifting errors flow=%v marginal=%v",
				tt.n, tt.q, report.MaxFlowError, report.MaxMarginalError)
		}
	}
}

func TestParallelQOneDegenerate(t *testing.T) {
	// q=1: every step completes; W = 1, W_i = n.
	ind, _, err := ParallelIndividual(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	sys, _, err := ParallelSystem(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sys.SystemLatency()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-1) > 1e-12 {
		t.Fatalf("W = %v, want 1", w)
	}
	wi, err := ind.IndividualLatency(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wi-3) > 1e-12 {
		t.Fatalf("W_i = %v, want 3", wi)
	}
}

func TestCompositionsEnumeration(t *testing.T) {
	comps := compositions(2, 2)
	if len(comps) != 3 {
		t.Fatalf("compositions(2,2) has %d entries, want 3", len(comps))
	}
	seen := make(map[string]bool)
	for _, c := range comps {
		var sum int
		for _, v := range c {
			sum += v
		}
		if sum != 2 {
			t.Fatalf("composition %v does not sum to 2", c)
		}
		seen[compKey(c)] = true
	}
	if len(seen) != 3 {
		t.Fatal("duplicate compositions")
	}
}

func TestCompKeyDistinguishesMultiDigit(t *testing.T) {
	// Regression: keys must not collide for counts >= 10.
	a := compKey([]int{1, 23})
	b := compKey([]int{12, 3})
	if a == b {
		t.Fatalf("compKey collision: %q", a)
	}
}
