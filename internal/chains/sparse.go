package chains

import (
	"errors"
	"fmt"
	"math"
)

// Sparse stationary analysis of the SCU(0,1) system chain for large
// n. The dense solver is cubic in the ~n²/2 states, capping exact
// results near n = 64; the system chain has at most three successors
// per state, so a sparse fixed-point iteration reaches n in the
// hundreds.
//
// The chain is periodic (period 2), so plain power iteration
// oscillates; the iteration therefore uses the *lazy* chain
// (P + I)/2, which is aperiodic and has the same stationary
// distribution.

// ErrNoSparseConvergence is returned when the lazy iteration fails to
// reach the tolerance within its iteration budget.
var ErrNoSparseConvergence = errors.New("chains: sparse stationary iteration did not converge")

// sparseEntry is one transition.
type sparseEntry struct {
	to int32
	p  float64
}

// SCUSystemLatencyLarge computes the exact system latency W of
// SCU(0, 1) with n processes using the sparse lazy iteration, with
// stationarity tolerance tol (max-norm residual of πP − π) and an
// iteration budget.
func SCUSystemLatencyLarge(n int, tol float64, maxIter int) (float64, error) {
	if n < 1 || n > 2048 {
		return 0, fmt.Errorf("%w: n=%d (1..2048)", ErrBadN, n)
	}
	if tol <= 0 {
		return 0, errors.New("chains: tolerance must be positive")
	}
	if maxIter < 1 {
		return 0, errors.New("chains: maxIter must be positive")
	}

	// Enumerate states (a, b), a+b <= n, excluding (0, n).
	type state struct{ a, b int }
	index := make(map[state]int32)
	var states []state
	for a := 0; a <= n; a++ {
		for b := 0; a+b <= n; b++ {
			if a == 0 && b == n {
				continue
			}
			index[state{a, b}] = int32(len(states))
			states = append(states, state{a, b})
		}
	}
	m := len(states)
	rows := make([][]sparseEntry, m)
	success := make([]float64, m)
	fn := float64(n)
	for i, st := range states {
		a, b := st.a, st.b
		c := n - a - b
		var row []sparseEntry
		if a > 0 {
			row = append(row, sparseEntry{to: index[state{a - 1, b}], p: float64(a) / fn})
		}
		if b > 0 {
			row = append(row, sparseEntry{to: index[state{a + 1, b - 1}], p: float64(b) / fn})
		}
		if c > 0 {
			row = append(row, sparseEntry{to: index[state{a + 1, n - a - 1}], p: float64(c) / fn})
			success[i] = float64(c) / fn
		}
		rows[i] = row
	}

	// Lazy power iteration: v ← (vP + v) / 2.
	cur := make([]float64, m)
	next := make([]float64, m)
	cur[index[state{n, 0}]] = 1
	for iter := 0; iter < maxIter; iter++ {
		for i := range next {
			next[i] = 0
		}
		for i, vi := range cur {
			if vi == 0 {
				continue
			}
			half := vi / 2
			next[i] += half
			for _, e := range rows[i] {
				next[e.to] += half * e.p
			}
		}
		// Residual of the ORIGINAL chain: ‖vP − v‖∞ = 2·‖vLazy − v‖∞.
		var diff float64
		for i := range next {
			if d := math.Abs(next[i] - cur[i]); d > diff {
				diff = d
			}
		}
		cur, next = next, cur
		if 2*diff < tol {
			var mu float64
			for i, vi := range cur {
				mu += vi * success[i]
			}
			if mu <= 0 {
				return 0, errors.New("chains: zero stationary success rate")
			}
			return 1 / mu, nil
		}
	}
	return 0, fmt.Errorf("%w: n=%d after %d iterations", ErrNoSparseConvergence, n, maxIter)
}
