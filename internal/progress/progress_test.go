package progress

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func mustTrace(t *testing.T, n int, steps uint64, events []Event) *Trace {
	t.Helper()
	tr, err := NewTrace(n, steps, events)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestPropertyString(t *testing.T) {
	tests := []struct {
		p    Property
		want string
	}{
		{DeadlockFree, "deadlock-free"},
		{StarvationFree, "starvation-free"},
		{ClashFree, "clash-free"},
		{ObstructionFree, "obstruction-free"},
		{LockFree, "lock-free"},
		{WaitFree, "wait-free"},
		{Property(0), "Property(0)"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestPropertyTaxonomy(t *testing.T) {
	// Minimal and maximal partition the six properties (Sec 2.2).
	minimal := []Property{DeadlockFree, ClashFree, LockFree}
	maximal := []Property{StarvationFree, ObstructionFree, WaitFree}
	for _, p := range minimal {
		if !p.Minimal() || p.Maximal() {
			t.Errorf("%v should be minimal-only", p)
		}
	}
	for _, p := range maximal {
		if p.Minimal() || !p.Maximal() {
			t.Errorf("%v should be maximal-only", p)
		}
	}
}

func TestNewTraceValidation(t *testing.T) {
	if _, err := NewTrace(0, 10, nil); err == nil {
		t.Error("n=0: nil error")
	}
	if _, err := NewTrace(2, 10, []Event{{Step: 5, PID: 7}}); !errors.Is(err, ErrBadEvent) {
		t.Error("bad pid accepted")
	}
	if _, err := NewTrace(2, 10, []Event{{Step: 0, PID: 0}}); !errors.Is(err, ErrBadEvent) {
		t.Error("step 0 accepted")
	}
	if _, err := NewTrace(2, 10, []Event{{Step: 11, PID: 0}}); !errors.Is(err, ErrBadEvent) {
		t.Error("step beyond execution accepted")
	}
	if _, err := NewTrace(2, 10, []Event{{Step: 5, PID: 0}, {Step: 3, PID: 1}}); !errors.Is(err, ErrUnordered) {
		t.Error("unordered events accepted")
	}
}

func TestNewTraceCopiesEvents(t *testing.T) {
	events := []Event{{Step: 1, PID: 0}}
	tr := mustTrace(t, 1, 5, events)
	events[0].Step = 99
	if tr.Events[0].Step != 1 {
		t.Fatal("NewTrace did not copy events")
	}
}

func TestMinimalProgressBound(t *testing.T) {
	// Completions at 3, 5, 10 over 12 steps: gaps 3, 2, 5, trailing 2.
	tr := mustTrace(t, 2, 12, []Event{
		{Step: 3, PID: 0}, {Step: 5, PID: 1}, {Step: 10, PID: 0},
	})
	got, err := tr.MinimalProgressBound()
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("MinimalProgressBound = %d, want 5", got)
	}
}

func TestMinimalProgressBoundLeadingGapDominates(t *testing.T) {
	tr := mustTrace(t, 1, 10, []Event{{Step: 9, PID: 0}})
	got, err := tr.MinimalProgressBound()
	if err != nil {
		t.Fatal(err)
	}
	if got != 9 {
		t.Fatalf("bound = %d, want 9", got)
	}
}

func TestMinimalProgressBoundNoEvents(t *testing.T) {
	tr := mustTrace(t, 1, 100, nil)
	got, err := tr.MinimalProgressBound()
	if err != nil {
		t.Fatal(err)
	}
	if got != 100 {
		t.Fatalf("bound with no completions = %d, want 100", got)
	}
}

func TestMinimalProgressBoundEmptyExecution(t *testing.T) {
	tr := mustTrace(t, 1, 0, nil)
	if _, err := tr.MinimalProgressBound(); !errors.Is(err, ErrEmptyTrace) {
		t.Fatalf("empty execution: %v", err)
	}
}

func TestMaximalProgressBound(t *testing.T) {
	// Two processes over 20 steps; p0 completes at 4 and 8, p1 at 6.
	// p0's worst window is 20-8=12; p1's is 20-6=14.
	tr := mustTrace(t, 2, 20, []Event{
		{Step: 4, PID: 0}, {Step: 6, PID: 1}, {Step: 8, PID: 0},
	})
	got, err := tr.MaximalProgressBound()
	if err != nil {
		t.Fatal(err)
	}
	if got != 14 {
		t.Fatalf("MaximalProgressBound = %d, want 14", got)
	}
}

func TestMaximalProgressBoundStarvation(t *testing.T) {
	// A process with no completions contributes the full length.
	tr := mustTrace(t, 3, 50, []Event{{Step: 1, PID: 0}, {Step: 2, PID: 1}})
	got, err := tr.MaximalProgressBound()
	if err != nil {
		t.Fatal(err)
	}
	if got != 50 {
		t.Fatalf("bound = %d, want 50 (starved process)", got)
	}
}

func TestViolationChecks(t *testing.T) {
	tr := mustTrace(t, 2, 12, []Event{
		{Step: 3, PID: 0}, {Step: 5, PID: 1}, {Step: 10, PID: 0},
	})
	v, err := tr.ViolatesMinimalBound(4)
	if err != nil {
		t.Fatal(err)
	}
	if !v {
		t.Error("gap of 5 should violate bound 4")
	}
	v, err = tr.ViolatesMinimalBound(5)
	if err != nil {
		t.Fatal(err)
	}
	if v {
		t.Error("gap of 5 should satisfy bound 5")
	}
	v, err = tr.ViolatesMaximalBound(6)
	if err != nil {
		t.Fatal(err)
	}
	if !v {
		t.Error("per-process window should violate bound 6")
	}
}

func TestCompletionsAndStarved(t *testing.T) {
	tr := mustTrace(t, 3, 10, []Event{
		{Step: 1, PID: 0}, {Step: 2, PID: 0}, {Step: 3, PID: 2},
	})
	counts := tr.CompletionsPerProcess()
	if counts[0] != 2 || counts[1] != 0 || counts[2] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	starved := tr.Starved()
	if len(starved) != 1 || starved[0] != 1 {
		t.Fatalf("Starved = %v, want [1]", starved)
	}
}

func TestGapQuantile(t *testing.T) {
	// p0 gaps: 2 (1→3), 6 (3→9). p1 gaps: 4 (2→6).
	tr := mustTrace(t, 2, 10, []Event{
		{Step: 1, PID: 0}, {Step: 2, PID: 1}, {Step: 3, PID: 0},
		{Step: 6, PID: 1}, {Step: 9, PID: 0},
	})
	med, err := tr.GapQuantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if med != 4 {
		t.Fatalf("median gap = %v, want 4", med)
	}
	maxG, err := tr.GapQuantile(1)
	if err != nil {
		t.Fatal(err)
	}
	if maxG != 6 {
		t.Fatalf("max gap = %v, want 6", maxG)
	}
}

func TestGapQuantileErrors(t *testing.T) {
	tr := mustTrace(t, 2, 10, []Event{{Step: 1, PID: 0}})
	if _, err := tr.GapQuantile(0.5); !errors.Is(err, ErrEmptyTrace) {
		t.Errorf("single completion: %v", err)
	}
	if _, err := tr.GapQuantile(-1); err == nil {
		t.Error("q=-1: nil error")
	}
}

func TestCollector(t *testing.T) {
	var c Collector
	c.Observe(1, 0)
	c.Observe(5, 1)
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	tr, err := c.Trace(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 2 || tr.Events[1].Step != 5 {
		t.Fatalf("trace events = %v", tr.Events)
	}
}

func TestTheorem3ExpectedBound(t *testing.T) {
	got, err := Theorem3ExpectedBound(0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 8 {
		t.Fatalf("(1/0.5)^3 = %v, want 8", got)
	}
	got, err = Theorem3ExpectedBound(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("theta=1 bound = %v, want 1", got)
	}
	// Astronomic bounds overflow to +Inf rather than erroring.
	got, err = Theorem3ExpectedBound(0.01, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got, 1) {
		t.Fatalf("huge bound = %v, want +Inf", got)
	}
}

func TestTheorem3ExpectedBoundErrors(t *testing.T) {
	if _, err := Theorem3ExpectedBound(0, 1); err == nil {
		t.Error("theta=0: nil error")
	}
	if _, err := Theorem3ExpectedBound(1.5, 1); err == nil {
		t.Error("theta>1: nil error")
	}
}

func TestQuickMinimalLEMaximal(t *testing.T) {
	// Property: the minimal-progress bound never exceeds the
	// maximal-progress bound (if some process must complete in every
	// B-window, then in particular any process's window is >= the
	// global one).
	f := func(raw []uint16, nRaw uint8) bool {
		n := int(nRaw%4) + 1
		var events []Event
		step := uint64(0)
		for _, r := range raw {
			step += uint64(r%50) + 1
			events = append(events, Event{Step: step, PID: int(r) % n})
		}
		total := step + 10
		tr, err := NewTrace(n, total, events)
		if err != nil {
			return false
		}
		minB, err1 := tr.MinimalProgressBound()
		maxB, err2 := tr.MaximalProgressBound()
		if err1 != nil || err2 != nil {
			return false
		}
		return minB <= maxB
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBoundWithinExecution(t *testing.T) {
	f := func(raw []uint16) bool {
		var events []Event
		step := uint64(0)
		for _, r := range raw {
			step += uint64(r%100) + 1
			events = append(events, Event{Step: step, PID: 0})
		}
		total := step + uint64(len(raw))
		if total == 0 {
			return true
		}
		tr, err := NewTrace(1, total, events)
		if err != nil {
			return false
		}
		minB, err := tr.MinimalProgressBound()
		if err != nil {
			return false
		}
		return minB <= total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
