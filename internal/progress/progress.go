// Package progress implements the progress properties of Section 2.2
// and their bounded variants, together with checkers that evaluate
// them on completion histories produced by the simulator.
//
// Terminology (following Herlihy–Shavit "On the Nature of Progress"
// as adopted by the paper):
//
//   - minimal progress: in every suffix of the history, some pending
//     active invocation completes;
//   - maximal progress: in every suffix, every pending active
//     invocation completes;
//   - B-bounded minimal progress: whenever an invocation is pending,
//     some invocation completes within the next B system steps;
//   - B-bounded maximal progress: every active invocation completes
//     within B system steps.
//
// On a finite trace these are necessarily *witness* checks: a finite
// execution can refute a bound (a gap larger than B) and can exhibit
// the empirical bounds, but cannot prove an ∀-property of infinite
// executions. The checkers therefore report empirical bounds and
// violations, which is exactly what the experiments need (E8, E9).
package progress

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Property names a progress condition from Section 2.2.
type Property int

// The progress conditions, ordered blocking→non-blocking within each
// row of the paper's taxonomy.
const (
	DeadlockFree Property = iota + 1
	StarvationFree
	ClashFree
	ObstructionFree
	LockFree
	WaitFree
)

// String implements fmt.Stringer.
func (p Property) String() string {
	switch p {
	case DeadlockFree:
		return "deadlock-free"
	case StarvationFree:
		return "starvation-free"
	case ClashFree:
		return "clash-free"
	case ObstructionFree:
		return "obstruction-free"
	case LockFree:
		return "lock-free"
	case WaitFree:
		return "wait-free"
	default:
		return fmt.Sprintf("Property(%d)", int(p))
	}
}

// Minimal reports whether the property promises minimal progress under
// its scheduler assumption (all six do; the distinction is the
// scheduler class and whether progress is minimal or maximal).
func (p Property) Minimal() bool {
	switch p {
	case DeadlockFree, ClashFree, LockFree:
		return true
	default:
		return false
	}
}

// Maximal reports whether the property promises maximal progress.
func (p Property) Maximal() bool {
	switch p {
	case StarvationFree, ObstructionFree, WaitFree:
		return true
	default:
		return false
	}
}

// Event is one completion in a history: process PID returned from an
// invocation at system step Step.
type Event struct {
	Step uint64
	PID  int
}

// Trace is a completion history over a finite execution of Steps
// system steps by N processes. Events must be ordered by Step;
// NewTrace validates this.
type Trace struct {
	N      int
	Steps  uint64
	Events []Event
}

// Trace construction errors.
var (
	ErrUnordered  = errors.New("progress: events out of order")
	ErrBadEvent   = errors.New("progress: event outside execution")
	ErrEmptyTrace = errors.New("progress: empty trace")
)

// NewTrace validates and wraps a completion history. The events slice
// is copied.
func NewTrace(n int, steps uint64, events []Event) (*Trace, error) {
	if n < 1 {
		return nil, errors.New("progress: need at least one process")
	}
	es := make([]Event, len(events))
	copy(es, events)
	var prev uint64
	for i, e := range es {
		if e.PID < 0 || e.PID >= n {
			return nil, fmt.Errorf("%w: pid %d of %d", ErrBadEvent, e.PID, n)
		}
		if e.Step == 0 || e.Step > steps {
			return nil, fmt.Errorf("%w: step %d of %d", ErrBadEvent, e.Step, steps)
		}
		if i > 0 && e.Step < prev {
			return nil, ErrUnordered
		}
		prev = e.Step
	}
	return &Trace{N: n, Steps: steps, Events: es}, nil
}

// Collector accumulates completion events; plug its Observe method
// into machine.Sim.SetCompletionHook.
type Collector struct {
	events []Event
}

// Observe records one completion event.
func (c *Collector) Observe(step uint64, pid int) {
	c.events = append(c.events, Event{Step: step, PID: pid})
}

// Trace finalises the collection into a validated Trace.
func (c *Collector) Trace(n int, steps uint64) (*Trace, error) {
	return NewTrace(n, steps, c.events)
}

// Len returns the number of events collected so far.
func (c *Collector) Len() int { return len(c.events) }

// MinimalProgressBound returns the empirical minimal-progress bound of
// the trace: the largest number of system steps any point of the
// execution had to wait for the next completion by anyone, including
// the leading segment before the first completion and the trailing
// segment after the last. A bounded lock-free algorithm with bound B
// never exhibits a value above B.
func (t *Trace) MinimalProgressBound() (uint64, error) {
	if len(t.Events) == 0 {
		if t.Steps == 0 {
			return 0, ErrEmptyTrace
		}
		return t.Steps, nil
	}
	bound := t.Events[0].Step // leading gap
	for i := 1; i < len(t.Events); i++ {
		if g := t.Events[i].Step - t.Events[i-1].Step; g > bound {
			bound = g
		}
	}
	if g := t.Steps - t.Events[len(t.Events)-1].Step; g > bound {
		bound = g
	}
	return bound, nil
}

// MaximalProgressBound returns the empirical maximal-progress bound:
// the largest number of system steps any single process went between
// completions (again including leading and trailing segments). A
// process with no completions contributes the full execution length.
func (t *Trace) MaximalProgressBound() (uint64, error) {
	if t.Steps == 0 {
		return 0, ErrEmptyTrace
	}
	last := make([]uint64, t.N) // last completion step, 0 = none yet
	var bound uint64
	for _, e := range t.Events {
		if g := e.Step - last[e.PID]; g > bound {
			bound = g
		}
		last[e.PID] = e.Step
	}
	for pid := 0; pid < t.N; pid++ {
		if g := t.Steps - last[pid]; g > bound {
			bound = g
		}
	}
	return bound, nil
}

// ViolatesMinimalBound reports whether the trace refutes B-bounded
// minimal progress: some window of more than B steps passed without
// any completion.
func (t *Trace) ViolatesMinimalBound(b uint64) (bool, error) {
	got, err := t.MinimalProgressBound()
	if err != nil {
		return false, err
	}
	return got > b, nil
}

// ViolatesMaximalBound reports whether the trace refutes B-bounded
// maximal progress for some process.
func (t *Trace) ViolatesMaximalBound(b uint64) (bool, error) {
	got, err := t.MaximalProgressBound()
	if err != nil {
		return false, err
	}
	return got > b, nil
}

// CompletionsPerProcess returns the per-process completion counts.
func (t *Trace) CompletionsPerProcess() []int {
	counts := make([]int, t.N)
	for _, e := range t.Events {
		counts[e.PID]++
	}
	return counts
}

// Starved returns the processes with no completion in the trace —
// the finite-execution witness of a wait-freedom violation used by E9.
func (t *Trace) Starved() []int {
	counts := t.CompletionsPerProcess()
	var out []int
	for pid, c := range counts {
		if c == 0 {
			out = append(out, pid)
		}
	}
	return out
}

// GapQuantile returns the q-quantile of the per-process
// inter-completion gap distribution — the latency-distribution view of
// wait-free behaviour in practice (cf. the stack latency histogram the
// paper cites from Al-Bahra [1, Fig. 6]).
func (t *Trace) GapQuantile(q float64) (float64, error) {
	if q < 0 || q > 1 {
		return 0, errors.New("progress: quantile out of [0,1]")
	}
	var gaps []float64
	last := make(map[int]uint64, t.N)
	for _, e := range t.Events {
		if prev, ok := last[e.PID]; ok {
			gaps = append(gaps, float64(e.Step-prev))
		}
		last[e.PID] = e.Step
	}
	if len(gaps) == 0 {
		return 0, ErrEmptyTrace
	}
	sort.Float64s(gaps)
	if len(gaps) == 1 {
		return gaps[0], nil
	}
	pos := q * float64(len(gaps)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return gaps[lo], nil
	}
	frac := pos - float64(lo)
	return gaps[lo]*(1-frac) + gaps[hi]*frac, nil
}

// Theorem3ExpectedBound returns the expected maximal-progress bound
// (1/θ)^T of Theorem 3: under a stochastic scheduler with threshold θ,
// an algorithm with minimal-progress bound T has expected completion
// time at most (1/θ)^T per operation. The value grows astronomically
// fast — that is the theorem's point: it proves wait-freedom with
// probability 1, while the SCU analysis (Theorems 4–5) gives the
// pragmatic bound. Returns +Inf on overflow.
func Theorem3ExpectedBound(theta float64, t uint64) (float64, error) {
	if theta <= 0 || theta > 1 {
		return 0, errors.New("progress: theta must be in (0, 1]")
	}
	return math.Pow(1/theta, float64(t)), nil
}
