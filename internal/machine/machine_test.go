package machine

import (
	"errors"
	"math"
	"testing"

	"pwf/internal/rng"
	"pwf/internal/sched"
	"pwf/internal/shmem"
)

// stepper completes an invocation every period steps; it models the
// parallel code of Algorithm 4 with q = period.
type stepper struct {
	period int
	count  int
}

func (p *stepper) Step(mem *shmem.Memory) bool {
	mem.Read(0) // one shared-memory op per step, as the model requires
	p.count++
	if p.count == p.period {
		p.count = 0
		return true
	}
	return false
}

// never is a process that takes steps but never completes.
type never struct{}

func (never) Step(mem *shmem.Memory) bool {
	mem.Read(0)
	return false
}

func newSim(t *testing.T, n, period int, seed uint64) *Sim {
	t.Helper()
	mem, err := shmem.New(1)
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]Process, n)
	for i := range procs {
		procs[i] = &stepper{period: period}
	}
	u, err := sched.NewUniform(n, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(mem, procs, u)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	mem, err := shmem.New(1)
	if err != nil {
		t.Fatal(err)
	}
	u, err := sched.NewUniform(2, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(nil, []Process{never{}, never{}}, u); err == nil {
		t.Error("nil memory: nil error")
	}
	if _, err := New(mem, nil, u); !errors.Is(err, ErrNoProcs) {
		t.Errorf("no procs: %v", err)
	}
	if _, err := New(mem, []Process{never{}, nil}, u); err == nil {
		t.Error("nil proc: nil error")
	}
	if _, err := New(mem, []Process{never{}}, u); !errors.Is(err, ErrProcMismatch) {
		t.Errorf("count mismatch: %v", err)
	}
	if _, err := New(mem, []Process{never{}, never{}}, nil); err == nil {
		t.Error("nil scheduler: nil error")
	}
}

func TestRunCountsSteps(t *testing.T) {
	s := newSim(t, 3, 5, 1)
	if err := s.Run(1000); err != nil {
		t.Fatal(err)
	}
	if s.Steps() != 1000 {
		t.Fatalf("Steps = %d, want 1000", s.Steps())
	}
}

func TestCompletionAccounting(t *testing.T) {
	// Single process completing every step: every step is a completion.
	mem, err := shmem.New(1)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := sched.NewRoundRobin(1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(mem, []Process{&stepper{period: 1}}, rr)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if s.TotalCompletions() != 100 {
		t.Fatalf("TotalCompletions = %d, want 100", s.TotalCompletions())
	}
	if got := s.Completions()[0]; got != 100 {
		t.Fatalf("Completions[0] = %d, want 100", got)
	}
	lat, err := s.SystemLatency()
	if err != nil {
		t.Fatal(err)
	}
	if lat != 1 {
		t.Fatalf("SystemLatency = %v, want 1", lat)
	}
}

func TestRoundRobinParallelCodeLatencies(t *testing.T) {
	// n processes each completing every q of their own steps under
	// round-robin: system latency is exactly q (Lemma 11's W = q) and
	// individual latency exactly n*q.
	const (
		n = 4
		q = 3
	)
	mem, err := shmem.New(1)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := sched.NewRoundRobin(n)
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]Process, n)
	for i := range procs {
		procs[i] = &stepper{period: q}
	}
	s, err := New(mem, procs, rr)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(n * q * 100); err != nil {
		t.Fatal(err)
	}
	sys, err := s.SystemLatencyRatio()
	if err != nil {
		t.Fatal(err)
	}
	if sys != q {
		t.Fatalf("system latency (ratio) = %v, want %d", sys, q)
	}
	// The gap estimator pays a boundary effect of one window (the
	// steps before the first completion), so it is only asymptotically
	// exact.
	gap, err := s.SystemLatency()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gap-q) > 0.05 {
		t.Fatalf("system latency (gaps) = %v, want ~%d", gap, q)
	}
	ind, err := s.IndividualLatency(0)
	if err != nil {
		t.Fatal(err)
	}
	if ind != n*q {
		t.Fatalf("individual latency = %v, want %d", ind, n*q)
	}
}

func TestUniformParallelCodeLatency(t *testing.T) {
	// Under the uniform scheduler the same identities hold in
	// expectation (Lemma 11): W = q, W_i = n·q.
	const (
		n = 8
		q = 4
	)
	s := newSim(t, n, q, 42)
	if err := s.Run(20000); err != nil { // warmup
		t.Fatal(err)
	}
	s.ResetMetrics()
	if err := s.Run(800000); err != nil {
		t.Fatal(err)
	}
	sys, err := s.SystemLatency()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sys-q) > 0.05 {
		t.Errorf("system latency = %v, want ~%d", sys, q)
	}
	ind, err := s.MeanIndividualLatency()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ind-n*q)/float64(n*q) > 0.05 {
		t.Errorf("individual latency = %v, want ~%d", ind, n*q)
	}
}

func TestLatencyEstimatorsAgree(t *testing.T) {
	s := newSim(t, 5, 7, 7)
	if err := s.Run(500000); err != nil {
		t.Fatal(err)
	}
	gap, err := s.SystemLatency()
	if err != nil {
		t.Fatal(err)
	}
	ratio, err := s.SystemLatencyRatio()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gap-ratio)/ratio > 0.01 {
		t.Fatalf("gap estimator %v and ratio estimator %v diverge", gap, ratio)
	}
}

func TestRunUntilCompletions(t *testing.T) {
	s := newSim(t, 2, 3, 3)
	if err := s.RunUntilCompletions(50, 100000); err != nil {
		t.Fatal(err)
	}
	if s.TotalCompletions() < 50 {
		t.Fatalf("TotalCompletions = %d, want >= 50", s.TotalCompletions())
	}
}

func TestRunUntilCompletionsBudget(t *testing.T) {
	mem, err := shmem.New(1)
	if err != nil {
		t.Fatal(err)
	}
	u, err := sched.NewUniform(1, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(mem, []Process{never{}}, u)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilCompletions(1, 100); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
}

func TestResetMetricsDiscardsWarmup(t *testing.T) {
	s := newSim(t, 2, 3, 5)
	if err := s.Run(1000); err != nil {
		t.Fatal(err)
	}
	s.ResetMetrics()
	if _, err := s.SystemLatency(); !errors.Is(err, ErrNoCompletions) {
		t.Errorf("after reset, SystemLatency: %v", err)
	}
	if rate := s.CompletionRate(); rate != 0 {
		t.Errorf("after reset, CompletionRate = %v, want 0", rate)
	}
	if err := s.Run(10000); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SystemLatency(); err != nil {
		t.Errorf("after post-reset run: %v", err)
	}
}

func TestStarvedProcesses(t *testing.T) {
	mem, err := shmem.New(1)
	if err != nil {
		t.Fatal(err)
	}
	u, err := sched.NewUniform(2, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(mem, []Process{&stepper{period: 1}, never{}}, u)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(1000); err != nil {
		t.Fatal(err)
	}
	starved := s.StarvedProcesses()
	if len(starved) != 1 || starved[0] != 1 {
		t.Fatalf("StarvedProcesses = %v, want [1]", starved)
	}
}

func TestFairnessIndex(t *testing.T) {
	s := newSim(t, 4, 2, 8)
	if math.IsNaN(s.FairnessIndex()) != true {
		t.Error("FairnessIndex before any completion should be NaN")
	}
	if err := s.Run(200000); err != nil {
		t.Fatal(err)
	}
	if idx := s.FairnessIndex(); idx < 0.99 {
		t.Errorf("uniform scheduler fairness index = %v, want ~1", idx)
	}
}

func TestFairnessIndexMonopoly(t *testing.T) {
	mem, err := shmem.New(1)
	if err != nil {
		t.Fatal(err)
	}
	u, err := sched.NewUniform(4, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	procs := []Process{&stepper{period: 1}, never{}, never{}, never{}}
	s, err := New(mem, procs, u)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(10000); err != nil {
		t.Fatal(err)
	}
	if idx := s.FairnessIndex(); math.Abs(idx-0.25) > 1e-9 {
		t.Errorf("monopoly fairness index = %v, want 0.25", idx)
	}
}

func TestMaxIndividualGap(t *testing.T) {
	s := newSim(t, 2, 2, 10)
	if err := s.Run(10000); err != nil {
		t.Fatal(err)
	}
	gap, err := s.MaxIndividualGap(0)
	if err != nil {
		t.Fatal(err)
	}
	ind, err := s.IndividualLatency(0)
	if err != nil {
		t.Fatal(err)
	}
	if float64(gap) < ind {
		t.Fatalf("max gap %d below mean %v", gap, ind)
	}
	if _, err := s.MaxIndividualGap(99); err == nil {
		t.Error("out-of-range pid: nil error")
	}
}

func TestIndividualLatencyErrors(t *testing.T) {
	s := newSim(t, 2, 3, 11)
	if _, err := s.IndividualLatency(-1); err == nil {
		t.Error("pid -1: nil error")
	}
	if _, err := s.IndividualLatency(0); !errors.Is(err, ErrNoCompletions) {
		t.Errorf("no completions: %v", err)
	}
	if _, err := s.MeanIndividualLatency(); !errors.Is(err, ErrNoCompletions) {
		t.Errorf("mean with no completions: %v", err)
	}
}

func TestCompletionRateMatchesInverseLatency(t *testing.T) {
	s := newSim(t, 3, 5, 12)
	if err := s.Run(300000); err != nil {
		t.Fatal(err)
	}
	lat, err := s.SystemLatencyRatio()
	if err != nil {
		t.Fatal(err)
	}
	rate := s.CompletionRate()
	if math.Abs(rate*lat-1) > 1e-9 {
		t.Fatalf("rate %v is not inverse of ratio latency %v", rate, lat)
	}
}

func TestStepPropagatesSchedulerError(t *testing.T) {
	mem, err := shmem.New(1)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := sched.NewAdversarial(1, func(tau uint64, n int) int { return 5 })
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(mem, []Process{never{}}, bad)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Step(); err == nil {
		t.Fatal("scheduler error not propagated")
	}
}

func BenchmarkSimStep(b *testing.B) {
	mem, err := shmem.New(1)
	if err != nil {
		b.Fatal(err)
	}
	const n = 16
	procs := make([]Process, n)
	for i := range procs {
		procs[i] = &stepper{period: 5}
	}
	u, err := sched.NewUniform(n, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(mem, procs, u)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}
