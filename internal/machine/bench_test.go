package machine

import (
	"fmt"
	"testing"

	"pwf/internal/rng"
	"pwf/internal/sched"
	"pwf/internal/shmem"
)

func benchSim(tb testing.TB, n int, sch sched.Scheduler) *Sim {
	tb.Helper()
	mem, err := shmem.New(1)
	if err != nil {
		tb.Fatal(err)
	}
	procs := make([]Process, n)
	for i := range procs {
		procs[i] = &stepper{period: 3}
	}
	if sch == nil {
		u, err := sched.NewUniform(n, rng.New(1))
		if err != nil {
			tb.Fatal(err)
		}
		sch = u
	}
	sim, err := New(mem, procs, sch)
	if err != nil {
		tb.Fatal(err)
	}
	return sim
}

// naiveUniform adapts Uniform's NextNaive reference path to the
// Scheduler interface, so the end-to-end cost of the superseded O(n)
// sampler is measurable against the dense active set on identical
// machine code.
type naiveUniform struct{ *sched.Uniform }

func (s naiveUniform) Next() (int, error) { return s.NextNaive() }

// BenchmarkSimRun times the untraced, crash-free Run fast path: one
// scheduler draw plus one process step per iteration, with 0
// allocs/op as the acceptance bar. (BenchmarkSimStep in
// machine_test.go times the general per-Step entry point.)
func BenchmarkSimRun(b *testing.B) {
	sim := benchSim(b, 64, nil)
	b.ReportAllocs()
	b.ResetTimer()
	if err := sim.Run(uint64(b.N)); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSimRunNaiveSched is the before side of the sampler rewrite
// at paper scale: the same Run loop drawing through the O(n) naive
// uniform sampler, with one process crashed so the draw takes the
// rebuild-the-correct-set path (crash-free naive uniform is already
// O(1)). Compare the n=1024 sub-benchmark against
// BenchmarkSweepSteps/uniform/n=1024 (after side, also Crash: 1) in
// BENCH.md.
func BenchmarkSimRunNaiveSched(b *testing.B) {
	for _, n := range []int{64, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			u, err := sched.NewUniform(n, rng.New(1))
			if err != nil {
				b.Fatal(err)
			}
			if err := u.Crash(0); err != nil {
				b.Fatal(err)
			}
			sim := benchSim(b, n, naiveUniform{u})
			b.ReportAllocs()
			b.ResetTimer()
			if err := sim.Run(uint64(b.N)); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func TestRunZeroAllocs(t *testing.T) {
	sim := benchSim(t, 64, nil)
	allocs := testing.AllocsPerRun(100, func() {
		if err := sim.Run(100); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("untraced Run allocated %v/run, want 0", allocs)
	}
}
