package machine

import (
	"io"
	"testing"

	"pwf/internal/obs"
	"pwf/internal/rng"
	"pwf/internal/sched"
	"pwf/internal/shmem"
)

// casProc models the canonical lock-free retry loop: read the
// register, then CAS it forward; a lost race costs one failed CAS and
// another pass. One operation = one successful CAS.
type casProc struct {
	seen    int64
	haveVal bool
}

func (p *casProc) Step(mem *shmem.Memory) bool {
	if !p.haveVal {
		p.seen = mem.Read(0)
		p.haveVal = true
		return false
	}
	ok := mem.CAS(0, p.seen, p.seen+1)
	p.haveVal = false
	return ok
}

// collector is a Recorder capturing every event in order.
type collector struct{ events []obs.Event }

func (c *collector) Record(e obs.Event) { c.events = append(c.events, e) }

func newCASSim(t testing.TB, n int, rec obs.Recorder) *Sim {
	t.Helper()
	mem, err := shmem.New(1)
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]Process, n)
	for i := range procs {
		procs[i] = &casProc{}
	}
	u, err := sched.NewUniform(n, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(mem, procs, u)
	if err != nil {
		t.Fatal(err)
	}
	if rec != nil {
		s.SetRecorder(rec)
	}
	return s
}

func TestRecorderEventStream(t *testing.T) {
	var c collector
	s := newCASSim(t, 4, &c)
	const steps = 10000
	if err := s.Run(steps); err != nil {
		t.Fatal(err)
	}

	var (
		scheds, begins, casOK, casFail, retries, completes int
		attemptsFromCompletes                              uint64
		lastStep                                           uint64
	)
	inOp := make(map[int]bool)
	for i, e := range c.events {
		switch e.Kind {
		case obs.KindSched:
			if e.Step != lastStep+1 {
				t.Fatalf("event %d: sched step %d after %d", i, e.Step, lastStep)
			}
			lastStep = e.Step
			scheds++
		case obs.KindBegin:
			if inOp[e.PID] {
				t.Fatalf("event %d: begin while pid %d already in an op", i, e.PID)
			}
			inOp[e.PID] = true
			begins++
		case obs.KindCAS:
			if e.OK {
				casOK++
			} else {
				casFail++
			}
		case obs.KindRetry:
			if e.Attempts == 0 {
				t.Fatalf("event %d: retry with zero attempts", i)
			}
			retries++
		case obs.KindComplete:
			if !inOp[e.PID] {
				t.Fatalf("event %d: complete outside an op for pid %d", i, e.PID)
			}
			inOp[e.PID] = false
			completes++
			attemptsFromCompletes += e.Attempts
		}
	}
	if scheds != steps {
		t.Errorf("%d sched events, want %d", scheds, steps)
	}
	if casFail == 0 || retries == 0 {
		t.Errorf("uniform contention produced no failures/retries (fail=%d retry=%d)",
			casFail, retries)
	}
	// Every completion is one successful CAS, and an op's Attempts
	// counts all its CASes, so summed attempts = total CAS events for
	// completed ops. Open ops at the end account for any difference.
	if uint64(completes) != s.TotalCompletions() {
		t.Errorf("%d complete events vs %d sim completions", completes, s.TotalCompletions())
	}
	if casOK != completes {
		t.Errorf("%d CAS successes vs %d completions", casOK, completes)
	}
	if attemptsFromCompletes < uint64(casOK) {
		t.Errorf("summed attempts %d below success count %d", attemptsFromCompletes, casOK)
	}
}

func TestSetRecorderNopIsDisabled(t *testing.T) {
	s := newCASSim(t, 2, nil)
	s.SetRecorder(obs.Nop)
	if s.rec != nil {
		t.Fatal("obs.Nop was not normalized to the nil fast path")
	}
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderCrashEvents(t *testing.T) {
	var c collector
	s := newCASSim(t, 4, &c)
	if err := s.ScheduleCrash(50, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(200); err != nil {
		t.Fatal(err)
	}
	var crashes []obs.Event
	for _, e := range c.events {
		if e.Kind == obs.KindCrash {
			crashes = append(crashes, e)
		}
	}
	if len(crashes) != 1 || crashes[0].PID != 3 || crashes[0].Step != 50 {
		t.Errorf("crash events = %+v, want one at step 50 for pid 3", crashes)
	}
}

// benchSimStep measures the per-step cost with the given recorder; the
// nil case is the pre-hook baseline the <5% overhead budget is judged
// against.
func benchSimStep(b *testing.B, rec obs.Recorder) {
	s := newCASSim(b, 16, rec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimStepNoRecorder(b *testing.B)  { benchSimStep(b, nil) }
func BenchmarkSimStepNopRecorder(b *testing.B) { benchSimStep(b, obs.Nop) }
func BenchmarkSimStepMetrics(b *testing.B) {
	benchSimStep(b, obs.NewMetrics(obs.NewRegistry()))
}
func BenchmarkSimStepTraceDiscard(b *testing.B) {
	benchSimStep(b, obs.NewTraceRecorder(io.Discard))
}
