package machine

import (
	"errors"
	"fmt"
	"sort"

	"pwf/internal/obs"
	"pwf/internal/sched"
)

// Failure injection: crashes scheduled at future step numbers. A
// crash takes effect just before the given step is scheduled, so a
// plan entry {Step: 100, PID: 3} guarantees process 3 takes no step
// at time 100 or later. The simulator's scheduler must implement
// sched.Crasher.

// CrashPlanEntry is one scheduled fail-stop crash.
type CrashPlanEntry struct {
	Step uint64
	PID  int
}

// Crash-plan errors.
var (
	ErrNoCrashSupport = errors.New("machine: scheduler does not support crashes")
	ErrPastStep       = errors.New("machine: crash step already passed")
)

// ScheduleCrash arranges for pid to crash immediately before the given
// step number (1-based, like Sim.Steps()). Multiple crashes may be
// scheduled; entries at the same step apply in the order added.
func (s *Sim) ScheduleCrash(step uint64, pid int) error {
	if _, ok := s.sch.(sched.Crasher); !ok {
		return ErrNoCrashSupport
	}
	if pid < 0 || pid >= len(s.procs) {
		return fmt.Errorf("machine: pid %d out of range", pid)
	}
	if step <= s.steps {
		return fmt.Errorf("%w: %d <= %d", ErrPastStep, step, s.steps)
	}
	s.crashPlan = append(s.crashPlan, CrashPlanEntry{Step: step, PID: pid})
	sort.SliceStable(s.crashPlan, func(i, j int) bool {
		return s.crashPlan[i].Step < s.crashPlan[j].Step
	})
	return nil
}

// applyDueCrashes executes every plan entry due at or before the step
// about to be taken.
func (s *Sim) applyDueCrashes() error {
	for len(s.crashPlan) > 0 && s.crashPlan[0].Step <= s.steps+1 {
		entry := s.crashPlan[0]
		s.crashPlan = s.crashPlan[1:]
		crasher, ok := s.sch.(sched.Crasher)
		if !ok {
			return ErrNoCrashSupport
		}
		if err := crasher.Crash(entry.PID); err != nil {
			return fmt.Errorf("machine: crash pid %d at step %d: %w", entry.PID, entry.Step, err)
		}
		if s.rec != nil {
			s.rec.Record(obs.Event{Kind: obs.KindCrash, Step: entry.Step, PID: entry.PID})
		}
	}
	return nil
}

// PendingCrashes returns the crashes still scheduled.
func (s *Sim) PendingCrashes() []CrashPlanEntry {
	out := make([]CrashPlanEntry, len(s.crashPlan))
	copy(out, s.crashPlan)
	return out
}
