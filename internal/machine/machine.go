// Package machine implements the discrete-time execution model of
// Section 2.1: at every time unit the scheduler picks one process,
// which performs local computation and then issues exactly one
// shared-memory step. The machine drives simulated algorithm
// instances (see package scu) against a scheduler (package sched) on
// a shared memory (package shmem), and measures the two quantities
// the paper analyses:
//
//   - system latency: expected number of system steps between two
//     consecutive completions by any process;
//   - individual latency: expected number of system steps between two
//     consecutive completions by the same process.
//
// Both are estimated two ways — as the mean of inter-completion gaps
// and as the total-steps/total-completions ratio — which agree in the
// long run; tests compare them (the "latency estimator" ablation in
// DESIGN.md).
package machine

import (
	"errors"
	"fmt"
	"math"

	"pwf/internal/obs"
	"pwf/internal/sched"
	"pwf/internal/shmem"
	"pwf/internal/stats"
)

// Process is one simulated algorithm instance. Each call to Step
// performs exactly one shared-memory operation on mem and reports
// whether a method invocation completed at this step. Once an
// invocation completes, the next Step implicitly begins a new one
// (every process performs an infinite sequence of operations, matching
// the analysis in Section 6).
type Process interface {
	Step(mem *shmem.Memory) (completed bool)
}

// Machine simulation errors.
var (
	ErrNoProcs        = errors.New("machine: no processes")
	ErrProcMismatch   = errors.New("machine: scheduler and process count differ")
	ErrBudgetExceeded = errors.New("machine: step budget exceeded")
	ErrNoCompletions  = errors.New("machine: no completions observed")
)

// Sim couples processes, a scheduler, and a memory, and accumulates
// latency metrics while running.
type Sim struct {
	mem   *shmem.Memory
	procs []Process
	sch   sched.Scheduler

	steps       uint64
	completions []uint64
	totalComp   uint64

	// Gap statistics, measured in system steps.
	sysGaps     stats.Summary
	indGaps     []stats.Summary
	lastSysComp uint64
	lastIndComp []uint64
	sysPrimed   bool
	indPrimed   []bool
	maxIndGap   []uint64

	// Metrics window start (ResetMetrics discards warmup).
	windowStart     uint64
	windowCompStart uint64

	// hook, when set, observes every completion event.
	hook func(step uint64, pid int)

	// rec, when non-nil, receives step-level telemetry events. Every
	// emission site is guarded by a nil check so the disabled layer
	// costs one predictable branch per step (see obs bench_test.go).
	rec obs.Recorder

	// Per-process telemetry state, allocated on first SetRecorder:
	// CAS attempts in the current operation, whether an operation is
	// in flight, and pending/accumulated retry bookkeeping.
	opAttempts   []uint64
	retryIter    []uint64
	inOp         []bool
	retryPending []bool

	// crashPlan holds scheduled fail-stop crashes, sorted by step.
	crashPlan []CrashPlanEntry
}

// New builds a simulator. The scheduler must govern exactly
// len(procs) processes.
func New(mem *shmem.Memory, procs []Process, sch sched.Scheduler) (*Sim, error) {
	if mem == nil {
		return nil, errors.New("machine: nil memory")
	}
	if len(procs) == 0 {
		return nil, ErrNoProcs
	}
	for i, p := range procs {
		if p == nil {
			return nil, fmt.Errorf("machine: process %d is nil", i)
		}
	}
	if sch == nil {
		return nil, errors.New("machine: nil scheduler")
	}
	if sch.N() != len(procs) {
		return nil, fmt.Errorf("%w: scheduler %d vs %d", ErrProcMismatch, sch.N(), len(procs))
	}
	n := len(procs)
	return &Sim{
		mem:         mem,
		procs:       procs,
		sch:         sch,
		completions: make([]uint64, n),
		indGaps:     make([]stats.Summary, n),
		lastIndComp: make([]uint64, n),
		indPrimed:   make([]bool, n),
		maxIndGap:   make([]uint64, n),
	}, nil
}

// N returns the number of processes.
func (s *Sim) N() int { return len(s.procs) }

// ProcessAt returns the pid-th process, for extracting
// algorithm-specific metrics after a run.
func (s *Sim) ProcessAt(pid int) (Process, bool) {
	if pid < 0 || pid >= len(s.procs) {
		return nil, false
	}
	return s.procs[pid], true
}

// Step advances the simulation by one time unit: the scheduler picks a
// process, which takes one shared-memory step.
func (s *Sim) Step() error {
	if len(s.crashPlan) > 0 {
		if err := s.applyDueCrashes(); err != nil {
			return err
		}
	}
	pid, err := s.sch.Next()
	if err != nil {
		return fmt.Errorf("machine: schedule step %d: %w", s.steps, err)
	}
	s.steps++
	if s.rec != nil {
		return s.observedStep(pid)
	}
	if !s.procs[pid].Step(s.mem) {
		return nil
	}
	s.recordCompletion(pid)
	return nil
}

// observedStep is the traced twin of the Step hot path: it emits
// scheduling, operation-begin, retry, CAS, and completion events
// around the process step. CAS outcomes are recovered from the
// memory's operation counters — the model guarantees exactly one
// shared-memory operation per step, so the counter delta identifies
// the operation kind without touching the algorithms.
func (s *Sim) observedStep(pid int) error {
	s.rec.Record(obs.Event{Kind: obs.KindSched, Step: s.steps, PID: pid})
	if !s.inOp[pid] {
		s.inOp[pid] = true
		s.rec.Record(obs.Event{Kind: obs.KindBegin, Step: s.steps, PID: pid})
	} else if s.retryPending[pid] {
		s.retryPending[pid] = false
		s.rec.Record(obs.Event{Kind: obs.KindRetry, Step: s.steps, PID: pid, Attempts: s.retryIter[pid]})
	}

	before := s.mem.Counters()
	completed := s.procs[pid].Step(s.mem)
	after := s.mem.Counters()
	if after.CASes > before.CASes {
		ok := after.CASFailures == before.CASFailures
		s.opAttempts[pid]++
		s.rec.Record(obs.Event{Kind: obs.KindCAS, Step: s.steps, PID: pid, OK: ok})
		if !ok {
			s.retryIter[pid]++
			s.retryPending[pid] = true
		}
	}
	if completed {
		s.rec.Record(obs.Event{Kind: obs.KindComplete, Step: s.steps, PID: pid, Attempts: s.opAttempts[pid]})
		s.opAttempts[pid] = 0
		s.retryIter[pid] = 0
		s.retryPending[pid] = false
		s.inOp[pid] = false
		s.recordCompletion(pid)
	}
	return nil
}

func (s *Sim) recordCompletion(pid int) {
	s.completions[pid]++
	s.totalComp++

	if s.sysPrimed {
		s.sysGaps.Add(float64(s.steps - s.lastSysComp))
	}
	s.lastSysComp = s.steps
	s.sysPrimed = true

	if s.indPrimed[pid] {
		gap := s.steps - s.lastIndComp[pid]
		s.indGaps[pid].Add(float64(gap))
		if gap > s.maxIndGap[pid] {
			s.maxIndGap[pid] = gap
		}
	}
	s.lastIndComp[pid] = s.steps
	s.indPrimed[pid] = true

	if s.hook != nil {
		s.hook(s.steps, pid)
	}
}

// SetCompletionHook registers fn to observe every completion event
// (system step number and completing process). Pass nil to remove the
// hook. Package progress uses this to build histories.
func (s *Sim) SetCompletionHook(fn func(step uint64, pid int)) { s.hook = fn }

// SetRecorder installs r as the step-level telemetry sink: every
// subsequent Step emits scheduling, operation-begin, CAS, retry,
// completion, and crash events to it (see package obs for the event
// schema). Passing nil or obs.Nop disables telemetry; the disabled
// hooks cost a single branch per step.
func (s *Sim) SetRecorder(r obs.Recorder) {
	if r == obs.Nop {
		r = nil
	}
	s.rec = r
	if r != nil && s.opAttempts == nil {
		n := len(s.procs)
		s.opAttempts = make([]uint64, n)
		s.retryIter = make([]uint64, n)
		s.inOp = make([]bool, n)
		s.retryPending = make([]bool, n)
	}
}

// Run advances the simulation by steps time units. When no crash is
// pending and no recorder is installed — the configuration every
// sweep job runs in — it drops into a tight loop that skips the
// per-step feature checks, so one simulated step is one scheduler
// draw, one process step, and nothing else: no allocation, no trace
// plumbing (TestRunZeroAllocs pins this).
func (s *Sim) Run(steps uint64) error {
	i := uint64(0)
	for i < steps && (len(s.crashPlan) > 0 || s.rec != nil) {
		// Slow path: crashes still pending (the plan only shrinks) or
		// telemetry enabled for the whole run.
		if err := s.Step(); err != nil {
			return err
		}
		i++
	}
	for ; i < steps; i++ {
		pid, err := s.sch.Next()
		if err != nil {
			return fmt.Errorf("machine: schedule step %d: %w", s.steps, err)
		}
		s.steps++
		if s.procs[pid].Step(s.mem) {
			s.recordCompletion(pid)
		}
	}
	return nil
}

// RunUntilCompletions runs until the total number of completions since
// construction reaches target, or fails with ErrBudgetExceeded after
// maxSteps further steps.
func (s *Sim) RunUntilCompletions(target, maxSteps uint64) error {
	budget := maxSteps
	for s.totalComp < target {
		if budget == 0 {
			return fmt.Errorf("%w: %d completions after %d steps, want %d",
				ErrBudgetExceeded, s.totalComp, maxSteps, target)
		}
		budget--
		if err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}

// ResetMetrics discards the statistics gathered so far (warmup) while
// keeping the simulation state. Subsequent latency estimates describe
// only the post-reset window, approximating the stationary regime.
func (s *Sim) ResetMetrics() {
	s.sysGaps = stats.Summary{}
	s.sysPrimed = false
	for i := range s.indGaps {
		s.indGaps[i] = stats.Summary{}
		s.indPrimed[i] = false
		s.maxIndGap[i] = 0
	}
	s.windowStart = s.steps
	s.windowCompStart = s.totalComp
}

// Steps returns the total number of time units simulated.
func (s *Sim) Steps() uint64 { return s.steps }

// Completions returns a copy of the per-process completion counts.
func (s *Sim) Completions() []uint64 {
	out := make([]uint64, len(s.completions))
	copy(out, s.completions)
	return out
}

// TotalCompletions returns the total number of completed invocations.
func (s *Sim) TotalCompletions() uint64 { return s.totalComp }

// SystemLatency returns the mean number of system steps between
// consecutive completions (gap estimator), an error if fewer than two
// completions were observed in the metrics window.
func (s *Sim) SystemLatency() (float64, error) {
	if s.sysGaps.N() == 0 {
		return 0, ErrNoCompletions
	}
	return s.sysGaps.Mean(), nil
}

// SystemLatencyRatio returns steps/completions over the metrics
// window (ratio estimator).
func (s *Sim) SystemLatencyRatio() (float64, error) {
	comps := s.totalComp - s.windowCompStart
	if comps == 0 {
		return 0, ErrNoCompletions
	}
	return float64(s.steps-s.windowStart) / float64(comps), nil
}

// IndividualLatency returns the mean number of system steps between
// consecutive completions by process pid (gap estimator).
func (s *Sim) IndividualLatency(pid int) (float64, error) {
	if pid < 0 || pid >= len(s.procs) {
		return 0, fmt.Errorf("machine: pid %d out of range", pid)
	}
	if s.indGaps[pid].N() == 0 {
		return 0, fmt.Errorf("%w: process %d", ErrNoCompletions, pid)
	}
	return s.indGaps[pid].Mean(), nil
}

// MeanIndividualLatency averages the individual latency across all
// processes that completed at least two invocations; it returns an
// error if no process did.
func (s *Sim) MeanIndividualLatency() (float64, error) {
	var sum float64
	count := 0
	for pid := range s.procs {
		if s.indGaps[pid].N() == 0 {
			continue
		}
		sum += s.indGaps[pid].Mean()
		count++
	}
	if count == 0 {
		return 0, ErrNoCompletions
	}
	return sum / float64(count), nil
}

// MaxIndividualGap returns the largest observed inter-completion gap
// for pid (in system steps) within the metrics window; used as the
// starvation witness in E9.
func (s *Sim) MaxIndividualGap(pid int) (uint64, error) {
	if pid < 0 || pid >= len(s.procs) {
		return 0, fmt.Errorf("machine: pid %d out of range", pid)
	}
	return s.maxIndGap[pid], nil
}

// CompletionRate returns completions per system step over the metrics
// window — the quantity plotted in Figure 5 (the inverse of system
// latency).
func (s *Sim) CompletionRate() float64 {
	steps := s.steps - s.windowStart
	if steps == 0 {
		return 0
	}
	return float64(s.totalComp-s.windowCompStart) / float64(steps)
}

// StarvedProcesses returns the ids of processes with zero completions
// so far; with enough steps under a stochastic scheduler this should
// be empty for bounded lock-free algorithms (Theorem 3), and non-empty
// for Algorithm 1 (Lemma 2).
func (s *Sim) StarvedProcesses() []int {
	var out []int
	for pid, c := range s.completions {
		if c == 0 {
			out = append(out, pid)
		}
	}
	return out
}

// FairnessIndex returns Jain's fairness index of the per-process
// completion counts: (Σx)² / (n·Σx²), which is 1 for perfectly equal
// progress and 1/n when one process monopolises completions.
func (s *Sim) FairnessIndex() float64 {
	var sum, sumSq float64
	for _, c := range s.completions {
		x := float64(c)
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return math.NaN()
	}
	n := float64(len(s.completions))
	return sum * sum / (n * sumSq)
}
