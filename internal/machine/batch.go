package machine

import (
	"errors"
	"fmt"
	"math"

	"pwf/internal/sched"
	"pwf/internal/stats"
)

// Replica-batched simulation: BatchSim steps K independent replicas
// of one job shape per loop iteration. Each replica has its own rng
// stream (inside the sched.BatchDrawer), its own registers and
// algorithm state (inside the BatchGroup), and its own latency
// accumulators (here), all laid out contiguously in struct-of-arrays
// form so the per-step dispatch overhead — interface calls, feature
// checks, loop bookkeeping — amortizes across the batch and the hot
// state stays cache-resident.
//
// Determinism contract: replica r of a BatchSim evolves exactly as a
// scalar Sim over the same processes, scheduler seed, and pre-run
// crashes — the same schedule, the same completions at the same
// steps, and bit-identical latency statistics (the accumulator update
// order within a replica is unchanged). Batched execution is a pure
// layout optimization.

// BatchGroup is a workload's struct-of-arrays process group: the
// state of K replicas × N processes, steppable with one call per
// batch instead of one interface dispatch per process step.
// Implementations live beside their scalar forms in package scu.
type BatchGroup interface {
	// StepBatch performs, for every replica r, one shared-memory step
	// of process pids[r] in replica r's memory, recording in done[r]
	// whether an operation completed. len(pids) == len(done) == K().
	StepBatch(pids []int32, done []bool)
	// K returns the replica count.
	K() int
	// N returns the number of processes per replica.
	N() int
}

// BatchChecker is implemented by batch groups that carry post-run
// invariant checks — linearizability witnesses, pool-exhaustion
// errors — mirroring the scalar workloads' check functions.
// CheckReplica(r) returns the error replica r's scalar counterpart
// would have reported after the same run, or nil.
type BatchChecker interface {
	CheckReplica(r int) error
}

// BatchSim errors.
var (
	ErrBatchMismatch = errors.New("machine: batch group and drawer disagree on shape")
	ErrBadReplica    = errors.New("machine: replica index out of range")
)

// indCell is the per-(replica, process) metric state, packed into
// exactly one cache line (40-byte Summary + three words) so recording
// a completion touches a single line instead of one per field array.
// lastComp doubles as the primed flag: steps are 1-based at
// completion time, so lastComp == 0 means no completion has been
// recorded in the current metrics window, exactly like the scalar
// Sim's indPrimed=false with a stale lastIndComp.
type indCell struct {
	gaps        stats.Summary
	lastComp    uint64
	maxGap      uint64
	completions uint64
}

// BatchSim couples a batched process group with a batched scheduler
// and accumulates per-replica latency metrics while running. All
// replicas advance in lockstep; Steps() is the per-replica step
// count.
type BatchSim struct {
	group  BatchGroup
	drawer sched.BatchDrawer
	k, n   int

	steps uint64

	// Per-replica metric state, indexed [r].
	totalComp       []uint64
	sysGaps         []stats.Summary
	lastSysComp     []uint64
	sysPrimed       []bool
	windowStart     uint64
	windowCompStart []uint64

	// Per-(replica, process) metric state, indexed [r*n + pid].
	ind []indCell

	// Step scratch.
	pids []int32
	done []bool
}

// NewBatchSim builds a batched simulator from a group and a drawer
// agreeing on replica count and process count.
func NewBatchSim(group BatchGroup, drawer sched.BatchDrawer) (*BatchSim, error) {
	if group == nil {
		return nil, errors.New("machine: nil batch group")
	}
	if drawer == nil {
		return nil, errors.New("machine: nil batch drawer")
	}
	k, n := group.K(), group.N()
	if k < 1 || n < 1 {
		return nil, fmt.Errorf("%w: group %d replicas x %d processes", ErrBatchMismatch, k, n)
	}
	if drawer.K() != k || drawer.N() != n {
		return nil, fmt.Errorf("%w: drawer %dx%d vs group %dx%d",
			ErrBatchMismatch, drawer.K(), drawer.N(), k, n)
	}
	return &BatchSim{
		group:           group,
		drawer:          drawer,
		k:               k,
		n:               n,
		totalComp:       make([]uint64, k),
		sysGaps:         make([]stats.Summary, k),
		lastSysComp:     make([]uint64, k),
		sysPrimed:       make([]bool, k),
		windowCompStart: make([]uint64, k),
		ind:             make([]indCell, k*n),
		pids:            make([]int32, k),
		done:            make([]bool, k),
	}, nil
}

// K returns the replica count.
func (b *BatchSim) K() int { return b.k }

// N returns the number of processes per replica.
func (b *BatchSim) N() int { return b.n }

// Steps returns the per-replica number of time units simulated.
func (b *BatchSim) Steps() uint64 { return b.steps }

// Run advances every replica by steps time units.
func (b *BatchSim) Run(steps uint64) error {
	pids, done := b.pids, b.done
	for i := uint64(0); i < steps; i++ {
		if err := b.drawer.NextBatch(pids); err != nil {
			return fmt.Errorf("machine: batch schedule step %d: %w", b.steps, err)
		}
		b.steps++
		b.group.StepBatch(pids, done)
		for r := 0; r < len(done); r++ {
			if done[r] {
				b.recordCompletion(r, int(pids[r]))
			}
		}
	}
	return nil
}

// recordCompletion mirrors Sim.recordCompletion for replica r: the
// accumulator updates happen in the same order with the same values,
// so the resulting statistics are bit-identical to a scalar run.
func (b *BatchSim) recordCompletion(r, pid int) {
	c := &b.ind[r*b.n+pid]
	c.completions++
	b.totalComp[r]++

	if b.sysPrimed[r] {
		b.sysGaps[r].Add(float64(b.steps - b.lastSysComp[r]))
	}
	b.lastSysComp[r] = b.steps
	b.sysPrimed[r] = true

	if c.lastComp != 0 {
		gap := b.steps - c.lastComp
		c.gaps.Add(float64(gap))
		if gap > c.maxGap {
			c.maxGap = gap
		}
	}
	c.lastComp = b.steps
}

// ResetMetrics discards the statistics gathered so far (warmup) in
// every replica while keeping the simulation state, exactly as
// Sim.ResetMetrics does per replica.
func (b *BatchSim) ResetMetrics() {
	for r := 0; r < b.k; r++ {
		b.sysGaps[r] = stats.Summary{}
		b.sysPrimed[r] = false
		b.windowCompStart[r] = b.totalComp[r]
	}
	for i := range b.ind {
		b.ind[i].gaps = stats.Summary{}
		b.ind[i].lastComp = 0
		b.ind[i].maxGap = 0
	}
	b.windowStart = b.steps
}

func (b *BatchSim) checkReplica(r int) error {
	if r < 0 || r >= b.k {
		return fmt.Errorf("%w: %d of %d", ErrBadReplica, r, b.k)
	}
	return nil
}

// SystemLatency returns replica r's mean inter-completion gap (gap
// estimator), mirroring Sim.SystemLatency.
func (b *BatchSim) SystemLatency(r int) (float64, error) {
	if err := b.checkReplica(r); err != nil {
		return 0, err
	}
	if b.sysGaps[r].N() == 0 {
		return 0, ErrNoCompletions
	}
	return b.sysGaps[r].Mean(), nil
}

// MeanIndividualLatency returns replica r's mean individual latency
// across processes with at least two completions, mirroring
// Sim.MeanIndividualLatency.
func (b *BatchSim) MeanIndividualLatency(r int) (float64, error) {
	if err := b.checkReplica(r); err != nil {
		return 0, err
	}
	var sum float64
	count := 0
	base := r * b.n
	for pid := 0; pid < b.n; pid++ {
		if b.ind[base+pid].gaps.N() == 0 {
			continue
		}
		sum += b.ind[base+pid].gaps.Mean()
		count++
	}
	if count == 0 {
		return 0, ErrNoCompletions
	}
	return sum / float64(count), nil
}

// CompletionRate returns replica r's completions per step over the
// metrics window, mirroring Sim.CompletionRate.
func (b *BatchSim) CompletionRate(r int) float64 {
	steps := b.steps - b.windowStart
	if steps == 0 {
		return 0
	}
	return float64(b.totalComp[r]-b.windowCompStart[r]) / float64(steps)
}

// FairnessIndex returns Jain's fairness index of replica r's
// per-process completion counts, mirroring Sim.FairnessIndex.
func (b *BatchSim) FairnessIndex(r int) float64 {
	var sum, sumSq float64
	base := r * b.n
	for pid := 0; pid < b.n; pid++ {
		x := float64(b.ind[base+pid].completions)
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return math.NaN()
	}
	n := float64(b.n)
	return sum * sum / (n * sumSq)
}

// TotalCompletions returns replica r's total completed invocations
// since construction (warmup included), mirroring
// Sim.TotalCompletions.
func (b *BatchSim) TotalCompletions(r int) uint64 { return b.totalComp[r] }

// Completions returns a copy of replica r's per-process completion
// counts.
func (b *BatchSim) Completions(r int) []uint64 {
	out := make([]uint64, b.n)
	base := r * b.n
	for pid := 0; pid < b.n; pid++ {
		out[pid] = b.ind[base+pid].completions
	}
	return out
}

// StarvedProcesses returns the ids of replica r's processes with zero
// completions so far, mirroring Sim.StarvedProcesses.
func (b *BatchSim) StarvedProcesses(r int) []int {
	var out []int
	base := r * b.n
	for pid := 0; pid < b.n; pid++ {
		if b.ind[base+pid].completions == 0 {
			out = append(out, pid)
		}
	}
	return out
}
