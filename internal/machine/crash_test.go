package machine

import (
	"errors"
	"math"
	"testing"

	"pwf/internal/sched"
	"pwf/internal/shmem"
)

func TestScheduleCrashValidation(t *testing.T) {
	// Replay/adversarial schedulers don't support crashes.
	mem, err := shmem.New(1)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := sched.NewAdversarial(2, func(tau uint64, n int) int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(mem, []Process{never{}, never{}}, adv)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ScheduleCrash(10, 0); !errors.Is(err, ErrNoCrashSupport) {
		t.Errorf("adversary crash: %v", err)
	}

	u := newSim(t, 2, 3, 1)
	if err := u.ScheduleCrash(10, 5); err == nil {
		t.Error("bad pid: nil error")
	}
	if err := u.Run(20); err != nil {
		t.Fatal(err)
	}
	if err := u.ScheduleCrash(5, 0); !errors.Is(err, ErrPastStep) {
		t.Errorf("past step: %v", err)
	}
}

func TestScheduledCrashStopsProcess(t *testing.T) {
	s := newSim(t, 3, 1, 2) // every step completes
	if err := s.ScheduleCrash(1000, 2); err != nil {
		t.Fatal(err)
	}
	if got := len(s.PendingCrashes()); got != 1 {
		t.Fatalf("PendingCrashes = %d, want 1", got)
	}
	if err := s.Run(999); err != nil {
		t.Fatal(err)
	}
	before := s.Completions()[2]
	if before == 0 {
		t.Fatal("process 2 never ran before the crash")
	}
	if err := s.Run(5000); err != nil {
		t.Fatal(err)
	}
	if got := s.Completions()[2]; got != before {
		t.Fatalf("crashed process completed %d more ops", got-before)
	}
	if got := len(s.PendingCrashes()); got != 0 {
		t.Fatalf("PendingCrashes after firing = %d", got)
	}
	// Survivors keep completing.
	if s.Completions()[0] <= before || s.Completions()[1] <= before {
		t.Fatal("survivors did not progress after the crash")
	}
}

func TestCrashesApplyInStepOrder(t *testing.T) {
	s := newSim(t, 4, 1, 3)
	// Schedule out of order; both must apply at their steps.
	if err := s.ScheduleCrash(2000, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.ScheduleCrash(500, 3); err != nil {
		t.Fatal(err)
	}
	plan := s.PendingCrashes()
	if plan[0].Step != 500 || plan[1].Step != 2000 {
		t.Fatalf("plan not sorted: %v", plan)
	}
	if err := s.Run(10000); err != nil {
		t.Fatal(err)
	}
	comps := s.Completions()
	// The earlier crash leaves fewer completions.
	if comps[3] >= comps[1] {
		t.Fatalf("earlier-crashed process 3 (%d) completed >= later-crashed 1 (%d)",
			comps[3], comps[1])
	}
}

func TestCrashReducesLatencyToSurvivorLevel(t *testing.T) {
	// Corollary 2 via failure injection: after crashing half the
	// processes mid-run, the stationary latency matches a fresh run
	// with only the survivors.
	const (
		n      = 8
		period = 4
	)
	s := newSim(t, n, period, 4)
	if err := s.ScheduleCrash(1000, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.ScheduleCrash(1000, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.ScheduleCrash(1000, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.ScheduleCrash(1000, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(2000); err != nil { // crashes fire; settle
		t.Fatal(err)
	}
	s.ResetMetrics()
	if err := s.Run(400000); err != nil {
		t.Fatal(err)
	}
	got, err := s.SystemLatency()
	if err != nil {
		t.Fatal(err)
	}
	// Parallel code with k survivors: W = q exactly (Lemma 11 with k).
	if math.Abs(got-period) > 0.1 {
		t.Fatalf("post-crash latency %v, want ~%d", got, period)
	}
}

func TestCrashAllButOne(t *testing.T) {
	s := newSim(t, 3, 2, 5)
	if err := s.ScheduleCrash(10, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.ScheduleCrash(10, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(1000); err != nil {
		t.Fatal(err)
	}
	// Only process 2 runs; it completes every 2 of its own steps and
	// is scheduled every step.
	s.ResetMetrics()
	if err := s.Run(1000); err != nil {
		t.Fatal(err)
	}
	w, err := s.SystemLatency()
	if err != nil {
		t.Fatal(err)
	}
	if w != 2 {
		t.Fatalf("solo latency %v, want 2", w)
	}
}

func TestCrashLastProcessRejected(t *testing.T) {
	s := newSim(t, 2, 2, 6)
	if err := s.ScheduleCrash(5, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.ScheduleCrash(6, 1); err != nil {
		t.Fatal(err)
	}
	// The second crash would kill the last correct process; the model
	// allows at most n-1 crashes, so the run must fail loudly.
	err := s.Run(100)
	if err == nil {
		t.Fatal("crashing the last correct process did not error")
	}
	if !errors.Is(err, sched.ErrLastProcess) {
		t.Fatalf("unexpected error: %v", err)
	}
}
