// Package api defines the canonical, versioned JSON schema for sweep
// jobs and results — one encoding shared by the pwfsim -json output,
// the pwfserve wire format, and any persisted grids, so a grid
// submitted over HTTP is byte-identically the grid a CLI runs
// locally, and results reproduce across both for the same master
// seed.
//
// # Canonical form
//
// The canonical encoding of a value is the compact (single-line)
// encoding produced by Go's encoding/json for the types here: object
// keys appear in struct-field order, no insignificant whitespace,
// wall-clock fields are absent by construction. Two runs of the same
// grid under the same master seed yield byte-identical canonical
// result lines regardless of transport (local RunSweep vs. HTTP
// stream), worker count, or batching.
//
// # Versioning and compatibility policy
//
// Every top-level envelope (Grid, Result, Error) carries a schema
// version field "v". This package speaks exactly Version: decoding
// rejects other versions, and strict decoding (DecodeGrid) also
// rejects unknown fields, so typos in hand-written grids fail loudly
// at admission instead of silently running defaults. Additive,
// backward-compatible evolution (new optional fields) bumps Version;
// decoders stay pinned to the version they were built with. The one
// deliberate liberality: a SchedulerSpec decodes from either its
// object form or the shared CLI grammar string ("sticky:0.9" —
// see sweep.ParseScheduler), both normalizing to the same spec.
package api

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"pwf/internal/sweep"
)

// Version is the schema version this package encodes and accepts.
const Version = 1

// Aliases for the payload types whose JSON shape the sweep package
// owns; their encodings are part of this schema.
type (
	// Workload declares the simulated algorithm of one job.
	Workload = sweep.Workload
	// SchedulerSpec declares the scheduler; JSON accepts the object
	// form or the CLI grammar string.
	SchedulerSpec = sweep.SchedulerSpec
	// Latencies are the measured latency and fairness metrics.
	Latencies = sweep.Latencies
)

// Job is the wire form of one grid point: exactly the declarative
// subset of sweep.Job, without process-local hooks or recorders.
type Job struct {
	Workload Workload `json:"workload"`
	// N is the number of processes.
	N int `json:"n"`
	// Sched selects the scheduler; the zero value is uniform.
	Sched SchedulerSpec `json:"sched"`
	// Steps is the measurement window in system steps.
	Steps uint64 `json:"steps"`
	// WarmupFraction is the warmup before the measurement window as a
	// fraction of Steps, in [0, 1).
	WarmupFraction float64 `json:"warmup_fraction"`
	// Crash fail-stops the highest-id Crash processes before the run.
	Crash int `json:"crash,omitempty"`
	// Exact requests the exact-chain system latency where tractable.
	Exact bool `json:"exact,omitempty"`
	// Label is carried through to the result for presentation.
	Label string `json:"label,omitempty"`
}

// JobFromSweep projects a sweep job onto its wire form.
func JobFromSweep(j sweep.Job) Job {
	return Job{
		Workload:       j.Workload,
		N:              j.N,
		Sched:          j.Sched,
		Steps:          j.Steps,
		WarmupFraction: j.WarmupFraction,
		Crash:          j.Crash,
		Exact:          j.Exact,
		Label:          j.Label,
	}
}

// Sweep converts the wire job into an executable sweep job.
func (j Job) Sweep() sweep.Job {
	return sweep.Job{
		Workload:       j.Workload,
		N:              j.N,
		Sched:          j.Sched,
		Steps:          j.Steps,
		WarmupFraction: j.WarmupFraction,
		Crash:          j.Crash,
		Exact:          j.Exact,
		Label:          j.Label,
	}
}

// Validate reports whether the job is well-formed.
func (j Job) Validate() error { return j.Sweep().Validate() }

// Grid is a sweep submission: a versioned job grid plus the master
// seed that makes its results reproducible.
type Grid struct {
	// V is the schema version; must equal Version.
	V int `json:"v"`
	// Seed is the master seed; job i draws from stream (Seed, i).
	Seed uint64 `json:"seed"`
	// Jobs is the grid, executed logically in order.
	Jobs []Job `json:"jobs"`
}

// ErrVersion marks version-mismatch decode failures; match with
// errors.Is to distinguish them from other validation errors.
var ErrVersion = errors.New("api: unsupported schema version")

// Validate reports whether the grid is well-formed: correct version,
// at least one job, every job valid.
func (g Grid) Validate() error {
	if g.V != Version {
		return fmt.Errorf("%w: grid has v=%d (this build speaks v%d)", ErrVersion, g.V, Version)
	}
	if len(g.Jobs) == 0 {
		return errors.New("api: grid has no jobs")
	}
	for i, j := range g.Jobs {
		if err := j.Validate(); err != nil {
			return fmt.Errorf("api: job %d: %w", i, err)
		}
	}
	return nil
}

// SweepJobs converts the grid's jobs into executable sweep jobs.
func (g Grid) SweepJobs() []sweep.Job {
	jobs := make([]sweep.Job, len(g.Jobs))
	for i, j := range g.Jobs {
		jobs[i] = j.Sweep()
	}
	return jobs
}

// Result is the canonical outcome of one job: the deterministic
// subset of sweep.Result. Wall-clock elapsed time is deliberately
// absent so canonical bytes are byte-identical across runs, hosts,
// and transports.
type Result struct {
	// V is the schema version; must equal Version.
	V int `json:"v"`
	// Index is the job's position in the grid.
	Index int `json:"index"`
	// Label echoes the job's label.
	Label string `json:"label,omitempty"`
	// Job echoes the executed job.
	Job Job `json:"job"`
	// Seed is the derived rng seed the job's scheduler drew from.
	Seed uint64 `json:"seed"`
	// Latencies are the measured latency and fairness metrics.
	Latencies Latencies `json:"latencies"`
	// ProcCompletions is the per-process completion count.
	ProcCompletions []uint64 `json:"proc_completions,omitempty"`
	// Starved lists processes with zero completions.
	Starved []int `json:"starved,omitempty"`
	// Theta is the scheduler's stochasticity threshold θ.
	Theta float64 `json:"theta"`
	// Exact is the exact-chain system latency; valid only when
	// ExactOK.
	Exact float64 `json:"exact,omitempty"`
	// ExactOK reports whether Exact is valid.
	ExactOK bool `json:"exact_ok,omitempty"`
}

// ResultFromSweep projects a sweep result onto its canonical wire
// form, dropping the nondeterministic wall-clock fields.
func ResultFromSweep(r sweep.Result) Result {
	return Result{
		V:               Version,
		Index:           r.Index,
		Label:           r.Label,
		Job:             JobFromSweep(r.Job),
		Seed:            r.Seed,
		Latencies:       r.Latencies,
		ProcCompletions: r.ProcCompletions,
		Starved:         r.Starved,
		Theta:           r.Theta,
		Exact:           r.Exact,
		ExactOK:         r.ExactOK,
	}
}

// Sweep converts the wire result back into the engine's result type —
// the inverse of ResultFromSweep up to the deliberately dropped
// fields: Elapsed is zero (canonical results carry no wall clock) and
// the job loses any process-local hooks it never had on the wire.
// The checkpoint layer uses this to restore completed points.
func (r Result) Sweep() sweep.Result {
	return sweep.Result{
		Index:           r.Index,
		Label:           r.Label,
		Job:             r.Job.Sweep(),
		Seed:            r.Seed,
		Latencies:       r.Latencies,
		ProcCompletions: r.ProcCompletions,
		Starved:         r.Starved,
		Theta:           r.Theta,
		Exact:           r.Exact,
		ExactOK:         r.ExactOK,
	}
}

// Stable error codes carried by Error.Code. Clients match on these,
// never on Message text.
const (
	// CodeInvalidGrid: the submission failed validation or decoding.
	CodeInvalidGrid = "invalid_grid"
	// CodeGridTooLarge: the grid exceeds the server's per-sweep job
	// limit.
	CodeGridTooLarge = "grid_too_large"
	// CodeBodyTooLarge: the request body exceeds the server's byte
	// limit.
	CodeBodyTooLarge = "body_too_large"
	// CodeOverloaded: admission would exceed the server's queued-job
	// bound; retry after Error.RetryAfterSec.
	CodeOverloaded = "overloaded"
	// CodeNotFound: no such sweep (or unknown route).
	CodeNotFound = "not_found"
	// CodeGone: the sweep existed but its results were evicted by the
	// retention window; resuming a cursor on it cannot succeed.
	// Matches the trace-tail 410 contract.
	CodeGone = "gone"
	// CodeUnsupportedVersion: the envelope's "v" is not the version
	// this build speaks.
	CodeUnsupportedVersion = "unsupported_version"
	// CodeInternal: the sweep failed while executing.
	CodeInternal = "internal"
)

// Error is the structured error body every non-2xx pwfserve response
// carries.
type Error struct {
	// V is the schema version.
	V int `json:"v"`
	// Code is a stable, machine-matchable error class; one of the
	// Code* constants.
	Code string `json:"code"`
	// Message is the human-readable detail.
	Message string `json:"message"`
	// RetryAfterSec, when positive, mirrors the Retry-After header of
	// 429 responses.
	RetryAfterSec int `json:"retry_after_sec,omitempty"`
}

// Error implements the error interface.
func (e Error) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// MarshalGrid renders the canonical single-line encoding of a grid.
func MarshalGrid(g Grid) ([]byte, error) { return json.Marshal(g) }

// MarshalResult renders the canonical single-line encoding of a
// result.
func MarshalResult(r Result) ([]byte, error) { return json.Marshal(r) }

// MarshalError renders the canonical single-line encoding of a
// structured error.
func MarshalError(e Error) ([]byte, error) { return json.Marshal(e) }

// DecodeGrid strictly decodes one grid submission from r: unknown
// fields, trailing data, wrong versions, and invalid jobs are all
// errors.
func DecodeGrid(r io.Reader) (Grid, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var g Grid
	if err := dec.Decode(&g); err != nil {
		return Grid{}, fmt.Errorf("api: decode grid: %w", err)
	}
	if dec.More() {
		return Grid{}, errors.New("api: trailing data after grid")
	}
	if err := g.Validate(); err != nil {
		return Grid{}, err
	}
	return g, nil
}

// WriteResultLine writes one canonical NDJSON result line (the
// encoding plus a newline).
func WriteResultLine(w io.Writer, r Result) error {
	b, err := MarshalResult(r)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadResults parses an NDJSON result stream (as produced by
// WriteResultLine, pwfsim -json, or the pwfserve results endpoint),
// preserving order and rejecting wrong-version lines. Blank lines are
// skipped.
func ReadResults(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var res Result
		if err := json.Unmarshal(raw, &res); err != nil {
			return nil, fmt.Errorf("api: result line %d: %w", line, err)
		}
		if res.V != Version {
			return nil, fmt.Errorf("%w: result line %d has v=%d (this build speaks v%d)",
				ErrVersion, line, res.V, Version)
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("api: read results: %w", err)
	}
	return out, nil
}
