package api

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"pwf/internal/rng"
	"pwf/internal/sweep"
)

var update = flag.Bool("update", false, "rewrite golden files")

func sampleGrid() Grid {
	return Grid{
		V:    Version,
		Seed: 42,
		Jobs: []Job{
			{
				Workload:       Workload{Kind: sweep.SCU, S: 1},
				N:              4,
				Steps:          20000,
				WarmupFraction: 0.1,
				Exact:          true,
				Label:          "scu-point",
			},
			{
				Workload: Workload{Kind: sweep.FetchInc},
				N:        3,
				Sched:    SchedulerSpec{Kind: sweep.SchedSticky, Rho: 0.5},
				Steps:    20000,
			},
			{
				Workload: Workload{Kind: sweep.Stack, PoolSize: 16},
				N:        2,
				Sched:    SchedulerSpec{Kind: sweep.SchedLottery, Tickets: []int{1, 3}},
				Steps:    10000,
				Crash:    1,
			},
		},
	}
}

func TestGridRoundTrip(t *testing.T) {
	g := sampleGrid()
	b, err := MarshalGrid(g)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.ContainsRune(b, '\n') {
		t.Error("canonical grid encoding is not single-line")
	}
	back, err := DecodeGrid(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, g) {
		t.Errorf("round trip:\n got %+v\nwant %+v", back, g)
	}
}

func TestJobProjectionRoundTrip(t *testing.T) {
	for i, j := range sampleGrid().Jobs {
		if got := JobFromSweep(j.Sweep()); !reflect.DeepEqual(got, j) {
			t.Errorf("job %d: %+v != %+v", i, got, j)
		}
	}
}

func TestDecodeGridStrictness(t *testing.T) {
	for _, tc := range []struct {
		name, in, errWant string
	}{
		{"unknown field", `{"v":1,"seed":1,"jobs":[{"workload":{"kind":"scu"},"n":2,"steps":100,"warmup_fraction":0,"stepz":5}]}`, "unknown field"},
		{"wrong version", `{"v":2,"seed":1,"jobs":[{"workload":{"kind":"scu"},"n":2,"steps":100,"warmup_fraction":0}]}`, "unsupported schema version"},
		{"zero version", `{"seed":1,"jobs":[{"workload":{"kind":"scu"},"n":2,"steps":100,"warmup_fraction":0}]}`, "unsupported schema version"},
		{"no jobs", `{"v":1,"seed":1,"jobs":[]}`, "no jobs"},
		{"trailing data", `{"v":1,"seed":1,"jobs":[{"workload":{"kind":"scu"},"n":2,"steps":100,"warmup_fraction":0}]} {"more":1}`, "trailing data"},
		{"invalid job", `{"v":1,"seed":1,"jobs":[{"workload":{"kind":"scu"},"n":0,"steps":100,"warmup_fraction":0}]}`, "n >= 1"},
		{"bad sched string", `{"v":1,"seed":1,"jobs":[{"workload":{"kind":"scu"},"n":2,"sched":"sticky:9","steps":100,"warmup_fraction":0}]}`, "out of [0, 1)"},
		{"not json", `nope`, "decode grid"},
	} {
		_, err := DecodeGrid(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("%s: decoded without error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.errWant) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.errWant)
		}
	}
}

// The scheduler grammar string and the object form decode to the same
// grid.
func TestGridSchedulerStringForm(t *testing.T) {
	obj := `{"v":1,"seed":7,"jobs":[{"workload":{"kind":"scu","s":1},"n":2,"sched":{"kind":"sticky","rho":0.25},"steps":100,"warmup_fraction":0}]}`
	str := `{"v":1,"seed":7,"jobs":[{"workload":{"kind":"scu","s":1},"n":2,"sched":"sticky:0.25","steps":100,"warmup_fraction":0}]}`
	a, err := DecodeGrid(strings.NewReader(obj))
	if err != nil {
		t.Fatal(err)
	}
	b, err := DecodeGrid(strings.NewReader(str))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("object form %+v != string form %+v", a, b)
	}
}

func TestResultStreamRoundTrip(t *testing.T) {
	g := sampleGrid()
	jobs := g.SweepJobs()
	results, err := sweep.Run(sweep.Config{Jobs: jobs, Seed: g.Seed})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	want := make([]Result, len(results))
	for i, r := range results {
		want[i] = ResultFromSweep(r)
		if err := WriteResultLine(&buf, want[i]); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadResults(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("stream round trip:\n got %+v\nwant %+v", got, want)
	}
	if got[0].Seed != rng.Stream(g.Seed, 0) {
		t.Errorf("result 0 seed %d is not stream(master, 0)", got[0].Seed)
	}
}

// The canonical result encoding is deterministic: two runs of the
// same grid and seed produce byte-identical lines, regardless of
// worker count — the property the server's end-to-end test leans on.
func TestCanonicalResultBytesDeterministic(t *testing.T) {
	g := sampleGrid()
	render := func(workers int) string {
		results, err := sweep.Run(sweep.Config{Jobs: g.SweepJobs(), Seed: g.Seed, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, r := range results {
			if err := WriteResultLine(&buf, ResultFromSweep(r)); err != nil {
				t.Fatal(err)
			}
		}
		return buf.String()
	}
	if a, b := render(1), render(4); a != b {
		t.Errorf("canonical bytes differ across worker counts:\n%s\n---\n%s", a, b)
	}
}

func TestReadResultsRejectsWrongVersion(t *testing.T) {
	line := `{"v":2,"index":0,"job":{"workload":{"kind":"scu"},"n":2,"sched":{},"steps":10,"warmup_fraction":0},"seed":1,"latencies":{"system":1,"individual":1,"completion_rate":1,"fairness":1,"completions":1},"theta":0.5}`
	if _, err := ReadResults(strings.NewReader(line + "\n")); err == nil {
		t.Error("wrong-version result line accepted")
	}
}

// Golden files pin the canonical v1 bytes: if these tests fail, the
// wire format changed and Version must be bumped (see the package
// compatibility policy).
func TestGoldenGrid(t *testing.T) {
	got, err := MarshalGrid(sampleGrid())
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	checkGolden(t, "grid_v1.json", got)
}

func TestGoldenResult(t *testing.T) {
	g := sampleGrid()
	results, err := sweep.Run(sweep.Config{Jobs: g.SweepJobs(), Seed: g.Seed})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, r := range results {
		if err := WriteResultLine(&buf, ResultFromSweep(r)); err != nil {
			t.Fatal(err)
		}
	}
	checkGolden(t, "results_v1.ndjson", buf.Bytes())
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/api -update` to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden bytes.\n got: %s\nwant: %s\nIf the schema change is intentional, bump api.Version and regenerate with -update.",
			name, got, want)
	}
}
