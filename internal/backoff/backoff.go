// Package backoff provides contention management for the lock-free
// structures in internal/native. The paper's conflict model predicts
// that bare CAS retry loops collapse under contention: every failed
// attempt burns shared-memory steps that another process's success
// invalidated. A backoff strategy spends local (unshared) time after a
// failure instead, widening the window in which some process completes
// — the mechanism by which randomized backoff restores the
// practically-wait-free behaviour the paper measures.
//
// Strategies pace retries, they never change what a structure does on
// the shared memory: a structure with a nil Strategy is step-for-step
// identical to one built before this package existed.
//
// All randomness is drawn from deterministic splitmix64 streams
// (internal/rng), seeded explicitly, so experiment runs remain
// reproducible from a single seed.
package backoff

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"

	"pwf/internal/rng"
)

// Strategy paces the retry loop of a lock-free operation.
// Implementations must be safe for concurrent use: one Strategy value
// is shared by every goroutine using a structure, and both methods are
// called from the structure's hot path.
type Strategy interface {
	// Pause is called after the attempt-th consecutive failed attempt
	// (1-based) of one operation. It spends only local time — no
	// shared-memory steps — before the caller retries.
	Pause(attempt uint64)
	// Succeeded reports that an operation completed, letting adaptive
	// strategies decay their contention estimate. Stateless strategies
	// ignore it.
	Succeeded()
}

// SpinWait burns roughly iters units of local CPU time, yielding the
// processor periodically so an oversubscribed machine (more spinning
// goroutines than cores) still makes global progress. One unit is a
// handful of ALU operations — a few nanoseconds on current hardware.
func SpinWait(iters uint64) {
	var acc uint64
	for i := uint64(0); i < iters; i++ {
		acc += i
		if i&0xfff == 0xfff {
			runtime.Gosched()
		}
	}
	// Consume acc so the loop cannot be discarded; the branch is never
	// taken (acc is a triangular number, ^uint64(0) is not).
	if acc == ^uint64(0) {
		runtime.Gosched()
	}
}

// None is the explicit do-nothing strategy. Structures treat a nil
// Strategy the same way; None exists so a Strategy-typed variable can
// say "no backoff" without a nil check at the configuration layer.
type None struct{}

// Pause implements Strategy as a no-op.
func (None) Pause(uint64) {}

// Succeeded implements Strategy as a no-op.
func (None) Succeeded() {}

// Spin pauses a fixed number of spin units after every failure,
// regardless of the attempt index — the simplest nontrivial strategy,
// useful as an ablation baseline against Exp.
type Spin struct {
	// Iters is the spin-unit count per pause.
	Iters uint64
}

// Pause implements Strategy.
func (s Spin) Pause(uint64) { SpinWait(s.Iters) }

// Succeeded implements Strategy.
func (Spin) Succeeded() {}

// Exp is exponential backoff with randomized, capped, full jitter: the
// k-th consecutive failure pauses a uniformly random duration in
// [0, min(base<<(k-1), cap)] spin units. Full jitter desynchronizes
// the retry herd — two processes that failed together retry apart —
// which is what breaks the repeated-conflict pattern of the paper's
// worst case.
type Exp struct {
	base, cap uint64
	jitter    *rng.Atomic
}

// DefaultBase and DefaultCap are the spin-unit parameters used when a
// spec does not override them, sized so the first pause is shorter
// than one uncontended operation and the largest stays well under a
// scheduler quantum.
const (
	DefaultBase uint64 = 16
	DefaultCap  uint64 = 1 << 14
)

// NewExp returns an Exp strategy with the given base and cap (spin
// units; zero values fall back to DefaultBase/DefaultCap) drawing
// jitter from a deterministic stream seeded at seed.
func NewExp(base, cap uint64, seed uint64) *Exp {
	if base == 0 {
		base = DefaultBase
	}
	if cap == 0 {
		cap = DefaultCap
	}
	if cap < base {
		cap = base
	}
	return &Exp{base: base, cap: cap, jitter: rng.NewAtomic(seed)}
}

// Pause implements Strategy.
func (e *Exp) Pause(attempt uint64) {
	SpinWait(e.jitter.Bounded(e.limit(attempt) + 1))
}

// limit returns min(base << (attempt-1), cap), guarding the shift
// against overflow.
func (e *Exp) limit(attempt uint64) uint64 {
	if attempt == 0 {
		attempt = 1
	}
	shift := attempt - 1
	if shift >= 64 || e.base<<shift>>shift != e.base || e.base<<shift > e.cap {
		return e.cap
	}
	return e.base << shift
}

// Succeeded implements Strategy.
func (*Exp) Succeeded() {}

// Adaptive estimates contention from recent outcomes instead of from
// the current operation's attempt index: failures anywhere raise a
// shared level, successes lower it, and every pause draws full jitter
// from [0, min(base<<level, cap)]. A thread arriving at an already-hot
// structure therefore backs off on its first failure, and the
// structure cools down collectively once conflicts stop. Both updates
// are a single CAS attempt — best-effort, never retried — so the
// strategy itself stays wait-free.
type Adaptive struct {
	level     atomic.Int64
	maxLevel  int64
	base, cap uint64
	jitter    *rng.Atomic
}

// NewAdaptive returns an Adaptive strategy with the given spin-unit
// parameters (zero values fall back to DefaultBase/DefaultCap).
func NewAdaptive(base, cap uint64, seed uint64) *Adaptive {
	if base == 0 {
		base = DefaultBase
	}
	if cap == 0 {
		cap = DefaultCap
	}
	if cap < base {
		cap = base
	}
	max := int64(0)
	for base<<max < cap && max < 62 {
		max++
	}
	return &Adaptive{maxLevel: max, base: base, cap: cap, jitter: rng.NewAtomic(seed)}
}

// Pause implements Strategy.
func (a *Adaptive) Pause(uint64) {
	l := a.level.Load()
	if l < a.maxLevel {
		a.level.CompareAndSwap(l, l+1) // best-effort raise
	}
	limit := a.base << uint64(l)
	if limit > a.cap {
		limit = a.cap
	}
	SpinWait(a.jitter.Bounded(limit + 1))
}

// Succeeded implements Strategy.
func (a *Adaptive) Succeeded() {
	l := a.level.Load()
	if l > 0 {
		a.level.CompareAndSwap(l, l-1) // best-effort decay
	}
}

// Level exposes the current contention estimate for tests and metrics.
func (a *Adaptive) Level() int64 { return a.level.Load() }

// Parse builds a Strategy from its CLI spec. Recognised forms:
//
//	none
//	spin[:iters]
//	exp[:base[:cap]]
//	adaptive[:base[:cap]]
//
// Numeric fields are spin units. "none" yields a nil Strategy, which
// structures treat as no backoff at all (the byte-identical default
// path). seed feeds the jitter streams of exp and adaptive.
func Parse(spec string, seed uint64) (Strategy, error) {
	parts := strings.Split(spec, ":")
	nums := make([]uint64, 0, 2)
	for _, p := range parts[1:] {
		v, err := strconv.ParseUint(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("backoff: bad parameter %q in spec %q", p, spec)
		}
		nums = append(nums, v)
	}
	arg := func(i int, def uint64) uint64 {
		if i < len(nums) {
			return nums[i]
		}
		return def
	}
	switch parts[0] {
	case "none", "":
		if len(nums) > 0 {
			return nil, fmt.Errorf("backoff: %q takes no parameters", parts[0])
		}
		return nil, nil
	case "spin":
		if len(nums) > 1 {
			return nil, fmt.Errorf("backoff: spin takes at most one parameter, got %q", spec)
		}
		return Spin{Iters: arg(0, DefaultBase)}, nil
	case "exp":
		if len(nums) > 2 {
			return nil, fmt.Errorf("backoff: exp takes at most two parameters, got %q", spec)
		}
		return NewExp(arg(0, DefaultBase), arg(1, DefaultCap), seed), nil
	case "adaptive":
		if len(nums) > 2 {
			return nil, fmt.Errorf("backoff: adaptive takes at most two parameters, got %q", spec)
		}
		return NewAdaptive(arg(0, DefaultBase), arg(1, DefaultCap), seed), nil
	}
	return nil, fmt.Errorf("backoff: unknown strategy %q (want none, spin, exp, adaptive)", parts[0])
}
