package backoff

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestParseTable(t *testing.T) {
	tests := []struct {
		spec    string
		want    string // type name, "" for nil strategy
		wantErr bool
	}{
		{spec: "none", want: ""},
		{spec: "", want: ""},
		{spec: "spin", want: "Spin"},
		{spec: "spin:64", want: "Spin"},
		{spec: "exp", want: "Exp"},
		{spec: "exp:8", want: "Exp"},
		{spec: "exp:8:1024", want: "Exp"},
		{spec: "adaptive", want: "Adaptive"},
		{spec: "adaptive:4:512", want: "Adaptive"},
		{spec: "none:1", wantErr: true},
		{spec: "spin:1:2", wantErr: true},
		{spec: "exp:1:2:3", wantErr: true},
		{spec: "exp:x", wantErr: true},
		{spec: "exp:-1", wantErr: true},
		{spec: "bogus", wantErr: true},
	}
	for _, tt := range tests {
		s, err := Parse(tt.spec, 1)
		if tt.wantErr {
			if err == nil {
				t.Errorf("Parse(%q): nil error", tt.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", tt.spec, err)
			continue
		}
		got := ""
		switch s.(type) {
		case nil:
		case Spin:
			got = "Spin"
		case *Exp:
			got = "Exp"
		case *Adaptive:
			got = "Adaptive"
		default:
			got = "?"
		}
		if got != tt.want {
			t.Errorf("Parse(%q) = %s, want %s", tt.spec, got, tt.want)
		}
	}
}

func TestExpLimitGrowsAndCaps(t *testing.T) {
	e := NewExp(16, 1024, 7)
	wants := []struct {
		attempt uint64
		limit   uint64
	}{
		{1, 16}, {2, 32}, {3, 64}, {7, 1024}, {8, 1024},
		{63, 1024}, {64, 1024}, {200, 1024}, {0, 16},
	}
	for _, w := range wants {
		if got := e.limit(w.attempt); got != w.limit {
			t.Errorf("limit(%d) = %d, want %d", w.attempt, got, w.limit)
		}
	}
}

func TestExpZeroParamsUseDefaults(t *testing.T) {
	e := NewExp(0, 0, 1)
	if e.base != DefaultBase || e.cap != DefaultCap {
		t.Fatalf("defaults not applied: base=%d cap=%d", e.base, e.cap)
	}
	// cap below base is raised to base.
	e = NewExp(100, 10, 1)
	if e.cap != 100 {
		t.Fatalf("cap %d, want clamped to base 100", e.cap)
	}
}

func TestAdaptiveLevelRisesAndDecays(t *testing.T) {
	a := NewAdaptive(1, 8, 1)
	if a.Level() != 0 {
		t.Fatalf("fresh level %d", a.Level())
	}
	for i := 0; i < 100; i++ {
		a.Pause(1)
	}
	if a.Level() != a.maxLevel {
		t.Fatalf("level after 100 failures = %d, want max %d", a.Level(), a.maxLevel)
	}
	for i := 0; i < 100; i++ {
		a.Succeeded()
	}
	if a.Level() != 0 {
		t.Fatalf("level after 100 successes = %d, want 0", a.Level())
	}
}

// TestStrategiesConcurrent hammers every strategy from many
// goroutines; under -race this checks the shared jitter streams and
// the adaptive level updates are properly synchronized.
func TestStrategiesConcurrent(t *testing.T) {
	for _, s := range []Strategy{None{}, Spin{Iters: 4}, NewExp(2, 16, 3), NewAdaptive(2, 16, 3)} {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := uint64(1); i <= 200; i++ {
					s.Pause(i % 5)
					if i%3 == 0 {
						s.Succeeded()
					}
				}
			}()
		}
		wg.Wait()
	}
}

func TestSpinWaitReturns(t *testing.T) {
	SpinWait(0)
	SpinWait(1 << 13) // crosses the Gosched stride
}

func TestParseErrorsName(t *testing.T) {
	_, err := Parse("warp", 1)
	if err == nil || !strings.Contains(err.Error(), "warp") {
		t.Fatalf("error %v should name the bad strategy", err)
	}
	if errors.Is(err, nil) {
		t.Fatal("impossible")
	}
}
