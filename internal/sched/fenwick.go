package sched

// fenwick is a binary-indexed tree over non-negative integer
// frequencies, the structure behind the Lottery scheduler's O(log n)
// draws: prefix sums, point updates, and the inverse-CDF search
// ("find the process holding the winning ticket") are all O(log n),
// and construction from an initial frequency vector is O(n).
//
// Indices are 0-based at the API boundary; the tree array is 1-based
// internally as usual.
type fenwick struct {
	tree []int64
}

// newFenwick returns a tree over n all-zero frequencies.
func newFenwick(n int) *fenwick {
	return &fenwick{tree: make([]int64, n+1)}
}

// n returns the number of indexed frequencies.
func (f *fenwick) n() int { return len(f.tree) - 1 }

// init resets the tree to the given frequencies in O(n).
func (f *fenwick) init(vals []int64) {
	n := len(vals)
	if len(f.tree) != n+1 {
		f.tree = make([]int64, n+1)
	} else {
		for i := range f.tree {
			f.tree[i] = 0
		}
	}
	for i := 1; i <= n; i++ {
		f.tree[i] += vals[i-1]
		if j := i + (i & -i); j <= n {
			f.tree[j] += f.tree[i]
		}
	}
}

// add adds delta to the frequency at index i.
func (f *fenwick) add(i int, delta int64) {
	for j := i + 1; j < len(f.tree); j += j & -j {
		f.tree[j] += delta
	}
}

// prefix returns the sum of frequencies at indices [0, i).
func (f *fenwick) prefix(i int) int64 {
	var s int64
	for ; i > 0; i -= i & -i {
		s += f.tree[i]
	}
	return s
}

// find returns the smallest index i with prefix(i+1) > k — the index
// owning the k-th unit of cumulative mass. With ticket counts as
// frequencies this maps a winning ticket to its holder, skipping
// zero-frequency (crashed) indices, exactly as a linear scan over the
// per-process cumulative totals would. The caller must ensure
// 0 <= k < total mass.
func (f *fenwick) find(k int64) int {
	n := f.n()
	pos := 0
	bit := 1
	for bit<<1 <= n {
		bit <<= 1
	}
	for ; bit > 0; bit >>= 1 {
		if next := pos + bit; next <= n && f.tree[next] <= k {
			k -= f.tree[next]
			pos = next
		}
	}
	return pos
}

// findBatch runs find for every ks[i], writing the result to pos[i]
// and consuming ks as scratch. The descents advance level by level
// across the whole batch instead of one full descent at a time: a
// lone descent is a chain of loads each gated on a coin-flip
// comparison, so it serialises on mispredicts, while the level-major
// order makes the loads of a pass independent and the take/skip
// decision a pair of conditional moves. Results are identical to
// calling find per element.
func (f *fenwick) findBatch(ks []int64, pos []int32) {
	n := f.n()
	bit := 1
	for bit<<1 <= n {
		bit <<= 1
	}
	for i := range pos {
		pos[i] = 0
	}
	tree := f.tree
	for ; bit > 0; bit >>= 1 {
		for i := range ks {
			p := int(pos[i])
			next := p + bit
			if next <= n {
				v := tree[next]
				k := ks[i]
				np, nk := next, k-v
				if v > k {
					np, nk = p, k
				}
				pos[i] = int32(np)
				ks[i] = nk
			}
		}
	}
}
