package sched

import (
	"testing"
	"testing/quick"

	"pwf/internal/rng"
)

func TestFenwickPrefixAndAdd(t *testing.T) {
	f := newFenwick(5)
	f.init([]int64{3, 0, 2, 7, 1})
	wantPrefix := []int64{0, 3, 3, 5, 12, 13}
	for i, want := range wantPrefix {
		if got := f.prefix(i); got != want {
			t.Errorf("prefix(%d) = %d, want %d", i, got, want)
		}
	}
	f.add(1, 4)
	f.add(3, -7)
	if got := f.prefix(5); got != 10 {
		t.Errorf("total after updates = %d, want 10", got)
	}
	if got := f.prefix(2); got != 7 {
		t.Errorf("prefix(2) after add = %d, want 7", got)
	}
}

func TestFenwickFindMatchesLinearScan(t *testing.T) {
	// Property: for random non-negative frequency vectors (zeros
	// included, as crashed processes produce) and every k below the
	// total, find(k) equals the first index whose cumulative sum
	// exceeds k.
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		src := rng.New(seed)
		vals := make([]int64, n)
		var total int64
		for i := range vals {
			vals[i] = int64(src.Intn(5)) // 0..4, zeros common
			total += vals[i]
		}
		if total == 0 {
			vals[n-1] = 1
			total = 1
		}
		fen := newFenwick(n)
		fen.init(vals)
		for k := int64(0); k < total; k++ {
			want := 0
			acc := vals[0]
			for k >= acc {
				want++
				acc += vals[want]
			}
			if got := fen.find(k); got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFenwickInitReuses(t *testing.T) {
	f := newFenwick(3)
	f.init([]int64{1, 2, 3})
	f.init([]int64{5, 5, 5})
	if got := f.prefix(3); got != 15 {
		t.Errorf("total after re-init = %d, want 15", got)
	}
	if got := f.find(9); got != 1 {
		t.Errorf("find(9) = %d, want 1", got)
	}
}

func TestFenwickSingleIndex(t *testing.T) {
	f := newFenwick(1)
	f.init([]int64{4})
	for k := int64(0); k < 4; k++ {
		if got := f.find(k); got != 0 {
			t.Errorf("find(%d) = %d, want 0", k, got)
		}
	}
}
