package sched

import (
	"errors"

	"pwf/internal/rng"
)

// aliasTable draws from a fixed discrete distribution over an
// arbitrary set of process ids in O(1) per draw, using Walker's alias
// method in Vose's numerically stable formulation. Construction is
// O(k) for k entries, so a table amortizes after a handful of draws —
// the schedulers rebuild only when the distribution itself changes
// (a crash), never per step.
//
// The table is a flat pair of arrays: slot i accepts its own id with
// probability prob[i] and otherwise defers to the id in its alias
// slot. A draw is one bounded-uniform pick plus one float compare,
// independent of k.
//
// The zero value is empty; call build before draw. All internal
// slices are reused across builds, so rebuilding on crash allocates
// nothing once the table has reached its high-water size.
type aliasTable struct {
	pids  []int32   // slot -> process id
	prob  []float64 // slot -> acceptance probability
	alias []int32   // slot -> fallback slot

	// Build scratch, reused across rebuilds.
	scaled []float64
	small  []int32
	large  []int32
}

// errNoMass is returned when a table is built with no positive weight.
var errNoMass = errors.New("sched: alias table has no positive mass")

// build (re)constructs the table for the distribution assigning
// weights[i] to pids[i]. Weights must be non-negative with a positive
// sum; ids and weights must have equal length. The input slices are
// not retained.
func (t *aliasTable) build(pids []int32, weights []float64) error {
	k := len(pids)
	if k == 0 || len(weights) != k {
		return errors.New("sched: alias table needs matching non-empty ids and weights")
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			return errors.New("sched: alias table weight is negative")
		}
		total += w
	}
	if total <= 0 {
		return errNoMass
	}

	t.pids = append(t.pids[:0], pids...)
	t.prob = grow(t.prob, k)
	t.alias = growInt32(t.alias, k)
	t.scaled = grow(t.scaled, k)
	t.small = t.small[:0]
	t.large = t.large[:0]

	// Scale to mean 1 and partition into under- and over-full slots.
	scale := float64(k) / total
	for i, w := range weights {
		t.scaled[i] = w * scale
		if t.scaled[i] < 1 {
			t.small = append(t.small, int32(i))
		} else {
			t.large = append(t.large, int32(i))
		}
	}

	// Pair each under-full slot with an over-full donor. The donor's
	// residual mass reclassifies it; floating-point drift can strand a
	// few slots in either stack at the end, and those are exactly the
	// slots whose scaled weight is 1 up to rounding.
	for len(t.small) > 0 && len(t.large) > 0 {
		s := t.small[len(t.small)-1]
		t.small = t.small[:len(t.small)-1]
		l := t.large[len(t.large)-1]

		t.prob[s] = t.scaled[s]
		t.alias[s] = l
		t.scaled[l] -= 1 - t.scaled[s]
		if t.scaled[l] < 1 {
			t.large = t.large[:len(t.large)-1]
			t.small = append(t.small, l)
		}
	}
	for _, i := range t.small {
		t.prob[i] = 1
		t.alias[i] = i
	}
	for _, i := range t.large {
		t.prob[i] = 1
		t.alias[i] = i
	}
	return nil
}

// size returns the number of slots (the support size).
func (t *aliasTable) size() int { return len(t.pids) }

// draw returns a process id distributed per the built table: O(1),
// two rng draws, no allocation.
func (t *aliasTable) draw(src *rng.Source) int {
	slot := src.Intn(len(t.pids))
	if src.Float64() < t.prob[slot] {
		return int(t.pids[slot])
	}
	return int(t.pids[t.alias[slot]])
}

// grow returns s resized to length n, reusing capacity.
func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// growInt32 is grow for []int32.
func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}
