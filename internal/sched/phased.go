package sched

import (
	"errors"
	"fmt"

	"pwf/internal/rng"
)

// Phased is a time-varying stochastic scheduler: Definition 1 lets
// the distribution Π_τ change at every step, and Phased realises a
// simple instance — the schedule cycles through a sequence of
// weighted phases, each lasting a fixed number of steps. It models
// workload shifts (e.g. a box that favours half the threads during a
// load spike and then flips). The threshold θ is the worst-case
// minimum probability across all phases, so the scheduler remains
// stochastic as long as every weight is positive.
//
// Each phase — each row of the cyclic modulation — owns a Walker
// alias table over the active processes, so the per-step draw is O(1)
// regardless of n and of the number of phases. The tables depend only
// on the phase weights restricted to A_τ and are rebuilt exactly when
// a process crashes.
type Phased struct {
	src    *rng.Source
	phases []Phase
	active activeSet
	idx    int    // current phase
	left   uint64 // steps remaining in the current phase
	theta  float64

	tables []aliasTable
	wBuf   []float64 // rebuild scratch

	scratch []float64 // NextNaive scratch
}

// Phase is one segment of a Phased schedule.
type Phase struct {
	// Weights gives each process's scheduling weight in this phase;
	// all must be strictly positive.
	Weights []float64
	// Steps is the phase length; must be >= 1.
	Steps uint64
}

var (
	_ Scheduler = (*Phased)(nil)
	_ Crasher   = (*Phased)(nil)
)

// NewPhased builds a time-varying scheduler cycling through the given
// phases over n processes.
func NewPhased(n int, phases []Phase, src *rng.Source) (*Phased, error) {
	if n < 1 {
		return nil, ErrNoProcesses
	}
	if src == nil {
		return nil, errors.New("sched: nil rng source")
	}
	if len(phases) == 0 {
		return nil, errors.New("sched: need at least one phase")
	}
	theta := 1.0
	cp := make([]Phase, len(phases))
	for i, ph := range phases {
		if len(ph.Weights) != n {
			return nil, fmt.Errorf("sched: phase %d has %d weights for %d processes",
				i, len(ph.Weights), n)
		}
		if ph.Steps < 1 {
			return nil, fmt.Errorf("sched: phase %d has zero length", i)
		}
		var total float64
		minW := ph.Weights[0]
		ws := make([]float64, n)
		for j, w := range ph.Weights {
			if w <= 0 {
				return nil, fmt.Errorf("sched: phase %d weight %d is not strictly positive", i, j)
			}
			ws[j] = w
			total += w
			if w < minW {
				minW = w
			}
		}
		if t := minW / total; t < theta {
			theta = t
		}
		cp[i] = Phase{Weights: ws, Steps: ph.Steps}
	}
	p := &Phased{
		src:     src,
		phases:  cp,
		active:  newActiveSet(n),
		left:    cp[0].Steps,
		theta:   theta,
		tables:  make([]aliasTable, len(cp)),
		scratch: make([]float64, n),
	}
	if err := p.rebuild(); err != nil {
		return nil, err
	}
	return p, nil
}

// rebuild reconstructs every phase's alias table over the currently
// active processes; called at construction and after every crash.
func (p *Phased) rebuild() error {
	for i := range p.phases {
		p.wBuf = grow(p.wBuf, len(p.active.ids))
		for j, pid := range p.active.ids {
			p.wBuf[j] = p.phases[i].Weights[pid]
		}
		if err := p.tables[i].build(p.active.ids, p.wBuf); err != nil {
			return err
		}
	}
	return nil
}

// Next implements Scheduler in O(1) via the current phase's alias
// table.
func (p *Phased) Next() (int, error) {
	if p.active.correct() == 0 {
		return 0, ErrAllCrashed
	}
	if p.left == 0 {
		p.idx = (p.idx + 1) % len(p.phases)
		p.left = p.phases[p.idx].Steps
	}
	p.left--
	return p.tables[p.idx].draw(p.src), nil
}

// N implements Scheduler.
func (p *Phased) N() int { return len(p.active.alive) }

// Threshold implements Scheduler: the worst-case minimum probability
// over all phases (crash-free).
func (p *Phased) Threshold() float64 { return p.theta }

// CurrentPhase returns the index of the phase governing the next step.
func (p *Phased) CurrentPhase() int { return p.idx }

// Crash implements Crasher, rebuilding every phase table over the
// shrunken active set.
func (p *Phased) Crash(pid int) error {
	if err := p.active.crash(pid); err != nil {
		return err
	}
	return p.rebuild()
}

// Correct implements Crasher.
func (p *Phased) Correct(pid int) bool { return p.active.isCorrect(pid) }

// NumCorrect implements Crasher.
func (p *Phased) NumCorrect() int { return p.active.correct() }
