package sched

import (
	"fmt"
	"testing"

	"pwf/internal/rng"
)

// batchCase wires one scheduler kind's scalar and batched forms for
// the replica-equivalence tests.
type batchCase struct {
	name    string
	scalar  func(n int, seed uint64) (Scheduler, error)
	batched func(n int, seeds []uint64) (BatchDrawer, error)
}

func batchCases() []batchCase {
	weights := func(n int) []float64 {
		ws := make([]float64, n)
		for i := range ws {
			ws[i] = float64(i%5 + 1)
		}
		return ws
	}
	tickets := func(n int) []int {
		ts := make([]int, n)
		for i := range ts {
			ts[i] = i%7 + 1
		}
		return ts
	}
	phases := func(n int) []Phase {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = float64(i + 1)
			b[i] = float64(n - i)
		}
		return []Phase{{Weights: a, Steps: 13}, {Weights: b, Steps: 7}}
	}
	return []batchCase{
		{
			"uniform",
			func(n int, seed uint64) (Scheduler, error) { return NewUniform(n, rng.New(seed)) },
			func(n int, seeds []uint64) (BatchDrawer, error) { return NewUniformBatch(n, seeds) },
		},
		{
			"sticky",
			func(n int, seed uint64) (Scheduler, error) { return NewSticky(n, 0.7, rng.New(seed)) },
			func(n int, seeds []uint64) (BatchDrawer, error) { return NewStickyBatch(n, 0.7, seeds) },
		},
		{
			"weighted",
			func(n int, seed uint64) (Scheduler, error) { return NewWeighted(weights(n), rng.New(seed)) },
			func(n int, seeds []uint64) (BatchDrawer, error) { return NewWeightedBatch(weights(n), seeds) },
		},
		{
			"lottery",
			func(n int, seed uint64) (Scheduler, error) { return NewLottery(tickets(n), rng.New(seed)) },
			func(n int, seeds []uint64) (BatchDrawer, error) { return NewLotteryBatch(tickets(n), seeds) },
		},
		{
			"phased",
			func(n int, seed uint64) (Scheduler, error) { return NewPhased(n, phases(n), rng.New(seed)) },
			func(n int, seeds []uint64) (BatchDrawer, error) { return NewPhasedBatch(n, phases(n), seeds) },
		},
		{
			"roundrobin",
			func(n int, seed uint64) (Scheduler, error) { return NewRoundRobin(n) },
			func(n int, seeds []uint64) (BatchDrawer, error) { return NewRoundRobinBatch(n, len(seeds)) },
		},
		{
			"adversary",
			func(n int, seed uint64) (Scheduler, error) { return NewAdversarial(n, SingleOut(1)) },
			func(n int, seeds []uint64) (BatchDrawer, error) {
				return NewAdversarialBatch(n, len(seeds), SingleOut(1))
			},
		},
	}
}

// TestBatchDrawerMatchesScalar is the batch layer's determinism
// contract: replica r of a batch drawer built from seeds[r] yields
// exactly the pid sequence of the scalar scheduler built with
// rng.New(seeds[r]) — with and without pre-run crashes.
func TestBatchDrawerMatchesScalar(t *testing.T) {
	const (
		n     = 23
		k     = 5
		steps = 4000
	)
	seeds := make([]uint64, k)
	for r := range seeds {
		seeds[r] = uint64(1000 + 77*r)
	}
	for _, tc := range batchCases() {
		for _, crashes := range []int{0, 3} {
			t.Run(fmt.Sprintf("%s/crash=%d", tc.name, crashes), func(t *testing.T) {
				batched, err := tc.batched(n, seeds)
				if err != nil {
					t.Fatal(err)
				}
				scalars := make([]Scheduler, k)
				for r := range scalars {
					if scalars[r], err = tc.scalar(n, seeds[r]); err != nil {
						t.Fatal(err)
					}
				}
				for pid := n - crashes; pid < n; pid++ {
					if bc, ok := batched.(BatchCrasher); ok {
						if err := bc.Crash(pid); err != nil {
							t.Fatal(err)
						}
					} else if crashes > 0 {
						t.Skipf("%s does not support crashes", tc.name)
					}
					for r := range scalars {
						if c, ok := scalars[r].(Crasher); ok {
							if err := c.Crash(pid); err != nil {
								t.Fatal(err)
							}
						}
					}
				}
				if got, want := batched.Threshold(), scalars[0].Threshold(); got != want {
					t.Fatalf("Threshold = %v, scalar %v", got, want)
				}
				if batched.K() != k || batched.N() != n {
					t.Fatalf("K/N = %d/%d, want %d/%d", batched.K(), batched.N(), k, n)
				}
				pids := make([]int32, k)
				for step := 0; step < steps; step++ {
					if err := batched.NextBatch(pids); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					for r := range scalars {
						want, err := scalars[r].Next()
						if err != nil {
							t.Fatalf("scalar step %d replica %d: %v", step, r, err)
						}
						if int(pids[r]) != want {
							t.Fatalf("step %d replica %d: batched pid %d, scalar %d",
								step, r, pids[r], want)
						}
					}
				}
			})
		}
	}
}

// TestBatchDrawerErrors exercises the constructor and draw edges.
func TestBatchDrawerErrors(t *testing.T) {
	if _, err := NewUniformBatch(0, []uint64{1}); err == nil {
		t.Error("NewUniformBatch(0, ...) succeeded")
	}
	if _, err := NewUniformBatch(4, nil); err == nil {
		t.Error("NewUniformBatch with no seeds succeeded")
	}
	if _, err := NewStickyBatch(4, 1.5, []uint64{1}); err == nil {
		t.Error("NewStickyBatch with rho 1.5 succeeded")
	}
	if _, err := NewLotteryBatch([]int{1, 0}, []uint64{1}); err == nil {
		t.Error("NewLotteryBatch with zero ticket succeeded")
	}
	if _, err := NewWeightedBatch([]float64{1, -1}, []uint64{1}); err == nil {
		t.Error("NewWeightedBatch with negative weight succeeded")
	}
	if _, err := NewAdversarialBatch(4, 2, nil); err == nil {
		t.Error("NewAdversarialBatch with nil strategy succeeded")
	}
	u, err := NewUniformBatch(4, []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := u.NextBatch(make([]int32, 3)); err != ErrBatchLen {
		t.Errorf("NextBatch with wrong buffer length: %v, want ErrBatchLen", err)
	}
}
