package sched

import (
	"errors"
	"fmt"
)

// This file preserves the superseded O(n)-per-draw samplers as
// NextNaive methods on the rewritten schedulers. They are the
// reference implementations: the chi-square equivalence tests check
// that the constant-time paths (alias tables, Fenwick tree, dense
// active set) draw from the same distributions under arbitrary crash
// and ticket-transfer sequences, and cmd/pwfbench times them as the
// "before" side of BENCH_sched.json. They share the scheduler's rng
// source and crash state, so a single instance must not interleave
// Next and NextNaive if sequence-level reproducibility matters.

// NextNaive is the superseded Uniform draw: rebuild the list of
// correct ids and index into it, O(n) after any crash.
func (u *Uniform) NextNaive() (int, error) {
	switch u.active.correct() {
	case 0:
		return 0, ErrAllCrashed
	case len(u.active.alive):
		return u.src.Intn(len(u.active.alive)), nil
	}
	u.naiveIDs = u.naiveIDs[:0]
	for pid, ok := range u.active.alive {
		if ok {
			u.naiveIDs = append(u.naiveIDs, pid)
		}
	}
	return u.naiveIDs[u.src.Intn(len(u.naiveIDs))], nil
}

// NextNaive is the superseded Weighted draw: zero the crashed
// entries into a scratch vector and linear-scan rng.Categorical,
// O(n) every step.
func (w *Weighted) NextNaive() (int, error) {
	if w.active.correct() == 0 {
		return 0, ErrAllCrashed
	}
	for pid := range w.weights {
		if w.active.alive[pid] {
			w.scratch[pid] = w.weights[pid]
		} else {
			w.scratch[pid] = 0
		}
	}
	pid, err := w.src.Categorical(w.scratch)
	if err != nil {
		return 0, fmt.Errorf("sched: weighted draw: %w", err)
	}
	return pid, nil
}

// NextNaive is the superseded Lottery draw: recompute the active
// ticket total and linear-scan for the winning ticket's holder, two
// O(n) passes every step. It visits processes in id order, so with
// identical rng states it returns the identical sequence as the
// Fenwick-backed Next.
func (l *Lottery) NextNaive() (int, error) {
	if l.active.correct() == 0 {
		return 0, ErrAllCrashed
	}
	activeTotal := 0
	for pid, t := range l.tickets {
		if l.active.alive[pid] {
			activeTotal += t
		}
	}
	win := l.src.Intn(activeTotal)
	for pid, t := range l.tickets {
		if !l.active.alive[pid] {
			continue
		}
		if win < t {
			return pid, nil
		}
		win -= t
	}
	// Unreachable: the draw is strictly below the active ticket total.
	return 0, errors.New("sched: lottery draw exhausted tickets")
}

// NextNaive is the superseded Sticky draw: the sticky branch is
// unchanged, but the exploration branch rebuilds the correct-id list,
// O(n) after any crash.
func (s *Sticky) NextNaive() (int, error) {
	if s.active.correct() == 0 {
		return 0, ErrAllCrashed
	}
	if s.primed && s.active.alive[s.last] && s.src.Bernoulli(s.rho) {
		return s.last, nil
	}
	var pid int
	if s.active.correct() == len(s.active.alive) {
		pid = s.src.Intn(len(s.active.alive))
	} else {
		s.naiveIDs = s.naiveIDs[:0]
		for id, ok := range s.active.alive {
			if ok {
				s.naiveIDs = append(s.naiveIDs, id)
			}
		}
		pid = s.naiveIDs[s.src.Intn(len(s.naiveIDs))]
	}
	s.last = pid
	s.primed = true
	return pid, nil
}

// NextNaive is the superseded Phased draw: mask the current phase's
// weights by liveness into a scratch vector and linear-scan
// rng.Categorical, O(n) every step.
func (p *Phased) NextNaive() (int, error) {
	if p.active.correct() == 0 {
		return 0, ErrAllCrashed
	}
	if p.left == 0 {
		p.idx = (p.idx + 1) % len(p.phases)
		p.left = p.phases[p.idx].Steps
	}
	p.left--
	weights := p.phases[p.idx].Weights
	for pid := range weights {
		if p.active.alive[pid] {
			p.scratch[pid] = weights[pid]
		} else {
			p.scratch[pid] = 0
		}
	}
	pid, err := p.src.Categorical(p.scratch)
	if err != nil {
		return 0, fmt.Errorf("sched: phased draw: %w", err)
	}
	return pid, nil
}
