package sched

import (
	"errors"
	"fmt"
)

// Replay drives scheduling from a pre-recorded trace of process ids —
// typically a real OS-scheduler interleaving recovered by the native
// atomic-ticket recorder (Appendix A.2). Replaying a recorded
// schedule into the simulator closes the loop between the model and
// the machine: the same algorithm can be evaluated under the uniform
// stochastic scheduler and under the actual schedule the hardware
// produced.
//
// When the trace is exhausted the scheduler either wraps around
// (Loop) or fails with ErrTraceExhausted.
type Replay struct {
	trace []int32
	n     int
	pos   int
	loop  bool
}

var _ Scheduler = (*Replay)(nil)

// ErrTraceExhausted is returned by Next when a non-looping replay has
// consumed its whole trace.
var ErrTraceExhausted = errors.New("sched: replay trace exhausted")

// NewReplay builds a replay scheduler over n processes from a trace
// of process ids. The trace is copied and validated.
func NewReplay(n int, trace []int32, loop bool) (*Replay, error) {
	if n < 1 {
		return nil, ErrNoProcesses
	}
	if len(trace) == 0 {
		return nil, errors.New("sched: empty replay trace")
	}
	cp := make([]int32, len(trace))
	for i, pid := range trace {
		if pid < 0 || int(pid) >= n {
			return nil, fmt.Errorf("%w: trace[%d] = %d of %d", ErrBadProcess, i, pid, n)
		}
		cp[i] = pid
	}
	return &Replay{trace: cp, n: n, loop: loop}, nil
}

// Next implements Scheduler.
func (r *Replay) Next() (int, error) {
	if r.pos == len(r.trace) {
		if !r.loop {
			return 0, ErrTraceExhausted
		}
		r.pos = 0
	}
	pid := int(r.trace[r.pos])
	r.pos++
	return pid, nil
}

// N implements Scheduler.
func (r *Replay) N() int { return r.n }

// Threshold implements Scheduler. A fixed trace carries no
// probabilistic guarantee.
func (r *Replay) Threshold() float64 { return 0 }

// Remaining returns how many trace entries are left before exhaustion
// (or before the next wrap when looping).
func (r *Replay) Remaining() int { return len(r.trace) - r.pos }
