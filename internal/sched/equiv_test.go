package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pwf/internal/rng"
	"pwf/internal/stats"
)

// These tests establish that the constant-time sampling paths (dense
// active set, alias tables, Fenwick tree) draw from the same
// distributions as the naive O(n) reference samplers they replaced,
// including under arbitrary crash and ticket-transfer sequences. Each
// equivalence is a two-sample chi-square at p = 0.001 between counts
// from a fast-path instance and a naive-path instance with
// independent seeds; quick sources are pinned so the statistical
// tests are deterministic.

// quickCfg returns a deterministic quick config for statistical
// property tests.
func quickCfg(trials int) *quick.Config {
	return &quick.Config{MaxCount: trials, Rand: rand.New(rand.NewSource(99))}
}

// chiEquiv runs draws through fast and naive and rejects if the two
// count vectors are distinguishable at p = 0.001.
func chiEquiv(t *testing.T, n, draws int, fast, naive func() (int, error)) {
	t.Helper()
	fastCounts := make([]int, n)
	naiveCounts := make([]int, n)
	for i := 0; i < draws; i++ {
		pid, err := fast()
		if err != nil {
			t.Fatal(err)
		}
		fastCounts[pid]++
		pid, err = naive()
		if err != nil {
			t.Fatal(err)
		}
		naiveCounts[pid]++
	}
	stat, dof, err := stats.ChiSquareTwoSample(fastCounts, naiveCounts)
	if err != nil {
		t.Fatal(err)
	}
	if crit := stats.ChiSquareCritical999(dof); stat > crit {
		t.Fatalf("fast and naive samplers differ: chi2=%v > %v\nfast=%v\nnaive=%v",
			stat, crit, fastCounts, naiveCounts)
	}
}

// crashSome applies an identical pseudo-random crash sequence to both
// schedulers, keeping at least one process alive.
func crashSome(t *testing.T, n int, seed uint64, a, b Crasher) {
	t.Helper()
	src := rng.New(seed)
	for i := 0; i < n/2; i++ {
		pid := src.Intn(n)
		errA := a.Crash(pid)
		errB := b.Crash(pid)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("crash(%d) disagreement: %v vs %v", pid, errA, errB)
		}
	}
}

func TestUniformEquivalenceUnderCrashes(t *testing.T) {
	const n = 16
	fast := mustUniform(t, n, 101)
	naive := mustUniform(t, n, 202)
	crashSome(t, n, 7, fast, naive)
	chiEquiv(t, n, 100000, fast.Next, naive.NextNaive)
}

func TestWeightedEquivalenceUnderCrashes(t *testing.T) {
	const n = 16
	src := rng.New(5)
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 0.5 + src.Float64()*4
	}
	fast, err := NewWeighted(weights, rng.New(303))
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NewWeighted(weights, rng.New(404))
	if err != nil {
		t.Fatal(err)
	}
	crashSome(t, n, 8, fast, naive)
	chiEquiv(t, n, 100000, fast.Next, naive.NextNaive)
}

func TestLotteryEquivalenceUnderCrashesAndTransfers(t *testing.T) {
	const n = 16
	tickets := make([]int, n)
	src := rng.New(6)
	for i := range tickets {
		tickets[i] = 1 + src.Intn(9)
	}
	fast, err := NewLottery(tickets, rng.New(505))
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NewLottery(tickets, rng.New(606))
	if err != nil {
		t.Fatal(err)
	}
	crashSome(t, n, 9, fast, naive)
	// Interleave transfers (to dead and live holders alike) with the
	// measurement to exercise the Fenwick update path.
	for round := 0; round < 4; round++ {
		pid := src.Intn(n)
		amount := 1 + src.Intn(12)
		if err := fast.SetTickets(pid, amount); err != nil {
			t.Fatal(err)
		}
		if err := naive.SetTickets(pid, amount); err != nil {
			t.Fatal(err)
		}
		chiEquiv(t, n, 25000, fast.Next, naive.NextNaive)
	}
}

func TestStickyEquivalenceUnderCrashes(t *testing.T) {
	const n = 16
	fast, err := NewSticky(n, 0.7, rng.New(707))
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NewSticky(n, 0.7, rng.New(808))
	if err != nil {
		t.Fatal(err)
	}
	crashSome(t, n, 10, fast, naive)
	// Sticky draws are Markov-correlated (a run of repeats inflates
	// the chi-square variance by ~(1+ρ)/(1-ρ)), so thin the chain:
	// count every 16th draw, at which lag the autocorrelation
	// ρ^16 ≈ 3e-3 is negligible and the i.i.d. chi-square null holds.
	thin := func(next func() (int, error)) func() (int, error) {
		return func() (int, error) {
			for i := 0; i < 15; i++ {
				if _, err := next(); err != nil {
					return 0, err
				}
			}
			return next()
		}
	}
	chiEquiv(t, n, 40000, thin(fast.Next), thin(naive.NextNaive))
}

func TestPhasedEquivalenceUnderCrashes(t *testing.T) {
	const n = 12
	phases := []Phase{
		{Weights: ramp(n, 1, 1), Steps: 3},
		{Weights: ramp(n, float64(n), -1), Steps: 5},
	}
	fast, err := NewPhased(n, phases, rng.New(909))
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NewPhased(n, phases, rng.New(1010))
	if err != nil {
		t.Fatal(err)
	}
	crashSome(t, n, 11, fast, naive)
	chiEquiv(t, n, 100000, fast.Next, naive.NextNaive)
}

// ramp returns n weights starting at start with the given step.
func ramp(n int, start, step float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*step
	}
	return out
}

// TestLotterySequenceMatchesNaive pins a stronger property than
// distributional equivalence: the Fenwick inverse-CDF search resolves
// winning tickets in id order exactly as the linear scan did, so for
// identical rng states the rewritten Lottery reproduces the naive
// pid sequence element-for-element — through crashes and transfers.
func TestLotterySequenceMatchesNaive(t *testing.T) {
	const n = 32
	tickets := make([]int, n)
	src := rng.New(13)
	for i := range tickets {
		tickets[i] = 1 + src.Intn(7)
	}
	fast, err := NewLottery(tickets, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NewLottery(tickets, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(round int) {
		switch round % 3 {
		case 0:
			pid := src.Intn(n)
			errF, errN := fast.Crash(pid), naive.Crash(pid)
			if (errF == nil) != (errN == nil) {
				t.Fatalf("crash disagreement at %d: %v vs %v", pid, errF, errN)
			}
		case 1:
			pid, amount := src.Intn(n), 1+src.Intn(10)
			if err := fast.SetTickets(pid, amount); err != nil {
				t.Fatal(err)
			}
			if err := naive.SetTickets(pid, amount); err != nil {
				t.Fatal(err)
			}
		}
	}
	for round := 0; round < 12; round++ {
		mutate(round)
		for i := 0; i < 500; i++ {
			got, err := fast.Next()
			if err != nil {
				t.Fatal(err)
			}
			want, err := naive.NextNaive()
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("round %d draw %d: fast=%d naive=%d", round, i, got, want)
			}
		}
	}
}

// TestUniformCrashFreeSequenceMatchesNaive: before any crash the
// dense active set is the identity list, so the O(1) path consumes
// the rng identically to the old fast path and existing seeds
// reproduce their crash-free schedules unchanged.
func TestUniformCrashFreeSequenceMatchesNaive(t *testing.T) {
	fast := mustUniform(t, 9, 2024)
	naive := mustUniform(t, 9, 2024)
	for i := 0; i < 5000; i++ {
		got, err := fast.Next()
		if err != nil {
			t.Fatal(err)
		}
		want, err := naive.NextNaive()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("draw %d: fast=%d naive=%d", i, got, want)
		}
	}
}

func TestQuickFastSamplersNeverScheduleCrashed(t *testing.T) {
	// Property: after any sequence of valid crashes and transfers,
	// none of the rewritten samplers ever schedules a dead process.
	f := func(seed uint64, crashes []uint8) bool {
		const n = 8
		src := rng.New(seed)
		weights := make([]float64, n)
		tickets := make([]int, n)
		for i := range weights {
			weights[i] = 1 + src.Float64()
			tickets[i] = 1 + src.Intn(4)
		}
		u, err1 := NewUniform(n, rng.New(seed^1))
		w, err2 := NewWeighted(weights, rng.New(seed^2))
		l, err3 := NewLottery(tickets, rng.New(seed^3))
		s, err4 := NewSticky(n, 0.6, rng.New(seed^4))
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return false
		}
		for _, c := range crashes {
			pid := int(c % n)
			_ = u.Crash(pid)
			_ = w.Crash(pid)
			_ = l.Crash(pid)
			_ = s.Crash(pid)
			_ = l.SetTickets(int(c%n), 1+int(c%5))
		}
		for i := 0; i < 64; i++ {
			for _, sc := range []struct {
				next    func() (int, error)
				correct func(int) bool
			}{
				{u.Next, u.Correct},
				{w.Next, w.Correct},
				{l.Next, l.Correct},
				{s.Next, s.Correct},
			} {
				pid, err := sc.next()
				if err != nil || !sc.correct(pid) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(100)); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedCrashRebuildAllocFree(t *testing.T) {
	// The alias rebuild on crash reuses the table's buffers: after the
	// first rebuild, further crashes must not allocate.
	const n = 64
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = float64(i + 1)
	}
	w, err := NewWeighted(weights, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Crash(0); err != nil {
		t.Fatal(err)
	}
	next := 1
	allocs := testing.AllocsPerRun(16, func() {
		if err := w.Crash(next); err != nil {
			t.Fatal(err)
		}
		next++
	})
	if allocs != 0 {
		t.Fatalf("crash rebuild allocated %v/op, want 0", allocs)
	}
}

func TestSchedulerNextZeroAllocs(t *testing.T) {
	const n = 256
	weights := make([]float64, n)
	tickets := make([]int, n)
	for i := range weights {
		weights[i] = float64(i + 1)
		tickets[i] = i%7 + 1
	}
	u := mustUniform(t, n, 1)
	w, err := NewWeighted(weights, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLottery(tickets, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSticky(n, 0.8, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPhased(n, []Phase{{Weights: weights, Steps: 10}}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	// Crash a few processes so the crash-mode paths are the ones
	// measured.
	for pid := 0; pid < 8; pid++ {
		for _, c := range []Crasher{u, w, l, s, p} {
			if err := c.Crash(pid); err != nil {
				t.Fatal(err)
			}
		}
	}
	for name, next := range map[string]func() (int, error){
		"uniform": u.Next, "weighted": w.Next, "lottery": l.Next,
		"sticky": s.Next, "phased": p.Next,
	} {
		allocs := testing.AllocsPerRun(1000, func() {
			if _, err := next(); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: Next allocated %v/op in crash mode, want 0", name, allocs)
		}
	}
}
