package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pwf/internal/rng"
	"pwf/internal/stats"
)

func TestAliasTableMatchesWeights(t *testing.T) {
	var tab aliasTable
	pids := []int32{3, 7, 11, 12}
	weights := []float64{1, 2, 3, 4}
	if err := tab.build(pids, weights); err != nil {
		t.Fatal(err)
	}
	src := rng.New(42)
	const draws = 200000
	counts := map[int]int{}
	for i := 0; i < draws; i++ {
		counts[tab.draw(src)]++
	}
	for i, pid := range pids {
		want := weights[i] / 10
		got := float64(counts[int(pid)]) / draws
		if math.Abs(got-want) > 0.01 {
			t.Errorf("pid %d frequency %v, want ~%v", pid, got, want)
		}
	}
}

func TestAliasTableSingleEntry(t *testing.T) {
	var tab aliasTable
	if err := tab.build([]int32{5}, []float64{0.25}); err != nil {
		t.Fatal(err)
	}
	src := rng.New(1)
	for i := 0; i < 100; i++ {
		if got := tab.draw(src); got != 5 {
			t.Fatalf("draw = %d, want 5", got)
		}
	}
}

func TestAliasTableErrors(t *testing.T) {
	var tab aliasTable
	if err := tab.build(nil, nil); err == nil {
		t.Error("empty build: nil error")
	}
	if err := tab.build([]int32{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch: nil error")
	}
	if err := tab.build([]int32{1}, []float64{-1}); err == nil {
		t.Error("negative weight: nil error")
	}
	if err := tab.build([]int32{1, 2}, []float64{0, 0}); err == nil {
		t.Error("zero mass: nil error")
	}
}

func TestAliasTableRebuildReusesBuffers(t *testing.T) {
	var tab aliasTable
	if err := tab.build([]int32{0, 1, 2, 3}, []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	// Rebuilding at the same or smaller size must not allocate.
	allocs := testing.AllocsPerRun(100, func() {
		if err := tab.build([]int32{0, 1, 2}, []float64{5, 1, 1}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("rebuild allocated %v/op, want 0", allocs)
	}
}

func TestAliasTableDrawZeroAllocs(t *testing.T) {
	var tab aliasTable
	if err := tab.build([]int32{0, 1, 2, 3}, []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	src := rng.New(7)
	allocs := testing.AllocsPerRun(1000, func() { tab.draw(src) })
	if allocs != 0 {
		t.Fatalf("draw allocated %v/op, want 0", allocs)
	}
}

func TestQuickAliasAgreesWithCategorical(t *testing.T) {
	// Property: for random positive weight vectors, alias-table draws
	// and the naive linear-scan Categorical draws are two samples from
	// the same distribution (two-sample chi-square at p = 0.001).
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%12) + 2
		src := rng.New(seed)
		weights := make([]float64, n)
		pids := make([]int32, n)
		for i := range weights {
			weights[i] = 1 + src.Float64()*9
			pids[i] = int32(i)
		}
		var tab aliasTable
		if err := tab.build(pids, weights); err != nil {
			return false
		}
		const draws = 20000
		aliasCounts := make([]int, n)
		naiveCounts := make([]int, n)
		aliasSrc := src.Split()
		naiveSrc := src.Split()
		for i := 0; i < draws; i++ {
			aliasCounts[tab.draw(aliasSrc)]++
			pid, err := naiveSrc.Categorical(weights)
			if err != nil {
				return false
			}
			naiveCounts[pid]++
		}
		stat, dof, err := stats.ChiSquareTwoSample(aliasCounts, naiveCounts)
		if err != nil {
			return false
		}
		return stat <= stats.ChiSquareCritical999(dof)
	}
	// A fixed quick source keeps the 25 chi-square trials
	// deterministic: at p = 0.001 per trial a time-seeded run would
	// flake a few percent of the time.
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
