// Package sched implements the stochastic scheduler model of
// Definition 1 in the paper: at each discrete time step the scheduler
// picks one process to take a shared-memory step. A scheduler for n
// processes is a triple (Π_τ, A_τ, θ): a per-step distribution Π_τ
// over process ids, a possibly-active set A_τ that shrinks over time
// (crash containment), and a threshold θ such that every process in
// A_τ is scheduled with probability at least θ.
//
// A scheduler is *stochastic* when θ > 0. Classic adversaries are the
// θ = 0 degenerate case in which Π_τ is a point mass chosen by a
// strategy.
//
// The concrete schedulers provided are:
//
//   - Uniform: the paper's uniform stochastic scheduler (γ_i = 1/|A_τ|).
//   - Weighted: an arbitrary fixed distribution with threshold θ.
//   - Lottery: ticket-based lottery scheduling (Petrou et al. [19]).
//   - Sticky: a Markov-modulated scheduler with local correlation —
//     with probability ρ it reschedules the previous process; still
//     stochastic for ρ < 1.
//   - RoundRobin: the deterministic fair baseline (θ = 0 but uniformly
//     isolating).
//   - Adversarial: a strategy-driven worst case (θ = 0).
//
// Every stochastic draw is constant-time or logarithmic in n, so a
// simulation of S steps spends O(S) — not O(S·n) — in scheduling:
// Uniform and Sticky draw from a dense swap-remove active set (O(1)),
// Weighted and Phased draw from Walker alias tables rebuilt only on
// crash (O(1) per draw), and Lottery draws through a Fenwick tree
// (O(log n) per draw and per ticket transfer). The superseded O(n)
// scan samplers survive as the NextNaive methods (see naive.go),
// which the equivalence tests and before/after benchmarks use as the
// reference implementation.
package sched

import (
	"errors"
	"fmt"

	"pwf/internal/rng"
)

// Common scheduler errors.
var (
	ErrAllCrashed    = errors.New("sched: all processes have crashed")
	ErrBadProcess    = errors.New("sched: process id out of range")
	ErrLastProcess   = errors.New("sched: cannot crash the last correct process")
	ErrNotMinimal    = errors.New("sched: distribution does not sum to 1")
	ErrBelowThresh   = errors.New("sched: active process scheduled below threshold")
	ErrBadThreshold  = errors.New("sched: threshold out of (0, 1]")
	ErrNoProcesses   = errors.New("sched: need at least one process")
	ErrAlreadyDead   = errors.New("sched: process already crashed")
	ErrBadStickiness = errors.New("sched: stickiness out of [0, 1)")
)

// Scheduler decides, at each discrete time step, which process takes
// the next shared-memory step.
type Scheduler interface {
	// Next returns the id of the process scheduled for the next time
	// step. It fails only when every process has crashed.
	Next() (int, error)
	// N returns the total number of processes (crashed or not).
	N() int
	// Threshold returns θ, the minimum per-step scheduling probability
	// guaranteed to every active process. A return of 0 means the
	// scheduler is not stochastic.
	Threshold() float64
}

// Crasher is implemented by schedulers that support fail-stop crashes
// (the set A_τ of Definition 1). Crash containment — A_{τ+1} ⊆ A_τ —
// holds by construction: a crashed process never rejoins.
type Crasher interface {
	// Crash removes pid from the active set. At most n-1 processes may
	// crash, matching the model's assumption.
	Crash(pid int) error
	// Correct reports whether pid is still active.
	Correct(pid int) bool
	// NumCorrect returns |A_τ|.
	NumCorrect() int
}

// activeSet tracks the possibly-active processes shared by the
// stochastic schedulers. It keeps three views in sync: a boolean
// membership array (O(1) Correct), a dense id list maintained by
// swap-remove (O(1) uniform draws with no per-step allocation, at the
// cost of the list being unordered after a crash), and the inverse
// permutation pos mapping each live pid to its slot in ids.
type activeSet struct {
	alive []bool
	ids   []int32 // dense list of correct pids; unordered after crashes
	pos   []int32 // pid -> index into ids, -1 once crashed
}

func newActiveSet(n int) activeSet {
	alive := make([]bool, n)
	ids := make([]int32, n)
	pos := make([]int32, n)
	for i := range alive {
		alive[i] = true
		ids[i] = int32(i)
		pos[i] = int32(i)
	}
	return activeSet{alive: alive, ids: ids, pos: pos}
}

func (a *activeSet) crash(pid int) error {
	if pid < 0 || pid >= len(a.alive) {
		return fmt.Errorf("%w: %d", ErrBadProcess, pid)
	}
	if !a.alive[pid] {
		return fmt.Errorf("%w: %d", ErrAlreadyDead, pid)
	}
	if len(a.ids) == 1 {
		return ErrLastProcess
	}
	a.alive[pid] = false
	last := int32(len(a.ids) - 1)
	moved := a.ids[last]
	slot := a.pos[pid]
	a.ids[slot] = moved
	a.pos[moved] = slot
	a.ids = a.ids[:last]
	a.pos[pid] = -1
	return nil
}

func (a *activeSet) isCorrect(pid int) bool {
	return pid >= 0 && pid < len(a.alive) && a.alive[pid]
}

// correct returns |A_τ|.
func (a *activeSet) correct() int { return len(a.ids) }

// pick returns a uniformly random correct pid in O(1).
func (a *activeSet) pick(src *rng.Source) int {
	return int(a.ids[src.Intn(len(a.ids))])
}

// Uniform is the uniform stochastic scheduler of Section 2.3: every
// active process is scheduled with probability 1/|A_τ| at every step.
type Uniform struct {
	src      *rng.Source
	active   activeSet
	naiveIDs []int // scratch for NextNaive only
}

var (
	_ Scheduler = (*Uniform)(nil)
	_ Crasher   = (*Uniform)(nil)
)

// NewUniform returns a uniform stochastic scheduler over n processes
// drawing randomness from src.
func NewUniform(n int, src *rng.Source) (*Uniform, error) {
	if n < 1 {
		return nil, ErrNoProcesses
	}
	if src == nil {
		return nil, errors.New("sched: nil rng source")
	}
	return &Uniform{src: src, active: newActiveSet(n)}, nil
}

// Next implements Scheduler in O(1): one bounded draw from the dense
// active-id list, crashes or not.
func (u *Uniform) Next() (int, error) {
	if u.active.correct() == 0 {
		return 0, ErrAllCrashed
	}
	return u.active.pick(u.src), nil
}

// N implements Scheduler.
func (u *Uniform) N() int { return len(u.active.alive) }

// Threshold implements Scheduler: θ = 1/n (with crashes the actual
// per-step probability only grows, so 1/n remains a valid threshold).
func (u *Uniform) Threshold() float64 { return 1 / float64(len(u.active.alive)) }

// Crash implements Crasher.
func (u *Uniform) Crash(pid int) error { return u.active.crash(pid) }

// Correct implements Crasher.
func (u *Uniform) Correct(pid int) bool { return u.active.isCorrect(pid) }

// NumCorrect implements Crasher.
func (u *Uniform) NumCorrect() int { return u.active.correct() }

// Weighted schedules process i with fixed probability proportional to
// weights[i], renormalized over the active set after crashes. The
// threshold θ is the minimum renormalized probability across active
// processes in the crash-free case; it is validated at construction.
//
// Draws are O(1) through a Walker alias table over the active
// processes. The table depends only on the weight restriction to A_τ,
// so it is rebuilt (in O(|A_τ|)) exactly when a process crashes and
// never on the per-step path.
type Weighted struct {
	src     *rng.Source
	weights []float64
	active  activeSet
	theta   float64

	table aliasTable
	wBuf  []float64 // rebuild scratch: weights of the active ids

	scratch []float64 // NextNaive scratch
}

var (
	_ Scheduler = (*Weighted)(nil)
	_ Crasher   = (*Weighted)(nil)
)

// NewWeighted builds a weighted stochastic scheduler. Weights must be
// strictly positive so that the weak-fairness condition (θ > 0) holds.
func NewWeighted(weights []float64, src *rng.Source) (*Weighted, error) {
	if len(weights) == 0 {
		return nil, ErrNoProcesses
	}
	if src == nil {
		return nil, errors.New("sched: nil rng source")
	}
	var total float64
	minW := weights[0]
	for _, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("sched: weight %v is not strictly positive", w)
		}
		total += w
		if w < minW {
			minW = w
		}
	}
	ws := make([]float64, len(weights))
	copy(ws, weights)
	w := &Weighted{
		src:     src,
		weights: ws,
		active:  newActiveSet(len(weights)),
		theta:   minW / total,
		scratch: make([]float64, len(weights)),
	}
	if err := w.rebuild(); err != nil {
		return nil, err
	}
	return w, nil
}

// rebuild reconstructs the alias table over the currently active
// processes. Called at construction and after every crash.
func (w *Weighted) rebuild() error {
	w.wBuf = grow(w.wBuf, len(w.active.ids))
	for i, pid := range w.active.ids {
		w.wBuf[i] = w.weights[pid]
	}
	return w.table.build(w.active.ids, w.wBuf)
}

// Next implements Scheduler in O(1) via the alias table.
func (w *Weighted) Next() (int, error) {
	if w.active.correct() == 0 {
		return 0, ErrAllCrashed
	}
	return w.table.draw(w.src), nil
}

// N implements Scheduler.
func (w *Weighted) N() int { return len(w.weights) }

// Threshold implements Scheduler.
func (w *Weighted) Threshold() float64 { return w.theta }

// Crash implements Crasher, rebuilding the alias table over the
// shrunken active set (O(|A_τ|), amortized over at most n-1 crashes).
func (w *Weighted) Crash(pid int) error {
	if err := w.active.crash(pid); err != nil {
		return err
	}
	return w.rebuild()
}

// Correct implements Crasher.
func (w *Weighted) Correct(pid int) bool { return w.active.isCorrect(pid) }

// NumCorrect implements Crasher.
func (w *Weighted) NumCorrect() int { return w.active.correct() }

// Lottery implements lottery scheduling [Petrou et al. 1999]: each
// process holds an integer number of tickets and is scheduled with
// probability proportional to its holding. It is a Weighted scheduler
// with integer weights and runtime ticket transfers.
//
// Draws resolve the winning ticket through a Fenwick tree over the
// active ticket counts: O(log n) per draw, per transfer, and per
// crash, with the active ticket total maintained incrementally rather
// than recomputed per step. The tree's inverse-CDF search visits
// processes in id order exactly as the superseded linear scan did, so
// for identical rng states Next returns the identical pid sequence
// (see TestLotterySequenceMatchesNaive).
type Lottery struct {
	src     *rng.Source
	tickets []int
	active  activeSet
	total   int // all tickets, crashed holders included (Threshold)

	fen         *fenwick
	activeTotal int64 // tickets held by correct processes
}

var (
	_ Scheduler = (*Lottery)(nil)
	_ Crasher   = (*Lottery)(nil)
)

// NewLottery builds a lottery scheduler; every process must hold at
// least one ticket.
func NewLottery(tickets []int, src *rng.Source) (*Lottery, error) {
	if len(tickets) == 0 {
		return nil, ErrNoProcesses
	}
	if src == nil {
		return nil, errors.New("sched: nil rng source")
	}
	ts := make([]int, len(tickets))
	vals := make([]int64, len(tickets))
	total := 0
	for i, t := range tickets {
		if t < 1 {
			return nil, fmt.Errorf("sched: process %d holds %d tickets, need >= 1", i, t)
		}
		ts[i] = t
		vals[i] = int64(t)
		total += t
	}
	fen := newFenwick(len(tickets))
	fen.init(vals)
	return &Lottery{
		src:         src,
		tickets:     ts,
		active:      newActiveSet(len(tickets)),
		total:       total,
		fen:         fen,
		activeTotal: int64(total),
	}, nil
}

// Next implements Scheduler by drawing a winning ticket among active
// processes and resolving its holder in O(log n).
func (l *Lottery) Next() (int, error) {
	if l.active.correct() == 0 {
		return 0, ErrAllCrashed
	}
	win := l.src.Intn(int(l.activeTotal))
	return l.fen.find(int64(win)), nil
}

// SetTickets changes pid's holding at runtime (ticket transfers),
// O(log n).
func (l *Lottery) SetTickets(pid, tickets int) error {
	if pid < 0 || pid >= len(l.tickets) {
		return fmt.Errorf("%w: %d", ErrBadProcess, pid)
	}
	if tickets < 1 {
		return fmt.Errorf("sched: process %d needs >= 1 ticket", pid)
	}
	delta := tickets - l.tickets[pid]
	l.total += delta
	l.tickets[pid] = tickets
	if l.active.alive[pid] {
		l.fen.add(pid, int64(delta))
		l.activeTotal += int64(delta)
	}
	return nil
}

// N implements Scheduler.
func (l *Lottery) N() int { return len(l.tickets) }

// Threshold implements Scheduler: the minimum ticket share.
func (l *Lottery) Threshold() float64 {
	minT := l.tickets[0]
	for _, t := range l.tickets {
		if t < minT {
			minT = t
		}
	}
	return float64(minT) / float64(l.total)
}

// Crash implements Crasher, zeroing pid's tickets in the tree so the
// inverse-CDF search skips it (O(log n)).
func (l *Lottery) Crash(pid int) error {
	if err := l.active.crash(pid); err != nil {
		return err
	}
	l.fen.add(pid, -int64(l.tickets[pid]))
	l.activeTotal -= int64(l.tickets[pid])
	return nil
}

// Correct implements Crasher.
func (l *Lottery) Correct(pid int) bool { return l.active.isCorrect(pid) }

// NumCorrect implements Crasher.
func (l *Lottery) NumCorrect() int { return l.active.correct() }

// Sticky is a Markov-modulated scheduler: with probability rho it
// schedules the same process as the previous step; otherwise it picks
// uniformly among active processes. This models the local correlation
// real schedulers exhibit (a thread tends to keep its core for a
// while) and is still stochastic: every active process has per-step
// probability at least (1-ρ)/n. Both rows of its two-state modulation
// are sampled in O(1): the sticky branch is a Bernoulli trial and the
// exploration branch draws from the dense active set.
type Sticky struct {
	src      *rng.Source
	rho      float64
	active   activeSet
	last     int
	primed   bool
	naiveIDs []int // scratch for NextNaive only
}

var (
	_ Scheduler = (*Sticky)(nil)
	_ Crasher   = (*Sticky)(nil)
)

// NewSticky builds a sticky scheduler with stickiness rho in [0, 1).
func NewSticky(n int, rho float64, src *rng.Source) (*Sticky, error) {
	if n < 1 {
		return nil, ErrNoProcesses
	}
	if src == nil {
		return nil, errors.New("sched: nil rng source")
	}
	if rho < 0 || rho >= 1 {
		return nil, ErrBadStickiness
	}
	return &Sticky{src: src, rho: rho, active: newActiveSet(n)}, nil
}

// Next implements Scheduler in O(1).
func (s *Sticky) Next() (int, error) {
	if s.active.correct() == 0 {
		return 0, ErrAllCrashed
	}
	if s.primed && s.active.alive[s.last] && s.src.Bernoulli(s.rho) {
		return s.last, nil
	}
	pid := s.active.pick(s.src)
	s.last = pid
	s.primed = true
	return pid, nil
}

// N implements Scheduler.
func (s *Sticky) N() int { return len(s.active.alive) }

// Threshold implements Scheduler: (1-ρ)/n.
func (s *Sticky) Threshold() float64 {
	return (1 - s.rho) / float64(len(s.active.alive))
}

// Crash implements Crasher.
func (s *Sticky) Crash(pid int) error { return s.active.crash(pid) }

// Correct implements Crasher.
func (s *Sticky) Correct(pid int) bool { return s.active.isCorrect(pid) }

// NumCorrect implements Crasher.
func (s *Sticky) NumCorrect() int { return s.active.correct() }

// RoundRobin is the deterministic fair baseline: processes take steps
// in cyclic id order, skipping crashed ones. Its threshold is 0 (it is
// not stochastic), but every schedule it produces is uniformly
// isolating in the trivial k=1 sense and perfectly fair in the long
// run.
type RoundRobin struct {
	active activeSet
	next   int
}

var (
	_ Scheduler = (*RoundRobin)(nil)
	_ Crasher   = (*RoundRobin)(nil)
)

// NewRoundRobin builds a round-robin scheduler over n processes.
func NewRoundRobin(n int) (*RoundRobin, error) {
	if n < 1 {
		return nil, ErrNoProcesses
	}
	return &RoundRobin{active: newActiveSet(n)}, nil
}

// Next implements Scheduler.
func (r *RoundRobin) Next() (int, error) {
	if r.active.correct() == 0 {
		return 0, ErrAllCrashed
	}
	for {
		pid := r.next
		r.next = (r.next + 1) % len(r.active.alive)
		if r.active.alive[pid] {
			return pid, nil
		}
	}
}

// N implements Scheduler.
func (r *RoundRobin) N() int { return len(r.active.alive) }

// Threshold implements Scheduler. RoundRobin is deterministic, so it
// provides no probabilistic threshold.
func (r *RoundRobin) Threshold() float64 { return 0 }

// Crash implements Crasher.
func (r *RoundRobin) Crash(pid int) error { return r.active.crash(pid) }

// Correct implements Crasher.
func (r *RoundRobin) Correct(pid int) bool { return r.active.isCorrect(pid) }

// NumCorrect implements Crasher.
func (r *RoundRobin) NumCorrect() int { return r.active.correct() }

// Strategy chooses the process to schedule at time step tau given the
// number of processes. It encodes a classic asynchronous adversary as
// a point-mass distribution per step (Section 2.3).
type Strategy func(tau uint64, n int) int

// Adversarial drives scheduling from a Strategy; θ = 0.
type Adversarial struct {
	n        int
	tau      uint64
	strategy Strategy
}

var _ Scheduler = (*Adversarial)(nil)

// NewAdversarial builds an adversarial scheduler over n processes.
func NewAdversarial(n int, strategy Strategy) (*Adversarial, error) {
	if n < 1 {
		return nil, ErrNoProcesses
	}
	if strategy == nil {
		return nil, errors.New("sched: nil strategy")
	}
	return &Adversarial{n: n, strategy: strategy}, nil
}

// Next implements Scheduler. A strategy returning an out-of-range id
// is an error (the adversary must be well-formed).
func (a *Adversarial) Next() (int, error) {
	pid := a.strategy(a.tau, a.n)
	a.tau++
	if pid < 0 || pid >= a.n {
		return 0, fmt.Errorf("%w: strategy chose %d of %d", ErrBadProcess, pid, a.n)
	}
	return pid, nil
}

// N implements Scheduler.
func (a *Adversarial) N() int { return a.n }

// Threshold implements Scheduler. Adversaries carry no probabilistic
// guarantee.
func (a *Adversarial) Threshold() float64 { return 0 }

// SingleOut returns a Strategy that starves victim: it cycles through
// all other processes and never schedules the victim. Used in tests
// and the E13 ablation to show what the stochastic model rules out.
func SingleOut(victim int) Strategy {
	return func(tau uint64, n int) int {
		if n == 1 {
			return 0
		}
		pid := int(tau % uint64(n-1))
		if pid >= victim {
			pid++
		}
		return pid
	}
}
