package sched

import (
	"fmt"
	"testing"

	"pwf/internal/rng"
)

// BenchmarkSchedDraw sweeps every stochastic scheduler's per-step
// draw cost over the paper-scale process counts, fast path against
// the naive O(n) reference. A few processes are crashed first so the
// crash-mode paths — the ones the rewrite targets — are the paths
// measured. The acceptance criterion is that the fast columns stay
// flat (alias, dense set) or logarithmic (Fenwick) in n while the
// naive columns grow linearly.
func BenchmarkSchedDraw(b *testing.B) {
	for _, n := range []int{16, 256, 1024, 4096} {
		for _, bench := range []struct {
			name  string
			build func(n int) (func() (int, error), Crasher, error)
		}{
			{"uniform/dense", func(n int) (func() (int, error), Crasher, error) {
				u, err := NewUniform(n, rng.New(1))
				if err != nil {
					return nil, nil, err
				}
				return u.Next, u, nil
			}},
			{"uniform/naive", func(n int) (func() (int, error), Crasher, error) {
				u, err := NewUniform(n, rng.New(1))
				if err != nil {
					return nil, nil, err
				}
				return u.NextNaive, u, nil
			}},
			{"weighted/alias", func(n int) (func() (int, error), Crasher, error) {
				w, err := NewWeighted(rampWeights(n), rng.New(2))
				if err != nil {
					return nil, nil, err
				}
				return w.Next, w, nil
			}},
			{"weighted/naive", func(n int) (func() (int, error), Crasher, error) {
				w, err := NewWeighted(rampWeights(n), rng.New(2))
				if err != nil {
					return nil, nil, err
				}
				return w.NextNaive, w, nil
			}},
			{"lottery/fenwick", func(n int) (func() (int, error), Crasher, error) {
				l, err := NewLottery(rampTickets(n), rng.New(3))
				if err != nil {
					return nil, nil, err
				}
				return l.Next, l, nil
			}},
			{"lottery/naive", func(n int) (func() (int, error), Crasher, error) {
				l, err := NewLottery(rampTickets(n), rng.New(3))
				if err != nil {
					return nil, nil, err
				}
				return l.NextNaive, l, nil
			}},
			{"sticky/dense", func(n int) (func() (int, error), Crasher, error) {
				s, err := NewSticky(n, 0.8, rng.New(4))
				if err != nil {
					return nil, nil, err
				}
				return s.Next, s, nil
			}},
			{"sticky/naive", func(n int) (func() (int, error), Crasher, error) {
				s, err := NewSticky(n, 0.8, rng.New(4))
				if err != nil {
					return nil, nil, err
				}
				return s.NextNaive, s, nil
			}},
			{"phased/alias", func(n int) (func() (int, error), Crasher, error) {
				p, err := NewPhased(n, benchPhases(n), rng.New(5))
				if err != nil {
					return nil, nil, err
				}
				return p.Next, p, nil
			}},
			{"phased/naive", func(n int) (func() (int, error), Crasher, error) {
				p, err := NewPhased(n, benchPhases(n), rng.New(5))
				if err != nil {
					return nil, nil, err
				}
				return p.NextNaive, p, nil
			}},
		} {
			b.Run(fmt.Sprintf("%s/n=%d", bench.name, n), func(b *testing.B) {
				next, crasher, err := bench.build(n)
				if err != nil {
					b.Fatal(err)
				}
				for pid := 0; pid < n/8; pid++ {
					if err := crasher.Crash(pid); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := next(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func rampWeights(n int) []float64 {
	ws := make([]float64, n)
	for i := range ws {
		ws[i] = float64(i%17 + 1)
	}
	return ws
}

func rampTickets(n int) []int {
	ts := make([]int, n)
	for i := range ts {
		ts[i] = i%9 + 1
	}
	return ts
}

func benchPhases(n int) []Phase {
	return []Phase{
		{Weights: rampWeights(n), Steps: 64},
		{Weights: rampWeights(n), Steps: 32},
	}
}
