package sched

import (
	"math"
	"testing"

	"pwf/internal/rng"
)

func TestPhasedValidation(t *testing.T) {
	src := rng.New(1)
	uniform := Phase{Weights: []float64{1, 1}, Steps: 10}
	if _, err := NewPhased(0, []Phase{uniform}, src); err == nil {
		t.Error("n=0: nil error")
	}
	if _, err := NewPhased(2, nil, src); err == nil {
		t.Error("no phases: nil error")
	}
	if _, err := NewPhased(2, []Phase{uniform}, nil); err == nil {
		t.Error("nil src: nil error")
	}
	if _, err := NewPhased(3, []Phase{uniform}, src); err == nil {
		t.Error("weight count mismatch: nil error")
	}
	if _, err := NewPhased(2, []Phase{{Weights: []float64{1, 0}, Steps: 5}}, src); err == nil {
		t.Error("zero weight: nil error")
	}
	if _, err := NewPhased(2, []Phase{{Weights: []float64{1, 1}, Steps: 0}}, src); err == nil {
		t.Error("zero-length phase: nil error")
	}
}

func TestPhasedCyclesThroughPhases(t *testing.T) {
	// Two near-deterministic phases: the first strongly favours
	// process 0, the second process 1.
	phases := []Phase{
		{Weights: []float64{1000, 1}, Steps: 100},
		{Weights: []float64{1, 1000}, Steps: 100},
	}
	p, err := NewPhased(2, phases, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	firstPhase := 0
	for i := 0; i < 100; i++ {
		pid, err := p.Next()
		if err != nil {
			t.Fatal(err)
		}
		if pid == 0 {
			firstPhase++
		}
	}
	if firstPhase < 95 {
		t.Fatalf("phase 1 scheduled process 0 only %d/100 times", firstPhase)
	}
	if p.CurrentPhase() != 0 {
		t.Fatalf("CurrentPhase = %d before the boundary", p.CurrentPhase())
	}
	secondPhase := 0
	for i := 0; i < 100; i++ {
		pid, err := p.Next()
		if err != nil {
			t.Fatal(err)
		}
		if pid == 1 {
			secondPhase++
		}
	}
	if secondPhase < 95 {
		t.Fatalf("phase 2 scheduled process 1 only %d/100 times", secondPhase)
	}
	if p.CurrentPhase() != 1 {
		t.Fatalf("CurrentPhase = %d in the second phase", p.CurrentPhase())
	}
	// Wraps back to phase 0.
	wrapped := 0
	for i := 0; i < 100; i++ {
		pid, err := p.Next()
		if err != nil {
			t.Fatal(err)
		}
		if pid == 0 {
			wrapped++
		}
	}
	if wrapped < 95 {
		t.Fatalf("after wrap, process 0 scheduled %d/100 times", wrapped)
	}
}

func TestPhasedThresholdIsWorstCase(t *testing.T) {
	phases := []Phase{
		{Weights: []float64{1, 1}, Steps: 10}, // theta 1/2
		{Weights: []float64{9, 1}, Steps: 10}, // theta 1/10
		{Weights: []float64{1, 3}, Steps: 10}, // theta 1/4
	}
	p, err := NewPhased(2, phases, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Threshold(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("Threshold = %v, want 0.1", got)
	}
}

func TestPhasedLongRunShares(t *testing.T) {
	// Symmetric alternating phases: long-run shares even out.
	phases := []Phase{
		{Weights: []float64{3, 1}, Steps: 50},
		{Weights: []float64{1, 3}, Steps: 50},
	}
	p, err := NewPhased(2, phases, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 2)
	const steps = 200000
	for i := 0; i < steps; i++ {
		pid, err := p.Next()
		if err != nil {
			t.Fatal(err)
		}
		counts[pid]++
	}
	frac := float64(counts[0]) / steps
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("long-run share %v, want ~0.5", frac)
	}
}

func TestPhasedCrash(t *testing.T) {
	phases := []Phase{{Weights: []float64{1, 1, 1}, Steps: 7}}
	p, err := NewPhased(3, phases, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Crash(1); err != nil {
		t.Fatal(err)
	}
	if p.NumCorrect() != 2 || p.Correct(1) {
		t.Fatal("crash bookkeeping wrong")
	}
	for i := 0; i < 500; i++ {
		pid, err := p.Next()
		if err != nil {
			t.Fatal(err)
		}
		if pid == 1 {
			t.Fatal("crashed process scheduled")
		}
	}
}

func TestPhasedCopiesPhases(t *testing.T) {
	weights := []float64{1, 1}
	phases := []Phase{{Weights: weights, Steps: 10}}
	p, err := NewPhased(2, phases, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	weights[0] = 1e9 // must not affect the scheduler
	counts := make([]int, 2)
	for i := 0; i < 10000; i++ {
		pid, err := p.Next()
		if err != nil {
			t.Fatal(err)
		}
		counts[pid]++
	}
	if math.Abs(float64(counts[0])/10000-0.5) > 0.05 {
		t.Fatalf("mutated external weights leaked in: %v", counts)
	}
}
