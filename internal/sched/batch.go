package sched

import (
	"errors"
	"fmt"

	"pwf/internal/rng"
)

// Replica-batched drawers: the struct-of-arrays counterpart of the
// scalar schedulers. A batch drawer steps K independent replicas of
// the same scheduler configuration in lockstep — one NextBatch call
// draws the next scheduled pid for every replica — sharing the
// structures that depend only on the configuration (the active set,
// alias tables, the Fenwick tree) across replicas while giving each
// replica its own rng stream, laid out contiguously so a draw touches
// one cache-resident table and one 32-byte source.
//
// Determinism contract: replica r of a batch drawer built from
// seeds[r] produces exactly the pid sequence the corresponding scalar
// scheduler produces when built with rng.New(seeds[r]) — the batch
// draw code paths reuse the scalar sampling structures verbatim, one
// replica source at a time (TestBatchDrawerMatchesScalar pins this).
//
// Crashes are configuration, not per-replica state: Crash removes the
// pid from every replica at once, matching the sweep engine's
// pre-run crash plans, where every replica of a batch shares one
// crash count.

// Batch drawer errors.
var (
	ErrNoReplicas  = errors.New("sched: batch needs at least one replica seed")
	ErrBatchLen    = errors.New("sched: pid buffer length differs from replica count")
	errNilStrategy = errors.New("sched: nil strategy")
)

// BatchDrawer draws the next scheduled process for each of K
// independent replicas in one call.
type BatchDrawer interface {
	// NextBatch fills pids[r] with the process scheduled next in
	// replica r. len(pids) must equal K(). It fails only when every
	// process has crashed.
	NextBatch(pids []int32) error
	// N returns the number of processes per replica.
	N() int
	// K returns the number of replicas.
	K() int
	// Threshold returns θ, identical across replicas (it is a property
	// of the configuration, not of any replica's randomness).
	Threshold() float64
}

// BatchCrasher is implemented by batch drawers that support fail-stop
// crashes. A crash applies to every replica at once.
type BatchCrasher interface {
	// Crash removes pid from the shared active set.
	Crash(pid int) error
	// NumCorrect returns |A_τ| (the same in every replica).
	NumCorrect() int
}

// newSources seeds one rng stream per replica, stored by value in one
// contiguous slice so consecutive draws in a batch walk memory
// linearly. Each source is seeded exactly as rng.New(seeds[r]) would
// be, which is what the determinism contract rests on.
func newSources(seeds []uint64) ([]rng.Source, error) {
	if len(seeds) == 0 {
		return nil, ErrNoReplicas
	}
	srcs := make([]rng.Source, len(seeds))
	for r, seed := range seeds {
		srcs[r].Seed(seed)
	}
	return srcs, nil
}

// UniformBatch is the replica-batched Uniform scheduler: K replicas
// drawing from one shared dense active set with per-replica sources.
type UniformBatch struct {
	srcs   []rng.Source
	active activeSet
	draws  []int64 // IntnBatch scratch, one slot per replica
}

var (
	_ BatchDrawer  = (*UniformBatch)(nil)
	_ BatchCrasher = (*UniformBatch)(nil)
)

// NewUniformBatch builds a uniform batch drawer over n processes with
// one replica per seed.
func NewUniformBatch(n int, seeds []uint64) (*UniformBatch, error) {
	if n < 1 {
		return nil, ErrNoProcesses
	}
	srcs, err := newSources(seeds)
	if err != nil {
		return nil, err
	}
	return &UniformBatch{
		srcs:   srcs,
		active: newActiveSet(n),
		draws:  make([]int64, len(srcs)),
	}, nil
}

// NextBatch implements BatchDrawer: one O(1) dense-set pick per
// replica, all against the same id list.
func (u *UniformBatch) NextBatch(pids []int32) error {
	if len(pids) != len(u.srcs) {
		return ErrBatchLen
	}
	ids := u.active.ids
	if len(ids) == 0 {
		return ErrAllCrashed
	}
	rng.IntnBatch(u.srcs, len(ids), u.draws)
	for r, d := range u.draws {
		pids[r] = ids[d]
	}
	return nil
}

// N implements BatchDrawer.
func (u *UniformBatch) N() int { return len(u.active.alive) }

// K implements BatchDrawer.
func (u *UniformBatch) K() int { return len(u.srcs) }

// Threshold implements BatchDrawer (θ = 1/n, as for Uniform).
func (u *UniformBatch) Threshold() float64 { return 1 / float64(len(u.active.alive)) }

// Crash implements BatchCrasher.
func (u *UniformBatch) Crash(pid int) error { return u.active.crash(pid) }

// NumCorrect implements BatchCrasher.
func (u *UniformBatch) NumCorrect() int { return u.active.correct() }

// StickyBatch is the replica-batched Sticky scheduler. The stickiness
// decision and the previously scheduled process are per-replica state;
// the active set is shared.
type StickyBatch struct {
	srcs   []rng.Source
	rho    float64
	active activeSet
	last   []int32
	primed []bool
}

var (
	_ BatchDrawer  = (*StickyBatch)(nil)
	_ BatchCrasher = (*StickyBatch)(nil)
)

// NewStickyBatch builds a sticky batch drawer with stickiness rho in
// [0, 1).
func NewStickyBatch(n int, rho float64, seeds []uint64) (*StickyBatch, error) {
	if n < 1 {
		return nil, ErrNoProcesses
	}
	if rho < 0 || rho >= 1 {
		return nil, ErrBadStickiness
	}
	srcs, err := newSources(seeds)
	if err != nil {
		return nil, err
	}
	return &StickyBatch{
		srcs:   srcs,
		rho:    rho,
		active: newActiveSet(n),
		last:   make([]int32, len(seeds)),
		primed: make([]bool, len(seeds)),
	}, nil
}

// NextBatch implements BatchDrawer, mirroring Sticky.Next per replica:
// a Bernoulli trial on the previous pick, falling back to a dense-set
// draw.
func (s *StickyBatch) NextBatch(pids []int32) error {
	if len(pids) != len(s.srcs) {
		return ErrBatchLen
	}
	ids := s.active.ids
	if len(ids) == 0 {
		return ErrAllCrashed
	}
	for r := range s.srcs {
		src := &s.srcs[r]
		if s.primed[r] && s.active.alive[s.last[r]] && src.Bernoulli(s.rho) {
			pids[r] = s.last[r]
			continue
		}
		pid := ids[src.Intn(len(ids))]
		s.last[r] = pid
		s.primed[r] = true
		pids[r] = pid
	}
	return nil
}

// N implements BatchDrawer.
func (s *StickyBatch) N() int { return len(s.active.alive) }

// K implements BatchDrawer.
func (s *StickyBatch) K() int { return len(s.srcs) }

// Threshold implements BatchDrawer ((1-ρ)/n, as for Sticky).
func (s *StickyBatch) Threshold() float64 {
	return (1 - s.rho) / float64(len(s.active.alive))
}

// Crash implements BatchCrasher.
func (s *StickyBatch) Crash(pid int) error { return s.active.crash(pid) }

// NumCorrect implements BatchCrasher.
func (s *StickyBatch) NumCorrect() int { return s.active.correct() }

// WeightedBatch is the replica-batched Weighted scheduler: one alias
// table shared by every replica (it depends only on the weight
// restriction to the active set), per-replica sources.
type WeightedBatch struct {
	srcs    []rng.Source
	weights []float64
	active  activeSet
	theta   float64
	table   aliasTable
	wBuf    []float64
}

var (
	_ BatchDrawer  = (*WeightedBatch)(nil)
	_ BatchCrasher = (*WeightedBatch)(nil)
)

// NewWeightedBatch builds a weighted batch drawer; weights must be
// strictly positive.
func NewWeightedBatch(weights []float64, seeds []uint64) (*WeightedBatch, error) {
	if len(weights) == 0 {
		return nil, ErrNoProcesses
	}
	srcs, err := newSources(seeds)
	if err != nil {
		return nil, err
	}
	var total float64
	minW := weights[0]
	for _, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("sched: weight %v is not strictly positive", w)
		}
		total += w
		if w < minW {
			minW = w
		}
	}
	ws := make([]float64, len(weights))
	copy(ws, weights)
	w := &WeightedBatch{
		srcs:    srcs,
		weights: ws,
		active:  newActiveSet(len(weights)),
		theta:   minW / total,
	}
	if err := w.rebuild(); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *WeightedBatch) rebuild() error {
	w.wBuf = grow(w.wBuf, len(w.active.ids))
	for i, pid := range w.active.ids {
		w.wBuf[i] = w.weights[pid]
	}
	return w.table.build(w.active.ids, w.wBuf)
}

// NextBatch implements BatchDrawer: one O(1) alias draw per replica
// against the shared table.
func (w *WeightedBatch) NextBatch(pids []int32) error {
	if len(pids) != len(w.srcs) {
		return ErrBatchLen
	}
	if w.active.correct() == 0 {
		return ErrAllCrashed
	}
	for r := range w.srcs {
		pids[r] = int32(w.table.draw(&w.srcs[r]))
	}
	return nil
}

// N implements BatchDrawer.
func (w *WeightedBatch) N() int { return len(w.weights) }

// K implements BatchDrawer.
func (w *WeightedBatch) K() int { return len(w.srcs) }

// Threshold implements BatchDrawer.
func (w *WeightedBatch) Threshold() float64 { return w.theta }

// Crash implements BatchCrasher, rebuilding the shared table once for
// all replicas.
func (w *WeightedBatch) Crash(pid int) error {
	if err := w.active.crash(pid); err != nil {
		return err
	}
	return w.rebuild()
}

// NumCorrect implements BatchCrasher.
func (w *WeightedBatch) NumCorrect() int { return w.active.correct() }

// LotteryBatch is the replica-batched Lottery scheduler: one Fenwick
// tree over the active ticket counts shared by every replica. The
// tree for paper-scale n fits in L1, so the O(log n) inverse-CDF
// searches of a whole batch hit cache and overlap across replicas.
type LotteryBatch struct {
	srcs        []rng.Source
	tickets     []int
	active      activeSet
	total       int
	fen         *fenwick
	activeTotal int64
	wins        []int64 // findBatch scratch, one slot per replica
}

var (
	_ BatchDrawer  = (*LotteryBatch)(nil)
	_ BatchCrasher = (*LotteryBatch)(nil)
)

// NewLotteryBatch builds a lottery batch drawer; every process must
// hold at least one ticket.
func NewLotteryBatch(tickets []int, seeds []uint64) (*LotteryBatch, error) {
	if len(tickets) == 0 {
		return nil, ErrNoProcesses
	}
	srcs, err := newSources(seeds)
	if err != nil {
		return nil, err
	}
	ts := make([]int, len(tickets))
	vals := make([]int64, len(tickets))
	total := 0
	for i, t := range tickets {
		if t < 1 {
			return nil, fmt.Errorf("sched: process %d holds %d tickets, need >= 1", i, t)
		}
		ts[i] = t
		vals[i] = int64(t)
		total += t
	}
	fen := newFenwick(len(tickets))
	fen.init(vals)
	return &LotteryBatch{
		srcs:        srcs,
		tickets:     ts,
		active:      newActiveSet(len(tickets)),
		total:       total,
		fen:         fen,
		activeTotal: int64(total),
		wins:        make([]int64, len(srcs)),
	}, nil
}

// NextBatch implements BatchDrawer: one winning-ticket draw and one
// O(log n) tree search per replica, all against the shared tree. The
// searches run through findBatch so the descents of the whole batch
// overlap instead of serialising one dependent chain at a time.
func (l *LotteryBatch) NextBatch(pids []int32) error {
	if len(pids) != len(l.srcs) {
		return ErrBatchLen
	}
	if l.active.correct() == 0 {
		return ErrAllCrashed
	}
	rng.IntnBatch(l.srcs, int(l.activeTotal), l.wins)
	l.fen.findBatch(l.wins, pids)
	return nil
}

// N implements BatchDrawer.
func (l *LotteryBatch) N() int { return len(l.tickets) }

// K implements BatchDrawer.
func (l *LotteryBatch) K() int { return len(l.srcs) }

// Threshold implements BatchDrawer (the minimum ticket share, as for
// Lottery).
func (l *LotteryBatch) Threshold() float64 {
	minT := l.tickets[0]
	for _, t := range l.tickets {
		if t < minT {
			minT = t
		}
	}
	return float64(minT) / float64(l.total)
}

// Crash implements BatchCrasher, zeroing pid's tickets in the shared
// tree.
func (l *LotteryBatch) Crash(pid int) error {
	if err := l.active.crash(pid); err != nil {
		return err
	}
	l.fen.add(pid, -int64(l.tickets[pid]))
	l.activeTotal -= int64(l.tickets[pid])
	return nil
}

// NumCorrect implements BatchCrasher.
func (l *LotteryBatch) NumCorrect() int { return l.active.correct() }

// PhasedBatch is the replica-batched Phased scheduler. Replicas run in
// lockstep, so the phase clock — which phase governs the next step —
// is shared alongside the per-phase alias tables; only the draw
// randomness is per replica.
type PhasedBatch struct {
	srcs   []rng.Source
	phases []Phase
	active activeSet
	idx    int
	left   uint64
	theta  float64
	tables []aliasTable
	wBuf   []float64
}

var (
	_ BatchDrawer  = (*PhasedBatch)(nil)
	_ BatchCrasher = (*PhasedBatch)(nil)
)

// NewPhasedBatch builds a phased batch drawer cycling through the
// given phases.
func NewPhasedBatch(n int, phases []Phase, seeds []uint64) (*PhasedBatch, error) {
	srcs, err := newSources(seeds)
	if err != nil {
		return nil, err
	}
	// Validate and copy through the scalar constructor, then discard
	// its source: the phase bookkeeping rules must match exactly.
	scalar, err := NewPhased(n, phases, rng.New(0))
	if err != nil {
		return nil, err
	}
	p := &PhasedBatch{
		srcs:   srcs,
		phases: scalar.phases,
		active: newActiveSet(n),
		left:   scalar.phases[0].Steps,
		theta:  scalar.theta,
		tables: make([]aliasTable, len(scalar.phases)),
	}
	if err := p.rebuild(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *PhasedBatch) rebuild() error {
	for i := range p.phases {
		p.wBuf = grow(p.wBuf, len(p.active.ids))
		for j, pid := range p.active.ids {
			p.wBuf[j] = p.phases[i].Weights[pid]
		}
		if err := p.tables[i].build(p.active.ids, p.wBuf); err != nil {
			return err
		}
	}
	return nil
}

// NextBatch implements BatchDrawer: the shared phase clock advances
// once, then every replica draws from the current phase's table.
func (p *PhasedBatch) NextBatch(pids []int32) error {
	if len(pids) != len(p.srcs) {
		return ErrBatchLen
	}
	if p.active.correct() == 0 {
		return ErrAllCrashed
	}
	if p.left == 0 {
		p.idx = (p.idx + 1) % len(p.phases)
		p.left = p.phases[p.idx].Steps
	}
	p.left--
	table := &p.tables[p.idx]
	for r := range p.srcs {
		pids[r] = int32(table.draw(&p.srcs[r]))
	}
	return nil
}

// N implements BatchDrawer.
func (p *PhasedBatch) N() int { return len(p.active.alive) }

// K implements BatchDrawer.
func (p *PhasedBatch) K() int { return len(p.srcs) }

// Threshold implements BatchDrawer.
func (p *PhasedBatch) Threshold() float64 { return p.theta }

// Crash implements BatchCrasher, rebuilding every phase's shared
// table once.
func (p *PhasedBatch) Crash(pid int) error {
	if err := p.active.crash(pid); err != nil {
		return err
	}
	return p.rebuild()
}

// NumCorrect implements BatchCrasher.
func (p *PhasedBatch) NumCorrect() int { return p.active.correct() }

// RoundRobinBatch is the replica-batched RoundRobin scheduler. The
// schedule is deterministic, so every replica is at the same position:
// one shared cursor, the same pid for all replicas each step.
type RoundRobinBatch struct {
	k      int
	active activeSet
	next   int
}

var (
	_ BatchDrawer  = (*RoundRobinBatch)(nil)
	_ BatchCrasher = (*RoundRobinBatch)(nil)
)

// NewRoundRobinBatch builds a round-robin batch drawer over n
// processes and k replicas.
func NewRoundRobinBatch(n, k int) (*RoundRobinBatch, error) {
	if n < 1 {
		return nil, ErrNoProcesses
	}
	if k < 1 {
		return nil, ErrNoReplicas
	}
	return &RoundRobinBatch{k: k, active: newActiveSet(n)}, nil
}

// NextBatch implements BatchDrawer.
func (r *RoundRobinBatch) NextBatch(pids []int32) error {
	if len(pids) != r.k {
		return ErrBatchLen
	}
	if r.active.correct() == 0 {
		return ErrAllCrashed
	}
	for {
		pid := r.next
		r.next = (r.next + 1) % len(r.active.alive)
		if r.active.alive[pid] {
			for i := range pids {
				pids[i] = int32(pid)
			}
			return nil
		}
	}
}

// N implements BatchDrawer.
func (r *RoundRobinBatch) N() int { return len(r.active.alive) }

// K implements BatchDrawer.
func (r *RoundRobinBatch) K() int { return r.k }

// Threshold implements BatchDrawer (0: deterministic).
func (r *RoundRobinBatch) Threshold() float64 { return 0 }

// Crash implements BatchCrasher.
func (r *RoundRobinBatch) Crash(pid int) error { return r.active.crash(pid) }

// NumCorrect implements BatchCrasher.
func (r *RoundRobinBatch) NumCorrect() int { return r.active.correct() }

// AdversarialBatch is the replica-batched Adversarial scheduler: the
// strategy is a deterministic function of the step count, so all
// replicas see the same point-mass schedule.
type AdversarialBatch struct {
	n, k     int
	tau      uint64
	strategy Strategy
}

var _ BatchDrawer = (*AdversarialBatch)(nil)

// NewAdversarialBatch builds an adversarial batch drawer.
func NewAdversarialBatch(n, k int, strategy Strategy) (*AdversarialBatch, error) {
	if n < 1 {
		return nil, ErrNoProcesses
	}
	if k < 1 {
		return nil, ErrNoReplicas
	}
	if strategy == nil {
		return nil, errNilStrategy
	}
	return &AdversarialBatch{n: n, k: k, strategy: strategy}, nil
}

// NextBatch implements BatchDrawer.
func (a *AdversarialBatch) NextBatch(pids []int32) error {
	if len(pids) != a.k {
		return ErrBatchLen
	}
	pid := a.strategy(a.tau, a.n)
	a.tau++
	if pid < 0 || pid >= a.n {
		return fmt.Errorf("%w: strategy chose %d of %d", ErrBadProcess, pid, a.n)
	}
	for i := range pids {
		pids[i] = int32(pid)
	}
	return nil
}

// N implements BatchDrawer.
func (a *AdversarialBatch) N() int { return a.n }

// K implements BatchDrawer.
func (a *AdversarialBatch) K() int { return a.k }

// Threshold implements BatchDrawer (0: adversaries carry no
// probabilistic guarantee).
func (a *AdversarialBatch) Threshold() float64 { return 0 }
