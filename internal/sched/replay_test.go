package sched

import (
	"errors"
	"testing"

	"pwf/internal/rng"
)

func TestReplayValidation(t *testing.T) {
	if _, err := NewReplay(0, []int32{0}, false); !errors.Is(err, ErrNoProcesses) {
		t.Errorf("n=0: %v", err)
	}
	if _, err := NewReplay(2, nil, false); err == nil {
		t.Error("empty trace: nil error")
	}
	if _, err := NewReplay(2, []int32{0, 5}, false); !errors.Is(err, ErrBadProcess) {
		t.Errorf("out-of-range pid: %v", err)
	}
	if _, err := NewReplay(2, []int32{-1}, false); !errors.Is(err, ErrBadProcess) {
		t.Errorf("negative pid: %v", err)
	}
}

func TestReplayPlaysTraceInOrder(t *testing.T) {
	trace := []int32{2, 0, 1, 1, 0}
	r, err := NewReplay(3, trace, false)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range trace {
		if got := r.Remaining(); got != len(trace)-i {
			t.Fatalf("Remaining before step %d = %d", i, got)
		}
		pid, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if pid != int(want) {
			t.Fatalf("step %d: pid %d, want %d", i, pid, want)
		}
	}
	if _, err := r.Next(); !errors.Is(err, ErrTraceExhausted) {
		t.Fatalf("exhausted trace: %v", err)
	}
}

func TestReplayLoops(t *testing.T) {
	r, err := NewReplay(2, []int32{0, 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		pid, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if pid != i%2 {
			t.Fatalf("step %d: pid %d, want %d", i, pid, i%2)
		}
	}
}

func TestReplayCopiesTrace(t *testing.T) {
	trace := []int32{0, 1}
	r, err := NewReplay(2, trace, false)
	if err != nil {
		t.Fatal(err)
	}
	trace[0] = 1
	pid, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if pid != 0 {
		t.Fatal("NewReplay did not copy the trace")
	}
}

func TestReplayZeroThreshold(t *testing.T) {
	r, err := NewReplay(2, []int32{0}, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Threshold() != 0 {
		t.Error("replay should report zero threshold")
	}
	if r.N() != 2 {
		t.Errorf("N = %d", r.N())
	}
}

// TestReplayRecordedNaiveTraceByteForByte closes the compatibility
// loop of the sampler rewrite: a schedule trace recorded under the
// superseded O(n) samplers (the NextNaive reference path, i.e. what
// any pre-rewrite run would have written to disk) must replay
// element-for-element through the untouched Replay scheduler.
func TestReplayRecordedNaiveTraceByteForByte(t *testing.T) {
	const n = 8
	samplers := map[string]func() (int, error){}

	u := mustUniform(t, n, 31)
	if err := u.Crash(3); err != nil {
		t.Fatal(err)
	}
	samplers["uniform"] = u.NextNaive

	l, err := NewLottery([]int{1, 2, 3, 4, 5, 6, 7, 8}, rng.New(32))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Crash(5); err != nil {
		t.Fatal(err)
	}
	samplers["lottery"] = l.NextNaive

	for name, next := range samplers {
		trace := make([]int32, 4096)
		for i := range trace {
			pid, err := next()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			trace[i] = int32(pid)
		}
		r, err := NewReplay(n, trace, false)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i, want := range trace {
			got, err := r.Next()
			if err != nil {
				t.Fatalf("%s: step %d: %v", name, i, err)
			}
			if got != int(want) {
				t.Fatalf("%s: step %d: replayed %d, recorded %d", name, i, got, want)
			}
		}
		if _, err := r.Next(); !errors.Is(err, ErrTraceExhausted) {
			t.Fatalf("%s: after trace: %v", name, err)
		}
	}
}
