package sched

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"pwf/internal/rng"
	"pwf/internal/stats"
)

func mustUniform(t *testing.T, n int, seed uint64) *Uniform {
	t.Helper()
	u, err := NewUniform(n, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestUniformRange(t *testing.T) {
	u := mustUniform(t, 8, 1)
	for i := 0; i < 1000; i++ {
		pid, err := u.Next()
		if err != nil {
			t.Fatal(err)
		}
		if pid < 0 || pid >= 8 {
			t.Fatalf("pid %d out of range", pid)
		}
	}
}

func TestUniformFairness(t *testing.T) {
	const (
		n     = 10
		steps = 200000
	)
	u := mustUniform(t, n, 2)
	counts := make([]int, n)
	for i := 0; i < steps; i++ {
		pid, err := u.Next()
		if err != nil {
			t.Fatal(err)
		}
		counts[pid]++
	}
	stat, dof, err := stats.ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if crit := stats.ChiSquareCritical999(dof); stat > crit {
		t.Fatalf("uniform scheduler not uniform: chi2=%v > %v, counts=%v", stat, crit, counts)
	}
}

func TestUniformThreshold(t *testing.T) {
	u := mustUniform(t, 4, 3)
	if got := u.Threshold(); got != 0.25 {
		t.Fatalf("Threshold = %v, want 0.25", got)
	}
}

func TestUniformConstructorErrors(t *testing.T) {
	if _, err := NewUniform(0, rng.New(1)); err == nil {
		t.Error("n=0: nil error")
	}
	if _, err := NewUniform(3, nil); err == nil {
		t.Error("nil src: nil error")
	}
}

func TestUniformCrash(t *testing.T) {
	u := mustUniform(t, 4, 4)
	if err := u.Crash(2); err != nil {
		t.Fatal(err)
	}
	if u.Correct(2) {
		t.Error("process 2 still correct after crash")
	}
	if u.NumCorrect() != 3 {
		t.Errorf("NumCorrect = %d, want 3", u.NumCorrect())
	}
	for i := 0; i < 1000; i++ {
		pid, err := u.Next()
		if err != nil {
			t.Fatal(err)
		}
		if pid == 2 {
			t.Fatal("crashed process was scheduled")
		}
	}
}

func TestUniformCrashErrors(t *testing.T) {
	u := mustUniform(t, 2, 5)
	if err := u.Crash(-1); !errors.Is(err, ErrBadProcess) {
		t.Errorf("Crash(-1): %v", err)
	}
	if err := u.Crash(5); !errors.Is(err, ErrBadProcess) {
		t.Errorf("Crash(5): %v", err)
	}
	if err := u.Crash(0); err != nil {
		t.Fatal(err)
	}
	if err := u.Crash(0); !errors.Is(err, ErrAlreadyDead) {
		t.Errorf("double crash: %v", err)
	}
	if err := u.Crash(1); !errors.Is(err, ErrLastProcess) {
		t.Errorf("last process crash: %v", err)
	}
}

func TestWeightedProportions(t *testing.T) {
	w, err := NewWeighted([]float64{1, 3}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	const steps = 100000
	counts := make([]int, 2)
	for i := 0; i < steps; i++ {
		pid, err := w.Next()
		if err != nil {
			t.Fatal(err)
		}
		counts[pid]++
	}
	frac := float64(counts[1]) / steps
	if math.Abs(frac-0.75) > 0.01 {
		t.Fatalf("process 1 frequency %v, want ~0.75", frac)
	}
	if got := w.Threshold(); got != 0.25 {
		t.Errorf("Threshold = %v, want 0.25", got)
	}
}

func TestWeightedRejectsNonPositive(t *testing.T) {
	if _, err := NewWeighted([]float64{1, 0}, rng.New(1)); err == nil {
		t.Error("zero weight: nil error")
	}
	if _, err := NewWeighted([]float64{1, -2}, rng.New(1)); err == nil {
		t.Error("negative weight: nil error")
	}
	if _, err := NewWeighted(nil, rng.New(1)); err == nil {
		t.Error("empty weights: nil error")
	}
}

func TestWeightedCrashRenormalizes(t *testing.T) {
	w, err := NewWeighted([]float64{1, 1, 2}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Crash(2); err != nil {
		t.Fatal(err)
	}
	const steps = 50000
	counts := make([]int, 3)
	for i := 0; i < steps; i++ {
		pid, err := w.Next()
		if err != nil {
			t.Fatal(err)
		}
		counts[pid]++
	}
	if counts[2] != 0 {
		t.Fatal("crashed process scheduled")
	}
	frac := float64(counts[0]) / steps
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("after crash, process 0 frequency %v, want ~0.5", frac)
	}
}

func TestLotteryProportions(t *testing.T) {
	l, err := NewLottery([]int{1, 1, 2}, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	const steps = 100000
	counts := make([]int, 3)
	for i := 0; i < steps; i++ {
		pid, err := l.Next()
		if err != nil {
			t.Fatal(err)
		}
		counts[pid]++
	}
	if math.Abs(float64(counts[2])/steps-0.5) > 0.01 {
		t.Fatalf("2-ticket process frequency %v, want ~0.5", float64(counts[2])/steps)
	}
	if got := l.Threshold(); got != 0.25 {
		t.Errorf("Threshold = %v, want 0.25", got)
	}
}

func TestLotterySetTickets(t *testing.T) {
	l, err := NewLottery([]int{1, 1}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SetTickets(0, 3); err != nil {
		t.Fatal(err)
	}
	const steps = 50000
	zero := 0
	for i := 0; i < steps; i++ {
		pid, err := l.Next()
		if err != nil {
			t.Fatal(err)
		}
		if pid == 0 {
			zero++
		}
	}
	if math.Abs(float64(zero)/steps-0.75) > 0.02 {
		t.Fatalf("after transfer, process 0 frequency %v, want ~0.75", float64(zero)/steps)
	}
	if err := l.SetTickets(0, 0); err == nil {
		t.Error("SetTickets(0,0): nil error")
	}
	if err := l.SetTickets(9, 1); err == nil {
		t.Error("SetTickets out of range: nil error")
	}
}

func TestLotteryRejectsBadTickets(t *testing.T) {
	if _, err := NewLottery([]int{1, 0}, rng.New(1)); err == nil {
		t.Error("zero tickets: nil error")
	}
	if _, err := NewLottery(nil, rng.New(1)); err == nil {
		t.Error("empty: nil error")
	}
}

func TestStickyCorrelation(t *testing.T) {
	const rho = 0.8
	s, err := NewSticky(4, rho, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	const steps = 100000
	last, _ := s.Next()
	repeats := 0
	for i := 1; i < steps; i++ {
		pid, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if pid == last {
			repeats++
		}
		last = pid
	}
	// P(repeat) = rho + (1-rho)/n = 0.8 + 0.05 = 0.85.
	frac := float64(repeats) / (steps - 1)
	if math.Abs(frac-0.85) > 0.01 {
		t.Fatalf("repeat frequency %v, want ~0.85", frac)
	}
	if got, want := s.Threshold(), (1-rho)/4; math.Abs(got-want) > 1e-12 {
		t.Errorf("Threshold = %v, want %v", got, want)
	}
}

func TestStickyLongRunFair(t *testing.T) {
	s, err := NewSticky(5, 0.9, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	const steps = 500000
	counts := make([]int, 5)
	for i := 0; i < steps; i++ {
		pid, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		counts[pid]++
	}
	for pid, c := range counts {
		frac := float64(c) / steps
		if math.Abs(frac-0.2) > 0.02 {
			t.Fatalf("process %d long-run share %v, want ~0.2", pid, frac)
		}
	}
}

func TestStickyRejectsBadRho(t *testing.T) {
	if _, err := NewSticky(3, 1.0, rng.New(1)); !errors.Is(err, ErrBadStickiness) {
		t.Errorf("rho=1: %v", err)
	}
	if _, err := NewSticky(3, -0.1, rng.New(1)); !errors.Is(err, ErrBadStickiness) {
		t.Errorf("rho<0: %v", err)
	}
}

func TestStickyCrashAbandonsLast(t *testing.T) {
	s, err := NewSticky(3, 0.99, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	pid, err := s.Next()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Crash(pid); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		got, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got == pid {
			t.Fatal("crashed process rescheduled by sticky path")
		}
	}
}

func TestRoundRobinCycles(t *testing.T) {
	r, err := NewRoundRobin(3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i, w := range want {
		got, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Fatalf("step %d: got %d, want %d", i, got, w)
		}
	}
	if r.Threshold() != 0 {
		t.Error("round robin should report zero threshold")
	}
}

func TestRoundRobinSkipsCrashed(t *testing.T) {
	r, err := NewRoundRobin(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Crash(1); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 2, 0, 2}
	for i, w := range want {
		got, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Fatalf("step %d: got %d, want %d", i, got, w)
		}
	}
}

func TestAdversarialSingleOut(t *testing.T) {
	a, err := NewAdversarial(4, SingleOut(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		pid, err := a.Next()
		if err != nil {
			t.Fatal(err)
		}
		if pid == 2 {
			t.Fatal("victim was scheduled")
		}
	}
	if a.Threshold() != 0 {
		t.Error("adversary should report zero threshold")
	}
}

func TestAdversarialBadStrategy(t *testing.T) {
	a, err := NewAdversarial(2, func(tau uint64, n int) int { return 7 })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Next(); !errors.Is(err, ErrBadProcess) {
		t.Errorf("out-of-range strategy: %v", err)
	}
	if _, err := NewAdversarial(2, nil); err == nil {
		t.Error("nil strategy: nil error")
	}
}

func TestSingleOutSingleProcess(t *testing.T) {
	strat := SingleOut(0)
	if got := strat(0, 1); got != 0 {
		t.Fatalf("n=1 must schedule process 0, got %d", got)
	}
}

func TestRecorderStepShares(t *testing.T) {
	u := mustUniform(t, 4, 13)
	r, err := NewRecorder(u)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 100000
	for i := 0; i < steps; i++ {
		if _, err := r.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if r.Total() != steps {
		t.Fatalf("Total = %d, want %d", r.Total(), steps)
	}
	shares := r.StepShares()
	var sum float64
	for pid, s := range shares {
		sum += s
		if math.Abs(s-0.25) > 0.01 {
			t.Errorf("process %d share %v, want ~0.25", pid, s)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("shares sum to %v", sum)
	}
}

func TestRecorderNextStepDistribution(t *testing.T) {
	u := mustUniform(t, 4, 14)
	r, err := NewRecorder(u)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200000; i++ {
		if _, err := r.Next(); err != nil {
			t.Fatal(err)
		}
	}
	for from := 0; from < 4; from++ {
		dist, err := r.NextStepDistribution(from)
		if err != nil {
			t.Fatal(err)
		}
		for to, p := range dist {
			if math.Abs(p-0.25) > 0.02 {
				t.Errorf("P(next=%d|cur=%d) = %v, want ~0.25", to, from, p)
			}
		}
	}
}

func TestRecorderErrors(t *testing.T) {
	if _, err := NewRecorder(nil); err == nil {
		t.Error("nil inner: nil error")
	}
	u := mustUniform(t, 2, 15)
	r, err := NewRecorder(u)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.NextStepDistribution(0); err == nil {
		t.Error("no transitions: nil error")
	}
	if _, err := r.NextStepDistribution(-1); !errors.Is(err, ErrBadProcess) {
		t.Errorf("bad pid: %v", err)
	}
}

func TestRecorderEmptyShares(t *testing.T) {
	u := mustUniform(t, 3, 16)
	r, err := NewRecorder(u)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range r.StepShares() {
		if s != 0 {
			t.Fatal("empty recorder should report zero shares")
		}
	}
}

func TestRecorderTransitionCountsCopied(t *testing.T) {
	u := mustUniform(t, 2, 17)
	r, err := NewRecorder(u)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := r.Next(); err != nil {
			t.Fatal(err)
		}
	}
	counts := r.TransitionCounts()
	counts[0][0] = 999999
	again := r.TransitionCounts()
	if again[0][0] == 999999 {
		t.Fatal("TransitionCounts exposed internal state")
	}
}

func TestQuickUniformAlwaysActivePick(t *testing.T) {
	// Property: after any sequence of valid crashes, Next only ever
	// schedules correct processes.
	f := func(seed uint64, crashes []uint8) bool {
		const n = 6
		u, err := NewUniform(n, rng.New(seed))
		if err != nil {
			return false
		}
		for _, c := range crashes {
			_ = u.Crash(int(c % n)) // may legitimately fail; ignore
		}
		for i := 0; i < 50; i++ {
			pid, err := u.Next()
			if err != nil {
				return false
			}
			if !u.Correct(pid) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickThresholdPositiveForStochastic(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%16) + 1
		src := rng.New(seed)
		u, err := NewUniform(n, src)
		if err != nil || u.Threshold() <= 0 {
			return false
		}
		s, err := NewSticky(n, 0.5, src)
		if err != nil || s.Threshold() <= 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUniformNext(b *testing.B) {
	u, err := NewUniform(64, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := u.Next(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStickyNext(b *testing.B) {
	s, err := NewSticky(64, 0.9, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := s.Next(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecorderNext(b *testing.B) {
	u, err := NewUniform(64, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	r, err := NewRecorder(u)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := r.Next(); err != nil {
			b.Fatal(err)
		}
	}
}
