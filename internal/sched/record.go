package sched

import (
	"errors"
	"fmt"
)

// Recorder wraps a Scheduler and accumulates the statistics the
// paper's Appendix A reports: per-process step counts (Figure 3) and
// the empirical next-step distribution conditioned on the previous
// scheduled process (Figure 4).
type Recorder struct {
	inner Scheduler

	steps       []uint64
	transitions [][]uint64
	last        int
	primed      bool
	total       uint64
}

var _ Scheduler = (*Recorder)(nil)

// NewRecorder wraps inner with schedule recording.
func NewRecorder(inner Scheduler) (*Recorder, error) {
	if inner == nil {
		return nil, errors.New("sched: nil inner scheduler")
	}
	n := inner.N()
	tr := make([][]uint64, n)
	for i := range tr {
		tr[i] = make([]uint64, n)
	}
	return &Recorder{
		inner:       inner,
		steps:       make([]uint64, n),
		transitions: tr,
	}, nil
}

// Next implements Scheduler, recording the pick.
func (r *Recorder) Next() (int, error) {
	pid, err := r.inner.Next()
	if err != nil {
		return 0, err
	}
	r.steps[pid]++
	r.total++
	if r.primed {
		r.transitions[r.last][pid]++
	}
	r.last = pid
	r.primed = true
	return pid, nil
}

// N implements Scheduler.
func (r *Recorder) N() int { return r.inner.N() }

// Threshold implements Scheduler.
func (r *Recorder) Threshold() float64 { return r.inner.Threshold() }

// Steps returns a copy of the per-process step counts.
func (r *Recorder) Steps() []uint64 {
	out := make([]uint64, len(r.steps))
	copy(out, r.steps)
	return out
}

// Total returns the number of recorded steps.
func (r *Recorder) Total() uint64 { return r.total }

// StepShares returns each process's fraction of all recorded steps
// (the quantity plotted in Figure 3).
func (r *Recorder) StepShares() []float64 {
	out := make([]float64, len(r.steps))
	if r.total == 0 {
		return out
	}
	for i, s := range r.steps {
		out[i] = float64(s) / float64(r.total)
	}
	return out
}

// NextStepDistribution returns the empirical distribution of the
// process scheduled immediately after a step by from (Figure 4). It
// returns an error if from never took a recorded step followed by
// another step.
func (r *Recorder) NextStepDistribution(from int) ([]float64, error) {
	if from < 0 || from >= len(r.transitions) {
		return nil, fmt.Errorf("%w: %d", ErrBadProcess, from)
	}
	var total uint64
	for _, c := range r.transitions[from] {
		total += c
	}
	if total == 0 {
		return nil, fmt.Errorf("sched: no transitions recorded from process %d", from)
	}
	out := make([]float64, len(r.transitions[from]))
	for i, c := range r.transitions[from] {
		out[i] = float64(c) / float64(total)
	}
	return out, nil
}

// TransitionCounts returns a copy of the full transition-count matrix;
// entry [i][j] counts steps by j immediately following a step by i.
func (r *Recorder) TransitionCounts() [][]uint64 {
	out := make([][]uint64, len(r.transitions))
	for i, row := range r.transitions {
		out[i] = make([]uint64, len(row))
		copy(out[i], row)
	}
	return out
}
