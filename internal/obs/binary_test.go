package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math"
	"sync"
	"testing"
)

// sampleEvents covers every kind, zero and large field values, step
// deltas in both directions (interleaved sweep jobs), and labels.
func sampleEvents() []Event {
	return []Event{
		{Kind: KindJobStart, Job: 0, Label: "uniform n=4"},
		{Kind: KindSched, Step: 1, PID: 0},
		{Kind: KindBegin, Step: 1, PID: 0},
		{Kind: KindCAS, Step: 2, PID: 3, OK: false},
		{Kind: KindRetry, Step: 3, PID: 3, Attempts: 1},
		{Kind: KindCAS, Step: 4, PID: 3, OK: true},
		{Kind: KindComplete, Step: 4, PID: 3, Attempts: 2},
		{Kind: KindCrash, Step: 0, PID: 2},
		{Kind: KindSched, Step: math.MaxUint64, PID: 4095},
		{Kind: KindSched, Step: 5, PID: 1}, // huge backward delta
		{Kind: KindJobEnd, Job: 7, Label: "sticky ρ=0.9", ElapsedNS: 123456789},
		{Kind: KindJobEnd, Job: 8, ElapsedNS: -1}, // labels may be empty
	}
}

func encodeBinary(t *testing.T, events []Event, opts BinaryTraceOptions) []byte {
	t.Helper()
	var buf bytes.Buffer
	if opts.Registry == nil {
		opts.Registry = NewRegistry()
	}
	w := NewBinaryTraceWriter(&buf, opts)
	for _, e := range events {
		w.Record(e)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return buf.Bytes()
}

func TestBinaryTraceGoldenHeader(t *testing.T) {
	// The first 8 bytes are the pinned v2 header: magic, version,
	// compression, two reserved zeros. Changing them is a format break
	// and must come with a version bump.
	for _, tc := range []struct {
		comp   Compression
		golden []byte
	}{
		{CompressNone, []byte{'P', 'W', 'F', 'T', 2, 0, 0, 0}},
		{CompressGzip, []byte{'P', 'W', 'F', 'T', 2, 1, 0, 0}},
	} {
		raw := encodeBinary(t, sampleEvents(), BinaryTraceOptions{Compression: tc.comp})
		if len(raw) < traceHeaderLen {
			t.Fatalf("%s: trace shorter than its header: %d bytes", tc.comp, len(raw))
		}
		if !bytes.Equal(raw[:traceHeaderLen], tc.golden) {
			t.Errorf("%s: header % x, want % x", tc.comp, raw[:traceHeaderLen], tc.golden)
		}
	}
}

func TestBinaryTraceGoldenFrame(t *testing.T) {
	// Pin the exact bytes of a tiny uncompressed trace: the framing
	// and per-kind field packing are wire format, not implementation
	// detail.
	events := []Event{
		{Kind: KindSched, Step: 1, PID: 3},
		{Kind: KindSched, Step: 2, PID: 0},
		{Kind: KindCAS, Step: 2, PID: 0, OK: true},
	}
	raw := encodeBinary(t, events, BinaryTraceOptions{})
	golden := []byte{
		'P', 'W', 'F', 'T', 2, 0, 0, 0, // header
		10,      // frame length
		1, 2, 6, // sched: zigzag(+1), zigzag(3)
		1, 2, 0, // sched: zigzag(+1), zigzag(0)
		3, 0, 0, 1, // cas: zigzag(0), zigzag(0), ok=1
	}
	if !bytes.Equal(raw, golden) {
		t.Fatalf("encoded bytes\n got % x\nwant % x", raw, golden)
	}
}

func TestBinaryTraceRoundTrip(t *testing.T) {
	for _, comp := range []Compression{CompressNone, CompressGzip} {
		events := sampleEvents()
		raw := encodeBinary(t, events, BinaryTraceOptions{Compression: comp})
		got, err := ReadBinaryEvents(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: decode: %v", comp, err)
		}
		if len(got) != len(events) {
			t.Fatalf("%s: got %d events, want %d", comp, len(got), len(events))
		}
		for i := range events {
			if got[i] != events[i] {
				t.Errorf("%s: event %d: got %+v, want %+v", comp, i, got[i], events[i])
			}
		}
	}
}

func TestBinaryTraceRoundTripAcrossFrames(t *testing.T) {
	// A tiny FrameBytes forces many frames, exercising the per-frame
	// step-delta reset and empty-frame/boundary handling.
	var events []Event
	for i := 0; i < 5000; i++ {
		events = append(events, Event{Kind: KindSched, Step: uint64(i + 1), PID: i % 7})
	}
	for _, comp := range []Compression{CompressNone, CompressGzip} {
		raw := encodeBinary(t, events, BinaryTraceOptions{Compression: comp, FrameBytes: 64})
		got, err := ReadBinaryEvents(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: decode: %v", comp, err)
		}
		if len(got) != len(events) {
			t.Fatalf("%s: got %d events, want %d", comp, len(got), len(events))
		}
		for i := range events {
			if got[i] != events[i] {
				t.Fatalf("%s: event %d: got %+v, want %+v", comp, i, got[i], events[i])
			}
		}
	}
}

func TestBinaryTraceRejectsWrongVersion(t *testing.T) {
	raw := encodeBinary(t, sampleEvents(), BinaryTraceOptions{})
	raw[4] = 3
	if _, err := ReadBinaryEvents(bytes.NewReader(raw)); !errors.Is(err, ErrTraceVersion) {
		t.Fatalf("version 3 trace: got %v, want ErrTraceVersion", err)
	}
	raw[4] = 1
	if _, err := ReadBinaryEvents(bytes.NewReader(raw)); !errors.Is(err, ErrTraceVersion) {
		t.Fatalf("version 1 trace: got %v, want ErrTraceVersion", err)
	}
}

func TestBinaryTraceRejectsBadMagic(t *testing.T) {
	raw := encodeBinary(t, sampleEvents(), BinaryTraceOptions{})
	raw[0] = 'X'
	if _, err := ReadBinaryEvents(bytes.NewReader(raw)); !errors.Is(err, ErrNotBinaryTrace) {
		t.Fatalf("bad magic: got %v, want ErrNotBinaryTrace", err)
	}
	// An NDJSON trace fed to the binary reader is the common case.
	if _, err := ReadBinaryEvents(bytes.NewReader([]byte(`{"kind":"sched","step":1,"pid":0}`))); !errors.Is(err, ErrNotBinaryTrace) {
		t.Fatalf("ndjson input: got %v, want ErrNotBinaryTrace", err)
	}
}

func TestBinaryTraceRejectsNonzeroReserved(t *testing.T) {
	raw := encodeBinary(t, sampleEvents(), BinaryTraceOptions{})
	raw[7] = 1
	if _, err := ReadBinaryEvents(bytes.NewReader(raw)); err == nil {
		t.Fatal("nonzero reserved byte decoded without error")
	}
}

func TestBinaryTraceRejectsTruncation(t *testing.T) {
	for _, comp := range []Compression{CompressNone, CompressGzip} {
		raw := encodeBinary(t, sampleEvents(), BinaryTraceOptions{Compression: comp})
		// Every proper prefix must either fail or (at an exact frame
		// boundary) yield a clean prefix of the events — never garbage,
		// never a silent full success.
		want := len(sampleEvents())
		for cut := 0; cut < len(raw); cut++ {
			got, err := ReadBinaryEvents(bytes.NewReader(raw[:cut]))
			if err == nil && len(got) >= want {
				t.Fatalf("%s: prefix of %d/%d bytes decoded all %d events without error",
					comp, cut, len(raw), want)
			}
		}
	}
}

func TestBinaryTraceRejectsOversizedFrame(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{'P', 'W', 'F', 'T', 2, 0, 0, 0})
	// A length prefix claiming 1 GiB must be rejected before any
	// allocation of that size.
	buf.Write([]byte{0x80, 0x80, 0x80, 0x80, 0x04}) // uvarint(1<<30)
	if _, err := ReadBinaryEvents(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("1 GiB frame claim decoded without error")
	}
}

func TestBinaryTraceRejectsUnknownKind(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{'P', 'W', 'F', 'T', 2, 0, 0, 0})
	buf.Write([]byte{1, 99}) // one-byte frame holding kind 99
	if _, err := ReadBinaryEvents(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("unknown kind decoded without error")
	}
}

func TestReadTraceSniffsBothFormats(t *testing.T) {
	events := sampleEvents()

	var ndjson bytes.Buffer
	tr := NewTraceRecorder(&ndjson)
	for _, e := range events {
		tr.Record(e)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	bin := encodeBinary(t, events, BinaryTraceOptions{Compression: CompressGzip})

	for name, raw := range map[string][]byte{"ndjson": ndjson.Bytes(), "binary": bin} {
		got, err := ReadTrace(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(events) {
			t.Fatalf("%s: got %d events, want %d", name, len(got), len(events))
		}
		for i := range events {
			if got[i] != events[i] {
				t.Errorf("%s: event %d: got %+v, want %+v", name, i, got[i], events[i])
			}
		}
	}
}

func TestNewTraceWriterRejectsCompressedNDJSON(t *testing.T) {
	if _, err := NewTraceWriter(io.Discard, TraceNDJSON, CompressGzip); err == nil {
		t.Fatal("ndjson+gzip accepted; compression is a binary-format feature")
	}
	if _, err := NewTraceWriter(io.Discard, "protobuf", CompressNone); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestParseTraceFormatAndCompression(t *testing.T) {
	if f, err := ParseTraceFormat("bin"); err != nil || f != TraceBinary {
		t.Fatalf("ParseTraceFormat(bin) = %v, %v", f, err)
	}
	if _, err := ParseTraceFormat("yaml"); err == nil {
		t.Fatal("ParseTraceFormat(yaml) accepted")
	}
	if c, err := ParseCompression("gzip"); err != nil || c != CompressGzip {
		t.Fatalf("ParseCompression(gzip) = %v, %v", c, err)
	}
	if _, err := ParseCompression("zstd"); err == nil {
		t.Fatal("ParseCompression(zstd) accepted")
	}
}

// TestBinaryTraceCompression pins the size win the format exists for:
// on a realistic event stream the binary trace must be at least 5×
// smaller than NDJSON, with and without gzip.
func TestBinaryTraceCompression(t *testing.T) {
	var events []Event
	step := uint64(0)
	for i := 0; i < 50000; i++ {
		step++
		pid := i % 64
		events = append(events, Event{Kind: KindSched, Step: step, PID: pid})
		switch i % 5 {
		case 0:
			events = append(events, Event{Kind: KindBegin, Step: step, PID: pid})
		case 1, 2:
			events = append(events, Event{Kind: KindCAS, Step: step, PID: pid, OK: i%2 == 0})
		case 3:
			events = append(events, Event{Kind: KindRetry, Step: step, PID: pid, Attempts: uint64(i % 7)})
		case 4:
			events = append(events, Event{Kind: KindComplete, Step: step, PID: pid, Attempts: uint64(i % 7)})
		}
	}
	var ndjson bytes.Buffer
	tr := NewTraceRecorder(&ndjson)
	for _, e := range events {
		tr.Record(e)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, comp := range []Compression{CompressNone, CompressGzip} {
		raw := encodeBinary(t, events, BinaryTraceOptions{Compression: comp})
		ratio := float64(ndjson.Len()) / float64(len(raw))
		t.Logf("%s: %d events, ndjson %d B, binary %d B, ratio %.1fx",
			comp, len(events), ndjson.Len(), len(raw), ratio)
		if ratio < 5 {
			t.Errorf("%s: binary trace only %.1fx smaller than NDJSON, want >= 5x", comp, ratio)
		}
	}
}

func TestBinaryTraceWriterMetrics(t *testing.T) {
	reg := NewRegistry()
	var buf bytes.Buffer
	w := NewBinaryTraceWriter(&buf, BinaryTraceOptions{Compression: CompressGzip, Registry: reg})
	for _, e := range sampleEvents() {
		w.Record(e)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["trace_events_written"]; got != uint64(len(sampleEvents())) {
		t.Errorf("trace_events_written = %d, want %d", got, len(sampleEvents()))
	}
	if got := snap.Counters["trace_frames_written"]; got != 1 {
		t.Errorf("trace_frames_written = %d, want 1", got)
	}
	if snap.Counters["trace_raw_bytes"] == 0 {
		t.Error("trace_raw_bytes = 0")
	}
	if got := snap.Counters["trace_bytes_written"]; got != uint64(buf.Len()) {
		t.Errorf("trace_bytes_written = %d, want %d (actual file size)", got, buf.Len())
	}
	if snap.Counters["trace_events_dropped"] != 0 {
		t.Errorf("trace_events_dropped = %d, want 0", snap.Counters["trace_events_dropped"])
	}
	if _, ok := snap.Gauges["trace_compression_ratio_x100"]; !ok {
		t.Error("trace_compression_ratio_x100 gauge not registered")
	}
}

func TestBinaryTraceWriterStickyError(t *testing.T) {
	reg := NewRegistry()
	w := NewBinaryTraceWriter(failWriter{}, BinaryTraceOptions{Registry: reg})
	w.Record(Event{Kind: KindSched, Step: 1, PID: 0})
	if err := w.Flush(); err == nil {
		t.Fatal("flush on a failing writer returned nil")
	}
	for _, e := range sampleEvents() {
		w.Record(e)
	}
	if got := reg.Snapshot().Counters["trace_events_dropped"]; got != uint64(len(sampleEvents())) {
		t.Errorf("trace_events_dropped = %d, want %d", got, len(sampleEvents()))
	}
	if err := w.Flush(); err == nil {
		t.Fatal("error did not stick across Flush calls")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }

// TestTraceWriterConcurrentHammer drives both trace writers from many
// goroutines under -race: events must interleave without corruption,
// with per-goroutine order preserved by the serializing mutex.
func TestTraceWriterConcurrentHammer(t *testing.T) {
	const writers = 8
	const per = 2000
	for _, format := range []TraceFormat{TraceNDJSON, TraceBinary} {
		var buf bytes.Buffer
		var w TraceWriter
		if format == TraceNDJSON {
			w = NewTraceRecorder(&buf)
		} else {
			w = NewBinaryTraceWriter(&buf, BinaryTraceOptions{
				Compression: CompressGzip, FrameBytes: 512, Registry: NewRegistry(),
			})
		}
		var wg sync.WaitGroup
		for g := 0; g < writers; g++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					w.Record(Event{Kind: KindSched, Step: uint64(i + 1), PID: pid})
				}
			}(g)
		}
		wg.Wait()
		if err := w.Flush(); err != nil {
			t.Fatalf("%s: flush: %v", format, err)
		}
		events, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", format, err)
		}
		if len(events) != writers*per {
			t.Fatalf("%s: got %d events, want %d", format, len(events), writers*per)
		}
		next := make([]uint64, writers)
		for _, e := range events {
			if e.PID < 0 || e.PID >= writers {
				t.Fatalf("%s: corrupt pid %d", format, e.PID)
			}
			if e.Step != next[e.PID]+1 {
				t.Fatalf("%s: pid %d: step %d after %d", format, e.PID, e.Step, next[e.PID])
			}
			next[e.PID] = e.Step
		}
	}
}

// BenchmarkBinaryTraceEncode measures the per-event encode cost on a
// sched-heavy stream — the number the <10%-of-traced-run acceptance
// criterion in BENCH_trace.json is built from.
func BenchmarkBinaryTraceEncode(b *testing.B) {
	for _, comp := range []Compression{CompressNone, CompressGzip} {
		b.Run(comp.String(), func(b *testing.B) {
			w := NewBinaryTraceWriter(io.Discard, BinaryTraceOptions{
				Compression: comp, Registry: NewRegistry(),
			})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w.Record(Event{Kind: KindSched, Step: uint64(i), PID: i & 1023})
			}
			if err := w.Flush(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkBinaryTraceDecode(b *testing.B) {
	var events []Event
	for i := 0; i < 100000; i++ {
		events = append(events, Event{Kind: KindSched, Step: uint64(i), PID: i & 1023})
	}
	var buf bytes.Buffer
	w := NewBinaryTraceWriter(&buf, BinaryTraceOptions{Registry: NewRegistry()})
	for _, e := range events {
		w.Record(e)
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := ReadBinaryEvents(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != len(events) {
			b.Fatalf("got %d events, want %d", len(got), len(events))
		}
	}
}

// TestBinaryTraceJSONEquivalence checks that a binary trace decodes
// to exactly the events its NDJSON twin encodes, field for field —
// the two formats are views of one stream.
func TestBinaryTraceJSONEquivalence(t *testing.T) {
	events := sampleEvents()
	var ndjson bytes.Buffer
	tr := NewTraceRecorder(&ndjson)
	for _, e := range events {
		tr.Record(e)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := ReadEvents(&ndjson)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := ReadBinaryEvents(bytes.NewReader(encodeBinary(t, events, BinaryTraceOptions{})))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(fromJSON)
	bj, _ := json.Marshal(fromBin)
	if !bytes.Equal(a, bj) {
		t.Fatalf("decoded streams differ:\nndjson: %s\nbinary: %s", a, bj)
	}
}
