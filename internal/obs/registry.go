package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"sync"
)

// Registry names counters, histograms, and gauges, and snapshots them
// all at once for JSON or expvar export. Lookup (get-or-create) takes
// a mutex, so hot paths should resolve their metric pointers once, up
// front, and then update the returned wait-free atomics directly —
// the pattern NewMetrics and OpStats.Register follow.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
	gauges   map[string]func() uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
		gauges:   make(map[string]func() uint64),
	}
}

// Default is the process-wide registry. The sweep engine's chain
// cache publishes here, and the CLIs snapshot it for -metrics.
var Default = NewRegistry()

// Counter returns the named counter, creating it if needed. Counters,
// histograms, and gauges live in separate namespaces.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RegisterCounter publishes an externally owned counter under name,
// replacing any previous registration.
func (r *Registry) RegisterCounter(name string, c *Counter) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters[name] = c
}

// RegisterHistogram publishes an externally owned histogram under
// name, replacing any previous registration.
func (r *Registry) RegisterHistogram(name string, h *Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hists[name] = h
}

// Gauge publishes a live value under name: fn is invoked at snapshot
// time. Use it for values owned elsewhere, like the chain cache's
// hit/miss counters.
func (r *Registry) Gauge(name string, fn func() uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = fn
}

// Snapshot is a point-in-time copy of every registered metric,
// marshalable to JSON (map keys sort, so output is stable).
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]uint64            `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the current value of every metric. Values are
// read individually (each is exact and monotone); the set is not a
// consistent cut across metrics under concurrent updates.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Load()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]uint64, len(r.gauges))
		for name, fn := range r.gauges {
			s.Gauges[name] = fn()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.Snapshot()
		}
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// expvarPublished guards against double expvar.Publish (which
// panics): each name is published at most once per process.
var expvarPublished sync.Map

// PublishExpvar exposes the registry's snapshot as the named expvar
// (visible at /debug/vars). Publishing the same name twice — even
// from different registries — is a no-op after the first call.
func (r *Registry) PublishExpvar(name string) {
	if _, loaded := expvarPublished.LoadOrStore(name, true); loaded {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
