package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugOption extends ServeDebug's surface.
type DebugOption func(*debugConfig)

type debugConfig struct {
	tail *TraceTailer
}

// WithTraceTail mounts t's live-trace stream at /debug/trace/tail:
// NDJSON events with cursor resume (see TraceTailer.Handler).
func WithTraceTail(t *TraceTailer) DebugOption {
	return func(c *debugConfig) { c.tail = t }
}

// ServeDebug starts an HTTP listener on addr exposing the standard
// debug surface for long-running sweeps:
//
//	/metrics            the registry snapshot as JSON
//	/debug/vars         expvar (includes the registry, published as "pwf")
//	/debug/pprof/       runtime profiles (CPU, heap, goroutine, ...)
//	/debug/trace/tail   live trace tail (only with WithTraceTail)
//
// It returns the bound address (useful with ":0") and a stop function
// that closes the listener. Errors from the serving goroutine after a
// successful start are ignored, as is conventional for debug
// endpoints.
func ServeDebug(addr string, reg *Registry, opts ...DebugOption) (bound string, stop func() error, err error) {
	var cfg debugConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	reg.PublishExpvar("pwf")

	mux := http.NewServeMux()
	if cfg.tail != nil {
		mux.Handle("/debug/trace/tail", cfg.tail.Handler())
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
