package obs

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Trace format v2: a length-prefixed binary framing for Event streams.
//
// The NDJSON trace path (format v1, trace.go) spends hundreds of
// nanoseconds and ~35 bytes per event, which dominates I/O long
// before the paper-scale n=4096 × 10^8-step regime. Format v2 packs
// the same events into varint-coded binary frames at a few bytes per
// event, optionally compressed frame-by-frame, while preserving the
// byte-exact replay guarantee (see TestBinaryTraceReplayRoundTrip).
//
// # File layout
//
//	header   8 bytes: "PWFT" magic, version (2), compression, 2×0
//	frame*   uvarint payload length, then payload
//
// Each frame payload is a batch of consecutive events; with gzip
// compression every payload is one self-contained gzip member, so a
// reader never needs more than one frame in memory and a file whose
// tail frame is cut off still yields every complete frame before it
// (chunked reading). Within a frame each event is packed as
//
//	kind     1 byte
//	fields   varints keyed by kind (see the Kind constants):
//	         sched/begin/crash   step pid
//	         cas                 step pid ok
//	         retry/complete      step pid attempts
//	         job_start           job label
//	         job_end             job label elapsed_ns
//
// Step is delta-coded: each frame stores zigzag(step − previous
// event's step), with the previous step reset to 0 at every frame
// boundary so frames stay independently decodable. Labels are a
// uvarint byte length followed by the bytes.
//
// # Compatibility policy
//
// The version byte is the schema version of everything after the
// header. Readers speak exactly traceVersion and reject other
// versions with ErrTraceVersion (mirroring api.ErrVersion), so a v3
// trace fails loudly at open instead of decoding garbage. Additive
// evolution (new kinds, new compression codes) bumps the version.
// The golden header bytes are pinned by TestBinaryTraceGoldenHeader.

// traceMagic identifies a v2 binary trace file.
var traceMagic = [4]byte{'P', 'W', 'F', 'T'}

// traceVersion is the binary trace schema version this package
// encodes and accepts. Version 1 is the NDJSON format, which carries
// no header; the binary format starts at 2.
const traceVersion = 2

// traceHeaderLen is the fixed byte length of the file header.
const traceHeaderLen = 8

// ErrTraceVersion is returned (wrapped) when a binary trace carries a
// version this package does not speak. Check with errors.Is.
var ErrTraceVersion = errors.New("obs: unsupported binary trace version")

// ErrNotBinaryTrace is returned (wrapped) when the input does not
// start with the binary trace magic — usually an NDJSON trace fed to
// the binary reader. ReadTrace sniffs the magic and dispatches to the
// right decoder.
var ErrNotBinaryTrace = errors.New("obs: not a binary trace (missing PWFT magic)")

// TraceFormat names a trace file format, as spelled by the CLIs'
// -trace-format flag.
type TraceFormat string

const (
	// TraceNDJSON is format v1: one JSON event per line.
	TraceNDJSON TraceFormat = "ndjson"
	// TraceBinary is format v2: length-prefixed varint-packed binary
	// frames, optionally compressed.
	TraceBinary TraceFormat = "bin"
)

// ParseTraceFormat parses a -trace-format flag value.
func ParseTraceFormat(s string) (TraceFormat, error) {
	switch TraceFormat(s) {
	case TraceNDJSON, TraceBinary:
		return TraceFormat(s), nil
	}
	return "", fmt.Errorf("obs: unknown trace format %q (want ndjson or bin)", s)
}

// Compression selects the per-frame compression of a binary trace.
// The value is the header's compression byte.
type Compression byte

const (
	// CompressNone stores frame payloads raw.
	CompressNone Compression = 0
	// CompressGzip stores each frame payload as one gzip member
	// (BestSpeed), so frames stay independently decodable.
	CompressGzip Compression = 1
)

// String returns the flag spelling ("none", "gzip").
func (c Compression) String() string {
	switch c {
	case CompressNone:
		return "none"
	case CompressGzip:
		return "gzip"
	}
	return fmt.Sprintf("Compression(%d)", byte(c))
}

// ParseCompression parses a -trace-compress flag value.
func ParseCompression(s string) (Compression, error) {
	switch s {
	case "none":
		return CompressNone, nil
	case "gzip":
		return CompressGzip, nil
	}
	return 0, fmt.Errorf("obs: unknown trace compression %q (want none or gzip)", s)
}

// TraceWriter is the interface every trace-writing Recorder
// implements: record events, then Flush once the run is over. Both
// TraceRecorder (NDJSON) and BinaryTraceWriter satisfy it, so callers
// can switch formats without changing their plumbing.
type TraceWriter interface {
	Recorder
	Flush() error
}

// NewTraceWriter constructs the trace writer for a (format,
// compression) pair: the NDJSON TraceRecorder or a binary
// BinaryTraceWriter. Compression is a binary-format feature; asking
// for a compressed NDJSON trace is an error rather than a silently
// different format.
func NewTraceWriter(w io.Writer, format TraceFormat, comp Compression) (TraceWriter, error) {
	switch format {
	case TraceNDJSON:
		if comp != CompressNone {
			return nil, fmt.Errorf("obs: compression %s requires -trace-format=bin", comp)
		}
		return NewTraceRecorder(w), nil
	case TraceBinary:
		if comp != CompressNone && comp != CompressGzip {
			return nil, fmt.Errorf("obs: unknown trace compression %d", comp)
		}
		return NewBinaryTraceWriter(w, BinaryTraceOptions{Compression: comp}), nil
	}
	return nil, fmt.Errorf("obs: unknown trace format %q", format)
}

// Binary trace size bounds. The writer flushes frames at
// defaultFrameBytes of raw payload; the reader rejects frames
// claiming more than maxFrameBytes (encoded or decoded) so corrupt or
// adversarial length prefixes cannot force huge allocations, and
// labels longer than maxLabelBytes for the same reason.
const (
	defaultFrameBytes = 32 << 10
	maxFrameBytes     = 1 << 26
	maxLabelBytes     = 1 << 20
)

// appendEvent packs e onto buf using prevStep as the step-delta base
// and returns the extended buffer and the new base.
func appendEvent(buf []byte, e Event, prevStep uint64) ([]byte, uint64, error) {
	buf = append(buf, byte(e.Kind))
	step := func() {
		// Unsigned subtraction wraps; the int64 cast recovers the
		// signed delta, and zigzag keeps backward jumps (interleaved
		// sweep jobs) short.
		buf = binary.AppendVarint(buf, int64(e.Step-prevStep))
		buf = binary.AppendVarint(buf, int64(e.PID))
		prevStep = e.Step
	}
	label := func() {
		buf = binary.AppendUvarint(buf, uint64(len(e.Label)))
		buf = append(buf, e.Label...)
	}
	switch e.Kind {
	case KindSched, KindBegin, KindCrash:
		step()
	case KindCAS:
		step()
		ok := byte(0)
		if e.OK {
			ok = 1
		}
		buf = append(buf, ok)
	case KindRetry, KindComplete:
		step()
		buf = binary.AppendUvarint(buf, e.Attempts)
	case KindJobStart:
		buf = binary.AppendVarint(buf, int64(e.Job))
		label()
	case KindJobEnd:
		buf = binary.AppendVarint(buf, int64(e.Job))
		label()
		buf = binary.AppendVarint(buf, e.ElapsedNS)
	default:
		return nil, prevStep, fmt.Errorf("obs: encode unknown event kind %d", e.Kind)
	}
	return buf, prevStep, nil
}

// decodeEvent unpacks one event from frame[off:], returning the event,
// the next offset, and the new step-delta base.
func decodeEvent(frame []byte, off int, prevStep uint64) (Event, int, uint64, error) {
	var e Event
	if off >= len(frame) {
		return e, off, prevStep, errors.New("obs: truncated event")
	}
	e.Kind = Kind(frame[off])
	off++
	uvarint := func() (uint64, error) {
		v, n := binary.Uvarint(frame[off:])
		if n <= 0 {
			return 0, errors.New("obs: truncated event")
		}
		off += n
		return v, nil
	}
	varint := func() (int64, error) {
		v, n := binary.Varint(frame[off:])
		if n <= 0 {
			return 0, errors.New("obs: truncated event")
		}
		off += n
		return v, nil
	}
	step := func() error {
		d, err := varint()
		if err != nil {
			return err
		}
		e.Step = prevStep + uint64(d)
		prevStep = e.Step
		pid, err := varint()
		if err != nil {
			return err
		}
		e.PID = int(pid)
		return nil
	}
	label := func() error {
		n, err := uvarint()
		if err != nil {
			return err
		}
		if n > maxLabelBytes {
			return fmt.Errorf("obs: label length %d exceeds %d-byte limit", n, maxLabelBytes)
		}
		if uint64(len(frame)-off) < n {
			return errors.New("obs: truncated event")
		}
		e.Label = string(frame[off : off+int(n)])
		off += int(n)
		return nil
	}
	var err error
	switch e.Kind {
	case KindSched, KindBegin, KindCrash:
		err = step()
	case KindCAS:
		if err = step(); err == nil {
			if off >= len(frame) {
				err = errors.New("obs: truncated event")
			} else {
				switch frame[off] {
				case 0:
				case 1:
					e.OK = true
				default:
					err = fmt.Errorf("obs: invalid cas ok byte %d", frame[off])
				}
				off++
			}
		}
	case KindRetry, KindComplete:
		if err = step(); err == nil {
			e.Attempts, err = uvarint()
		}
	case KindJobStart:
		var job int64
		if job, err = varint(); err == nil {
			e.Job = int(job)
			err = label()
		}
	case KindJobEnd:
		var job int64
		if job, err = varint(); err == nil {
			e.Job = int(job)
			if err = label(); err == nil {
				e.ElapsedNS, err = varint()
			}
		}
	default:
		err = fmt.Errorf("obs: decode unknown event kind %d", e.Kind)
	}
	if err != nil {
		return Event{}, off, prevStep, err
	}
	return e, off, prevStep, nil
}

// BinaryTraceOptions parameterizes NewBinaryTraceWriter. The zero
// value selects an uncompressed trace with the default frame size,
// metered on the Default registry.
type BinaryTraceOptions struct {
	// Compression selects the per-frame compression (default none).
	Compression Compression
	// FrameBytes is the raw payload size at which the writer emits a
	// frame (default 32 KiB). Larger frames compress better; smaller
	// frames bound a tailing reader's latency.
	FrameBytes int
	// Registry receives the writer metrics (trace_frames_written,
	// trace_events_written, trace_raw_bytes, trace_bytes_written,
	// trace_events_dropped, and the trace_compression_ratio_x100
	// gauge); nil selects Default.
	Registry *Registry
}

// BinaryTraceWriter is a Recorder writing events in trace format v2.
// Like TraceRecorder it buffers internally and serializes Record with
// a mutex, so one writer may receive events from every worker of a
// sweep; call Flush (or re-Flush) when the run is over — the file is
// valid after any Flush, because frames are self-contained.
type BinaryTraceWriter struct {
	mu       sync.Mutex
	bw       *bufio.Writer
	comp     Compression
	frame    []byte
	prevStep uint64
	flushAt  int
	gz       *gzip.Writer
	gzBuf    bytes.Buffer
	err      error

	mFrames  *Counter
	mEvents  *Counter
	mRaw     *Counter
	mWritten *Counter
	mDropped *Counter
}

// registerTraceMetrics wires the shared trace-writer metrics on reg
// and returns them. Counters are registry-owned (get-or-create by
// name), so every writer on one registry shares the same totals and
// the ratio gauge stays consistent.
func registerTraceMetrics(reg *Registry) (frames, events, raw, written, dropped *Counter) {
	if reg == nil {
		reg = Default
	}
	frames = reg.Counter("trace_frames_written")
	events = reg.Counter("trace_events_written")
	raw = reg.Counter("trace_raw_bytes")
	written = reg.Counter("trace_bytes_written")
	dropped = reg.Counter("trace_events_dropped")
	r, w := raw, written
	reg.Gauge("trace_compression_ratio_x100", func() uint64 {
		wr := w.Load()
		if wr == 0 {
			return 0
		}
		return r.Load() * 100 / wr
	})
	return frames, events, raw, written, dropped
}

// NewBinaryTraceWriter returns a Recorder writing a v2 binary trace
// to w. The header is written immediately; any write error is sticky
// and reported by Flush.
func NewBinaryTraceWriter(w io.Writer, opts BinaryTraceOptions) *BinaryTraceWriter {
	if opts.FrameBytes <= 0 {
		opts.FrameBytes = defaultFrameBytes
	}
	t := &BinaryTraceWriter{
		bw:      bufio.NewWriterSize(w, 1<<16),
		comp:    opts.Compression,
		frame:   make([]byte, 0, opts.FrameBytes+256),
		flushAt: opts.FrameBytes,
	}
	t.mFrames, t.mEvents, t.mRaw, t.mWritten, t.mDropped = registerTraceMetrics(opts.Registry)
	if opts.Compression == CompressGzip {
		t.gz, _ = gzip.NewWriterLevel(&t.gzBuf, gzip.BestSpeed)
	}
	hdr := [traceHeaderLen]byte{traceMagic[0], traceMagic[1], traceMagic[2], traceMagic[3],
		traceVersion, byte(opts.Compression)}
	if _, err := t.bw.Write(hdr[:]); err != nil {
		t.err = err
	}
	t.mWritten.Add(traceHeaderLen)
	return t
}

// Record implements Recorder. The first encode or write error is
// sticky: subsequent events are dropped (counted by
// trace_events_dropped) and the error is reported by Flush.
func (t *BinaryTraceWriter) Record(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		t.mDropped.Inc()
		return
	}
	frame, prev, err := appendEvent(t.frame, e, t.prevStep)
	if err != nil {
		t.err = err
		t.mDropped.Inc()
		return
	}
	t.frame, t.prevStep = frame, prev
	t.mEvents.Inc()
	if len(t.frame) >= t.flushAt {
		t.err = t.flushFrameLocked()
	}
}

// flushFrameLocked emits the buffered frame: compress if configured,
// length-prefix, write. The step-delta base resets so the next frame
// is independently decodable.
func (t *BinaryTraceWriter) flushFrameLocked() error {
	if len(t.frame) == 0 {
		return nil
	}
	payload := t.frame
	if t.comp == CompressGzip {
		t.gzBuf.Reset()
		t.gz.Reset(&t.gzBuf)
		if _, err := t.gz.Write(t.frame); err != nil {
			return err
		}
		if err := t.gz.Close(); err != nil {
			return err
		}
		payload = t.gzBuf.Bytes()
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
	if _, err := t.bw.Write(lenBuf[:n]); err != nil {
		return err
	}
	if _, err := t.bw.Write(payload); err != nil {
		return err
	}
	t.mFrames.Inc()
	t.mRaw.Add(uint64(len(t.frame)))
	t.mWritten.Add(uint64(n + len(payload)))
	t.frame = t.frame[:0]
	t.prevStep = 0
	return nil
}

// Flush emits the partial frame, drains the buffer, and returns the
// first error encountered so far. The stream stays appendable: more
// Records after a Flush simply start a new frame.
func (t *BinaryTraceWriter) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	if err := t.flushFrameLocked(); err != nil {
		t.err = err
		return t.err
	}
	if err := t.bw.Flush(); err != nil {
		t.err = err
	}
	return t.err
}

// BinaryTraceReader decodes a v2 binary trace frame at a time: at
// most one frame (32 KiB raw by default) is resident regardless of
// file size, which is what lets paper-scale traces replay without
// paper-scale memory.
type BinaryTraceReader struct {
	br       *bufio.Reader
	comp     Compression
	frame    []byte
	off      int
	prevStep uint64
	compBuf  []byte
	gz       *gzip.Reader
	line     int // frame index, for errors
}

// NewBinaryTraceReader validates the header and returns a reader
// positioned at the first frame. A wrong version is ErrTraceVersion;
// missing magic is ErrNotBinaryTrace (both wrapped).
func NewBinaryTraceReader(r io.Reader) (*BinaryTraceReader, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	var hdr [traceHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotBinaryTrace, err)
	}
	if !bytes.Equal(hdr[:4], traceMagic[:]) {
		return nil, fmt.Errorf("%w: got % x", ErrNotBinaryTrace, hdr[:4])
	}
	if hdr[4] != traceVersion {
		return nil, fmt.Errorf("%w: got version %d, this reader speaks %d",
			ErrTraceVersion, hdr[4], traceVersion)
	}
	comp := Compression(hdr[5])
	if comp != CompressNone && comp != CompressGzip {
		return nil, fmt.Errorf("obs: unknown trace compression byte %d", hdr[5])
	}
	if hdr[6] != 0 || hdr[7] != 0 {
		return nil, fmt.Errorf("obs: nonzero reserved header bytes % x", hdr[6:8])
	}
	return &BinaryTraceReader{br: br, comp: comp}, nil
}

// Next returns the next event, or io.EOF cleanly at the end of the
// trace. A frame or event cut short mid-way is an error naming the
// frame, never a silent success.
func (r *BinaryTraceReader) Next() (Event, error) {
	for r.off >= len(r.frame) {
		if err := r.readFrame(); err != nil {
			return Event{}, err
		}
	}
	e, off, prev, err := decodeEvent(r.frame, r.off, r.prevStep)
	if err != nil {
		return Event{}, fmt.Errorf("obs: trace frame %d: %w", r.line, err)
	}
	r.off, r.prevStep = off, prev
	return e, nil
}

// readFrame loads and decompresses the next frame. io.EOF exactly at
// a frame boundary is the clean end of the trace.
func (r *BinaryTraceReader) readFrame() error {
	n, err := binary.ReadUvarint(r.br)
	if err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("obs: trace frame %d: truncated length prefix: %w", r.line+1, err)
	}
	r.line++
	if n > maxFrameBytes {
		return fmt.Errorf("obs: trace frame %d claims %d bytes, limit %d", r.line, n, maxFrameBytes)
	}
	if cap(r.compBuf) < int(n) {
		r.compBuf = make([]byte, n)
	}
	r.compBuf = r.compBuf[:n]
	if _, err := io.ReadFull(r.br, r.compBuf); err != nil {
		return fmt.Errorf("obs: trace frame %d: truncated frame: %w", r.line, err)
	}
	r.off, r.prevStep = 0, 0
	if r.comp == CompressNone {
		r.frame = r.compBuf
		return nil
	}
	if r.gz == nil {
		gz, err := gzip.NewReader(bytes.NewReader(r.compBuf))
		if err != nil {
			return fmt.Errorf("obs: trace frame %d: %w", r.line, err)
		}
		r.gz = gz
	} else if err := r.gz.Reset(bytes.NewReader(r.compBuf)); err != nil {
		return fmt.Errorf("obs: trace frame %d: %w", r.line, err)
	}
	r.frame = r.frame[:0]
	lim := io.LimitReader(r.gz, maxFrameBytes+1)
	buf := make([]byte, 16<<10)
	for {
		m, err := lim.Read(buf)
		r.frame = append(r.frame, buf[:m]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("obs: trace frame %d: %w", r.line, err)
		}
	}
	if len(r.frame) > maxFrameBytes {
		return fmt.Errorf("obs: trace frame %d decompresses past the %d-byte limit", r.line, maxFrameBytes)
	}
	return nil
}

// ReadBinaryEvents decodes a whole v2 binary trace, preserving order
// — the binary counterpart of ReadEvents.
func ReadBinaryEvents(r io.Reader) ([]Event, error) {
	br, err := NewBinaryTraceReader(r)
	if err != nil {
		return nil, err
	}
	var out []Event
	for {
		e, err := br.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
}

// ReadTrace decodes a trace in either format: it sniffs the v2 magic
// and dispatches to the binary reader, falling back to NDJSON. This
// is what pwf.ReadTraceEvents calls, so replay tooling is agnostic to
// how a trace was recorded.
func ReadTrace(r io.Reader) ([]Event, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic, err := br.Peek(4)
	if err == nil && bytes.Equal(magic, traceMagic[:]) {
		return ReadBinaryEvents(br)
	}
	return ReadEvents(br)
}
