package obs

import (
	"bytes"
	"testing"
)

// FuzzReadBinaryTrace throws arbitrary bytes at the v2 frame decoder.
// Two properties: the decoder never panics or over-allocates (the
// frame/label bounds hold under adversarial length prefixes), and any
// input it accepts re-encodes to a stream that decodes to the same
// events — decode ∘ encode ∘ decode is the identity on valid traces.
func FuzzReadBinaryTrace(f *testing.F) {
	seed := func(events []Event, comp Compression) {
		var buf bytes.Buffer
		w := NewBinaryTraceWriter(&buf, BinaryTraceOptions{Compression: comp, Registry: NewRegistry()})
		for _, e := range events {
			w.Record(e)
		}
		if err := w.Flush(); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seed(sampleEventsForFuzz(), CompressNone)
	seed(sampleEventsForFuzz(), CompressGzip)
	f.Add([]byte{'P', 'W', 'F', 'T', 2, 0, 0, 0})                         // empty trace
	f.Add([]byte{'P', 'W', 'F', 'T', 3, 0, 0, 0, 1, 1})                   // future version
	f.Add([]byte{'P', 'W', 'F', 'T', 2, 0, 0, 0, 0xff, 0xff, 0xff, 0xff}) // huge length claim
	f.Add([]byte(`{"kind":"sched","step":1,"pid":0}`))                    // ndjson

	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := ReadBinaryEvents(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		w := NewBinaryTraceWriter(&buf, BinaryTraceOptions{Registry: NewRegistry()})
		for _, e := range events {
			w.Record(e)
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("re-encode of accepted input failed: %v", err)
		}
		again, err := ReadBinaryEvents(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decode of re-encoded trace failed: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("round trip changed event count: %d -> %d", len(events), len(again))
		}
		for i := range events {
			if events[i] != again[i] {
				t.Fatalf("round trip changed event %d: %+v -> %+v", i, events[i], again[i])
			}
		}
	})
}

// sampleEventsForFuzz mirrors sampleEvents but lives here so the fuzz
// target is self-contained when run with -run=^$ -fuzz.
func sampleEventsForFuzz() []Event {
	return []Event{
		{Kind: KindJobStart, Job: 3, Label: "uniform n=4"},
		{Kind: KindSched, Step: 1, PID: 0},
		{Kind: KindCAS, Step: 2, PID: 3, OK: true},
		{Kind: KindRetry, Step: 3, PID: 3, Attempts: 1},
		{Kind: KindComplete, Step: 4, PID: 3, Attempts: 2},
		{Kind: KindCrash, Step: 5, PID: 2},
		{Kind: KindJobEnd, Job: 3, Label: "uniform n=4", ElapsedNS: 42},
	}
}
