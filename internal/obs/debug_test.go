package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
)

func TestServeDebug(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("demo_hits").Add(7)
	bound, stop, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", bound, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/metrics"), &snap); err != nil {
		t.Fatalf("/metrics is not JSON: %v", err)
	}
	if snap.Counters["demo_hits"] != 7 {
		t.Errorf("/metrics counters: %+v", snap.Counters)
	}

	var vars map[string]json.RawMessage
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["pwf"]; !ok {
		t.Errorf("/debug/vars missing the pwf expvar: %v", keys(vars))
	}

	if body := get("/debug/pprof/cmdline"); len(body) == 0 {
		t.Error("/debug/pprof/cmdline returned an empty body")
	}
}

func keys(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
