package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestKindStringRoundTrip(t *testing.T) {
	kinds := []Kind{
		KindSched, KindBegin, KindCAS, KindRetry,
		KindComplete, KindCrash, KindJobStart, KindJobEnd,
	}
	for _, k := range kinds {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind accepted an unknown kind")
	}
}

func TestEventJSONRoundTrip(t *testing.T) {
	events := []Event{
		{Kind: KindSched, Step: 17, PID: 3},
		{Kind: KindSched, Step: 1, PID: 0},
		{Kind: KindBegin, Step: 2, PID: 1},
		{Kind: KindCAS, Step: 9, PID: 2, OK: true},
		{Kind: KindCAS, Step: 10, PID: 2, OK: false},
		{Kind: KindRetry, Step: 11, PID: 2, Attempts: 4},
		{Kind: KindComplete, Step: 12, PID: 2, Attempts: 5},
		{Kind: KindCrash, Step: 0, PID: 7},
		{Kind: KindJobStart, Job: 0, Label: "scu-n4"},
		{Kind: KindJobEnd, Job: 3, Label: "", ElapsedNS: 123456},
	}
	for _, e := range events {
		data, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("marshal %+v: %v", e, err)
		}
		var back Event
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back != e {
			t.Errorf("round trip %s: got %+v, want %+v", data, back, e)
		}
	}
}

func TestTraceRecorderAndReadEvents(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTraceRecorder(&buf)
	want := []Event{
		{Kind: KindJobStart, Job: 0, Label: "demo"},
		{Kind: KindSched, Step: 1, PID: 0},
		{Kind: KindCAS, Step: 1, PID: 0, OK: false},
		{Kind: KindJobEnd, Job: 0, Label: "demo", ElapsedNS: 42},
	}
	for _, e := range want {
		tr.Record(e)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != len(want) {
		t.Fatalf("%d lines, want %d:\n%s", n, len(want), buf.String())
	}
	got, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestReadEventsRejectsGarbage(t *testing.T) {
	_, err := ReadEvents(strings.NewReader("{\"kind\":\"sched\"}\nnot json\n"))
	if err == nil {
		t.Fatal("garbage line accepted")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error does not name the offending line: %v", err)
	}
}

// TestReadEventsRejectsOversizedLine is a regression test: a line
// longer than the scanner's 4 MiB cap used to surface as a bare
// "token too long" with no position, which was useless against a
// multi-gigabyte trace. It must be a wrapped bufio.ErrTooLong naming
// the offending line number.
func TestReadEventsRejectsOversizedLine(t *testing.T) {
	var in bytes.Buffer
	in.WriteString("{\"kind\":\"sched\",\"step\":1,\"pid\":0}\n")
	in.WriteString("{\"kind\":\"pad\",\"x\":\"")
	in.Write(bytes.Repeat([]byte("a"), 1<<22))
	in.WriteString("\"}\n")
	_, err := ReadEvents(&in)
	if err == nil {
		t.Fatal("oversized line accepted")
	}
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Errorf("error does not wrap bufio.ErrTooLong: %v", err)
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error does not name the offending line: %v", err)
	}
}

func TestReadEventsWithSkipMalformed(t *testing.T) {
	in := "{\"kind\":\"sched\",\"step\":1,\"pid\":0}\n" +
		"not json\n" +
		"{\"kind\":\"nonsense\"}\n" +
		"{\"kind\":\"sched\",\"step\":2,\"pid\":1}\n"
	reg := NewRegistry()
	skipped := reg.Counter("my_skips")
	got, err := ReadEventsWith(strings.NewReader(in), ReadOptions{
		SkipMalformed: true, Skipped: skipped,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Step != 1 || got[1].Step != 2 {
		t.Fatalf("got %+v, want the two valid sched events", got)
	}
	if n := skipped.Load(); n != 2 {
		t.Errorf("skip counter = %d, want 2", n)
	}

	// With a nil counter the skips land on the Default registry's
	// trace_lines_skipped.
	before := Default.Counter("trace_lines_skipped").Load()
	if _, err := ReadEventsWith(strings.NewReader(in), ReadOptions{SkipMalformed: true}); err != nil {
		t.Fatal(err)
	}
	if got := Default.Counter("trace_lines_skipped").Load() - before; got != 2 {
		t.Errorf("trace_lines_skipped advanced by %d, want 2", got)
	}
}

func TestReadEventsWithMaxLineBytes(t *testing.T) {
	line := "{\"kind\":\"job_start\",\"job\":0,\"label\":\"" + strings.Repeat("x", 1<<10) + "\"}\n"
	// Tight cap: rejected even in skip mode (the scanner cannot
	// resynchronize past an overlong line).
	if _, err := ReadEventsWith(strings.NewReader(line), ReadOptions{
		MaxLineBytes: 64, SkipMalformed: true,
	}); err == nil {
		t.Fatal("line over the configured cap accepted")
	} else if !errors.Is(err, bufio.ErrTooLong) {
		t.Errorf("error does not wrap bufio.ErrTooLong: %v", err)
	}
	// Raised cap: the same line parses.
	got, err := ReadEventsWith(strings.NewReader(line), ReadOptions{MaxLineBytes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Label) != 1<<10 {
		t.Fatalf("got %d events, want the one long-label event", len(got))
	}
}

func TestMultiDropsNopAndNil(t *testing.T) {
	if Multi() != nil {
		t.Error("Multi() != nil")
	}
	if Multi(nil, Nop) != nil {
		t.Error("Multi(nil, Nop) != nil")
	}
	var buf bytes.Buffer
	tr := NewTraceRecorder(&buf)
	if got := Multi(nil, tr, Nop); got != Recorder(tr) {
		t.Errorf("single live recorder not unwrapped: %T", got)
	}
	m := Multi(tr, NewMetrics(NewRegistry()))
	m.Record(Event{Kind: KindSched, Step: 1, PID: 0})
	tr.Flush()
	if buf.Len() == 0 {
		t.Error("fan-out did not reach the trace recorder")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// Value 0 → bucket [0,0]; 1 → [1,1]; 2,3 → [2,3]; 1000 → [512,1023].
	for _, v := range []uint64{0, 1, 2, 3, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 1006 {
		t.Fatalf("count=%d sum=%d, want 5, 1006", s.Count, s.Sum)
	}
	if got := s.Mean; math.Abs(got-1006.0/5) > 1e-12 {
		t.Errorf("mean = %v", got)
	}
	want := []Bucket{
		{Lo: 0, Hi: 0, Count: 1},
		{Lo: 1, Hi: 1, Count: 1},
		{Lo: 2, Hi: 3, Count: 2},
		{Lo: 512, Hi: 1023, Count: 1},
	}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets %+v, want %+v", s.Buckets, want)
	}
	for i, b := range want {
		if s.Buckets[i] != b {
			t.Errorf("bucket %d: %+v, want %+v", i, s.Buckets[i], b)
		}
	}
	if max := s.Max(); max != 1023 {
		t.Errorf("Max = %d, want 1023", max)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(1) // bucket [1,1]
	}
	h.Observe(1 << 20)
	s := h.Snapshot()
	if q, err := s.Quantile(0.5); err != nil || q != 1 {
		t.Errorf("median = %v, %v, want 1", q, err)
	}
	if q, err := s.Quantile(1); err != nil || q < 1<<19 {
		t.Errorf("q=1 → %v, %v, want inside the top bucket", q, err)
	}
}

// TestHistogramQuantileEdges pins the edge conventions shared with
// stats.Quantile: empty input is an error (not a fabricated value),
// q=0 is the lower edge of the lowest non-empty bucket, q=1 is Max(),
// and NaN or out-of-range q is rejected.
func TestHistogramQuantileEdges(t *testing.T) {
	var empty Histogram
	if _, err := empty.Snapshot().Quantile(0.5); !errors.Is(err, ErrNoObservations) {
		t.Errorf("empty quantile error = %v, want ErrNoObservations", err)
	}

	var h Histogram
	h.Observe(5)  // bucket [4,7]
	h.Observe(40) // bucket [32,63]
	s := h.Snapshot()
	if q, err := s.Quantile(0); err != nil || q != 4 {
		t.Errorf("q=0 → %v, %v, want lower edge 4", q, err)
	}
	if q, err := s.Quantile(1); err != nil || q != float64(s.Max()) {
		t.Errorf("q=1 → %v, %v, want Max()=%d", q, err, s.Max())
	}
	for _, bad := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := s.Quantile(bad); err == nil {
			t.Errorf("q=%v accepted, want error", bad)
		}
	}
}

func TestHistogramExtremeBucket(t *testing.T) {
	var h Histogram
	h.Observe(math.MaxUint64)
	s := h.Snapshot()
	if len(s.Buckets) != 1 {
		t.Fatalf("buckets: %+v", s.Buckets)
	}
	if s.Buckets[0].Hi != math.MaxUint64 || s.Buckets[0].Lo != 1<<63 {
		t.Errorf("top bucket edges: %+v", s.Buckets[0])
	}
}

func TestRegistrySnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits").Add(3)
	reg.Counter("hits").Add(2) // same counter: get-or-create
	reg.Histogram("lat").Observe(7)
	calls := 0
	reg.Gauge("live", func() uint64 { calls++; return 99 })
	s := reg.Snapshot()
	if s.Counters["hits"] != 5 {
		t.Errorf("hits = %d, want 5", s.Counters["hits"])
	}
	if s.Gauges["live"] != 99 || calls != 1 {
		t.Errorf("gauge = %d (calls %d)", s.Gauges["live"], calls)
	}
	if s.Histograms["lat"].Count != 1 {
		t.Errorf("histogram snapshot: %+v", s.Histograms["lat"])
	}

	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed Snapshot
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("WriteJSON output invalid: %v\n%s", err, buf.String())
	}
	if parsed.Counters["hits"] != 5 {
		t.Errorf("JSON round trip lost the counter: %+v", parsed)
	}
}

func TestOpStatsRegister(t *testing.T) {
	reg := NewRegistry()
	var st OpStats
	st.Register(reg, "stack")
	st.ObserveOp(5, 2)
	st.ObserveOp(1, 0)
	s := reg.Snapshot()
	if s.Counters["stack_ops"] != 2 {
		t.Errorf("ops = %d, want 2", s.Counters["stack_ops"])
	}
	if s.Counters["stack_cas_failures"] != 2 {
		t.Errorf("cas_failures = %d, want 2", s.Counters["stack_cas_failures"])
	}
	if s.Histograms["stack_steps"].Sum != 6 {
		t.Errorf("steps sum = %d, want 6", s.Histograms["stack_steps"].Sum)
	}
	if s.Histograms["stack_retries"].Count != 2 {
		t.Errorf("retries count = %d", s.Histograms["stack_retries"].Count)
	}
}

func TestMetricsRecorder(t *testing.T) {
	reg := NewRegistry()
	m := NewMetrics(reg)
	for _, e := range []Event{
		{Kind: KindSched, Step: 1, PID: 0},
		{Kind: KindBegin, Step: 1, PID: 0},
		{Kind: KindCAS, Step: 1, PID: 0, OK: false},
		{Kind: KindRetry, Step: 2, PID: 0, Attempts: 1},
		{Kind: KindCAS, Step: 2, PID: 0, OK: true},
		{Kind: KindComplete, Step: 2, PID: 0, Attempts: 2},
		{Kind: KindCrash, Step: 3, PID: 1},
	} {
		m.Record(e)
	}
	s := reg.Snapshot()
	for name, want := range map[string]uint64{
		"sim_sched_steps":   1,
		"sim_op_begins":     1,
		"sim_cas_successes": 1,
		"sim_cas_failures":  1,
		"sim_retries":       1,
		"sim_completions":   1,
		"sim_crashes":       1,
	} {
		if got := s.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if h := s.Histograms["sim_cas_attempts_per_op"]; h.Count != 1 || h.Sum != 2 {
		t.Errorf("attempts histogram: %+v", h)
	}
}

// TestConcurrentRecording hammers one shared OpStats, Counter,
// Histogram and Metrics from many goroutines; totals must be exact
// (the whole point of the wait-free fetch-and-add design) and the run
// must be race-clean under -race.
func TestConcurrentRecording(t *testing.T) {
	const (
		workers = 8
		perW    = 10000
	)
	var (
		c   Counter
		h   Histogram
		st  OpStats
		reg = NewRegistry()
		m   = NewMetrics(reg)
		wg  sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				c.Inc()
				h.Observe(uint64(i))
				st.ObserveOp(uint64(i%7)+1, uint64(i%3))
				m.Record(Event{Kind: KindSched, Step: uint64(i), PID: w})
				m.Record(Event{Kind: KindComplete, Step: uint64(i), PID: w, Attempts: 1})
			}
		}(w)
	}
	wg.Wait()
	const total = workers * perW
	if c.Load() != total {
		t.Errorf("counter = %d, want %d", c.Load(), total)
	}
	if h.Count() != total {
		t.Errorf("histogram count = %d, want %d", h.Count(), total)
	}
	if st.Ops.Load() != total {
		t.Errorf("ops = %d, want %d", st.Ops.Load(), total)
	}
	s := reg.Snapshot()
	if s.Counters["sim_sched_steps"] != total || s.Counters["sim_completions"] != total {
		t.Errorf("metrics totals: %+v", s.Counters)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	var h Histogram
	b.RunParallel(func(pb *testing.PB) {
		var i uint64
		for pb.Next() {
			i++
			h.Observe(i)
		}
	})
}
