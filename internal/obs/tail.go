package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
)

// TraceTailer is a Recorder that retains the newest events of a live
// run in a bounded ring and streams them over HTTP — `tail -f` for a
// trace. Fan it alongside a trace writer with Multi and mount
// Handler on the debug server (ServeDebug's WithTraceTail does both
// route and wiring):
//
//	GET /debug/trace/tail              stream from the oldest retained event
//	GET /debug/trace/tail?cursor=N     resume after the first N events
//
// The stream is NDJSON, one event per line in the v1 wire schema
// (binary traces tail as readable JSON, not raw frames). The cursor
// is the absolute number of events the client has consumed, mirroring
// the pwfserve result-stream idiom: a client that reconnects with its
// line count resumes with no duplicates and no gaps, as long as the
// ring still holds that position — a cursor older than the ring is
// refused with 410 Gone rather than silently skipping ahead. Events
// evicted from the ring are counted by trace_tail_evicted.
type TraceTailer struct {
	mu     sync.Mutex
	ring   []Event
	seq    uint64 // total events recorded
	wake   chan struct{}
	closed bool

	mEvicted *Counter
	mStreams *Counter
}

// defaultTailCapacity holds a comfortable multiple of the events a
// tailing client reads per round trip.
const defaultTailCapacity = 8192

// NewTraceTailer returns a tailer retaining the newest capacity
// events (<= 0 selects the 8192-event default). Metrics register on
// reg; nil selects Default.
func NewTraceTailer(capacity int, reg *Registry) *TraceTailer {
	if capacity <= 0 {
		capacity = defaultTailCapacity
	}
	if reg == nil {
		reg = Default
	}
	return &TraceTailer{
		ring:     make([]Event, 0, capacity),
		mEvicted: reg.Counter("trace_tail_evicted"),
		mStreams: reg.Counter("trace_tail_streams"),
	}
}

// Record implements Recorder: append to the ring, evicting the oldest
// event once full, and wake any waiting streams. Waking allocates
// only when a stream is actually parked, so tailing costs the hot
// path one mutexed append.
func (t *TraceTailer) Record(e Event) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
	} else {
		t.ring[t.seq%uint64(cap(t.ring))] = e
		t.mEvicted.Inc()
	}
	t.seq++
	if t.wake != nil {
		close(t.wake)
		t.wake = nil
	}
	t.mu.Unlock()
}

// Close marks the trace finished: streams drain what remains and
// terminate instead of waiting for more. Further Records are dropped.
func (t *TraceTailer) Close() {
	t.mu.Lock()
	t.closed = true
	if t.wake != nil {
		close(t.wake)
		t.wake = nil
	}
	t.mu.Unlock()
}

// Seq returns the total number of events recorded so far.
func (t *TraceTailer) Seq() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// after returns a copy of the events in [cursor, seq), the channel to
// wait on when the batch is empty, whether the tailer is closed, and
// whether cursor has fallen off the ring (a gap: the caller must not
// pretend continuity).
func (t *TraceTailer) after(cursor uint64) (batch []Event, wake <-chan struct{}, closed, expired bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	oldest := t.seq - uint64(len(t.ring))
	if cursor < oldest {
		return nil, nil, t.closed, true
	}
	if n := t.seq - cursor; n > 0 {
		batch = make([]Event, 0, n)
		for s := cursor; s < t.seq; s++ {
			batch = append(batch, t.ring[s%uint64(cap(t.ring))])
		}
	}
	if len(batch) == 0 && !t.closed {
		if t.wake == nil {
			t.wake = make(chan struct{})
		}
		wake = t.wake
	}
	return batch, wake, t.closed, false
}

// bounds returns the retained window [oldest, seq).
func (t *TraceTailer) bounds() (oldest, seq uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq - uint64(len(t.ring)), t.seq
}

// Handler returns the HTTP handler streaming the tail as NDJSON with
// cursor resume; mount it wherever the debug mux lives (ServeDebug
// mounts it at /debug/trace/tail).
func (t *TraceTailer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cursorStr := r.URL.Query().Get("cursor")
		if cursorStr == "" {
			cursorStr = r.Header.Get("Last-Event-ID")
		}
		oldest, seq := t.bounds()
		cursor := oldest
		if cursorStr != "" {
			n, err := strconv.ParseUint(cursorStr, 10, 64)
			if err != nil || n > seq {
				http.Error(w, fmt.Sprintf("cursor %q out of [0, %d]", cursorStr, seq),
					http.StatusBadRequest)
				return
			}
			if n < oldest {
				http.Error(w, fmt.Sprintf("cursor %d expired; oldest retained event is %d", n, oldest),
					http.StatusGone)
				return
			}
			cursor = n
		}

		t.mStreams.Inc()
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("Cache-Control", "no-store")
		w.Header().Set("X-Trace-Cursor", strconv.FormatUint(cursor, 10))
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		if flusher != nil {
			// Confirm the connection even before the first event lands.
			flusher.Flush()
		}

		for {
			batch, wake, closed, expired := t.after(cursor)
			if expired {
				// The client stalled past the ring: terminate with an
				// explicit gap marker instead of resuming with a hole.
				fmt.Fprintf(w, "{\"error\":\"trace tail cursor %d expired\"}\n", cursor)
				return
			}
			for _, e := range batch {
				b, err := json.Marshal(e)
				if err != nil {
					continue
				}
				b = append(b, '\n')
				if _, err := w.Write(b); err != nil {
					return
				}
				cursor++
			}
			if flusher != nil && len(batch) > 0 {
				flusher.Flush()
			}
			if len(batch) > 0 {
				continue // recheck for events recorded while writing
			}
			if closed {
				return
			}
			select {
			case <-wake:
			case <-r.Context().Done():
				return
			}
		}
	})
}
