package obs

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
)

// Counter is a wait-free monotonic event counter. Inc and Add are
// single hardware fetch-and-add instructions — the wait-free
// primitive the paper's Appendix B measures — so recording into a
// shared Counter from many goroutines completes in a bounded number
// of steps regardless of contention. The zero value is ready to use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d.
func (c *Counter) Add(d uint64) { c.v.Add(d) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// histBuckets is one bucket per possible bit length of a uint64 (0
// through 64): bucket 0 holds the value 0, bucket k >= 1 holds values
// in [2^(k-1), 2^k).
const histBuckets = 65

// Histogram is a wait-free log-bucketed histogram of uint64
// observations: bucket k counts values with bit length k, i.e.
// power-of-two ranges. Observe is three atomic adds — no locks, no
// CAS loops — so it is safe and wait-free from any number of
// goroutines. The zero value is ready to use.
//
// Log bucketing matches the quantities recorded here (retry counts,
// steps per operation, inter-completion gaps), whose interesting
// structure is multiplicative: the paper's completion-time tails decay
// geometrically (Theorem 3), so constant relative resolution is the
// right trade against a fixed 65-counter footprint.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bits.Len64(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Bucket is one non-empty histogram bucket covering [Lo, Hi]
// inclusive.
type Bucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a Histogram, shaped
// for JSON export. Concurrent Observes may land between bucket reads,
// so Count can differ from the bucket total by in-flight updates; each
// individual value is monotone and exact.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Mean    float64  `json:"mean"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
	}
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	for k := 0; k < histBuckets; k++ {
		c := h.buckets[k].Load()
		if c == 0 {
			continue
		}
		s.Buckets = append(s.Buckets, Bucket{Lo: bucketLo(k), Hi: bucketHi(k), Count: c})
	}
	return s
}

func bucketLo(k int) uint64 {
	if k == 0 {
		return 0
	}
	return 1 << (k - 1)
}

func bucketHi(k int) uint64 {
	if k == 0 {
		return 0
	}
	if k == 64 {
		return math.MaxUint64
	}
	return 1<<k - 1
}

// ErrNoObservations is returned by Quantile on a snapshot of a
// histogram that has recorded nothing: there is no distribution to
// query, and returning a number would present a fabricated bucket
// edge as if it were real data.
var ErrNoObservations = errors.New("obs: histogram has no observations")

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucketed
// counts, interpolating linearly within the containing bucket. The
// edges agree with stats.Quantile's conventions: q = 0 returns the
// lower edge of the lowest non-empty bucket, q = 1 the upper edge of
// the highest (== Max()), an empty snapshot returns an error rather
// than a value, and a NaN or out-of-range q is rejected.
func (s HistogramSnapshot) Quantile(q float64) (float64, error) {
	var total uint64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total == 0 {
		return 0, ErrNoObservations
	}
	if math.IsNaN(q) || q < 0 || q > 1 {
		return 0, fmt.Errorf("obs: quantile %v out of [0,1]", q)
	}
	rank := q * float64(total)
	var seen float64
	for _, b := range s.Buckets {
		c := float64(b.Count)
		if seen+c >= rank {
			frac := 0.0
			if c > 0 {
				frac = (rank - seen) / c
			}
			return float64(b.Lo) + frac*float64(b.Hi-b.Lo), nil
		}
		seen += c
	}
	last := s.Buckets[len(s.Buckets)-1]
	return float64(last.Hi), nil
}

// Max returns an upper bound on the largest observation: the top edge
// of the highest non-empty bucket (0 with no observations).
func (s HistogramSnapshot) Max() uint64 {
	if len(s.Buckets) == 0 {
		return 0
	}
	return s.Buckets[len(s.Buckets)-1].Hi
}

// OpStats aggregates per-operation telemetry for a native concurrent
// structure: the operation count, the distribution of shared-memory
// steps per operation, the distribution of retry-loop iterations per
// operation, and the total number of failed CAS attempts. All fields
// are wait-free atomics, so one OpStats may be shared by every worker
// goroutine hammering a structure.
type OpStats struct {
	Ops         Counter
	CASFailures Counter
	// Eliminations counts operations that completed on a stack's
	// elimination array instead of the hot top-of-stack word (always 0
	// for structures without elimination).
	Eliminations Counter
	Retries      Histogram
	Steps        Histogram
}

// ObserveOp records one completed operation that took steps
// shared-memory steps and retried retries times (one retry == one
// extra pass through the operation's loop, i.e. one failed CAS or one
// helping detour).
func (s *OpStats) ObserveOp(steps, retries uint64) {
	s.Ops.Inc()
	s.Steps.Observe(steps)
	s.Retries.Observe(retries)
	if retries > 0 {
		s.CASFailures.Add(retries)
	}
}

// Register names the stats' fields on reg under prefix: <prefix>_ops,
// <prefix>_cas_failures, <prefix>_eliminations, <prefix>_retries,
// <prefix>_steps.
func (s *OpStats) Register(reg *Registry, prefix string) {
	reg.RegisterCounter(prefix+"_ops", &s.Ops)
	reg.RegisterCounter(prefix+"_cas_failures", &s.CASFailures)
	reg.RegisterCounter(prefix+"_eliminations", &s.Eliminations)
	reg.RegisterHistogram(prefix+"_retries", &s.Retries)
	reg.RegisterHistogram(prefix+"_steps", &s.Steps)
}

// Metrics is a Recorder that aggregates simulator events into
// wait-free registry metrics instead of (or alongside) tracing them.
// It keeps no per-event mutable state beyond the atomics, so one
// Metrics may serve every job of a parallel sweep concurrently.
type Metrics struct {
	SchedSteps   *Counter
	Begins       *Counter
	CASSuccesses *Counter
	CASFailures  *Counter
	Retries      *Counter
	Completions  *Counter
	Crashes      *Counter
	// AttemptsPerOp is the distribution of CAS attempts per completed
	// operation — the simulator-side retry histogram.
	AttemptsPerOp *Histogram
}

// NewMetrics returns a Metrics recorder backed by reg under the sim_*
// namespace. Calling it twice with the same registry yields recorders
// sharing the same underlying metrics.
func NewMetrics(reg *Registry) *Metrics {
	return &Metrics{
		SchedSteps:    reg.Counter("sim_sched_steps"),
		Begins:        reg.Counter("sim_op_begins"),
		CASSuccesses:  reg.Counter("sim_cas_successes"),
		CASFailures:   reg.Counter("sim_cas_failures"),
		Retries:       reg.Counter("sim_retries"),
		Completions:   reg.Counter("sim_completions"),
		Crashes:       reg.Counter("sim_crashes"),
		AttemptsPerOp: reg.Histogram("sim_cas_attempts_per_op"),
	}
}

// Record implements Recorder.
func (m *Metrics) Record(e Event) {
	switch e.Kind {
	case KindSched:
		m.SchedSteps.Inc()
	case KindBegin:
		m.Begins.Inc()
	case KindCAS:
		if e.OK {
			m.CASSuccesses.Inc()
		} else {
			m.CASFailures.Inc()
		}
	case KindRetry:
		m.Retries.Inc()
	case KindComplete:
		m.Completions.Inc()
		m.AttemptsPerOp.Observe(e.Attempts)
	case KindCrash:
		m.Crashes.Inc()
	}
}
