// Package obs is the wait-free telemetry layer of the repository: it
// lets every other layer — the discrete-time simulator, the native
// goroutine/atomic structures, and the sweep engine — emit step-level
// events and aggregate hot-path metrics without perturbing the very
// phenomena the paper measures.
//
// The package practices the paper's subject matter. Its counters and
// histograms are built exclusively from atomic fetch-and-add, the
// wait-free primitive of Appendix B: an Observe or Inc on a shared
// metric completes in a bounded number of its own steps regardless of
// contention, so instrumented hot loops in internal/native stay
// wait-free on the metrics path even while the instrumented algorithm
// itself is merely lock-free.
//
// Three layers:
//
//   - Events: a Recorder receives structured step-level Events
//     (scheduling decision, CAS success/failure, retry-loop iteration,
//     operation begin/complete, crash injection, sweep-job lifecycle).
//     The default is no recorder at all; the simulator guards every
//     emission site with a nil check, so the disabled hooks cost one
//     predictable branch per step (benchmarked in bench_test.go).
//   - Metrics: Counter and Histogram are wait-free atomics, safe to
//     call from any goroutine; Registry names them and snapshots to
//     JSON or expvar.
//   - Export: TraceRecorder writes NDJSON (trace format v1, one event
//     per line) and BinaryTraceWriter writes compact varint-packed
//     frames with optional per-frame gzip (format v2, see binary.go);
//     both re-parse through ReadTrace for byte-exact replay. Metrics
//     aggregates events into a Registry, TraceTailer streams the
//     newest events of a live run, and ServeDebug exposes expvar +
//     pprof + /metrics + /debug/trace/tail over HTTP for long sweeps.
package obs

import "fmt"

// Kind identifies the type of a telemetry event.
type Kind uint8

// The event kinds. Simulator events carry Step and PID; sweep
// lifecycle events carry Job and Label.
const (
	// KindSched is a scheduling decision: at time Step the scheduler
	// picked process PID to take the next shared-memory step.
	KindSched Kind = iota + 1
	// KindBegin marks the first step of a new operation by PID.
	KindBegin
	// KindCAS is a compare-and-swap by PID; OK reports success.
	KindCAS
	// KindRetry marks a retry-loop iteration: PID resumed its
	// operation after a failed CAS. Attempts is the 1-based retry
	// index within the current operation.
	KindRetry
	// KindComplete marks an operation completion by PID. Attempts is
	// the number of CAS attempts the operation performed (0 for
	// CAS-free workloads).
	KindComplete
	// KindCrash marks a fail-stop crash injection of PID effective at
	// Step.
	KindCrash
	// KindJobStart marks a sweep job starting; Job is its index.
	KindJobStart
	// KindJobEnd marks a sweep job finishing; ElapsedNS is its wall
	// time.
	KindJobEnd
)

var kindNames = map[Kind]string{
	KindSched:    "sched",
	KindBegin:    "begin",
	KindCAS:      "cas",
	KindRetry:    "retry",
	KindComplete: "complete",
	KindCrash:    "crash",
	KindJobStart: "job_start",
	KindJobEnd:   "job_end",
}

// String implements fmt.Stringer; it returns the NDJSON wire name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ParseKind maps a wire name back to its Kind.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if name == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("obs: unknown event kind %q", s)
}

// Event is one structured telemetry event. All fields are scalars (no
// pointers, no heap references), so an Event is passed by value
// without allocating; which fields are meaningful depends on Kind —
// see the Kind constants.
type Event struct {
	Kind Kind
	// Step is the simulator system step (1-based) at which the event
	// occurred.
	Step uint64
	// PID is the simulated process id.
	PID int
	// OK reports CAS success (KindCAS only).
	OK bool
	// Attempts is the CAS-attempt count (KindComplete) or the retry
	// index (KindRetry).
	Attempts uint64
	// Job is the sweep-job index (job lifecycle events only).
	Job int
	// Label is the sweep job's label, if any.
	Label string
	// ElapsedNS is the job wall time in nanoseconds (KindJobEnd).
	ElapsedNS int64
}

// Recorder observes telemetry events. Implementations used with the
// sweep engine must be safe for concurrent use: events from different
// jobs arrive on different worker goroutines.
type Recorder interface {
	Record(e Event)
}

// nop is the recorder that discards everything.
type nop struct{}

func (nop) Record(Event) {}

// Nop is the no-op Recorder: it discards every event. Consumers that
// accept a Recorder treat Nop exactly like nil (the simulator
// normalises Nop to nil so that disabled hooks cost a single branch,
// not an interface call).
var Nop Recorder = nop{}

// multi fans one event out to several recorders, in order.
type multi []Recorder

func (m multi) Record(e Event) {
	for _, r := range m {
		r.Record(e)
	}
}

// Multi combines recorders into one; nil and Nop entries are dropped.
// It returns nil when nothing remains (the disabled state), the sole
// survivor when one remains, and a fan-out recorder otherwise.
func Multi(rs ...Recorder) Recorder {
	var out multi
	for _, r := range rs {
		if r == nil || r == Nop {
			continue
		}
		out = append(out, r)
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}
