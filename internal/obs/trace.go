package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
)

// wireEvent is the NDJSON representation of an Event. Pointer fields
// distinguish "absent" from zero values (pid 0 and step 0 are both
// meaningful), so a round trip through the wire format is lossless
// for the fields a kind defines.
type wireEvent struct {
	Kind      string  `json:"kind"`
	Step      *uint64 `json:"step,omitempty"`
	PID       *int    `json:"pid,omitempty"`
	OK        *bool   `json:"ok,omitempty"`
	Attempts  *uint64 `json:"attempts,omitempty"`
	Job       *int    `json:"job,omitempty"`
	Label     string  `json:"label,omitempty"`
	ElapsedNS *int64  `json:"elapsed_ns,omitempty"`
}

// MarshalJSON renders the event in the NDJSON wire schema, emitting
// only the fields its kind defines (see the Kind constants).
func (e Event) MarshalJSON() ([]byte, error) {
	w := wireEvent{Kind: e.Kind.String()}
	switch e.Kind {
	case KindSched, KindBegin, KindCrash:
		w.Step, w.PID = &e.Step, &e.PID
	case KindCAS:
		w.Step, w.PID, w.OK = &e.Step, &e.PID, &e.OK
	case KindRetry, KindComplete:
		w.Step, w.PID, w.Attempts = &e.Step, &e.PID, &e.Attempts
	case KindJobStart:
		w.Job, w.Label = &e.Job, e.Label
	case KindJobEnd:
		w.Job, w.Label, w.ElapsedNS = &e.Job, e.Label, &e.ElapsedNS
	default:
		return nil, fmt.Errorf("obs: marshal unknown event kind %d", e.Kind)
	}
	return json.Marshal(w)
}

// UnmarshalJSON parses one wire-format event.
func (e *Event) UnmarshalJSON(data []byte) error {
	var w wireEvent
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	k, err := ParseKind(w.Kind)
	if err != nil {
		return err
	}
	*e = Event{Kind: k, Label: w.Label}
	if w.Step != nil {
		e.Step = *w.Step
	}
	if w.PID != nil {
		e.PID = *w.PID
	}
	if w.OK != nil {
		e.OK = *w.OK
	}
	if w.Attempts != nil {
		e.Attempts = *w.Attempts
	}
	if w.Job != nil {
		e.Job = *w.Job
	}
	if w.ElapsedNS != nil {
		e.ElapsedNS = *w.ElapsedNS
	}
	return nil
}

// TraceRecorder writes every event as one NDJSON line. It buffers
// internally; call Flush (or Close) when the run is over. Record is
// serialized by a mutex, so one TraceRecorder may receive events from
// every worker of a sweep — within a job events appear in simulation
// order, while events of concurrently executing jobs interleave.
type TraceRecorder struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	err error
}

// NewTraceRecorder returns a recorder writing NDJSON to w.
func NewTraceRecorder(w io.Writer) *TraceRecorder {
	return &TraceRecorder{bw: bufio.NewWriterSize(w, 1<<16)}
}

// Record implements Recorder. The first write or marshal error is
// sticky: subsequent events are dropped and the error is reported by
// Flush.
func (t *TraceRecorder) Record(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		t.err = err
		return
	}
	if _, err := t.bw.Write(b); err != nil {
		t.err = err
		return
	}
	t.err = t.bw.WriteByte('\n')
}

// Flush drains the buffer and returns the first error encountered by
// any Record or flush so far.
func (t *TraceRecorder) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.bw.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// DefaultMaxTraceLine is the largest NDJSON line ReadEvents accepts
// by default. Events written by TraceRecorder are a few hundred
// bytes, so the 4 MiB cap only triggers on corrupt or non-trace
// input; raise it per read with ReadOptions.MaxLineBytes. The limit
// is documented in DESIGN.md ("Trace formats").
const DefaultMaxTraceLine = 1 << 22

// ReadOptions parameterizes ReadEventsWith. The zero value reproduces
// ReadEvents: strict parsing under the default 4 MiB line cap.
type ReadOptions struct {
	// MaxLineBytes caps one NDJSON line; 0 selects DefaultMaxTraceLine.
	MaxLineBytes int
	// SkipMalformed recovers from malformed lines instead of failing:
	// each one is counted on the skip counter and dropped, so a
	// corrupt trace yields its parseable events — visibly shortened,
	// never quietly. Lines past the byte cap still fail, because the
	// scanner cannot resynchronize beyond them.
	SkipMalformed bool
	// Skipped counts skipped malformed lines; nil selects the Default
	// registry's trace_lines_skipped counter.
	Skipped *Counter
}

// ReadEvents parses an NDJSON event stream (as written by
// TraceRecorder) back into events, preserving order. Blank lines are
// skipped; any malformed line — including one longer than the 4 MiB
// scanner limit — is an error naming its line number.
func ReadEvents(r io.Reader) ([]Event, error) {
	return ReadEventsWith(r, ReadOptions{})
}

// ReadEventsWith is ReadEvents with an adjustable line cap and a
// skip-and-count recovery mode for corrupt traces (see ReadOptions).
func ReadEventsWith(r io.Reader, opts ReadOptions) ([]Event, error) {
	maxLine := opts.MaxLineBytes
	if maxLine <= 0 {
		maxLine = DefaultMaxTraceLine
	}
	skipped := opts.Skipped
	if skipped == nil {
		skipped = Default.Counter("trace_lines_skipped")
	}
	sc := bufio.NewScanner(r)
	// The scanner's effective cap is max(maxLine, cap(buf)), so the
	// initial buffer must not exceed a below-default MaxLineBytes.
	initial := 1 << 16
	if maxLine < initial {
		initial = maxLine
	}
	sc.Buffer(make([]byte, 0, initial), maxLine)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			if opts.SkipMalformed {
				skipped.Inc()
				continue
			}
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			// The scanner stops at the offending line without consuming
			// it, so the failure is on the line after the last good one.
			return nil, fmt.Errorf("obs: trace line %d exceeds %d-byte limit: %w",
				line+1, maxLine, err)
		}
		return nil, fmt.Errorf("obs: read trace: %w", err)
	}
	return out, nil
}
