package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func tailGet(t *testing.T, srv *httptest.Server, cursor string) (*http.Response, []Event) {
	t.Helper()
	url := srv.URL
	if cursor != "" {
		url += "?cursor=" + cursor
	}
	resp, err := srv.Client().Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp, nil
	}
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("tail line %q: %v", line, err)
		}
		events = append(events, e)
	}
	return resp, events
}

func TestTraceTailerCursorResume(t *testing.T) {
	reg := NewRegistry()
	tail := NewTraceTailer(64, reg)
	srv := httptest.NewServer(tail.Handler())
	defer srv.Close()

	for i := 1; i <= 10; i++ {
		tail.Record(Event{Kind: KindSched, Step: uint64(i), PID: i})
	}
	tail.Close()

	// First read from the start: all 10 events, no duplicates.
	resp, events := tailGet(t, srv, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Cursor"); got != "0" {
		t.Errorf("X-Trace-Cursor = %q, want 0", got)
	}
	if len(events) != 10 {
		t.Fatalf("got %d events, want 10", len(events))
	}
	for i, e := range events {
		if e.Step != uint64(i+1) {
			t.Fatalf("event %d has step %d, want %d", i, e.Step, i+1)
		}
	}

	// Resume mid-stream: exactly the suffix, no gap and no overlap.
	_, rest := tailGet(t, srv, "6")
	if len(rest) != 4 {
		t.Fatalf("resume at 6: got %d events, want 4", len(rest))
	}
	if rest[0].Step != 7 || rest[3].Step != 10 {
		t.Fatalf("resume at 6: steps %d..%d, want 7..10", rest[0].Step, rest[3].Step)
	}

	// Resuming at the end of a closed trace yields an empty 200.
	resp, none := tailGet(t, srv, "10")
	if resp.StatusCode != http.StatusOK || len(none) != 0 {
		t.Fatalf("resume at end: status %d, %d events", resp.StatusCode, len(none))
	}

	if got := reg.Snapshot().Counters["trace_tail_streams"]; got != 3 {
		t.Errorf("trace_tail_streams = %d, want 3", got)
	}
}

func TestTraceTailerBadAndExpiredCursors(t *testing.T) {
	tail := NewTraceTailer(4, NewRegistry())
	srv := httptest.NewServer(tail.Handler())
	defer srv.Close()

	for i := 1; i <= 10; i++ { // ring holds only events 7..10
		tail.Record(Event{Kind: KindSched, Step: uint64(i), PID: 0})
	}
	tail.Close()

	if resp, _ := tailGet(t, srv, "banana"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage cursor: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := tailGet(t, srv, "99"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("future cursor: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := tailGet(t, srv, "2"); resp.StatusCode != http.StatusGone {
		t.Errorf("expired cursor: status %d, want 410 Gone", resp.StatusCode)
	}
	// With no cursor the stream starts at the oldest retained event —
	// the ring evicted 1..6.
	resp, events := tailGet(t, srv, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Cursor"); got != "6" {
		t.Errorf("X-Trace-Cursor = %q, want 6", got)
	}
	if len(events) != 4 || events[0].Step != 7 {
		t.Fatalf("got %d events starting at step %d, want 4 starting at 7",
			len(events), events[0].Step)
	}
}

func TestTraceTailerLastEventIDHeader(t *testing.T) {
	tail := NewTraceTailer(64, NewRegistry())
	srv := httptest.NewServer(tail.Handler())
	defer srv.Close()
	for i := 1; i <= 5; i++ {
		tail.Record(Event{Kind: KindSched, Step: uint64(i), PID: 0})
	}
	tail.Close()

	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	req.Header.Set("Last-Event-ID", "3")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	lines := strings.Count(string(body), "\n")
	if lines != 2 {
		t.Fatalf("Last-Event-ID resume: %d lines, want 2:\n%s", lines, body)
	}
}

// TestTraceTailerLiveStream drives a recorder concurrently with a
// reading client: the stream must deliver every event exactly once, in
// order, and terminate when the tailer closes.
func TestTraceTailerLiveStream(t *testing.T) {
	const total = 5000
	tail := NewTraceTailer(2*total, NewRegistry())
	srv := httptest.NewServer(tail.Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= total; i++ {
			tail.Record(Event{Kind: KindSched, Step: uint64(i), PID: i % 8})
			if i%100 == 0 {
				time.Sleep(time.Microsecond) // let the reader interleave
			}
		}
		tail.Close()
	}()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var steps []uint64
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		steps = append(steps, e.Step)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if len(steps) != total {
		t.Fatalf("streamed %d events, want %d", len(steps), total)
	}
	for i, s := range steps {
		if s != uint64(i+1) {
			t.Fatalf("position %d: step %d (gap or duplicate)", i, s)
		}
	}
}

// TestTraceTailerMidStreamGap forces a connected-but-stalled client
// past the ring: the stream must end with an explicit expiry marker
// rather than resuming with a silent hole.
func TestTraceTailerMidStreamGap(t *testing.T) {
	tail := NewTraceTailer(4, NewRegistry())
	for i := 1; i <= 4; i++ {
		tail.Record(Event{Kind: KindSched, Step: uint64(i), PID: 0})
	}
	// Ask for cursor 0 while it is still valid, then overrun the ring
	// before the handler's next poll by recording from within the
	// response writer, which runs after the first batch is served.
	req := httptest.NewRequest(http.MethodGet, "/?cursor=0", nil)
	rec := &gapRecorder{tail: tail, inner: httptest.NewRecorder()}
	tail.Handler().ServeHTTP(rec, req)
	body := rec.inner.Body.String()
	if !strings.Contains(body, "expired") {
		t.Fatalf("mid-stream overrun did not surface an expiry marker:\n%s", body)
	}
}

// gapRecorder overruns the tailer's ring as a side effect of the first
// write, simulating a client that reads slower than the run records.
type gapRecorder struct {
	tail  *TraceTailer
	inner *httptest.ResponseRecorder
	once  sync.Once
}

func (g *gapRecorder) Header() http.Header { return g.inner.Header() }

func (g *gapRecorder) WriteHeader(code int) { g.inner.WriteHeader(code) }

func (g *gapRecorder) Write(p []byte) (int, error) {
	n, err := g.inner.Write(p)
	g.once.Do(func() {
		for i := 100; i < 120; i++ {
			g.tail.Record(Event{Kind: KindSched, Step: uint64(i), PID: 0})
		}
	})
	return n, err
}

func TestTraceTailerEvictionMetric(t *testing.T) {
	reg := NewRegistry()
	tail := NewTraceTailer(8, reg)
	for i := 0; i < 20; i++ {
		tail.Record(Event{Kind: KindSched, Step: uint64(i), PID: 0})
	}
	if got := reg.Snapshot().Counters["trace_tail_evicted"]; got != 12 {
		t.Errorf("trace_tail_evicted = %d, want 12", got)
	}
	if oldest, seq := tail.bounds(); oldest != 12 || seq != 20 {
		t.Errorf("bounds = [%d, %d), want [12, 20)", oldest, seq)
	}
}

func TestServeDebugMountsTraceTail(t *testing.T) {
	reg := NewRegistry()
	tail := NewTraceTailer(16, reg)
	tail.Record(Event{Kind: KindSched, Step: 1, PID: 0})
	tail.Close()
	addr, stop, err := ServeDebug("127.0.0.1:0", reg, WithTraceTail(tail))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = stop() }()

	resp, err := http.Get(fmt.Sprintf("http://%s/debug/trace/tail", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), `"kind":"sched"`) {
		t.Fatalf("tail body missing event:\n%s", body)
	}

	// Without WithTraceTail the route must not exist.
	addr2, stop2, err := ServeDebug("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = stop2() }()
	resp2, err := http.Get(fmt.Sprintf("http://%s/debug/trace/tail", addr2))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unmounted tail route: status %d, want 404", resp2.StatusCode)
	}
}

// TestTraceTailerConcurrentRecordClose is a -race check on the
// tailer's locking: records, closes, and bounds reads from many
// goroutines.
func TestTraceTailerConcurrentRecordClose(t *testing.T) {
	tail := NewTraceTailer(32, NewRegistry())
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tail.Record(Event{Kind: KindSched, Step: uint64(i), PID: pid})
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			tail.Seq()
			tail.bounds()
		}
	}()
	wg.Wait()
	tail.Close()
	tail.Record(Event{Kind: KindSched, Step: 1, PID: 0}) // dropped, no panic
	if seq := tail.Seq(); seq != 4000 {
		t.Fatalf("seq = %d, want 4000 (post-close record must be dropped)", seq)
	}
}
