package obs_test

import (
	"bytes"
	"testing"

	"pwf/internal/machine"
	"pwf/internal/obs"
	"pwf/internal/rng"
	"pwf/internal/sched"
	"pwf/internal/scu"
	"pwf/internal/shmem"
)

// buildSCUSim assembles an SCU(0,1) simulator over n processes with
// the given scheduler, tracing into w.
func buildSCUSim(t *testing.T, n int, sch sched.Scheduler, w *bytes.Buffer) (*machine.Sim, *obs.TraceRecorder) {
	t.Helper()
	mem, err := shmem.New(scu.SCULayout(1))
	if err != nil {
		t.Fatal(err)
	}
	procs, err := scu.NewSCUGroup(n, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := machine.New(mem, procs, sch)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTraceRecorder(w)
	sim.SetRecorder(tr)
	return sim, tr
}

// TestTraceReplayRoundTrip is the acceptance test for the trace
// format: record a stochastic run's schedule to NDJSON, feed the
// recovered schedule through sched.Replay on a fresh identical
// workload, and require the replayed run to reproduce the original
// history event for event.
func TestTraceReplayRoundTrip(t *testing.T) {
	const (
		n     = 4
		steps = 20000
		seed  = 42
	)

	uni, err := sched.NewUniform(n, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	var orig bytes.Buffer
	sim, tr := buildSCUSim(t, n, uni, &orig)
	if err := sim.Run(steps); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	origBytes := append([]byte(nil), orig.Bytes()...)

	events, err := obs.ReadEvents(&orig)
	if err != nil {
		t.Fatalf("recorded trace is not valid NDJSON: %v", err)
	}

	// Recover the interleaving from the sched events.
	var trace []int32
	for _, e := range events {
		if e.Kind == obs.KindSched {
			trace = append(trace, int32(e.PID))
		}
	}
	if len(trace) != steps {
		t.Fatalf("recovered %d sched events, want %d", len(trace), steps)
	}

	replay, err := sched.NewReplay(n, trace, false)
	if err != nil {
		t.Fatal(err)
	}
	var rep bytes.Buffer
	sim2, tr2 := buildSCUSim(t, n, replay, &rep)
	if err := sim2.Run(steps); err != nil {
		t.Fatal(err)
	}
	if err := tr2.Flush(); err != nil {
		t.Fatal(err)
	}

	// The model is deterministic given the schedule, so the replayed
	// run must reproduce the original trace byte for byte: same CAS
	// outcomes, same retries, same completions at the same steps.
	if !bytes.Equal(origBytes, rep.Bytes()) {
		t.Fatal("replayed trace differs from the original")
	}

	for pid := 0; pid < n; pid++ {
		if a, b := sim.Completions()[pid], sim2.Completions()[pid]; a != b {
			t.Errorf("pid %d: completions %d (original) vs %d (replay)", pid, a, b)
		}
	}
	if sim.TotalCompletions() == 0 {
		t.Fatal("degenerate run: no completions")
	}
}

// buildSCUSimBinary is buildSCUSim tracing into a v2 binary writer.
func buildSCUSimBinary(t *testing.T, n int, sch sched.Scheduler, w *bytes.Buffer, comp obs.Compression) (*machine.Sim, *obs.BinaryTraceWriter) {
	t.Helper()
	mem, err := shmem.New(scu.SCULayout(1))
	if err != nil {
		t.Fatal(err)
	}
	procs, err := scu.NewSCUGroup(n, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := machine.New(mem, procs, sch)
	if err != nil {
		t.Fatal(err)
	}
	bw := obs.NewBinaryTraceWriter(w, obs.BinaryTraceOptions{
		Compression: comp, Registry: obs.NewRegistry(),
	})
	sim.SetRecorder(bw)
	return sim, bw
}

// TestBinaryTraceReplayRoundTrip is the v2 acceptance test: a run
// recorded in the binary format must replay byte-exactly, and must
// decode to the very same events as an NDJSON recording of the same
// seed — the format changes the bytes on disk, never the history.
func TestBinaryTraceReplayRoundTrip(t *testing.T) {
	const (
		n     = 4
		steps = 20000
		seed  = 42
	)
	for _, comp := range []obs.Compression{obs.CompressNone, obs.CompressGzip} {
		t.Run(comp.String(), func(t *testing.T) {
			uni, err := sched.NewUniform(n, rng.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			var orig bytes.Buffer
			sim, bw := buildSCUSimBinary(t, n, uni, &orig, comp)
			if err := sim.Run(steps); err != nil {
				t.Fatal(err)
			}
			if err := bw.Flush(); err != nil {
				t.Fatal(err)
			}
			origBytes := append([]byte(nil), orig.Bytes()...)

			events, err := obs.ReadTrace(&orig)
			if err != nil {
				t.Fatalf("recorded binary trace does not decode: %v", err)
			}

			// The same seed recorded via NDJSON must yield the same
			// event stream: the formats are interchangeable views.
			uniJ, err := sched.NewUniform(n, rng.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			var nd bytes.Buffer
			simJ, trJ := buildSCUSim(t, n, uniJ, &nd)
			if err := simJ.Run(steps); err != nil {
				t.Fatal(err)
			}
			if err := trJ.Flush(); err != nil {
				t.Fatal(err)
			}
			jsonEvents, err := obs.ReadEvents(&nd)
			if err != nil {
				t.Fatal(err)
			}
			if len(events) != len(jsonEvents) {
				t.Fatalf("binary run has %d events, ndjson run %d", len(events), len(jsonEvents))
			}
			for i := range events {
				if events[i] != jsonEvents[i] {
					t.Fatalf("event %d: binary %+v vs ndjson %+v", i, events[i], jsonEvents[i])
				}
			}

			// Replay the recovered schedule; the rerecorded binary
			// trace must match the original byte for byte.
			var trace []int32
			for _, e := range events {
				if e.Kind == obs.KindSched {
					trace = append(trace, int32(e.PID))
				}
			}
			if len(trace) != steps {
				t.Fatalf("recovered %d sched events, want %d", len(trace), steps)
			}
			replay, err := sched.NewReplay(n, trace, false)
			if err != nil {
				t.Fatal(err)
			}
			var rep bytes.Buffer
			sim2, bw2 := buildSCUSimBinary(t, n, replay, &rep, comp)
			if err := sim2.Run(steps); err != nil {
				t.Fatal(err)
			}
			if err := bw2.Flush(); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(origBytes, rep.Bytes()) {
				t.Fatal("replayed binary trace differs from the original")
			}
			for pid := 0; pid < n; pid++ {
				if a, b := sim.Completions()[pid], sim2.Completions()[pid]; a != b {
					t.Errorf("pid %d: completions %d (original) vs %d (replay)", pid, a, b)
				}
			}
			if sim.TotalCompletions() == 0 {
				t.Fatal("degenerate run: no completions")
			}
		})
	}
}
