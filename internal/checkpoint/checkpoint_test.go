package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"pwf/internal/api"
	"pwf/internal/obs"
	"pwf/internal/sweep"
)

func testConfig() sweep.Config {
	return sweep.Config{
		Jobs: []sweep.Job{
			{Workload: sweep.Workload{Kind: sweep.FetchInc}, N: 3, Steps: 20000},
			{Workload: sweep.Workload{Kind: sweep.SCU, S: 1}, N: 2, Steps: 20000},
			{Workload: sweep.Workload{Kind: sweep.FetchInc}, N: 4, Steps: 20000},
			{Workload: sweep.Workload{Kind: sweep.SCU, S: 1}, N: 3, Steps: 20000,
				Sched: sweep.SchedulerSpec{Kind: sweep.SchedSticky, Rho: 0.5}},
		},
		Seed: 7,
	}
}

func stripElapsed(rs []sweep.Result) []sweep.Result {
	out := make([]sweep.Result, len(rs))
	copy(out, rs)
	for i := range out {
		out[i].Elapsed = 0
	}
	return out
}

// End to end: run with a checkpoint, reopen, confirm every point
// restores and a resumed sweep is byte-identical in canonical form.
func TestLogRoundTripAndResume(t *testing.T) {
	cfg := testConfig()
	path := filepath.Join(t.TempDir(), "sweep.ckpt")

	l, err := Open(path, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if l.Restored() != 0 {
		t.Fatalf("fresh checkpoint restored %d points", l.Restored())
	}
	runCfg := cfg
	runCfg.Checkpoint = l
	full, err := sweep.Run(runCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Restored() != len(full) {
		t.Fatalf("reopened checkpoint restored %d of %d points", re.Restored(), len(full))
	}
	reCfg := cfg
	reCfg.Checkpoint = re
	resumed, err := sweep.Run(reCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripElapsed(full), stripElapsed(resumed)) {
		t.Error("resumed results differ from the original run")
	}
	// Canonical re-encoding of restored results matches the original
	// bytes exactly — the property streaming consumers rely on.
	for i := range full {
		want, _ := api.MarshalResult(api.ResultFromSweep(full[i]))
		got, _ := api.MarshalResult(api.ResultFromSweep(resumed[i]))
		if string(want) != string(got) {
			t.Errorf("point %d: canonical bytes differ after restore", i)
		}
	}
}

// A checkpoint written for one grid is rejected loudly for another:
// different jobs, different seed, different point count all fail with
// ErrGridMismatch.
func TestLogRejectsGridMismatch(t *testing.T) {
	cfg := testConfig()
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	l, err := Open(path, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()

	otherSeed := cfg
	otherSeed.Seed = 8
	if _, err := Open(path, otherSeed, Options{}); !errors.Is(err, ErrGridMismatch) {
		t.Errorf("different seed: got %v, want ErrGridMismatch", err)
	}

	otherJobs := cfg
	otherJobs.Jobs = append([]sweep.Job{}, cfg.Jobs...)
	otherJobs.Jobs[0].Steps = 99999
	if _, err := Open(path, otherJobs, Options{}); !errors.Is(err, ErrGridMismatch) {
		t.Errorf("different jobs: got %v, want ErrGridMismatch", err)
	}

	fewer := cfg
	fewer.Jobs = cfg.Jobs[:2]
	if _, err := Open(path, fewer, Options{}); !errors.Is(err, ErrGridMismatch) {
		t.Errorf("different point count: got %v, want ErrGridMismatch", err)
	}
}

// The hash binds the expanded point layout: replica expansion and the
// warmup override are part of a grid's identity.
func TestHashCoversExpansionAndOverrides(t *testing.T) {
	base := testConfig()
	h1, err := Hash(base)
	if err != nil {
		t.Fatal(err)
	}

	reps := base
	reps.Jobs = append([]sweep.Job{}, base.Jobs...)
	reps.Jobs[0].Replicas = 3
	h2, err := Hash(reps)
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 {
		t.Error("replica expansion did not change the grid hash")
	}

	warm := 0.5
	over := base
	over.Warmup = &warm
	h3, err := Hash(over)
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h3 {
		t.Error("warmup override did not change the grid hash")
	}

	// Execution-only knobs do not change identity.
	exec := base
	exec.Workers = 7
	exec.BatchFamilies = true
	exec.ReplicaBatch = 16
	h4, err := Hash(exec)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h4 {
		t.Error("execution knobs changed the grid hash")
	}
}

// Every byte-prefix of a finished checkpoint loads: complete lines
// restore, a torn tail is dropped, and appends after a torn-tail load
// produce a clean file. This is the SIGKILL-at-any-byte guarantee.
func TestLogLoadsEveryPrefix(t *testing.T) {
	cfg := testConfig()
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.ckpt")
	l, err := Open(path, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	runCfg := cfg
	runCfg.Checkpoint = l
	if _, err := sweep.Run(runCfg); err != nil {
		t.Fatal(err)
	}
	l.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	headerLen := strings.IndexByte(string(data), '\n') + 1

	for cut := headerLen; cut <= len(data); cut++ {
		trunc := filepath.Join(dir, "trunc.ckpt")
		if err := os.WriteFile(trunc, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		lt, err := Open(trunc, cfg, Options{})
		if err != nil {
			t.Fatalf("prefix of %d bytes failed to load: %v", cut, err)
		}
		wantComplete := 0
		for _, b := range data[headerLen:cut] {
			if b == '\n' {
				wantComplete++
			}
		}
		if lt.Restored() != wantComplete {
			t.Fatalf("prefix of %d bytes restored %d points, want %d", cut, lt.Restored(), wantComplete)
		}
		lt.Close()
		os.Remove(trunc)
	}
}

// A torn tail is truncated on load, so subsequent commits append onto
// a clean prefix and the file round-trips again.
func TestLogTruncatesTornTailBeforeAppend(t *testing.T) {
	cfg := testConfig()
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	l, err := Open(path, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	runCfg := cfg
	runCfg.Checkpoint = l
	full, err := sweep.Run(runCfg)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Tear the file mid-final-line.
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if re.Restored() != len(full)-1 {
		t.Fatalf("torn checkpoint restored %d points, want %d", re.Restored(), len(full)-1)
	}
	reCfg := cfg
	reCfg.Checkpoint = re
	if _, err := sweep.Run(reCfg); err != nil {
		t.Fatal(err)
	}
	re.Close()

	// The healed file now loads completely.
	final, err := Open(path, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer final.Close()
	if final.Restored() != len(full) {
		t.Errorf("healed checkpoint restored %d of %d points", final.Restored(), len(full))
	}
}

// Interior corruption (a complete but undecodable line) is a loud
// error, not a silent partial restore.
func TestLogRejectsInteriorCorruption(t *testing.T) {
	cfg := testConfig()
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	l, err := Open(path, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	runCfg := cfg
	runCfg.Checkpoint = l
	if _, err := sweep.Run(runCfg); err != nil {
		t.Fatal(err)
	}
	l.Close()

	data, _ := os.ReadFile(path)
	lines := strings.SplitAfter(string(data), "\n")
	lines[2] = "{\"v\":1,\"index\":not json}\n"
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, cfg, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("interior corruption: got %v, want ErrCorrupt", err)
	}
}

// The write/restore counters land in the registry.
func TestLogMetrics(t *testing.T) {
	cfg := testConfig()
	reg := obs.NewRegistry()
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	l, err := Open(path, cfg, Options{Registry: reg, FlushEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	runCfg := cfg
	runCfg.Checkpoint = l
	if _, err := sweep.Run(runCfg); err != nil {
		t.Fatal(err)
	}
	l.Close()
	total := uint64(len(cfg.Jobs))
	if got := reg.Counter("checkpoint_points_written").Load(); got != total {
		t.Errorf("checkpoint_points_written = %d, want %d", got, total)
	}
	if got := reg.Counter("checkpoint_syncs").Load(); got < total {
		t.Errorf("checkpoint_syncs = %d, want >= %d with FlushEvery=-1", got, total)
	}

	re, err := Open(path, cfg, Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	re.Close()
	if got := reg.Counter("checkpoint_points_restored").Load(); got != total {
		t.Errorf("checkpoint_points_restored = %d, want %d", got, total)
	}
}

// Load inspects header and records without binding to a grid.
func TestLoadInspectsFile(t *testing.T) {
	cfg := testConfig()
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	l, err := Open(path, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	runCfg := cfg
	runCfg.Checkpoint = l
	if _, err := sweep.Run(runCfg); err != nil {
		t.Fatal(err)
	}
	l.Close()

	meta, results, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Points != len(cfg.Jobs) || meta.Seed != cfg.Seed || meta.Format != Format {
		t.Errorf("meta = %+v", meta)
	}
	if len(results) != len(cfg.Jobs) {
		t.Errorf("Load returned %d of %d records", len(results), len(cfg.Jobs))
	}
}
