// Package checkpoint is the crash-safe persistence layer under
// resumable sweeps: an append-only, fsync-batched log of completed
// sweep points in the canonical internal/api Result encoding, under a
// single-line header that binds the log to one grid (by SHA-256 of
// the grid's canonical encoding) and one master seed.
//
// # File format
//
// The file is NDJSON. Line 1 is the header:
//
//	{"v":1,"format":"pwf-checkpoint","grid_sha256":"<hex>","seed":1,"points":100}
//
// Every following line is one canonical api.Result (schema v1, no
// wall-clock fields), exactly the bytes pwfserve streams and pwfsim
// -json emits for the same point. Records append in completion order;
// point indices, not file order, key the restore.
//
// # Atomicity and crash safety
//
// The header is created via temp file + fsync + atomic rename (plus a
// directory fsync), so a file that exists at the checkpoint path
// always carries a complete, valid header — a crash during creation
// leaves only a stale temp file, never a half-written checkpoint.
// Records are appended with batched fsyncs (every Options.FlushEvery
// commits and on Close). A SIGKILL at any byte therefore leaves a
// loadable prefix: complete '\n'-terminated lines are restored, a
// torn final line (no trailing newline) is discarded and overwritten
// by the next append. A '\n'-terminated line that fails to decode is
// real corruption and fails the load loudly, as does a header whose
// grid hash, seed, or point count disagrees with the sweep being
// resumed (ErrGridMismatch).
//
// Because sweep point i always draws from rng.Stream(seed, i),
// restoring the completed set and executing only the remainder yields
// canonical output byte-identical to an uninterrupted run — the
// property the cmd/pwfsweep kill-and-resume harness test pins.
package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"pwf/internal/api"
	"pwf/internal/obs"
	"pwf/internal/sweep"
)

// Format is the header's format discriminator.
const Format = "pwf-checkpoint"

// Version is the checkpoint header version this package speaks.
const Version = 1

// DefaultFlushEvery is the default fsync batch: one durability point
// per this many commits (and always on Close). Batching trades at
// most a batch of re-executable points on power loss for not paying
// an fsync per point on million-job runs.
const DefaultFlushEvery = 64

// ErrGridMismatch marks a checkpoint that does not belong to the
// sweep being resumed: different grid hash, master seed, or point
// count. Match with errors.Is.
var ErrGridMismatch = errors.New("checkpoint: grid mismatch")

// ErrCorrupt marks a checkpoint whose interior (not its torn tail) is
// undecodable. Match with errors.Is.
var ErrCorrupt = errors.New("checkpoint: corrupt")

// Meta is the header line binding a checkpoint to its sweep.
type Meta struct {
	V       int    `json:"v"`
	Format  string `json:"format"`
	GridSHA string `json:"grid_sha256"`
	Seed    uint64 `json:"seed"`
	Points  int    `json:"points"`
}

// Options tune a Log. The zero value selects every default.
type Options struct {
	// FlushEvery is the fsync batch size in commits; 0 selects
	// DefaultFlushEvery, negative fsyncs on every commit.
	FlushEvery int
	// Registry receives the checkpoint_* counters (points written and
	// restored, bytes written, fsyncs); nil selects obs.Default.
	Registry *obs.Registry
}

// Hash returns the hex SHA-256 binding a sweep's identity: the
// canonical api encoding of the expanded point list (job overrides
// applied, replicas expanded — the layout that defines per-point seed
// derivation) together with the master seed.
func Hash(cfg sweep.Config) (string, error) {
	points := sweep.Points(cfg)
	jobs := make([]api.Job, len(points))
	for i, p := range points {
		jobs[i] = api.JobFromSweep(p)
	}
	b, err := api.MarshalGrid(api.Grid{V: api.Version, Seed: cfg.Seed, Jobs: jobs})
	if err != nil {
		return "", fmt.Errorf("checkpoint: hash grid: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Log is the file-backed sweep.Checkpoint. Commit is safe for
// concurrent use by sweep workers; Restore is called by sweep.Run
// before any worker starts.
type Log struct {
	mu         sync.Mutex
	f          *os.File
	path       string
	meta       Meta
	restored   map[int]sweep.Result
	sinceSync  int
	flushEvery int
	closed     bool

	mWritten  *obs.Counter
	mRestored *obs.Counter
	mBytes    *obs.Counter
	mSyncs    *obs.Counter
}

// Open creates the checkpoint at path for cfg's grid, or — if the
// file already exists — loads it, validating that its header binds
// exactly this grid and seed (ErrGridMismatch otherwise) and
// restoring every complete record; a torn final line is discarded and
// truncated away so appends resume on a clean prefix. The returned
// Log is ready to pass as sweep.Config.Checkpoint. Callers that want
// "refuse to overwrite" semantics (pwfsweep without -resume) stat the
// path before calling.
func Open(path string, cfg sweep.Config, opts Options) (*Log, error) {
	if opts.FlushEvery == 0 {
		opts.FlushEvery = DefaultFlushEvery
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.Default
	}
	hash, err := Hash(cfg)
	if err != nil {
		return nil, err
	}
	total := len(sweep.Points(cfg))
	l := &Log{
		path:       path,
		meta:       Meta{V: Version, Format: Format, GridSHA: hash, Seed: cfg.Seed, Points: total},
		restored:   make(map[int]sweep.Result),
		flushEvery: opts.FlushEvery,
		mWritten:   reg.Counter("checkpoint_points_written"),
		mRestored:  reg.Counter("checkpoint_points_restored"),
		mBytes:     reg.Counter("checkpoint_bytes_written"),
		mSyncs:     reg.Counter("checkpoint_syncs"),
	}
	if _, err := os.Stat(path); err == nil {
		if err := l.load(); err != nil {
			return nil, err
		}
	} else if errors.Is(err, os.ErrNotExist) {
		if err := l.create(); err != nil {
			return nil, err
		}
	} else {
		return nil, fmt.Errorf("checkpoint: stat %s: %w", path, err)
	}
	return l, nil
}

// create writes the header to a temp file and renames it into place,
// so the checkpoint path never holds a headerless file.
func (l *Log) create() error {
	dir := filepath.Dir(l.path)
	header, err := json.Marshal(l.meta)
	if err != nil {
		return fmt.Errorf("checkpoint: marshal header: %w", err)
	}
	header = append(header, '\n')
	tmp, err := os.CreateTemp(dir, filepath.Base(l.path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: create: %w", err)
	}
	cleanup := func() { tmp.Close(); os.Remove(tmp.Name()) }
	if _, err := tmp.Write(header); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: write header: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: sync header: %w", err)
	}
	if err := os.Rename(tmp.Name(), l.path); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: rename into place: %w", err)
	}
	syncDir(dir)
	// The renamed fd stays valid for appends; no reopen needed.
	l.f = tmp
	l.mBytes.Add(uint64(len(header)))
	l.mSyncs.Inc()
	return nil
}

// load reads an existing checkpoint: header validation, record
// restore, torn-tail truncation, and reopening for append.
func (l *Log) load() error {
	data, err := os.ReadFile(l.path)
	if err != nil {
		return fmt.Errorf("checkpoint: read %s: %w", l.path, err)
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		// Creation is atomic, so a headerless file is not ours.
		return fmt.Errorf("%w: %s has no complete header line", ErrCorrupt, l.path)
	}
	var meta Meta
	if err := json.Unmarshal(data[:nl], &meta); err != nil {
		return fmt.Errorf("%w: %s header: %v", ErrCorrupt, l.path, err)
	}
	if meta.V != Version || meta.Format != Format {
		return fmt.Errorf("%w: %s is %q v%d (this build speaks %q v%d)",
			ErrCorrupt, l.path, meta.Format, meta.V, Format, Version)
	}
	if meta.GridSHA != l.meta.GridSHA || meta.Seed != l.meta.Seed || meta.Points != l.meta.Points {
		return fmt.Errorf("%w: %s was written for grid %s (seed %d, %d points); "+
			"this sweep is grid %s (seed %d, %d points) — refusing to mix results across grids",
			ErrGridMismatch, l.path, meta.GridSHA, meta.Seed, meta.Points,
			l.meta.GridSHA, l.meta.Seed, l.meta.Points)
	}
	// Restore every complete record line; remember where the loadable
	// prefix ends so a torn tail is truncated away before appending.
	validLen := nl + 1
	rest := data[nl+1:]
	for len(rest) > 0 {
		eol := bytes.IndexByte(rest, '\n')
		if eol < 0 {
			// Torn tail from a crash mid-append: discard.
			break
		}
		line := rest[:eol]
		var res api.Result
		if err := json.Unmarshal(line, &res); err != nil {
			return fmt.Errorf("%w: %s record at byte %d: %v", ErrCorrupt, l.path, validLen, err)
		}
		if res.V != api.Version {
			return fmt.Errorf("%w: %s record has v=%d (this build speaks v%d)",
				ErrCorrupt, l.path, res.V, api.Version)
		}
		if res.Index < 0 || res.Index >= l.meta.Points {
			return fmt.Errorf("%w: %s record index %d out of [0, %d)",
				ErrCorrupt, l.path, res.Index, l.meta.Points)
		}
		if _, dup := l.restored[res.Index]; dup {
			return fmt.Errorf("%w: %s holds point %d twice (two writers?)",
				ErrCorrupt, l.path, res.Index)
		}
		l.restored[res.Index] = res.Sweep()
		validLen += eol + 1
		rest = rest[eol+1:]
	}
	f, err := os.OpenFile(l.path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("checkpoint: reopen %s: %w", l.path, err)
	}
	if err := f.Truncate(int64(validLen)); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint: truncate torn tail of %s: %w", l.path, err)
	}
	if _, err := f.Seek(int64(validLen), 0); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint: seek %s: %w", l.path, err)
	}
	l.f = f
	l.mRestored.Add(uint64(len(l.restored)))
	return nil
}

// Restored returns the number of points loaded from the file.
func (l *Log) Restored() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.restored)
}

// Points returns the total point count of the bound grid.
func (l *Log) Points() int { return l.meta.Points }

// GridSHA returns the hex grid hash the checkpoint is bound to.
func (l *Log) GridSHA() string { return l.meta.GridSHA }

// Path returns the checkpoint file path.
func (l *Log) Path() string { return l.path }

// Restore implements sweep.Checkpoint.
func (l *Log) Restore(i int) (sweep.Result, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	res, ok := l.restored[i]
	return res, ok
}

// Commit implements sweep.Checkpoint: one canonical api.Result line
// appended, with an fsync every flushEvery commits.
func (l *Log) Commit(r sweep.Result) error {
	line, err := api.MarshalResult(api.ResultFromSweep(r))
	if err != nil {
		return fmt.Errorf("checkpoint: encode point %d: %w", r.Index, err)
	}
	line = append(line, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("checkpoint: commit after Close")
	}
	if _, err := l.f.Write(line); err != nil {
		return fmt.Errorf("checkpoint: append point %d: %w", r.Index, err)
	}
	l.mWritten.Inc()
	l.mBytes.Add(uint64(len(line)))
	l.sinceSync++
	if l.flushEvery < 0 || l.sinceSync >= l.flushEvery {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("checkpoint: sync: %w", err)
		}
		l.mSyncs.Inc()
		l.sinceSync = 0
	}
	return nil
}

// Sync forces any batched appends to durable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.sinceSync == 0 {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: sync: %w", err)
	}
	l.mSyncs.Inc()
	l.sinceSync = 0
	return nil
}

// Close syncs and closes the file. The Log is unusable afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var first error
	if l.sinceSync > 0 {
		if err := l.f.Sync(); err != nil {
			first = fmt.Errorf("checkpoint: sync on close: %w", err)
		} else {
			l.mSyncs.Inc()
		}
	}
	if err := l.f.Close(); err != nil && first == nil {
		first = fmt.Errorf("checkpoint: close: %w", err)
	}
	return first
}

// syncDir fsyncs a directory so a just-renamed file survives power
// loss. Best-effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// Load reads a checkpoint without binding it to a grid — header plus
// restored results — for inspection (pwfsweep progress reporting uses
// the restored count before Run starts). The same torn-tail tolerance
// as Open applies; the file is not opened for writing.
func Load(path string) (Meta, []api.Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Meta{}, nil, fmt.Errorf("checkpoint: read %s: %w", path, err)
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return Meta{}, nil, fmt.Errorf("%w: %s has no complete header line", ErrCorrupt, path)
	}
	var meta Meta
	if err := json.Unmarshal(data[:nl], &meta); err != nil {
		return Meta{}, nil, fmt.Errorf("%w: %s header: %v", ErrCorrupt, path, err)
	}
	var out []api.Result
	rest := data[nl+1:]
	for len(rest) > 0 {
		eol := bytes.IndexByte(rest, '\n')
		if eol < 0 {
			break
		}
		var res api.Result
		if err := json.Unmarshal(rest[:eol], &res); err != nil {
			return Meta{}, nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, path, err)
		}
		out = append(out, res)
		rest = rest[eol+1:]
	}
	return meta, out, nil
}
