// Package stats provides the small statistics substrate used by the
// experiment harness: streaming moments, quantiles, histograms,
// chi-square uniformity tests, least-squares fits (including the
// power-law fit used to test the √n latency exponent), and normal
// confidence intervals.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrNoData is returned by estimators that need at least one sample.
var ErrNoData = errors.New("stats: no data")

// Summary holds streaming sample moments, accumulated with Welford's
// algorithm for numerical stability. The zero value is ready to use.
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// AddAll incorporates every observation in xs.
func (s *Summary) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N returns the number of observations seen so far.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 if no data).
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation (0 if no data).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 if no data).
func (s *Summary) Max() float64 { return s.max }

// Merge incorporates the observations of o into s, as if every sample
// added to o had been added to s directly (Chan et al.'s parallel
// combination of Welford accumulators). It lets per-worker summaries
// be reduced without reprocessing the raw samples.
func (s *Summary) Merge(o Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n1, n2 := float64(s.n), float64(o.n)
	tot := n1 + n2
	delta := o.mean - s.mean
	s.mean += delta * n2 / tot
	s.m2 += o.m2 + delta*delta*n1*n2/tot
	s.n += o.n
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}

// Variance returns the unbiased sample variance (0 for fewer than two
// observations).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	v := s.m2 / float64(s.n-1)
	if v < 0 {
		// Welford keeps m2 non-negative analytically, but catastrophic
		// cancellation can drive it fractionally below zero; clamping
		// here keeps StdDev from returning NaN.
		return 0
	}
	return v
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// ConfidenceInterval95 returns the half-width of the 95% normal
// confidence interval for the mean.
func (s *Summary) ConfidenceInterval95() float64 {
	return 1.96 * s.StdErr()
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. xs is not modified. The
// edges mirror obs.HistogramSnapshot.Quantile: q = 0 returns the
// minimum, q = 1 the maximum, empty input returns ErrNoData, and a
// NaN or out-of-range q is rejected.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	if math.IsNaN(q) || q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of [0,1]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// ChiSquareUniform computes the chi-square statistic of counts against
// the uniform distribution, along with the degrees of freedom
// (len(counts) - 1). The total count must be positive.
func ChiSquareUniform(counts []int) (stat float64, dof int, err error) {
	if len(counts) < 2 {
		return 0, 0, errors.New("stats: need at least two categories")
	}
	var total int
	for _, c := range counts {
		if c < 0 {
			return 0, 0, errors.New("stats: negative count")
		}
		total += c
	}
	if total == 0 {
		return 0, 0, ErrNoData
	}
	expected := float64(total) / float64(len(counts))
	for _, c := range counts {
		d := float64(c) - expected
		stat += d * d / expected
	}
	return stat, len(counts) - 1, nil
}

// ChiSquareCritical999 returns an upper bound on the chi-square
// critical value at significance 0.001 for the given degrees of
// freedom, using the Wilson-Hilferty approximation. Tests that stay
// below this value are consistent with the null hypothesis at p=0.001.
func ChiSquareCritical999(dof int) float64 {
	if dof <= 0 {
		return 0
	}
	// Wilson-Hilferty: chi2_p ≈ dof * (1 - 2/(9 dof) + z_p sqrt(2/(9 dof)))^3
	// with z_0.999 = 3.0902.
	const z = 3.0902
	k := float64(dof)
	t := 1 - 2/(9*k) + z*math.Sqrt(2/(9*k))
	return k * t * t * t
}

// ChiSquareTwoSample computes the chi-square homogeneity statistic
// for two independent samples of categorical counts over the same
// categories: the null hypothesis is that both samples draw from the
// same (unknown) distribution. Categories empty in both samples are
// dropped; the degrees of freedom are the number of remaining
// categories minus one. Both samples must have positive totals and at
// least two categories must be occupied.
//
// The sched package uses this to verify its constant-time samplers
// (alias tables, Fenwick draws) against the naive O(n) reference
// samplers without needing the true distribution in closed form.
func ChiSquareTwoSample(a, b []int) (stat float64, dof int, err error) {
	if len(a) != len(b) {
		return 0, 0, errors.New("stats: sample length mismatch")
	}
	var totalA, totalB int
	occupied := 0
	for i := range a {
		if a[i] < 0 || b[i] < 0 {
			return 0, 0, errors.New("stats: negative count")
		}
		totalA += a[i]
		totalB += b[i]
		if a[i]+b[i] > 0 {
			occupied++
		}
	}
	if totalA == 0 || totalB == 0 {
		return 0, 0, ErrNoData
	}
	if occupied < 2 {
		return 0, 0, errors.New("stats: need at least two occupied categories")
	}
	grand := float64(totalA + totalB)
	fracA := float64(totalA) / grand
	fracB := float64(totalB) / grand
	for i := range a {
		col := float64(a[i] + b[i])
		if col == 0 {
			continue
		}
		ea := col * fracA
		eb := col * fracB
		da := float64(a[i]) - ea
		db := float64(b[i]) - eb
		stat += da*da/ea + db*db/eb
	}
	return stat, occupied - 1, nil
}

// LinearFit fits y = a + b*x by ordinary least squares and returns the
// intercept a, slope b, and the coefficient of determination R².
func LinearFit(xs, ys []float64) (a, b, r2 float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, 0, errors.New("stats: length mismatch")
	}
	if len(xs) < 2 {
		return 0, 0, 0, errors.New("stats: need at least two points")
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, 0, errors.New("stats: degenerate x values")
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n

	// R² = 1 - SS_res / SS_tot.
	ssTot := syy - sy*sy/n
	var ssRes float64
	for i := range xs {
		r := ys[i] - (a + b*xs[i])
		ssRes += r * r
	}
	if ssTot == 0 {
		// All y identical: fit is exact iff residuals vanish.
		if ssRes == 0 {
			return a, b, 1, nil
		}
		return a, b, 0, nil
	}
	return a, b, 1 - ssRes/ssTot, nil
}

// PowerFit fits y = c * x^p by linear regression in log-log space and
// returns the coefficient c, the exponent p, and the log-space R².
// All xs and ys must be strictly positive.
func PowerFit(xs, ys []float64) (c, p, r2 float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, 0, errors.New("stats: length mismatch")
	}
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return 0, 0, 0, errors.New("stats: power fit requires positive data")
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	a, b, r2, err := LinearFit(lx, ly)
	if err != nil {
		return 0, 0, 0, err
	}
	return math.Exp(a), b, r2, nil
}

// Histogram is a fixed-width histogram over [Lo, Hi) with overflow and
// underflow buckets.
type Histogram struct {
	Lo, Hi    float64
	Counts    []int
	Underflow int
	Overflow  int
	width     float64
}

// NewHistogram allocates a histogram with the given bucket count over
// [lo, hi). It returns an error for invalid bounds or bucket counts.
func NewHistogram(lo, hi float64, buckets int) (*Histogram, error) {
	if buckets <= 0 {
		return nil, errors.New("stats: bucket count must be positive")
	}
	if !(lo < hi) {
		return nil, errors.New("stats: histogram bounds must satisfy lo < hi")
	}
	return &Histogram{
		Lo:     lo,
		Hi:     hi,
		Counts: make([]int, buckets),
		width:  (hi - lo) / float64(buckets),
	}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Underflow++
	case x >= h.Hi:
		h.Overflow++
	default:
		idx := int((x - h.Lo) / h.width)
		if idx >= len(h.Counts) { // float edge case at the upper bound
			idx = len(h.Counts) - 1
		}
		h.Counts[idx]++
	}
}

// Total returns the total number of observations including overflow
// and underflow.
func (h *Histogram) Total() int {
	t := h.Underflow + h.Overflow
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// MaxAbsDiff returns the maximum absolute elementwise difference of two
// equal-length vectors.
func MaxAbsDiff(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("stats: length mismatch")
	}
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m, nil
}

// RelativeError returns |got-want| / max(|want|, eps); eps guards the
// want≈0 case.
func RelativeError(got, want float64) float64 {
	const eps = 1e-12
	den := math.Abs(want)
	if den < eps {
		den = eps
	}
	return math.Abs(got-want) / den
}
