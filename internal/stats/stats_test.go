package stats

import (
	"math"
	"testing"
	"testing/quick"

	"pwf/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummaryBasics(t *testing.T) {
	var s Summary
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N() != 8 {
		t.Fatalf("N = %d, want 8", s.N())
	}
	if !almostEqual(s.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Unbiased sample variance of this classic dataset is 32/7.
	if !almostEqual(s.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", s.Variance(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.StdErr() != 0 {
		t.Error("empty summary should report zeros")
	}
	s.Add(3.5)
	if s.Mean() != 3.5 || s.Variance() != 0 {
		t.Errorf("single observation: mean %v variance %v", s.Mean(), s.Variance())
	}
	if s.Min() != 3.5 || s.Max() != 3.5 {
		t.Error("single observation min/max wrong")
	}
}

func TestSummaryMatchesDirectComputation(t *testing.T) {
	src := rng.New(7)
	xs := make([]float64, 1000)
	var s Summary
	for i := range xs {
		xs[i] = src.Float64()*100 - 50
		s.Add(xs[i])
	}
	mean, err := Mean(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(s.Mean(), mean, 1e-9) {
		t.Errorf("streaming mean %v != direct mean %v", s.Mean(), mean)
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	direct := ss / float64(len(xs)-1)
	if RelativeError(s.Variance(), direct) > 1e-9 {
		t.Errorf("streaming variance %v != direct %v", s.Variance(), direct)
	}
}

func TestMeanErrors(t *testing.T) {
	if _, err := Mean(nil); err == nil {
		t.Error("Mean(nil) returned nil error")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1},
		{0.25, 2},
		{0.5, 3},
		{0.75, 4},
		{1, 5},
	}
	for _, tt := range tests {
		got, err := Quantile(xs, tt.q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", tt.q, err)
		}
		if !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestQuantileInterpolates(t *testing.T) {
	got, err := Quantile([]float64{0, 10}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 3, 1e-12) {
		t.Errorf("Quantile = %v, want 3", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Median(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("empty input: nil error")
	}
	if _, err := Quantile([]float64{1}, -0.1); err == nil {
		t.Error("q < 0: nil error")
	}
	if _, err := Quantile([]float64{1}, 1.1); err == nil {
		t.Error("q > 1: nil error")
	}
	// NaN satisfies neither q < 0 nor q > 1, so it needs its own guard:
	// without one it would flow into the order-statistic arithmetic and
	// produce a garbage index instead of an error.
	if _, err := Quantile([]float64{1, 2}, math.NaN()); err == nil {
		t.Error("NaN q: nil error")
	}
}

func TestChiSquareUniformPerfect(t *testing.T) {
	stat, dof, err := ChiSquareUniform([]int{100, 100, 100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if stat != 0 || dof != 3 {
		t.Errorf("stat=%v dof=%d, want 0 and 3", stat, dof)
	}
}

func TestChiSquareUniformSkewed(t *testing.T) {
	stat, _, err := ChiSquareUniform([]int{1000, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if stat <= ChiSquareCritical999(3) {
		t.Errorf("grossly skewed counts passed: stat=%v", stat)
	}
}

func TestChiSquareErrors(t *testing.T) {
	if _, _, err := ChiSquareUniform([]int{5}); err == nil {
		t.Error("single category: nil error")
	}
	if _, _, err := ChiSquareUniform([]int{0, 0}); err == nil {
		t.Error("all-zero counts: nil error")
	}
	if _, _, err := ChiSquareUniform([]int{1, -1}); err == nil {
		t.Error("negative count: nil error")
	}
}

func TestChiSquareTwoSampleIdentical(t *testing.T) {
	a := []int{100, 200, 300}
	stat, dof, err := ChiSquareTwoSample(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if stat != 0 || dof != 2 {
		t.Errorf("stat=%v dof=%d, want 0 and 2", stat, dof)
	}
}

func TestChiSquareTwoSampleDisjoint(t *testing.T) {
	stat, dof, err := ChiSquareTwoSample([]int{1000, 0}, []int{0, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if stat <= ChiSquareCritical999(dof) {
		t.Errorf("disjoint samples passed: stat=%v dof=%d", stat, dof)
	}
}

func TestChiSquareTwoSampleDropsEmptyCategories(t *testing.T) {
	// The middle category is empty in both samples: it must not
	// contribute a degree of freedom or divide by zero.
	stat, dof, err := ChiSquareTwoSample([]int{50, 0, 50}, []int{60, 0, 40})
	if err != nil {
		t.Fatal(err)
	}
	if dof != 1 {
		t.Errorf("dof = %d, want 1", dof)
	}
	if math.IsNaN(stat) || math.IsInf(stat, 0) {
		t.Errorf("stat = %v", stat)
	}
}

func TestChiSquareTwoSampleErrors(t *testing.T) {
	if _, _, err := ChiSquareTwoSample([]int{1, 2}, []int{1}); err == nil {
		t.Error("length mismatch: nil error")
	}
	if _, _, err := ChiSquareTwoSample([]int{0, 0}, []int{1, 1}); err == nil {
		t.Error("empty first sample: nil error")
	}
	if _, _, err := ChiSquareTwoSample([]int{1, 1}, []int{0, 0}); err == nil {
		t.Error("empty second sample: nil error")
	}
	if _, _, err := ChiSquareTwoSample([]int{-1, 2}, []int{1, 2}); err == nil {
		t.Error("negative count: nil error")
	}
	if _, _, err := ChiSquareTwoSample([]int{3, 0}, []int{5, 0}); err == nil {
		t.Error("single occupied category: nil error")
	}
}

func TestChiSquareCritical999(t *testing.T) {
	// Reference values: dof=9 → 27.88, dof=1 → 10.83 (within a few %).
	if v := ChiSquareCritical999(9); math.Abs(v-27.88) > 1.0 {
		t.Errorf("critical(9) = %v, want ~27.88", v)
	}
	if v := ChiSquareCritical999(19); math.Abs(v-43.82) > 1.5 {
		t.Errorf("critical(19) = %v, want ~43.82", v)
	}
	if ChiSquareCritical999(0) != 0 {
		t.Error("critical(0) should be 0")
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 3 + 2x
	a, b, r2, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(a, 3, 1e-9) || !almostEqual(b, 2, 1e-9) || !almostEqual(r2, 1, 1e-9) {
		t.Errorf("got a=%v b=%v r2=%v, want 3, 2, 1", a, b, r2)
	}
}

func TestLinearFitConstantY(t *testing.T) {
	a, b, r2, err := LinearFit([]float64{1, 2, 3}, []float64{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(a, 4, 1e-9) || !almostEqual(b, 0, 1e-9) || r2 != 1 {
		t.Errorf("constant fit: a=%v b=%v r2=%v", a, b, r2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, _, _, err := LinearFit([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch: nil error")
	}
	if _, _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point: nil error")
	}
	if _, _, _, err := LinearFit([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("degenerate x: nil error")
	}
}

func TestPowerFitRecoversSqrt(t *testing.T) {
	// y = 4 * x^0.5
	var xs, ys []float64
	for _, x := range []float64{2, 4, 8, 16, 32, 64, 128} {
		xs = append(xs, x)
		ys = append(ys, 4*math.Sqrt(x))
	}
	c, p, r2, err := PowerFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(c, 4, 1e-6) || !almostEqual(p, 0.5, 1e-9) || !almostEqual(r2, 1, 1e-9) {
		t.Errorf("got c=%v p=%v r2=%v, want 4, 0.5, 1", c, p, r2)
	}
}

func TestPowerFitRejectsNonPositive(t *testing.T) {
	if _, _, _, err := PowerFit([]float64{1, 0}, []float64{1, 2}); err == nil {
		t.Error("zero x: nil error")
	}
	if _, _, _, err := PowerFit([]float64{1, 2}, []float64{1, -2}); err == nil {
		t.Error("negative y: nil error")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 9.999, 10, 11} {
		h.Add(x)
	}
	if h.Underflow != 1 {
		t.Errorf("underflow = %d, want 1", h.Underflow)
	}
	if h.Overflow != 2 {
		t.Errorf("overflow = %d, want 2", h.Overflow)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Errorf("bucket 0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Errorf("bucket 1 = %d, want 1", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.999
		t.Errorf("bucket 4 = %d, want 1", h.Counts[4])
	}
	if h.Total() != 7 {
		t.Errorf("total = %d, want 7", h.Total())
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero buckets: nil error")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("lo == hi: nil error")
	}
	if _, err := NewHistogram(6, 5, 3); err == nil {
		t.Error("lo > hi: nil error")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	got, err := MaxAbsDiff([]float64{1, 2, 3}, []float64{1.5, 1.8, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("MaxAbsDiff = %v, want 0.5", got)
	}
	if _, err := MaxAbsDiff([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch: nil error")
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(11, 10); !almostEqual(got, 0.1, 1e-12) {
		t.Errorf("RelativeError(11,10) = %v", got)
	}
	if got := RelativeError(0, 0); got != 0 {
		t.Errorf("RelativeError(0,0) = %v, want 0", got)
	}
}

func TestQuickSummaryMeanBounded(t *testing.T) {
	// Property: the streaming mean always lies within [min, max].
	f := func(raw []float64) bool {
		var s Summary
		any := false
		for _, x := range raw {
			// Near-max-float magnitudes overflow the Welford delta;
			// the property is about ordinary data.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				continue
			}
			s.Add(x)
			any = true
		}
		if !any {
			return true
		}
		return s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickVarianceNonNegative(t *testing.T) {
	f := func(raw []float64) bool {
		var s Summary
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				continue
			}
			s.Add(x)
		}
		return s.Variance() >= -1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickQuantileMonotone(t *testing.T) {
	src := rng.New(55)
	f := func(n uint8) bool {
		size := int(n%50) + 1
		xs := make([]float64, size)
		for i := range xs {
			xs[i] = src.Float64() * 1000
		}
		q25, err1 := Quantile(xs, 0.25)
		q75, err2 := Quantile(xs, 0.75)
		return err1 == nil && err2 == nil && q25 <= q75
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSummaryAdd(b *testing.B) {
	var s Summary
	for i := 0; i < b.N; i++ {
		s.Add(float64(i % 1000))
	}
}

func BenchmarkPowerFit(b *testing.B) {
	xs := make([]float64, 50)
	ys := make([]float64, 50)
	for i := range xs {
		xs[i] = float64(i + 1)
		ys[i] = 3 * math.Sqrt(xs[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := PowerFit(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSummaryDegenerateMomentsAreFiniteZero(t *testing.T) {
	// Regression: every moment estimator must return 0 — never NaN —
	// for n < 2, so downstream JSON encoding and report formatting
	// never see NaN.
	check := func(name string, s *Summary) {
		t.Helper()
		for label, got := range map[string]float64{
			"Variance": s.Variance(),
			"StdDev":   s.StdDev(),
			"StdErr":   s.StdErr(),
			"CI95":     s.ConfidenceInterval95(),
		} {
			if math.IsNaN(got) {
				t.Errorf("%s: %s is NaN", name, label)
			}
			if got != 0 {
				t.Errorf("%s: %s = %v, want 0", name, label, got)
			}
		}
	}
	var empty Summary
	check("empty", &empty)
	var single Summary
	single.Add(42)
	check("single", &single)
}

func TestSummaryVarianceClampsNegativeM2(t *testing.T) {
	// Catastrophic cancellation can push m2 fractionally below zero;
	// the clamp keeps StdDev out of NaN territory.
	s := Summary{n: 3, mean: 1e9, m2: -1e-7}
	if v := s.Variance(); v != 0 {
		t.Errorf("Variance = %v, want 0", v)
	}
	if sd := s.StdDev(); math.IsNaN(sd) || sd != 0 {
		t.Errorf("StdDev = %v, want 0", sd)
	}
}

func TestSummaryMergeMatchesAddAll(t *testing.T) {
	r := rng.New(99)
	xs := make([]float64, 501)
	for i := range xs {
		xs[i] = r.Float64()*100 - 50
	}
	for _, split := range []int{0, 1, 250, 500, 501} {
		var a, b, whole Summary
		a.AddAll(xs[:split])
		b.AddAll(xs[split:])
		whole.AddAll(xs)
		a.Merge(b)
		if a.N() != whole.N() {
			t.Fatalf("split %d: N = %d, want %d", split, a.N(), whole.N())
		}
		if !almostEqual(a.Mean(), whole.Mean(), 1e-9) {
			t.Errorf("split %d: Mean = %v, want %v", split, a.Mean(), whole.Mean())
		}
		if !almostEqual(a.Variance(), whole.Variance(), 1e-7) {
			t.Errorf("split %d: Variance = %v, want %v", split, a.Variance(), whole.Variance())
		}
		if a.Min() != whole.Min() || a.Max() != whole.Max() {
			t.Errorf("split %d: min/max = %v/%v, want %v/%v",
				split, a.Min(), a.Max(), whole.Min(), whole.Max())
		}
	}
}

func TestSummaryMergeEmptySides(t *testing.T) {
	var empty Summary
	var s Summary
	s.AddAll([]float64{1, 2, 3})
	want := s
	s.Merge(empty)
	if s != want {
		t.Errorf("merging empty changed the summary: %+v != %+v", s, want)
	}
	var dst Summary
	dst.Merge(want)
	if dst != want {
		t.Errorf("merge into empty: %+v != %+v", dst, want)
	}
}
