package ballsbins

import (
	"errors"
	"math"
	"testing"

	"pwf/internal/chains"
	"pwf/internal/rng"
	"pwf/internal/stats"
)

func newGame(t *testing.T, n int, seed uint64) *Game {
	t.Helper()
	g, err := New(n, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, rng.New(1)); !errors.Is(err, ErrBadN) {
		t.Errorf("n=0: %v", err)
	}
	if _, err := New(3, nil); !errors.Is(err, ErrNilRNG) {
		t.Errorf("nil rng: %v", err)
	}
}

func TestInitialState(t *testing.T) {
	g := newGame(t, 8, 1)
	if g.A() != 8 || g.B() != 0 {
		t.Fatalf("initial a=%d b=%d, want 8, 0", g.A(), g.B())
	}
	if err := g.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleBin(t *testing.T) {
	// One bin with one ball: two throws land in it, phase length 2,
	// then reset to one ball again.
	g := newGame(t, 1, 2)
	for i := 0; i < 5; i++ {
		res := g.RunPhase()
		if res.Length != 2 {
			t.Fatalf("phase %d length %d, want 2", i, res.Length)
		}
		if res.AStart != 1 || res.BStart != 0 {
			t.Fatalf("phase %d start (%d,%d), want (1,0)", i, res.AStart, res.BStart)
		}
		if err := g.CheckInvariant(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPhaseBoundaryInvariant(t *testing.T) {
	g := newGame(t, 16, 3)
	for i := 0; i < 2000; i++ {
		res := g.RunPhase()
		if err := g.CheckInvariant(); err != nil {
			t.Fatalf("phase %d: %v", i, err)
		}
		if res.AStart+res.BStart != 16 {
			t.Fatalf("phase %d: a+b = %d", i, res.AStart+res.BStart)
		}
		if res.Length == 0 {
			t.Fatalf("phase %d: zero length", i)
		}
		if res.Winner < 0 || res.Winner >= 16 {
			t.Fatalf("phase %d: winner %d out of range", i, res.Winner)
		}
	}
	if g.Phases() != 2000 {
		t.Fatalf("Phases = %d, want 2000", g.Phases())
	}
}

func TestThrowsAccumulate(t *testing.T) {
	g := newGame(t, 4, 4)
	results := g.RunPhases(100)
	var total uint64
	for _, r := range results {
		total += r.Length
	}
	if g.Throws() != total {
		t.Fatalf("Throws = %d, sum of lengths = %d", g.Throws(), total)
	}
}

func TestMeanPhaseLengthMatchesExactChain(t *testing.T) {
	// The game evolves exactly as the system Markov chain, so the
	// long-run mean phase length must match the exact system latency
	// W from the chain analysis.
	for _, n := range []int{2, 4, 8, 16, 32} {
		g := newGame(t, n, uint64(100+n))
		// Warm up into stationarity, then measure.
		g.RunPhases(2000)
		var mean stats.Summary
		for _, r := range g.RunPhases(30000) {
			mean.Add(float64(r.Length))
		}
		sys, _, err := chains.SCUSystem(n)
		if err != nil {
			t.Fatal(err)
		}
		w, err := sys.SystemLatency()
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(mean.Mean()-w) / w; rel > 0.03 {
			t.Fatalf("n=%d: mean phase %v vs exact W %v (rel %v)", n, mean.Mean(), w, rel)
		}
	}
}

func TestPhaseLengthScalesAsSqrtN(t *testing.T) {
	var ns, ls []float64
	for _, n := range []int{8, 16, 32, 64, 128} {
		g := newGame(t, n, uint64(7+n))
		g.RunPhases(500)
		var mean stats.Summary
		for _, r := range g.RunPhases(5000) {
			mean.Add(float64(r.Length))
		}
		ns = append(ns, float64(n))
		ls = append(ls, mean.Mean())
	}
	_, p, r2, err := stats.PowerFit(ns, ls)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.5) > 0.1 {
		t.Fatalf("phase length exponent %v, want ~0.5 (lengths %v)", p, ls)
	}
	if r2 < 0.98 {
		t.Fatalf("power fit R² = %v", r2)
	}
}

func TestLemma8BoundHolds(t *testing.T) {
	// The empirical mean phase length conditioned on the starting
	// (a, b) must respect the Lemma 8 bound with α = 4.
	const n = 64
	g := newGame(t, n, 11)
	g.RunPhases(500)
	type agg struct {
		sum   float64
		count int
		a, b  int
	}
	byStart := make(map[[2]int]*agg)
	for _, r := range g.RunPhases(20000) {
		key := [2]int{r.AStart, r.BStart}
		e := byStart[key]
		if e == nil {
			e = &agg{a: r.AStart, b: r.BStart}
			byStart[key] = e
		}
		e.sum += float64(r.Length)
		e.count++
	}
	for key, e := range byStart {
		if e.count < 50 {
			continue // too noisy to compare
		}
		bound, err := PhaseLengthBound(e.a, e.b, n, 4)
		if err != nil {
			t.Fatal(err)
		}
		mean := e.sum / float64(e.count)
		if mean > bound {
			t.Fatalf("start %v: mean phase %v exceeds Lemma 8 bound %v", key, mean, bound)
		}
	}
}

func TestLemma9RangeDynamics(t *testing.T) {
	// From ranges 1-2 the game should essentially never enter range 3
	// (probability ~n^-α), and range-3 visits should be rare overall.
	const n = 64
	g := newGame(t, n, 13)
	g.RunPhases(500)
	results := g.RunPhases(20000)
	range3 := 0
	transitions12to3 := 0
	prevRange := 0
	for i, r := range results {
		rg, err := RangeOf(r.AStart, n, DefaultRangeC)
		if err != nil {
			t.Fatal(err)
		}
		if rg == 3 {
			range3++
			if i > 0 && prevRange != 3 {
				transitions12to3++
			}
		}
		prevRange = rg
	}
	if frac := float64(range3) / float64(len(results)); frac > 0.01 {
		t.Fatalf("range-3 fraction %v, want < 1%%", frac)
	}
	if transitions12to3 > 5 {
		t.Fatalf("saw %d transitions from ranges 1-2 into range 3", transitions12to3)
	}
}

func TestRangeOf(t *testing.T) {
	tests := []struct {
		a, n int
		want int
	}{
		{100, 100, 1},
		{34, 100, 1},
		{33, 100, 2},
		{10, 100, 2},
		{9, 100, 3},
		{0, 100, 3},
	}
	for _, tt := range tests {
		got, err := RangeOf(tt.a, tt.n, 10)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("RangeOf(%d, %d) = %d, want %d", tt.a, tt.n, got, tt.want)
		}
	}
	if _, err := RangeOf(-1, 10, 10); err == nil {
		t.Error("a=-1: nil error")
	}
	if _, err := RangeOf(5, 10, 2); err == nil {
		t.Error("c=2: nil error")
	}
}

func TestPhaseLengthBound(t *testing.T) {
	// a = 64, b = 0, n = 64, α = 4: bound = 2·4·64/8 = 64.
	got, err := PhaseLengthBound(64, 0, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-64) > 1e-9 {
		t.Fatalf("bound = %v, want 64", got)
	}
	// a = 0, b = 64: bound = 3·4·64/4 = 192.
	got, err = PhaseLengthBound(0, 64, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-192) > 1e-9 {
		t.Fatalf("bound = %v, want 192", got)
	}
	if _, err := PhaseLengthBound(50, 50, 64, 4); err == nil {
		t.Error("a+b > n: nil error")
	}
	if _, err := PhaseLengthBound(1, 1, 64, 3); err == nil {
		t.Error("alpha < 4: nil error")
	}
}

func TestBirthdayThreshold(t *testing.T) {
	if got := BirthdayThreshold(64); got != 8 {
		t.Fatalf("BirthdayThreshold(64) = %v, want 8", got)
	}
}

func TestWinnersRoughlyUniform(t *testing.T) {
	// In stationarity no bin should dominate the wins.
	const n = 10
	g := newGame(t, n, 17)
	g.RunPhases(500)
	counts := make([]int, n)
	for _, r := range g.RunPhases(30000) {
		counts[r.Winner]++
	}
	stat, dof, err := stats.ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if crit := stats.ChiSquareCritical999(dof); stat > crit {
		t.Fatalf("winner distribution skewed: chi2 %v > %v (%v)", stat, crit, counts)
	}
}

func BenchmarkRunPhase(b *testing.B) {
	g, err := New(64, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.RunPhase()
	}
}
