// Package ballsbins implements the iterated balls-into-bins game of
// Section 6.1.3, which the paper uses to bound the system latency of
// the scan-validate pattern.
//
// Each process is a bin. At the start of the game every bin holds one
// ball. Each step throws a ball into a uniformly random bin; the
// current *phase* ends the first time some bin reaches three balls
// (that process's winning CAS). At the reset, the three-ball bin goes
// back to one ball (the winner is about to read again) and every
// two-ball bin is emptied (processes that were about to CAS with the
// now-stale value need three more steps).
//
// Ball counts map to the extended local states of Section 6.1.1:
// 0 balls = OldCAS (three steps from completing), 1 ball = Read (two
// steps), 2 balls = CCAS (one step). The game therefore evolves
// exactly like the system Markov chain, and the expected phase length
// equals the system latency W — tests cross-check this against the
// exact chain.
//
// The phase-length bounds of Lemma 8 and the range dynamics of
// Lemma 9 are exposed as PhaseLengthBound and RangeOf.
package ballsbins

import (
	"errors"
	"fmt"
	"math"

	"pwf/internal/rng"
)

// Game construction errors.
var (
	ErrBadN   = errors.New("ballsbins: need at least one bin")
	ErrNilRNG = errors.New("ballsbins: nil rng source")
)

// Game is the iterated balls-into-bins process.
type Game struct {
	n     int
	src   *rng.Source
	balls []int

	phases uint64
	throws uint64
}

// New builds a game with n bins, each holding one ball.
func New(n int, src *rng.Source) (*Game, error) {
	if n < 1 {
		return nil, ErrBadN
	}
	if src == nil {
		return nil, ErrNilRNG
	}
	balls := make([]int, n)
	for i := range balls {
		balls[i] = 1
	}
	return &Game{n: n, src: src, balls: balls}, nil
}

// N returns the number of bins.
func (g *Game) N() int { return g.n }

// A returns the number of bins holding exactly one ball (processes
// about to read): the a_i of Section 6.1.3 when queried at a phase
// boundary.
func (g *Game) A() int {
	a := 0
	for _, b := range g.balls {
		if b == 1 {
			a++
		}
	}
	return a
}

// B returns the number of empty bins (processes about to CAS with a
// stale value).
func (g *Game) B() int {
	b := 0
	for _, v := range g.balls {
		if v == 0 {
			b++
		}
	}
	return b
}

// Phases returns the number of completed phases.
func (g *Game) Phases() uint64 { return g.phases }

// Throws returns the total number of balls thrown.
func (g *Game) Throws() uint64 { return g.throws }

// PhaseResult describes one completed phase.
type PhaseResult struct {
	// Length is the number of throws in the phase.
	Length uint64
	// AStart and BStart are the bin counts at the start of the phase
	// (AStart + BStart = n).
	AStart, BStart int
	// Winner is the bin that reached three balls.
	Winner int
}

// RunPhase plays throws until some bin reaches three balls, applies
// the reset, and reports the phase.
func (g *Game) RunPhase() PhaseResult {
	res := PhaseResult{AStart: g.A(), BStart: g.B()}
	for {
		bin := g.src.Intn(g.n)
		g.throws++
		res.Length++
		g.balls[bin]++
		if g.balls[bin] < 3 {
			continue
		}
		// Reset: winner back to one ball; two-ball bins emptied.
		g.balls[bin] = 1
		for i := range g.balls {
			if g.balls[i] == 2 {
				g.balls[i] = 0
			}
		}
		g.phases++
		res.Winner = bin
		return res
	}
}

// RunPhases plays k consecutive phases and returns their results.
func (g *Game) RunPhases(k int) []PhaseResult {
	out := make([]PhaseResult, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, g.RunPhase())
	}
	return out
}

// CheckInvariant verifies that, at a phase boundary, every bin holds
// zero or one ball (i.e. A + B = n). It is used by tests and the
// failure-injection suite.
func (g *Game) CheckInvariant() error {
	for i, b := range g.balls {
		if b != 0 && b != 1 {
			return fmt.Errorf("ballsbins: bin %d holds %d balls at phase boundary", i, b)
		}
	}
	if g.A()+g.B() != g.n {
		return fmt.Errorf("ballsbins: a+b = %d, want %d", g.A()+g.B(), g.n)
	}
	return nil
}

// Range classification of Lemma 9: a phase with a starting one-ball
// bins is in range 1 when a >= n/3, range 2 when n/c <= a < n/3, and
// range 3 when a < n/c, for the constant c >= 3.
const DefaultRangeC = 10

// RangeOf returns 1, 2 or 3 for the phase-start value a (see Lemma 9).
func RangeOf(a, n int, c float64) (int, error) {
	if n < 1 || a < 0 || a > n {
		return 0, fmt.Errorf("ballsbins: invalid a=%d n=%d", a, n)
	}
	if c < 3 {
		return 0, errors.New("ballsbins: range constant c must be >= 3")
	}
	fa := float64(a)
	fn := float64(n)
	switch {
	case fa >= fn/3:
		return 1, nil
	case fa >= fn/c:
		return 2, nil
	default:
		return 3, nil
	}
}

// PhaseLengthBound returns the Lemma 8 expected phase-length bound
// min(2αn/√a, 3αn/b^(1/3)), treating an operand with a = 0 or b = 0
// as +Inf (its event cannot happen).
func PhaseLengthBound(a, b, n int, alpha float64) (float64, error) {
	if n < 1 || a < 0 || b < 0 || a+b > n {
		return 0, fmt.Errorf("ballsbins: invalid a=%d b=%d n=%d", a, b, n)
	}
	if alpha < 4 {
		return 0, errors.New("ballsbins: Lemma 8 requires alpha >= 4")
	}
	fn := float64(n)
	first := math.Inf(1)
	if a > 0 {
		first = 2 * alpha * fn / math.Sqrt(float64(a))
	}
	second := math.Inf(1)
	if b > 0 {
		second = 3 * alpha * fn / math.Cbrt(float64(b))
	}
	return math.Min(first, second), nil
}

// BirthdayThreshold returns √a, the birthday-paradox scale at which a
// set of a one-ball bins is expected to produce a two-ball collision
// (Claim 1).
func BirthdayThreshold(a int) float64 { return math.Sqrt(float64(a)) }
