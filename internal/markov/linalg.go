package markov

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("markov: singular linear system")

// solveDense solves A x = b by Gaussian elimination with partial
// pivoting. A and b are overwritten; the solution is returned in a new
// slice. A must be square and len(b) == len(A).
func solveDense(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 {
		return nil, errors.New("markov: empty system")
	}
	if len(b) != n {
		return nil, fmt.Errorf("markov: dimension mismatch: %d rows, %d rhs", n, len(b))
	}
	for _, row := range a {
		if len(row) != n {
			return nil, errors.New("markov: non-square matrix")
		}
	}

	// Forward elimination with partial pivoting.
	for col := 0; col < n; col++ {
		pivot := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best = v
				pivot = r
			}
		}
		if best < 1e-14 {
			return nil, ErrSingular
		}
		if pivot != col {
			a[col], a[pivot] = a[pivot], a[col]
			b[col], b[pivot] = b[pivot], b[col]
		}
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			a[r][col] = 0
			for c := col + 1; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}

	// Back substitution.
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}

// cloneMatrix deep-copies a dense matrix.
func cloneMatrix(a [][]float64) [][]float64 {
	out := make([][]float64, len(a))
	for i, row := range a {
		out[i] = make([]float64, len(row))
		copy(out[i], row)
	}
	return out
}
