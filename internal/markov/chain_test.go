package markov

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"pwf/internal/rng"
)

func mustChain(t *testing.T, p [][]float64) *Chain {
	t.Helper()
	c, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// twoState returns the classic two-state chain with flip probabilities
// a (0→1) and b (1→0); its stationary distribution is
// [b/(a+b), a/(a+b)].
func twoState(t *testing.T, a, b float64) *Chain {
	t.Helper()
	return mustChain(t, [][]float64{
		{1 - a, a},
		{b, 1 - b},
	})
}

// randomErgodic builds a random dense ergodic chain with n states.
func randomErgodic(n int, src *rng.Source) [][]float64 {
	p := make([][]float64, n)
	for i := range p {
		p[i] = make([]float64, n)
		var sum float64
		for j := range p[i] {
			v := src.Float64() + 0.01 // strictly positive → ergodic
			p[i][j] = v
			sum += v
		}
		for j := range p[i] {
			p[i][j] /= sum
		}
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty: nil error")
	}
	if _, err := New([][]float64{{0.5}}); !errors.Is(err, ErrNotStochastic) {
		t.Errorf("bad row sum: %v", err)
	}
	if _, err := New([][]float64{{1, 0}}); err == nil {
		t.Error("non-square: nil error")
	}
	if _, err := New([][]float64{{1.5, -0.5}, {0, 1}}); !errors.Is(err, ErrNotStochastic) {
		t.Errorf("negative entry: %v", err)
	}
	if _, err := New([][]float64{{math.NaN(), 1}, {0, 1}}); !errors.Is(err, ErrNotStochastic) {
		t.Errorf("NaN entry: %v", err)
	}
}

func TestNewCopiesMatrix(t *testing.T) {
	p := [][]float64{{0.5, 0.5}, {0.5, 0.5}}
	c := mustChain(t, p)
	p[0][0] = 99
	if c.P(0, 0) != 0.5 {
		t.Fatal("New did not copy the matrix")
	}
	m := c.Matrix()
	m[0][0] = 99
	if c.P(0, 0) != 0.5 {
		t.Fatal("Matrix did not return a copy")
	}
}

func TestIrreducible(t *testing.T) {
	if !twoState(t, 0.3, 0.7).Irreducible() {
		t.Error("two-state flip chain should be irreducible")
	}
	// Absorbing state 1: not irreducible.
	c := mustChain(t, [][]float64{
		{0.5, 0.5},
		{0, 1},
	})
	if c.Irreducible() {
		t.Error("chain with absorbing state should not be irreducible")
	}
	// Single state.
	if !mustChain(t, [][]float64{{1}}).Irreducible() {
		t.Error("single-state chain should be irreducible")
	}
}

func TestPeriod(t *testing.T) {
	// Deterministic 2-cycle has period 2.
	c := mustChain(t, [][]float64{
		{0, 1},
		{1, 0},
	})
	period, err := c.Period()
	if err != nil {
		t.Fatal(err)
	}
	if period != 2 {
		t.Fatalf("period = %d, want 2", period)
	}
	if c.Ergodic() {
		t.Error("2-cycle should not be ergodic")
	}
	// A self-loop makes it aperiodic.
	c2 := twoState(t, 0.5, 1)
	period, err = c2.Period()
	if err != nil {
		t.Fatal(err)
	}
	if period != 1 {
		t.Fatalf("period = %d, want 1", period)
	}
	if !c2.Ergodic() {
		t.Error("chain with self-loop should be ergodic")
	}
	// Deterministic 3-cycle has period 3.
	c3 := mustChain(t, [][]float64{
		{0, 1, 0},
		{0, 0, 1},
		{1, 0, 0},
	})
	period, err = c3.Period()
	if err != nil {
		t.Fatal(err)
	}
	if period != 3 {
		t.Fatalf("period = %d, want 3", period)
	}
}

func TestPeriodRequiresIrreducible(t *testing.T) {
	c := mustChain(t, [][]float64{
		{0.5, 0.5},
		{0, 1},
	})
	if _, err := c.Period(); !errors.Is(err, ErrNotIrreducible) {
		t.Errorf("period of reducible chain: %v", err)
	}
}

func TestStationaryTwoState(t *testing.T) {
	const (
		a = 0.2
		b = 0.3
	)
	c := twoState(t, a, b)
	want := []float64{b / (a + b), a / (a + b)}

	solve, err := c.StationarySolve()
	if err != nil {
		t.Fatal(err)
	}
	power, err := c.StationaryPower(1e-12, 100000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(solve[i]-want[i]) > 1e-10 {
			t.Errorf("solve π[%d] = %v, want %v", i, solve[i], want[i])
		}
		if math.Abs(power[i]-want[i]) > 1e-9 {
			t.Errorf("power π[%d] = %v, want %v", i, power[i], want[i])
		}
	}
}

func TestStationarySolversAgreeOnRandomChains(t *testing.T) {
	src := rng.New(42)
	for trial := 0; trial < 20; trial++ {
		n := 2 + src.Intn(15)
		c := mustChain(t, randomErgodic(n, src))
		solve, err := c.StationarySolve()
		if err != nil {
			t.Fatal(err)
		}
		power, err := c.StationaryPower(1e-12, 1000000)
		if err != nil {
			t.Fatal(err)
		}
		for i := range solve {
			if math.Abs(solve[i]-power[i]) > 1e-8 {
				t.Fatalf("trial %d, state %d: solve %v vs power %v", trial, i, solve[i], power[i])
			}
		}
		res, err := c.Residual(solve)
		if err != nil {
			t.Fatal(err)
		}
		if res > 1e-10 {
			t.Fatalf("trial %d: residual %v", trial, res)
		}
	}
}

func TestStationarySolveRequiresIrreducible(t *testing.T) {
	c := mustChain(t, [][]float64{
		{0.5, 0.5},
		{0, 1},
	})
	if _, err := c.StationarySolve(); !errors.Is(err, ErrNotIrreducible) {
		t.Errorf("reducible solve: %v", err)
	}
}

func TestStationaryPowerArgs(t *testing.T) {
	c := twoState(t, 0.5, 0.5)
	if _, err := c.StationaryPower(0, 10); err == nil {
		t.Error("tol=0: nil error")
	}
	if _, err := c.StationaryPower(1e-12, 0); err == nil {
		t.Error("maxIter=0: nil error")
	}
}

func TestStationaryPowerPeriodicFails(t *testing.T) {
	// Power iteration from uniform actually fixes the 2-cycle's
	// stationary vector immediately; use a 3-state periodic chain with
	// a non-uniform stationary-defying start? The uniform start is
	// stationary for any doubly-stochastic chain, so use a periodic
	// chain that is not doubly stochastic... every deterministic
	// permutation chain is doubly stochastic. Instead verify that the
	// solver still yields a residual-0 vector and that Ergodic() is
	// the authoritative check.
	c := mustChain(t, [][]float64{
		{0, 1},
		{1, 0},
	})
	if c.Ergodic() {
		t.Fatal("2-cycle must not be ergodic")
	}
	pi, err := c.StationarySolve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[0]-0.5) > 1e-10 || math.Abs(pi[1]-0.5) > 1e-10 {
		t.Fatalf("2-cycle stationary = %v, want [0.5 0.5]", pi)
	}
}

func TestStepDistribution(t *testing.T) {
	c := twoState(t, 0.5, 0.25)
	next, err := c.StepDistribution([]float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(next[0]-0.5) > 1e-12 || math.Abs(next[1]-0.5) > 1e-12 {
		t.Fatalf("step from [1 0] = %v", next)
	}
	if _, err := c.StepDistribution([]float64{1}); err == nil {
		t.Error("dimension mismatch: nil error")
	}
}

func TestHittingAndReturnTimes(t *testing.T) {
	// For the two-state chain, E[T_01] = 1/a and E[T_00] = 1/π_0.
	const (
		a = 0.25
		b = 0.5
	)
	c := twoState(t, a, b)
	h, err := c.HittingTimes(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h[0]-1/a) > 1e-9 {
		t.Errorf("E[T_01] = %v, want %v", h[0], 1/a)
	}
	if h[1] != 0 {
		t.Errorf("E[T_11] hitting self = %v, want 0", h[1])
	}

	pi, err := c.StationarySolve()
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		ret, err := c.ReturnTime(j)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ret-1/pi[j]) > 1e-9 {
			t.Errorf("ReturnTime(%d) = %v, want 1/π = %v (Theorem 1)", j, ret, 1/pi[j])
		}
	}
}

func TestReturnTimeMatchesTheorem1OnRandomChains(t *testing.T) {
	src := rng.New(7)
	for trial := 0; trial < 10; trial++ {
		n := 2 + src.Intn(10)
		c := mustChain(t, randomErgodic(n, src))
		pi, err := c.StationarySolve()
		if err != nil {
			t.Fatal(err)
		}
		j := src.Intn(n)
		ret, err := c.ReturnTime(j)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ret*pi[j]-1) > 1e-7 {
			t.Fatalf("trial %d: ReturnTime(%d)·π = %v, want 1", trial, j, ret*pi[j])
		}
	}
}

func TestHittingTimesValidation(t *testing.T) {
	c := twoState(t, 0.5, 0.5)
	if _, err := c.HittingTimes(-1); !errors.Is(err, ErrBadState) {
		t.Errorf("target -1: %v", err)
	}
	if _, err := c.HittingTimes(5); !errors.Is(err, ErrBadState) {
		t.Errorf("target 5: %v", err)
	}
}

func TestErgodicFlow(t *testing.T) {
	c := twoState(t, 0.2, 0.3)
	pi, err := c.StationarySolve()
	if err != nil {
		t.Fatal(err)
	}
	q, err := c.ErgodicFlow(pi)
	if err != nil {
		t.Fatal(err)
	}
	// Flow balance: Σ_i Q_ij == π_j and total flow 1.
	var total float64
	for j := 0; j < 2; j++ {
		var in float64
		for i := 0; i < 2; i++ {
			in += q[i][j]
			total += q[i][j]
		}
		if math.Abs(in-pi[j]) > 1e-12 {
			t.Errorf("inflow to %d = %v, want π = %v", j, in, pi[j])
		}
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("total flow = %v, want 1", total)
	}
	if _, err := c.ErgodicFlow([]float64{1}); err == nil {
		t.Error("dimension mismatch: nil error")
	}
}

func TestSolveDense(t *testing.T) {
	// 2x + y = 5, x - y = 1 → x = 2, y = 1.
	x, err := solveDense([][]float64{{2, 1}, {1, -1}}, []float64{5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Fatalf("solution = %v, want [2 1]", x)
	}
}

func TestSolveDenseSingular(t *testing.T) {
	if _, err := solveDense([][]float64{{1, 1}, {2, 2}}, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Errorf("singular system: %v", err)
	}
}

func TestSolveDenseValidation(t *testing.T) {
	if _, err := solveDense(nil, nil); err == nil {
		t.Error("empty: nil error")
	}
	if _, err := solveDense([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("rhs mismatch: nil error")
	}
	if _, err := solveDense([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("non-square: nil error")
	}
}

func TestQuickStationaryProperties(t *testing.T) {
	src := rng.New(99)
	f := func(nRaw uint8) bool {
		n := int(nRaw%12) + 2
		c, err := New(randomErgodic(n, src))
		if err != nil {
			return false
		}
		pi, err := c.StationarySolve()
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range pi {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		res, err := c.Residual(pi)
		return err == nil && res < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStationarySolve(b *testing.B) {
	src := rng.New(1)
	c, err := New(randomErgodic(50, src))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.StationarySolve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStationaryPower(b *testing.B) {
	src := rng.New(1)
	c, err := New(randomErgodic(50, src))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.StationaryPower(1e-10, 100000); err != nil {
			b.Fatal(err)
		}
	}
}
