package markov

import (
	"errors"
	"fmt"
)

// Lifting relates a "big" chain M' to a "small" chain M through a
// surjection f from big states to small states: M' is a lifting of M
// when the ergodic flows satisfy, for all small states i, j,
//
//	Q_ij = Σ_{x ∈ f⁻¹(i), y ∈ f⁻¹(j)} Q'_xy
//
// (Section 3, following Chen–Lovász–Pak and Hayes–Sinclair). An
// immediate consequence (Lemma 1) is π(v) = Σ_{x ∈ f⁻¹(v)} π'(x).
//
// LiftingReport carries the numerical evidence produced by
// VerifyLifting.
type LiftingReport struct {
	// MaxFlowError is the largest absolute violation of the flow
	// equations across all (i, j).
	MaxFlowError float64
	// MaxMarginalError is the largest absolute violation of the
	// Lemma 1 marginal equations across small states.
	MaxMarginalError float64
	// BigStationary and SmallStationary are the computed stationary
	// distributions.
	BigStationary   []float64
	SmallStationary []float64
}

// Lifting verification errors.
var (
	ErrBadMapping    = errors.New("markov: lifting map is invalid")
	ErrNotSurjective = errors.New("markov: lifting map is not surjective")
)

// VerifyLifting checks that big is a lifting of small under the state
// map f (f[x] is the small state of big state x). Both chains must be
// irreducible; stationary distributions are computed by direct solve.
// The report carries the maximal violations; the caller decides the
// tolerance.
func VerifyLifting(big, small *Chain, f []int) (*LiftingReport, error) {
	if big == nil || small == nil {
		return nil, errors.New("markov: nil chain")
	}
	if len(f) != big.N() {
		return nil, fmt.Errorf("%w: %d entries for %d big states", ErrBadMapping, len(f), big.N())
	}
	covered := make([]bool, small.N())
	for x, v := range f {
		if v < 0 || v >= small.N() {
			return nil, fmt.Errorf("%w: f[%d] = %d of %d", ErrBadMapping, x, v, small.N())
		}
		covered[v] = true
	}
	for v, ok := range covered {
		if !ok {
			return nil, fmt.Errorf("%w: small state %d has empty preimage", ErrNotSurjective, v)
		}
	}

	piBig, err := big.StationarySolve()
	if err != nil {
		return nil, fmt.Errorf("big chain: %w", err)
	}
	piSmall, err := small.StationarySolve()
	if err != nil {
		return nil, fmt.Errorf("small chain: %w", err)
	}

	// Aggregate the big chain's ergodic flow through f.
	m := small.N()
	agg := make([][]float64, m)
	for i := range agg {
		agg[i] = make([]float64, m)
	}
	for x := 0; x < big.N(); x++ {
		if piBig[x] == 0 {
			continue
		}
		fx := f[x]
		for y := 0; y < big.N(); y++ {
			if pxy := big.P(x, y); pxy > 0 {
				agg[fx][f[y]] += piBig[x] * pxy
			}
		}
	}

	report := &LiftingReport{
		BigStationary:   piBig,
		SmallStationary: piSmall,
	}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			want := piSmall[i] * small.P(i, j)
			if d := abs(agg[i][j] - want); d > report.MaxFlowError {
				report.MaxFlowError = d
			}
		}
	}

	// Lemma 1 marginals.
	marginal := make([]float64, m)
	for x, v := range f {
		marginal[v] += piBig[x]
	}
	for v := 0; v < m; v++ {
		if d := abs(marginal[v] - piSmall[v]); d > report.MaxMarginalError {
			report.MaxMarginalError = d
		}
	}
	return report, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
