package markov

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	c := twoState(t, 0.25, 0.5)
	var buf bytes.Buffer
	if err := c.WriteDOT(&buf, "fig1", []string{"(1,0)", "(0,1)"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`digraph "fig1"`,
		`label="(1,0)"`,
		`0 -> 1 [label="0.25"]`,
		`1 -> 0 [label="0.5"]`,
		`0 -> 0 [label="0.75"]`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteDOTDefaults(t *testing.T) {
	c := twoState(t, 0.5, 0.5)
	var buf bytes.Buffer
	if err := c.WriteDOT(&buf, "", nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `digraph "chain"`) || !strings.Contains(out, `label="s0"`) {
		t.Errorf("defaults not applied:\n%s", out)
	}
}

func TestWriteDOTValidation(t *testing.T) {
	c := twoState(t, 0.5, 0.5)
	if err := c.WriteDOT(nil, "x", nil); err == nil {
		t.Error("nil writer: nil error")
	}
	var buf bytes.Buffer
	if err := c.WriteDOT(&buf, "x", []string{"only-one"}); err == nil {
		t.Error("label count mismatch: nil error")
	}
}

func TestWriteDOTOmitsZeroEdges(t *testing.T) {
	c := mustChain(t, [][]float64{
		{0, 1},
		{1, 0},
	})
	var buf bytes.Buffer
	if err := c.WriteDOT(&buf, "cycle", nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "0 -> 0") || strings.Contains(out, "1 -> 1") {
		t.Errorf("zero-probability self-loops rendered:\n%s", out)
	}
}

func TestTrimFloat(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{0.5, "0.5"},
		{0.25, "0.25"},
		{1, "1"},
		{1.0 / 3, "0.3333"},
	}
	for _, tt := range tests {
		if got := trimFloat(tt.in); got != tt.want {
			t.Errorf("trimFloat(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}
