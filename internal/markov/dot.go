package markov

import (
	"errors"
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the chain as a Graphviz digraph — the tangible
// form of the paper's Figure 1 (the individual and system chains for
// two processes). labels may be nil (state indices are used) or must
// have one entry per state. Edge labels carry transition
// probabilities; zero-probability edges are omitted.
func (c *Chain) WriteDOT(w io.Writer, name string, labels []string) error {
	if w == nil {
		return errors.New("markov: nil writer")
	}
	if labels != nil && len(labels) != c.N() {
		return fmt.Errorf("markov: %d labels for %d states", len(labels), c.N())
	}
	label := func(i int) string {
		if labels == nil {
			return fmt.Sprintf("s%d", i)
		}
		return labels[i]
	}
	if name == "" {
		name = "chain"
	}
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=LR;\n  node [shape=circle];\n", name); err != nil {
		return err
	}
	for i := 0; i < c.N(); i++ {
		if _, err := fmt.Fprintf(w, "  %d [label=%q];\n", i, label(i)); err != nil {
			return err
		}
	}
	for i := 0; i < c.N(); i++ {
		for j := 0; j < c.N(); j++ {
			p := c.P(i, j)
			if p == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "  %d -> %d [label=%q];\n", i, j, trimFloat(p)); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// trimFloat renders a probability compactly.
func trimFloat(p float64) string {
	s := fmt.Sprintf("%.4f", p)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}
