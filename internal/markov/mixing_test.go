package markov

import (
	"errors"
	"math"
	"testing"
)

func TestTotalVariation(t *testing.T) {
	d, err := TotalVariation([]float64{1, 0}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Fatalf("TV of disjoint point masses = %v, want 1", d)
	}
	d, err = TotalVariation([]float64{0.5, 0.5}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("TV of identical = %v, want 0", d)
	}
	if _, err := TotalVariation([]float64{1}, []float64{0.5, 0.5}); err == nil {
		t.Error("length mismatch: nil error")
	}
}

func TestDistanceToStationaryDecays(t *testing.T) {
	c := twoState(t, 0.3, 0.4)
	prev := math.Inf(1)
	for _, steps := range []int{0, 1, 2, 5, 10, 20} {
		d, err := c.DistanceToStationary(steps)
		if err != nil {
			t.Fatal(err)
		}
		if d > prev+1e-12 {
			t.Fatalf("distance increased: %v after %d steps (prev %v)", d, steps, prev)
		}
		prev = d
	}
	if prev > 1e-3 {
		t.Fatalf("distance after 20 steps = %v, expected near 0", prev)
	}
}

func TestDistanceToStationaryTwoStateClosedForm(t *testing.T) {
	// For the two-state chain, TV from a point mass decays exactly as
	// |1-a-b|^t times the initial distance.
	const (
		a = 0.2
		b = 0.5
	)
	c := twoState(t, a, b)
	lambda := math.Abs(1 - a - b)
	d0, err := c.DistanceToStationary(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, steps := range []int{1, 3, 7} {
		d, err := c.DistanceToStationary(steps)
		if err != nil {
			t.Fatal(err)
		}
		want := d0 * math.Pow(lambda, float64(steps))
		if math.Abs(d-want) > 1e-9 {
			t.Fatalf("d(%d) = %v, want %v", steps, d, want)
		}
	}
}

func TestMixingTime(t *testing.T) {
	c := twoState(t, 0.5, 0.5)
	// This chain mixes in one step (P^1 rows are already stationary).
	tm, err := c.MixingTime(0.01, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tm != 1 {
		t.Fatalf("mixing time = %d, want 1", tm)
	}
}

func TestMixingTimeMonotoneInEps(t *testing.T) {
	c := twoState(t, 0.1, 0.15)
	loose, err := c.MixingTime(0.25, 1000)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := c.MixingTime(0.001, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if tight < loose {
		t.Fatalf("tighter eps mixed faster: %d < %d", tight, loose)
	}
}

func TestMixingTimePeriodicFails(t *testing.T) {
	// The deterministic 2-cycle never mixes from a point mass.
	c := mustChain(t, [][]float64{
		{0, 1},
		{1, 0},
	})
	if _, err := c.MixingTime(0.1, 100); !errors.Is(err, ErrNotMixing) {
		t.Fatalf("periodic chain: %v", err)
	}
}

func TestMixingTimeArgs(t *testing.T) {
	c := twoState(t, 0.5, 0.5)
	if _, err := c.MixingTime(0, 10); err == nil {
		t.Error("eps=0: nil error")
	}
	if _, err := c.MixingTime(1.5, 10); err == nil {
		t.Error("eps>1: nil error")
	}
	if _, err := c.MixingTime(0.1, -1); err == nil {
		t.Error("negative horizon: nil error")
	}
	if _, err := c.DistanceToStationary(-1); err == nil {
		t.Error("negative time: nil error")
	}
}
