package markov

import (
	"errors"
	"fmt"
	"math"
)

// Mixing-time machinery for Theorem 2: an ergodic chain's
// distribution converges to the stationary distribution from any
// start. MixingTime quantifies how fast, in total-variation distance.

// ErrNotMixing is returned when the chain fails to mix within the
// given horizon (e.g. a periodic chain, whose point-mass distributions
// never converge).
var ErrNotMixing = errors.New("markov: chain did not mix within the horizon")

// TotalVariation returns the total-variation distance
// ½·Σ|p_i − q_i| between two distributions of equal length.
func TotalVariation(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("markov: distribution lengths %d and %d differ", len(p), len(q))
	}
	var sum float64
	for i := range p {
		sum += math.Abs(p[i] - q[i])
	}
	return sum / 2, nil
}

// DistanceToStationary returns d(t) = max_i TV(P^t(i,·), π): the
// worst-case total-variation distance to stationarity after t steps
// over all point-mass starts.
func (c *Chain) DistanceToStationary(t int) (float64, error) {
	if t < 0 {
		return 0, errors.New("markov: negative time")
	}
	pi, err := c.StationarySolve()
	if err != nil {
		return 0, err
	}
	n := c.N()
	// Evolve every point-mass start t steps.
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, n)
		rows[i][i] = 1
	}
	for step := 0; step < t; step++ {
		for i := range rows {
			next, err := c.StepDistribution(rows[i])
			if err != nil {
				return 0, err
			}
			rows[i] = next
		}
	}
	var worst float64
	for i := range rows {
		d, err := TotalVariation(rows[i], pi)
		if err != nil {
			return 0, err
		}
		if d > worst {
			worst = d
		}
	}
	return worst, nil
}

// MixingTime returns the smallest t ≤ maxT with d(t) ≤ eps, where
// d(t) is the worst-case total-variation distance to stationarity.
// Periodic chains never satisfy the condition and yield ErrNotMixing.
func (c *Chain) MixingTime(eps float64, maxT int) (int, error) {
	if eps <= 0 || eps >= 1 {
		return 0, errors.New("markov: eps must be in (0, 1)")
	}
	if maxT < 0 {
		return 0, errors.New("markov: negative horizon")
	}
	pi, err := c.StationarySolve()
	if err != nil {
		return 0, err
	}
	n := c.N()
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, n)
		rows[i][i] = 1
	}
	for t := 0; t <= maxT; t++ {
		var worst float64
		for i := range rows {
			d, err := TotalVariation(rows[i], pi)
			if err != nil {
				return 0, err
			}
			if d > worst {
				worst = d
			}
		}
		if worst <= eps {
			return t, nil
		}
		if t == maxT {
			break
		}
		for i := range rows {
			next, err := c.StepDistribution(rows[i])
			if err != nil {
				return 0, err
			}
			rows[i] = next
		}
	}
	return 0, fmt.Errorf("%w: maxT=%d eps=%v", ErrNotMixing, maxT, eps)
}
