// Package markov provides the finite Markov chain substrate of
// Section 3: dense time-invariant chains with ergodicity checks
// (irreducibility via strong connectivity, aperiodicity via the cycle
// gcd), stationary distributions computed both by direct linear solve
// and by power iteration, hitting and return times, ergodic flows,
// and verification of Markov chain liftings in the sense of
// Chen–Lovász–Pak / Hayes–Sinclair, which is the key tool of the
// paper's analysis.
package markov

import (
	"errors"
	"fmt"
	"math"
)

// Chain construction and query errors.
var (
	ErrNotStochastic  = errors.New("markov: matrix is not row-stochastic")
	ErrNotIrreducible = errors.New("markov: chain is not irreducible")
	ErrBadState       = errors.New("markov: state index out of range")
	ErrNoConvergence  = errors.New("markov: power iteration did not converge")
)

// rowSumTolerance is the allowed deviation of each transition row from
// summing to exactly 1.
const rowSumTolerance = 1e-9

// Chain is a finite, time-invariant, discrete-time Markov chain with a
// dense transition matrix.
type Chain struct {
	p [][]float64
}

// New validates a transition matrix (square, non-negative entries,
// rows summing to 1) and wraps it. The matrix is deep-copied.
func New(p [][]float64) (*Chain, error) {
	n := len(p)
	if n == 0 {
		return nil, errors.New("markov: empty chain")
	}
	cp := make([][]float64, n)
	for i, row := range p {
		if len(row) != n {
			return nil, fmt.Errorf("markov: row %d has %d entries, want %d", i, len(row), n)
		}
		var sum float64
		cp[i] = make([]float64, n)
		for j, v := range row {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("%w: entry (%d,%d) = %v", ErrNotStochastic, i, j, v)
			}
			cp[i][j] = v
			sum += v
		}
		if math.Abs(sum-1) > rowSumTolerance {
			return nil, fmt.Errorf("%w: row %d sums to %v", ErrNotStochastic, i, sum)
		}
	}
	return &Chain{p: cp}, nil
}

// N returns the number of states.
func (c *Chain) N() int { return len(c.p) }

// P returns the transition probability from state i to state j.
func (c *Chain) P(i, j int) float64 { return c.p[i][j] }

// Matrix returns a deep copy of the transition matrix.
func (c *Chain) Matrix() [][]float64 { return cloneMatrix(c.p) }

// StepDistribution returns q·P, the state distribution after one step
// from distribution q.
func (c *Chain) StepDistribution(q []float64) ([]float64, error) {
	n := c.N()
	if len(q) != n {
		return nil, fmt.Errorf("markov: distribution has %d entries, want %d", len(q), n)
	}
	out := make([]float64, n)
	for i, qi := range q {
		if qi == 0 {
			continue
		}
		row := c.p[i]
		for j, pij := range row {
			out[j] += qi * pij
		}
	}
	return out, nil
}

// successors enumerates j with p[i][j] > 0.
func (c *Chain) successors(i int) []int {
	var out []int
	for j, v := range c.p[i] {
		if v > 0 {
			out = append(out, j)
		}
	}
	return out
}

// Irreducible reports whether the chain's underlying digraph is
// strongly connected: every state reachable from every other.
func (c *Chain) Irreducible() bool {
	n := c.N()
	if n == 1 {
		return true
	}
	forward := c.reachableFrom(0, false)
	if len(forward) != n {
		return false
	}
	backward := c.reachableFrom(0, true)
	return len(backward) == n
}

// reachableFrom returns the set of states reachable from start,
// following edges backwards when reverse is set.
func (c *Chain) reachableFrom(start int, reverse bool) map[int]bool {
	seen := map[int]bool{start: true}
	stack := []int{start}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for v := 0; v < c.N(); v++ {
			var edge bool
			if reverse {
				edge = c.p[v][u] > 0
			} else {
				edge = c.p[u][v] > 0
			}
			if edge && !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// Period returns the period of the chain, which is well defined (all
// states share it) when the chain is irreducible; otherwise it
// returns ErrNotIrreducible. A period of 1 means aperiodic.
func (c *Chain) Period() (int, error) {
	if !c.Irreducible() {
		return 0, ErrNotIrreducible
	}
	// BFS levels from state 0; the period is the gcd over all edges
	// (u,v) of |level[u] + 1 - level[v]|.
	n := c.N()
	level := make([]int, n)
	for i := range level {
		level[i] = -1
	}
	level[0] = 0
	queue := []int{0}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range c.successors(u) {
			if level[v] < 0 {
				level[v] = level[u] + 1
				queue = append(queue, v)
			}
		}
	}
	g := 0
	for u := 0; u < n; u++ {
		for _, v := range c.successors(u) {
			d := level[u] + 1 - level[v]
			if d < 0 {
				d = -d
			}
			g = gcd(g, d)
		}
	}
	if g == 0 {
		// Only possible for the single-state chain with a self-loop
		// handled above, but keep a sane default.
		g = 1
	}
	return g, nil
}

// Ergodic reports whether the chain is irreducible and aperiodic.
func (c *Chain) Ergodic() bool {
	period, err := c.Period()
	return err == nil && period == 1
}

// StationarySolve computes the unique stationary distribution of an
// irreducible chain by direct linear solve of π·P = π, Σπ = 1.
func (c *Chain) StationarySolve() ([]float64, error) {
	if !c.Irreducible() {
		return nil, ErrNotIrreducible
	}
	n := c.N()
	// Build A = (P^T - I), then replace the last row by the
	// normalization constraint Σ π_i = 1.
	a := make([][]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			a[i][j] = c.p[j][i]
		}
		a[i][i] -= 1
	}
	for j := 0; j < n; j++ {
		a[n-1][j] = 1
	}
	b[n-1] = 1
	pi, err := solveDense(a, b)
	if err != nil {
		return nil, fmt.Errorf("stationary solve: %w", err)
	}
	// Guard against tiny negative round-off and renormalize.
	var sum float64
	for i, v := range pi {
		if v < 0 {
			if v < -1e-9 {
				return nil, fmt.Errorf("markov: stationary solve produced π[%d] = %v", i, v)
			}
			pi[i] = 0
		}
		sum += pi[i]
	}
	for i := range pi {
		pi[i] /= sum
	}
	return pi, nil
}

// StationaryPower computes the stationary distribution by power
// iteration from the uniform distribution, stopping when successive
// iterates differ by less than tol in max norm. It requires an
// ergodic chain to converge; reducible or periodic chains yield
// ErrNoConvergence within maxIter iterations.
func (c *Chain) StationaryPower(tol float64, maxIter int) ([]float64, error) {
	if tol <= 0 {
		return nil, errors.New("markov: tolerance must be positive")
	}
	if maxIter < 1 {
		return nil, errors.New("markov: maxIter must be positive")
	}
	n := c.N()
	cur := make([]float64, n)
	for i := range cur {
		cur[i] = 1 / float64(n)
	}
	for iter := 0; iter < maxIter; iter++ {
		next, err := c.StepDistribution(cur)
		if err != nil {
			return nil, err
		}
		var diff float64
		for i := range next {
			if d := math.Abs(next[i] - cur[i]); d > diff {
				diff = d
			}
		}
		cur = next
		if diff < tol {
			return cur, nil
		}
	}
	return nil, fmt.Errorf("%w after %d iterations", ErrNoConvergence, maxIter)
}

// Residual returns ‖π·P − π‖∞, the stationarity defect of π.
func (c *Chain) Residual(pi []float64) (float64, error) {
	next, err := c.StepDistribution(pi)
	if err != nil {
		return 0, err
	}
	var r float64
	for i := range next {
		if d := math.Abs(next[i] - pi[i]); d > r {
			r = d
		}
	}
	return r, nil
}

// HittingTimes returns h[i] = E[number of steps to first reach target
// from i], with h[target] = 0, for an irreducible chain.
func (c *Chain) HittingTimes(target int) ([]float64, error) {
	n := c.N()
	if target < 0 || target >= n {
		return nil, fmt.Errorf("%w: %d", ErrBadState, target)
	}
	if !c.Irreducible() {
		return nil, ErrNotIrreducible
	}
	if n == 1 {
		return []float64{0}, nil
	}
	// Solve (I - Q) h = 1 where Q drops row/column `target`.
	m := n - 1
	idx := make([]int, 0, m) // chain state for each reduced index
	for i := 0; i < n; i++ {
		if i != target {
			idx = append(idx, i)
		}
	}
	a := make([][]float64, m)
	b := make([]float64, m)
	for r, i := range idx {
		a[r] = make([]float64, m)
		for ccol, j := range idx {
			a[r][ccol] = -c.p[i][j]
		}
		a[r][r] += 1
		b[r] = 1
	}
	h, err := solveDense(a, b)
	if err != nil {
		return nil, fmt.Errorf("hitting times: %w", err)
	}
	out := make([]float64, n)
	for r, i := range idx {
		out[i] = h[r]
	}
	return out, nil
}

// ReturnTime returns the expected return time E[T_jj] of state j,
// computed from hitting times: 1 + Σ_k p_jk · h_k. For an irreducible
// chain, Theorem 1 gives ReturnTime(j) == 1/π_j, which tests verify.
func (c *Chain) ReturnTime(j int) (float64, error) {
	h, err := c.HittingTimes(j)
	if err != nil {
		return 0, err
	}
	ret := 1.0
	for k, pjk := range c.p[j] {
		ret += pjk * h[k]
	}
	return ret, nil
}

// ErgodicFlow returns Q with Q[i][j] = π_i · p_ij for the given
// stationary distribution.
func (c *Chain) ErgodicFlow(pi []float64) ([][]float64, error) {
	n := c.N()
	if len(pi) != n {
		return nil, fmt.Errorf("markov: distribution has %d entries, want %d", len(pi), n)
	}
	q := make([][]float64, n)
	for i := range q {
		q[i] = make([]float64, n)
		for j := range q[i] {
			q[i][j] = pi[i] * c.p[i][j]
		}
	}
	return q, nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
