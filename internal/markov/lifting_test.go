package markov

import (
	"errors"
	"math"
	"testing"

	"pwf/internal/rng"
)

// liftedCopy builds a big chain that duplicates every state of small k
// times, splitting each transition uniformly across the k copies of
// the target. This is a lifting by construction with f[x] = x / k.
func liftedCopy(t *testing.T, small *Chain, k int) (*Chain, []int) {
	t.Helper()
	n := small.N()
	big := make([][]float64, n*k)
	f := make([]int, n*k)
	for x := range big {
		big[x] = make([]float64, n*k)
		i := x / k
		f[x] = i
		for j := 0; j < n; j++ {
			share := small.P(i, j) / float64(k)
			for c := 0; c < k; c++ {
				big[x][j*k+c] = share
			}
		}
	}
	bigChain, err := New(big)
	if err != nil {
		t.Fatal(err)
	}
	return bigChain, f
}

func TestVerifyLiftingIdentity(t *testing.T) {
	small := twoState(t, 0.3, 0.6)
	f := []int{0, 1}
	report, err := VerifyLifting(small, small, f)
	if err != nil {
		t.Fatal(err)
	}
	if report.MaxFlowError > 1e-12 || report.MaxMarginalError > 1e-12 {
		t.Fatalf("identity lifting errors: flow %v marginal %v",
			report.MaxFlowError, report.MaxMarginalError)
	}
}

func TestVerifyLiftingDuplicatedStates(t *testing.T) {
	src := rng.New(5)
	small := mustChain(t, randomErgodic(4, src))
	big, f := liftedCopy(t, small, 3)
	report, err := VerifyLifting(big, small, f)
	if err != nil {
		t.Fatal(err)
	}
	if report.MaxFlowError > 1e-9 {
		t.Fatalf("flow error %v", report.MaxFlowError)
	}
	if report.MaxMarginalError > 1e-9 {
		t.Fatalf("marginal error %v (Lemma 1)", report.MaxMarginalError)
	}
	if len(report.BigStationary) != big.N() || len(report.SmallStationary) != small.N() {
		t.Fatal("report missing stationary distributions")
	}
}

func TestVerifyLiftingDetectsNonLifting(t *testing.T) {
	// Map both states of an asymmetric two-state chain onto a
	// single-state chain the flows of which cannot match a chain
	// where they should differ: construct small = two-state with
	// specific flows, and map big's states crosswise so aggregated
	// flows disagree.
	big := twoState(t, 0.2, 0.8) // π = [0.8, 0.2]
	small := twoState(t, 0.5, 0.5)
	f := []int{0, 1}
	report, err := VerifyLifting(big, small, f)
	if err != nil {
		t.Fatal(err)
	}
	if report.MaxFlowError < 0.01 {
		t.Fatalf("expected a large flow violation, got %v", report.MaxFlowError)
	}
}

func TestVerifyLiftingValidation(t *testing.T) {
	small := twoState(t, 0.5, 0.5)
	if _, err := VerifyLifting(nil, small, []int{0, 1}); err == nil {
		t.Error("nil big: nil error")
	}
	if _, err := VerifyLifting(small, nil, []int{0, 1}); err == nil {
		t.Error("nil small: nil error")
	}
	if _, err := VerifyLifting(small, small, []int{0}); !errors.Is(err, ErrBadMapping) {
		t.Errorf("short map: %v", err)
	}
	if _, err := VerifyLifting(small, small, []int{0, 5}); !errors.Is(err, ErrBadMapping) {
		t.Errorf("out-of-range map: %v", err)
	}
	if _, err := VerifyLifting(small, small, []int{0, 0}); !errors.Is(err, ErrNotSurjective) {
		t.Errorf("non-surjective map: %v", err)
	}
}

func TestVerifyLiftingMarginalLemma(t *testing.T) {
	// Lemma 1 check isolated: a lifting's small stationary mass is
	// the sum of big stationary masses in the preimage.
	src := rng.New(11)
	small := mustChain(t, randomErgodic(3, src))
	big, f := liftedCopy(t, small, 2)
	report, err := VerifyLifting(big, small, f)
	if err != nil {
		t.Fatal(err)
	}
	marginal := make([]float64, small.N())
	for x, v := range f {
		marginal[v] += report.BigStationary[x]
	}
	for v := range marginal {
		if math.Abs(marginal[v]-report.SmallStationary[v]) > 1e-9 {
			t.Fatalf("marginal[%d] = %v, small π = %v", v, marginal[v], report.SmallStationary[v])
		}
	}
}
