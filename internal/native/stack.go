package native

import (
	"sync/atomic"

	"pwf/internal/backoff"
	"pwf/internal/obs"
)

// Stack is a Treiber stack [21] on real atomics. Node reclamation is
// handled by the Go garbage collector, which is exactly the setting
// the paper's class SCU models (no ABA: a node address cannot be
// reused while any goroutine still references it).
//
// The zero value is a bare stack whose retry loop issues CAS attempts
// back to back, exactly as the paper's SCU model assumes. NewStack
// adds contention management: WithBackoff paces retries and
// WithElimination lets colliding push/pop pairs exchange values off
// the hot top-of-stack word.
type Stack[T any] struct {
	top   atomic.Pointer[stackNode[T]]
	stats *obs.OpStats
	bo    backoff.Strategy
	elim  *elimArray[T]
}

// NewStack builds a stack configured by opts (WithBackoff,
// WithElimination, WithSeed). With no options it is equivalent to the
// zero value.
func NewStack[T any](opts ...Option) *Stack[T] {
	cfg := applyOptions(opts)
	s := &Stack[T]{bo: cfg.backoff}
	if cfg.elim > 0 {
		s.elim = newElimArray[T](cfg.elim, cfg.seed)
	}
	return s
}

// Instrument attaches wait-free per-operation telemetry (steps, retry
// distribution, CAS failures, elimination hits) shared by every
// goroutine using the stack. Pass nil to detach. Not safe to call
// concurrently with Push/Pop.
func (s *Stack[T]) Instrument(st *obs.OpStats) { s.stats = st }

type stackNode[T any] struct {
	value T
	next  *stackNode[T]
}

// Push adds v on top of the stack and returns the number of
// shared-memory steps taken (one read plus one CAS per attempt, plus
// any steps spent on the elimination array).
func (s *Stack[T]) Push(v T) (steps uint64) {
	n := &stackNode[T]{value: v}
	var fails uint64
	for {
		top := s.top.Load()
		steps++
		n.next = top
		if s.top.CompareAndSwap(top, n) {
			steps++
			s.complete(steps, fails)
			return steps
		}
		steps++
		fails++
		if s.elim != nil {
			es, ok := s.elim.tryPush(v)
			steps += es
			if ok {
				s.completeEliminated(steps, fails)
				return steps
			}
		}
		if s.bo != nil {
			s.bo.Pause(fails)
		}
	}
}

// Pop removes and returns the top value; ok is false when the stack
// is empty. steps counts shared-memory operations.
func (s *Stack[T]) Pop() (v T, ok bool, steps uint64) {
	var fails uint64
	for {
		top := s.top.Load()
		steps++
		if top == nil {
			s.complete(steps, fails)
			return v, false, steps
		}
		next := top.next
		steps++ // reading top.next touches shared memory
		if s.top.CompareAndSwap(top, next) {
			steps++
			s.complete(steps, fails)
			return top.value, true, steps
		}
		steps++
		fails++
		if s.elim != nil {
			ev, es, ok := s.elim.tryPop()
			steps += es
			if ok {
				s.completeEliminated(steps, fails)
				return ev, true, steps
			}
		}
		if s.bo != nil {
			s.bo.Pause(fails)
		}
	}
}

// complete funnels the end-of-operation bookkeeping shared by every
// exit path: the backoff strategy's success signal and the optional
// telemetry.
func (s *Stack[T]) complete(steps, fails uint64) {
	if s.bo != nil {
		s.bo.Succeeded()
	}
	if s.stats != nil {
		s.stats.ObserveOp(steps, fails)
	}
}

// completeEliminated is complete for operations that finished on the
// elimination array instead of the top word.
func (s *Stack[T]) completeEliminated(steps, fails uint64) {
	if s.bo != nil {
		s.bo.Succeeded()
	}
	if s.stats != nil {
		s.stats.ObserveOp(steps, fails)
		s.stats.Eliminations.Inc()
	}
}

// Empty reports whether the stack is empty at the moment of the call.
// It ignores values parked on the elimination array mid-exchange.
func (s *Stack[T]) Empty() bool { return s.top.Load() == nil }
