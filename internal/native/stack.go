package native

import (
	"sync/atomic"

	"pwf/internal/obs"
)

// Stack is a Treiber stack [21] on real atomics. Node reclamation is
// handled by the Go garbage collector, which is exactly the setting
// the paper's class SCU models (no ABA: a node address cannot be
// reused while any goroutine still references it).
type Stack[T any] struct {
	top   atomic.Pointer[stackNode[T]]
	stats *obs.OpStats
}

// Instrument attaches wait-free per-operation telemetry (steps, retry
// distribution, CAS failures) shared by every goroutine using the
// stack. Pass nil to detach. Not safe to call concurrently with
// Push/Pop.
func (s *Stack[T]) Instrument(st *obs.OpStats) { s.stats = st }

type stackNode[T any] struct {
	value T
	next  *stackNode[T]
}

// Push adds v on top of the stack and returns the number of
// shared-memory steps taken (one read plus one CAS per attempt).
func (s *Stack[T]) Push(v T) (steps uint64) {
	n := &stackNode[T]{value: v}
	var fails uint64
	for {
		top := s.top.Load()
		steps++
		n.next = top
		if s.top.CompareAndSwap(top, n) {
			steps++
			if s.stats != nil {
				s.stats.ObserveOp(steps, fails)
			}
			return steps
		}
		steps++
		fails++
	}
}

// Pop removes and returns the top value; ok is false when the stack
// is empty. steps counts shared-memory operations.
func (s *Stack[T]) Pop() (v T, ok bool, steps uint64) {
	var fails uint64
	for {
		top := s.top.Load()
		steps++
		if top == nil {
			if s.stats != nil {
				s.stats.ObserveOp(steps, fails)
			}
			return v, false, steps
		}
		next := top.next
		steps++ // reading top.next touches shared memory
		if s.top.CompareAndSwap(top, next) {
			steps++
			if s.stats != nil {
				s.stats.ObserveOp(steps, fails)
			}
			return top.value, true, steps
		}
		steps++
		fails++
	}
}

// Empty reports whether the stack is empty at the moment of the call.
func (s *Stack[T]) Empty() bool { return s.top.Load() == nil }
