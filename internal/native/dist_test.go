package native

import "testing"

func TestMeasureStepsDistributionValidation(t *testing.T) {
	ok := func(int) Op { return func() uint64 { return 1 } }
	if _, err := MeasureStepsDistribution(0, 1, ok); err == nil {
		t.Error("workers=0: nil error")
	}
	if _, err := MeasureStepsDistribution(1, 0, ok); err == nil {
		t.Error("ops=0: nil error")
	}
	if _, err := MeasureStepsDistribution(1, 1, nil); err == nil {
		t.Error("nil factory: nil error")
	}
	if _, err := MeasureStepsDistribution(1, 1, func(int) Op { return nil }); err == nil {
		t.Error("nil op: nil error")
	}
}

func TestMeasureStepsDistributionConstantOp(t *testing.T) {
	d, err := MeasureStepsDistribution(3, 100, func(int) Op {
		return func() uint64 { return 7 }
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 300 {
		t.Fatalf("N = %d, want 300", d.N())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		v, err := d.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		if v != 7 {
			t.Fatalf("quantile %v = %d, want 7", q, v)
		}
	}
	if d.Max() != 7 || d.Mean() != 7 {
		t.Fatalf("Max=%d Mean=%v", d.Max(), d.Mean())
	}
}

func TestMeasureStepsDistributionOrdering(t *testing.T) {
	// Each worker emits increasing step counts; the quantiles must be
	// monotone and bracket the data range.
	d, err := MeasureStepsDistribution(2, 50, func(w int) Op {
		i := uint64(0)
		return func() uint64 {
			i++
			return i
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	lo, err := d.Quantile(0)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := d.Quantile(1)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 1 || hi != 50 {
		t.Fatalf("range [%d, %d], want [1, 50]", lo, hi)
	}
	med, err := d.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if med < lo || med > hi {
		t.Fatalf("median %d outside range", med)
	}
}

func TestMeasureStepsDistributionErrors(t *testing.T) {
	d := &StepsDistribution{}
	if _, err := d.Quantile(0.5); err == nil {
		t.Error("empty distribution: nil error")
	}
	if d.Max() != 0 || d.Mean() != 0 {
		t.Error("empty distribution should report zeros")
	}
	d2, err := MeasureStepsDistribution(1, 1, func(int) Op { return func() uint64 { return 1 } })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d2.Quantile(-0.1); err == nil {
		t.Error("q<0: nil error")
	}
	if _, err := d2.Quantile(1.1); err == nil {
		t.Error("q>1: nil error")
	}
}

func TestStackStepsDistribution(t *testing.T) {
	var s Stack[int]
	d, err := MeasureStepsDistribution(4, 5000, func(w int) Op {
		push := true
		return func() uint64 {
			var steps uint64
			if push {
				steps = s.Push(w)
			} else {
				_, _, steps = s.Pop()
			}
			push = !push
			return steps
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	min, err := d.Quantile(0)
	if err != nil {
		t.Fatal(err)
	}
	// Cheapest possible op is an empty pop (1 step) or a clean
	// push/pop (2-3 steps); no op is free.
	if min == 0 {
		t.Fatal("zero-step operation recorded")
	}
	if d.Mean() < 1 {
		t.Fatalf("mean %v below 1 step/op", d.Mean())
	}
}
