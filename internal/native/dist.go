package native

import (
	"errors"
	"sort"
	"sync"
)

// StepsDistribution is the per-operation cost distribution of a
// native workload: how many shared-memory steps each individual
// operation took. This is the practitioner's "latency distribution of
// individual operations" view the paper cites (Al-Bahra [1, Fig. 6])
// as evidence that lock-free operations complete in a timely manner.
type StepsDistribution struct {
	samples []uint64 // sorted
}

// MeasureStepsDistribution runs `workers` goroutines, each executing
// op opsPerWorker times, recording every operation's step count.
func MeasureStepsDistribution(workers, opsPerWorker int, makeOp func(worker int) Op) (*StepsDistribution, error) {
	if workers < 1 {
		return nil, ErrBadWorkers
	}
	if opsPerWorker < 1 {
		return nil, errors.New("native: need at least one op per worker")
	}
	if makeOp == nil {
		return nil, errors.New("native: nil op factory")
	}
	var (
		wg    sync.WaitGroup
		per   = make([][]uint64, workers)
		start = make(chan struct{})
	)
	for w := 0; w < workers; w++ {
		op := makeOp(w)
		if op == nil {
			return nil, errors.New("native: op factory returned nil")
		}
		per[w] = make([]uint64, opsPerWorker)
		wg.Add(1)
		go func(w int, op Op) {
			defer wg.Done()
			<-start
			mine := per[w]
			for i := range mine {
				mine[i] = op()
			}
		}(w, op)
	}
	close(start)
	wg.Wait()

	samples := make([]uint64, 0, workers*opsPerWorker)
	for _, mine := range per {
		samples = append(samples, mine...)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return &StepsDistribution{samples: samples}, nil
}

// N returns the number of recorded operations.
func (d *StepsDistribution) N() int { return len(d.samples) }

// Quantile returns the q-quantile (0 <= q <= 1) of per-operation step
// counts (nearest-rank).
func (d *StepsDistribution) Quantile(q float64) (uint64, error) {
	if len(d.samples) == 0 {
		return 0, errors.New("native: empty distribution")
	}
	if q < 0 || q > 1 {
		return 0, errors.New("native: quantile out of [0,1]")
	}
	idx := int(q * float64(len(d.samples)-1))
	return d.samples[idx], nil
}

// Max returns the largest per-operation step count — the empirical
// worst case whose boundedness is what "practically wait-free" means.
func (d *StepsDistribution) Max() uint64 {
	if len(d.samples) == 0 {
		return 0
	}
	return d.samples[len(d.samples)-1]
}

// Mean returns the mean per-operation step count.
func (d *StepsDistribution) Mean() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	var sum uint64
	for _, s := range d.samples {
		sum += s
	}
	return float64(sum) / float64(len(d.samples))
}
