package native

import (
	"runtime"
	"sync"
	"testing"

	"pwf/internal/backoff"
	"pwf/internal/obs"
)

// TestNewStackDefaultMatchesZeroValue pins the acceptance criterion
// that the no-backoff default is behaviourally identical to the
// pre-contention-management stack: same step counts on the same
// operation sequence.
func TestNewStackDefaultMatchesZeroValue(t *testing.T) {
	var zero Stack[int]
	built := NewStack[int]()
	for i := 0; i < 100; i++ {
		if zs, bs := zero.Push(i), built.Push(i); zs != bs || zs != 2 {
			t.Fatalf("push %d: zero=%d built=%d, want 2", i, zs, bs)
		}
	}
	for i := 99; i >= 0; i-- {
		zv, zok, zs := zero.Pop()
		bv, bok, bs := built.Pop()
		if zv != bv || zok != bok || zs != bs || zs != 3 {
			t.Fatalf("pop: zero=(%d,%v,%d) built=(%d,%v,%d)", zv, zok, zs, bv, bok, bs)
		}
	}
}

// TestStackWithBackoffSequential checks that a paced stack is
// functionally identical when uncontended: backoff only runs after a
// failed CAS, so sequential step counts must not change.
func TestStackWithBackoffSequential(t *testing.T) {
	for _, bo := range []backoff.Strategy{
		backoff.None{},
		backoff.Spin{Iters: 8},
		backoff.NewExp(4, 64, 1),
		backoff.NewAdaptive(4, 64, 1),
	} {
		s := NewStack[int](WithBackoff(bo))
		for i := 0; i < 50; i++ {
			if steps := s.Push(i); steps != 2 {
				t.Fatalf("paced uncontended push took %d steps", steps)
			}
		}
		for i := 49; i >= 0; i-- {
			v, ok, steps := s.Pop()
			if !ok || v != i || steps != 3 {
				t.Fatalf("paced pop = (%d, %v, %d)", v, ok, steps)
			}
		}
	}
}

// TestStackContendedConservation hammers every contention-management
// configuration with concurrent push/pop pairs and checks value
// conservation: nothing lost, nothing duplicated — including values
// that travelled through the elimination array rather than the stack
// proper. Run under -race this also exercises the elimination
// protocol's synchronization.
func TestStackContendedConservation(t *testing.T) {
	configs := map[string][]Option{
		"bare":     nil,
		"exp":      {WithBackoff(backoff.NewExp(2, 64, 42))},
		"adaptive": {WithBackoff(backoff.NewAdaptive(2, 64, 42))},
		"elim":     {WithElimination(4), WithSeed(42)},
		"elim+exp": {WithElimination(4), WithBackoff(backoff.NewExp(2, 64, 42))},
	}
	for name, opts := range configs {
		name, opts := name, opts
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const (
				workers = 8
				pairs   = 2000
			)
			s := NewStack[int](opts...)
			var st obs.OpStats
			s.Instrument(&st)
			var (
				wg     sync.WaitGroup
				mu     sync.Mutex
				popped = make(map[int]int)
			)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					local := make([]int, 0, pairs)
					for i := 0; i < pairs; i++ {
						s.Push(w*pairs + i)
						if v, ok, _ := s.Pop(); ok {
							local = append(local, v)
						}
					}
					mu.Lock()
					for _, v := range local {
						popped[v]++
					}
					mu.Unlock()
				}(w)
			}
			wg.Wait()
			for v, c := range popped {
				if c != 1 {
					t.Fatalf("value %d popped %d times", v, c)
				}
			}
			total := len(popped)
			for {
				v, ok, _ := s.Pop()
				if !ok {
					break
				}
				if popped[v] != 0 {
					t.Fatalf("leftover %d already popped", v)
				}
				total++
			}
			if total != workers*pairs {
				t.Fatalf("recovered %d values, want %d", total, workers*pairs)
			}
			if st.Ops.Load() == 0 {
				t.Fatal("no operations recorded")
			}
		})
	}
}

// TestElimArrayExchange drives the rendezvous protocol directly: a
// parked push must be consumed by a concurrent pop, and a push with no
// partner must reclaim its value.
func TestElimArrayExchange(t *testing.T) {
	a := newElimArray[int](1, 7)

	// No partner: the pusher reclaims its slot and reports no exchange.
	if _, ok := a.tryPush(1); ok {
		t.Fatal("tryPush succeeded with no popper present")
	}
	if v, _, ok := a.tryPop(); ok {
		t.Fatalf("tryPop found %d in an empty array", v)
	}

	// With a partner: park a value with a wide window and pop it from
	// another goroutine. The window can in principle expire before the
	// popper is scheduled, so retry rounds until an exchange happens.
	a.window = 1 << 22
	for round := 0; round < 100; round++ {
		done := make(chan bool, 1)
		go func() {
			_, ok := a.tryPush(99)
			done <- ok
		}()
		for exchanged := false; !exchanged; {
			if v, _, ok := a.tryPop(); ok {
				if v != 99 {
					t.Fatalf("eliminated value %d, want 99", v)
				}
				if !<-done {
					t.Fatal("pusher did not observe the elimination")
				}
				return
			}
			select {
			case <-done:
				// Window expired with no exchange; next round.
				exchanged = true
			default:
				runtime.Gosched()
			}
		}
	}
	t.Fatal("no exchange in 100 rounds")
}

// TestStackEliminationRace hammers a stack with a small elimination
// array from dedicated pushers and poppers; the elimination paths are
// scheduling-dependent, so the assertions pin the accounting
// invariants rather than a particular hit count.
func TestStackEliminationRace(t *testing.T) {
	s := NewStack[int](WithElimination(2), WithSeed(3))
	var st obs.OpStats
	s.Instrument(&st)
	const (
		workers = 8
		ops     = 5000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				if w%2 == 0 {
					s.Push(i)
				} else {
					s.Pop()
				}
			}
		}(w)
	}
	wg.Wait()
	// Elimination hits are scheduling-dependent; the invariant is the
	// accounting: every op was observed, hits never exceed ops.
	if got := st.Ops.Load(); got != workers*ops {
		t.Fatalf("ops %d, want %d", got, workers*ops)
	}
	if st.Eliminations.Load() > st.Ops.Load() {
		t.Fatalf("eliminations %d exceed ops %d", st.Eliminations.Load(), st.Ops.Load())
	}
}

func TestShardedCounterSequential(t *testing.T) {
	c := NewShardedCounter(WithShards(4), WithBatch(8))
	if c.Shards() != 4 {
		t.Fatalf("Shards = %d", c.Shards())
	}
	seen := make(map[int64]bool)
	for i := 0; i < 100; i++ {
		v, steps := c.Inc(i % 4)
		if seen[v] {
			t.Fatalf("duplicate value %d", v)
		}
		seen[v] = true
		if steps < 1 || steps > 4 {
			t.Fatalf("steps %d out of range", steps)
		}
	}
	if got := c.Exact(); got != 100 {
		t.Fatalf("Exact = %d, want 100", got)
	}
	// Load lags by the unreconciled remainders (25 per shard => 1
	// remainder of 1 each after 3 full batches of 8).
	if load := c.Load(); load > 100 || load < 100-4*7 {
		t.Fatalf("Load = %d outside lag bound", load)
	}
	if got := c.Reconcile(); got != 100 {
		t.Fatalf("Reconcile = %d, want 100", got)
	}
	if got := c.Load(); got != 100 {
		t.Fatalf("Load after Reconcile = %d, want 100", got)
	}
	// Reconcile is idempotent and increments after it keep folding
	// exactly once.
	for i := 0; i < 100; i++ {
		c.Inc(i % 4)
	}
	if got := c.Reconcile(); got != 200 {
		t.Fatalf("second Reconcile = %d, want 200", got)
	}
}

// TestShardedCounterNeverOvercounts interleaves Reconcile with
// increments and checks the fold-exactly-once invariant: Load must
// never exceed the true increment count.
func TestShardedCounterNeverOvercounts(t *testing.T) {
	c := NewShardedCounter(WithShards(2), WithBatch(4))
	for i := 0; i < 10; i++ {
		c.Inc(0)
	}
	c.Reconcile() // folds the remainder of 2 past the last batch of 4
	for i := 0; i < 10; i++ {
		c.Inc(0) // crosses batch boundaries that overlap the remainder
	}
	if got, want := c.Reconcile(), int64(20); got != want {
		t.Fatalf("Reconcile = %d, want %d", got, want)
	}
	if got := c.Exact(); got != 20 {
		t.Fatalf("Exact = %d, want 20", got)
	}
}

func TestShardedCounterConcurrentUniqueness(t *testing.T) {
	const (
		workers = 8
		ops     = 5000
	)
	c := NewShardedCounter(WithShards(4), WithBatch(16))
	var st obs.OpStats
	c.Instrument(&st)
	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	seen := make(map[int64]bool, workers*ops)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]int64, 0, ops)
			for i := 0; i < ops; i++ {
				v, _ := c.Inc(w)
				local = append(local, v)
			}
			mu.Lock()
			for _, v := range local {
				if seen[v] {
					t.Errorf("duplicate value %d", v)
				}
				seen[v] = true
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if got := c.Exact(); got != workers*ops {
		t.Fatalf("Exact = %d, want %d", got, workers*ops)
	}
	if load := c.Load(); load > workers*ops {
		t.Fatalf("Load = %d overcounts %d", load, workers*ops)
	}
	if got := c.Reconcile(); got != workers*ops {
		t.Fatalf("Reconcile = %d, want %d", got, workers*ops)
	}
	if got := st.Ops.Load(); got != workers*ops {
		t.Fatalf("stats ops %d, want %d", got, workers*ops)
	}
	if st.CASFailures.Load() != 0 {
		t.Fatalf("wait-free sharded counter recorded %d CAS failures", st.CASFailures.Load())
	}
}

func TestShardedCounterShardAliasing(t *testing.T) {
	c := NewShardedCounter(WithShards(2))
	v0, _ := c.Inc(0)
	v2, _ := c.Inc(2)  // aliases shard 0
	v5, _ := c.Inc(-1) // negative indices alias too
	if v0 == v2 || v2 == v5 || v0 == v5 {
		t.Fatalf("aliased shards produced duplicates: %d %d %d", v0, v2, v5)
	}
	if c.Exact() != 3 {
		t.Fatalf("Exact = %d, want 3", c.Exact())
	}
}

func TestMeasureShardedCounterRate(t *testing.T) {
	var st obs.OpStats
	res, err := MeasureShardedCounterRate(4, 10000,
		WithOpStats(&st), WithStructOptions(WithShards(4), WithBatch(64)))
	if err != nil {
		t.Fatal(err)
	}
	// One step per op plus a 3-step fold every 64 ops: the rate must
	// stay close to the wait-free baseline's 1, far above the
	// CAS-counter's contended collapse.
	if res.Rate() < 0.9 {
		t.Fatalf("sharded rate %v, want > 0.9", res.Rate())
	}
	if st.Ops.Load() != res.Ops {
		t.Fatalf("ops recorded %d, measured %d", st.Ops.Load(), res.Ops)
	}
	if st.Steps.Sum() != res.Steps {
		t.Fatalf("steps recorded %d, measured %d", st.Steps.Sum(), res.Steps)
	}
}

// TestMeasureRatesWithContentionOptions smoke-tests the option
// plumbing end to end for every workload that accepts it.
func TestMeasureRatesWithContentionOptions(t *testing.T) {
	bo := backoff.NewExp(2, 64, 9)
	if _, err := MeasureCASCounterRate(2, 2000, WithStructOptions(WithBackoff(bo))); err != nil {
		t.Fatal(err)
	}
	if _, err := MeasureStackRate(2, 2000,
		WithStructOptions(WithBackoff(bo), WithElimination(2), WithSeed(5))); err != nil {
		t.Fatal(err)
	}
	if _, err := MeasureQueueRate(2, 2000, WithStructOptions(WithBackoff(bo))); err != nil {
		t.Fatal(err)
	}
}
