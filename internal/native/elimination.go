package native

import (
	"sync/atomic"

	"pwf/internal/backoff"
	"pwf/internal/rng"
)

// elimArray is the elimination layer of a Stack (Hendler, Shavit and
// Yerushalmi's elimination-backoff stack, simplified to the
// asymmetric-rendezvous protocol GC makes safe): a pusher that lost a
// CAS on the top word parks its value in a random slot for a short
// window; a popper that lost its CAS scans a random slot and, finding
// a parked value, consumes it. The pair completes without ever
// touching the top word again.
//
// Linearizability is preserved because an eliminated push/pop pair is
// equivalent to the push linearizing immediately before the pop at the
// moment the popper's CAS claims the slot — the stack's state before
// and after the pair is identical, and no concurrent operation can
// observe the parked value through the stack proper.
//
// The protocol is ABA-free without tagging: pushers only install
// (nil -> item) and poppers and the owning pusher only remove
// (item -> nil) a pointer they hold, and the garbage collector
// guarantees a removed item's address is not reused while referenced.
type elimArray[T any] struct {
	slots []elimSlot[T]
	picks *rng.Atomic
	// window is how long (in backoff.SpinWait units) a pusher waits
	// for a partner before reclaiming its slot.
	window uint64
}

// elimSlot is a single exchange cell, padded so that concurrent
// operations on different slots do not share a cache line.
type elimSlot[T any] struct {
	item atomic.Pointer[elimItem[T]]
	_    [56]byte
}

type elimItem[T any] struct {
	value T
}

// defaultElimWindow is the pusher's wait window in spin units — long
// enough for a concurrently running popper to find the slot, short
// enough to lose little when no popper comes.
const defaultElimWindow = 1 << 9

func newElimArray[T any](slots int, seed uint64) *elimArray[T] {
	return &elimArray[T]{
		slots:  make([]elimSlot[T], slots),
		picks:  rng.NewAtomic(seed),
		window: defaultElimWindow,
	}
}

// tryPush parks v in a random slot and waits for a popper. ok reports
// whether a popper consumed the value (the push is complete); steps
// counts the shared-memory operations spent either way.
func (a *elimArray[T]) tryPush(v T) (steps uint64, ok bool) {
	slot := &a.slots[a.picks.Bounded(uint64(len(a.slots)))]
	it := &elimItem[T]{value: v}
	steps++
	if !slot.item.CompareAndSwap(nil, it) {
		return steps, false // slot busy; back to the main loop
	}
	backoff.SpinWait(a.window)
	steps++
	if slot.item.CompareAndSwap(it, nil) {
		return steps, false // no popper came; value reclaimed
	}
	// Only a popper's consuming CAS can have removed it.
	return steps, true
}

// tryPop scans a random slot for a parked push. ok reports whether a
// value was consumed.
func (a *elimArray[T]) tryPop() (v T, steps uint64, ok bool) {
	slot := &a.slots[a.picks.Bounded(uint64(len(a.slots)))]
	it := slot.item.Load()
	steps++
	if it == nil {
		return v, steps, false
	}
	steps++
	if !slot.item.CompareAndSwap(it, nil) {
		return v, steps, false // the pusher reclaimed it, or another popper won
	}
	return it.value, steps, true
}
