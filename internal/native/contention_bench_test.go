package native

// Contention benchmarks: reproduce the scaling shape of the paper's
// Figures 3-5 on real hardware and measure how much each contention-
// management strategy recovers. Every benchmark sweeps goroutine
// counts (temporarily raising GOMAXPROCS so g goroutines really
// timeshare or parallelize) and reports, besides wall time, the two
// quantities the paper plots:
//
//	rate        completions per shared-memory step (Figure 5 y-axis)
//	casfails/op mean failed CAS attempts per operation (conflict rate)
//
// Wall-time differences between strategies only appear when the host
// exposes enough hardware parallelism for CAS conflicts to be common;
// the step-accounted metrics expose the contention structure even on
// small machines. Numbers from this container are recorded in
// BENCH.md.
//
// Run with:
//
//	go test -run='^$' -bench=Contention -benchtime=1x ./internal/native/

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"pwf/internal/backoff"
	"pwf/internal/obs"
)

// contentionGoroutines is the sweep of concurrent goroutine counts.
var contentionGoroutines = []int{1, 2, 4, 8, 16}

// stackConfigs are the stack strategies under comparison. Seeds are
// fixed so jitter streams are reproducible.
func stackConfigs() []struct {
	name string
	opts []Option
} {
	return []struct {
		name string
		opts []Option
	}{
		{"bare", nil},
		{"spin", []Option{WithBackoff(backoff.Spin{Iters: 64})}},
		{"exp", []Option{WithBackoff(backoff.NewExp(16, 1<<12, 1))}},
		{"adaptive", []Option{WithBackoff(backoff.NewAdaptive(16, 1<<12, 1))}},
		{"elim", []Option{WithElimination(4), WithSeed(1)}},
		{"elim+exp", []Option{
			WithElimination(4), WithSeed(1),
			WithBackoff(backoff.NewExp(16, 1<<12, 1)),
		}},
	}
}

// withGoroutines runs body under exactly g-goroutine parallelism:
// GOMAXPROCS is raised to g for the duration so the goroutines
// timeshare (or run in parallel, hardware permitting) the way a
// g-thread run of the paper's testbed would.
func withGoroutines(b *testing.B, g int, body func(pb *testing.PB)) {
	b.Helper()
	prev := runtime.GOMAXPROCS(g)
	defer runtime.GOMAXPROCS(prev)
	b.SetParallelism((g + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
	b.ResetTimer()
	b.RunParallel(body)
}

// reportOpStats attaches the step-accounted metrics to the benchmark
// result.
func reportOpStats(b *testing.B, st *obs.OpStats) {
	b.Helper()
	ops := st.Ops.Load()
	if ops == 0 {
		return
	}
	b.ReportMetric(float64(ops)/float64(st.Steps.Sum()), "rate")
	b.ReportMetric(float64(st.CASFailures.Load())/float64(ops), "casfails/op")
	if elims := st.Eliminations.Load(); elims > 0 {
		b.ReportMetric(float64(elims)/float64(ops), "elims/op")
	}
}

// BenchmarkContentionStack sweeps push/pop pairs across strategies and
// goroutine counts — the experiment behind the acceptance criterion
// that exponential jitter and elimination beat bare CAS once >= 8
// goroutines contend.
func BenchmarkContentionStack(b *testing.B) {
	for _, cfg := range stackConfigs() {
		for _, g := range contentionGoroutines {
			b.Run(fmt.Sprintf("strategy=%s/goroutines=%d", cfg.name, g), func(b *testing.B) {
				s := NewStack[int](cfg.opts...)
				var st obs.OpStats
				s.Instrument(&st)
				withGoroutines(b, g, func(pb *testing.PB) {
					push := true
					for pb.Next() {
						if push {
							s.Push(1)
						} else {
							s.Pop()
						}
						push = !push
					}
				})
				reportOpStats(b, &st)
			})
		}
	}
}

// BenchmarkContentionCounter compares the Appendix B counter variants:
// the bare and paced CAS loops against the sharded counter's batched
// reconcile path and the hardware fetch-and-add wait-free ceiling.
func BenchmarkContentionCounter(b *testing.B) {
	configs := []struct {
		name  string
		build func() (inc func(worker int) uint64, st *obs.OpStats)
	}{
		{"cas-bare", func() (func(int) uint64, *obs.OpStats) {
			c := NewCASCounter()
			st := &obs.OpStats{}
			c.Instrument(st)
			return func(int) uint64 { _, s := c.Inc(); return s }, st
		}},
		{"cas-exp", func() (func(int) uint64, *obs.OpStats) {
			c := NewCASCounter(WithBackoff(backoff.NewExp(16, 1<<12, 1)))
			st := &obs.OpStats{}
			c.Instrument(st)
			return func(int) uint64 { _, s := c.Inc(); return s }, st
		}},
		{"cas-adaptive", func() (func(int) uint64, *obs.OpStats) {
			c := NewCASCounter(WithBackoff(backoff.NewAdaptive(16, 1<<12, 1)))
			st := &obs.OpStats{}
			c.Instrument(st)
			return func(int) uint64 { _, s := c.Inc(); return s }, st
		}},
		{"sharded", func() (func(int) uint64, *obs.OpStats) {
			c := NewShardedCounter(WithShards(16), WithBatch(DefaultBatch))
			st := &obs.OpStats{}
			c.Instrument(st)
			return func(w int) uint64 { _, s := c.Inc(w); return s }, st
		}},
		{"add", func() (func(int) uint64, *obs.OpStats) {
			var c AddCounter
			st := &obs.OpStats{}
			c.Instrument(st)
			return func(int) uint64 { _, s := c.Inc(); return s }, st
		}},
	}
	for _, cfg := range configs {
		for _, g := range contentionGoroutines {
			b.Run(fmt.Sprintf("strategy=%s/goroutines=%d", cfg.name, g), func(b *testing.B) {
				inc, st := cfg.build()
				var workerID atomic.Int64
				withGoroutines(b, g, func(pb *testing.PB) {
					w := int(workerID.Add(1) - 1)
					for pb.Next() {
						inc(w)
					}
				})
				reportOpStats(b, st)
			})
		}
	}
}

// BenchmarkContentionQueue sweeps the Michael-Scott queue with and
// without pacing.
func BenchmarkContentionQueue(b *testing.B) {
	configs := []struct {
		name string
		opts []Option
	}{
		{"bare", nil},
		{"exp", []Option{WithBackoff(backoff.NewExp(16, 1<<12, 1))}},
	}
	for _, cfg := range configs {
		for _, g := range contentionGoroutines {
			b.Run(fmt.Sprintf("strategy=%s/goroutines=%d", cfg.name, g), func(b *testing.B) {
				q := NewQueue[int](cfg.opts...)
				var st obs.OpStats
				q.Instrument(&st)
				withGoroutines(b, g, func(pb *testing.PB) {
					enq := true
					for pb.Next() {
						if enq {
							q.Enqueue(1)
						} else {
							q.Dequeue()
						}
						enq = !enq
					}
				})
				reportOpStats(b, &st)
			})
		}
	}
}
