package native

import (
	"errors"
	"math"
	"sync"
	"testing"
)

func TestCASCounterSequential(t *testing.T) {
	var c CASCounter
	for i := int64(0); i < 100; i++ {
		v, steps := c.Inc()
		if v != i {
			t.Fatalf("Inc fetched %d, want %d", v, i)
		}
		if steps != 2 {
			t.Fatalf("uncontended Inc took %d steps, want 2", steps)
		}
	}
	if c.Load() != 100 {
		t.Fatalf("Load = %d, want 100", c.Load())
	}
}

func TestCASCounterConcurrentExactness(t *testing.T) {
	const (
		workers = 8
		ops     = 5000
	)
	var (
		c  CASCounter
		wg sync.WaitGroup
		mu sync.Mutex
	)
	seen := make(map[int64]bool, workers*ops)
	dup := false
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]int64, 0, ops)
			for i := 0; i < ops; i++ {
				v, _ := c.Inc()
				local = append(local, v)
			}
			mu.Lock()
			for _, v := range local {
				if seen[v] {
					dup = true
				}
				seen[v] = true
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if dup {
		t.Fatal("duplicate fetched value")
	}
	if got := c.Load(); got != workers*ops {
		t.Fatalf("final counter %d, want %d", got, workers*ops)
	}
	for v := int64(0); v < workers*ops; v++ {
		if !seen[v] {
			t.Fatalf("value %d never fetched", v)
		}
	}
}

func TestAddCounter(t *testing.T) {
	var c AddCounter
	for i := int64(0); i < 10; i++ {
		v, steps := c.Inc()
		if v != i || steps != 1 {
			t.Fatalf("Inc = (%d, %d), want (%d, 1)", v, steps, i)
		}
	}
}

func TestStackSequentialLIFO(t *testing.T) {
	var s Stack[int]
	if !s.Empty() {
		t.Fatal("new stack not empty")
	}
	for i := 0; i < 10; i++ {
		if steps := s.Push(i); steps != 2 {
			t.Fatalf("uncontended push took %d steps", steps)
		}
	}
	for i := 9; i >= 0; i-- {
		v, ok, _ := s.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = (%d, %v), want (%d, true)", v, ok, i)
		}
	}
	if _, ok, steps := s.Pop(); ok || steps != 1 {
		t.Fatalf("empty pop: ok=%v steps=%d", ok, steps)
	}
}

func TestStackConcurrentConservation(t *testing.T) {
	const (
		workers = 8
		pairs   = 2000
	)
	var (
		s  Stack[int]
		wg sync.WaitGroup
		mu sync.Mutex
	)
	popped := make(map[int]int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]int, 0, pairs)
			for i := 0; i < pairs; i++ {
				s.Push(w*pairs + i)
				if v, ok, _ := s.Pop(); ok {
					local = append(local, v)
				}
			}
			mu.Lock()
			for _, v := range local {
				popped[v]++
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	for v, c := range popped {
		if c != 1 {
			t.Fatalf("value %d popped %d times", v, c)
		}
	}
	// Drain the leftovers; total must be workers*pairs.
	total := len(popped)
	for {
		v, ok, _ := s.Pop()
		if !ok {
			break
		}
		if popped[v] != 0 {
			t.Fatalf("leftover %d already popped", v)
		}
		total++
	}
	if total != workers*pairs {
		t.Fatalf("recovered %d values, want %d", total, workers*pairs)
	}
}

func TestQueueSequentialFIFO(t *testing.T) {
	q := NewQueue[int]()
	if !q.Empty() {
		t.Fatal("new queue not empty")
	}
	for i := 0; i < 10; i++ {
		q.Enqueue(i)
	}
	for i := 0; i < 10; i++ {
		v, ok, _ := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("Dequeue = (%d, %v), want (%d, true)", v, ok, i)
		}
	}
	if _, ok, _ := q.Dequeue(); ok {
		t.Fatal("dequeue on empty queue succeeded")
	}
}

func TestQueueConcurrentConservationAndOrder(t *testing.T) {
	const (
		producers = 4
		consumers = 4
		perProd   = 3000
	)
	q := NewQueue[[2]int]() // (producer, seq)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				q.Enqueue([2]int{p, i})
			}
		}(p)
	}
	var (
		mu       sync.Mutex
		consumed [][][2]int
	)
	consumed = make([][][2]int, consumers)
	var cwg sync.WaitGroup
	done := make(chan struct{})
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func(c int) {
			defer cwg.Done()
			var local [][2]int
			for {
				v, ok, _ := q.Dequeue()
				if ok {
					local = append(local, v)
					continue
				}
				select {
				case <-done:
					// Producers finished; drain once more then stop.
					for {
						v, ok, _ := q.Dequeue()
						if !ok {
							break
						}
						local = append(local, v)
					}
					mu.Lock()
					consumed[c] = local
					mu.Unlock()
					return
				default:
				}
			}
		}(c)
	}
	wg.Wait()
	close(done)
	cwg.Wait()

	seen := make(map[[2]int]bool)
	for c, local := range consumed {
		lastSeq := make(map[int]int)
		for _, v := range local {
			if seen[v] {
				t.Fatalf("value %v dequeued twice", v)
			}
			seen[v] = true
			if prev, ok := lastSeq[v[0]]; ok && v[1] <= prev {
				t.Fatalf("consumer %d saw producer %d out of order: %d after %d",
					c, v[0], v[1], prev)
			}
			lastSeq[v[0]] = v[1]
		}
	}
	if len(seen) != producers*perProd {
		t.Fatalf("consumed %d values, want %d", len(seen), producers*perProd)
	}
}

func TestRecordScheduleValidation(t *testing.T) {
	if _, err := RecordSchedule(0, 10); !errors.Is(err, ErrBadWorkers) {
		t.Errorf("workers=0: %v", err)
	}
	if _, err := RecordSchedule(2, 0); err == nil {
		t.Error("ops=0: nil error")
	}
}

func TestRecordScheduleShares(t *testing.T) {
	const (
		workers = 4
		ops     = 20000
	)
	s, err := RecordSchedule(workers, ops)
	if err != nil {
		t.Fatal(err)
	}
	if s.Workers() != workers {
		t.Fatalf("Workers = %d", s.Workers())
	}
	if s.Len() == 0 {
		t.Fatal("empty analysis window")
	}
	shares := s.StepShares()
	var sum float64
	for _, sh := range shares {
		sum += sh
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %v", sum)
	}
	// Long-run fairness (Figure 3): every worker gets a share within
	// a loose band around 1/n. The OS scheduler is not uniform at
	// short horizons, so keep the band generous.
	for w, sh := range shares {
		if sh < 0.05 || sh > 0.6 {
			t.Fatalf("worker %d share %v grossly unfair (%v)", w, sh, shares)
		}
	}
}

func TestRecordScheduleTransitions(t *testing.T) {
	s, err := RecordSchedule(3, 5000)
	if err != nil {
		t.Fatal(err)
	}
	tc := s.TransitionCounts()
	var total uint64
	for _, row := range tc {
		for _, c := range row {
			total += c
		}
	}
	if total != uint64(s.Len()-1) {
		t.Fatalf("transition count %d, want %d", total, s.Len()-1)
	}
	if _, err := s.NextStepDistribution(-1); err == nil {
		t.Error("bad worker: nil error")
	}
	dist, err := s.NextStepDistribution(0)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range dist {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("distribution sums to %v", sum)
	}
}

func TestRecordScheduleSingleWorker(t *testing.T) {
	s, err := RecordSchedule(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	shares := s.StepShares()
	if shares[0] != 1 {
		t.Fatalf("single worker share %v, want 1", shares[0])
	}
}

func TestMeasureRateValidation(t *testing.T) {
	if _, err := MeasureRate(0, 1, func(int) Op { return nil }); !errors.Is(err, ErrBadWorkers) {
		t.Errorf("workers=0: %v", err)
	}
	if _, err := MeasureRate(1, 0, func(int) Op { return nil }); err == nil {
		t.Error("ops=0: nil error")
	}
	if _, err := MeasureRate(1, 1, nil); err == nil {
		t.Error("nil factory: nil error")
	}
	if _, err := MeasureRate(1, 1, func(int) Op { return nil }); err == nil {
		t.Error("nil op: nil error")
	}
}

func TestMeasureAddCounterRateIsOne(t *testing.T) {
	res, err := MeasureAddCounterRate(4, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rate() != 1 {
		t.Fatalf("fetch-and-add rate = %v, want exactly 1", res.Rate())
	}
	if res.Ops != 40000 || res.Steps != 40000 {
		t.Fatalf("ops=%d steps=%d", res.Ops, res.Steps)
	}
}

func TestMeasureCASCounterRateSolo(t *testing.T) {
	res, err := MeasureCASCounterRate(1, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rate() != 0.5 {
		t.Fatalf("solo CAS counter rate = %v, want 0.5 (read+CAS per op)", res.Rate())
	}
}

func TestMeasureCASCounterRateContended(t *testing.T) {
	res, err := MeasureCASCounterRate(8, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rate() > 0.5 {
		t.Fatalf("contended rate %v exceeds the uncontended maximum 0.5", res.Rate())
	}
	if res.Rate() <= 0 {
		t.Fatal("zero rate")
	}
}

func TestMeasureStackAndQueueRates(t *testing.T) {
	sres, err := MeasureStackRate(4, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Rate() <= 0 || sres.Rate() > 0.5 {
		t.Fatalf("stack rate %v out of (0, 0.5]", sres.Rate())
	}
	qres, err := MeasureQueueRate(4, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if qres.Rate() <= 0 {
		t.Fatal("queue rate zero")
	}
}

func TestRateResultZeroSteps(t *testing.T) {
	var r RateResult
	if r.Rate() != 0 {
		t.Fatal("zero-step result should report rate 0")
	}
}
