package native

import (
	"sync/atomic"

	"pwf/internal/backoff"
	"pwf/internal/obs"
)

// Queue is a Michael–Scott queue [17] on real atomics with the
// original helping step; the Go garbage collector plays the role of
// the reclamation scheme, as in the paper's experimental setting.
// NewQueue with WithBackoff paces the retry loop after failed CAS
// attempts and helping detours; with no options the queue retries
// back to back as before.
type Queue[T any] struct {
	head  atomic.Pointer[queueNode[T]]
	tail  atomic.Pointer[queueNode[T]]
	stats *obs.OpStats
	bo    backoff.Strategy
}

// Instrument attaches wait-free per-operation telemetry (steps, retry
// distribution including helping detours, CAS failures) shared by
// every goroutine using the queue. Pass nil to detach. Not safe to
// call concurrently with Enqueue/Dequeue.
func (q *Queue[T]) Instrument(st *obs.OpStats) { q.stats = st }

type queueNode[T any] struct {
	value T
	next  atomic.Pointer[queueNode[T]]
}

// NewQueue builds an empty queue with its initial dummy node,
// configured by opts (WithBackoff).
func NewQueue[T any](opts ...Option) *Queue[T] {
	q := &Queue[T]{bo: applyOptions(opts).backoff}
	dummy := &queueNode[T]{}
	q.head.Store(dummy)
	q.tail.Store(dummy)
	return q
}

// Enqueue appends v and returns the number of shared-memory steps.
func (q *Queue[T]) Enqueue(v T) (steps uint64) {
	n := &queueNode[T]{value: v}
	var fails uint64
	for {
		tail := q.tail.Load()
		steps++
		next := tail.next.Load()
		steps++
		if next != nil {
			// Tail lags: help swing it and retry.
			q.tail.CompareAndSwap(tail, next)
			steps++
			fails++
			if q.bo != nil {
				q.bo.Pause(fails)
			}
			continue
		}
		if tail.next.CompareAndSwap(nil, n) {
			steps++
			// Best-effort swing; failure is fine (someone helped).
			q.tail.CompareAndSwap(tail, n)
			steps++
			if q.bo != nil {
				q.bo.Succeeded()
			}
			if q.stats != nil {
				q.stats.ObserveOp(steps, fails)
			}
			return steps
		}
		steps++
		fails++
		if q.bo != nil {
			q.bo.Pause(fails)
		}
	}
}

// Dequeue removes and returns the oldest value; ok is false when the
// queue is empty. steps counts shared-memory operations.
func (q *Queue[T]) Dequeue() (v T, ok bool, steps uint64) {
	var fails uint64
	for {
		head := q.head.Load()
		steps++
		tail := q.tail.Load()
		steps++
		next := head.next.Load()
		steps++
		if head == tail {
			if next == nil {
				if q.bo != nil {
					q.bo.Succeeded()
				}
				if q.stats != nil {
					q.stats.ObserveOp(steps, fails)
				}
				return v, false, steps
			}
			// Tail lags: help.
			q.tail.CompareAndSwap(tail, next)
			steps++
			fails++
			if q.bo != nil {
				q.bo.Pause(fails)
			}
			continue
		}
		value := next.value
		if q.head.CompareAndSwap(head, next) {
			steps++
			if q.bo != nil {
				q.bo.Succeeded()
			}
			if q.stats != nil {
				q.stats.ObserveOp(steps, fails)
			}
			return value, true, steps
		}
		steps++
		fails++
		if q.bo != nil {
			q.bo.Pause(fails)
		}
	}
}

// Empty reports whether the queue looked empty at the moment of the
// call.
func (q *Queue[T]) Empty() bool {
	head := q.head.Load()
	return head.next.Load() == nil
}
