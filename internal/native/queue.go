package native

import "sync/atomic"

// Queue is a Michael–Scott queue [17] on real atomics with the
// original helping step; the Go garbage collector plays the role of
// the reclamation scheme, as in the paper's experimental setting.
type Queue[T any] struct {
	head atomic.Pointer[queueNode[T]]
	tail atomic.Pointer[queueNode[T]]
}

type queueNode[T any] struct {
	value T
	next  atomic.Pointer[queueNode[T]]
}

// NewQueue builds an empty queue with its initial dummy node.
func NewQueue[T any]() *Queue[T] {
	q := &Queue[T]{}
	dummy := &queueNode[T]{}
	q.head.Store(dummy)
	q.tail.Store(dummy)
	return q
}

// Enqueue appends v and returns the number of shared-memory steps.
func (q *Queue[T]) Enqueue(v T) (steps uint64) {
	n := &queueNode[T]{value: v}
	for {
		tail := q.tail.Load()
		steps++
		next := tail.next.Load()
		steps++
		if next != nil {
			// Tail lags: help swing it and retry.
			q.tail.CompareAndSwap(tail, next)
			steps++
			continue
		}
		if tail.next.CompareAndSwap(nil, n) {
			steps++
			// Best-effort swing; failure is fine (someone helped).
			q.tail.CompareAndSwap(tail, n)
			steps++
			return steps
		}
		steps++
	}
}

// Dequeue removes and returns the oldest value; ok is false when the
// queue is empty. steps counts shared-memory operations.
func (q *Queue[T]) Dequeue() (v T, ok bool, steps uint64) {
	for {
		head := q.head.Load()
		steps++
		tail := q.tail.Load()
		steps++
		next := head.next.Load()
		steps++
		if head == tail {
			if next == nil {
				return v, false, steps
			}
			// Tail lags: help.
			q.tail.CompareAndSwap(tail, next)
			steps++
			continue
		}
		value := next.value
		if q.head.CompareAndSwap(head, next) {
			steps++
			return value, true, steps
		}
		steps++
	}
}

// Empty reports whether the queue looked empty at the moment of the
// call.
func (q *Queue[T]) Empty() bool {
	head := q.head.Load()
	return head.next.Load() == nil
}
