package native

import (
	"runtime"

	"pwf/internal/backoff"
)

// Option configures a native structure at construction time. The
// zero-value structures (and NewQueue with no options) behave exactly
// as they always have: no backoff, no elimination, no sharding.
// Options a structure does not support are ignored, so one option
// slice can configure a whole experiment's worth of structures.
type Option func(*structConfig)

type structConfig struct {
	backoff backoff.Strategy
	elim    int
	shards  int
	batch   int64
	seed    uint64
}

func applyOptions(opts []Option) structConfig {
	cfg := structConfig{seed: 1}
	for _, opt := range opts {
		if opt != nil {
			opt(&cfg)
		}
	}
	return cfg
}

// WithBackoff paces the structure's retry loop with s after every
// failed CAS (see internal/backoff). A nil strategy means no backoff.
func WithBackoff(s backoff.Strategy) Option {
	return func(c *structConfig) { c.backoff = s }
}

// WithElimination gives a Stack an elimination array of the given
// number of slots: colliding push/pop pairs exchange values on a
// random slot instead of retrying on the hot top-of-stack word.
// slots <= 0 disables elimination.
func WithElimination(slots int) Option {
	return func(c *structConfig) { c.elim = slots }
}

// WithShards sets a ShardedCounter's shard count. shards <= 0 selects
// one shard per available CPU.
func WithShards(shards int) Option {
	return func(c *structConfig) { c.shards = shards }
}

// WithBatch sets a ShardedCounter's reconcile batch: a shard folds its
// local increments into the shared total once per batch increments.
// batch <= 0 selects DefaultBatch.
func WithBatch(batch int) Option {
	return func(c *structConfig) { c.batch = int64(batch) }
}

// WithSeed seeds the structure's deterministic randomness (the
// elimination array's slot picks). The default seed is 1.
func WithSeed(seed uint64) Option {
	return func(c *structConfig) { c.seed = seed }
}

func (c structConfig) shardCount() int {
	if c.shards > 0 {
		return c.shards
	}
	return runtime.GOMAXPROCS(0)
}
