// Package native provides real-hardware counterparts of the simulated
// algorithms, built on goroutines and sync/atomic: the CAS-loop
// fetch-and-increment counter of Appendix B, a wait-free fetch-and-add
// baseline, a Treiber stack and a Michael–Scott queue, the
// atomic-ticket schedule recorder of Appendix A.2 (method 1), and the
// completion-rate harness behind Figure 5.
//
// Shared-memory steps are counted per goroutine (reads and CAS
// attempts), so the measured completion rate is completions per step,
// directly comparable with the simulator and with the paper's
// Θ(1/√n) prediction.
package native

import (
	"errors"
	"sync/atomic"

	"pwf/internal/backoff"
	"pwf/internal/obs"
)

// ErrBadWorkers is returned for non-positive worker counts.
var ErrBadWorkers = errors.New("native: need at least one worker")

// CASCounter is the lock-free fetch-and-increment counter measured in
// Appendix B: read the value, then try to install value+1 with CAS,
// retrying on failure. It is lock-free but not wait-free. The zero
// value retries back to back; NewCASCounter with WithBackoff paces the
// retry loop.
type CASCounter struct {
	v     atomic.Int64
	stats *obs.OpStats
	bo    backoff.Strategy
}

// NewCASCounter builds a counter configured by opts (WithBackoff).
// With no options it is equivalent to the zero value.
func NewCASCounter(opts ...Option) *CASCounter {
	return &CASCounter{bo: applyOptions(opts).backoff}
}

// Instrument attaches wait-free per-operation telemetry (steps, retry
// distribution, CAS failures). Pass nil to detach. The stats path
// itself is wait-free fetch-and-add, so instrumentation cannot break
// the progress properties under measurement; uninstrumented, the only
// cost is one nil check per operation. Not safe to call concurrently
// with Inc.
func (c *CASCounter) Instrument(st *obs.OpStats) { c.stats = st }

// Inc increments the counter and returns the fetched (pre-increment)
// value along with the number of shared-memory steps the operation
// took (each loop iteration costs one read and one CAS).
func (c *CASCounter) Inc() (value int64, steps uint64) {
	var fails uint64
	for {
		v := c.v.Load()
		steps++
		if c.v.CompareAndSwap(v, v+1) {
			steps++
			if c.bo != nil {
				c.bo.Succeeded()
			}
			if c.stats != nil {
				c.stats.ObserveOp(steps, fails)
			}
			return v, steps
		}
		steps++
		fails++
		if c.bo != nil {
			c.bo.Pause(fails)
		}
	}
}

// Load returns the current counter value.
func (c *CASCounter) Load() int64 { return c.v.Load() }

// AddCounter is the wait-free baseline: hardware fetch-and-add. Every
// operation takes exactly one step.
type AddCounter struct {
	v     atomic.Int64
	stats *obs.OpStats
}

// Instrument attaches wait-free per-operation telemetry; see
// CASCounter.Instrument.
func (c *AddCounter) Instrument(st *obs.OpStats) { c.stats = st }

// Inc increments and returns the fetched value; always one step.
func (c *AddCounter) Inc() (value int64, steps uint64) {
	v := c.v.Add(1) - 1
	if c.stats != nil {
		c.stats.ObserveOp(1, 0)
	}
	return v, 1
}

// Load returns the current counter value.
func (c *AddCounter) Load() int64 { return c.v.Load() }

// DefaultBatch is the reconcile batch used by NewShardedCounter when
// WithBatch is not given.
const DefaultBatch = 64

// ShardedCounter trades the read exactness of a single fetch-and-add
// word for contention-free increments: each increment is one wait-free
// fetch-and-add on a cache-line-padded shard cell, and once per batch
// increments the shard reconciles — folds a whole batch into the
// shared total with a single fetch-and-add. The shared word therefore
// sees 1/batch of the traffic while every increment stays wait-free
// with at most two steps.
//
// Semantics versus CASCounter: Inc still hands out globally unique
// values — shard i dispenses the arithmetic progression i, i+k,
// i+2k, ... for k shards — but consecutive values are spread across
// shards rather than issued in global arrival order, and Load returns
// the reconciled total, which lags the true increment count by roughly
// k*(batch-1) (exactly that bound in quiescence; transiently more if a
// best-effort fold loses its CAS). Exact sums the shard cells directly
// (k reads; exact only in quiescence).
type ShardedCounter struct {
	total  atomic.Int64
	batch  int64
	shards []counterShard
	stats  *obs.OpStats
}

// counterShard is a per-shard increment cell plus the high-water mark
// of increments already folded into the shared total, padded to a
// cache line so neighbouring shards do not false-share.
type counterShard struct {
	n       atomic.Int64
	flushed atomic.Int64
	_       [48]byte
}

// NewShardedCounter builds a sharded counter configured by opts
// (WithShards, WithBatch). The default shard count is one per
// available CPU and the default batch is DefaultBatch.
func NewShardedCounter(opts ...Option) *ShardedCounter {
	cfg := applyOptions(opts)
	batch := cfg.batch
	if batch <= 0 {
		batch = DefaultBatch
	}
	return &ShardedCounter{
		batch:  batch,
		shards: make([]counterShard, cfg.shardCount()),
	}
}

// Instrument attaches wait-free per-operation telemetry; see
// CASCounter.Instrument.
func (c *ShardedCounter) Instrument(st *obs.OpStats) { c.stats = st }

// Shards returns the shard count.
func (c *ShardedCounter) Shards() int { return len(c.shards) }

// Inc increments via the given shard (callers spread goroutines across
// shards, e.g. worker % Shards(); any goroutine may use any shard) and
// returns a globally unique value plus the number of shared-memory
// steps: one for the shard cell, plus one more on the operations that
// reconcile a full batch into the total.
func (c *ShardedCounter) Inc(shard int) (value int64, steps uint64) {
	k := len(c.shards)
	if shard < 0 {
		shard = -shard
	}
	shard %= k
	seq := c.shards[shard].n.Add(1) - 1
	steps = 1
	if (seq+1)%c.batch == 0 {
		steps += c.flush(shard, seq+1)
	}
	if c.stats != nil {
		c.stats.ObserveOp(steps, 0)
	}
	return seq*int64(k) + int64(shard), steps
}

// flush advances shard's folded high-water mark to target (if it still
// lags) and adds the advance to the shared total. The CAS is a single
// best-effort attempt — a concurrent flush is already doing the work —
// so flush is wait-free; the watermark moves only forward, so the
// total never double-counts an increment.
func (c *ShardedCounter) flush(shard int, target int64) (steps uint64) {
	sh := &c.shards[shard]
	f := sh.flushed.Load()
	steps++
	if target <= f {
		return steps
	}
	if sh.flushed.CompareAndSwap(f, target) {
		steps++
		c.total.Add(target - f)
		steps++
	} else {
		steps++
	}
	return steps
}

// Load returns the reconciled total: a lower bound on the number of
// increments, trailing the truth by roughly Shards()*(batch-1).
func (c *ShardedCounter) Load() int64 { return c.total.Load() }

// Exact returns the sum of all shard cells. It reads each shard once
// (no snapshot): with increments in flight the result is some value
// between the count at the start and at the end of the scan; in
// quiescence it is the exact increment count.
func (c *ShardedCounter) Exact() int64 {
	var sum int64
	for i := range c.shards {
		sum += c.shards[i].n.Load()
	}
	return sum
}

// Reconcile folds every shard's unreconciled remainder into the total
// so that Load catches up with Exact as of the scan. It is safe to run
// concurrently with Inc — the per-shard watermark CAS ensures every
// increment is folded exactly once — though increments landing during
// the scan may or may not be included.
func (c *ShardedCounter) Reconcile() int64 {
	for i := range c.shards {
		c.flush(i, c.shards[i].n.Load())
	}
	return c.total.Load()
}
