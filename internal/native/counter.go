// Package native provides real-hardware counterparts of the simulated
// algorithms, built on goroutines and sync/atomic: the CAS-loop
// fetch-and-increment counter of Appendix B, a wait-free fetch-and-add
// baseline, a Treiber stack and a Michael–Scott queue, the
// atomic-ticket schedule recorder of Appendix A.2 (method 1), and the
// completion-rate harness behind Figure 5.
//
// Shared-memory steps are counted per goroutine (reads and CAS
// attempts), so the measured completion rate is completions per step,
// directly comparable with the simulator and with the paper's
// Θ(1/√n) prediction.
package native

import (
	"errors"
	"sync/atomic"
)

// ErrBadWorkers is returned for non-positive worker counts.
var ErrBadWorkers = errors.New("native: need at least one worker")

// CASCounter is the lock-free fetch-and-increment counter measured in
// Appendix B: read the value, then try to install value+1 with CAS,
// retrying on failure. It is lock-free but not wait-free.
type CASCounter struct {
	v atomic.Int64
}

// Inc increments the counter and returns the fetched (pre-increment)
// value along with the number of shared-memory steps the operation
// took (each loop iteration costs one read and one CAS).
func (c *CASCounter) Inc() (value int64, steps uint64) {
	for {
		v := c.v.Load()
		steps++
		if c.v.CompareAndSwap(v, v+1) {
			steps++
			return v, steps
		}
		steps++
	}
}

// Load returns the current counter value.
func (c *CASCounter) Load() int64 { return c.v.Load() }

// AddCounter is the wait-free baseline: hardware fetch-and-add. Every
// operation takes exactly one step.
type AddCounter struct {
	v atomic.Int64
}

// Inc increments and returns the fetched value; always one step.
func (c *AddCounter) Inc() (value int64, steps uint64) {
	return c.v.Add(1) - 1, 1
}

// Load returns the current counter value.
func (c *AddCounter) Load() int64 { return c.v.Load() }
