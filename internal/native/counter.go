// Package native provides real-hardware counterparts of the simulated
// algorithms, built on goroutines and sync/atomic: the CAS-loop
// fetch-and-increment counter of Appendix B, a wait-free fetch-and-add
// baseline, a Treiber stack and a Michael–Scott queue, the
// atomic-ticket schedule recorder of Appendix A.2 (method 1), and the
// completion-rate harness behind Figure 5.
//
// Shared-memory steps are counted per goroutine (reads and CAS
// attempts), so the measured completion rate is completions per step,
// directly comparable with the simulator and with the paper's
// Θ(1/√n) prediction.
package native

import (
	"errors"
	"sync/atomic"

	"pwf/internal/obs"
)

// ErrBadWorkers is returned for non-positive worker counts.
var ErrBadWorkers = errors.New("native: need at least one worker")

// CASCounter is the lock-free fetch-and-increment counter measured in
// Appendix B: read the value, then try to install value+1 with CAS,
// retrying on failure. It is lock-free but not wait-free.
type CASCounter struct {
	v     atomic.Int64
	stats *obs.OpStats
}

// Instrument attaches wait-free per-operation telemetry (steps, retry
// distribution, CAS failures). Pass nil to detach. The stats path
// itself is wait-free fetch-and-add, so instrumentation cannot break
// the progress properties under measurement; uninstrumented, the only
// cost is one nil check per operation. Not safe to call concurrently
// with Inc.
func (c *CASCounter) Instrument(st *obs.OpStats) { c.stats = st }

// Inc increments the counter and returns the fetched (pre-increment)
// value along with the number of shared-memory steps the operation
// took (each loop iteration costs one read and one CAS).
func (c *CASCounter) Inc() (value int64, steps uint64) {
	var fails uint64
	for {
		v := c.v.Load()
		steps++
		if c.v.CompareAndSwap(v, v+1) {
			steps++
			if c.stats != nil {
				c.stats.ObserveOp(steps, fails)
			}
			return v, steps
		}
		steps++
		fails++
	}
}

// Load returns the current counter value.
func (c *CASCounter) Load() int64 { return c.v.Load() }

// AddCounter is the wait-free baseline: hardware fetch-and-add. Every
// operation takes exactly one step.
type AddCounter struct {
	v     atomic.Int64
	stats *obs.OpStats
}

// Instrument attaches wait-free per-operation telemetry; see
// CASCounter.Instrument.
func (c *AddCounter) Instrument(st *obs.OpStats) { c.stats = st }

// Inc increments and returns the fetched value; always one step.
func (c *AddCounter) Inc() (value int64, steps uint64) {
	v := c.v.Add(1) - 1
	if c.stats != nil {
		c.stats.ObserveOp(1, 0)
	}
	return v, 1
}

// Load returns the current counter value.
func (c *AddCounter) Load() int64 { return c.v.Load() }
