package native

import (
	"sync"
	"testing"

	"pwf/internal/obs"
)

// TestRateMeasurementsRecordOpStats drives every instrumented
// structure through its Measure*Rate entry point with a shared
// OpStats and checks the wait-free totals line up with the
// measurement's own accounting. Run under -race this doubles as the
// proof that concurrent recording into the shared histograms is safe.
func TestRateMeasurementsRecordOpStats(t *testing.T) {
	const (
		workers = 4
		ops     = 5000
	)
	measures := map[string]func(w, o int, opts ...RateOption) (RateResult, error){
		"counter": MeasureCASCounterRate,
		"add":     MeasureAddCounterRate,
		"stack":   MeasureStackRate,
		"queue":   MeasureQueueRate,
	}
	for name, measure := range measures {
		name, measure := name, measure
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var st obs.OpStats
			res, err := measure(workers, ops, WithOpStats(&st))
			if err != nil {
				t.Fatal(err)
			}
			if got := st.Ops.Load(); got != res.Ops {
				t.Errorf("ops recorded %d, measured %d", got, res.Ops)
			}
			if got := st.Steps.Sum(); got != res.Steps {
				t.Errorf("steps recorded %d, measured %d", got, res.Steps)
			}
			if st.Retries.Count() != res.Ops {
				t.Errorf("retry histogram has %d entries, want one per op (%d)",
					st.Retries.Count(), res.Ops)
			}
			if name == "add" && st.CASFailures.Load() != 0 {
				t.Errorf("wait-free add counter recorded %d CAS failures",
					st.CASFailures.Load())
			}
		})
	}
}

// TestSharedOpStatsAcrossStructures records into one OpStats from
// goroutines hammering two different structures at once — the
// registry-level aggregation case.
func TestSharedOpStatsAcrossStructures(t *testing.T) {
	const perWorker = 2000
	var st obs.OpStats
	var s Stack[int]
	var c CASCounter
	s.Instrument(&st)
	c.Instrument(&st)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if w%2 == 0 {
					s.Push(i)
				} else {
					c.Inc()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := st.Ops.Load(); got != 4*perWorker {
		t.Errorf("ops = %d, want %d", got, 4*perWorker)
	}
	if st.Steps.Sum() < 4*perWorker {
		t.Errorf("steps sum %d below op count", st.Steps.Sum())
	}
}
