package native

import (
	"errors"
	"sync"
	"time"

	"pwf/internal/obs"
)

// RateResult reports a completion-rate measurement (Appendix B): the
// number of completed operations versus the total number of
// shared-memory steps taken by all workers.
type RateResult struct {
	Workers int
	Ops     uint64
	Steps   uint64
	Elapsed time.Duration
}

// Rate returns completions per shared-memory step — the Figure 5
// y-axis, which approximates the inverse of the system latency.
func (r RateResult) Rate() float64 {
	if r.Steps == 0 {
		return 0
	}
	return float64(r.Ops) / float64(r.Steps)
}

// Op performs one operation and returns the number of shared-memory
// steps it took.
type Op func() (steps uint64)

// MeasureRate runs `workers` goroutines, each executing op
// opsPerWorker times, and aggregates completions and steps. makeOp is
// invoked once per worker so per-worker state (e.g. RNG) stays local.
func MeasureRate(workers, opsPerWorker int, makeOp func(worker int) Op) (RateResult, error) {
	if workers < 1 {
		return RateResult{}, ErrBadWorkers
	}
	if opsPerWorker < 1 {
		return RateResult{}, errors.New("native: need at least one op per worker")
	}
	if makeOp == nil {
		return RateResult{}, errors.New("native: nil op factory")
	}

	var (
		wg       sync.WaitGroup
		perSteps = make([]uint64, workers)
		start    = make(chan struct{})
	)
	for w := 0; w < workers; w++ {
		op := makeOp(w)
		if op == nil {
			return RateResult{}, errors.New("native: op factory returned nil")
		}
		wg.Add(1)
		go func(w int, op Op) {
			defer wg.Done()
			<-start
			var steps uint64
			for i := 0; i < opsPerWorker; i++ {
				steps += op()
			}
			perSteps[w] = steps
		}(w, op)
	}
	began := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(began)

	res := RateResult{
		Workers: workers,
		Ops:     uint64(workers) * uint64(opsPerWorker),
		Elapsed: elapsed,
	}
	for _, s := range perSteps {
		res.Steps += s
	}
	return res, nil
}

// RateOption configures one of the concrete Measure*Rate
// measurements.
type RateOption func(*rateConfig)

type rateConfig struct {
	stats      *obs.OpStats
	structOpts []Option
}

// WithOpStats instruments the measured structure with shared wait-free
// per-operation telemetry (steps, retry distribution, CAS failures),
// recorded concurrently by every worker.
func WithOpStats(st *obs.OpStats) RateOption {
	return func(c *rateConfig) { c.stats = st }
}

// WithStructOptions forwards structure construction options
// (WithBackoff, WithElimination, WithShards, ...) to the structure
// under measurement; options the structure does not support are
// ignored.
func WithStructOptions(opts ...Option) RateOption {
	return func(c *rateConfig) { c.structOpts = append(c.structOpts, opts...) }
}

func applyRateOptions(opts []RateOption) rateConfig {
	var cfg rateConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// MeasureCASCounterRate measures the CAS-loop counter of Appendix B.
func MeasureCASCounterRate(workers, opsPerWorker int, opts ...RateOption) (RateResult, error) {
	cfg := applyRateOptions(opts)
	c := NewCASCounter(cfg.structOpts...)
	c.Instrument(cfg.stats)
	return MeasureRate(workers, opsPerWorker, func(int) Op {
		return func() uint64 {
			_, steps := c.Inc()
			return steps
		}
	})
}

// MeasureShardedCounterRate measures the sharded counter with its
// batched reconcile path. Worker w increments through shard
// w % Shards(), so with shards >= workers the shared-memory traffic is
// one fetch-and-add on a private line plus one reconcile per batch.
func MeasureShardedCounterRate(workers, opsPerWorker int, opts ...RateOption) (RateResult, error) {
	cfg := applyRateOptions(opts)
	c := NewShardedCounter(cfg.structOpts...)
	c.Instrument(cfg.stats)
	return MeasureRate(workers, opsPerWorker, func(w int) Op {
		shard := w % c.Shards()
		return func() uint64 {
			_, steps := c.Inc(shard)
			return steps
		}
	})
}

// MeasureAddCounterRate measures the wait-free fetch-and-add baseline
// (rate exactly 1, independent of contention).
func MeasureAddCounterRate(workers, opsPerWorker int, opts ...RateOption) (RateResult, error) {
	var c AddCounter
	c.Instrument(applyRateOptions(opts).stats)
	// Backoff/sharding options are meaningless for the wait-free
	// baseline and are ignored.
	return MeasureRate(workers, opsPerWorker, func(int) Op {
		return func() uint64 {
			_, steps := c.Inc()
			return steps
		}
	})
}

// MeasureStackRate measures a Treiber stack under an alternating
// push/pop workload.
func MeasureStackRate(workers, opsPerWorker int, opts ...RateOption) (RateResult, error) {
	cfg := applyRateOptions(opts)
	s := NewStack[int](cfg.structOpts...)
	s.Instrument(cfg.stats)
	return MeasureRate(workers, opsPerWorker, func(w int) Op {
		push := true
		return func() uint64 {
			var steps uint64
			if push {
				steps = s.Push(w)
			} else {
				_, _, steps = s.Pop()
			}
			push = !push
			return steps
		}
	})
}

// MeasureQueueRate measures a Michael–Scott queue under an
// alternating enqueue/dequeue workload.
func MeasureQueueRate(workers, opsPerWorker int, opts ...RateOption) (RateResult, error) {
	cfg := applyRateOptions(opts)
	q := NewQueue[int](cfg.structOpts...)
	q.Instrument(cfg.stats)
	return MeasureRate(workers, opsPerWorker, func(w int) Op {
		enq := true
		return func() uint64 {
			var steps uint64
			if enq {
				steps = q.Enqueue(w)
			} else {
				_, _, steps = q.Dequeue()
			}
			enq = !enq
			return steps
		}
	})
}
