package native

import (
	"runtime"
	"testing"
)

func BenchmarkCASCounterInc(b *testing.B) {
	var c CASCounter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkAddCounterInc(b *testing.B) {
	var c AddCounter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkStackPushPop(b *testing.B) {
	var s Stack[int]
	b.RunParallel(func(pb *testing.PB) {
		push := true
		for pb.Next() {
			if push {
				s.Push(1)
			} else {
				s.Pop()
			}
			push = !push
		}
	})
}

func BenchmarkQueueEnqDeq(b *testing.B) {
	q := NewQueue[int]()
	b.RunParallel(func(pb *testing.PB) {
		enq := true
		for pb.Next() {
			if enq {
				q.Enqueue(1)
			} else {
				q.Dequeue()
			}
			enq = !enq
		}
	})
}

func BenchmarkRecordSchedule(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	for i := 0; i < b.N; i++ {
		if _, err := RecordSchedule(workers, 1000); err != nil {
			b.Fatal(err)
		}
	}
}
