package native

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Schedule is a recovered total order of steps taken by concurrent
// workers, recorded with the paper's preferred method (Appendix A.2):
// each worker repeatedly performs an atomic fetch-and-increment on a
// shared ticket counter and logs the tickets it received; sorting the
// tickets recovers the global interleaving.
type Schedule struct {
	workers int
	order   []int32 // order[k] = worker that took global step k
}

// RecordSchedule runs `workers` goroutines, each drawing
// opsPerWorker tickets from a shared atomic counter, and returns the
// recovered schedule. To avoid start-up and drain skew, the recovered
// order is trimmed to the window in which every worker is active
// (from the latest first-ticket to the earliest last-ticket).
func RecordSchedule(workers, opsPerWorker int) (*Schedule, error) {
	if workers < 1 {
		return nil, ErrBadWorkers
	}
	if opsPerWorker < 1 {
		return nil, errors.New("native: need at least one op per worker")
	}

	var (
		ticket  atomic.Uint64
		wg      sync.WaitGroup
		tickets = make([][]uint64, workers)
		start   = make(chan struct{})
	)
	for w := 0; w < workers; w++ {
		tickets[w] = make([]uint64, opsPerWorker)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			mine := tickets[w]
			for i := range mine {
				mine[i] = ticket.Add(1)
			}
		}(w)
	}
	close(start)
	wg.Wait()

	total := uint64(workers) * uint64(opsPerWorker)
	order := make([]int32, total)
	var (
		windowLo uint64 = 1     // latest first ticket
		windowHi        = total // earliest last ticket
	)
	for w, mine := range tickets {
		if first := mine[0]; first > windowLo {
			windowLo = first
		}
		if last := mine[len(mine)-1]; last < windowHi {
			windowHi = last
		}
		for _, tk := range mine {
			order[tk-1] = int32(w)
		}
	}
	if windowHi < windowLo {
		// Degenerate (e.g. one op per worker): keep everything.
		windowLo, windowHi = 1, total
	}
	return &Schedule{
		workers: workers,
		order:   order[windowLo-1 : windowHi],
	}, nil
}

// Workers returns the number of workers in the schedule.
func (s *Schedule) Workers() int { return s.workers }

// Order returns a copy of the recovered step order (worker id per
// global step). Feed it to sched.NewReplay to drive the simulator
// with this real-machine schedule.
func (s *Schedule) Order() []int32 {
	out := make([]int32, len(s.order))
	copy(out, s.order)
	return out
}

// Len returns the number of recorded steps in the analysis window.
func (s *Schedule) Len() int { return len(s.order) }

// StepShares returns each worker's fraction of the recorded steps —
// the quantity of Figure 3.
func (s *Schedule) StepShares() []float64 {
	counts := make([]uint64, s.workers)
	for _, w := range s.order {
		counts[w]++
	}
	out := make([]float64, s.workers)
	if len(s.order) == 0 {
		return out
	}
	for w, c := range counts {
		out[w] = float64(c) / float64(len(s.order))
	}
	return out
}

// StepCounts returns each worker's recorded step count.
func (s *Schedule) StepCounts() []int {
	counts := make([]int, s.workers)
	for _, w := range s.order {
		counts[w]++
	}
	return counts
}

// TransitionCounts returns the matrix T with T[i][j] counting steps by
// worker j immediately following a step by worker i.
func (s *Schedule) TransitionCounts() [][]uint64 {
	t := make([][]uint64, s.workers)
	for i := range t {
		t[i] = make([]uint64, s.workers)
	}
	for k := 1; k < len(s.order); k++ {
		t[s.order[k-1]][s.order[k]]++
	}
	return t
}

// NextStepDistribution returns the empirical distribution of the
// worker scheduled immediately after a step by `from` — the quantity
// of Figure 4.
func (s *Schedule) NextStepDistribution(from int) ([]float64, error) {
	if from < 0 || from >= s.workers {
		return nil, fmt.Errorf("native: worker %d out of range", from)
	}
	t := s.TransitionCounts()
	var total uint64
	for _, c := range t[from] {
		total += c
	}
	if total == 0 {
		return nil, fmt.Errorf("native: no transitions recorded from worker %d", from)
	}
	out := make([]float64, s.workers)
	for j, c := range t[from] {
		out[j] = float64(c) / float64(total)
	}
	return out, nil
}
