package sweep

import (
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// testGrid is a mixed-family grid exercising every determinism-relevant
// code path: several workloads, schedulers, process counts and warmup
// fractions.
func testGrid() []Job {
	var jobs []Job
	for _, n := range []int{2, 4, 8} {
		jobs = append(jobs,
			Job{Workload: Workload{Kind: SCU, S: 1}, N: n, Steps: 20000,
				WarmupFraction: DefaultWarmupFraction, Exact: true},
			Job{Workload: Workload{Kind: FetchInc}, N: n, Steps: 20000, Exact: true},
			Job{Workload: Workload{Kind: Parallel, Q: 3}, N: n, Steps: 10000,
				Sched: SchedulerSpec{Kind: SchedSticky, Rho: 0.5}},
			Job{Workload: Workload{Kind: Stack}, N: n, Steps: 10000,
				WarmupFraction: 0.25},
		)
	}
	return jobs
}

// stripElapsed zeroes the wall-time field, the only legitimately
// nondeterministic part of a result.
func stripElapsed(results []Result) []Result {
	out := make([]Result, len(results))
	copy(out, results)
	for i := range out {
		out[i].Elapsed = 0
	}
	return out
}

func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	jobs := testGrid()
	serial, err := Run(Config{Jobs: jobs, Seed: 42, Workers: 1, Cache: NewChainCache()})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(Config{Jobs: jobs, Seed: 42, Workers: 8, Cache: NewChainCache()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripElapsed(serial), stripElapsed(parallel)) {
		for i := range serial {
			if !reflect.DeepEqual(stripElapsed(serial[i:i+1]), stripElapsed(parallel[i:i+1])) {
				t.Errorf("job %d diverged:\n  serial:   %+v\n  parallel: %+v",
					i, serial[i], parallel[i])
			}
		}
		t.Fatal("sweep results differ between 1 and 8 workers")
	}
}

func TestSweepResultsInInputOrder(t *testing.T) {
	jobs := testGrid()
	results, err := Run(Config{Jobs: jobs, Seed: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("%d results for %d jobs", len(results), len(jobs))
	}
	for i, res := range results {
		if res.Index != i {
			t.Errorf("result %d has index %d", i, res.Index)
		}
		if res.Job.N != jobs[i].N || res.Job.Workload.Kind != jobs[i].Workload.Kind {
			t.Errorf("result %d does not echo job %d", i, i)
		}
		if res.Latencies.Completions == 0 {
			t.Errorf("job %d measured zero completions", i)
		}
		if len(res.ProcCompletions) != jobs[i].N {
			t.Errorf("job %d: %d per-process counts for n=%d",
				i, len(res.ProcCompletions), jobs[i].N)
		}
	}
}

func TestSweepSeedsFollowStreamDerivation(t *testing.T) {
	// Changing the master seed must change every job's derived seed,
	// and two identical jobs at different indices must draw different
	// seeds (they are distinct stream indices).
	jobs := []Job{
		{Workload: Workload{Kind: FetchInc}, N: 2, Steps: 5000},
		{Workload: Workload{Kind: FetchInc}, N: 2, Steps: 5000},
	}
	results, err := Run(Config{Jobs: jobs, Seed: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Seed == results[1].Seed {
		t.Error("identical jobs at different indices share a seed")
	}
	again, err := Run(Config{Jobs: jobs, Seed: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if again[0].Seed == results[0].Seed {
		t.Error("different master seeds derived the same job seed")
	}
}

func TestSweepExactLatencies(t *testing.T) {
	jobs := []Job{
		{Workload: Workload{Kind: SCU, S: 1}, N: 4, Steps: 5000, Exact: true},
		{Workload: Workload{Kind: FetchInc}, N: 4, Steps: 5000, Exact: true},
		{Workload: Workload{Kind: Parallel, Q: 2}, N: 3, Steps: 5000, Exact: true},
		{Workload: Workload{Kind: Stack}, N: 4, Steps: 5000, Exact: true},
		{Workload: Workload{Kind: SCU, S: 1}, N: 4, Steps: 5000},
	}
	results, err := Run(Config{Jobs: jobs, Seed: 3, Workers: 2, Cache: NewChainCache()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !results[i].ExactOK {
			t.Errorf("job %d: exact latency unavailable", i)
		}
	}
	// Lemma 11: parallel code has W exactly q.
	if w := results[2].Exact; math.Abs(w-2) > 1e-9 {
		t.Errorf("parallel exact W = %v, want 2", w)
	}
	// No chain family for the stack; not requested for the last job.
	if results[3].ExactOK || results[4].ExactOK {
		t.Error("exact latency reported where none was available or requested")
	}
}

func TestSweepProgressCallback(t *testing.T) {
	jobs := testGrid()
	var mu sync.Mutex
	var calls []int
	_, err := Run(Config{
		Jobs: jobs, Seed: 1, Workers: 4,
		Progress: func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			if total != len(jobs) {
				t.Errorf("progress total %d, want %d", total, len(jobs))
			}
			calls = append(calls, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != len(jobs) {
		t.Fatalf("%d progress calls for %d jobs", len(calls), len(jobs))
	}
	for i, done := range calls {
		if done != i+1 {
			t.Fatalf("progress calls out of order: %v", calls)
		}
	}
}

func TestSweepValidation(t *testing.T) {
	base := Job{Workload: Workload{Kind: SCU, S: 1}, N: 4, Steps: 1000}
	bad := []Job{
		{},
		{Workload: Workload{Kind: "nope"}, N: 4, Steps: 1000},
		{Workload: Workload{Kind: SCU, S: 1}, N: 0, Steps: 1000},
		{Workload: Workload{Kind: SCU, S: 1}, N: 4},
		{Workload: Workload{Kind: Parallel}, N: 4, Steps: 1000},
		func() Job { j := base; j.WarmupFraction = 1; return j }(),
		func() Job { j := base; j.WarmupFraction = -0.1; return j }(),
		func() Job { j := base; j.WarmupFraction = math.NaN(); return j }(),
		func() Job { j := base; j.Crash = 4; return j }(),
		func() Job { j := base; j.Crash = -1; return j }(),
		func() Job { j := base; j.Sched = SchedulerSpec{Kind: "nope"}; return j }(),
		func() Job { j := base; j.Sched = SchedulerSpec{Kind: SchedSticky, Rho: 1}; return j }(),
		func() Job {
			j := base
			j.Sched = SchedulerSpec{Kind: SchedLottery, Tickets: []int{1, 1}}
			return j
		}(),
		func() Job { j := base; j.Sched = SchedulerSpec{Kind: SchedAdversary, Victim: 4}; return j }(),
	}
	for i, job := range bad {
		if err := job.Validate(); err == nil {
			t.Errorf("bad job %d validated: %+v", i, job)
		}
		if _, err := Run(Config{Jobs: []Job{job}, Seed: 1}); err == nil {
			t.Errorf("bad job %d ran: %+v", i, job)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("good job rejected: %v", err)
	}
	if _, err := Run(Config{Seed: 1}); err == nil {
		t.Error("empty sweep ran")
	}
}

func TestSweepJobErrorNamesJob(t *testing.T) {
	// Round-robin supports no randomness but does support crashes;
	// adversary supports neither. A crash request against the
	// adversary must fail at run time with the job identified.
	jobs := []Job{
		{Workload: Workload{Kind: SCU, S: 1}, N: 4, Steps: 1000},
		{Workload: Workload{Kind: SCU, S: 1}, N: 4, Steps: 1000,
			Sched: SchedulerSpec{Kind: SchedAdversary}, Crash: 1},
	}
	_, err := Run(Config{Jobs: jobs, Seed: 1, Workers: 2})
	if err == nil {
		t.Fatal("crash on adversary scheduler succeeded")
	}
	if !strings.Contains(err.Error(), "job 1") {
		t.Errorf("error does not name the failing job: %v", err)
	}
}

func TestSweepCrashAndSchedulers(t *testing.T) {
	jobs := []Job{
		{Workload: Workload{Kind: SCU, S: 1}, N: 8, Steps: 10000, Crash: 4},
		{Workload: Workload{Kind: SCU, S: 1}, N: 4, Steps: 10000,
			Sched: SchedulerSpec{Kind: SchedRoundRobin}},
		{Workload: Workload{Kind: SCU, S: 1}, N: 4, Steps: 10000,
			Sched: SchedulerSpec{Kind: SchedLottery, Tickets: []int{2, 1, 1, 1}}},
		{Workload: Workload{Kind: SCU, S: 1}, N: 4, Steps: 10000,
			Sched: SchedulerSpec{Kind: SchedAdversary, Victim: 0}},
	}
	results, err := Run(Config{Jobs: jobs, Seed: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := results[0].Latencies.Completions; got == 0 {
		t.Error("crashed run made no progress")
	}
	if results[1].Theta != 0 {
		t.Errorf("round-robin theta = %v, want 0", results[1].Theta)
	}
	if results[2].Theta != 0.2 {
		t.Errorf("2:1:1:1 lottery theta = %v, want 0.2", results[2].Theta)
	}
	if len(results[3].Starved) == 0 {
		t.Error("adversary starved nobody")
	}
}

func TestSweepCompletionHook(t *testing.T) {
	var mu sync.Mutex
	count := 0
	jobs := []Job{{
		Workload: Workload{Kind: FetchInc}, N: 2, Steps: 5000,
		CompletionHook: func(step uint64, pid int) {
			mu.Lock()
			count++
			mu.Unlock()
		},
	}}
	results, err := Run(Config{Jobs: jobs, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if uint64(count) < results[0].Latencies.Completions {
		t.Errorf("hook saw %d completions, metrics saw %d",
			count, results[0].Latencies.Completions)
	}
}

func TestParseScheduler(t *testing.T) {
	good := map[string]SchedulerSpec{
		"uniform":     {Kind: SchedUniform},
		"roundrobin":  {Kind: SchedRoundRobin},
		"lottery":     {Kind: SchedLottery},
		"sticky:0.9":  {Kind: SchedSticky, Rho: 0.9},
		"adversary:2": {Kind: SchedAdversary, Victim: 2},
	}
	for name, want := range good {
		got, err := ParseScheduler(name)
		if err != nil {
			t.Errorf("%q: %v", name, err)
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%q parsed to %+v, want %+v", name, got, want)
		}
	}
	for _, name := range []string{"nope", "sticky:abc", "sticky:1.5", "sticky:-0.1", "adversary:x"} {
		if _, err := ParseScheduler(name); err == nil {
			t.Errorf("%q parsed", name)
		}
	}
}

func TestSchedulerSpecString(t *testing.T) {
	for _, tc := range []struct {
		spec SchedulerSpec
		want string
	}{
		{SchedulerSpec{}, "uniform"},
		{SchedulerSpec{Kind: SchedSticky, Rho: 0.9}, "sticky:0.9"},
		{SchedulerSpec{Kind: SchedRoundRobin}, "roundrobin"},
		{SchedulerSpec{Kind: SchedAdversary, Victim: 3}, "adversary:3"},
	} {
		if got := tc.spec.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestRunJobMatchesSweep(t *testing.T) {
	// A single-job sweep and RunJob with the stream-derived seed must
	// agree exactly.
	job := Job{Workload: Workload{Kind: SCU, S: 1}, N: 4, Steps: 20000,
		WarmupFraction: DefaultWarmupFraction}
	results, err := Run(Config{Jobs: []Job{job}, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := RunJob(job, results[0].Seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Latencies != results[0].Latencies {
		t.Errorf("RunJob latencies %+v differ from sweep %+v",
			direct.Latencies, results[0].Latencies)
	}
}
