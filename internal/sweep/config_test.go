package sweep

import (
	"context"
	"strings"
	"testing"
)

func smallGrid() []Job {
	return []Job{
		{Workload: Workload{Kind: SCU, S: 1}, N: 2, Steps: 5000, Exact: true},
		{Workload: Workload{Kind: FetchInc}, N: 2, Steps: 5000},
		{Workload: Workload{Kind: SCU, S: 1}, N: 3, Steps: 5000, Exact: true},
		{Workload: Workload{Kind: FetchInc}, N: 3, Steps: 5000},
		{Workload: Workload{Kind: SCU, S: 1}, N: 4, Steps: 5000,
			Sched: SchedulerSpec{Kind: SchedSticky, Rho: 0.5}},
	}
}

func TestSweepWarmupOverride(t *testing.T) {
	jobs := smallGrid()
	base, err := Run(Config{Jobs: jobs, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	warm := 0.5
	over, err := Run(Config{Jobs: jobs, Seed: 3, Warmup: &warm})
	if err != nil {
		t.Fatal(err)
	}
	if base[0].Latencies == over[0].Latencies {
		t.Error("warmup override had no effect")
	}
	// The override is equivalent to setting every job's field by hand.
	byHand := make([]Job, len(jobs))
	copy(byHand, jobs)
	for i := range byHand {
		byHand[i].WarmupFraction = warm
	}
	want, err := Run(Config{Jobs: byHand, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if over[i].Latencies != want[i].Latencies {
			t.Errorf("job %d: override %+v != per-job %+v", i, over[i].Latencies, want[i].Latencies)
		}
	}
	// The echoed job reflects the warmup that actually ran.
	if over[0].Job.WarmupFraction != warm {
		t.Errorf("echoed warmup %v, want %v", over[0].Job.WarmupFraction, warm)
	}

	bad := 1.5
	if _, err := Run(Config{Jobs: jobs, Seed: 3, Warmup: &bad}); err == nil {
		t.Error("out-of-range warmup override accepted")
	}
}

func TestSweepBatchFamiliesPreservesResults(t *testing.T) {
	jobs := smallGrid()
	plain, err := Run(Config{Jobs: jobs, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	batched, err := Run(Config{Jobs: jobs, Seed: 9, BatchFamilies: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i].Latencies != batched[i].Latencies || plain[i].Seed != batched[i].Seed {
			t.Errorf("job %d differs under batching: %+v vs %+v", i, plain[i], batched[i])
		}
		if batched[i].Index != i {
			t.Errorf("result %d has index %d", i, batched[i].Index)
		}
	}
}

func TestDispatchOrderGroupsFamilies(t *testing.T) {
	cfg := Config{Jobs: smallGrid(), BatchFamilies: true}
	var order []int
	for _, grp := range dispatchGroups(cfg, expandPoints(cfg), nil) {
		order = append(order, grp...)
	}
	if len(order) != len(cfg.Jobs) {
		t.Fatalf("order has %d entries for %d jobs", len(order), len(cfg.Jobs))
	}
	// Jobs of the same family must be adjacent in dispatch order.
	family := func(i int) string {
		j := cfg.Jobs[i]
		return string(j.Workload.Kind) + "/" + string(j.Sched.Kind)
	}
	seen := map[string]bool{}
	last := ""
	for _, i := range order {
		f := family(i)
		if f != last && seen[f] {
			t.Fatalf("family %s split across the dispatch order %v", f, order)
		}
		seen[f] = true
		last = f
	}
}

func TestSweepOnResultSeesEveryJobOnce(t *testing.T) {
	jobs := smallGrid()
	var got []int
	results, err := Run(Config{
		Jobs: jobs, Seed: 5, Workers: 3,
		OnResult: func(r Result) { got = append(got, r.Index) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(jobs) {
		t.Fatalf("OnResult saw %d results for %d jobs", len(got), len(jobs))
	}
	seen := make([]bool, len(jobs))
	for _, i := range got {
		if seen[i] {
			t.Errorf("job %d delivered twice", i)
		}
		seen[i] = true
	}
	_ = results
}

func TestSweepContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	jobs := make([]Job, 64)
	for i := range jobs {
		jobs[i] = Job{Workload: Workload{Kind: FetchInc}, N: 4, Steps: 200000}
	}
	delivered := 0
	_, err := Run(Config{
		Jobs: jobs, Seed: 1, Workers: 2,
		OnResult: func(Result) {
			delivered++
			if delivered == 1 {
				cancel()
			}
		},
		Context: ctx,
	})
	if err == nil {
		t.Fatal("canceled sweep returned no error")
	}
	if !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	if delivered == len(jobs) {
		t.Error("cancellation did not stop the sweep early")
	}
}
