package sweep

import (
	"errors"
	"fmt"
	"time"

	"pwf/internal/machine"
	"pwf/internal/sched"
	"pwf/internal/scu"
)

// errNoBatchForm reports a job shape without a struct-of-arrays
// implementation; the caller falls back to scalar execution.
var errNoBatchForm = errors.New("sweep: no batched form for this job shape")

// batchable reports whether a point can run on the replica-batched
// path: the workload has a struct-of-arrays form and nothing wants to
// observe individual steps or completions.
func batchable(cfg Config, job Job) bool {
	return batchFallbackReason(cfg, job) == ""
}

// batchFallbackReason explains why a point cannot run on the
// replica-batched path, or returns "" when it can. The reasons are
// surfaced through Config.OnBatchFallback so users learn when replica
// batching silently did nothing.
func batchFallbackReason(cfg Config, job Job) string {
	switch job.Workload.Kind {
	case SCU, Parallel, FetchInc, Unbounded, Stack, Queue, RCU, LFUniversal:
	default:
		return fmt.Sprintf("workload %q has no batched form", job.Workload.Kind)
	}
	switch {
	case job.CompletionHook != nil:
		return "job has a per-job completion hook"
	case job.Recorder != nil:
		return "job has a per-job recorder"
	case cfg.Recorder != nil:
		return "sweep has a recorder observing step-level telemetry"
	}
	return ""
}

// buildBatchDrawer constructs the batched scheduler for n processes
// and one rng stream per replica, mirroring SchedulerSpec.build.
func buildBatchDrawer(s SchedulerSpec, n int, seeds []uint64) (sched.BatchDrawer, error) {
	switch s.Kind {
	case "", SchedUniform:
		return sched.NewUniformBatch(n, seeds)
	case SchedRoundRobin:
		return sched.NewRoundRobinBatch(n, len(seeds))
	case SchedSticky:
		return sched.NewStickyBatch(n, s.Rho, seeds)
	case SchedLottery:
		tickets := s.Tickets
		if tickets == nil {
			tickets = make([]int, n)
			for i := range tickets {
				tickets[i] = 1
			}
		}
		return sched.NewLotteryBatch(tickets, seeds)
	case SchedWeighted:
		weights := s.Weights
		if weights == nil {
			weights = make([]float64, n)
			for i := range weights {
				weights[i] = 1
			}
		}
		return sched.NewWeightedBatch(weights, seeds)
	case SchedPhased:
		phases := make([]sched.Phase, len(s.Phases))
		for i, ph := range s.Phases {
			phases[i] = sched.Phase{Weights: ph.Weights, Steps: ph.Steps}
		}
		return sched.NewPhasedBatch(n, phases, seeds)
	case SchedAdversary:
		return sched.NewAdversarialBatch(n, len(seeds), sched.SingleOut(s.Victim))
	default:
		return nil, fmt.Errorf("sweep: unknown scheduler kind %q", s.Kind)
	}
}

// buildBatchGroup constructs the struct-of-arrays process group for k
// replicas of the workload, mirroring Workload.build for the kinds
// that have batched forms.
func buildBatchGroup(w Workload, k, n int) (machine.BatchGroup, error) {
	switch w.Kind {
	case SCU:
		return scu.NewSCUBatch(k, n, w.Q, w.S)
	case Parallel:
		return scu.NewParallelBatch(k, n, w.Q)
	case FetchInc:
		return scu.NewFetchIncBatch(k, n)
	case Unbounded:
		return scu.NewUnboundedBatch(k, n, w.WaitFactor)
	case Stack:
		return scu.NewStackBatch(k, n, w.pool(64))
	case Queue:
		return scu.NewQueueBatch(k, n, w.pool(64))
	case RCU:
		readers := n - 1 - (n-1)/4 // read-mostly: ~3/4 readers, as Workload.build
		return scu.NewRCUBatch(k, n, readers, w.pool(64))
	case LFUniversal:
		return scu.NewLFUniversalBatch(scu.CounterObject{}, k, n,
			func(pid int, seq int64) int64 { return 1 })
	default:
		return nil, fmt.Errorf("%w: workload %q", errNoBatchForm, w.Kind)
	}
}

// runJobBatch executes len(seeds) same-shape points (jobs[r] differs
// from jobs[0] at most in Label) in one lockstep BatchSim. It returns
// one Result and one error slot per replica; the third return value
// is a batch-level construction failure, after which nothing ran and
// the caller should fall back to per-point scalar execution.
//
// Replica r evolves exactly as RunJob(jobs[r], seeds[r], cache): the
// scheduler draws replica r's stream through the same sampling
// structures, the workload transitions through the same states, and
// the metric accumulators update in the same order — so each Result
// is byte-identical to the scalar path's, except Elapsed (wall time,
// never deterministic), which reports the per-replica share of the
// batch.
func runJobBatch(jobs []Job, seeds []uint64, cache *ChainCache) ([]Result, []error, error) {
	if len(jobs) == 0 || len(jobs) != len(seeds) {
		return nil, nil, fmt.Errorf("sweep: batch of %d jobs with %d seeds", len(jobs), len(seeds))
	}
	job := jobs[0]
	if err := job.Validate(); err != nil {
		return nil, nil, err
	}
	if cache == nil {
		cache = DefaultCache
	}
	k := len(seeds)
	began := time.Now()

	drawer, err := buildBatchDrawer(job.Sched, job.N, seeds)
	if err != nil {
		return nil, nil, err
	}
	if job.Crash > 0 {
		crasher, ok := drawer.(sched.BatchCrasher)
		if !ok {
			return nil, nil, fmt.Errorf("%w: scheduler %q does not support crashes", errNoBatchForm, job.Sched)
		}
		for pid := job.N - job.Crash; pid < job.N; pid++ {
			if err := crasher.Crash(pid); err != nil {
				return nil, nil, fmt.Errorf("sweep: crash process %d: %w", pid, err)
			}
		}
	}
	group, err := buildBatchGroup(job.Workload, k, job.N)
	if err != nil {
		return nil, nil, err
	}
	sim, err := machine.NewBatchSim(group, drawer)
	if err != nil {
		return nil, nil, err
	}

	if warmup := uint64(job.WarmupFraction * float64(job.Steps)); warmup > 0 {
		if err := sim.Run(warmup); err != nil {
			return nil, nil, err
		}
	}
	sim.ResetMetrics()
	if err := sim.Run(job.Steps); err != nil {
		return nil, nil, err
	}

	var exact float64
	exactOK := false
	if job.Exact {
		exact, exactOK = exactLatency(job, cache)
	}
	chk, _ := group.(machine.BatchChecker)
	share := time.Since(began) / time.Duration(k)
	results := make([]Result, k)
	perr := make([]error, k)
	for r := 0; r < k; r++ {
		res := Result{
			Label: jobs[r].Label,
			Job:   jobs[r],
			Seed:  seeds[r],
			Theta: drawer.Threshold(),
		}
		var lat Latencies
		if lat.System, err = sim.SystemLatency(r); err != nil {
			perr[r] = err
			continue
		}
		if lat.Individual, err = sim.MeanIndividualLatency(r); err != nil {
			perr[r] = err
			continue
		}
		lat.CompletionRate = sim.CompletionRate(r)
		lat.Fairness = sim.FairnessIndex(r)
		lat.Completions = sim.TotalCompletions(r)
		res.Latencies = lat
		res.ProcCompletions = sim.Completions(r)
		res.Starved = sim.StarvedProcesses(r)
		if chk != nil {
			// Post-run invariant check, mirroring RunJob's built.check
			// call at the same position: a failing replica yields a
			// zero Result and the check error.
			if cerr := chk.CheckReplica(r); cerr != nil {
				perr[r] = cerr
				continue
			}
		}
		if job.Exact {
			res.Exact, res.ExactOK = exact, exactOK
		}
		res.Elapsed = share
		results[r] = res
	}
	return results, perr, nil
}
