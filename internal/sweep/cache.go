package sweep

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pwf/internal/chains"
	"pwf/internal/obs"
)

// ChainCache memoizes the expensive exact-chain constructions of
// internal/chains. The figure drivers pair every simulated point with
// its exact value, and several drivers request the same chain for the
// same n — without the cache each request rebuilds (and re-solves) a
// state space that grows exponentially in n.
//
// The cache is safe for concurrent use. Each key is built exactly once
// (concurrent requesters for a missing key block until the single
// build completes), and the stationary distribution is solved eagerly
// inside the build so that the returned *chains.Analysis is read-only
// afterwards and can be shared across goroutines.
type ChainCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	hits    atomic.Uint64
	misses  atomic.Uint64
}

type cacheEntry struct {
	once     sync.Once
	analysis *chains.Analysis
	lift     []int
	err      error
}

// NewChainCache returns an empty cache.
func NewChainCache() *ChainCache {
	return &ChainCache{entries: make(map[string]*cacheEntry)}
}

// DefaultCache is the process-wide shared cache used when a Config
// does not provide its own. Sharing it across sweeps, drivers and
// CLIs means a chain built for one figure is reused by the next. Its
// hit/miss counters are published on obs.Default as the
// chain_cache_hits / chain_cache_misses gauges.
var DefaultCache = NewChainCache()

func init() { DefaultCache.Publish(obs.Default, "chain_cache") }

// Publish registers the cache's hit/miss counters on reg as live
// gauges named <prefix>_hits and <prefix>_misses, read at snapshot
// time.
func (c *ChainCache) Publish(reg *obs.Registry, prefix string) {
	reg.Gauge(prefix+"_hits", c.Hits)
	reg.Gauge(prefix+"_misses", c.Misses)
}

// get returns the entry for key, building it at most once.
func (c *ChainCache) get(key string, build func() (*chains.Analysis, []int, error)) (*chains.Analysis, []int, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() {
		e.analysis, e.lift, e.err = build()
		if e.err == nil {
			// Solve the stationary distribution now: Analysis caches it
			// lazily on first use, which would race if deferred to
			// concurrent readers.
			if _, err := e.analysis.Stationary(); err != nil {
				e.analysis, e.err = nil, err
			}
		}
	})
	return e.analysis, e.lift, e.err
}

// Hits returns the number of lookups served from the cache.
func (c *ChainCache) Hits() uint64 { return c.hits.Load() }

// Misses returns the number of lookups that had to build the chain.
func (c *ChainCache) Misses() uint64 { return c.misses.Load() }

// SCUSystem returns the cached SCU(0,1) system chain analysis for n
// processes (Section 6.1.1).
func (c *ChainCache) SCUSystem(n int) (*chains.Analysis, error) {
	a, _, err := c.get(fmt.Sprintf("scu-sys-%d", n), func() (*chains.Analysis, []int, error) {
		a, _, err := chains.SCUSystem(n)
		return a, nil, err
	})
	return a, err
}

// SCUSystemQS returns the cached general SCU(q, s) system chain
// analysis, which is tractable only for small n.
func (c *ChainCache) SCUSystemQS(n, q, s int) (*chains.Analysis, error) {
	a, _, err := c.get(fmt.Sprintf("scu-qs-%d-%d-%d", n, q, s), func() (*chains.Analysis, []int, error) {
		a, err := chains.SCUSystemQS(n, q, s)
		return a, nil, err
	})
	return a, err
}

// SCUIndividual returns the cached SCU(0,1) individual chain and its
// lifting map onto the system chain.
func (c *ChainCache) SCUIndividual(n int) (*chains.Analysis, []int, error) {
	return c.get(fmt.Sprintf("scu-ind-%d", n), func() (*chains.Analysis, []int, error) {
		return chains.SCUIndividual(n)
	})
}

// FetchIncGlobal returns the cached fetch-and-increment global chain
// analysis (Section 7.1).
func (c *ChainCache) FetchIncGlobal(n int) (*chains.Analysis, error) {
	a, _, err := c.get(fmt.Sprintf("fi-glob-%d", n), func() (*chains.Analysis, []int, error) {
		a, err := chains.FetchIncGlobal(n)
		return a, nil, err
	})
	return a, err
}

// FetchIncIndividual returns the cached fetch-and-increment individual
// chain and its lifting map.
func (c *ChainCache) FetchIncIndividual(n int) (*chains.Analysis, []int, error) {
	return c.get(fmt.Sprintf("fi-ind-%d", n), func() (*chains.Analysis, []int, error) {
		return chains.FetchIncIndividual(n)
	})
}

// ParallelSystem returns the cached parallel-code system chain
// analysis (Section 6.2).
func (c *ChainCache) ParallelSystem(n, q int) (*chains.Analysis, error) {
	a, _, err := c.get(fmt.Sprintf("par-sys-%d-%d", n, q), func() (*chains.Analysis, []int, error) {
		a, _, err := chains.ParallelSystem(n, q)
		return a, nil, err
	})
	return a, err
}

// ParallelIndividual returns the cached parallel-code individual chain
// and its lifting map.
func (c *ChainCache) ParallelIndividual(n, q int) (*chains.Analysis, []int, error) {
	return c.get(fmt.Sprintf("par-ind-%d-%d", n, q), func() (*chains.Analysis, []int, error) {
		return chains.ParallelIndividual(n, q)
	})
}
