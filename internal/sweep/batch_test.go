package sweep

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"pwf/internal/obs"
	"pwf/internal/rng"
)

// equivalenceGrid is a grid crossing every scheduler kind with
// batchable and fallback workloads, crash plans, warmup, and exact
// analysis — the surface the byte-identity contract must cover.
func equivalenceGrid() []Job {
	const steps = 3000
	scheds := []SchedulerSpec{
		{},
		{Kind: SchedUniform},
		{Kind: SchedRoundRobin},
		{Kind: SchedSticky, Rho: 0.8},
		{Kind: SchedLottery, Tickets: []int{1, 2, 3, 4, 5, 6, 7}},
		{Kind: SchedWeighted, Weights: []float64{1, 1, 2, 2, 3, 3, 4}},
		{Kind: SchedPhased, Phases: []PhaseSpec{
			{Weights: []float64{3, 1, 1, 1, 1, 1, 1}, Steps: 40},
			{Weights: []float64{1, 1, 1, 1, 1, 1, 3}, Steps: 60},
		}},
		{Kind: SchedAdversary, Victim: 2},
	}
	workloads := []Workload{
		{Kind: SCU, S: 1},
		{Kind: SCU, Q: 2, S: 3},
		{Kind: Parallel, Q: 3},
		{Kind: FetchInc},
		{Kind: Unbounded},
		{Kind: Stack},
		{Kind: Stack, PoolSize: 8}, // small pool: recycles slots through the precise-GC scan
		{Kind: Queue},
		{Kind: Queue, PoolSize: 8},
		{Kind: RCU},
		{Kind: LFUniversal},
		{Kind: List},        // no batched form: exercises the fallback
		{Kind: WFUniversal}, // no batched form: exercises the fallback
	}
	var jobs []Job
	for _, sc := range scheds {
		for _, w := range workloads {
			job := Job{Workload: w, N: 7, Sched: sc, Steps: steps,
				WarmupFraction: 0.1, Replicas: 3, Label: sc.String()}
			jobs = append(jobs, job)
			if sc.Kind != SchedAdversary {
				crashed := job
				crashed.Crash = 2
				jobs = append(jobs, crashed)
			}
		}
	}
	// A couple of exact-analysis points.
	jobs = append(jobs,
		Job{Workload: Workload{Kind: SCU, S: 1}, N: 5, Steps: steps, Exact: true, Replicas: 2},
		Job{Workload: Workload{Kind: FetchInc}, N: 5, Steps: steps, Exact: true, Replicas: 2},
	)
	return jobs
}

// TestReplicaBatchMatchesScalar is the tentpole's acceptance
// contract: a batched sweep is byte-identical to the scalar sweep for
// the same grid and master seed, for every field except wall time.
func TestReplicaBatchMatchesScalar(t *testing.T) {
	jobs := equivalenceGrid()
	scalar, err := Run(Config{Jobs: jobs, Seed: 77, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, width := range []int{2, 4, 16} {
		batched, err := Run(Config{Jobs: jobs, Seed: 77, Workers: 3, ReplicaBatch: width})
		if err != nil {
			t.Fatal(err)
		}
		if len(batched) != len(scalar) {
			t.Fatalf("width %d: %d results, scalar %d", width, len(batched), len(scalar))
		}
		for i := range scalar {
			a, b := scalar[i], batched[i]
			a.Elapsed, b.Elapsed = 0, 0
			if !reflect.DeepEqual(a, b) {
				t.Errorf("width %d point %d (%s): batched %+v, scalar %+v",
					width, i, describe(scalar[i].Job), b, a)
			}
		}
	}
}

// TestBatchFallbackObservability pins the execution-path telemetry of
// a batched sweep: points that coalesce onto the replica-batched core
// count into sweep_batch_jobs, points that cannot batch count into
// sweep_batch_fallbacks, and OnBatchFallback reports each distinct
// reason exactly once no matter how many points share it.
func TestBatchFallbackObservability(t *testing.T) {
	reg := obs.NewRegistry()
	var mu sync.Mutex
	var reasons []string
	jobs := []Job{
		{Workload: Workload{Kind: SCU, S: 1}, N: 5, Steps: 300, Replicas: 4},
		{Workload: Workload{Kind: List}, N: 5, Steps: 300, Replicas: 3},
		{Workload: Workload{Kind: WFUniversal}, N: 5, Steps: 300, Replicas: 2},
	}
	if _, err := Run(Config{
		Jobs: jobs, Seed: 5, Workers: 2, ReplicaBatch: 8,
		Registry: reg,
		OnBatchFallback: func(reason string) {
			mu.Lock()
			reasons = append(reasons, reason)
			mu.Unlock()
		},
	}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("sweep_batch_jobs").Load(); got != 4 {
		t.Errorf("sweep_batch_jobs = %d, want 4", got)
	}
	if got := reg.Counter("sweep_batch_fallbacks").Load(); got != 5 {
		t.Errorf("sweep_batch_fallbacks = %d, want 5", got)
	}
	if len(reasons) != 2 {
		t.Fatalf("OnBatchFallback reasons = %q, want one per workload kind", reasons)
	}
	for _, r := range reasons {
		if !strings.Contains(r, "no batched form") {
			t.Errorf("reason %q does not name the missing batched form", r)
		}
	}

	// A scalar sweep of the same grid must leave the registry silent.
	reg2 := obs.NewRegistry()
	if _, err := Run(Config{Jobs: jobs, Seed: 5, Workers: 2, Registry: reg2}); err != nil {
		t.Fatal(err)
	}
	if got := reg2.Counter("sweep_batch_jobs").Load() + reg2.Counter("sweep_batch_fallbacks").Load(); got != 0 {
		t.Errorf("scalar sweep touched the batch counters: %d", got)
	}
}

// TestBatchErrorPathMatchesScalar pins the failure side of the
// byte-identity contract: a workload whose invariant check fails — a
// queue whose two-node pools exhaust — must surface the identical
// wrapped error from the batched path as from the scalar path, rather
// than succeeding quietly or failing with a different message.
func TestBatchErrorPathMatchesScalar(t *testing.T) {
	jobs := []Job{{
		Workload: Workload{Kind: Queue, PoolSize: 2},
		N:        7,
		Steps:    3000,
		Replicas: 4,
	}}
	_, serr := Run(Config{Jobs: jobs, Seed: 77, Workers: 1})
	if serr == nil {
		t.Fatal("scalar run with a 2-node queue pool succeeded; want pool exhaustion")
	}
	_, berr := Run(Config{Jobs: jobs, Seed: 77, Workers: 1, ReplicaBatch: 4})
	if berr == nil {
		t.Fatal("batched run with a 2-node queue pool succeeded; want pool exhaustion")
	}
	if serr.Error() != berr.Error() {
		t.Errorf("batched error %q, scalar error %q", berr, serr)
	}
}

// TestReplicasExpandPoints pins the seed layout of Replicas: a job
// with Replicas = r occupies r consecutive point indices, each with
// the stream seed of its index, exactly as if the job were written
// out r times.
func TestReplicasExpandPoints(t *testing.T) {
	shape := Job{Workload: Workload{Kind: SCU, S: 1}, N: 4, Steps: 500}
	other := Job{Workload: Workload{Kind: FetchInc}, N: 3, Steps: 500}
	grouped := shape
	grouped.Replicas = 3

	got, err := Run(Config{Jobs: []Job{grouped, other}, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(Config{Jobs: []Job{shape, shape, shape, other}, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || len(want) != 4 {
		t.Fatalf("got %d results, manual expansion %d, want 4", len(got), len(want))
	}
	for i := range want {
		if got[i].Index != i || got[i].Seed != rng.Stream(11, uint64(i)) {
			t.Errorf("point %d: index %d seed %d, want index %d seed %d",
				i, got[i].Index, got[i].Seed, i, rng.Stream(11, uint64(i)))
		}
		if got[i].Latencies != want[i].Latencies {
			t.Errorf("point %d: latencies %+v, manual expansion %+v",
				i, got[i].Latencies, want[i].Latencies)
		}
	}
	if got[0].Latencies == got[1].Latencies && got[1].Latencies == got[2].Latencies {
		t.Error("replica points produced identical latencies; seed streams not distinct")
	}
}

// schedCapture records the scheduling decisions of a scalar run.
type schedCapture struct {
	mu   sync.Mutex
	pids []int32
}

func (c *schedCapture) Record(e obs.Event) {
	if e.Kind == obs.KindSched {
		c.mu.Lock()
		c.pids = append(c.pids, int32(e.PID))
		c.mu.Unlock()
	}
}

// TestBatchDrawerReplaysScalarTrace pins identical schedules through
// the telemetry layer: the pid sequence a traced scalar job observes
// is exactly the sequence the batch drawer deals to that replica.
func TestBatchDrawerReplaysScalarTrace(t *testing.T) {
	const (
		n     = 6
		steps = 2000
		seed0 = 9001
	)
	job := Job{
		Workload: Workload{Kind: SCU, S: 2},
		N:        n,
		Sched:    SchedulerSpec{Kind: SchedWeighted, Weights: []float64{1, 2, 3, 4, 5, 6}},
		Steps:    steps,
	}
	seeds := []uint64{seed0, seed0 + 1, seed0 + 2}
	traces := make([][]int32, len(seeds))
	for r, seed := range seeds {
		cap := &schedCapture{}
		traced := job
		traced.Recorder = cap
		if _, err := RunJob(traced, seed, nil); err != nil {
			t.Fatal(err)
		}
		traces[r] = cap.pids
	}
	drawer, err := buildBatchDrawer(job.Sched, n, seeds)
	if err != nil {
		t.Fatal(err)
	}
	pids := make([]int32, len(seeds))
	for step := 0; step < steps; step++ {
		if err := drawer.NextBatch(pids); err != nil {
			t.Fatal(err)
		}
		for r := range seeds {
			if pids[r] != traces[r][step] {
				t.Fatalf("step %d replica %d: batch drawer pid %d, traced scalar pid %d",
					step, r, pids[r], traces[r][step])
			}
		}
	}
}

// TestSlowOnResultDoesNotBlockProgress is the regression test for
// callbacks running under the sweep bookkeeping mutex: a stalled
// OnResult must not stop other workers from finishing jobs and
// driving Progress to completion.
func TestSlowOnResultDoesNotBlockProgress(t *testing.T) {
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{Workload: Workload{Kind: SCU, S: 1}, N: 3, Steps: 200}
	}
	release := make(chan struct{})
	allDone := make(chan struct{})
	var once sync.Once
	var delivered sync.WaitGroup
	delivered.Add(len(jobs))
	cfg := Config{
		Jobs: jobs, Seed: 1, Workers: 2,
		OnResult: func(Result) {
			delivered.Done()
			<-release // every delivery stalls until the test releases it
		},
		Progress: func(done, total int) {
			if done == total {
				once.Do(func() { close(allDone) })
			}
		},
	}
	runDone := make(chan error, 1)
	go func() {
		_, err := Run(cfg)
		runDone <- err
	}()
	select {
	case <-allDone:
		// Progress reached done == total while OnResult was stalled.
	case <-time.After(30 * time.Second):
		t.Fatal("Progress never reached done == total while OnResult was blocked")
	}
	close(release)
	if err := <-runDone; err != nil {
		t.Fatal(err)
	}
	delivered.Wait() // every result was still delivered exactly once
}

// TestFamilyKeyDistinguishesParameters is the regression test for the
// dispatch family key: jobs sharing a scheduler kind but differing in
// weight vectors, process count, or crash plan are different families
// and must not interleave into one batch group.
func TestFamilyKeyDistinguishesParameters(t *testing.T) {
	base := Job{Workload: Workload{Kind: SCU, S: 1}, N: 4, Steps: 100,
		Sched: SchedulerSpec{Kind: SchedWeighted, Weights: []float64{1, 2, 3, 4}}}
	variants := []func(Job) Job{
		func(j Job) Job { j.Sched.Weights = []float64{4, 3, 2, 1}; return j },
		func(j Job) Job {
			j.N = 5
			j.Sched.Weights = []float64{1, 2, 3, 4, 5}
			return j
		},
		func(j Job) Job { j.Crash = 1; return j },
		func(j Job) Job { j.Workload.PoolSize = 9; return j },
		func(j Job) Job { j.Steps = 200; return j },
	}
	for i, v := range variants {
		if shapeKey(base) == shapeKey(v(base)) {
			t.Errorf("variant %d has the same shape key as the base job", i)
		}
	}
	same := base
	same.Label = "other-label"
	if shapeKey(base) != shapeKey(same) {
		t.Error("labels must not split shapes")
	}

	// End to end: alternating weight vectors never share a group.
	a, b := base, variants[0](base)
	cfg := Config{Jobs: []Job{a, b, a, b, a, b}, ReplicaBatch: 8}
	points := expandPoints(cfg)
	for _, grp := range dispatchGroups(cfg, points, nil) {
		for _, i := range grp[1:] {
			if shapeKey(points[i]) != shapeKey(points[grp[0]]) {
				t.Fatalf("group %v mixes shapes", grp)
			}
		}
	}
}
