package sweep

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// memCheckpoint is an in-memory sweep.Checkpoint for engine-level
// tests; the file-backed implementation lives in internal/checkpoint.
type memCheckpoint struct {
	mu        sync.Mutex
	points    map[int]Result
	commits   int
	commitErr error
}

func newMemCheckpoint() *memCheckpoint {
	return &memCheckpoint{points: map[int]Result{}}
}

func (m *memCheckpoint) Restore(i int) (Result, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.points[i]
	return r, ok
}

func (m *memCheckpoint) Commit(r Result) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.commitErr != nil {
		return m.commitErr
	}
	m.commits++
	m.points[r.Index] = r
	return nil
}

// A sweep resumed from a partial checkpoint recomputes only the
// missing points and reproduces the uninterrupted run exactly.
func TestSweepCheckpointResumeIsByteIdentical(t *testing.T) {
	jobs := smallGrid()
	full, err := Run(Config{Jobs: jobs, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a crash after an arbitrary subset completed: seed the
	// checkpoint with points 0, 2, and 4 only.
	cp := newMemCheckpoint()
	for _, i := range []int{0, 2, 4} {
		cp.points[i] = full[i]
	}
	resumed, err := Run(Config{Jobs: jobs, Seed: 9, Checkpoint: cp})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripElapsed(full), stripElapsed(resumed)) {
		t.Error("resumed sweep differs from uninterrupted run")
	}
	if cp.commits != len(jobs)-3 {
		t.Errorf("resume committed %d points, want %d (restored points must not recommit)",
			cp.commits, len(jobs)-3)
	}
	if len(cp.points) != len(jobs) {
		t.Errorf("checkpoint holds %d of %d points after resume", len(cp.points), len(jobs))
	}
}

// Restored points replay through OnResult in input order before any
// new execution, and the first Progress call counts them as done.
func TestSweepCheckpointReplaysRestoredThroughCallbacks(t *testing.T) {
	jobs := smallGrid()
	full, err := Run(Config{Jobs: jobs, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cp := newMemCheckpoint()
	cp.points[1] = full[1]
	cp.points[3] = full[3]

	var order []int
	var firstProgress int
	_, err = Run(Config{
		Jobs: jobs, Seed: 11, Workers: 1, Checkpoint: cp,
		OnResult: func(r Result) { order = append(order, r.Index) },
		Progress: func(done, total int) {
			if firstProgress == 0 {
				firstProgress = done
			}
			if total != len(jobs) {
				t.Errorf("Progress total = %d, want %d", total, len(jobs))
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != len(jobs) {
		t.Fatalf("OnResult saw %d results for %d points", len(order), len(jobs))
	}
	if order[0] != 1 || order[1] != 3 {
		t.Errorf("restored points replayed as %v, want prefix [1 3]", order[:2])
	}
	if firstProgress != 2 {
		t.Errorf("first Progress reported %d done, want 2 (the restored count)", firstProgress)
	}
}

// A checkpoint that already holds every point short-circuits: no new
// execution, full results.
func TestSweepCheckpointFullyRestored(t *testing.T) {
	jobs := smallGrid()
	full, err := Run(Config{Jobs: jobs, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	cp := newMemCheckpoint()
	for i, r := range full {
		cp.points[i] = r
	}
	resumed, err := Run(Config{Jobs: jobs, Seed: 13, Checkpoint: cp})
	if err != nil {
		t.Fatal(err)
	}
	if cp.commits != 0 {
		t.Errorf("fully restored sweep committed %d points", cp.commits)
	}
	if !reflect.DeepEqual(stripElapsed(full), stripElapsed(resumed)) {
		t.Error("fully restored sweep differs from original results")
	}
}

// A failing Commit fails the sweep: a run that cannot record progress
// must not pretend to be resumable.
func TestSweepCheckpointCommitErrorFailsSweep(t *testing.T) {
	cp := newMemCheckpoint()
	cp.commitErr = errors.New("disk full")
	_, err := Run(Config{Jobs: smallGrid(), Seed: 1, Checkpoint: cp})
	if err == nil {
		t.Fatal("sweep with failing checkpoint commit returned nil error")
	}
	if !errors.Is(err, cp.commitErr) {
		t.Errorf("error %v does not wrap the commit error", err)
	}
}

// Cancellation returns the ErrCanceled sentinel wrapping the
// context's error, with partial results: every point whose OnResult
// fired is present, unstarted points are zero.
func TestSweepCancelReturnsSentinelWithPartialResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	jobs := make([]Job, 64)
	for i := range jobs {
		jobs[i] = Job{Workload: Workload{Kind: FetchInc}, N: 4, Steps: 100000}
	}
	var mu sync.Mutex
	delivered := map[int]bool{}
	results, err := Run(Config{
		Jobs: jobs, Seed: 2, Workers: 2,
		OnResult: func(r Result) {
			mu.Lock()
			delivered[r.Index] = true
			if len(delivered) == 1 {
				cancel()
			}
			mu.Unlock()
		},
		Context: ctx,
	})
	if err == nil {
		t.Fatal("canceled sweep returned nil error")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("error %v does not match ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	if len(delivered) == len(jobs) {
		t.Error("cancellation did not stop the sweep early")
	}
	// Partial results: delivered points carry their values (the
	// FetchInc workload always completes operations over 100k steps),
	// undelivered points are zero.
	for i, r := range results {
		if delivered[i] && r.Latencies.Completions == 0 {
			t.Errorf("delivered point %d has zero result", i)
		}
		if !delivered[i] && r.Latencies.Completions != 0 {
			t.Errorf("undelivered point %d has non-zero result", i)
		}
	}
}

// A sweep canceled mid-run leaves its checkpoint holding exactly the
// completed points, and resuming it reproduces the full run.
func TestSweepCancelThenResumeViaCheckpoint(t *testing.T) {
	jobs := make([]Job, 32)
	for i := range jobs {
		jobs[i] = Job{Workload: Workload{Kind: FetchInc}, N: 3, Steps: 50000}
	}
	full, err := Run(Config{Jobs: jobs, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cp := newMemCheckpoint()
	n := 0
	_, err = Run(Config{
		Jobs: jobs, Seed: 21, Workers: 2, Checkpoint: cp,
		OnResult: func(Result) {
			n++
			if n == 5 {
				cancel()
			}
		},
		Context: ctx,
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("expected ErrCanceled, got %v", err)
	}
	if len(cp.points) == 0 || len(cp.points) == len(jobs) {
		t.Fatalf("checkpoint holds %d of %d points; want a strict partial", len(cp.points), len(jobs))
	}

	resumed, err := Run(Config{Jobs: jobs, Seed: 21, Checkpoint: cp})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripElapsed(full), stripElapsed(resumed)) {
		t.Error("canceled-then-resumed sweep differs from uninterrupted run")
	}
}

// Regression: a panicking callback must not leave the queue marked
// draining — that would silently swallow every later callback. The
// panic propagates to the drainer; the queue keeps working afterward.
func TestCbQueuePanicDoesNotSwallowLaterCallbacks(t *testing.T) {
	var q cbQueue
	q.enqueue(func() { panic("callback exploded") })
	func() {
		defer func() {
			if recover() == nil {
				t.Error("drain swallowed the callback panic instead of propagating it")
			}
		}()
		q.drain()
	}()

	ran := false
	q.enqueue(func() { ran = true })
	q.drain()
	if !ran {
		t.Error("callback after a panic never ran: drain state was left locked")
	}
}

// The panic inside a sweep callback propagates out of Run's worker;
// this documents (rather than hides) the failure mode. We exercise it
// via the queue directly above; here we pin that Progress and OnResult
// deliveries continue for callbacks that do not panic even when
// enqueued concurrently with a drain.
func TestCbQueueConcurrentEnqueueDrain(t *testing.T) {
	var q cbQueue
	var mu sync.Mutex
	seen := 0
	const total = 1000
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < total/4; i++ {
				q.enqueue(func() {
					mu.Lock()
					seen++
					mu.Unlock()
				})
				q.drain()
			}
		}()
	}
	wg.Wait()
	q.drain()
	if seen != total {
		t.Errorf("saw %d of %d callbacks", seen, total)
	}
}

// Checkpoints compose with family batching and replica batching: the
// restored subset is skipped and the rest still batches.
func TestSweepCheckpointWithBatching(t *testing.T) {
	var jobs []Job
	for i := 0; i < 12; i++ {
		jobs = append(jobs, Job{
			Workload: Workload{Kind: FetchInc}, N: 3, Steps: 20000,
			Label: fmt.Sprintf("seed%d", i),
		})
	}
	full, err := Run(Config{Jobs: jobs, Seed: 31, BatchFamilies: true, ReplicaBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	cp := newMemCheckpoint()
	for _, i := range []int{0, 1, 5, 7, 11} {
		cp.points[i] = full[i]
	}
	resumed, err := Run(Config{
		Jobs: jobs, Seed: 31, BatchFamilies: true, ReplicaBatch: 4, Checkpoint: cp,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripElapsed(full), stripElapsed(resumed)) {
		t.Error("batched resume differs from uninterrupted batched run")
	}
}
