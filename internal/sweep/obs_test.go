package sweep

import (
	"bytes"
	"sync"
	"testing"

	"pwf/internal/obs"
)

// lockedCollector is a concurrency-safe event sink for tests.
type lockedCollector struct {
	mu     sync.Mutex
	events []obs.Event
}

func (c *lockedCollector) Record(e obs.Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

func TestSweepEmitsJobLifecycleEvents(t *testing.T) {
	jobs := []Job{
		{Workload: Workload{Kind: SCU, S: 1}, N: 2, Steps: 2000, Label: "a"},
		{Workload: Workload{Kind: FetchInc}, N: 2, Steps: 2000, Label: "b"},
		{Workload: Workload{Kind: SCU, S: 1}, N: 3, Steps: 2000, Label: "c"},
	}
	var c lockedCollector
	if _, err := Run(Config{Jobs: jobs, Seed: 1, Recorder: &c, Workers: 2}); err != nil {
		t.Fatal(err)
	}

	starts := map[int]string{}
	ends := map[int]bool{}
	var scheds int
	for _, e := range c.events {
		switch e.Kind {
		case obs.KindJobStart:
			starts[e.Job] = e.Label
		case obs.KindJobEnd:
			if e.ElapsedNS <= 0 {
				t.Errorf("job %d ended with elapsed %d", e.Job, e.ElapsedNS)
			}
			ends[e.Job] = true
		case obs.KindSched:
			scheds++
		}
	}
	if len(starts) != len(jobs) || len(ends) != len(jobs) {
		t.Fatalf("lifecycle events for %d/%d jobs, want %d", len(starts), len(ends), len(jobs))
	}
	for i, job := range jobs {
		if starts[i] != job.Label {
			t.Errorf("job %d started with label %q, want %q", i, starts[i], job.Label)
		}
	}
	if scheds == 0 {
		t.Error("no step events forwarded from the jobs")
	}
}

// TestSweepSharedTraceRecorderIsRaceClean funnels every concurrent
// job's events through one TraceRecorder; -race validates the
// serialization.
func TestSweepSharedTraceRecorderIsRaceClean(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewTraceRecorder(&buf)
	jobs := make([]Job, 4)
	for i := range jobs {
		jobs[i] = Job{Workload: Workload{Kind: SCU, S: 1}, N: 2, Steps: 2000}
	}
	if _, err := Run(Config{Jobs: jobs, Seed: 1, Recorder: tr, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatalf("interleaved trace is not valid NDJSON: %v", err)
	}
	if len(events) < 4*2000 {
		t.Errorf("only %d events for 4 jobs of 2000 steps", len(events))
	}
}

func TestResultsUnaffectedByRecorder(t *testing.T) {
	job := Job{Workload: Workload{Kind: SCU, S: 1}, N: 4, Steps: 20000}
	plain, err := RunJob(job, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	job.Recorder = obs.NewTraceRecorder(&bytes.Buffer{})
	traced, err := RunJob(job, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Latencies != traced.Latencies {
		t.Errorf("telemetry changed the results: %+v vs %+v",
			plain.Latencies, traced.Latencies)
	}
}
