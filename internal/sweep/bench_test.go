package sweep

import (
	"fmt"
	"runtime"
	"testing"
)

// scu16Grid is the acceptance-criterion grid: a 16-job SCU sweep.
func scu16Grid() []Job {
	var jobs []Job
	for _, n := range []int{2, 4, 8, 16} {
		for _, s := range []int{1, 2} {
			for _, q := range []int{0, 2} {
				jobs = append(jobs, Job{
					Workload:       Workload{Kind: SCU, Q: q, S: s},
					N:              n,
					Steps:          200000,
					WarmupFraction: DefaultWarmupFraction,
				})
			}
		}
	}
	return jobs
}

func benchSweep(b *testing.B, workers int) {
	jobs := scu16Grid()
	b.ReportMetric(float64(len(jobs)), "jobs")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Jobs: jobs, Seed: 1, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepSCU16Serial is the serial baseline for the 16-job SCU
// grid; BenchmarkSweepSCU16Parallel must beat it on >= 4 cores.
func BenchmarkSweepSCU16Serial(b *testing.B) { benchSweep(b, 1) }

func BenchmarkSweepSCU16Parallel(b *testing.B) { benchSweep(b, runtime.GOMAXPROCS(0)) }

// BenchmarkSweepSteps measures end-to-end simulated steps per second
// over the paper-scale process counts — the quantity the
// constant-time scheduler sampling layer targets: with O(1) draws the
// steps/sec column should be flat in n instead of collapsing as
// O(1/n). Uniform exercises the dense active set (with a crashed
// process so the crash-mode path is measured); lottery exercises the
// Fenwick tree. The scalar variant runs one replica per RunJob call;
// the batch variant runs replicaBenchWidth same-shape replicas
// through the struct-of-arrays core and must come out at least 2x
// faster per step at n=1024. cmd/pwfbench records the same
// measurement into BENCH_sweep.json.
func BenchmarkSweepSteps(b *testing.B) {
	for _, spec := range []SchedulerSpec{
		{Kind: SchedUniform},
		{Kind: SchedLottery},
	} {
		for _, n := range []int{16, 256, 1024, 4096} {
			job := Job{
				Workload: Workload{Kind: SCU, S: 1},
				N:        n,
				Sched:    spec,
				Steps:    benchStepsPerJob,
				Crash:    1,
			}
			b.Run(fmt.Sprintf("%s/n=%d/scalar", spec.Kind, n), func(b *testing.B) {
				benchSweepStepsScalar(b, job)
			})
			b.Run(fmt.Sprintf("%s/n=%d/batch", spec.Kind, n), func(b *testing.B) {
				benchSweepStepsBatch(b, job)
			})
		}
	}
	// The pointer-based workloads with replica-batched SoA forms, at
	// the headline process count. cmd/pwfbench measures the same kinds
	// across the full n list into BENCH_sweep.json.
	for _, wk := range []Workload{
		{Kind: Stack}, {Kind: Queue}, {Kind: RCU}, {Kind: Unbounded}, {Kind: LFUniversal},
	} {
		job := Job{
			Workload: wk,
			N:        1024,
			Sched:    SchedulerSpec{Kind: SchedUniform},
			Steps:    benchStepsPerJob,
			Crash:    1,
		}
		b.Run(fmt.Sprintf("uniform/%s/n=1024/scalar", wk.Kind), func(b *testing.B) {
			benchSweepStepsScalar(b, job)
		})
		b.Run(fmt.Sprintf("uniform/%s/n=1024/batch", wk.Kind), func(b *testing.B) {
			benchSweepStepsBatch(b, job)
		})
	}
}

const (
	benchStepsPerJob = 100000
	// replicaBenchWidth matches the width the serving layer uses, so
	// the checked-in BENCH_sweep.json speedups describe production
	// batches.
	replicaBenchWidth = 16
)

func benchSweepStepsScalar(b *testing.B, job Job) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunJob(job, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportSteps(b, float64(b.N)*benchStepsPerJob)
}

func benchSweepStepsBatch(b *testing.B, job Job) {
	job.Replicas = replicaBenchWidth
	cfg := Config{
		Jobs:         []Job{job},
		Seed:         1,
		Workers:      1,
		ReplicaBatch: replicaBenchWidth,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportSteps(b, float64(b.N)*benchStepsPerJob*replicaBenchWidth)
}

func reportSteps(b *testing.B, totalSteps float64) {
	b.ReportMetric(totalSteps/b.Elapsed().Seconds(), "steps/sec")
	b.ReportMetric(b.Elapsed().Seconds()*1e9/totalSteps, "ns/step")
}
