package sweep

import (
	"runtime"
	"testing"
)

// scu16Grid is the acceptance-criterion grid: a 16-job SCU sweep.
func scu16Grid() []Job {
	var jobs []Job
	for _, n := range []int{2, 4, 8, 16} {
		for _, s := range []int{1, 2} {
			for _, q := range []int{0, 2} {
				jobs = append(jobs, Job{
					Workload:       Workload{Kind: SCU, Q: q, S: s},
					N:              n,
					Steps:          200000,
					WarmupFraction: DefaultWarmupFraction,
				})
			}
		}
	}
	return jobs
}

func benchSweep(b *testing.B, workers int) {
	jobs := scu16Grid()
	b.ReportMetric(float64(len(jobs)), "jobs")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Jobs: jobs, Seed: 1, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepSCU16Serial is the serial baseline for the 16-job SCU
// grid; BenchmarkSweepSCU16Parallel must beat it on >= 4 cores.
func BenchmarkSweepSCU16Serial(b *testing.B) { benchSweep(b, 1) }

func BenchmarkSweepSCU16Parallel(b *testing.B) { benchSweep(b, runtime.GOMAXPROCS(0)) }
