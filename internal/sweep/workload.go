package sweep

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"pwf/internal/machine"
	"pwf/internal/rng"
	"pwf/internal/sched"
	"pwf/internal/scu"
	"pwf/internal/shmem"
)

// WorkloadKind names a simulated algorithm family.
type WorkloadKind string

// The supported workload kinds, mirroring the algorithm catalogue of
// cmd/pwfsim.
const (
	SCU         WorkloadKind = "scu"         // Algorithm 2, SCU(q, s)
	Parallel    WorkloadKind = "parallel"    // Algorithm 4, q-step parallel code
	FetchInc    WorkloadKind = "fetchinc"    // Algorithm 5, augmented-CAS counter
	Unbounded   WorkloadKind = "unbounded"   // Algorithm 1, unbounded lock-free
	Stack       WorkloadKind = "stack"       // Treiber stack
	Queue       WorkloadKind = "queue"       // Michael–Scott queue
	RCU         WorkloadKind = "rcu"         // read-mostly RCU-style workload
	List        WorkloadKind = "list"        // Harris-style ordered list
	HashSet     WorkloadKind = "hashset"     // striped hash set
	LFUniversal WorkloadKind = "lfuniversal" // lock-free universal construction
	WFUniversal WorkloadKind = "wfuniversal" // wait-free universal construction
)

// Workload is a declarative description of the simulated algorithm of
// one job. The zero value of each parameter selects the documented
// default, so Workload values can be written as literals, compared,
// and serialized.
type Workload struct {
	Kind WorkloadKind `json:"kind"`
	// Q is the preamble length (SCU) or the steps per operation
	// (Parallel).
	Q int `json:"q,omitempty"`
	// S is the scan length (SCU).
	S int `json:"s,omitempty"`
	// WaitFactor scales the losers' wait loop of Algorithm 1
	// (Unbounded); 0 selects the paper's n².
	WaitFactor int64 `json:"wait_factor,omitempty"`
	// PoolSize is the per-process node pool of the data-structure
	// workloads (Stack, Queue, RCU, List, HashSet, WFUniversal);
	// 0 selects 64 (8 for WFUniversal).
	PoolSize int `json:"pool_size,omitempty"`
}

// Validate reports whether the workload is well-formed for n
// processes.
func (w Workload) Validate(n int) error {
	if n < 1 {
		return fmt.Errorf("sweep: workload %q needs n >= 1, got %d", w.Kind, n)
	}
	switch w.Kind {
	case SCU, Parallel, FetchInc, Unbounded, Stack, Queue, RCU, List,
		HashSet, LFUniversal, WFUniversal:
	default:
		return fmt.Errorf("sweep: unknown workload kind %q", w.Kind)
	}
	if w.Kind == Parallel && w.Q < 1 {
		return errors.New("sweep: parallel code needs Q >= 1")
	}
	if w.PoolSize < 0 {
		return fmt.Errorf("sweep: negative pool size %d", w.PoolSize)
	}
	return nil
}

// pool returns the configured pool size or the default.
func (w Workload) pool(def int) int {
	if w.PoolSize > 0 {
		return w.PoolSize
	}
	return def
}

// built is an assembled workload: the simulated memory, the process
// group, and an optional post-run invariant check (data-structure
// workloads verify linearizability witnesses after the run).
type built struct {
	mem   *shmem.Memory
	procs []machine.Process
	check func() error
}

// build assembles the workload for n processes.
func (w Workload) build(n int) (built, error) {
	switch w.Kind {
	case SCU:
		mem, err := shmem.New(scu.SCULayout(w.S))
		if err != nil {
			return built{}, err
		}
		procs, err := scu.NewSCUGroup(n, w.Q, w.S, 0)
		return built{mem: mem, procs: procs}, err
	case Parallel:
		mem, err := shmem.New(1)
		if err != nil {
			return built{}, err
		}
		procs, err := scu.NewParallelGroup(n, w.Q, 0)
		return built{mem: mem, procs: procs}, err
	case FetchInc:
		mem, err := shmem.New(scu.FetchIncLayout)
		if err != nil {
			return built{}, err
		}
		procs, err := scu.NewFetchIncGroup(n, 0)
		return built{mem: mem, procs: procs}, err
	case Unbounded:
		mem, err := shmem.New(scu.UnboundedLayout)
		if err != nil {
			return built{}, err
		}
		procs, err := scu.NewUnboundedGroup(n, 0, w.WaitFactor)
		return built{mem: mem, procs: procs}, err
	case Stack:
		pool := w.pool(64)
		st, err := scu.NewStack(n, pool, 0)
		if err != nil {
			return built{}, err
		}
		mem, err := shmem.New(scu.StackLayout(n, pool))
		if err != nil {
			return built{}, err
		}
		procs, err := st.Processes()
		return built{mem: mem, procs: procs, check: func() error {
			if st.Violations() != 0 || st.Err() != nil {
				return fmt.Errorf("sweep: stack misbehaved: %d violations, %v",
					st.Violations(), st.Err())
			}
			return nil
		}}, err
	case Queue:
		pool := w.pool(64)
		qu, err := scu.NewQueue(n, pool, 0)
		if err != nil {
			return built{}, err
		}
		mem, err := shmem.New(scu.QueueLayout(n, pool))
		if err != nil {
			return built{}, err
		}
		qu.Init(mem)
		procs, err := qu.Processes()
		return built{mem: mem, procs: procs}, err
	case RCU:
		pool := w.pool(64)
		readers := n - 1 - (n-1)/4 // read-mostly: ~3/4 readers
		r, err := scu.NewRCU(n, readers, pool, 0)
		if err != nil {
			return built{}, err
		}
		mem, err := shmem.New(scu.RCULayout(n-readers, pool))
		if err != nil {
			return built{}, err
		}
		procs, err := r.Processes()
		return built{mem: mem, procs: procs}, err
	case List:
		const keyspace = 32
		pool := w.pool(64)
		l, err := scu.NewList(n, pool, 0)
		if err != nil {
			return built{}, err
		}
		mem, err := shmem.New(scu.ListLayout(n, pool))
		if err != nil {
			return built{}, err
		}
		l.Init(mem)
		procs, err := l.Processes(keyspace)
		return built{mem: mem, procs: procs}, err
	case HashSet:
		const (
			buckets  = 8
			keyspace = 64
		)
		pool := w.pool(32)
		h, err := scu.NewHashSet(n, buckets, pool, 0)
		if err != nil {
			return built{}, err
		}
		mem, err := shmem.New(scu.HashSetLayout(n, buckets, pool))
		if err != nil {
			return built{}, err
		}
		h.Init(mem)
		procs, err := h.Processes(keyspace)
		return built{mem: mem, procs: procs}, err
	case LFUniversal:
		u, err := scu.NewLFUniversal(scu.CounterObject{}, n, 0)
		if err != nil {
			return built{}, err
		}
		mem, err := shmem.New(scu.LFUniversalLayout)
		if err != nil {
			return built{}, err
		}
		procs, err := u.Processes(func(pid int, seq int64) int64 { return 1 })
		return built{mem: mem, procs: procs}, err
	case WFUniversal:
		pool := w.pool(8)
		u, err := scu.NewWFUniversal(scu.CounterObject{}, n, pool, 0)
		if err != nil {
			return built{}, err
		}
		mem, err := shmem.New(scu.WFUniversalLayout(n, pool))
		if err != nil {
			return built{}, err
		}
		u.Init(mem)
		procs, err := u.Processes(func(pid int, seq int64) int64 { return 1 })
		return built{mem: mem, procs: procs}, err
	default:
		return built{}, fmt.Errorf("sweep: unknown workload kind %q", w.Kind)
	}
}

// SchedKind names a scheduler family.
type SchedKind string

// The supported scheduler kinds.
const (
	SchedUniform    SchedKind = "uniform"    // the paper's uniform stochastic scheduler
	SchedSticky     SchedKind = "sticky"     // Markov-modulated, reschedules with prob. Rho
	SchedRoundRobin SchedKind = "roundrobin" // deterministic fair baseline
	SchedLottery    SchedKind = "lottery"    // ticket-based lottery scheduling
	SchedAdversary  SchedKind = "adversary"  // singles out Victim, θ = 0
)

// SchedulerSpec is a declarative description of a scheduler, buildable
// for any n and seed. The zero value is the uniform scheduler.
type SchedulerSpec struct {
	Kind SchedKind `json:"kind,omitempty"`
	// Rho is the stickiness in [0, 1) (Sticky only).
	Rho float64 `json:"rho,omitempty"`
	// Tickets are the per-process lottery tickets (Lottery only); nil
	// gives every process one ticket.
	Tickets []int `json:"tickets,omitempty"`
	// Victim is the process the adversary singles out (Adversary only).
	Victim int `json:"victim,omitempty"`
}

// Validate reports whether the spec is well-formed for n processes.
func (s SchedulerSpec) Validate(n int) error {
	switch s.Kind {
	case "", SchedUniform, SchedRoundRobin:
		return nil
	case SchedSticky:
		if s.Rho < 0 || s.Rho >= 1 {
			return fmt.Errorf("sweep: sticky rho %v out of [0, 1)", s.Rho)
		}
		return nil
	case SchedLottery:
		if s.Tickets != nil && len(s.Tickets) != n {
			return fmt.Errorf("sweep: %d tickets for %d processes", len(s.Tickets), n)
		}
		return nil
	case SchedAdversary:
		if s.Victim < 0 || s.Victim >= n {
			return fmt.Errorf("sweep: adversary victim %d out of range [0, %d)", s.Victim, n)
		}
		return nil
	default:
		return fmt.Errorf("sweep: unknown scheduler kind %q", s.Kind)
	}
}

// build constructs the scheduler for n processes, drawing randomness
// from seed.
func (s SchedulerSpec) build(n int, seed uint64) (sched.Scheduler, error) {
	switch s.Kind {
	case "", SchedUniform:
		return sched.NewUniform(n, rng.New(seed))
	case SchedRoundRobin:
		return sched.NewRoundRobin(n)
	case SchedSticky:
		return sched.NewSticky(n, s.Rho, rng.New(seed))
	case SchedLottery:
		tickets := s.Tickets
		if tickets == nil {
			tickets = make([]int, n)
			for i := range tickets {
				tickets[i] = 1
			}
		}
		return sched.NewLottery(tickets, rng.New(seed))
	case SchedAdversary:
		return sched.NewAdversarial(n, sched.SingleOut(s.Victim))
	default:
		return nil, fmt.Errorf("sweep: unknown scheduler kind %q", s.Kind)
	}
}

// String renders the spec in the cmd/pwfsim flag syntax (e.g.
// "uniform", "sticky:0.9").
func (s SchedulerSpec) String() string {
	switch s.Kind {
	case "", SchedUniform:
		return string(SchedUniform)
	case SchedSticky:
		return fmt.Sprintf("sticky:%g", s.Rho)
	case SchedAdversary:
		return fmt.Sprintf("adversary:%d", s.Victim)
	default:
		return string(s.Kind)
	}
}

// ParseScheduler parses the cmd/pwfsim scheduler flag syntax:
// uniform, roundrobin, lottery, sticky:<rho>, adversary:<victim>.
func ParseScheduler(name string) (SchedulerSpec, error) {
	switch {
	case name == "uniform":
		return SchedulerSpec{Kind: SchedUniform}, nil
	case name == "roundrobin":
		return SchedulerSpec{Kind: SchedRoundRobin}, nil
	case name == "lottery":
		return SchedulerSpec{Kind: SchedLottery}, nil
	case strings.HasPrefix(name, "sticky:"):
		rho, err := strconv.ParseFloat(strings.TrimPrefix(name, "sticky:"), 64)
		if err != nil {
			return SchedulerSpec{}, fmt.Errorf("sweep: parse sticky rho: %w", err)
		}
		if rho < 0 || rho >= 1 {
			return SchedulerSpec{}, fmt.Errorf("sweep: sticky rho %v out of [0, 1)", rho)
		}
		return SchedulerSpec{Kind: SchedSticky, Rho: rho}, nil
	case strings.HasPrefix(name, "adversary:"):
		victim, err := strconv.Atoi(strings.TrimPrefix(name, "adversary:"))
		if err != nil {
			return SchedulerSpec{}, fmt.Errorf("sweep: parse adversary victim: %w", err)
		}
		return SchedulerSpec{Kind: SchedAdversary, Victim: victim}, nil
	default:
		return SchedulerSpec{}, fmt.Errorf("sweep: unknown scheduler %q", name)
	}
}
