package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"pwf/internal/machine"
	"pwf/internal/rng"
	"pwf/internal/sched"
	"pwf/internal/scu"
	"pwf/internal/shmem"
)

// WorkloadKind names a simulated algorithm family.
type WorkloadKind string

// The supported workload kinds, mirroring the algorithm catalogue of
// cmd/pwfsim.
const (
	SCU         WorkloadKind = "scu"         // Algorithm 2, SCU(q, s)
	Parallel    WorkloadKind = "parallel"    // Algorithm 4, q-step parallel code
	FetchInc    WorkloadKind = "fetchinc"    // Algorithm 5, augmented-CAS counter
	Unbounded   WorkloadKind = "unbounded"   // Algorithm 1, unbounded lock-free
	Stack       WorkloadKind = "stack"       // Treiber stack
	Queue       WorkloadKind = "queue"       // Michael–Scott queue
	RCU         WorkloadKind = "rcu"         // read-mostly RCU-style workload
	List        WorkloadKind = "list"        // Harris-style ordered list
	HashSet     WorkloadKind = "hashset"     // striped hash set
	LFUniversal WorkloadKind = "lfuniversal" // lock-free universal construction
	WFUniversal WorkloadKind = "wfuniversal" // wait-free universal construction
)

// Workload is a declarative description of the simulated algorithm of
// one job. The zero value of each parameter selects the documented
// default, so Workload values can be written as literals, compared,
// and serialized.
type Workload struct {
	Kind WorkloadKind `json:"kind"`
	// Q is the preamble length (SCU) or the steps per operation
	// (Parallel).
	Q int `json:"q,omitempty"`
	// S is the scan length (SCU).
	S int `json:"s,omitempty"`
	// WaitFactor scales the losers' wait loop of Algorithm 1
	// (Unbounded); 0 selects the paper's n².
	WaitFactor int64 `json:"wait_factor,omitempty"`
	// PoolSize is the per-process node pool of the data-structure
	// workloads (Stack, Queue, RCU, List, HashSet, WFUniversal);
	// 0 selects 64 (8 for WFUniversal).
	PoolSize int `json:"pool_size,omitempty"`
}

// Validate reports whether the workload is well-formed for n
// processes.
func (w Workload) Validate(n int) error {
	if n < 1 {
		return fmt.Errorf("sweep: workload %q needs n >= 1, got %d", w.Kind, n)
	}
	switch w.Kind {
	case SCU, Parallel, FetchInc, Unbounded, Stack, Queue, RCU, List,
		HashSet, LFUniversal, WFUniversal:
	default:
		return fmt.Errorf("sweep: unknown workload kind %q", w.Kind)
	}
	if w.Kind == Parallel && w.Q < 1 {
		return errors.New("sweep: parallel code needs Q >= 1")
	}
	if w.PoolSize < 0 {
		return fmt.Errorf("sweep: negative pool size %d", w.PoolSize)
	}
	return nil
}

// pool returns the configured pool size or the default.
func (w Workload) pool(def int) int {
	if w.PoolSize > 0 {
		return w.PoolSize
	}
	return def
}

// built is an assembled workload: the simulated memory, the process
// group, and an optional post-run invariant check (data-structure
// workloads verify linearizability witnesses after the run).
type built struct {
	mem   *shmem.Memory
	procs []machine.Process
	check func() error
}

// build assembles the workload for n processes.
func (w Workload) build(n int) (built, error) {
	switch w.Kind {
	case SCU:
		mem, err := shmem.New(scu.SCULayout(w.S))
		if err != nil {
			return built{}, err
		}
		procs, err := scu.NewSCUGroup(n, w.Q, w.S, 0)
		return built{mem: mem, procs: procs}, err
	case Parallel:
		mem, err := shmem.New(1)
		if err != nil {
			return built{}, err
		}
		procs, err := scu.NewParallelGroup(n, w.Q, 0)
		return built{mem: mem, procs: procs}, err
	case FetchInc:
		mem, err := shmem.New(scu.FetchIncLayout)
		if err != nil {
			return built{}, err
		}
		procs, err := scu.NewFetchIncGroup(n, 0)
		return built{mem: mem, procs: procs}, err
	case Unbounded:
		mem, err := shmem.New(scu.UnboundedLayout)
		if err != nil {
			return built{}, err
		}
		procs, err := scu.NewUnboundedGroup(n, 0, w.WaitFactor)
		return built{mem: mem, procs: procs}, err
	case Stack:
		pool := w.pool(64)
		st, err := scu.NewStack(n, pool, 0)
		if err != nil {
			return built{}, err
		}
		mem, err := shmem.New(scu.StackLayout(n, pool))
		if err != nil {
			return built{}, err
		}
		procs, err := st.Processes()
		return built{mem: mem, procs: procs, check: st.Check}, err
	case Queue:
		pool := w.pool(64)
		qu, err := scu.NewQueue(n, pool, 0)
		if err != nil {
			return built{}, err
		}
		mem, err := shmem.New(scu.QueueLayout(n, pool))
		if err != nil {
			return built{}, err
		}
		qu.Init(mem)
		procs, err := qu.Processes()
		return built{mem: mem, procs: procs, check: qu.Check}, err
	case RCU:
		pool := w.pool(64)
		readers := n - 1 - (n-1)/4 // read-mostly: ~3/4 readers
		r, err := scu.NewRCU(n, readers, pool, 0)
		if err != nil {
			return built{}, err
		}
		mem, err := shmem.New(scu.RCULayout(n-readers, pool))
		if err != nil {
			return built{}, err
		}
		procs, err := r.Processes()
		return built{mem: mem, procs: procs, check: r.Check}, err
	case List:
		const keyspace = 32
		pool := w.pool(64)
		l, err := scu.NewList(n, pool, 0)
		if err != nil {
			return built{}, err
		}
		mem, err := shmem.New(scu.ListLayout(n, pool))
		if err != nil {
			return built{}, err
		}
		l.Init(mem)
		procs, err := l.Processes(keyspace)
		return built{mem: mem, procs: procs}, err
	case HashSet:
		const (
			buckets  = 8
			keyspace = 64
		)
		pool := w.pool(32)
		h, err := scu.NewHashSet(n, buckets, pool, 0)
		if err != nil {
			return built{}, err
		}
		mem, err := shmem.New(scu.HashSetLayout(n, buckets, pool))
		if err != nil {
			return built{}, err
		}
		h.Init(mem)
		procs, err := h.Processes(keyspace)
		return built{mem: mem, procs: procs}, err
	case LFUniversal:
		u, err := scu.NewLFUniversal(scu.CounterObject{}, n, 0)
		if err != nil {
			return built{}, err
		}
		mem, err := shmem.New(scu.LFUniversalLayout)
		if err != nil {
			return built{}, err
		}
		procs, err := u.Processes(func(pid int, seq int64) int64 { return 1 })
		return built{mem: mem, procs: procs, check: u.Check}, err
	case WFUniversal:
		pool := w.pool(8)
		u, err := scu.NewWFUniversal(scu.CounterObject{}, n, pool, 0)
		if err != nil {
			return built{}, err
		}
		mem, err := shmem.New(scu.WFUniversalLayout(n, pool))
		if err != nil {
			return built{}, err
		}
		u.Init(mem)
		procs, err := u.Processes(func(pid int, seq int64) int64 { return 1 })
		return built{mem: mem, procs: procs}, err
	default:
		return built{}, fmt.Errorf("sweep: unknown workload kind %q", w.Kind)
	}
}

// SchedKind names a scheduler family.
type SchedKind string

// The supported scheduler kinds.
const (
	SchedUniform    SchedKind = "uniform"    // the paper's uniform stochastic scheduler
	SchedSticky     SchedKind = "sticky"     // Markov-modulated, reschedules with prob. Rho
	SchedRoundRobin SchedKind = "roundrobin" // deterministic fair baseline
	SchedLottery    SchedKind = "lottery"    // ticket-based lottery scheduling
	SchedWeighted   SchedKind = "weighted"   // fixed arbitrary distribution
	SchedPhased     SchedKind = "phased"     // cyclic time-varying weighted phases
	SchedAdversary  SchedKind = "adversary"  // singles out Victim, θ = 0
)

// PhaseSpec is one segment of a phased schedule: the per-process
// weights and the segment length in steps.
type PhaseSpec struct {
	// Weights gives each process's scheduling weight in this phase;
	// all must be strictly positive.
	Weights []float64 `json:"weights"`
	// Steps is the phase length; must be >= 1.
	Steps uint64 `json:"steps"`
}

// SchedulerSpec is a declarative description of a scheduler, buildable
// for any n and seed. The zero value is the uniform scheduler.
//
// SchedulerSpec has two interchangeable JSON forms: the object form
// ({"kind":"sticky","rho":0.9}) and the compact string form
// ("sticky:0.9"), which is exactly the CLI grammar of ParseScheduler.
// Marshaling always emits the object form (the canonical wire
// encoding); Unmarshal accepts either.
type SchedulerSpec struct {
	Kind SchedKind `json:"kind,omitempty"`
	// Rho is the stickiness in [0, 1) (Sticky only).
	Rho float64 `json:"rho,omitempty"`
	// Tickets are the per-process lottery tickets (Lottery only); nil
	// gives every process one ticket.
	Tickets []int `json:"tickets,omitempty"`
	// Weights are the per-process scheduling weights (Weighted only);
	// nil gives every process weight 1 (i.e. uniform).
	Weights []float64 `json:"weights,omitempty"`
	// Phases are the cyclic schedule segments (Phased only).
	Phases []PhaseSpec `json:"phases,omitempty"`
	// Victim is the process the adversary singles out (Adversary only).
	Victim int `json:"victim,omitempty"`
}

// Validate reports whether the spec is well-formed for n processes.
func (s SchedulerSpec) Validate(n int) error {
	switch s.Kind {
	case "", SchedUniform, SchedRoundRobin:
		return nil
	case SchedSticky:
		if s.Rho < 0 || s.Rho >= 1 || math.IsNaN(s.Rho) {
			return fmt.Errorf("sweep: sticky rho %v out of [0, 1)", s.Rho)
		}
		return nil
	case SchedLottery:
		if s.Tickets != nil && len(s.Tickets) != n {
			return fmt.Errorf("sweep: %d tickets for %d processes", len(s.Tickets), n)
		}
		for i, t := range s.Tickets {
			if t < 1 {
				return fmt.Errorf("sweep: lottery ticket %d for process %d must be positive", t, i)
			}
		}
		return nil
	case SchedWeighted:
		if s.Weights != nil && len(s.Weights) != n {
			return fmt.Errorf("sweep: %d weights for %d processes", len(s.Weights), n)
		}
		for i, w := range s.Weights {
			if !(w > 0) || math.IsInf(w, 1) {
				return fmt.Errorf("sweep: weight %v for process %d must be strictly positive and finite", w, i)
			}
		}
		return nil
	case SchedPhased:
		if len(s.Phases) == 0 {
			return errors.New("sweep: phased scheduler needs at least one phase")
		}
		for pi, ph := range s.Phases {
			if len(ph.Weights) != n {
				return fmt.Errorf("sweep: phase %d has %d weights for %d processes", pi, len(ph.Weights), n)
			}
			if ph.Steps < 1 {
				return fmt.Errorf("sweep: phase %d has zero length", pi)
			}
			for i, w := range ph.Weights {
				if !(w > 0) || math.IsInf(w, 1) {
					return fmt.Errorf("sweep: phase %d weight %v for process %d must be strictly positive and finite", pi, w, i)
				}
			}
		}
		return nil
	case SchedAdversary:
		if s.Victim < 0 || s.Victim >= n {
			return fmt.Errorf("sweep: adversary victim %d out of range [0, %d)", s.Victim, n)
		}
		return nil
	default:
		return fmt.Errorf("sweep: unknown scheduler kind %q", s.Kind)
	}
}

// build constructs the scheduler for n processes, drawing randomness
// from seed.
func (s SchedulerSpec) build(n int, seed uint64) (sched.Scheduler, error) {
	switch s.Kind {
	case "", SchedUniform:
		return sched.NewUniform(n, rng.New(seed))
	case SchedRoundRobin:
		return sched.NewRoundRobin(n)
	case SchedSticky:
		return sched.NewSticky(n, s.Rho, rng.New(seed))
	case SchedLottery:
		tickets := s.Tickets
		if tickets == nil {
			tickets = make([]int, n)
			for i := range tickets {
				tickets[i] = 1
			}
		}
		return sched.NewLottery(tickets, rng.New(seed))
	case SchedWeighted:
		weights := s.Weights
		if weights == nil {
			weights = make([]float64, n)
			for i := range weights {
				weights[i] = 1
			}
		}
		return sched.NewWeighted(weights, rng.New(seed))
	case SchedPhased:
		phases := make([]sched.Phase, len(s.Phases))
		for i, ph := range s.Phases {
			phases[i] = sched.Phase{Weights: ph.Weights, Steps: ph.Steps}
		}
		return sched.NewPhased(n, phases, rng.New(seed))
	case SchedAdversary:
		return sched.NewAdversarial(n, sched.SingleOut(s.Victim))
	default:
		return nil, fmt.Errorf("sweep: unknown scheduler kind %q", s.Kind)
	}
}

// String renders the spec in the shared scheduler grammar (e.g.
// "uniform", "sticky:0.9", "lottery:1,2,4", "phased:3,1@50/1,3@50").
// The rendering round-trips: ParseScheduler(s.String()) reproduces s.
func (s SchedulerSpec) String() string {
	switch s.Kind {
	case "", SchedUniform:
		return string(SchedUniform)
	case SchedSticky:
		return fmt.Sprintf("sticky:%g", s.Rho)
	case SchedLottery:
		if s.Tickets == nil {
			return string(SchedLottery)
		}
		parts := make([]string, len(s.Tickets))
		for i, t := range s.Tickets {
			parts[i] = strconv.Itoa(t)
		}
		return "lottery:" + strings.Join(parts, ",")
	case SchedWeighted:
		if s.Weights == nil {
			return string(SchedWeighted)
		}
		return "weighted:" + joinFloats(s.Weights)
	case SchedPhased:
		parts := make([]string, len(s.Phases))
		for i, ph := range s.Phases {
			parts[i] = fmt.Sprintf("%s@%d", joinFloats(ph.Weights), ph.Steps)
		}
		return "phased:" + strings.Join(parts, "/")
	case SchedAdversary:
		return fmt.Sprintf("adversary:%d", s.Victim)
	default:
		return string(s.Kind)
	}
}

func joinFloats(fs []float64) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = strconv.FormatFloat(f, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}

// UnmarshalJSON accepts the object form or the compact string form
// ("sticky:0.9"), the latter decoded through ParseScheduler so the
// CLI flag grammar and the wire format are one grammar.
func (s *SchedulerSpec) UnmarshalJSON(b []byte) error {
	trimmed := strings.TrimSpace(string(b))
	if strings.HasPrefix(trimmed, `"`) {
		var name string
		if err := json.Unmarshal(b, &name); err != nil {
			return err
		}
		spec, err := ParseScheduler(name)
		if err != nil {
			return err
		}
		*s = spec
		return nil
	}
	// plain decodes without recursing into this method.
	type plain SchedulerSpec
	var p plain
	if err := json.Unmarshal(b, &p); err != nil {
		return err
	}
	*s = SchedulerSpec(p)
	return nil
}

// ParseScheduler parses the shared scheduler grammar used by the CLI
// -sched flags and the JSON string form of SchedulerSpec:
//
//	uniform                      the paper's uniform scheduler
//	roundrobin                   deterministic fair baseline
//	sticky:<rho>                 Markov-modulated, rho in [0, 1)
//	lottery                      one ticket per process
//	lottery:<t1>,<t2>,...        explicit tickets (fixes n)
//	weighted                     weight 1 per process
//	weighted:<w1>,<w2>,...       explicit weights (fixes n)
//	phased:<w..>@<steps>/...     cyclic phases, e.g. phased:3,1@50/1,3@50
//	adversary:<victim>           singles out one process, θ = 0
func ParseScheduler(name string) (SchedulerSpec, error) {
	kind, arg, hasArg := strings.Cut(name, ":")
	switch SchedKind(kind) {
	case SchedUniform, SchedRoundRobin:
		if hasArg {
			return SchedulerSpec{}, fmt.Errorf("sweep: scheduler %q takes no argument", kind)
		}
		return SchedulerSpec{Kind: SchedKind(kind)}, nil
	case SchedSticky:
		if !hasArg {
			return SchedulerSpec{}, errors.New(`sweep: sticky needs a stickiness, e.g. "sticky:0.9"`)
		}
		rho, err := strconv.ParseFloat(arg, 64)
		if err != nil {
			return SchedulerSpec{}, fmt.Errorf("sweep: parse sticky rho: %w", err)
		}
		if rho < 0 || rho >= 1 || math.IsNaN(rho) {
			return SchedulerSpec{}, fmt.Errorf("sweep: sticky rho %v out of [0, 1)", rho)
		}
		return SchedulerSpec{Kind: SchedSticky, Rho: rho}, nil
	case SchedLottery:
		if !hasArg {
			return SchedulerSpec{Kind: SchedLottery}, nil
		}
		fields := strings.Split(arg, ",")
		tickets := make([]int, len(fields))
		for i, f := range fields {
			t, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return SchedulerSpec{}, fmt.Errorf("sweep: parse lottery ticket %q: %w", f, err)
			}
			if t < 1 {
				return SchedulerSpec{}, fmt.Errorf("sweep: lottery ticket %d must be positive", t)
			}
			tickets[i] = t
		}
		return SchedulerSpec{Kind: SchedLottery, Tickets: tickets}, nil
	case SchedWeighted:
		if !hasArg {
			return SchedulerSpec{Kind: SchedWeighted}, nil
		}
		weights, err := parseWeights(arg)
		if err != nil {
			return SchedulerSpec{}, err
		}
		return SchedulerSpec{Kind: SchedWeighted, Weights: weights}, nil
	case SchedPhased:
		if !hasArg || arg == "" {
			return SchedulerSpec{}, errors.New(`sweep: phased needs phases, e.g. "phased:3,1@50/1,3@50"`)
		}
		segs := strings.Split(arg, "/")
		phases := make([]PhaseSpec, len(segs))
		for i, seg := range segs {
			ws, stepsStr, ok := strings.Cut(seg, "@")
			if !ok {
				return SchedulerSpec{}, fmt.Errorf("sweep: phase %q needs the form <weights>@<steps>", seg)
			}
			weights, err := parseWeights(ws)
			if err != nil {
				return SchedulerSpec{}, fmt.Errorf("sweep: phase %d: %w", i, err)
			}
			steps, err := strconv.ParseUint(stepsStr, 10, 64)
			if err != nil {
				return SchedulerSpec{}, fmt.Errorf("sweep: parse phase %d length %q: %w", i, stepsStr, err)
			}
			if steps < 1 {
				return SchedulerSpec{}, fmt.Errorf("sweep: phase %d has zero length", i)
			}
			phases[i] = PhaseSpec{Weights: weights, Steps: steps}
		}
		return SchedulerSpec{Kind: SchedPhased, Phases: phases}, nil
	case SchedAdversary:
		if !hasArg {
			return SchedulerSpec{}, errors.New(`sweep: adversary needs a victim, e.g. "adversary:0"`)
		}
		victim, err := strconv.Atoi(arg)
		if err != nil {
			return SchedulerSpec{}, fmt.Errorf("sweep: parse adversary victim: %w", err)
		}
		return SchedulerSpec{Kind: SchedAdversary, Victim: victim}, nil
	default:
		return SchedulerSpec{}, fmt.Errorf("sweep: unknown scheduler %q", name)
	}
}

// parseWeights parses a comma-separated list of strictly positive
// finite floats.
func parseWeights(s string) ([]float64, error) {
	fields := strings.Split(s, ",")
	weights := make([]float64, len(fields))
	for i, f := range fields {
		w, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("sweep: parse weight %q: %w", f, err)
		}
		if !(w > 0) || math.IsInf(w, 1) {
			return nil, fmt.Errorf("sweep: weight %v must be strictly positive and finite", w)
		}
		weights[i] = w
	}
	return weights, nil
}
