package sweep

import (
	"math"
	"sync"
	"testing"
)

func TestChainCacheHitsOnSecondBuild(t *testing.T) {
	c := NewChainCache()
	a1, err := c.SCUSystem(4)
	if err != nil {
		t.Fatal(err)
	}
	if h, m := c.Hits(), c.Misses(); h != 0 || m != 1 {
		t.Fatalf("after first build: hits=%d misses=%d, want 0/1", h, m)
	}
	a2, err := c.SCUSystem(4)
	if err != nil {
		t.Fatal(err)
	}
	if h, m := c.Hits(), c.Misses(); h != 1 || m != 1 {
		t.Fatalf("after second build: hits=%d misses=%d, want 1/1", h, m)
	}
	if a1 != a2 {
		t.Error("cache returned distinct analyses for the same key")
	}
	// A different n is a different key.
	if _, err := c.SCUSystem(3); err != nil {
		t.Fatal(err)
	}
	if h, m := c.Hits(), c.Misses(); h != 1 || m != 2 {
		t.Fatalf("after third build: hits=%d misses=%d, want 1/2", h, m)
	}
}

func TestChainCacheSweepHitsCache(t *testing.T) {
	// Two jobs needing the same exact chain in one sweep: the second
	// must hit the cache (the acceptance-criterion scenario).
	c := NewChainCache()
	jobs := []Job{
		{Workload: Workload{Kind: SCU, S: 1}, N: 4, Steps: 2000, Exact: true},
		{Workload: Workload{Kind: SCU, S: 1}, N: 4, Steps: 2000, Exact: true},
	}
	if _, err := Run(Config{Jobs: jobs, Seed: 1, Workers: 1, Cache: c}); err != nil {
		t.Fatal(err)
	}
	if h, m := c.Hits(), c.Misses(); h != 1 || m != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", h, m)
	}
}

func TestChainCacheFamiliesKeyedSeparately(t *testing.T) {
	c := NewChainCache()
	if _, err := c.SCUSystem(4); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FetchIncGlobal(4); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ParallelSystem(4, 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.SCUIndividual(4); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.FetchIncIndividual(4); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.ParallelIndividual(4, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SCUSystemQS(4, 1, 1); err != nil {
		t.Fatal(err)
	}
	if h, m := c.Hits(), c.Misses(); h != 0 || m != 7 {
		t.Errorf("hits=%d misses=%d, want 0/7 (distinct keys)", h, m)
	}
}

func TestChainCacheCachesErrors(t *testing.T) {
	c := NewChainCache()
	// n far beyond the dense solver's reach must error, cheaply, twice.
	if _, _, err := c.SCUIndividual(64); err == nil {
		t.Fatal("expected an intractable-size error")
	}
	if _, _, err := c.SCUIndividual(64); err == nil {
		t.Fatal("expected the cached error")
	}
	if h := c.Hits(); h != 1 {
		t.Errorf("error entry not cached: hits=%d", h)
	}
}

func TestChainCacheConcurrentSingleBuild(t *testing.T) {
	c := NewChainCache()
	const goroutines = 16
	var wg sync.WaitGroup
	values := make([]float64, goroutines)
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			a, err := c.SCUSystem(5)
			if err != nil {
				errs[g] = err
				return
			}
			values[g], errs[g] = a.SystemLatency()
		}()
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
		if math.Abs(values[g]-values[0]) != 0 {
			t.Fatalf("goroutine %d saw a different latency", g)
		}
	}
	if got := c.Hits() + c.Misses(); got != goroutines {
		t.Errorf("%d lookups recorded for %d requests", got, goroutines)
	}
	if c.Misses() != 1 {
		t.Errorf("misses=%d, want exactly 1 build", c.Misses())
	}
}

func TestChainCacheLiftsUsable(t *testing.T) {
	c := NewChainCache()
	ind, lift, err := c.SCUIndividual(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(lift) != ind.Chain.N() {
		t.Errorf("lift has %d entries for %d states", len(lift), ind.Chain.N())
	}
}
