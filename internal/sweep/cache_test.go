package sweep

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"pwf/internal/chains"
)

func TestChainCacheHitsOnSecondBuild(t *testing.T) {
	c := NewChainCache()
	a1, err := c.SCUSystem(4)
	if err != nil {
		t.Fatal(err)
	}
	if h, m := c.Hits(), c.Misses(); h != 0 || m != 1 {
		t.Fatalf("after first build: hits=%d misses=%d, want 0/1", h, m)
	}
	a2, err := c.SCUSystem(4)
	if err != nil {
		t.Fatal(err)
	}
	if h, m := c.Hits(), c.Misses(); h != 1 || m != 1 {
		t.Fatalf("after second build: hits=%d misses=%d, want 1/1", h, m)
	}
	if a1 != a2 {
		t.Error("cache returned distinct analyses for the same key")
	}
	// A different n is a different key.
	if _, err := c.SCUSystem(3); err != nil {
		t.Fatal(err)
	}
	if h, m := c.Hits(), c.Misses(); h != 1 || m != 2 {
		t.Fatalf("after third build: hits=%d misses=%d, want 1/2", h, m)
	}
}

func TestChainCacheSweepHitsCache(t *testing.T) {
	// Two jobs needing the same exact chain in one sweep: the second
	// must hit the cache (the acceptance-criterion scenario).
	c := NewChainCache()
	jobs := []Job{
		{Workload: Workload{Kind: SCU, S: 1}, N: 4, Steps: 2000, Exact: true},
		{Workload: Workload{Kind: SCU, S: 1}, N: 4, Steps: 2000, Exact: true},
	}
	if _, err := Run(Config{Jobs: jobs, Seed: 1, Workers: 1, Cache: c}); err != nil {
		t.Fatal(err)
	}
	if h, m := c.Hits(), c.Misses(); h != 1 || m != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", h, m)
	}
}

func TestChainCacheFamiliesKeyedSeparately(t *testing.T) {
	c := NewChainCache()
	if _, err := c.SCUSystem(4); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FetchIncGlobal(4); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ParallelSystem(4, 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.SCUIndividual(4); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.FetchIncIndividual(4); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.ParallelIndividual(4, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SCUSystemQS(4, 1, 1); err != nil {
		t.Fatal(err)
	}
	if h, m := c.Hits(), c.Misses(); h != 0 || m != 7 {
		t.Errorf("hits=%d misses=%d, want 0/7 (distinct keys)", h, m)
	}
}

func TestChainCacheCachesErrors(t *testing.T) {
	c := NewChainCache()
	// n far beyond the dense solver's reach must error, cheaply, twice.
	if _, _, err := c.SCUIndividual(64); err == nil {
		t.Fatal("expected an intractable-size error")
	}
	if _, _, err := c.SCUIndividual(64); err == nil {
		t.Fatal("expected the cached error")
	}
	if h := c.Hits(); h != 1 {
		t.Errorf("error entry not cached: hits=%d", h)
	}
}

func TestChainCacheConcurrentSingleBuild(t *testing.T) {
	c := NewChainCache()
	const goroutines = 16
	var wg sync.WaitGroup
	values := make([]float64, goroutines)
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			a, err := c.SCUSystem(5)
			if err != nil {
				errs[g] = err
				return
			}
			values[g], errs[g] = a.SystemLatency()
		}()
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
		if math.Abs(values[g]-values[0]) != 0 {
			t.Fatalf("goroutine %d saw a different latency", g)
		}
	}
	if got := c.Hits() + c.Misses(); got != goroutines {
		t.Errorf("%d lookups recorded for %d requests", got, goroutines)
	}
	if c.Misses() != 1 {
		t.Errorf("misses=%d, want exactly 1 build", c.Misses())
	}
}

// TestChainCacheConcurrentOverlappingKeys hammers the cache from
// GOMAXPROCS goroutines whose key sets overlap, counting actual
// builder invocations with an atomic per key. Single-computation
// semantics must hold under -race: each key is built exactly once no
// matter how many goroutines race on it, every requester sees the
// builder's result, and the hit/miss counters account for every
// lookup.
func TestChainCacheConcurrentOverlappingKeys(t *testing.T) {
	c := NewChainCache()
	const (
		keys          = 8
		getsPerWorker = 200
	)
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	builds := make([]atomic.Uint64, keys)
	// Distinct sentinel per key so we can check every get returned its
	// own key's build, not a neighbour's. The sentinels must be real
	// solvable analyses because get eagerly solves the stationary
	// distribution; repeated construction yields distinct pointers.
	analyses := make([]*chains.Analysis, keys)
	for k := range analyses {
		a, _, err := chains.SCUSystem(2)
		if err != nil {
			t.Fatal(err)
		}
		analyses[k] = a
	}

	var wg sync.WaitGroup
	var wrong atomic.Uint64
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < getsPerWorker; i++ {
				// Stride by worker so goroutines collide on every key
				// rather than marching in lockstep.
				k := (i*(w+1) + w) % keys
				a, lift, err := c.get(fmt.Sprintf("hammer-%d", k), func() (*chains.Analysis, []int, error) {
					builds[k].Add(1)
					return analyses[k], []int{k}, nil
				})
				if err != nil || a != analyses[k] || len(lift) != 1 || lift[0] != k {
					wrong.Add(1)
				}
			}
		}()
	}
	close(start)
	wg.Wait()

	if n := wrong.Load(); n != 0 {
		t.Errorf("%d gets saw the wrong analysis/lift/err", n)
	}
	for k := range builds {
		if n := builds[k].Load(); n != 1 {
			t.Errorf("key %d built %d times, want exactly 1", k, n)
		}
	}
	total := uint64(workers) * getsPerWorker
	if got := c.Hits() + c.Misses(); got != total {
		t.Errorf("hits+misses = %d, want %d", got, total)
	}
	if m := c.Misses(); m != keys {
		t.Errorf("misses = %d, want one per key (%d)", m, keys)
	}
}

func TestChainCacheLiftsUsable(t *testing.T) {
	c := NewChainCache()
	ind, lift, err := c.SCUIndividual(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(lift) != ind.Chain.N() {
		t.Errorf("lift has %d entries for %d states", len(lift), ind.Chain.N())
	}
}
