// Package sweep is the parallel experiment engine: it executes a
// declarative grid of independent simulation jobs — algorithm family,
// process count, scheduler, steps, warmup — on a worker pool, with
// per-job deterministic seed derivation and a shared memoization cache
// for the exact Markov-chain analyses that figure drivers pair with
// every simulated point.
//
// Determinism is the design center. Each job draws its scheduler
// randomness from an rng stream derived purely from (master seed, job
// index), so a sweep's results are byte-identical whether it runs on
// one worker or sixteen, and regardless of completion order. Results
// are returned in input order.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"pwf/internal/machine"
	"pwf/internal/obs"
	"pwf/internal/rng"
	"pwf/internal/sched"
)

// Latencies aggregates the measurements of one simulation run. It is
// re-exported as pwf.Latencies.
type Latencies struct {
	// System is the expected number of system steps between two
	// completions by anyone (the paper's system latency W).
	System float64 `json:"system"`
	// Individual is the mean over processes of the expected number of
	// system steps between two completions by the same process (W_i).
	Individual float64 `json:"individual"`
	// CompletionRate is completions per system step (Figure 5's
	// y-axis; ≈ 1/System).
	CompletionRate float64 `json:"completion_rate"`
	// Fairness is Jain's fairness index of per-process completion
	// counts (1 = perfectly fair).
	Fairness float64 `json:"fairness"`
	// Completions is the total number of completed operations in the
	// measurement window.
	Completions uint64 `json:"completions"`
}

// Job is one point of a sweep grid.
type Job struct {
	// Workload selects and parameterizes the simulated algorithm.
	Workload Workload `json:"workload"`
	// N is the number of processes.
	N int `json:"n"`
	// Sched selects the scheduler; the zero value is uniform.
	Sched SchedulerSpec `json:"sched"`
	// Steps is the length of the measurement window in system steps.
	Steps uint64 `json:"steps"`
	// WarmupFraction is the warmup run before the measurement window,
	// as a fraction of Steps in [0, 1). The zero value means no
	// warmup; use DefaultWarmupFraction for the conventional 10%.
	WarmupFraction float64 `json:"warmup_fraction"`
	// Crash fail-stops the highest-id Crash processes before the run;
	// the scheduler must support crashes.
	Crash int `json:"crash,omitempty"`
	// Exact requests the exact-chain system latency alongside the
	// simulation, where a chain family exists (SCU, FetchInc,
	// Parallel) and is tractable.
	Exact bool `json:"exact,omitempty"`
	// Replicas expands the job into a seed group: the sweep runs
	// Replicas points of this exact shape (0 and 1 both mean one
	// point), each with its own derived seed and its own Result.
	// Expansion happens before seed derivation, so a job with
	// Replicas = r occupies r consecutive point indices and shifts
	// the seeds of all later jobs; it is part of the grid's identity,
	// not an execution hint. Same-shape points coalesce into replica
	// batches when Config.ReplicaBatch allows.
	Replicas int `json:"replicas,omitempty"`
	// Label is carried through to the result for presentation.
	Label string `json:"label,omitempty"`

	// CompletionHook, when non-nil, observes every completion
	// (including warmup) as (step, pid). Hooks run on the worker
	// executing the job; they must not share mutable state with other
	// jobs' hooks unless synchronized.
	CompletionHook func(step uint64, pid int) `json:"-"`

	// Recorder, when non-nil, receives the job's step-level telemetry
	// events (package obs): scheduling decisions, CAS outcomes,
	// retries, operation boundaries, crash injections. Inside a sweep
	// the recorder is shared across workers, so it must be safe for
	// concurrent use (obs.TraceRecorder and obs.Metrics are).
	Recorder obs.Recorder `json:"-"`
}

// DefaultWarmupFraction is the conventional warmup used by the paper
// reproduction drivers: 10% of the measurement window.
const DefaultWarmupFraction = 0.1

// Validate reports whether the job is well-formed.
func (j Job) Validate() error {
	if err := j.Workload.Validate(j.N); err != nil {
		return err
	}
	if err := j.Sched.Validate(j.N); err != nil {
		return err
	}
	if j.Steps == 0 {
		return errors.New("sweep: job needs Steps >= 1")
	}
	if j.WarmupFraction < 0 || j.WarmupFraction >= 1 ||
		math.IsNaN(j.WarmupFraction) {
		return fmt.Errorf("sweep: warmup fraction %v out of [0, 1)", j.WarmupFraction)
	}
	if j.Crash < 0 || j.Crash >= j.N {
		return fmt.Errorf("sweep: cannot crash %d of %d processes", j.Crash, j.N)
	}
	if j.Replicas < 0 {
		return fmt.Errorf("sweep: negative replica count %d", j.Replicas)
	}
	return nil
}

// Result is the structured outcome of one job, in input order.
type Result struct {
	// Index is the job's position in Config.Jobs.
	Index int `json:"index"`
	// Label echoes Job.Label.
	Label string `json:"label,omitempty"`
	// Job echoes the executed job.
	Job Job `json:"job"`
	// Seed is the derived rng seed the job's scheduler drew from.
	Seed uint64 `json:"seed"`
	// Latencies are the measured latency and fairness metrics.
	Latencies Latencies `json:"latencies"`
	// ProcCompletions is the per-process completion count over the
	// measurement window.
	ProcCompletions []uint64 `json:"proc_completions,omitempty"`
	// Starved lists processes with zero completions.
	Starved []int `json:"starved,omitempty"`
	// Theta is the scheduler's stochasticity threshold θ.
	Theta float64 `json:"theta"`
	// Exact is the exact-chain system latency; valid only when
	// ExactOK. Requested via Job.Exact, unavailable when no chain
	// family matches or the state space is intractable.
	Exact float64 `json:"exact,omitempty"`
	// ExactOK reports whether Exact is valid.
	ExactOK bool `json:"exact_ok,omitempty"`
	// Elapsed is the job's wall time (not deterministic).
	Elapsed time.Duration `json:"elapsed_ns"`
}

// ErrCanceled marks a sweep stopped by Config.Context before every
// point completed. Run returns it (wrapping the context's own error,
// so errors.Is matches both) alongside the partial results. Match with
// errors.Is to distinguish cancellation from job failure, which
// returns nil results.
var ErrCanceled = errors.New("sweep: canceled")

// Checkpoint is the crash-safe resume state of a sweep: Run consults
// it once per point before dispatch and records every newly completed
// point through it. Implementations must be safe for concurrent Commit
// calls from multiple workers. The file-backed implementation — an
// append-only log under a header binding the grid hash and master
// seed — lives in internal/checkpoint; binding checkpoints to the
// right grid is the opener's job, not Run's.
type Checkpoint interface {
	// Restore returns the completed result for point index i, if the
	// checkpoint holds one. Restored points are not re-executed and
	// not re-committed.
	Restore(i int) (Result, bool)
	// Commit durably records one newly completed point. An error fails
	// the sweep: a run that cannot record its progress must not
	// pretend to be resumable.
	Commit(Result) error
}

// Config describes a sweep.
type Config struct {
	// Jobs is the grid, executed logically in order; results are
	// aggregated in input order.
	Jobs []Job
	// Seed is the master seed. Job i draws from rng.Stream(Seed, i).
	Seed uint64
	// Workers bounds the worker pool; 0 selects GOMAXPROCS.
	Workers int
	// Cache memoizes exact-chain constructions; nil selects the
	// process-wide DefaultCache.
	Cache *ChainCache
	// Warmup, when non-nil, overrides every job's WarmupFraction —
	// the sweep-level counterpart of pwf.WithWarmupFraction. It must
	// lie in [0, 1).
	Warmup *float64
	// BatchFamilies reorders job *execution* (never results or seeds)
	// so jobs of the same family — workload parameters, process and
	// crash counts, full scheduler spec, exactness — run adjacently:
	// compatible jobs share ChainCache entries and hot code paths.
	// Because job i always draws from rng.Stream(Seed, i), results
	// are byte-identical with batching on or off.
	BatchFamilies bool
	// ReplicaBatch enables the replica-batched simulator core: up to
	// ReplicaBatch same-shape points (identical job apart from Label,
	// adjacent after family ordering, which ReplicaBatch implies)
	// execute together in one struct-of-arrays BatchSim, one
	// scheduler draw table and one workload state block stepping all
	// replicas per loop iteration. 0 and 1 select the scalar path.
	// Every point still draws from rng.Stream(Seed, i) and batched
	// results are byte-identical to the scalar path; shapes without a
	// batched form (data-structure workloads, per-job hooks or
	// recorders) fall back to scalar execution transparently.
	ReplicaBatch int
	// Progress, when non-nil, is called after each job completes with
	// the number of completed jobs and the total. Calls are serialized
	// but may come from any worker, in completion order.
	Progress func(done, total int)
	// OnResult, when non-nil, observes each successful job result as
	// it completes — the streaming counterpart of the returned slice.
	// Calls are serialized but arrive in completion order, not input
	// order; use Result.Index to reorder.
	OnResult func(Result)
	// Context, when non-nil, cancels the sweep at the next dispatch
	// boundary: no further point groups start, groups already handed
	// to a worker run to completion (at most one per worker), and Run
	// returns ErrCanceled wrapping the context's error alongside the
	// partial results (completed entries keep their values; unstarted
	// ones are zero). Cancellation is only observed while points
	// remain to dispatch: a sweep whose every point was already handed
	// out completes normally and returns nil.
	Context context.Context
	// Checkpoint, when non-nil, makes the sweep resumable: points the
	// checkpoint already holds are restored instead of executed —
	// replayed through OnResult in input order before any new
	// execution, counted as done by the first Progress call — and each
	// newly completed point is committed before its callbacks fire.
	// Because point i always draws from rng.Stream(Seed, i), a resumed
	// sweep's results are byte-identical (in canonical encoding, which
	// excludes wall time) to an uninterrupted run of the same grid.
	Checkpoint Checkpoint
	// Recorder, when non-nil, receives per-job lifecycle events
	// (obs.KindJobStart/KindJobEnd) and the step-level telemetry of
	// every job that does not set its own Job.Recorder. It must be
	// safe for concurrent use; events from concurrently executing jobs
	// interleave.
	Recorder obs.Recorder
	// Registry receives the sweep's execution-path counters when
	// ReplicaBatch > 1: sweep_batch_jobs counts points executed on the
	// replica-batched path, sweep_batch_fallbacks points that fell back
	// to scalar execution despite batching being requested. Nil selects
	// obs.Default.
	Registry *obs.Registry
	// OnBatchFallback, when non-nil and ReplicaBatch > 1, is called at
	// most once per distinct reason when points fall back to scalar
	// execution — a workload without a batched form, a per-job hook or
	// recorder, or a batch construction failure. Calls are serialized
	// but may come from any worker.
	OnBatchFallback func(reason string)
}

// job returns job i with sweep-level overrides applied.
func (cfg *Config) job(i int) Job {
	job := cfg.Jobs[i]
	if cfg.Warmup != nil {
		job.WarmupFraction = *cfg.Warmup
	}
	return job
}

// expandPoints flattens the grid into points: job i with overrides
// applied, repeated max(1, Replicas) times. Point p draws its seed
// from rng.Stream(Seed, p), so the expansion — not the execution
// mode — defines the grid's seed layout.
func expandPoints(cfg Config) []Job {
	points := make([]Job, 0, len(cfg.Jobs))
	for i := range cfg.Jobs {
		job := cfg.job(i)
		reps := job.Replicas
		if reps < 1 {
			reps = 1
		}
		for c := 0; c < reps; c++ {
			points = append(points, job)
		}
	}
	return points
}

// Points returns the expanded point list of a configuration — job i
// with sweep-level overrides applied, repeated max(1, Replicas) times.
// This layout is the grid's identity: point p draws its seed from
// rng.Stream(Seed, p) and checkpoint records are keyed by point
// index, so the checkpoint layer binds resume state to a hash of
// exactly this expansion.
func Points(cfg Config) []Job { return expandPoints(cfg) }

// familyKey renders everything that determines which code paths and
// ChainCache entries a job exercises: the full workload and scheduler
// parameterization (not just the kinds — two weighted schedulers with
// different weight vectors are different families), the process and
// crash counts, and exactness.
func familyKey(j Job) string {
	return fmt.Sprintf("%s|q%d|s%d|w%d|p%d|n%d|c%d|x%t|%s",
		j.Workload.Kind, j.Workload.Q, j.Workload.S, j.Workload.WaitFactor,
		j.Workload.PoolSize, j.N, j.Crash, j.Exact, j.Sched)
}

// shapeKey extends familyKey with the run length: points with equal
// shape keys are identical jobs apart from Label and can share one
// lockstep replica batch.
func shapeKey(j Job) string {
	return fmt.Sprintf("%s|t%d|f%g", familyKey(j), j.Steps, j.WarmupFraction)
}

// dispatchGroups returns the units of work handed to workers: point
// index groups, each either a singleton (scalar execution) or a run
// of same-shape batchable points (one BatchSim). Points marked in
// skip (checkpoint-restored; nil means none) are not dispatched at
// all. With BatchFamilies or ReplicaBatch the order groups
// same-family points adjacently (stable, so relative input order is
// kept); otherwise input order.
func dispatchGroups(cfg Config, points []Job, skip []bool) [][]int {
	order := make([]int, 0, len(points))
	for i := range points {
		if skip == nil || !skip[i] {
			order = append(order, i)
		}
	}
	width := cfg.ReplicaBatch
	var keys []string
	if cfg.BatchFamilies || width > 1 {
		keys = make([]string, len(points))
		for i := range points {
			keys[i] = shapeKey(points[i])
		}
		sort.SliceStable(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	}
	groups := make([][]int, 0, len(order))
	for start := 0; start < len(order); {
		end := start + 1
		if width > 1 && batchable(cfg, points[order[start]]) {
			key := keys[order[start]]
			for end < len(order) && end-start < width &&
				batchable(cfg, points[order[end]]) &&
				keys[order[end]] == key {
				end++
			}
		}
		groups = append(groups, order[start:end])
		start = end
	}
	return groups
}

// cbQueue serializes user callbacks without ever holding the sweep's
// bookkeeping mutex around them: workers enqueue closures (cheap, under
// the queue's own lock) and exactly one worker at a time drains the
// queue. A callback that blocks — say, OnResult streaming to a stalled
// client — stalls only the draining worker's progress through *this*
// queue; done accounting and the other queue keep flowing.
type cbQueue struct {
	mu       sync.Mutex
	pending  []func()
	draining bool
}

func (q *cbQueue) enqueue(fn func()) {
	q.mu.Lock()
	q.pending = append(q.pending, fn)
	q.mu.Unlock()
}

func (q *cbQueue) drain() {
	q.mu.Lock()
	if q.draining {
		q.mu.Unlock()
		return
	}
	q.draining = true
	for len(q.pending) > 0 {
		fn := q.pending[0]
		q.pending = q.pending[1:]
		q.mu.Unlock()
		q.call(fn)
		q.mu.Lock()
	}
	q.draining = false
	q.mu.Unlock()
}

// call invokes one callback. A panicking callback must not leave the
// queue marked draining — that would silently swallow every later
// callback — so the panic is caught, the drain lock released, and the
// panic re-raised to the calling worker. Callbacks still queued when a
// callback panics are delivered by the next drain (normally the next
// point's finish); the panic itself propagates out of Run's worker
// unless the caller recovers it.
func (q *cbQueue) call(fn func()) {
	defer func() {
		if r := recover(); r != nil {
			q.mu.Lock()
			q.draining = false
			q.mu.Unlock()
			panic(r)
		}
	}()
	fn()
}

// Run executes the sweep and returns one result per point — one per
// job, times its Replicas expansion — in input order. The first point
// error aborts the sweep (workers finish their in-flight work) and is
// returned wrapped with the point index.
func Run(cfg Config) ([]Result, error) {
	if len(cfg.Jobs) == 0 {
		return nil, errors.New("sweep: no jobs")
	}
	if cfg.Warmup != nil {
		if f := *cfg.Warmup; f < 0 || f >= 1 || math.IsNaN(f) {
			return nil, fmt.Errorf("sweep: warmup fraction %v out of [0, 1)", f)
		}
	}
	if cfg.ReplicaBatch < 0 {
		return nil, fmt.Errorf("sweep: negative replica batch width %d", cfg.ReplicaBatch)
	}
	for i := range cfg.Jobs {
		if err := cfg.job(i).Validate(); err != nil {
			return nil, fmt.Errorf("job %d: %w", i, err)
		}
	}
	points := expandPoints(cfg)
	total := len(points)
	cache := cfg.Cache
	if cache == nil {
		cache = DefaultCache
	}
	var ctxDone <-chan struct{}
	if cfg.Context != nil {
		ctxDone = cfg.Context.Done()
	}

	results := make([]Result, total)
	errs := make([]error, total)

	// Restore checkpointed points before anything executes: they keep
	// their recorded values, skip dispatch entirely, replay through
	// OnResult in input order (so a streaming consumer sees the full
	// stream exactly once), and count as done for Progress.
	var restored []bool
	nrestored := 0
	if cfg.Checkpoint != nil {
		restored = make([]bool, total)
		for i := range points {
			res, ok := cfg.Checkpoint.Restore(i)
			if !ok {
				continue
			}
			res.Index = i
			results[i] = res
			restored[i] = true
			nrestored++
		}
		if cfg.OnResult != nil {
			for i := range points {
				if restored[i] {
					cfg.OnResult(results[i])
				}
			}
		}
		if cfg.Progress != nil && nrestored > 0 {
			cfg.Progress(nrestored, total)
		}
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total-nrestored {
		workers = total - nrestored
	}

	var (
		mu   sync.Mutex
		done = nrestored
		fail bool

		resultQ, progressQ cbQueue
	)
	// Batch-path observability: counters for points that ran batched vs
	// fell back to scalar, and a per-reason once-only fallback callback.
	// Lone batchable points (nothing same-shaped to coalesce with) count
	// as neither — batching was not applicable, not bypassed.
	var (
		batchJobs, batchFallbacks *obs.Counter
		noteFallback              func(reason string)
	)
	if cfg.ReplicaBatch > 1 {
		reg := cfg.Registry
		if reg == nil {
			reg = obs.Default
		}
		batchJobs = reg.Counter("sweep_batch_jobs")
		batchFallbacks = reg.Counter("sweep_batch_fallbacks")
		var fmu sync.Mutex
		seen := make(map[string]bool)
		noteFallback = func(reason string) {
			if reason == "" {
				return
			}
			fmu.Lock()
			defer fmu.Unlock()
			if seen[reason] {
				return
			}
			seen[reason] = true
			if cfg.OnBatchFallback != nil {
				cfg.OnBatchFallback(reason)
			}
		}
	}
	// finish publishes one point's outcome: the checkpoint commit
	// first (a completed point that cannot be recorded fails, not
	// lies), bookkeeping under mu, callbacks through their queues
	// (never under mu — see cbQueue).
	finish := func(i int, res Result, err error) {
		if err == nil && cfg.Checkpoint != nil {
			if cerr := cfg.Checkpoint.Commit(res); cerr != nil {
				err = fmt.Errorf("checkpoint commit: %w", cerr)
			}
		}
		results[i], errs[i] = res, err
		mu.Lock()
		done++
		d := done
		if err != nil {
			fail = true
		}
		if err == nil && cfg.OnResult != nil {
			resultQ.enqueue(func() { cfg.OnResult(res) })
		}
		if cfg.Progress != nil {
			progressQ.enqueue(func() { cfg.Progress(d, total) })
		}
		mu.Unlock()
		resultQ.drain()
		progressQ.drain()
	}
	runScalar := func(i int) {
		job := points[i]
		if job.Recorder == nil {
			job.Recorder = cfg.Recorder
		}
		if cfg.Recorder != nil {
			cfg.Recorder.Record(obs.Event{Kind: obs.KindJobStart, Job: i, Label: job.Label})
		}
		res, err := RunJob(job, rng.Stream(cfg.Seed, uint64(i)), cache)
		res.Index = i
		if cfg.Recorder != nil {
			cfg.Recorder.Record(obs.Event{
				Kind: obs.KindJobEnd, Job: i, Label: job.Label,
				ElapsedNS: res.Elapsed.Nanoseconds(),
			})
		}
		finish(i, res, err)
	}
	idx := make(chan []int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for grp := range idx {
				if len(grp) == 1 {
					if batchFallbacks != nil {
						if reason := batchFallbackReason(cfg, points[grp[0]]); reason != "" {
							batchFallbacks.Inc()
							noteFallback(reason)
						}
					}
					runScalar(grp[0])
					continue
				}
				jobs := make([]Job, len(grp))
				seeds := make([]uint64, len(grp))
				for r, i := range grp {
					jobs[r] = points[i]
					seeds[r] = rng.Stream(cfg.Seed, uint64(i))
				}
				batchRes, batchErrs, err := runJobBatch(jobs, seeds, cache)
				if err != nil {
					// No batched form (or batch construction failed):
					// run the group's points on the scalar path, which
					// either succeeds or reports the real error.
					if batchFallbacks != nil {
						batchFallbacks.Add(uint64(len(grp)))
						noteFallback(err.Error())
					}
					for _, i := range grp {
						runScalar(i)
					}
					continue
				}
				if batchJobs != nil {
					batchJobs.Add(uint64(len(grp)))
				}
				for r, i := range grp {
					batchRes[r].Index = i
					finish(i, batchRes[r], batchErrs[r])
				}
			}
		}()
	}
	canceled := false
feed:
	for _, grp := range dispatchGroups(cfg, points, restored) {
		select {
		case idx <- grp:
		case <-ctxDone:
			canceled = true
			break feed
		}
		mu.Lock()
		stop := fail
		mu.Unlock()
		if stop {
			break
		}
	}
	close(idx)
	wg.Wait()
	if canceled {
		return results, fmt.Errorf("%w: %w", ErrCanceled, cfg.Context.Err())
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sweep: job %d (%s): %w", i, describe(points[i]), err)
		}
	}
	return results, nil
}

// RunJob executes a single job with an explicit scheduler seed, no
// stream derivation, and returns its result with Index 0. It is the
// single-run primitive behind pwf.Run.
func RunJob(job Job, seed uint64, cache *ChainCache) (Result, error) {
	if err := job.Validate(); err != nil {
		return Result{}, err
	}
	if cache == nil {
		cache = DefaultCache
	}
	began := time.Now()

	scheduler, err := job.Sched.build(job.N, seed)
	if err != nil {
		return Result{}, err
	}
	if job.Crash > 0 {
		crasher, ok := scheduler.(sched.Crasher)
		if !ok {
			return Result{}, fmt.Errorf("sweep: scheduler %q does not support crashes", job.Sched)
		}
		for pid := job.N - job.Crash; pid < job.N; pid++ {
			if err := crasher.Crash(pid); err != nil {
				return Result{}, fmt.Errorf("sweep: crash process %d: %w", pid, err)
			}
			if job.Recorder != nil {
				// Pre-run crashes take effect before step 1.
				job.Recorder.Record(obs.Event{Kind: obs.KindCrash, Step: 0, PID: pid})
			}
		}
	}
	b, err := job.Workload.build(job.N)
	if err != nil {
		return Result{}, err
	}
	sim, err := machine.New(b.mem, b.procs, scheduler)
	if err != nil {
		return Result{}, err
	}
	if job.CompletionHook != nil {
		sim.SetCompletionHook(job.CompletionHook)
	}
	if job.Recorder != nil {
		sim.SetRecorder(job.Recorder)
	}

	res := Result{
		Label: job.Label,
		Job:   job,
		Seed:  seed,
		Theta: scheduler.Threshold(),
	}
	if res.Latencies, err = measure(sim, job.Steps, job.WarmupFraction); err != nil {
		return Result{}, err
	}
	res.ProcCompletions = sim.Completions()
	res.Starved = sim.StarvedProcesses()
	if b.check != nil {
		if err := b.check(); err != nil {
			return Result{}, err
		}
	}
	if job.Exact {
		res.Exact, res.ExactOK = exactLatency(job, cache)
	}
	res.Elapsed = time.Since(began)
	return res, nil
}

// measure runs the warmup, discards its metrics, runs the measurement
// window and collects Latencies.
func measure(sim *machine.Sim, steps uint64, warmupFraction float64) (Latencies, error) {
	if warmup := uint64(warmupFraction * float64(steps)); warmup > 0 {
		if err := sim.Run(warmup); err != nil {
			return Latencies{}, err
		}
	}
	sim.ResetMetrics()
	if err := sim.Run(steps); err != nil {
		return Latencies{}, err
	}
	var out Latencies
	var err error
	if out.System, err = sim.SystemLatency(); err != nil {
		return Latencies{}, err
	}
	if out.Individual, err = sim.MeanIndividualLatency(); err != nil {
		return Latencies{}, err
	}
	out.CompletionRate = sim.CompletionRate()
	out.Fairness = sim.FairnessIndex()
	out.Completions = sim.TotalCompletions()
	return out, nil
}

// exactLatency computes the exact-chain system latency for the job's
// workload through the cache. A missing chain family or an intractable
// state space yields ok = false, not an error: sweeps routinely mix
// tractable and intractable points.
func exactLatency(job Job, cache *ChainCache) (w float64, ok bool) {
	var (
		a   interface{ SystemLatency() (float64, error) }
		err error
	)
	switch job.Workload.Kind {
	case SCU:
		if job.Workload.Q == 0 && job.Workload.S == 1 {
			a, err = cache.SCUSystem(job.N)
		} else {
			a, err = cache.SCUSystemQS(job.N, job.Workload.Q, job.Workload.S)
		}
	case FetchInc:
		a, err = cache.FetchIncGlobal(job.N)
	case Parallel:
		a, err = cache.ParallelSystem(job.N, job.Workload.Q)
	default:
		return 0, false
	}
	if err != nil {
		return 0, false
	}
	w, err = a.SystemLatency()
	return w, err == nil
}

// describe renders a job compactly for error messages.
func describe(job Job) string {
	return fmt.Sprintf("%s n=%d sched=%s steps=%d", job.Workload.Kind, job.N, job.Sched, job.Steps)
}
