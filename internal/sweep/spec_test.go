package sweep

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// The full scheduler grammar, table-driven: every form the CLIs and
// the server's JSON decoding share.
func TestParseSchedulerFullGrammar(t *testing.T) {
	good := []struct {
		in   string
		want SchedulerSpec
	}{
		{"uniform", SchedulerSpec{Kind: SchedUniform}},
		{"roundrobin", SchedulerSpec{Kind: SchedRoundRobin}},
		{"sticky:0.9", SchedulerSpec{Kind: SchedSticky, Rho: 0.9}},
		{"sticky:0", SchedulerSpec{Kind: SchedSticky, Rho: 0}},
		{"lottery", SchedulerSpec{Kind: SchedLottery}},
		{"lottery:1,2,4", SchedulerSpec{Kind: SchedLottery, Tickets: []int{1, 2, 4}}},
		{"lottery: 3 , 5", SchedulerSpec{Kind: SchedLottery, Tickets: []int{3, 5}}},
		{"weighted", SchedulerSpec{Kind: SchedWeighted}},
		{"weighted:0.5,0.25,0.25", SchedulerSpec{Kind: SchedWeighted, Weights: []float64{0.5, 0.25, 0.25}}},
		{"phased:3,1@50/1,3@50", SchedulerSpec{Kind: SchedPhased, Phases: []PhaseSpec{
			{Weights: []float64{3, 1}, Steps: 50},
			{Weights: []float64{1, 3}, Steps: 50},
		}}},
		{"phased:1,1,2@1000", SchedulerSpec{Kind: SchedPhased, Phases: []PhaseSpec{
			{Weights: []float64{1, 1, 2}, Steps: 1000},
		}}},
		{"adversary:2", SchedulerSpec{Kind: SchedAdversary, Victim: 2}},
	}
	for _, tc := range good {
		got, err := ParseScheduler(tc.in)
		if err != nil {
			t.Errorf("%q: %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%q parsed to %+v, want %+v", tc.in, got, tc.want)
		}
	}

	bad := []struct {
		in      string
		errWant string
	}{
		{"nope", "unknown scheduler"},
		{"uniform:1", "takes no argument"},
		{"roundrobin:2", "takes no argument"},
		{"sticky", "needs a stickiness"},
		{"sticky:abc", "parse sticky rho"},
		{"sticky:1.5", "out of [0, 1)"},
		{"sticky:-0.1", "out of [0, 1)"},
		{"sticky:NaN", "out of [0, 1)"},
		{"lottery:1,x", "parse lottery ticket"},
		{"lottery:0", "must be positive"},
		{"lottery:1,-2", "must be positive"},
		{"weighted:0.5,zero", "parse weight"},
		{"weighted:0", "strictly positive"},
		{"weighted:-1", "strictly positive"},
		{"weighted:1,+Inf", "strictly positive and finite"},
		{"weighted:NaN", "strictly positive"},
		{"phased", "needs phases"},
		{"phased:", "needs phases"},
		{"phased:1,2", "<weights>@<steps>"},
		{"phased:1,2@x", "parse phase 0 length"},
		{"phased:1,2@0", "zero length"},
		{"phased:1,2@50/3@", "parse phase 1 length"},
		{"phased:a@50", "parse weight"},
		{"adversary", "needs a victim"},
		{"adversary:x", "parse adversary victim"},
	}
	for _, tc := range bad {
		_, err := ParseScheduler(tc.in)
		if err == nil {
			t.Errorf("%q parsed without error", tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.errWant) {
			t.Errorf("%q error %q does not mention %q", tc.in, err, tc.errWant)
		}
	}
}

// Every spec expressible in the grammar round-trips through String.
func TestSchedulerSpecStringRoundTrips(t *testing.T) {
	for _, in := range []string{
		"uniform", "roundrobin", "sticky:0.9", "lottery", "lottery:1,2,4",
		"weighted", "weighted:0.5,0.25,0.25", "phased:3,1@50/1,3@50",
		"adversary:2",
	} {
		spec, err := ParseScheduler(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if got := spec.String(); got != in {
			t.Errorf("String() = %q, want %q", got, in)
		}
		again, err := ParseScheduler(spec.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", spec.String(), err)
		}
		if !reflect.DeepEqual(again, spec) {
			t.Errorf("round trip of %q: %+v != %+v", in, again, spec)
		}
	}
}

// JSON decoding accepts both the canonical object form and the
// compact string form, which must agree with ParseScheduler verbatim.
func TestSchedulerSpecJSONStringForm(t *testing.T) {
	for _, tc := range []struct {
		jsonIn string
		want   string // grammar form of the expected spec
	}{
		{`"uniform"`, "uniform"},
		{`"sticky:0.25"`, "sticky:0.25"},
		{`"lottery:2,1"`, "lottery:2,1"},
		{`"phased:1,4@10/4,1@10"`, "phased:1,4@10/4,1@10"},
		{`{"kind":"sticky","rho":0.25}`, "sticky:0.25"},
		{`{"kind":"weighted","weights":[1,2]}`, "weighted:1,2"},
		{`{"kind":"phased","phases":[{"weights":[1,4],"steps":10}]}`, "phased:1,4@10"},
		{`{}`, "uniform"},
	} {
		var got SchedulerSpec
		if err := json.Unmarshal([]byte(tc.jsonIn), &got); err != nil {
			t.Errorf("unmarshal %s: %v", tc.jsonIn, err)
			continue
		}
		if got.String() != tc.want {
			t.Errorf("unmarshal %s = %q, want %q", tc.jsonIn, got, tc.want)
		}
	}
	var spec SchedulerSpec
	if err := json.Unmarshal([]byte(`"sticky:1.5"`), &spec); err == nil {
		t.Error("invalid string spec decoded without error")
	}
	if err := json.Unmarshal([]byte(`42`), &spec); err == nil {
		t.Error("numeric spec decoded without error")
	}

	// Marshal emits the object form, and it round-trips.
	orig := SchedulerSpec{Kind: SchedPhased, Phases: []PhaseSpec{
		{Weights: []float64{1, 2}, Steps: 5},
	}}
	b, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(string(b), `"`) {
		t.Fatalf("Marshal emitted string form: %s", b)
	}
	var back SchedulerSpec
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, orig) {
		t.Errorf("JSON round trip: %+v != %+v", back, orig)
	}
}

// Weighted and phased specs validate and build into running jobs.
func TestWeightedAndPhasedSpecsRun(t *testing.T) {
	for _, schedStr := range []string{
		"weighted", "weighted:1,2,3,4", "phased:3,1,1,1@50/1,1,1,3@50",
	} {
		spec, err := ParseScheduler(schedStr)
		if err != nil {
			t.Fatal(err)
		}
		job := Job{Workload: Workload{Kind: SCU, S: 1}, N: 4, Sched: spec, Steps: 20000}
		res, err := RunJob(job, 7, nil)
		if err != nil {
			t.Fatalf("%s: %v", schedStr, err)
		}
		if res.Latencies.Completions == 0 {
			t.Errorf("%s: no completions", schedStr)
		}
		if res.Theta <= 0 {
			t.Errorf("%s: theta %v not positive for a stochastic scheduler", schedStr, res.Theta)
		}
	}

	// Length mismatches are caught by Validate, not deep in build.
	for _, tc := range []struct {
		spec SchedulerSpec
		n    int
	}{
		{SchedulerSpec{Kind: SchedWeighted, Weights: []float64{1, 2}}, 4},
		{SchedulerSpec{Kind: SchedLottery, Tickets: []int{1, 2, 3}}, 2},
		{SchedulerSpec{Kind: SchedPhased, Phases: []PhaseSpec{{Weights: []float64{1}, Steps: 5}}}, 3},
		{SchedulerSpec{Kind: SchedPhased}, 3},
	} {
		if err := tc.spec.Validate(tc.n); err == nil {
			t.Errorf("%+v validated for n=%d", tc.spec, tc.n)
		}
	}
}
