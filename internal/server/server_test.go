package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"pwf/internal/api"
	"pwf/internal/obs"
	"pwf/internal/sweep"
)

func testGrid() api.Grid {
	return api.Grid{
		V:    api.Version,
		Seed: 7,
		Jobs: []api.Job{
			{Workload: api.Workload{Kind: sweep.SCU, S: 1}, N: 3, Steps: 5000, Exact: true},
			{Workload: api.Workload{Kind: sweep.FetchInc}, N: 2, Steps: 5000, Exact: true},
			{Workload: api.Workload{Kind: sweep.SCU, S: 1}, N: 4, Steps: 5000,
				Sched: api.SchedulerSpec{Kind: sweep.SchedSticky, Rho: 0.5}},
			{Workload: api.Workload{Kind: sweep.FetchInc}, N: 3, Steps: 5000},
		},
	}
}

// localLines renders the grid's canonical result lines by running the
// sweep in-process — the ground truth HTTP streams must match
// byte-for-byte.
func localLines(t *testing.T, g api.Grid) []byte {
	t.Helper()
	results, err := sweep.Run(sweep.Config{Jobs: g.SweepJobs(), Seed: g.Seed})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, r := range results {
		if err := api.WriteResultLine(&buf, api.ResultFromSweep(r)); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	if cfg.Cache == nil {
		cfg.Cache = sweep.NewChainCache()
	}
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, g api.Grid) (id string, jobs int) {
	t.Helper()
	body, err := api.MarshalGrid(g)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, b)
	}
	var ack struct {
		V          int    `json:"v"`
		ID         string `json:"id"`
		Jobs       int    `json:"jobs"`
		ResultsURL string `json:"results_url"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.V != api.Version || ack.ID == "" ||
		ack.ResultsURL != "/v1/sweeps/"+ack.ID+"/results" {
		t.Fatalf("malformed ack: %+v", ack)
	}
	return ack.ID, ack.Jobs
}

func decodeError(t *testing.T, resp *http.Response) api.Error {
	t.Helper()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("error response Content-Type = %q, want application/json", ct)
	}
	var e api.Error
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("error body did not decode as api.Error: %v", err)
	}
	if e.V != api.Version {
		t.Errorf("error body v = %d, want %d", e.V, api.Version)
	}
	return e
}

// The acceptance criterion: results streamed over HTTP are
// byte-identical to the canonical lines a local run of the same grid
// and master seed produces.
func TestStreamedResultsMatchLocalRun(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 2})
	g := testGrid()
	id, jobs := submit(t, ts, g)
	if jobs != len(g.Jobs) {
		t.Fatalf("ack reports %d jobs, want %d", jobs, len(g.Jobs))
	}

	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("results Content-Type = %q, want application/x-ndjson", ct)
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if want := localLines(t, g); !bytes.Equal(got, want) {
		t.Errorf("streamed bytes differ from local run:\n got: %s\nwant: %s", got, want)
	}

	// The stream is also valid canonical NDJSON with per-job indices
	// in input order.
	results, err := api.ReadResults(bytes.NewReader(got))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Index != i {
			t.Errorf("line %d has index %d; stream must be in input order", i, r.Index)
		}
	}

	// And the status endpoint reports completion.
	st, err := http.Get(ts.URL + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Body.Close()
	var status struct {
		Status string `json:"status"`
		Done   int    `json:"done"`
		Total  int    `json:"total"`
	}
	if err := json.NewDecoder(st.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.Status != "done" || status.Done != len(g.Jobs) || status.Total != len(g.Jobs) {
		t.Errorf("status after stream = %+v, want done %d/%d", status, len(g.Jobs), len(g.Jobs))
	}
}

// Cursor resume: a client that read k lines and reconnected with
// cursor=k sees exactly the remaining lines — no duplicates, no gaps.
func TestResultsCursorResume(t *testing.T) {
	_, ts := startServer(t, Config{})
	g := testGrid()
	id, _ := submit(t, ts, g)
	want := localLines(t, g)
	wantLines := bytes.SplitAfter(bytes.TrimSuffix(want, []byte("\n")), []byte("\n"))

	// First connection: read two lines, then drop it mid-stream.
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	var head bytes.Buffer
	for i := 0; i < 2; i++ {
		line, err := br.ReadBytes('\n')
		if err != nil {
			t.Fatal(err)
		}
		head.Write(line)
	}
	resp.Body.Close()

	// Resume from cursor=2, once via the query parameter and once via
	// the Last-Event-ID header; both must return exactly the tail.
	for _, mk := range []func() *http.Request{
		func() *http.Request {
			r, _ := http.NewRequest("GET", ts.URL+"/v1/sweeps/"+id+"/results?cursor=2", nil)
			return r
		},
		func() *http.Request {
			r, _ := http.NewRequest("GET", ts.URL+"/v1/sweeps/"+id+"/results", nil)
			r.Header.Set("Last-Event-ID", "2")
			return r
		},
	} {
		resp, err := http.DefaultClient.Do(mk())
		if err != nil {
			t.Fatal(err)
		}
		tail, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		full := append(append([]byte{}, head.Bytes()...), tail...)
		if !bytes.Equal(full, want) {
			t.Errorf("head+tail != full stream:\n got: %s\nwant: %s", full, want)
		}
		gotLines := bytes.SplitAfter(bytes.TrimSuffix(tail, []byte("\n")), []byte("\n"))
		if len(gotLines) != len(wantLines)-2 {
			t.Errorf("resume returned %d lines, want %d", len(gotLines), len(wantLines)-2)
		}
	}

	// Cursor at the end yields an empty, immediately-closed stream.
	resp, err = http.Get(fmt.Sprintf("%s/v1/sweeps/%s/results?cursor=%d", ts.URL, id, len(g.Jobs)))
	if err != nil {
		t.Fatal(err)
	}
	rest, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Errorf("cursor=total returned %d bytes, want none", len(rest))
	}

	// Out-of-range and malformed cursors are structured 400s.
	for _, cursor := range []string{"-1", "999", "two"} {
		resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/results?cursor=" + cursor)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("cursor=%s: status %d, want 400", cursor, resp.StatusCode)
		}
		if e := decodeError(t, resp); e.Code != api.CodeInvalidGrid {
			t.Errorf("cursor=%s: code %q", cursor, e.Code)
		}
	}
}

// A client that disconnects mid-stream releases its handler: the
// blocked stream observes the canceled request context and the
// disconnect counter advances.
func TestClientDisconnectMidStream(t *testing.T) {
	reg := obs.NewRegistry()
	gate := make(chan struct{})
	_, ts := startServer(t, Config{Registry: reg, gate: gate})
	id, _ := submit(t, ts, testGrid())

	// The sweep is gated, so the stream has nothing to send and parks
	// in its wait loop.
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/sweeps/"+id+"/results", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["server_streams_opened"]; got != 1 {
		t.Errorf("streams opened = %d, want 1", got)
	}
	cancel()
	resp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for reg.Snapshot().Counters["server_streams_disconnected"] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("disconnect was never observed by the handler")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(gate) // let the sweep drain before Cleanup closes the server
}

// Oversized submissions are rejected up front with structured bodies:
// too many jobs (grid_too_large) and too many bytes (body_too_large).
func TestOversizedSubmissionsRejected(t *testing.T) {
	_, ts := startServer(t, Config{MaxGridJobs: 2, MaxBodyBytes: 512})

	g := testGrid() // 4 jobs > MaxGridJobs, but also > 512 bytes, so shrink steps first
	small := api.Grid{V: api.Version, Seed: 1, Jobs: []api.Job{
		{Workload: api.Workload{Kind: sweep.FetchInc}, N: 2, Steps: 100},
		{Workload: api.Workload{Kind: sweep.FetchInc}, N: 3, Steps: 100},
		{Workload: api.Workload{Kind: sweep.FetchInc}, N: 4, Steps: 100},
	}}
	body, err := api.MarshalGrid(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) > 512 {
		t.Fatalf("test grid unexpectedly large: %d bytes", len(body))
	}
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("3-job grid with MaxGridJobs=2: status %d, want 413", resp.StatusCode)
	}
	if e := decodeError(t, resp); e.Code != api.CodeGridTooLarge {
		t.Errorf("code %q, want %q", e.Code, api.CodeGridTooLarge)
	}

	g.Jobs[0].Label = strings.Repeat("x", 600)
	big, err := api.MarshalGrid(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(big) <= 512 {
		t.Fatalf("big grid unexpectedly small: %d bytes", len(big))
	}
	resp, err = http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", resp.StatusCode)
	}
	if e := decodeError(t, resp); e.Code != api.CodeBodyTooLarge {
		t.Errorf("code %q, want %q", e.Code, api.CodeBodyTooLarge)
	}
}

// Bounded admission: once queued jobs reach MaxQueuedJobs, further
// submissions get 429 with a Retry-After header and a structured
// body, and the queue-depth gauge exposes the backlog.
func TestOverloadRejectsWith429(t *testing.T) {
	reg := obs.NewRegistry()
	gate := make(chan struct{})
	_, ts := startServer(t, Config{Registry: reg, MaxQueuedJobs: 4, RetryAfter: 3 * time.Second, gate: gate})

	if _, jobs := submit(t, ts, testGrid()); jobs != 4 {
		t.Fatalf("first submission queued %d jobs, want 4", jobs)
	}
	if depth := reg.Snapshot().Gauges["server_queue_depth"]; depth != 4 {
		t.Errorf("queue depth = %d, want 4", depth)
	}

	body, err := api.MarshalGrid(api.Grid{V: api.Version, Seed: 1, Jobs: []api.Job{
		{Workload: api.Workload{Kind: sweep.FetchInc}, N: 2, Steps: 100},
	}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", ra)
	}
	e := decodeError(t, resp)
	if e.Code != api.CodeOverloaded {
		t.Errorf("code %q, want %q", e.Code, api.CodeOverloaded)
	}
	if e.RetryAfterSec != 3 {
		t.Errorf("retry_after_sec = %d, want 3", e.RetryAfterSec)
	}
	if got := reg.Snapshot().Counters["server_sweeps_rejected_overload"]; got != 1 {
		t.Errorf("overload rejections = %d, want 1", got)
	}

	// Releasing the gate drains the queue; capacity comes back and the
	// same submission is now accepted.
	close(gate)
	deadline := time.Now().Add(10 * time.Second)
	for reg.Snapshot().Gauges["server_queue_depth"] != 0 {
		if time.Now().After(deadline) {
			t.Fatal("queue never drained after releasing the gate")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err = http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("post-drain submission: status %d, want 202", resp.StatusCode)
	}
}

// Malformed submissions and unknown sweeps produce structured errors
// with stable codes.
func TestStructuredErrors(t *testing.T) {
	_, ts := startServer(t, Config{})
	for _, tc := range []struct {
		name, body string
		status     int
		code       string
	}{
		{"not json", "nope", http.StatusBadRequest, api.CodeInvalidGrid},
		{"unknown field", `{"v":1,"seed":1,"jobs":[{"workload":{"kind":"scu"},"n":2,"steps":10,"warmup_fraction":0,"bogus":1}]}`,
			http.StatusBadRequest, api.CodeInvalidGrid},
		{"empty grid", `{"v":1,"seed":1,"jobs":[]}`, http.StatusBadRequest, api.CodeInvalidGrid},
		{"wrong version", `{"v":9,"seed":1,"jobs":[{"workload":{"kind":"scu"},"n":2,"steps":10,"warmup_fraction":0}]}`,
			http.StatusBadRequest, api.CodeUnsupportedVersion},
	} {
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
		if e := decodeError(t, resp); e.Code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.name, e.Code, tc.code)
		}
	}

	for _, path := range []string{"/v1/sweeps/nope", "/v1/sweeps/nope/results", "/bogus"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
		if e := decodeError(t, resp); e.Code != api.CodeNotFound {
			t.Errorf("GET %s: code %q, want %q", path, e.Code, api.CodeNotFound)
		}
	}
}

// The observability surface: /healthz answers, /metrics exposes queue
// depth, batching counters, per-job latency histogram, and the chain
// cache's hit/miss gauges.
func TestMetricsSurface(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := startServer(t, Config{Registry: reg})
	g := testGrid()
	id, _ := submit(t, ts, g)
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Errorf("/healthz status %d", hz.StatusCode)
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(mr.Body).Decode(&snap); err != nil {
		t.Fatalf("/metrics did not decode as a snapshot: %v", err)
	}
	if got := snap.Counters["server_jobs_completed"]; got != uint64(len(g.Jobs)) {
		t.Errorf("jobs completed = %d, want %d", got, len(g.Jobs))
	}
	if snap.Counters["server_sweeps_accepted"] != 1 {
		t.Errorf("sweeps accepted = %d, want 1", snap.Counters["server_sweeps_accepted"])
	}
	// testGrid has 4 jobs in 4 distinct families (different scheds /
	// exactness), so coalescing is 0 here; the counter must exist.
	if _, ok := snap.Counters["server_jobs_coalesced"]; !ok {
		t.Error("server_jobs_coalesced counter missing")
	}
	if _, ok := snap.Gauges["server_queue_depth"]; !ok {
		t.Error("server_queue_depth gauge missing")
	}
	if _, ok := snap.Gauges["chain_cache_hits"]; !ok {
		t.Error("chain_cache_hits gauge missing")
	}
	h, ok := snap.Histograms["server_job_latency_ns"]
	if !ok {
		t.Fatal("server_job_latency_ns histogram missing")
	}
	if h.Count != uint64(len(g.Jobs)) {
		t.Errorf("latency histogram count = %d, want %d", h.Count, len(g.Jobs))
	}
}

// Family batching advertises its coalescing: a grid of same-family
// jobs counts len(jobs)-1 coalesced dispatches. Families are keyed on
// the full job shape — jobs differing in N (or weights, or crash
// plans) are distinct families, only presentation fields coalesce.
func TestCoalescingCounter(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := startServer(t, Config{Registry: reg})
	g := api.Grid{V: api.Version, Seed: 3, Jobs: []api.Job{
		{Workload: api.Workload{Kind: sweep.FetchInc}, N: 3, Steps: 200, Label: "a"},
		{Workload: api.Workload{Kind: sweep.FetchInc}, N: 3, Steps: 200, Label: "b"},
		{Workload: api.Workload{Kind: sweep.FetchInc}, N: 3, Steps: 200, Label: "c"},
		{Workload: api.Workload{Kind: sweep.FetchInc}, N: 4, Steps: 200},
	}}
	id, _ := submit(t, ts, g)
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if want := localLines(t, g); !bytes.Equal(got, want) {
		t.Errorf("batched sweep bytes differ from local run:\n got: %s\nwant: %s", got, want)
	}
	if c := reg.Snapshot().Counters["server_jobs_coalesced"]; c != 2 {
		t.Errorf("jobs coalesced = %d, want 2 (4 jobs, 2 families)", c)
	}
}

// A replica-heavy grid — one shape repeated across many jobs, the
// sweep the batched simulator core coalesces — still streams bytes
// identical to the scalar local run.
func TestReplicaHeavyGridMatchesLocalRun(t *testing.T) {
	jobs := make([]api.Job, 24)
	for i := range jobs {
		jobs[i] = api.Job{Workload: api.Workload{Kind: sweep.SCU, S: 1}, N: 5, Steps: 2000}
	}
	g := api.Grid{V: api.Version, Seed: 41, Jobs: jobs}
	_, ts := startServer(t, Config{Workers: 2})
	id, _ := submit(t, ts, g)
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if want := localLines(t, g); !bytes.Equal(got, want) {
		t.Errorf("replica-batched sweep bytes differ from scalar local run:\n got: %s\nwant: %s", got, want)
	}
}

// Finished sweeps are evicted after the retention window: the id
// 404s, the store shrinks, and the eviction is counted in /metrics.
func TestRetentionEvictsFinishedSweeps(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := startServer(t, Config{Retention: 50 * time.Millisecond, Registry: reg})
	g := testGrid()
	id, _ := submit(t, ts, g)

	// Drain the stream so the sweep finishes.
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/sweeps/" + id)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusGone {
			e := decodeError(t, resp)
			if e.Code != api.CodeGone {
				t.Errorf("evicted sweep error code = %q, want %q", e.Code, api.CodeGone)
			}
			break
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s still queryable long past the retention window", id)
		}
		time.Sleep(10 * time.Millisecond)
	}
	s.mu.Lock()
	stored := len(s.sweeps)
	s.mu.Unlock()
	if stored != 0 {
		t.Errorf("%d sweeps still stored after eviction", stored)
	}
	if c := reg.Snapshot().Counters["server_sweeps_evicted"]; c != 1 {
		t.Errorf("server_sweeps_evicted = %d, want 1", c)
	}

	// A running (unfinished) sweep must never be evicted: hold the
	// executor at the gate so the sweep stays queued past the window.
	gate := make(chan struct{})
	reg2 := obs.NewRegistry()
	s2, ts2 := startServer(t, Config{Retention: 30 * time.Millisecond, Registry: reg2, gate: gate})
	id2, _ := submit(t, ts2, g)
	time.Sleep(150 * time.Millisecond) // several retention windows
	s2.mu.Lock()
	_, present := s2.sweeps[id2]
	s2.mu.Unlock()
	if !present {
		t.Error("queued sweep was evicted before finishing")
	}
	close(gate)
}

// A client resuming a result stream by cursor after its sweep aged
// out of retention gets 410 Gone with the stable "gone" code — it
// should stop retrying — while a never-issued id stays 404.
func TestEvictedCursorResumeGets410(t *testing.T) {
	s, ts := startServer(t, Config{Retention: 30 * time.Millisecond})
	g := testGrid()
	id, _ := submit(t, ts, g)

	// Stream part of the results, remembering the cursor.
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	cursor := 0
	for sc.Scan() {
		cursor++
		if cursor == 2 {
			break
		}
	}
	resp.Body.Close()

	// Let the sweep finish and age out.
	deadline := time.Now().Add(10 * time.Second)
	for {
		s.mu.Lock()
		_, present := s.sweeps[id]
		s.mu.Unlock()
		if !present {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep never evicted")
		}
		time.Sleep(10 * time.Millisecond)
	}

	resume, err := http.Get(fmt.Sprintf("%s/v1/sweeps/%s/results?cursor=%d", ts.URL, id, cursor))
	if err != nil {
		t.Fatal(err)
	}
	if resume.StatusCode != http.StatusGone {
		t.Errorf("cursor resume after eviction: status %d, want %d", resume.StatusCode, http.StatusGone)
	}
	e := decodeError(t, resume)
	if e.Code != api.CodeGone {
		t.Errorf("code %q, want %q", e.Code, api.CodeGone)
	}

	// An id that never existed is still a 404: "gone" is a statement
	// about history, not a catch-all.
	other, err := http.Get(ts.URL + "/v1/sweeps/s999999")
	if err != nil {
		t.Fatal(err)
	}
	if other.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id: status %d, want %d", other.StatusCode, http.StatusNotFound)
	}
	if e := decodeError(t, other); e.Code != api.CodeNotFound {
		t.Errorf("unknown id code %q, want %q", e.Code, api.CodeNotFound)
	}
}

// With CheckpointDir set, a submitted sweep survives a process
// restart: a new server over the same directory re-serves the same
// id, the same result bytes, and honors cursors issued before the
// restart — without recomputing completed points.
func TestCheckpointDirPersistsSweepsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	g := testGrid()
	want := localLines(t, g)

	reg1 := obs.NewRegistry()
	s1, ts1 := startServer(t, Config{CheckpointDir: dir, Registry: reg1})
	id, _ := submit(t, ts1, g)

	// Drain the full stream (sweep done, checkpoint fully written),
	// but pretend this client only saw the first 2 lines.
	resp, err := http.Get(ts1.URL + "/v1/sweeps/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	first, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, want) {
		t.Fatalf("pre-restart stream differs from local run:\n%s\nwant:\n%s", first, want)
	}
	ts1.Close()
	s1.Close()

	// "Restart": a fresh server over the same directory.
	reg2 := obs.NewRegistry()
	_, ts2 := startServer(t, Config{CheckpointDir: dir, Registry: reg2})

	// The old id resolves, with the same bytes.
	resp2, err := http.Get(ts2.URL + "/v1/sweeps/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("restored sweep stream: status %d", resp2.StatusCode)
	}
	again, err := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, want) {
		t.Errorf("post-restart stream differs from local run")
	}

	// A cursor issued before the restart resumes with no gaps and no
	// duplicates.
	lines := bytes.SplitAfter(want, []byte("\n"))
	resp3, err := http.Get(ts2.URL + "/v1/sweeps/" + id + "/results?cursor=2")
	if err != nil {
		t.Fatal(err)
	}
	tail, err := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if wantTail := bytes.Join(lines[2:], nil); !bytes.Equal(tail, wantTail) {
		t.Errorf("cursor resume after restart:\n%s\nwant:\n%s", tail, wantTail)
	}

	// Restored, replayed from the checkpoint — not recomputed.
	snap := reg2.Snapshot()
	if snap.Counters["server_sweeps_restored"] != 1 {
		t.Errorf("server_sweeps_restored = %d, want 1", snap.Counters["server_sweeps_restored"])
	}
	if c := snap.Counters["server_jobs_completed"]; c != 0 {
		t.Errorf("restart recomputed %d jobs; want 0 (checkpoint replay)", c)
	}
	if c := snap.Counters["checkpoint_points_restored"]; c != uint64(len(g.Jobs)) {
		t.Errorf("checkpoint_points_restored = %d, want %d", c, len(g.Jobs))
	}

	// New submissions on the restarted server do not collide with
	// restored ids.
	id2, _ := submit(t, ts2, g)
	if id2 == id {
		t.Errorf("restarted server reissued id %q", id)
	}
}

// Eviction under CheckpointDir deletes the persisted files, so a
// restart does not resurrect expired sweeps.
func TestEvictionRemovesPersistedState(t *testing.T) {
	dir := t.TempDir()
	s, ts := startServer(t, Config{CheckpointDir: dir, Retention: 30 * time.Millisecond})
	g := testGrid()
	id, _ := submit(t, ts, g)
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.ReadAll(resp.Body)
	resp.Body.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		s.mu.Lock()
		_, present := s.sweeps[id]
		s.mu.Unlock()
		if !present {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep never evicted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, path := range []string{s.gridPath(id), s.ckptPath(id)} {
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Errorf("%s still exists after eviction (stat err: %v)", path, err)
		}
	}
}
