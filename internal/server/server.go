// Package server implements the pwfserve daemon: sweep execution as a
// service over the versioned internal/api wire schema.
//
// The HTTP surface (all JSON bodies are canonical api encodings):
//
//	POST /v1/sweeps              submit an api.Grid; 202 + sweep id
//	GET  /v1/sweeps/{id}         status: queued/running/done/failed
//	GET  /v1/sweeps/{id}/results canonical NDJSON result stream
//	GET  /metrics                obs registry snapshot as JSON
//	GET  /healthz                liveness probe
//	/debug/vars, /debug/pprof/   standard Go debug surface
//
// Determinism carries over the wire: a grid accepted here produces
// result lines byte-identical to running the same grid and master
// seed locally through sweep.Run and api.ResultFromSweep, because job
// seeds derive from (seed, index) alone and the canonical encoding
// excludes wall-clock fields.
//
// Admission is bounded: a submission whose jobs would push the number
// of queued-but-unfinished jobs past MaxQueuedJobs is rejected with
// 429, a Retry-After header, and an api.Error body (code
// "overloaded") instead of queueing without bound. Oversized grids
// and bodies are rejected with 413 before any work is queued.
//
// Execution batches compatible jobs: every accepted sweep runs with
// sweep.Config.BatchFamilies so same-family jobs dispatch adjacently
// and share ChainCache entries, and with sweep.Config.ReplicaBatch so
// same-shape jobs step together in one struct-of-arrays simulator —
// pure execution optimizations that provably cannot change result
// bytes.
//
// The result store is bounded: finished sweeps are evicted after
// Config.Retention (default 1 hour); evictions are visible in
// /metrics as server_sweeps_evicted. Requests for an evicted id get
// 410 Gone (code "gone") rather than 404, so a client resuming a
// result stream by cursor can tell "expired" from "never existed" —
// the same contract trace tailing uses for truncated logs. The
// distinction is best-effort across restarts: a fresh process only
// remembers evictions it performed itself.
//
// With Config.CheckpointDir set, accepted sweeps survive restarts:
// every submission persists its grid (<id>.grid) and every completed
// point appends to a crash-safe checkpoint (<id>.ckpt, format
// internal/checkpoint). A restarted server re-enqueues each persisted
// sweep; its checkpointed points are restored — replayed through the
// result stream rather than recomputed — so existing cursors remain
// valid and the streamed bytes are identical to an uninterrupted
// serve. Eviction deletes both files.
package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"pwf/internal/api"
	"pwf/internal/checkpoint"
	"pwf/internal/obs"
	"pwf/internal/sweep"
)

// Config parameterizes a Server. The zero value selects the defaults
// noted on each field.
type Config struct {
	// MaxGridJobs bounds the jobs of one submission; larger grids are
	// rejected with 413 (grid_too_large). Default 4096.
	MaxGridJobs int
	// MaxQueuedJobs bounds the queued-but-unfinished jobs across all
	// accepted sweeps; submissions that would exceed it are rejected
	// with 429 (overloaded). Default 16384.
	MaxQueuedJobs int
	// MaxBodyBytes bounds the request body; larger bodies are rejected
	// with 413 (body_too_large). Default 8 MiB.
	MaxBodyBytes int64
	// Workers bounds each sweep's worker pool; 0 selects GOMAXPROCS.
	Workers int
	// RetryAfter is the backoff advertised on 429 responses (header
	// and api.Error.RetryAfterSec). Default 1s.
	RetryAfter time.Duration
	// Retention bounds how long finished (done or failed) sweeps stay
	// queryable: a janitor evicts them from the in-memory store once
	// they have been finished for longer than this window, so a
	// long-running daemon's memory is bounded by its traffic rate
	// rather than its lifetime. 0 selects the default (1 hour);
	// negative disables eviction (the pre-retention behavior).
	// Evictions are counted by the server_sweeps_evicted metric.
	Retention time.Duration
	// CheckpointDir, when non-empty, persists sweep state there so
	// accepted sweeps survive process restarts: one <id>.grid file per
	// submission and one <id>.ckpt checkpoint log of its completed
	// points. A new Server re-enqueues everything the directory holds.
	// Empty (the default) keeps all state in memory.
	CheckpointDir string
	// Registry receives the server's metrics; nil creates a private
	// registry (exposed at /metrics either way).
	Registry *obs.Registry
	// Cache memoizes exact-chain constructions across sweeps; nil
	// selects the process-wide sweep.DefaultCache.
	Cache *sweep.ChainCache
	// Log, when non-nil, receives printf-style operational notices —
	// currently the once-per-reason replica-batching fallback lines.
	// Nil discards them.
	Log func(format string, args ...any)

	// gate, when non-nil, stalls the executor before each sweep until
	// a receive succeeds; tests use it to back the queue up
	// deterministically.
	gate chan struct{}
}

const (
	defaultMaxGridJobs   = 4096
	defaultMaxQueuedJobs = 16384
	defaultMaxBodyBytes  = 8 << 20
	defaultRetryAfter    = time.Second
	defaultRetention     = time.Hour

	// replicaBatchWidth is the replica-batch width sweeps execute
	// with. Wire grids routinely repeat one shape across many seeds;
	// the batched core runs up to this many same-shape jobs per
	// simulator loop with byte-identical results.
	replicaBatchWidth = 16
)

// sweepStatus is the lifecycle of one accepted sweep.
type sweepStatus string

const (
	statusQueued  sweepStatus = "queued"
	statusRunning sweepStatus = "running"
	statusDone    sweepStatus = "done"
	statusFailed  sweepStatus = "failed"
)

// sweepState holds one accepted sweep: its grid, its encoded result
// lines (indexed by job), and a watermark/broadcast pair streams wait
// on. lines fill in completion order but are only ever exposed as the
// contiguous prefix below watermark, so streams observe results in
// input order — the order the canonical NDJSON format promises.
type sweepState struct {
	id   string
	grid api.Grid

	mu         sync.Mutex
	status     sweepStatus
	lines      [][]byte // canonical NDJSON line per job index
	watermark  int      // lines[:watermark] are present and streamable
	done       int      // completed jobs (any order)
	failure    *api.Error
	finishedAt time.Time     // when status became done/failed; zero before
	wake       chan struct{} // closed and replaced on every change
}

// snapshot returns the fields status responses need, consistently.
func (st *sweepState) snapshot() (status sweepStatus, done int, failure *api.Error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.status, st.done, st.failure
}

// Server executes sweeps submitted over HTTP. It implements
// http.Handler; Close stops the executor and aborts the running sweep
// at its next job boundary.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	cache *sweep.ChainCache
	mux   *http.ServeMux

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu         sync.Mutex
	sweeps     map[string]*sweepState
	gone       map[string]struct{} // ids evicted by this process: 410, not 404
	queue      chan *sweepState
	queuedJobs int // admitted but unfinished jobs, bounded by MaxQueuedJobs
	nextID     uint64

	// gate mirrors Config.gate; read only by the executor.
	gate chan struct{}

	mSweepsAccepted   *obs.Counter
	mSweepsRestored   *obs.Counter
	mSweepsEvicted    *obs.Counter
	mRejectedOverload *obs.Counter
	mRejectedInvalid  *obs.Counter
	mRejectedTooLarge *obs.Counter
	mJobsCompleted    *obs.Counter
	mJobsCoalesced    *obs.Counter
	mStreamsOpened    *obs.Counter
	mStreamsDropped   *obs.Counter
	hJobLatency       *obs.Histogram
}

// New returns a started server: its executor goroutine is running and
// it is ready to serve HTTP. Call Close to stop it.
func New(cfg Config) *Server {
	if cfg.MaxGridJobs <= 0 {
		cfg.MaxGridJobs = defaultMaxGridJobs
	}
	if cfg.MaxQueuedJobs <= 0 {
		cfg.MaxQueuedJobs = defaultMaxQueuedJobs
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = defaultMaxBodyBytes
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = defaultRetryAfter
	}
	if cfg.Retention == 0 {
		cfg.Retention = defaultRetention
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	cache := cfg.Cache
	if cache == nil {
		cache = sweep.DefaultCache
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:    cfg,
		reg:    reg,
		cache:  cache,
		ctx:    ctx,
		cancel: cancel,
		gate:   cfg.gate,
		sweeps: make(map[string]*sweepState),
		gone:   make(map[string]struct{}),
		// Admission bounds total queued jobs at MaxQueuedJobs and every
		// sweep has >= 1 job, so the queue can never hold more sweeps
		// than that: sends below never block.
		queue: make(chan *sweepState, cfg.MaxQueuedJobs),

		mSweepsAccepted:   reg.Counter("server_sweeps_accepted"),
		mSweepsRestored:   reg.Counter("server_sweeps_restored"),
		mSweepsEvicted:    reg.Counter("server_sweeps_evicted"),
		mRejectedOverload: reg.Counter("server_sweeps_rejected_overload"),
		mRejectedInvalid:  reg.Counter("server_sweeps_rejected_invalid"),
		mRejectedTooLarge: reg.Counter("server_sweeps_rejected_too_large"),
		mJobsCompleted:    reg.Counter("server_jobs_completed"),
		mJobsCoalesced:    reg.Counter("server_jobs_coalesced"),
		mStreamsOpened:    reg.Counter("server_streams_opened"),
		mStreamsDropped:   reg.Counter("server_streams_disconnected"),
		hJobLatency:       reg.Histogram("server_job_latency_ns"),
	}
	reg.Gauge("server_queue_depth", func() uint64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return uint64(s.queuedJobs)
	})
	cache.Publish(reg, "chain_cache")

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/results", s.handleResults)
	s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, api.Error{
			V: api.Version, Code: api.CodeNotFound,
			Message: fmt.Sprintf("no route %s %s", r.Method, r.URL.Path),
		})
	})

	if cfg.CheckpointDir != "" {
		s.restoreFromDir()
	}
	s.wg.Add(1)
	go s.executor()
	if cfg.Retention > 0 {
		s.wg.Add(1)
		go s.janitor()
	}
	return s
}

// gridPath and ckptPath name a sweep's two persisted files.
func (s *Server) gridPath(id string) string {
	return filepath.Join(s.cfg.CheckpointDir, id+".grid")
}
func (s *Server) ckptPath(id string) string {
	return filepath.Join(s.cfg.CheckpointDir, id+".ckpt")
}

// writeFileAtomic lands data at path via temp file + fsync + rename,
// so a crash mid-write leaves either the old file or the new one,
// never a torn prefix.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		_ = dir.Sync()
		dir.Close()
	}
	return nil
}

// restoreFromDir re-enqueues every sweep CheckpointDir holds, in
// original submission order, and advances the id counter past them.
// Checkpointed points replay instead of recomputing when the executor
// reaches each sweep, so a restart is invisible to result bytes and
// cursors. A grid file that no longer decodes is surfaced as a failed
// sweep under its id — queryable, evicted on schedule — rather than
// silently dropped or deleted.
func (s *Server) restoreFromDir() {
	entries, err := os.ReadDir(s.cfg.CheckpointDir)
	if err != nil {
		return
	}
	var ids []string
	for _, e := range entries {
		if name := e.Name(); strings.HasSuffix(name, ".grid") {
			ids = append(ids, strings.TrimSuffix(name, ".grid"))
		}
	}
	// Original submission order: ids are s1, s2, ... from the previous
	// lifetime; numeric order is submission order.
	sort.Slice(ids, func(i, j int) bool { return idNum(ids[i]) < idNum(ids[j]) })
	for _, id := range ids {
		if n := idNum(id); n > s.nextID {
			s.nextID = n
		}
		data, err := os.ReadFile(s.gridPath(id))
		var grid api.Grid
		if err == nil {
			grid, err = api.DecodeGrid(bytes.NewReader(data))
		}
		if err != nil {
			failed := &sweepState{
				id:     id,
				status: statusFailed,
				failure: &api.Error{V: api.Version, Code: api.CodeInternal,
					Message: fmt.Sprintf("restore: %v", err)},
				finishedAt: time.Now(),
				wake:       make(chan struct{}),
			}
			s.sweeps[id] = failed
			continue
		}
		st := &sweepState{
			id:     id,
			grid:   grid,
			status: statusQueued,
			lines:  make([][]byte, len(grid.Jobs)),
			wake:   make(chan struct{}),
		}
		s.sweeps[id] = st
		s.queuedJobs += len(grid.Jobs)
		s.mSweepsRestored.Inc()
		s.queue <- st
	}
}

// idNum extracts the numeric part of a sweep id ("s42" -> 42); 0 for
// foreign names.
func idNum(id string) uint64 {
	n, _ := strconv.ParseUint(strings.TrimPrefix(id, "s"), 10, 64)
	return n
}

// janitor periodically evicts finished sweeps older than the
// retention window. Open result streams keep their *sweepState and
// drain unaffected; only new lookups of the id see 410.
func (s *Server) janitor() {
	defer s.wg.Done()
	tick := s.cfg.Retention / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	if tick > time.Minute {
		tick = time.Minute
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-ticker.C:
			s.evictExpired(time.Now())
		}
	}
}

// evictExpired removes every sweep finished before now-Retention.
// Evicted ids are remembered (a few bytes each) so later lookups —
// typically a client resuming a result stream by cursor — get a clean
// 410 Gone instead of an indistinguishable-from-typo 404; persisted
// state is deleted alongside the in-memory entry.
func (s *Server) evictExpired(now time.Time) {
	cutoff := now.Add(-s.cfg.Retention)
	s.mu.Lock()
	var evicted []string
	for id, st := range s.sweeps {
		st.mu.Lock()
		expired := (st.status == statusDone || st.status == statusFailed) &&
			!st.finishedAt.IsZero() && st.finishedAt.Before(cutoff)
		st.mu.Unlock()
		if expired {
			delete(s.sweeps, id)
			s.gone[id] = struct{}{}
			evicted = append(evicted, id)
		}
	}
	s.mu.Unlock()
	if len(evicted) > 0 {
		s.mSweepsEvicted.Add(uint64(len(evicted)))
		if s.cfg.CheckpointDir != "" {
			for _, id := range evicted {
				_ = os.Remove(s.gridPath(id))
				_ = os.Remove(s.ckptPath(id))
			}
		}
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close stops the executor: the running sweep is canceled at its next
// job boundary, queued sweeps are marked failed, and open result
// streams terminate.
func (s *Server) Close() {
	s.cancel()
	s.wg.Wait()
}

// writeError renders the structured error body with its status code.
func writeError(w http.ResponseWriter, status int, e api.Error) {
	w.Header().Set("Content-Type", "application/json")
	if e.RetryAfterSec > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfterSec))
	}
	w.WriteHeader(status)
	b, err := errorLine(e)
	if err != nil {
		return
	}
	_, _ = w.Write(b)
}

// errorLine renders e as its canonical single-line body plus newline.
func errorLine(e api.Error) ([]byte, error) {
	b, err := api.MarshalError(e)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// handleSubmit admits one grid: strict decode, size bounds, queue
// bound, then 202 with the sweep's id and results URL.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	grid, err := api.DecodeGrid(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		switch {
		case errors.As(err, &tooBig):
			s.mRejectedTooLarge.Inc()
			writeError(w, http.StatusRequestEntityTooLarge, api.Error{
				V: api.Version, Code: api.CodeBodyTooLarge,
				Message: fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes),
			})
		case errors.Is(err, api.ErrVersion):
			s.mRejectedInvalid.Inc()
			writeError(w, http.StatusBadRequest, api.Error{
				V: api.Version, Code: api.CodeUnsupportedVersion, Message: err.Error(),
			})
		default:
			s.mRejectedInvalid.Inc()
			writeError(w, http.StatusBadRequest, api.Error{
				V: api.Version, Code: api.CodeInvalidGrid, Message: err.Error(),
			})
		}
		return
	}
	if len(grid.Jobs) > s.cfg.MaxGridJobs {
		s.mRejectedTooLarge.Inc()
		writeError(w, http.StatusRequestEntityTooLarge, api.Error{
			V: api.Version, Code: api.CodeGridTooLarge,
			Message: fmt.Sprintf("grid has %d jobs; this server accepts at most %d per sweep",
				len(grid.Jobs), s.cfg.MaxGridJobs),
		})
		return
	}

	st := &sweepState{
		grid:   grid,
		status: statusQueued,
		lines:  make([][]byte, len(grid.Jobs)),
		wake:   make(chan struct{}),
	}
	s.mu.Lock()
	if s.queuedJobs+len(grid.Jobs) > s.cfg.MaxQueuedJobs {
		depth := s.queuedJobs
		s.mu.Unlock()
		s.mRejectedOverload.Inc()
		retry := int((s.cfg.RetryAfter + time.Second - 1) / time.Second)
		writeError(w, http.StatusTooManyRequests, api.Error{
			V: api.Version, Code: api.CodeOverloaded,
			Message: fmt.Sprintf("queue holds %d jobs; admitting %d more would exceed the %d-job bound",
				depth, len(grid.Jobs), s.cfg.MaxQueuedJobs),
			RetryAfterSec: retry,
		})
		return
	}
	s.queuedJobs += len(grid.Jobs)
	s.nextID++
	st.id = fmt.Sprintf("s%d", s.nextID)
	s.sweeps[st.id] = st
	s.mu.Unlock()

	// Persist the grid before acking: an id the client holds must
	// survive a restart. The body already decoded strictly, so the
	// canonical re-encoding cannot fail in practice.
	if s.cfg.CheckpointDir != "" {
		b, err := api.MarshalGrid(grid)
		if err == nil {
			err = writeFileAtomic(s.gridPath(st.id), append(b, '\n'))
		}
		if err != nil {
			s.mu.Lock()
			delete(s.sweeps, st.id)
			s.queuedJobs -= len(grid.Jobs)
			s.mu.Unlock()
			writeError(w, http.StatusInternalServerError, api.Error{
				V: api.Version, Code: api.CodeInternal,
				Message: fmt.Sprintf("persist grid: %v", err),
			})
			return
		}
	}

	s.mSweepsAccepted.Inc()
	s.mJobsCoalesced.Add(uint64(len(grid.Jobs) - distinctFamilies(grid.Jobs)))
	s.queue <- st

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprintf(w, "{\"v\":%d,\"id\":%q,\"jobs\":%d,\"results_url\":\"/v1/sweeps/%s/results\"}\n",
		api.Version, st.id, len(grid.Jobs), st.id)
}

// distinctFamilies counts the batchable families of a grid — jobs
// agreeing on the full workload and scheduler parameterization (not
// just the kinds: different weight vectors are different families),
// the process and crash counts, and exactness, matching the sweep
// dispatcher's family key. The difference against len(jobs) is the
// coalescing opportunity the batching dispatcher exploits.
func distinctFamilies(jobs []api.Job) int {
	seen := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		seen[fmt.Sprintf("%s|q%d|s%d|w%d|p%d|n%d|c%d|x%t|%s",
			j.Workload.Kind, j.Workload.Q, j.Workload.S, j.Workload.WaitFactor,
			j.Workload.PoolSize, j.N, j.Crash, j.Exact, j.Sched)] = true
	}
	return len(seen)
}

// lookup returns the sweep for the request's {id}. An id this process
// evicted gets 410 Gone — the sweep existed, completed, and aged out
// of retention, so a cursor-resuming client should stop retrying
// rather than suspect a typo'd id (404).
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *sweepState {
	id := r.PathValue("id")
	s.mu.Lock()
	st := s.sweeps[id]
	_, wasEvicted := s.gone[id]
	s.mu.Unlock()
	if st == nil {
		if wasEvicted {
			writeError(w, http.StatusGone, api.Error{
				V: api.Version, Code: api.CodeGone,
				Message: fmt.Sprintf("sweep %q finished and was evicted after the retention window", id),
			})
		} else {
			writeError(w, http.StatusNotFound, api.Error{
				V: api.Version, Code: api.CodeNotFound,
				Message: fmt.Sprintf("no sweep %q", id),
			})
		}
	}
	return st
}

// handleStatus reports one sweep's lifecycle and progress.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := s.lookup(w, r)
	if st == nil {
		return
	}
	status, done, failure := st.snapshot()
	w.Header().Set("Content-Type", "application/json")
	if failure != nil {
		fmt.Fprintf(w, "{\"v\":%d,\"id\":%q,\"status\":%q,\"done\":%d,\"total\":%d,\"error\":%q}\n",
			api.Version, st.id, status, done, len(st.grid.Jobs), failure.Message)
		return
	}
	fmt.Fprintf(w, "{\"v\":%d,\"id\":%q,\"status\":%q,\"done\":%d,\"total\":%d}\n",
		api.Version, st.id, status, done, len(st.grid.Jobs))
}

// handleResults streams the sweep's canonical NDJSON result lines in
// input order, flushing per line, blocking for results not yet
// computed. A cursor (the number of lines the client already holds,
// from the ?cursor= query parameter or the Last-Event-ID header)
// resumes mid-stream with no duplicates and no gaps. If the sweep
// failed, the stream ends with one api.Error line after the last
// complete result.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	st := s.lookup(w, r)
	if st == nil {
		return
	}
	cursorStr := r.URL.Query().Get("cursor")
	if cursorStr == "" {
		cursorStr = r.Header.Get("Last-Event-ID")
	}
	sent := 0
	if cursorStr != "" {
		n, err := strconv.Atoi(cursorStr)
		if err != nil || n < 0 || n > len(st.grid.Jobs) {
			writeError(w, http.StatusBadRequest, api.Error{
				V: api.Version, Code: api.CodeInvalidGrid,
				Message: fmt.Sprintf("cursor %q out of [0, %d]", cursorStr, len(st.grid.Jobs)),
			})
			return
		}
		sent = n
	}

	s.mStreamsOpened.Inc()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the status line out now: a stream on a sweep with no
		// results yet must still tell the client it is connected.
		flusher.Flush()
	}

	for {
		st.mu.Lock()
		var batch [][]byte
		if st.watermark > sent {
			batch = st.lines[sent:st.watermark]
		}
		status, failure := st.status, st.failure
		wake := st.wake
		st.mu.Unlock()

		for _, line := range batch {
			if _, err := w.Write(line); err != nil {
				s.mStreamsDropped.Inc()
				return
			}
			sent++
			if flusher != nil {
				flusher.Flush()
			}
		}
		if status == statusDone || status == statusFailed {
			if failure != nil {
				if b, err := errorLine(*failure); err == nil {
					_, _ = w.Write(b)
				}
			}
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			s.mStreamsDropped.Inc()
			return
		}
	}
}

// executor drains the queue one sweep at a time. Within a sweep, jobs
// run on the engine's worker pool with family batching; per-sweep
// serialization keeps the job-latency histogram honest and the cache
// warm for each family group.
func (s *Server) executor() {
	defer s.wg.Done()
	for {
		var st *sweepState
		select {
		case <-s.ctx.Done():
			s.failQueued()
			return
		case st = <-s.queue:
		}
		if s.gate != nil {
			select {
			case <-s.gate:
			case <-s.ctx.Done():
				s.fail(st, api.Error{V: api.Version, Code: api.CodeInternal, Message: "server shutting down"})
				s.failQueued()
				return
			}
		}
		s.execute(st)
	}
}

// logf forwards one operational notice to Config.Log, if set.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log(format, args...)
	}
}

// failQueued marks every still-queued sweep failed during shutdown.
func (s *Server) failQueued() {
	for {
		select {
		case st := <-s.queue:
			s.fail(st, api.Error{V: api.Version, Code: api.CodeInternal, Message: "server shutting down"})
		default:
			return
		}
	}
}

// fail finalizes a sweep in the failed state and returns its
// unfinished jobs to the admission budget.
func (s *Server) fail(st *sweepState, e api.Error) {
	st.mu.Lock()
	st.status = statusFailed
	st.failure = &e
	st.finishedAt = time.Now()
	remaining := len(st.grid.Jobs) - st.done
	close(st.wake)
	st.wake = make(chan struct{})
	st.mu.Unlock()
	s.mu.Lock()
	s.queuedJobs -= remaining
	s.mu.Unlock()
}

// execute runs one sweep on the deterministic engine, publishing each
// result line as its job completes. With CheckpointDir set, the sweep
// runs against its crash-safe checkpoint: points a previous process
// already completed replay through OnResult — repopulating the line
// store in input order, so cursors issued before the restart stay
// valid — and new completions are committed before they are streamed.
func (s *Server) execute(st *sweepState) {
	st.mu.Lock()
	st.status = statusRunning
	close(st.wake)
	st.wake = make(chan struct{})
	st.mu.Unlock()

	cfg := sweep.Config{
		Jobs:          st.grid.SweepJobs(),
		Seed:          st.grid.Seed,
		Workers:       s.cfg.Workers,
		Cache:         s.cache,
		BatchFamilies: true,
		ReplicaBatch:  replicaBatchWidth,
		Registry:      s.reg,
		OnBatchFallback: func(reason string) {
			s.logf("sweep %s: replica batching fell back to scalar: %s", st.id, reason)
		},
		Context: s.ctx,
		OnResult: func(r sweep.Result) {
			line, mErr := api.MarshalResult(api.ResultFromSweep(r))
			if mErr != nil {
				return
			}
			line = append(line, '\n')
			st.mu.Lock()
			st.lines[r.Index] = line
			st.done++
			for st.watermark < len(st.lines) && st.lines[st.watermark] != nil {
				st.watermark++
			}
			close(st.wake)
			st.wake = make(chan struct{})
			st.mu.Unlock()
			s.mu.Lock()
			s.queuedJobs--
			s.mu.Unlock()
			// Restored points carry no wall time (the canonical encoding
			// excludes it); only points this process computed count as
			// completed work.
			if r.Elapsed > 0 {
				s.mJobsCompleted.Inc()
				s.hJobLatency.Observe(uint64(r.Elapsed.Nanoseconds()))
			}
		},
	}
	if s.cfg.CheckpointDir != "" {
		cp, cerr := checkpoint.Open(s.ckptPath(st.id), cfg, checkpoint.Options{Registry: s.reg})
		if cerr != nil {
			s.fail(st, api.Error{V: api.Version, Code: api.CodeInternal,
				Message: fmt.Sprintf("checkpoint: %v", cerr)})
			return
		}
		defer cp.Close()
		cfg.Checkpoint = cp
	}

	_, err := sweep.Run(cfg)
	if err != nil {
		s.fail(st, api.Error{V: api.Version, Code: api.CodeInternal, Message: err.Error()})
		return
	}
	st.mu.Lock()
	st.status = statusDone
	st.finishedAt = time.Now()
	close(st.wake)
	st.wake = make(chan struct{})
	st.mu.Unlock()
}
