package exp

import (
	"pwf/internal/sweep"
)

// SchedulerAblation is the E13 design-choice ablation from DESIGN.md:
// the same SCU(0,1) workload under the uniform stochastic scheduler,
// lottery scheduling, a sticky (locally correlated) scheduler, the
// deterministic round-robin baseline, and a process-singling
// adversary. The stochastic schedulers all yield fair, wait-free-like
// behaviour with √n-scaling latency; the adversary does not — the
// point of the paper's model. All six cases run concurrently on the
// sweep engine.
func SchedulerAblation(cfg Config) (*Table, error) {
	n := cfg.num(16, 8)
	window := cfg.steps(2000000, 200000)

	tickets := make([]int, n)
	for i := range tickets {
		tickets[i] = 1
	}
	for i := 0; i < n/2; i++ {
		tickets[i] = 2
	}
	specs := []struct {
		name string
		spec sweep.SchedulerSpec
	}{
		{"uniform", sweep.SchedulerSpec{Kind: sweep.SchedUniform}},
		{"lottery 2:1 tickets", sweep.SchedulerSpec{Kind: sweep.SchedLottery, Tickets: tickets}},
		{"sticky rho=0.5", sweep.SchedulerSpec{Kind: sweep.SchedSticky, Rho: 0.5}},
		{"sticky rho=0.95", sweep.SchedulerSpec{Kind: sweep.SchedSticky, Rho: 0.95}},
		{"round-robin", sweep.SchedulerSpec{Kind: sweep.SchedRoundRobin}},
		{"adversary: single out p0", sweep.SchedulerSpec{Kind: sweep.SchedAdversary, Victim: 0}},
	}

	jobs := make([]sweep.Job, len(specs))
	for i, tc := range specs {
		jobs[i] = sweep.Job{
			Workload:       sweep.Workload{Kind: sweep.SCU, S: 1},
			N:              n,
			Sched:          tc.spec,
			Steps:          window,
			WarmupFraction: sweep.DefaultWarmupFraction,
			Label:          tc.name,
		}
	}
	results, err := cfg.runSweep(jobs)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "E13",
		Title: "Ablation: scheduler model vs progress and latency (SCU(0,1))",
		Header: []string{
			"scheduler", "theta", "W sim", "fairness index", "starved",
		},
	}
	for _, r := range results {
		t.AddRow(r.Label, r.Theta, r.Latencies.System, r.Latencies.Fairness,
			len(r.Starved))
	}
	t.Note = "every theta > 0 scheduler keeps all processes progressing; stickiness even " +
		"LOWERS latency (consecutive steps finish an operation solo) while preserving fairness; " +
		"deterministic schedules — round-robin included — phase-lock with the scan-validate loop " +
		"so a single process wins every CAS: randomness, not mere step-fairness, is what makes " +
		"lock-free practically wait-free"
	return t, nil
}
