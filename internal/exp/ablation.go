package exp

import (
	"pwf/internal/machine"
	"pwf/internal/rng"
	"pwf/internal/sched"
	"pwf/internal/scu"
	"pwf/internal/shmem"
)

// SchedulerAblation is the E13 design-choice ablation from DESIGN.md:
// the same SCU(0,1) workload under the uniform stochastic scheduler,
// lottery scheduling, a sticky (locally correlated) scheduler, the
// deterministic round-robin baseline, and a process-singling
// adversary. The stochastic schedulers all yield fair, wait-free-like
// behaviour with √n-scaling latency; the adversary does not — the
// point of the paper's model.
func SchedulerAblation(cfg Config) (*Table, error) {
	n := cfg.num(16, 8)
	window := cfg.steps(2000000, 200000)

	type schedCase struct {
		name  string
		build func() (sched.Scheduler, error)
	}
	cases := []schedCase{
		{"uniform", func() (sched.Scheduler, error) {
			return sched.NewUniform(n, rng.New(cfg.Seed))
		}},
		{"lottery 2:1 tickets", func() (sched.Scheduler, error) {
			tickets := make([]int, n)
			for i := range tickets {
				tickets[i] = 1
			}
			for i := 0; i < n/2; i++ {
				tickets[i] = 2
			}
			return sched.NewLottery(tickets, rng.New(cfg.Seed+1))
		}},
		{"sticky rho=0.5", func() (sched.Scheduler, error) {
			return sched.NewSticky(n, 0.5, rng.New(cfg.Seed+2))
		}},
		{"sticky rho=0.95", func() (sched.Scheduler, error) {
			return sched.NewSticky(n, 0.95, rng.New(cfg.Seed+3))
		}},
		{"round-robin", func() (sched.Scheduler, error) {
			return sched.NewRoundRobin(n)
		}},
		{"adversary: single out p0", func() (sched.Scheduler, error) {
			return sched.NewAdversarial(n, sched.SingleOut(0))
		}},
	}

	t := &Table{
		ID:    "E13",
		Title: "Ablation: scheduler model vs progress and latency (SCU(0,1))",
		Header: []string{
			"scheduler", "theta", "W sim", "fairness index", "starved",
		},
	}
	for _, tc := range cases {
		s, err := tc.build()
		if err != nil {
			return nil, err
		}
		mem, err := shmem.New(scu.SCULayout(1))
		if err != nil {
			return nil, err
		}
		procs, err := scu.NewSCUGroup(n, 0, 1, 0)
		if err != nil {
			return nil, err
		}
		sim, err := machine.New(mem, procs, s)
		if err != nil {
			return nil, err
		}
		if err := sim.Run(window / 10); err != nil {
			return nil, err
		}
		sim.ResetMetrics()
		if err := sim.Run(window); err != nil {
			return nil, err
		}
		w, err := sim.SystemLatency()
		if err != nil {
			return nil, err
		}
		t.AddRow(tc.name, s.Threshold(), w, sim.FairnessIndex(), len(sim.StarvedProcesses()))
	}
	t.Note = "every theta > 0 scheduler keeps all processes progressing; stickiness even " +
		"LOWERS latency (consecutive steps finish an operation solo) while preserving fairness; " +
		"deterministic schedules — round-robin included — phase-lock with the scan-validate loop " +
		"so a single process wins every CAS: randomness, not mere step-fairness, is what makes " +
		"lock-free practically wait-free"
	return t, nil
}
