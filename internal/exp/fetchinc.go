package exp

import (
	"fmt"
	"math"

	"pwf/internal/chains"
	"pwf/internal/machine"
	"pwf/internal/rng"
	"pwf/internal/sched"
	"pwf/internal/scu"
	"pwf/internal/shmem"
)

// FetchIncAnalysis reproduces the Section 7 analysis of the
// augmented-CAS fetch-and-increment counter: the exact return time W
// of the winning state against the Lemma 12 bound 2√n, the hitting
// time Z(n−1), Ramanujan's Q(n) with its √(πn/2) asymptote, and the
// simulated system latency for cross-validation.
func FetchIncAnalysis(cfg Config) (*Table, error) {
	var ns []int
	if cfg.Quick {
		ns = []int{2, 4, 8, 16}
	} else {
		ns = []int{2, 4, 8, 16, 32, 64, 128}
	}
	window := cfg.steps(2000000, 150000)

	t := &Table{
		ID:    "E7",
		Title: "Lemma 12 / Corollary 3: fetch-and-increment counter",
		Header: []string{
			"n", "W exact", "W sim", "2*sqrt(n)", "Z(n-1)=Q(n)", "sqrt(pi*n/2)",
		},
	}
	worstRel := 0.0
	for _, n := range ns {
		glob, err := chains.FetchIncGlobal(n)
		if err != nil {
			return nil, err
		}
		w, err := glob.SystemLatency()
		if err != nil {
			return nil, err
		}

		mem, err := shmem.New(scu.FetchIncLayout)
		if err != nil {
			return nil, err
		}
		procs, err := scu.NewFetchIncGroup(n, 0)
		if err != nil {
			return nil, err
		}
		u, err := sched.NewUniform(n, rng.New(cfg.Seed+uint64(n)))
		if err != nil {
			return nil, err
		}
		sim, err := machine.New(mem, procs, u)
		if err != nil {
			return nil, err
		}
		wSim, _, err := measureLatencies(sim, window/10, window)
		if err != nil {
			return nil, err
		}
		if rel := math.Abs(wSim-w) / w; rel > worstRel {
			worstRel = rel
		}

		q, err := chains.RamanujanQ(n)
		if err != nil {
			return nil, err
		}
		t.AddRow(n, w, wSim, 2*math.Sqrt(float64(n)), q, chains.RamanujanQAsymptote(n))
	}
	t.Note = fmt.Sprintf(
		"exact W stays below 2√n (Lemma 12); simulation agrees with the chain within %.1f%%",
		worstRel*100)
	return t, nil
}
