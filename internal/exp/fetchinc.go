package exp

import (
	"fmt"
	"math"

	"pwf/internal/chains"
	"pwf/internal/sweep"
)

// FetchIncAnalysis reproduces the Section 7 analysis of the
// augmented-CAS fetch-and-increment counter: the exact return time W
// of the winning state against the Lemma 12 bound 2√n, the hitting
// time Z(n−1), Ramanujan's Q(n) with its √(πn/2) asymptote, and the
// simulated system latency for cross-validation. The simulations run
// in parallel on the sweep engine; each row's exact chain value comes
// from the shared cache.
func FetchIncAnalysis(cfg Config) (*Table, error) {
	var ns []int
	if cfg.Quick {
		ns = []int{2, 4, 8, 16}
	} else {
		ns = []int{2, 4, 8, 16, 32, 64, 128}
	}
	window := cfg.steps(2000000, 150000)

	jobs := make([]sweep.Job, len(ns))
	for i, n := range ns {
		jobs[i] = sweep.Job{
			Workload:       sweep.Workload{Kind: sweep.FetchInc},
			N:              n,
			Steps:          window,
			WarmupFraction: sweep.DefaultWarmupFraction,
			Exact:          true,
		}
	}
	results, err := cfg.runSweep(jobs)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "E7",
		Title: "Lemma 12 / Corollary 3: fetch-and-increment counter",
		Header: []string{
			"n", "W exact", "W sim", "2*sqrt(n)", "Z(n-1)=Q(n)", "sqrt(pi*n/2)",
		},
	}
	worstRel := 0.0
	for i, n := range ns {
		if !results[i].ExactOK {
			return nil, fmt.Errorf("exp: fetch-and-inc chain n=%d intractable", n)
		}
		w, wSim := results[i].Exact, results[i].Latencies.System
		if rel := math.Abs(wSim-w) / w; rel > worstRel {
			worstRel = rel
		}
		q, err := chains.RamanujanQ(n)
		if err != nil {
			return nil, err
		}
		t.AddRow(n, w, wSim, 2*math.Sqrt(float64(n)), q, chains.RamanujanQAsymptote(n))
	}
	t.Note = fmt.Sprintf(
		"exact W stays below 2√n (Lemma 12); simulation agrees with the chain within %.1f%%",
		worstRel*100)
	return t, nil
}
