// Package exp is the experiment harness: one runner per table/figure
// of the paper (and per analytical claim), each producing a Table
// whose rows mirror what the paper plots. cmd/pwfrepro runs the whole
// suite; the repository-root benchmarks time each experiment.
//
// Experiment index (see DESIGN.md for the full mapping):
//
//	E1  Figure 3    per-process step shares
//	E2  Figure 4    conditional next-step distribution
//	E3  Figure 5    completion rate vs Θ(1/√n) and worst case 1/n
//	E4  Theorem 5   system latency scaling of SCU(0, s)
//	E5  Theorem 4   individual latency = n × system latency
//	E6  Lemma 11    parallel code W = q, W_i = n·q
//	E7  Lemma 12    fetch-and-inc return times and Ramanujan Q
//	E8  Theorem 3   bounded minimal → maximal progress
//	E9  Lemma 2     unbounded lock-free starves losers
//	E10 Lemmas 5/10/13  lifting verification
//	E11 Lemmas 8–9  balls-into-bins phase lengths
//	E12 Corollary 2 latency under crashes scales with k
//	E13 Section 8   scheduler ablation
package exp

import (
	"fmt"

	"pwf/internal/machine"
	"pwf/internal/rng"
	"pwf/internal/sched"
	"pwf/internal/scu"
	"pwf/internal/shmem"
	"pwf/internal/sweep"
)

// Config controls experiment sizes.
type Config struct {
	// Seed drives all simulation randomness.
	Seed uint64
	// Quick shrinks the experiments for tests and smoke runs.
	Quick bool
	// Workers bounds the sweep engine's worker pool; 0 selects
	// GOMAXPROCS.
	Workers int
}

// runSweep executes a job grid on the parallel sweep engine with this
// configuration's seed and worker bound. Exact-chain requests share
// the process-wide cache, so chains reappearing across experiments are
// built once.
func (c Config) runSweep(jobs []sweep.Job) ([]sweep.Result, error) {
	return sweep.Run(sweep.Config{Jobs: jobs, Seed: c.Seed, Workers: c.Workers})
}

// steps returns full when Quick is off, otherwise quick.
func (c Config) steps(full, quick uint64) uint64 {
	if c.Quick {
		return quick
	}
	return full
}

// num returns full when Quick is off, otherwise quick.
func (c Config) num(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

// Runner is one experiment.
type Runner struct {
	ID   string
	Name string
	Run  func(Config) (*Table, error)
}

// All returns the full experiment suite in index order.
func All() []Runner {
	return []Runner{
		{ID: "E1", Name: "Figure 3: step shares", Run: Fig3StepShares},
		{ID: "E2", Name: "Figure 4: next-step distribution", Run: Fig4NextStep},
		{ID: "E3", Name: "Figure 5: completion rate", Run: Fig5CompletionRate},
		{ID: "E4", Name: "Theorem 5: system latency scaling", Run: SystemLatencySweep},
		{ID: "E5", Name: "Theorem 4: individual latency fairness", Run: IndividualLatencyFairness},
		{ID: "E6", Name: "Lemma 11: parallel code latencies", Run: ParallelCode},
		{ID: "E7", Name: "Lemma 12: fetch-and-inc analysis", Run: FetchIncAnalysis},
		{ID: "E8", Name: "Theorem 3: min-to-max progress", Run: MinToMaxProgress},
		{ID: "E9", Name: "Lemma 2: unbounded starvation", Run: UnboundedStarvation},
		{ID: "E10", Name: "Lemmas 5/10/13: lifting verification", Run: LiftingVerification},
		{ID: "E11", Name: "Lemmas 8-9: balls-into-bins phases", Run: BallsBinsPhases},
		{ID: "E12", Name: "Corollary 2: latency under crashes", Run: CrashLatency},
		{ID: "E13", Name: "Ablation: scheduler models", Run: SchedulerAblation},
		{ID: "E14", Name: "Replay: real schedule into the simulator", Run: ReplaySchedule},
		{ID: "E15", Name: "The price of wait-freedom", Run: WaitFreePrice},
		{ID: "E16", Name: "Per-operation latency distribution", Run: OpLatencyDistribution},
		{ID: "E17", Name: "Hash set bucket scaling", Run: HashSetScaling},
	}
}

// newUniform builds a seeded uniform scheduler (shared helper).
func newUniform(n int, seed uint64) (*sched.Uniform, error) {
	return sched.NewUniform(n, rng.New(seed))
}

// scuSim builds an SCU(q, s) simulation under a uniform stochastic
// scheduler with n processes.
func scuSim(n, q, s int, seed uint64) (*machine.Sim, error) {
	mem, err := shmem.New(scu.SCULayout(s))
	if err != nil {
		return nil, err
	}
	procs, err := scu.NewSCUGroup(n, q, s, 0)
	if err != nil {
		return nil, err
	}
	u, err := sched.NewUniform(n, rng.New(seed))
	if err != nil {
		return nil, err
	}
	return machine.New(mem, procs, u)
}

// measureLatencies warms up a simulation, resets metrics, runs the
// measurement window and reports (system latency, mean individual
// latency).
func measureLatencies(sim *machine.Sim, warmup, window uint64) (sysLat, indLat float64, err error) {
	if err := sim.Run(warmup); err != nil {
		return 0, 0, fmt.Errorf("warmup: %w", err)
	}
	sim.ResetMetrics()
	if err := sim.Run(window); err != nil {
		return 0, 0, fmt.Errorf("measure: %w", err)
	}
	sysLat, err = sim.SystemLatency()
	if err != nil {
		return 0, 0, err
	}
	indLat, err = sim.MeanIndividualLatency()
	if err != nil {
		return 0, 0, err
	}
	return sysLat, indLat, nil
}
