package exp

import (
	"fmt"

	"pwf/internal/chains"
	"pwf/internal/machine"
	"pwf/internal/rng"
	"pwf/internal/sched"
	"pwf/internal/scu"
	"pwf/internal/shmem"
)

// CrashLatency reproduces Corollary 2: with k ≤ n correct processes,
// the stationary latencies depend on k, not n. We run SCU(0,1) with n
// processes, crash n−k of them, and compare the measured system
// latency with the k-process (and n-process) exact chain values.
func CrashLatency(cfg Config) (*Table, error) {
	n := cfg.num(32, 12)
	window := cfg.steps(2000000, 200000)

	ks := []int{n, n / 2, n / 4}
	t := &Table{
		ID:    "E12",
		Title: "Corollary 2: latency depends on the number of correct processes k",
		Header: []string{
			"n", "k correct", "W sim", "W exact(k)", "W exact(n)",
		},
	}
	for _, k := range ks {
		if k < 1 {
			continue
		}
		mem, err := shmem.New(scu.SCULayout(1))
		if err != nil {
			return nil, err
		}
		procs, err := scu.NewSCUGroup(n, 0, 1, 0)
		if err != nil {
			return nil, err
		}
		u, err := sched.NewUniform(n, rng.New(cfg.Seed+uint64(k)))
		if err != nil {
			return nil, err
		}
		for pid := k; pid < n; pid++ {
			if err := u.Crash(pid); err != nil {
				return nil, fmt.Errorf("crash %d: %w", pid, err)
			}
		}
		sim, err := machine.New(mem, procs, u)
		if err != nil {
			return nil, err
		}
		wSim, _, err := measureLatencies(sim, window/10, window)
		if err != nil {
			return nil, err
		}

		exactK, err := exactSCULatency(k)
		if err != nil {
			return nil, err
		}
		exactN, err := exactSCULatency(n)
		if err != nil {
			return nil, err
		}
		t.AddRow(n, k, wSim, exactK, exactN)
	}
	t.Note = "the simulated latency with n-k crashed processes matches the exact " +
		"k-process chain, not the n-process one: stationary behaviour sees only correct processes"
	return t, nil
}

func exactSCULatency(k int) (float64, error) {
	sys, _, err := chains.SCUSystem(k)
	if err != nil {
		return 0, err
	}
	return sys.SystemLatency()
}
