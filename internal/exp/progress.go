package exp

import (
	"fmt"

	"pwf/internal/machine"
	"pwf/internal/progress"
	"pwf/internal/rng"
	"pwf/internal/sched"
	"pwf/internal/scu"
	"pwf/internal/shmem"
)

// MinToMaxProgress reproduces Theorem 3: under a stochastic scheduler
// with threshold θ > 0, a bounded lock-free algorithm is wait-free
// with probability 1. We run SCU(0,1) — whose minimal progress bound
// is T = 2n+1 steps (if every process takes two consecutive steps,
// someone must win) — under schedulers with different θ and check
// that every process keeps completing, reporting the empirical
// maximal-progress bound against the (astronomically loose) Theorem 3
// bound (1/θ)^T.
func MinToMaxProgress(cfg Config) (*Table, error) {
	n := cfg.num(8, 4)
	window := cfg.steps(1000000, 100000)

	type schedCase struct {
		name  string
		build func() (sched.Scheduler, error)
	}
	cases := []schedCase{
		{name: "uniform", build: func() (sched.Scheduler, error) {
			return sched.NewUniform(n, rng.New(cfg.Seed))
		}},
		{name: "weighted 10:1", build: func() (sched.Scheduler, error) {
			weights := make([]float64, n)
			for i := range weights {
				weights[i] = 1
			}
			weights[0] = 10
			return sched.NewWeighted(weights, rng.New(cfg.Seed+1))
		}},
		{name: "sticky rho=0.9", build: func() (sched.Scheduler, error) {
			return sched.NewSticky(n, 0.9, rng.New(cfg.Seed+2))
		}},
		{name: "adversary (theta=0)", build: func() (sched.Scheduler, error) {
			return sched.NewAdversarial(n, sched.SingleOut(0))
		}},
	}

	t := &Table{
		ID:    "E8",
		Title: "Theorem 3: bounded minimal progress becomes maximal progress when theta > 0",
		Header: []string{
			"scheduler", "theta", "starved procs", "empirical max-progress bound", "(1/theta)^T",
		},
	}
	for _, tc := range cases {
		s, err := tc.build()
		if err != nil {
			return nil, err
		}
		mem, err := shmem.New(scu.SCULayout(1))
		if err != nil {
			return nil, err
		}
		procs, err := scu.NewSCUGroup(n, 0, 1, 0)
		if err != nil {
			return nil, err
		}
		sim, err := machine.New(mem, procs, s)
		if err != nil {
			return nil, err
		}
		var collector progress.Collector
		sim.SetCompletionHook(collector.Observe)
		if err := sim.Run(window); err != nil {
			return nil, err
		}
		trace, err := collector.Trace(n, sim.Steps())
		if err != nil {
			return nil, err
		}
		maxBound, err := trace.MaximalProgressBound()
		if err != nil {
			return nil, err
		}
		starved := len(trace.Starved())

		theta := s.Threshold()
		theoretical := "n/a (adversary)"
		if theta > 0 {
			// Minimal progress bound of SCU(0,1): within any window of
			// T = 2n+1 consecutive steps by one process, that process
			// completes (2 solo steps win; the bound is per Theorem 3's
			// "T consecutive steps" argument with T = 2).
			bound, err := progress.Theorem3ExpectedBound(theta, 2)
			if err != nil {
				return nil, err
			}
			theoretical = fmt.Sprintf("%.4g", bound)
		}
		t.AddRow(tc.name, theta, starved, maxBound, theoretical)
	}
	t.Note = "every stochastic scheduler (theta > 0) yields zero starved processes; " +
		"the theta = 0 adversary starves its victim forever — exactly the Theorem 3 dichotomy"
	return t, nil
}

// UnboundedStarvation reproduces Lemma 2: Algorithm 1 is lock-free
// but, because its minimal progress is unbounded, it is not
// wait-free even under the uniform stochastic scheduler — one process
// monopolises the object with high probability.
func UnboundedStarvation(cfg Config) (*Table, error) {
	var ns []int
	if cfg.Quick {
		ns = []int{4, 8}
	} else {
		ns = []int{4, 8, 16}
	}
	window := cfg.steps(2000000, 200000)

	t := &Table{
		ID:    "E9",
		Title: "Lemma 2: the unbounded lock-free Algorithm 1 is not practically wait-free",
		Header: []string{
			"n", "total ops", "dominant share", "starved procs", "fairness index", "SCU(0,1) fairness",
		},
	}
	for _, n := range ns {
		mem, err := shmem.New(scu.UnboundedLayout)
		if err != nil {
			return nil, err
		}
		procs, err := scu.NewUnboundedGroup(n, 0, 0) // waitFactor = n²
		if err != nil {
			return nil, err
		}
		u, err := sched.NewUniform(n, rng.New(cfg.Seed+uint64(n)))
		if err != nil {
			return nil, err
		}
		sim, err := machine.New(mem, procs, u)
		if err != nil {
			return nil, err
		}
		if err := sim.Run(window); err != nil {
			return nil, err
		}
		comps := sim.Completions()
		var maxC, total uint64
		for _, c := range comps {
			total += c
			if c > maxC {
				maxC = c
			}
		}
		share := 0.0
		if total > 0 {
			share = float64(maxC) / float64(total)
		}

		// Contrast: SCU(0,1), same budget, is fair.
		fair, err := scuSim(n, 0, 1, cfg.Seed+uint64(n)+1000)
		if err != nil {
			return nil, err
		}
		if err := fair.Run(window); err != nil {
			return nil, err
		}
		t.AddRow(n, total, share, len(sim.StarvedProcesses()),
			sim.FairnessIndex(), fair.FairnessIndex())
	}
	t.Note = "Algorithm 1 concentrates nearly all completions on one process " +
		"(fairness index → 1/n), while bounded SCU under the same scheduler stays at ≈ 1"
	return t, nil
}
