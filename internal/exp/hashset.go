package exp

import (
	"fmt"
	"math"

	"pwf/internal/machine"
	"pwf/internal/scu"
	"pwf/internal/shmem"
)

// HashSetScaling (E17) exercises the "efficient data structures such
// as hash tables [6]" instantiation of the SCU class: a lock-free
// hash set is an array of independent Harris-list buckets, so raising
// the bucket count divides the contention — the per-operation latency
// approaches the uncontended list cost while the single-bucket
// configuration behaves like one hot SCU object.
func HashSetScaling(cfg Config) (*Table, error) {
	n := cfg.num(8, 4)
	window := cfg.steps(400000, 60000)
	keyspace := int64(cfg.num(64, 24))
	var bucketCounts []int
	if cfg.Quick {
		bucketCounts = []int{1, 4}
	} else {
		bucketCounts = []int{1, 2, 4, 8, 16}
	}

	t := &Table{
		ID:    "E17",
		Title: "Hash set: bucket count vs latency (per-bucket SCU instances)",
		Header: []string{
			"buckets", "W (steps/op)", "speedup vs 1 bucket", "ops", "violations",
		},
	}
	var base float64
	for _, buckets := range bucketCounts {
		const poolSize = 16
		h, err := scu.NewHashSet(n, buckets, poolSize, 0)
		if err != nil {
			return nil, err
		}
		mem, err := shmem.New(scu.HashSetLayout(n, buckets, poolSize))
		if err != nil {
			return nil, err
		}
		h.Init(mem)
		procs, err := h.Processes(keyspace)
		if err != nil {
			return nil, err
		}
		u, err := newUniform(n, cfg.Seed+uint64(buckets))
		if err != nil {
			return nil, err
		}
		sim, err := machine.New(mem, procs, u)
		if err != nil {
			return nil, err
		}
		if err := sim.Run(window / 10); err != nil {
			return nil, err
		}
		sim.ResetMetrics()
		if err := sim.Run(window); err != nil {
			return nil, err
		}
		if h.Violations() != 0 {
			return nil, fmt.Errorf("hash set violated linearizability at %d buckets", buckets)
		}
		if err := h.Err(); err != nil {
			return nil, err
		}
		w, err := sim.SystemLatency()
		if err != nil {
			return nil, err
		}
		if buckets == bucketCounts[0] {
			base = w
		}
		speedup := math.NaN()
		if w > 0 {
			speedup = base / w
		}
		t.AddRow(buckets, w, speedup, sim.TotalCompletions(), h.Violations())
	}
	t.Note = "splitting one hot SCU object into independent buckets removes contention: " +
		"latency falls toward the uncontended walk cost as buckets grow — how the class's " +
		"√n contention factor is engineered away in practice"
	return t, nil
}
