package exp

import (
	"fmt"

	"pwf/internal/chains"
	"pwf/internal/markov"
)

// LiftingVerification reproduces the paper's structural results
// exactly: the individual chain of each algorithm is lifted onto its
// system/global chain (Lemmas 5, 10 and 13), Lemma 1's marginal
// equations hold, and the per-process latency is n times the system
// latency (Lemmas 7 and 14). All quantities are computed by direct
// linear solve; the reported errors are numerical residuals.
func LiftingVerification(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: "Lemmas 5/10/13: Markov chain liftings, verified numerically",
		Header: []string{
			"chain pair", "n", "big states", "small states",
			"flow err", "marginal err", "Wi/(n*W) err",
		},
	}

	maxN := cfg.num(5, 3)

	// SCU scan-validate chains (Lemma 5, Figure 1).
	for n := 2; n <= maxN; n++ {
		ind, lift, err := chains.SCUIndividual(n)
		if err != nil {
			return nil, err
		}
		sys, _, err := chains.SCUSystem(n)
		if err != nil {
			return nil, err
		}
		if err := addLiftingRow(t, "SCU(0,1)", n, ind, sys, lift); err != nil {
			return nil, err
		}
	}

	// Parallel code chains (Lemma 10).
	for _, tc := range []struct{ n, q int }{{2, 3}, {3, 2}, {3, 3}} {
		ind, lift, err := chains.ParallelIndividual(tc.n, tc.q)
		if err != nil {
			return nil, err
		}
		sys, _, err := chains.ParallelSystem(tc.n, tc.q)
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("parallel q=%d", tc.q)
		if err := addLiftingRow(t, name, tc.n, ind, sys, lift); err != nil {
			return nil, err
		}
	}

	// Fetch-and-increment chains (Lemma 13).
	fiMax := cfg.num(8, 5)
	for n := 2; n <= fiMax; n += 2 {
		ind, lift, err := chains.FetchIncIndividual(n)
		if err != nil {
			return nil, err
		}
		glob, err := chains.FetchIncGlobal(n)
		if err != nil {
			return nil, err
		}
		if err := addLiftingRow(t, "fetch-and-inc", n, ind, glob, lift); err != nil {
			return nil, err
		}
	}

	t.Note = "all flow and marginal residuals at solver precision (≤ 1e-9): " +
		"each individual chain provably lifts onto its system chain, giving W_i = n·W"
	return t, nil
}

// addLiftingRow verifies one lifting and appends its residuals.
func addLiftingRow(t *Table, name string, n int, ind, sys *chains.Analysis, lift []int) error {
	report, err := markov.VerifyLifting(ind.Chain, sys.Chain, lift)
	if err != nil {
		return fmt.Errorf("%s n=%d: %w", name, n, err)
	}
	w, err := sys.SystemLatency()
	if err != nil {
		return err
	}
	var worst float64
	for pid := 0; pid < n; pid++ {
		wi, err := ind.IndividualLatency(pid)
		if err != nil {
			return err
		}
		if d := abs(wi/(float64(n)*w) - 1); d > worst {
			worst = d
		}
	}
	t.AddRow(name, n, ind.Chain.N(), sys.Chain.N(),
		report.MaxFlowError, report.MaxMarginalError, worst)
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
