package exp

import (
	"errors"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: the rows the corresponding
// paper table or figure would plot.
type Table struct {
	// ID is the experiment id from DESIGN.md (e.g. "E3").
	ID string
	// Title names the paper artifact (e.g. "Figure 5").
	Title string
	// Note carries the headline comparison for EXPERIMENTS.md.
	Note string
	// Header and Rows hold the tabular data.
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row; values are rendered with %v, floats
// with %.4g.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		case float32:
			row[i] = fmt.Sprintf("%.4g", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if w == nil {
		return errors.New("exp: nil writer")
	}
	if _, err := fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			width := 0
			if i < len(widths) {
				width = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", width, c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	total := len(widths) - 1
	for _, width := range widths {
		total += width + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", max(total, 4))); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "note: %s\n", t.Note); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
