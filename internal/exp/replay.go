package exp

import (
	"fmt"

	"pwf/internal/machine"
	"pwf/internal/native"
	"pwf/internal/sched"
	"pwf/internal/scu"
	"pwf/internal/shmem"
)

// ReplaySchedule (E14) closes the loop between the model and the
// machine: it records a real OS-scheduler interleaving with the
// atomic-ticket method, replays that exact schedule into the
// simulator driving SCU(0, 1), and compares latency and fairness with
// the uniform stochastic model on the same workload.
//
// On machines where the OS runs goroutines in long slices (few cores,
// aggressive batching) the replayed schedule behaves like a very
// sticky stochastic scheduler: latency drops (consecutive steps finish
// operations solo, cf. E13) while long-run fairness is preserved —
// evidence that the uniform model's latency prediction is
// conservative for real schedulers, as the paper's Appendix A argues.
func ReplaySchedule(cfg Config) (*Table, error) {
	n := cfg.num(8, 4)
	ops := cfg.num(250000, 25000)

	recorded, err := native.RecordSchedule(n, ops)
	if err != nil {
		return nil, fmt.Errorf("record: %w", err)
	}
	replay, err := sched.NewReplay(n, recorded.Order(), true /* loop */)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "E14",
		Title: "Replay: SCU(0,1) under the recorded real schedule vs the uniform model",
		Header: []string{
			"scheduler", "steps", "W", "W_i/(n*W)", "fairness", "starved",
		},
	}

	window := uint64(recorded.Len())
	if window < 1000 {
		return nil, fmt.Errorf("recorded schedule too short: %d steps", window)
	}

	for _, tc := range []struct {
		name  string
		build func() (sched.Scheduler, error)
	}{
		{"replayed real schedule", func() (sched.Scheduler, error) { return replay, nil }},
		{"uniform model", func() (sched.Scheduler, error) {
			return uniformFor(n, cfg.Seed)
		}},
	} {
		s, err := tc.build()
		if err != nil {
			return nil, err
		}
		mem, err := shmem.New(scu.SCULayout(1))
		if err != nil {
			return nil, err
		}
		procs, err := scu.NewSCUGroup(n, 0, 1, 0)
		if err != nil {
			return nil, err
		}
		sim, err := machine.New(mem, procs, s)
		if err != nil {
			return nil, err
		}
		if err := sim.Run(window / 10); err != nil {
			return nil, err
		}
		sim.ResetMetrics()
		if err := sim.Run(window); err != nil {
			return nil, err
		}
		w, err := sim.SystemLatency()
		if err != nil {
			return nil, err
		}
		wi, err := sim.MeanIndividualLatency()
		if err != nil {
			return nil, err
		}
		t.AddRow(tc.name, sim.Steps(), w, wi/(float64(n)*w),
			sim.FairnessIndex(), len(sim.StarvedProcesses()))
	}
	t.Note = "the same algorithm, once under the schedule this machine actually produced " +
		"and once under the uniform model: both are fair and starvation-free; the real " +
		"schedule's local stickiness lowers W, so the model's O(√n) is a conservative bound"
	return t, nil
}

func uniformFor(n int, seed uint64) (sched.Scheduler, error) {
	return newUniform(n, seed)
}
