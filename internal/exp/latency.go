package exp

import (
	"fmt"
	"math"

	"pwf/internal/chains"
	"pwf/internal/stats"
	"pwf/internal/sweep"
)

// scuJob builds one SCU(q, s) sweep job under the uniform stochastic
// scheduler with the conventional warmup.
func scuJob(n, q, s int, window uint64, exact bool) sweep.Job {
	return sweep.Job{
		Workload:       sweep.Workload{Kind: sweep.SCU, Q: q, S: s},
		N:              n,
		Steps:          window,
		WarmupFraction: sweep.DefaultWarmupFraction,
		Exact:          exact,
	}
}

// SystemLatencySweep reproduces the Theorem 5 / Corollary 1 claim:
// the system latency of SCU(q, s) under the uniform stochastic
// scheduler behaves as O(q + s·√n). It sweeps n for several (q, s)
// and reports the measured latency, the exact chain value (for
// SCU(0,1)), and the fitted √n exponent. The whole grid runs on the
// parallel sweep engine; the exact values ride along via the chain
// cache.
func SystemLatencySweep(cfg Config) (*Table, error) {
	var ns []int
	if cfg.Quick {
		ns = []int{2, 4, 8, 16}
	} else {
		ns = []int{2, 4, 8, 16, 32, 64}
	}
	window := cfg.steps(2000000, 150000)

	// Three (q, s) configurations per n, plus the large-n SCU(0,1)
	// rows whose exact values come from the sparse solver instead.
	var largeNs []int
	if !cfg.Quick {
		largeNs = []int{128, 256}
	}
	var jobs []sweep.Job
	for _, n := range ns {
		jobs = append(jobs,
			scuJob(n, 0, 1, window, true),
			scuJob(n, 0, 3, window, true),
			scuJob(n, 4, 1, window, true),
		)
	}
	for _, n := range largeNs {
		jobs = append(jobs, scuJob(n, 0, 1, window, false))
	}
	results, err := cfg.runSweep(jobs)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "E4",
		Title: "Theorem 5: system latency of SCU(q, s) vs n",
		Header: []string{
			"n", "W sim (0,1)", "W exact (0,1)", "W sim (0,3)", "W exact (0,3)",
			"W sim (4,1)", "W exact (4,1)", "q + s*sqrt(n)",
		},
	}

	var xs, ys []float64
	for i, n := range ns {
		r01, r03, r41 := results[3*i], results[3*i+1], results[3*i+2]
		xs = append(xs, float64(n))
		ys = append(ys, r01.Latencies.System)
		t.AddRow(n,
			r01.Latencies.System, exactOrDash(r01),
			r03.Latencies.System, exactOrDash(r03),
			r41.Latencies.System, exactOrDash(r41),
			1*math.Sqrt(float64(n)))
	}

	// Large-n rows: the sparse lazy iteration gives exact SCU(0,1)
	// values beyond the dense solver's reach.
	for i, n := range largeNs {
		r := results[3*len(ns)+i]
		exact, err := chains.SCUSystemLatencyLarge(n, 1e-10, 5000000)
		if err != nil {
			return nil, err
		}
		xs = append(xs, float64(n))
		ys = append(ys, r.Latencies.System)
		t.AddRow(n, r.Latencies.System, exact, "-", "-", "-", "-",
			1*math.Sqrt(float64(n)))
	}

	if _, p, r2, err := stats.PowerFit(xs, ys); err == nil {
		t.Note = fmt.Sprintf(
			"SCU(0,1) system latency grows as n^%.3f (R²=%.3f); Theorem 5 predicts exponent 0.5; "+
				"exact (q,s)-chain values shown where tractable (dense solve to n=64, sparse "+
				"lazy iteration for n=128, 256)",
			p, r2)
	}
	return t, nil
}

// exactOrDash returns the result's exact-chain latency as a cell
// value, or "-" when the chain was intractable.
func exactOrDash(r sweep.Result) any {
	if !r.ExactOK {
		return "-"
	}
	return r.Exact
}

// IndividualLatencyFairness reproduces the Theorem 4 fairness claim:
// the individual latency of every process is n times the system
// latency, i.e. the expected completion rate is identical across
// processes.
func IndividualLatencyFairness(cfg Config) (*Table, error) {
	var ns []int
	if cfg.Quick {
		ns = []int{2, 4, 8}
	} else {
		ns = []int{2, 4, 8, 16, 32}
	}
	window := cfg.steps(2000000, 200000)

	jobs := make([]sweep.Job, len(ns))
	for i, n := range ns {
		jobs[i] = scuJob(n, 0, 1, window, false)
	}
	results, err := cfg.runSweep(jobs)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "E5",
		Title: "Theorem 4: individual latency = n × system latency",
		Header: []string{
			"n", "W sim", "mean W_i sim", "W_i/(n*W)", "max/min completions",
		},
	}
	worst := 0.0
	for i, n := range ns {
		w, wi := results[i].Latencies.System, results[i].Latencies.Individual
		ratio := wi / (float64(n) * w)
		if d := math.Abs(ratio - 1); d > worst {
			worst = d
		}
		comps := results[i].ProcCompletions
		minC, maxC := comps[0], comps[0]
		for _, c := range comps {
			if c < minC {
				minC = c
			}
			if c > maxC {
				maxC = c
			}
		}
		spread := math.Inf(1)
		if minC > 0 {
			spread = float64(maxC) / float64(minC)
		}
		t.AddRow(n, w, wi, ratio, spread)
	}
	t.Note = fmt.Sprintf(
		"max |W_i/(n·W) − 1| = %.3f; Theorem 4 predicts the ratio is exactly 1 in stationarity",
		worst)
	return t, nil
}

// ParallelCode reproduces Lemma 11: for parallel code with q steps,
// the system latency is exactly q and the individual latency exactly
// n·q — compared here across the exact chains and the simulation.
func ParallelCode(cfg Config) (*Table, error) {
	window := cfg.steps(1000000, 100000)
	cases := []struct{ n, q int }{
		{2, 2}, {3, 3}, {4, 2}, {2, 5},
	}
	if !cfg.Quick {
		cases = append(cases, struct{ n, q int }{4, 4}, struct{ n, q int }{6, 3})
	}

	jobs := make([]sweep.Job, len(cases))
	for i, tc := range cases {
		jobs[i] = sweep.Job{
			Workload:       sweep.Workload{Kind: sweep.Parallel, Q: tc.q},
			N:              tc.n,
			Steps:          window,
			WarmupFraction: sweep.DefaultWarmupFraction,
			Exact:          true,
		}
	}
	results, err := cfg.runSweep(jobs)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "E6",
		Title: "Lemma 11: parallel code latencies (W = q, W_i = n·q)",
		Header: []string{
			"n", "q", "W exact", "W sim", "W_i exact", "W_i sim",
		},
	}
	for i, tc := range cases {
		if !results[i].ExactOK {
			return nil, fmt.Errorf("exp: parallel chain n=%d q=%d intractable", tc.n, tc.q)
		}
		ind, _, err := sweep.DefaultCache.ParallelIndividual(tc.n, tc.q)
		if err != nil {
			return nil, err
		}
		wiExact, err := ind.IndividualLatency(0)
		if err != nil {
			return nil, err
		}
		t.AddRow(tc.n, tc.q, results[i].Exact, results[i].Latencies.System,
			wiExact, results[i].Latencies.Individual)
	}
	t.Note = "exact values are q and n·q to solver precision; simulated values converge to them"
	return t, nil
}
