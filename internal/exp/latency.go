package exp

import (
	"fmt"
	"math"

	"pwf/internal/chains"
	"pwf/internal/machine"
	"pwf/internal/rng"
	"pwf/internal/sched"
	"pwf/internal/scu"
	"pwf/internal/shmem"
	"pwf/internal/stats"
)

// SystemLatencySweep reproduces the Theorem 5 / Corollary 1 claim:
// the system latency of SCU(q, s) under the uniform stochastic
// scheduler behaves as O(q + s·√n). It sweeps n for several (q, s)
// and reports the measured latency, the exact chain value (for
// SCU(0,1)), and the fitted √n exponent.
func SystemLatencySweep(cfg Config) (*Table, error) {
	var ns []int
	if cfg.Quick {
		ns = []int{2, 4, 8, 16}
	} else {
		ns = []int{2, 4, 8, 16, 32, 64}
	}
	window := cfg.steps(2000000, 150000)

	t := &Table{
		ID:    "E4",
		Title: "Theorem 5: system latency of SCU(q, s) vs n",
		Header: []string{
			"n", "W sim (0,1)", "W exact (0,1)", "W sim (0,3)", "W exact (0,3)",
			"W sim (4,1)", "W exact (4,1)", "q + s*sqrt(n)",
		},
	}

	var xs, ys []float64
	for _, n := range ns {
		row := make([]any, 0, 6)
		row = append(row, n)

		// SCU(0,1) simulated.
		sim, err := scuSim(n, 0, 1, cfg.Seed+uint64(n))
		if err != nil {
			return nil, err
		}
		w01, _, err := measureLatencies(sim, window/10, window)
		if err != nil {
			return nil, err
		}
		row = append(row, w01)
		xs = append(xs, float64(n))
		ys = append(ys, w01)

		// SCU(0,1) exact.
		sys, _, err := chains.SCUSystem(n)
		if err != nil {
			return nil, err
		}
		exact, err := sys.SystemLatency()
		if err != nil {
			return nil, err
		}
		row = append(row, exact)

		// SCU(0,3) simulated + exact (exact only while the state space
		// of the (q, s) chain stays tractable).
		sim3, err := scuSim(n, 0, 3, cfg.Seed+uint64(2*n))
		if err != nil {
			return nil, err
		}
		w03, _, err := measureLatencies(sim3, window/10, window)
		if err != nil {
			return nil, err
		}
		row = append(row, w03, exactQSOrDash(n, 0, 3))

		// SCU(4,1) simulated + exact.
		sim41, err := scuSim(n, 4, 1, cfg.Seed+uint64(3*n))
		if err != nil {
			return nil, err
		}
		w41, _, err := measureLatencies(sim41, window/10, window)
		if err != nil {
			return nil, err
		}
		row = append(row, w41, exactQSOrDash(n, 4, 1), 1*math.Sqrt(float64(n)))
		t.AddRow(row...)
	}

	// Large-n rows: the sparse lazy iteration gives exact SCU(0,1)
	// values beyond the dense solver's reach.
	if !cfg.Quick {
		for _, n := range []int{128, 256} {
			sim, err := scuSim(n, 0, 1, cfg.Seed+uint64(n))
			if err != nil {
				return nil, err
			}
			w01, _, err := measureLatencies(sim, window/10, window)
			if err != nil {
				return nil, err
			}
			exact, err := chains.SCUSystemLatencyLarge(n, 1e-10, 5000000)
			if err != nil {
				return nil, err
			}
			xs = append(xs, float64(n))
			ys = append(ys, w01)
			t.AddRow(n, w01, exact, "-", "-", "-", "-", 1*math.Sqrt(float64(n)))
		}
	}

	if _, p, r2, err := stats.PowerFit(xs, ys); err == nil {
		t.Note = fmt.Sprintf(
			"SCU(0,1) system latency grows as n^%.3f (R²=%.3f); Theorem 5 predicts exponent 0.5; "+
				"exact (q,s)-chain values shown where tractable (dense solve to n=64, sparse "+
				"lazy iteration for n=128, 256)",
			p, r2)
	}
	return t, nil
}

// exactQSOrDash returns the exact SCU(q, s) latency as a cell value,
// or "-" when the chain is too large to solve.
func exactQSOrDash(n, q, s int) any {
	a, err := chains.SCUSystemQS(n, q, s)
	if err != nil {
		return "-"
	}
	w, err := a.SystemLatency()
	if err != nil {
		return "-"
	}
	return w
}

// IndividualLatencyFairness reproduces the Theorem 4 fairness claim:
// the individual latency of every process is n times the system
// latency, i.e. the expected completion rate is identical across
// processes.
func IndividualLatencyFairness(cfg Config) (*Table, error) {
	var ns []int
	if cfg.Quick {
		ns = []int{2, 4, 8}
	} else {
		ns = []int{2, 4, 8, 16, 32}
	}
	window := cfg.steps(2000000, 200000)

	t := &Table{
		ID:    "E5",
		Title: "Theorem 4: individual latency = n × system latency",
		Header: []string{
			"n", "W sim", "mean W_i sim", "W_i/(n*W)", "max/min completions",
		},
	}
	worst := 0.0
	for _, n := range ns {
		sim, err := scuSim(n, 0, 1, cfg.Seed+uint64(n))
		if err != nil {
			return nil, err
		}
		w, wi, err := measureLatencies(sim, window/10, window)
		if err != nil {
			return nil, err
		}
		ratio := wi / (float64(n) * w)
		if d := math.Abs(ratio - 1); d > worst {
			worst = d
		}
		comps := sim.Completions()
		minC, maxC := comps[0], comps[0]
		for _, c := range comps {
			if c < minC {
				minC = c
			}
			if c > maxC {
				maxC = c
			}
		}
		spread := math.Inf(1)
		if minC > 0 {
			spread = float64(maxC) / float64(minC)
		}
		t.AddRow(n, w, wi, ratio, spread)
	}
	t.Note = fmt.Sprintf(
		"max |W_i/(n·W) − 1| = %.3f; Theorem 4 predicts the ratio is exactly 1 in stationarity",
		worst)
	return t, nil
}

// ParallelCode reproduces Lemma 11: for parallel code with q steps,
// the system latency is exactly q and the individual latency exactly
// n·q — compared here across the exact chains and the simulation.
func ParallelCode(cfg Config) (*Table, error) {
	window := cfg.steps(1000000, 100000)
	cases := []struct{ n, q int }{
		{2, 2}, {3, 3}, {4, 2}, {2, 5},
	}
	if !cfg.Quick {
		cases = append(cases, struct{ n, q int }{4, 4}, struct{ n, q int }{6, 3})
	}

	t := &Table{
		ID:    "E6",
		Title: "Lemma 11: parallel code latencies (W = q, W_i = n·q)",
		Header: []string{
			"n", "q", "W exact", "W sim", "W_i exact", "W_i sim",
		},
	}
	for _, tc := range cases {
		sys, _, err := chains.ParallelSystem(tc.n, tc.q)
		if err != nil {
			return nil, err
		}
		wExact, err := sys.SystemLatency()
		if err != nil {
			return nil, err
		}
		ind, _, err := chains.ParallelIndividual(tc.n, tc.q)
		if err != nil {
			return nil, err
		}
		wiExact, err := ind.IndividualLatency(0)
		if err != nil {
			return nil, err
		}

		mem, err := shmem.New(1)
		if err != nil {
			return nil, err
		}
		procs, err := scu.NewParallelGroup(tc.n, tc.q, 0)
		if err != nil {
			return nil, err
		}
		u, err := sched.NewUniform(tc.n, rng.New(cfg.Seed+uint64(tc.n*10+tc.q)))
		if err != nil {
			return nil, err
		}
		sim, err := machine.New(mem, procs, u)
		if err != nil {
			return nil, err
		}
		wSim, wiSim, err := measureLatencies(sim, window/10, window)
		if err != nil {
			return nil, err
		}
		t.AddRow(tc.n, tc.q, wExact, wSim, wiExact, wiSim)
	}
	t.Note = "exact values are q and n·q to solver precision; simulated values converge to them"
	return t, nil
}
